// Design-choice ablation: the congestion gradient model.
//
// The paper's central argument against bounding-box congestion penalties
// (Section I, Fig. 1(b)) is that a net's BB can contain congestion the
// net does not cause, so BB penalties drag nets for the wrong reasons,
// while the virtual-cell net-moving gradient acts only on congestion the
// net actually crosses. This bench runs the full framework three ways —
// no DC term, the bounding-box model [2], and the paper's net moving —
// and reports #DRVs plus DRWL.
//
// Environment knobs: RDP_SCALE (default 1.0).

#include <cstdlib>
#include <iostream>

#include "benchgen/ispd_suite.hpp"
#include "eval/route_metrics.hpp"
#include "place/global_placer.hpp"
#include "util/table.hpp"

int main() {
    using namespace rdp;
    const double scale =
        std::getenv("RDP_SCALE") ? std::atof(std::getenv("RDP_SCALE")) : 1.0;
    const std::vector<SuiteEntry> suite = ablation_suite(scale);

    std::cout << "=== Design-choice ablation: congestion gradient model ("
              << suite.size() << " designs, scale " << scale << ") ===\n\n";

    struct ModeSpec {
        const char* label;
        bool dc;
        bool bbox;
    };
    const ModeSpec modes[] = {
        {"no DC term", false, false},
        {"bounding-box [2]", true, true},
        {"net moving (paper)", true, false},
    };

    Table t({"design", "no DC", "bbox [2]", "net moving", "DRWL bbox/nm"});
    double sums[3] = {0, 0, 0};
    for (const SuiteEntry& entry : suite) {
        const Design input = generate_circuit(entry.gen);
        std::cerr << "[ablation-dc] " << entry.name << "\n";
        long long drvs[3];
        double drwl[3];
        for (int m = 0; m < 3; ++m) {
            PlacerConfig cfg;
            cfg.mode = PlacerMode::Ours;
            cfg.grid_bins = entry.grid_bins;
            cfg.enable_dc = modes[m].dc;
            cfg.use_bbox_dc_model = modes[m].bbox;
            const PlaceResult res = GlobalPlacer(cfg).place(input);
            EvalConfig ec;
            ec.grid_bins = entry.grid_bins * 2;
            const EvalMetrics em = evaluate_placement(res.placed, ec);
            drvs[m] = em.drvs;
            drwl[m] = em.drwl;
        }
        for (int m = 0; m < 3; ++m)
            sums[m] += drvs[2] > 0
                           ? static_cast<double>(drvs[m]) / drvs[2]
                           : 1.0;
        t.add_row({entry.name, Table::fmt_int(drvs[0]),
                   Table::fmt_int(drvs[1]), Table::fmt_int(drvs[2]),
                   Table::fmt(drwl[2] > 0 ? drwl[1] / drwl[2] : 1.0, 3)});
    }
    t.add_separator();
    t.add_row({"avg ratio vs net moving",
               Table::fmt(sums[0] / static_cast<double>(suite.size()), 2),
               Table::fmt(sums[1] / static_cast<double>(suite.size()), 2),
               Table::fmt(sums[2] / static_cast<double>(suite.size()), 2),
               "-"});
    t.print(std::cout);
    std::cout << "\nReading: everything (MCI, DPA, budgets, schedules) is "
                 "identical; only the congestion gradient source differs. "
                 "The paper's claim is that net moving beats the "
                 "bounding-box penalty because it penalizes only the "
                 "congestion the net actually crosses.\n";
    return 0;
}
