// Table II harness: the ablation of the paper's three techniques.
//
// Four configurations on the ablation subset of the suite:
//   row 1: baseline framework (no MCI, no DC, no DPA) ~ Xplace-Route
//   row 2: + MCI  (momentum-based cell inflation)
//   row 3: + MCI + DC  (differentiable congestion / net moving)
//   row 4: + MCI + DC + DPA  (dynamic pin accessibility)
// Metrics are averaged ratios vs the full configuration, as in the paper.
//
// Environment knobs: RDP_SCALE, RDP_FAST (see table1_main.cpp).

#include <cstdlib>
#include <iostream>
#include <vector>

#include "benchgen/ispd_suite.hpp"
#include "eval/report.hpp"
#include "eval/route_metrics.hpp"
#include "place/global_placer.hpp"

namespace {

using namespace rdp;

struct AblationRow {
    const char* label;
    bool mci, dc, dpa;
};

PlacerConfig make_config(const AblationRow& row, int grid_bins, bool fast) {
    PlacerConfig cfg;
    cfg.mode = PlacerMode::Ours;
    cfg.enable_mci = row.mci;
    cfg.enable_dc = row.dc;
    cfg.enable_dpa = row.dpa;
    cfg.grid_bins = grid_bins;
    if (fast) {
        cfg.max_wl_iters = 150;
        cfg.max_route_iters = 4;
        cfg.inner_iters = 8;
        cfg.router.rrr_rounds = 1;
        cfg.dp.max_passes = 1;
    }
    return cfg;
}

}  // namespace

int main() {
    const double scale =
        std::getenv("RDP_SCALE") ? std::atof(std::getenv("RDP_SCALE")) : 1.0;
    const bool fast = std::getenv("RDP_FAST") != nullptr;

    const std::vector<AblationRow> rows = {
        {"baseline (-,-,-)", false, false, false},
        {"+MCI (Y,-,-)", true, false, false},
        {"+MCI+DC (Y,Y,-)", true, true, false},
        {"+MCI+DC+DPA (Y,Y,Y)", true, true, true},
    };

    const std::vector<SuiteEntry> suite = ablation_suite(scale);
    std::cout << "=== Table II: ablation over " << suite.size()
              << " congested designs (scale " << scale
              << (fast ? ", fast" : "") << ") ===\n\n";

    std::vector<std::vector<RunRecord>> results(rows.size());
    for (const SuiteEntry& entry : suite) {
        const Design input = generate_circuit(entry.gen);
        std::cerr << "[table2] " << entry.name << " ("
                  << entry.gen.num_cells << " cells)\n";
        for (size_t r = 0; r < rows.size(); ++r) {
            GlobalPlacer placer(make_config(rows[r], entry.grid_bins, fast));
            const PlaceResult res = placer.place(input);
            EvalConfig ec;
            ec.grid_bins = entry.grid_bins * 2;
            const EvalMetrics em = evaluate_placement(res.placed, ec);
            RunRecord rec;
            rec.design = entry.name;
            rec.placer = rows[r].label;
            rec.drwl = em.drwl;
            rec.vias = em.vias;
            rec.drvs = em.drvs;
            rec.place_seconds = res.place_seconds;
            rec.route_seconds = em.route_seconds;
            results[r].push_back(rec);
        }
    }

    // Per-design DRV table for transparency.
    Table per({"design", rows[0].label, rows[1].label, rows[2].label,
               rows[3].label});
    for (size_t i = 0; i < results[0].size(); ++i) {
        per.add_row({results[0][i].design,
                     Table::fmt_int(results[0][i].drvs),
                     Table::fmt_int(results[1][i].drvs),
                     Table::fmt_int(results[2][i].drvs),
                     Table::fmt_int(results[3][i].drvs)});
    }
    std::cout << "#DRVs per design:\n";
    per.print(std::cout);

    // Ratio summary vs the full configuration (paper Table II layout).
    Table t({"MCI", "DC", "DPA", "DRWL ratio", "#Vias ratio", "#DRVs ratio"});
    for (size_t r = 0; r < rows.size(); ++r) {
        const RatioSummary s = average_ratios(results[r], results.back());
        t.add_row({rows[r].mci ? "Y" : "-", rows[r].dc ? "Y" : "-",
                   rows[r].dpa ? "Y" : "-", Table::fmt(s.drwl, 2),
                   Table::fmt(s.vias, 2), Table::fmt(s.drvs, 2)});
    }
    std::cout << "\nAvg. ratios vs full configuration:\n";
    t.print(std::cout);
    std::cout << "\nPaper Table II reference: DRVs 1.40 -> 1.27 -> 1.12 -> "
                 "1.00 with DRWL/#vias ~1.00 throughout.\n";
    return 0;
}
