// Design-choice ablation: the cell-inflation scheme.
//
// The paper motivates momentum-based inflation (Section I) against two
// families: current-congestion-only schemes (DREAMPlace/RePlAce-like,
// cells snap back into cleared hotspots) and monotone historical schemes
// (Xplace-Route/NTUplace4dr-like, cells stay over-inflated). This bench
// runs one identical routability stage per scheme — same stage-1 entry
// placement, same DC gradients, same budget, only the inflation update
// swapped — over the congested subset, reporting #DRVs per scheme and the
// mean final inflation ratio (a direct view of over-inflation).
//
// Environment knobs: RDP_SCALE (default 1.0).

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "benchgen/ispd_suite.hpp"
#include "eval/route_metrics.hpp"
#include "legal/abacus.hpp"
#include "legal/detailed_place.hpp"
#include "legal/tetris.hpp"
#include "place/global_placer.hpp"
#include "place/nesterov.hpp"
#include "place/objective.hpp"
#include "place/routability_loop.hpp"
#include "util/table.hpp"

namespace {

using namespace rdp;

std::unique_ptr<InflationScheme> make_scheme(const std::string& name,
                                             int num_cells,
                                             const PlacerConfig& cfg) {
    if (name == "momentum")
        return std::make_unique<MomentumInflation>(num_cells, cfg.mci);
    if (name == "monotone")
        return std::make_unique<MonotoneInflation>(num_cells,
                                                   cfg.baseline_inflation);
    if (name == "current-only")
        return std::make_unique<CurrentOnlyInflation>(
            num_cells, cfg.baseline_inflation);
    return std::make_unique<NoInflation>(num_cells);
}

struct SchemeResult {
    long long drvs = 0;
    double drwl = 0.0;
    double mean_ratio = 1.0;
};

/// Run the identical routability stage with `scheme_name` swapped in, from
/// the given stage-1 entry placement (with fillers).
SchemeResult run_with_scheme(const SuiteEntry& entry, const Design& entry_gp,
                             int first_filler, const std::string& scheme_name,
                             const PlacerConfig& cfg) {
    Design work = entry_gp;
    const BinGrid grid(work.region, entry.grid_bins, entry.grid_bins);
    PlacementObjective obj(grid, cfg.density, cfg.netmove,
                           4.0 * grid.bin_w());
    const std::vector<int> movable = work.movable_cells();
    GlobalRouter router(grid, cfg.router);
    CongestionField field(grid);
    auto scheme = make_scheme(scheme_name, work.num_cells(), cfg);
    std::vector<double> ratios(static_cast<size_t>(work.num_cells()), 1.0);
    obj.set_inflation(&ratios);
    obj.set_lambda2_scale(cfg.dc_weight);

    std::vector<Vec2> pos(movable.size());
    for (size_t i = 0; i < movable.size(); ++i)
        pos[i] = work.cells[movable[i]].pos;
    auto project = [&](size_t slot, Vec2 p) {
        const Cell& c = work.cells[movable[slot]];
        const Rect r = work.region;
        return Vec2{std::clamp(p.x, r.lx + c.width / 2, r.hx - c.width / 2),
                    std::clamp(p.y, r.ly + c.height / 2, r.hy - c.height / 2)};
    };
    {
        std::vector<Vec2> g0;
        obj.set_lambda1(0.0);
        const ObjectiveTerms t0 = obj.evaluate(work, movable, pos, g0);
        obj.set_lambda1(cfg.route_lambda1_boost *
                        (t0.density_grad_l1 > 0
                             ? t0.wl_grad_l1 / t0.density_grad_l1
                             : 1.0));
    }

    double best = 1e300;
    std::vector<Vec2> best_pos = pos;
    for (int outer = 0; outer < cfg.max_route_iters; ++outer) {
        const RouteResult rr = router.route(work);
        const double severe = rr.congestion.weighted_overflow();
        if (severe < best * (1.0 - cfg.keep_best_margin)) {
            best = std::min(best, severe);
            best_pos = pos;
        }
        scheme->update(work, rr.congestion);
        ratios = scheme->ratios();
        budget_inflation(work, first_filler, ratios,
                         cfg.inflation_budget_frac);
        field.build(rr.congestion);
        obj.set_congestion(&rr.congestion, &field);
        NesterovSolver solver(pos);
        std::vector<Vec2> grad;
        for (int it = 0; it < cfg.inner_iters; ++it) {
            obj.evaluate(work, movable, solver.reference(), grad);
            solver.step(grad, project);
        }
        pos = solver.solution();
        for (size_t i = 0; i < movable.size(); ++i)
            work.cells[movable[i]].pos = pos[i];
        obj.set_congestion(nullptr, nullptr);
    }
    {
        const RouteResult rr = router.route(work);
        if (rr.congestion.weighted_overflow() > best) {
            for (size_t i = 0; i < movable.size(); ++i)
                work.cells[movable[i]].pos = best_pos[i];
        }
    }

    SchemeResult out;
    double acc = 0.0;
    int n_real = 0;
    for (int i = 0; i < first_filler; ++i) {
        if (!work.cells[static_cast<size_t>(i)].movable()) continue;
        acc += ratios[static_cast<size_t>(i)];
        ++n_real;
    }
    out.mean_ratio = n_real > 0 ? acc / n_real : 1.0;

    // Strip fillers, legalize, evaluate.
    work.cells.resize(static_cast<size_t>(first_filler));
    work.clamp_movables_to_region();
    std::vector<Vec2> desired(static_cast<size_t>(work.num_cells()));
    for (int i = 0; i < work.num_cells(); ++i)
        desired[static_cast<size_t>(i)] = work.cells[static_cast<size_t>(i)].pos;
    tetris_legalize(work);
    abacus_refine(work, desired);
    detailed_place(work);
    EvalConfig ec;
    ec.grid_bins = entry.grid_bins * 2;
    const EvalMetrics m = evaluate_placement(work, ec);
    out.drvs = m.drvs;
    out.drwl = m.drwl;
    return out;
}

}  // namespace

int main() {
    const double scale =
        std::getenv("RDP_SCALE") ? std::atof(std::getenv("RDP_SCALE")) : 1.0;
    const std::vector<SuiteEntry> suite = ablation_suite(scale);

    std::cout << "=== Design-choice ablation: inflation scheme ("
              << suite.size() << " congested designs, scale " << scale
              << ") ===\n\n";

    const std::vector<std::string> schemes = {"none", "current-only",
                                              "monotone", "momentum"};
    Table t({"design", "none", "current-only", "monotone",
             "momentum (paper)"});
    Table ratios_t({"design", "none", "current-only", "monotone",
                    "momentum (paper)"});
    std::vector<double> sums(schemes.size(), 0.0);
    for (const SuiteEntry& entry : suite) {
        const Design input = generate_circuit(entry.gen);
        std::cerr << "[ablation-inflation] " << entry.name << "\n";

        // Shared stage-1 entry state (with fillers) for every scheme.
        PlacerConfig cfg;
        cfg.grid_bins = entry.grid_bins;
        Design entry_gp = input;
        entry_gp.build_rows();
        // Reuse the real placer for stage 1, then re-add fillers on the
        // legalized result as the common entry state.
        PlacerConfig wl_cfg = cfg;
        wl_cfg.mode = PlacerMode::WirelengthOnly;
        entry_gp = GlobalPlacer(wl_cfg).place(input).placed;
        const int first_filler =
            GlobalPlacer::add_fillers(entry_gp, cfg, cfg.seed);

        std::vector<std::string> row = {entry.name};
        std::vector<std::string> ratio_row = {entry.name};
        std::vector<long long> drvs(schemes.size());
        for (size_t s = 0; s < schemes.size(); ++s) {
            const SchemeResult r =
                run_with_scheme(entry, entry_gp, first_filler, schemes[s],
                                cfg);
            drvs[s] = r.drvs;
            row.push_back(Table::fmt_int(r.drvs));
            ratio_row.push_back(Table::fmt(r.mean_ratio, 3));
        }
        for (size_t s = 0; s < schemes.size(); ++s)
            sums[s] += drvs.back() > 0
                           ? static_cast<double>(drvs[s]) / drvs.back()
                           : 1.0;
        t.add_row(std::move(row));
        ratios_t.add_row(std::move(ratio_row));
    }
    t.add_separator();
    std::vector<std::string> avg = {"avg ratio vs momentum"};
    for (size_t s = 0; s < schemes.size(); ++s)
        avg.push_back(
            Table::fmt(sums[s] / static_cast<double>(suite.size()), 2));
    t.add_row(std::move(avg));

    std::cout << "#DRVs per scheme (identical stage, scheme swapped):\n";
    t.print(std::cout);
    std::cout << "\nmean final inflation ratio over real cells:\n";
    ratios_t.print(std::cout);

    std::cout << "\nReading: all schemes run inside the identical framework "
                 "(DC active, same budget); only the inflation update "
                 "differs. The paper's claim: momentum avoids both the "
                 "snap-back of current-only and the over-inflation of "
                 "monotone schemes (visible in the ratio table).\n";
    return 0;
}
