// Design-choice ablation: the router capacity model.
//
// The placer consumes congestion through the Eq. (3) map, so the
// congestion-estimation model's behavior across G-cell resolutions and
// via-demand weights determines everything downstream. This bench fixes
// one wirelength-only placement per design and sweeps:
//   * the G-cell grid resolution (capacity scales with extent/track_pitch,
//     so the overflow statistics should be roughly resolution-stable),
//   * the via demand weight (how much pin/bend pressure counts).
// It reports overflowed-cell share, severity-weighted overflow, and peak
// utilization for each point of the sweep.
//
// Environment knobs: RDP_SCALE (default 1.0).

#include <cstdlib>
#include <iostream>

#include "benchgen/ispd_suite.hpp"
#include "place/global_placer.hpp"
#include "router/global_router.hpp"
#include "util/table.hpp"

int main() {
    using namespace rdp;
    const double scale =
        std::getenv("RDP_SCALE") ? std::atof(std::getenv("RDP_SCALE")) : 1.0;

    std::cout << "=== Design-choice ablation: router capacity model (scale "
              << scale << ") ===\n";

    for (const char* name : {"fft_1", "des_perf_a", "superblue14"}) {
        const SuiteEntry entry = suite_entry(name, scale);
        const Design input = generate_circuit(entry.gen);
        PlacerConfig pc;
        pc.mode = PlacerMode::WirelengthOnly;
        pc.grid_bins = entry.grid_bins;
        const Design placed = GlobalPlacer(pc).place(input).placed;

        std::cout << "\n--- " << name << " (" << entry.gen.num_cells
                  << " cells, util " << entry.gen.utilization << ") ---\n";
        Table t({"bins", "via weight", "G-cell DBU", "overflow cells %",
                 "severe overflow", "peak util"});
        for (const int bins : {16, 32, 64, 128}) {
            for (const double vw : {0.1, 0.25, 0.5}) {
                const BinGrid grid(placed.region, bins, bins);
                RouterConfig rc;
                rc.via_demand_weight = vw;
                GlobalRouter router(grid, rc);
                const RouteResult rr = router.route(placed);
                t.add_row({Table::fmt_int(bins), Table::fmt(vw, 2),
                           Table::fmt(grid.bin_w(), 2),
                           Table::fmt(100.0 * rr.overflowed_gcells /
                                          (bins * bins),
                                      1),
                           Table::fmt(rr.congestion.weighted_overflow(), 0),
                           Table::fmt(rr.congestion.peak_utilization(), 2)});
            }
            t.add_separator();
        }
        t.print(std::cout);
    }
    std::cout << "\nReading: overflow statistics stay the same order of "
                 "magnitude across resolutions (capacity scales with G-cell "
                 "extent); the via weight shifts the absolute level but not "
                 "the design ordering. The placement grid (64) sits in the "
                 "stable middle of the sweep.\n";
    return 0;
}
