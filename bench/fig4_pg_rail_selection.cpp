// Fig. 4 harness: PG rail selection on the matrix_mult_a-like design.
//
// The paper's Fig. 4 shows (a) all PG rails before selection and (b) the
// rails that survive macro-bbox cutting and the length filter. This bench
// prints the same information as numbers: rail counts and total lengths
// before/after, how many pieces each stage removed, and a coarse ASCII
// picture of which rows keep full-width rails.

#include <iostream>

#include "benchgen/ispd_suite.hpp"
#include "pinaccess/rail_select.hpp"
#include "util/table.hpp"

int main() {
    using namespace rdp;

    const SuiteEntry entry = suite_entry("matrix_mult_a");
    const Design d = generate_circuit(entry.gen);

    const RailSelectConfig cfg;  // paper values: 10% expansion, 0.2 length

    // Stage 0: raw rails.
    double len_before = 0.0;
    for (const PGRail& r : d.pg_rails) len_before += r.length();

    // Stage 1: cut by expanded macro boxes (count all pieces).
    std::vector<Rect> blockers;
    for (const Cell& c : d.cells)
        if (c.is_macro())
            blockers.push_back(
                c.bbox().scaled_about_center(1.0 + cfg.macro_expand_frac));
    int pieces_after_cut = 0;
    double len_after_cut = 0.0;
    for (const PGRail& r : d.pg_rails) {
        for (const PGRail& p : cut_rail(r, blockers)) {
            ++pieces_after_cut;
            len_after_cut += p.length();
        }
    }

    // Stage 2: full selection (cut + length filter).
    const std::vector<PGRail> selected = select_pg_rails(d, cfg);
    double len_selected = 0.0;
    for (const PGRail& r : selected) len_selected += r.length();

    std::cout << "=== Fig. 4: PG rail selection on " << entry.name << " ("
              << d.macro_cells().size() << " macros, "
              << d.rows.size() << " rows) ===\n\n";
    Table t({"stage", "rail pieces", "total length", "share of original %"});
    t.add_row({"(a) all PG rails", Table::fmt_int(
                   static_cast<long long>(d.pg_rails.size())),
               Table::fmt(len_before, 0), "100.0"});
    t.add_row({"after macro cutting", Table::fmt_int(pieces_after_cut),
               Table::fmt(len_after_cut, 0),
               Table::fmt(100.0 * len_after_cut / len_before, 1)});
    t.add_row({"(b) after length filter (selected)",
               Table::fmt_int(static_cast<long long>(selected.size())),
               Table::fmt(len_selected, 0),
               Table::fmt(100.0 * len_selected / len_before, 1)});
    t.print(std::cout);

    // ASCII row map: for each row boundary, mark whether its rail survived
    // in full ('='), partially ('-'), or not at all (' ').
    std::cout << "\nrow-boundary rail map (bottom row first):\n";
    for (size_t i = 0; i < d.rows.size(); i += 2) {
        const double y = d.rows[i].y;
        double kept = 0.0;
        for (const PGRail& r : selected) {
            if (r.orient != Orient::Horizontal) continue;
            if (std::abs(r.box.center().y - y) < 1.0) kept += r.length();
        }
        const double frac = kept / d.region.width();
        const char mark = frac > 0.95 ? '=' : (frac > 0.05 ? '-' : ' ');
        std::cout << "y=" << Table::fmt(y, 0) << "\t[" << mark << "] kept "
                  << Table::fmt(100.0 * frac, 0) << "%\n";
    }

    std::cout << "\nReadout: rails crossing the expanded macro boxes are "
                 "cut; short channel pieces between macros are dropped "
                 "(paper: avoids hindering cell spreading in tight "
                 "channels), while long open-row rails are kept for "
                 "density adjustment.\n";
    return 0;
}
