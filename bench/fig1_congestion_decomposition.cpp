// Fig. 1 harness: local vs global routing congestion.
//
// The paper's Fig. 1 motivates the two techniques by showing that some
// congested G-cells are congested because of cell clustering (local) and
// others because many nets cross them (global). This bench reproduces that
// decomposition quantitatively: place a congested design wirelength-only,
// route it, and classify every overflowed G-cell by its movable-cell
// occupancy. It also verifies the claim that the two classes exist in
// meaningful numbers at once.

#include <iostream>

#include "benchgen/ispd_suite.hpp"
#include "density/electro_density.hpp"
#include "place/global_placer.hpp"
#include "router/global_router.hpp"
#include "util/table.hpp"

int main() {
    using namespace rdp;

    const SuiteEntry entry = suite_entry("edit_dist_a");
    const Design input = generate_circuit(entry.gen);

    PlacerConfig pcfg;
    pcfg.mode = PlacerMode::WirelengthOnly;
    pcfg.grid_bins = entry.grid_bins;
    const Design placed = GlobalPlacer(pcfg).place(input).placed;

    const BinGrid grid(placed.region, entry.grid_bins, entry.grid_bins);
    GlobalRouter router(grid);
    const RouteResult rr = router.route(placed);
    const CongestionMap& cmap = rr.congestion;

    ElectroDensity ed(grid);
    const GridF cell_density = ed.movable_density(placed);

    // Classify overflowed G-cells into occupancy bands.
    const double bands[] = {0.0, 0.25, 0.5, 0.75, 1.0, 1e9};
    int counts[5] = {0, 0, 0, 0, 0};
    double overflow_sum[5] = {0, 0, 0, 0, 0};
    int total_overflowed = 0;
    for (int y = 0; y < grid.ny(); ++y) {
        for (int x = 0; x < grid.nx(); ++x) {
            const double c = cmap.congestion_at(x, y);
            if (c <= 0.0) continue;
            ++total_overflowed;
            const double occ = cell_density.at(x, y) / grid.bin_area();
            for (int b = 0; b < 5; ++b) {
                if (occ >= bands[b] && occ < bands[b + 1]) {
                    ++counts[b];
                    overflow_sum[b] += c;
                    break;
                }
            }
        }
    }

    std::cout << "=== Fig. 1: congestion decomposition on " << entry.name
              << " (wirelength-only placement) ===\n"
              << "overflowed G-cells: " << total_overflowed << " / "
              << grid.nx() * grid.ny() << "\n\n";

    Table t({"cell occupancy band", "overflowed G-cells", "share %",
             "mean Eq.3 congestion"});
    const char* labels[] = {"0.00-0.25 (global: net crossings)",
                            "0.25-0.50 (mostly global)",
                            "0.50-0.75 (mixed)",
                            "0.75-1.00 (mostly local)",
                            ">=1.00 (local: cell clustering)"};
    for (int b = 0; b < 5; ++b) {
        const double share =
            total_overflowed > 0 ? 100.0 * counts[b] / total_overflowed : 0.0;
        const double mean =
            counts[b] > 0 ? overflow_sum[b] / counts[b] : 0.0;
        t.add_row({labels[b], Table::fmt_int(counts[b]),
                   Table::fmt(share, 1), Table::fmt(mean, 3)});
    }
    t.print(std::cout);

    const int local = counts[3] + counts[4];
    const int global = counts[0] + counts[1];
    std::cout << "\nsummary: " << local
              << " locally congested (cell clustering) vs " << global
              << " globally congested (net crossings) G-cells.\n"
              << "Paper claim: both classes coexist, so cell inflation "
                 "alone (local) or net moving alone (global) is "
                 "insufficient.\n";
    return 0;
}
