// Table I harness: the full comparison of the paper's evaluation.
//
// For every design of the ISPD-2015-like suite, place with the three
// placers (Xplace-like wirelength-only, Xplace-Route-like baseline, Ours),
// route each result with the evaluation router (the Innovus stand-in), and
// print per-design rows plus the "Avg. Ratio" summary normalized to Ours —
// the same layout as paper Table I.
//
// Environment knobs:
//   RDP_SCALE=0.25      scale all design sizes (default 1.0)
//   RDP_DESIGNS=fft_1,fft_2   run a subset
//   RDP_FAST=1          fewer placer iterations (smoke run)

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/ispd_suite.hpp"
#include "eval/report.hpp"
#include "eval/route_metrics.hpp"
#include "place/global_placer.hpp"

namespace {

using namespace rdp;

std::vector<std::string> split_csv(const char* s) {
    std::vector<std::string> out;
    if (s == nullptr) return out;
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (!tok.empty()) out.push_back(tok);
    return out;
}

PlacerConfig mode_config(PlacerMode mode, int grid_bins, bool fast) {
    PlacerConfig cfg;
    cfg.mode = mode;
    cfg.grid_bins = grid_bins;
    if (fast) {
        cfg.max_wl_iters = 150;
        cfg.max_route_iters = 4;
        cfg.inner_iters = 8;
        cfg.router.rrr_rounds = 1;
        cfg.dp.max_passes = 1;
    }
    return cfg;
}

RunRecord run_one(const SuiteEntry& entry, const Design& input,
                  const char* label, PlacerMode mode, bool fast) {
    GlobalPlacer placer(mode_config(mode, entry.grid_bins, fast));
    const PlaceResult res = placer.place(input);
    EvalConfig ec;
    ec.grid_bins = entry.grid_bins * 2;
    const EvalMetrics em = evaluate_placement(res.placed, ec);
    RunRecord r;
    r.design = entry.name;
    r.placer = label;
    r.drwl = em.drwl;
    r.vias = em.vias;
    r.drvs = em.drvs;
    r.place_seconds = res.place_seconds;
    r.route_seconds = em.route_seconds;
    return r;
}

}  // namespace

int main() {
    const double scale =
        std::getenv("RDP_SCALE") ? std::atof(std::getenv("RDP_SCALE")) : 1.0;
    const bool fast = std::getenv("RDP_FAST") != nullptr;
    const std::vector<std::string> only =
        split_csv(std::getenv("RDP_DESIGNS"));

    std::vector<SuiteEntry> suite = ispd2015_suite(scale);
    if (!only.empty()) {
        std::vector<SuiteEntry> filtered;
        for (const SuiteEntry& e : suite)
            for (const std::string& n : only)
                if (e.name == n) filtered.push_back(e);
        suite = std::move(filtered);
    }

    std::cout << "=== Table I: ISPD-2015-like suite, " << suite.size()
              << " designs (scale " << scale << (fast ? ", fast" : "")
              << ") ===\n"
              << "Placers: Xplace (wirelength-only), Xplace-Route-like "
                 "(monotone inflation + static PG), Ours (MCI+DC+DPA).\n\n";

    std::vector<RunRecord> xplace, xroute, ours;
    for (const SuiteEntry& entry : suite) {
        const Design input = generate_circuit(entry.gen);
        std::cerr << "[table1] " << entry.name << " ("
                  << entry.gen.num_cells << " cells)"
                  << (entry.fence_removed ? " [fence removed]" : "") << "\n";
        xplace.push_back(run_one(entry, input, "Xplace",
                                 PlacerMode::WirelengthOnly, fast));
        xroute.push_back(run_one(entry, input, "Xplace-Route",
                                 PlacerMode::RouteBaseline, fast));
        ours.push_back(run_one(entry, input, "Ours", PlacerMode::Ours, fast));
    }

    const Table table = make_comparison_table({xplace, xroute, ours});
    table.print(std::cout);

    // Average ratios normalized to Ours (paper's bottom row). The paper
    // excludes superblue12 from Xplace's DRV mean; mirror that when it ran.
    const std::vector<std::string> skip = {"superblue12"};
    const RatioSummary rx = average_ratios(xplace, ours, skip);
    const RatioSummary rr = average_ratios(xroute, ours);
    const RatioSummary ro = average_ratios(ours, ours);

    Table ratios({"placer", "DRWL ratio", "#Vias ratio", "#DRVs ratio",
                  "PT ratio", "RT ratio"});
    auto add = [&](const char* name, const RatioSummary& s) {
        ratios.add_row({name, Table::fmt(s.drwl, 2), Table::fmt(s.vias, 2),
                        Table::fmt(s.drvs, 2), Table::fmt(s.place_time, 2),
                        Table::fmt(s.route_time, 2)});
    };
    add("Xplace", rx);
    add("Xplace-Route", rr);
    add("Ours", ro);
    std::cout << "\nAvg. ratios (normalized to Ours; superblue12 excluded "
                 "from Xplace's DRV mean as in the paper):\n";
    ratios.print(std::cout);

    std::cout << "\nPaper Table I reference ratios: Xplace DRVs 5.00, "
                 "Xplace-Route DRVs 1.40, Ours 1.00; DRWL/#vias ~1.00 for "
                 "all; PT 0.25/0.63/1.00; RT 1.37/1.07/1.00.\n";
    return 0;
}
