// Kernel microbenchmarks (google-benchmark): the building blocks whose
// cost dominates the placement loop — FFT/DCT, the spectral Poisson solve,
// density evaluation, WA wirelength, net decomposition, pattern routing,
// and a full router invocation.

#include <benchmark/benchmark.h>

#include "benchgen/generator.hpp"
#include "congestion/net_moving.hpp"
#include "density/electro_density.hpp"
#include "fft/dct.hpp"
#include "fft/fft.hpp"
#include "poisson/poisson.hpp"
#include "router/global_router.hpp"
#include "router/net_decompose.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "wirelength/wa_model.hpp"

namespace {

using namespace rdp;

void BM_Fft(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    Rng rng(1);
    std::vector<Complex> a(static_cast<size_t>(n));
    for (auto& v : a) v = {rng.uniform(), rng.uniform()};
    for (auto _ : state) {
        auto copy = a;
        fft(copy, false);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_Fft)->Range(64, 4096)->Complexity(benchmark::oNLogN);

void BM_Dct2(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    Rng rng(2);
    std::vector<double> x(static_cast<size_t>(n));
    for (auto& v : x) v = rng.uniform();
    for (auto _ : state) {
        auto out = dct2(x);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_Dct2)->Range(64, 1024);

void BM_PoissonSolve(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    PoissonSolver solver(n, n);
    Rng rng(3);
    GridF rho(n, n);
    for (auto& v : rho) v = rng.uniform();
    for (auto _ : state) {
        auto sol = solver.solve(rho);
        benchmark::DoNotOptimize(sol.potential.data());
    }
}
BENCHMARK(BM_PoissonSolve)->Arg(64)->Arg(128)->Arg(256);

Design bench_design(int cells) {
    GeneratorConfig cfg;
    cfg.seed = 5;
    cfg.num_cells = cells;
    cfg.num_macros = 3;
    return generate_circuit(cfg);
}

void BM_DensityEvaluate(benchmark::State& state) {
    const Design d = bench_design(static_cast<int>(state.range(0)));
    const BinGrid grid(d.region, 64, 64);
    const ElectroDensity ed(grid);
    Design work = d;
    for (auto _ : state) {
        auto res = ed.evaluate(work);
        benchmark::DoNotOptimize(res.penalty);
    }
}
BENCHMARK(BM_DensityEvaluate)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_WaWirelength(benchmark::State& state) {
    const Design d = bench_design(static_cast<int>(state.range(0)));
    const WAWirelength wa(8.0);
    for (auto _ : state) {
        auto res = wa.evaluate(d);
        benchmark::DoNotOptimize(res.total);
    }
}
BENCHMARK(BM_WaWirelength)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_ManhattanMst(benchmark::State& state) {
    const int k = static_cast<int>(state.range(0));
    Rng rng(6);
    std::vector<Vec2> pts(static_cast<size_t>(k));
    for (auto& p : pts) p = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
    for (auto _ : state) {
        auto edges = manhattan_mst(pts);
        benchmark::DoNotOptimize(edges.data());
    }
}
BENCHMARK(BM_ManhattanMst)->Arg(4)->Arg(16)->Arg(64);

void BM_GlobalRoute(benchmark::State& state) {
    const Design d = bench_design(static_cast<int>(state.range(0)));
    const BinGrid grid(d.region, 64, 64);
    const GlobalRouter router(grid);
    for (auto _ : state) {
        auto rr = router.route(d);
        benchmark::DoNotOptimize(rr.wirelength_dbu);
    }
}
BENCHMARK(BM_GlobalRoute)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_NetMovingGradient(benchmark::State& state) {
    const Design d = bench_design(static_cast<int>(state.range(0)));
    const BinGrid grid(d.region, 64, 64);
    const GlobalRouter router(grid);
    const RouteResult rr = router.route(d);
    CongestionField field(grid);
    field.build(rr.congestion);
    const NetMovingGradient nm;
    for (auto _ : state) {
        auto res = nm.compute(d, rr.congestion, field);
        benchmark::DoNotOptimize(res.penalty);
    }
}
BENCHMARK(BM_NetMovingGradient)->Arg(1000)->Arg(4000);

// --- Thread-scaling benchmarks -------------------------------------------
// The parallel execution layer guarantees bitwise-identical results for any
// thread count, so these measure pure speedup. Arg = worker count; run on a
// >= 4-core host to see the scaling curve (on fewer cores the higher counts
// just oversubscribe). `run_benches.sh` records the 1/2/4/8 sweep.

/// Pins the worker count for one benchmark run, restoring it afterwards.
struct ThreadArgGuard {
    int saved = par::max_threads();
    explicit ThreadArgGuard(benchmark::State& state) {
        par::set_max_threads(static_cast<int>(state.range(0)));
    }
    ~ThreadArgGuard() { par::set_max_threads(saved); }
};

void BM_WaGradientThreads(benchmark::State& state) {
    ThreadArgGuard threads(state);
    const Design d = bench_design(16000);
    const WAWirelength wa(8.0);
    for (auto _ : state) {
        auto res = wa.evaluate(d);
        benchmark::DoNotOptimize(res.total);
    }
}
BENCHMARK(BM_WaGradientThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DensityScatterThreads(benchmark::State& state) {
    ThreadArgGuard threads(state);
    const Design d = bench_design(16000);
    const BinGrid grid(d.region, 64, 64);
    const ElectroDensity ed(grid);
    for (auto _ : state) {
        auto rho = ed.movable_density(d);
        benchmark::DoNotOptimize(rho.data());
    }
}
BENCHMARK(BM_DensityScatterThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RouterRrrRoundThreads(benchmark::State& state) {
    ThreadArgGuard threads(state);
    const Design d = bench_design(4000);
    const BinGrid grid(d.region, 64, 64);
    RouterConfig cfg;
    cfg.rrr_rounds = 1;
    const GlobalRouter router(grid, cfg);
    for (auto _ : state) {
        auto rr = router.route(d);
        benchmark::DoNotOptimize(rr.total_overflow);
    }
}
BENCHMARK(BM_RouterRrrRoundThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
