// Kernel microbenchmarks (google-benchmark): the building blocks whose
// cost dominates the placement loop — FFT/DCT, the spectral Poisson solve,
// density evaluation, WA wirelength, net decomposition, pattern routing,
// and a full router invocation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "benchgen/generator.hpp"
#include "congestion/net_moving.hpp"
#include "congestion/rudy.hpp"
#include "density/electro_density.hpp"
#include "fft/dct.hpp"
#include "fft/fft.hpp"
#include "poisson/poisson.hpp"
#include "router/global_router.hpp"
#include "router/incremental.hpp"
#include "router/net_decompose.hpp"
#include "grid/splat_kernel.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "wirelength/hpwl.hpp"
#include "wirelength/wa_kernel.hpp"
#include "wirelength/wa_model.hpp"

namespace {

using namespace rdp;

void BM_Fft(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    Rng rng(1);
    std::vector<Complex> a(static_cast<size_t>(n));
    for (auto& v : a) v = {rng.uniform(), rng.uniform()};
    for (auto _ : state) {
        auto copy = a;
        fft(copy, false);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_Fft)->Range(64, 4096)->Complexity(benchmark::oNLogN);

void BM_Dct2(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    Rng rng(2);
    std::vector<double> x(static_cast<size_t>(n));
    for (auto& v : x) v = rng.uniform();
    for (auto _ : state) {
        auto out = dct2(x);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_Dct2)->Range(64, 1024);

/// Pins the pool to one worker for kernel-vs-kernel comparisons.
struct OneThreadGuard {
    int saved = par::max_threads();
    OneThreadGuard() { par::set_max_threads(1); }
    ~OneThreadGuard() { par::set_max_threads(saved); }
};

// --- Legacy spectral kernel baseline -------------------------------------
// Faithful copy of the pre-plan-cache solver stack: recurrence-twiddle
// N-point complex FFT, DCT-II through a *full-size* complex FFT, strided
// column walks instead of blocked transposes, and per-solve allocation of
// the input copy, the column scratch, and all three result grids. Kept so
// BENCH_poisson.json records the speedup of the planned kernels against the
// exact code they replaced, on the same host, in the same binary.
namespace legacy {

void fft(std::vector<Complex>& a, bool inverse) {
    const int n = static_cast<int>(a.size());
    if (n <= 1) return;
    for (int i = 1, j = 0; i < n; ++i) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(a[i], a[j]);
    }
    for (int len = 2; len <= n; len <<= 1) {
        const double ang = 2.0 * M_PI / len * (inverse ? 1.0 : -1.0);
        const Complex wlen(std::cos(ang), std::sin(ang));
        for (int i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (int j = 0; j < len / 2; ++j) {
                const Complex u = a[i + j];
                const Complex v = a[i + j + len / 2] * w;
                a[i + j] = u + v;
                a[i + j + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse) {
        const double inv = 1.0 / n;
        for (auto& x : a) x *= inv;
    }
}

struct Dct1d {
    int n;
    std::vector<Complex> buf;
    std::vector<double> tc, ts, tmp;

    explicit Dct1d(int n_in)
        : n(n_in),
          buf(static_cast<size_t>(n_in)),
          tc(static_cast<size_t>(n_in)),
          ts(static_cast<size_t>(n_in)),
          tmp(static_cast<size_t>(n_in)) {
        for (int k = 0; k < n; ++k) {
            const double ang = M_PI * k / (2.0 * n);
            tc[static_cast<size_t>(k)] = std::cos(ang);
            ts[static_cast<size_t>(k)] = std::sin(ang);
        }
    }

    void dct2(double* x) {
        for (int i = 0; i * 2 < n; ++i) buf[static_cast<size_t>(i)] = x[2 * i];
        for (int i = 0; i * 2 + 1 < n; ++i)
            buf[static_cast<size_t>(n - 1 - i)] = x[2 * i + 1];
        fft(buf, false);
        for (int k = 0; k < n; ++k)
            x[k] = buf[static_cast<size_t>(k)].real() *
                       tc[static_cast<size_t>(k)] +
                   buf[static_cast<size_t>(k)].imag() *
                       ts[static_cast<size_t>(k)];
    }

    void idct2(double* x) {
        for (int k = 0; k < n; ++k) {
            const double re = x[k];
            const double im = (k == 0) ? 0.0 : -x[n - k];
            const double c = tc[static_cast<size_t>(k)];
            const double s = ts[static_cast<size_t>(k)];
            buf[static_cast<size_t>(k)] = {re * c - im * s, re * s + im * c};
        }
        fft(buf, true);
        for (int i = 0; i * 2 < n; ++i)
            x[2 * i] = buf[static_cast<size_t>(i)].real();
        for (int i = 0; i * 2 + 1 < n; ++i)
            x[2 * i + 1] = buf[static_cast<size_t>(n - 1 - i)].real();
    }

    void dct3(double* x) {
        x[0] *= n;
        for (int k = 1; k < n; ++k) x[k] *= n / 2.0;
        idct2(x);
    }

    void idxst(double* x) {
        tmp[0] = 0.0;
        for (int k = 1; k < n; ++k) tmp[static_cast<size_t>(k)] = x[n - k];
        std::copy(tmp.begin(), tmp.end(), x);
        dct3(x);
        for (int i = 1; i < n; i += 2) x[i] = -x[i];
    }

    void apply(int kind, double* x) {
        if (kind == 0)
            dct2(x);
        else if (kind == 1)
            dct3(x);
        else
            idxst(x);
    }
};

struct Solver {
    int w, h;
    Dct1d row_ws, col_ws;

    Solver(int w_in, int h_in)
        : w(w_in), h(h_in), row_ws(w_in), col_ws(h_in) {}

    void rows(GridF& g, int kind) {
        for (int y = 0; y < h; ++y) row_ws.apply(kind, &g.at(0, y));
    }

    void cols(GridF& g, int kind) {
        std::vector<double> col(static_cast<size_t>(h));
        for (int x = 0; x < w; ++x) {
            for (int y = 0; y < h; ++y)
                col[static_cast<size_t>(y)] = g.at(x, y);
            col_ws.apply(kind, col.data());
            for (int y = 0; y < h; ++y)
                g.at(x, y) = col[static_cast<size_t>(y)];
        }
    }

    PoissonSolution solve(const GridF& rho) {
        GridF a = rho;
        double sum = 0.0;
        for (const double v : a) sum += v;
        const double mean = sum / static_cast<double>(a.size());
        for (auto& v : a) v -= mean;

        rows(a, 0);
        cols(a, 0);
        const double inv_mn = 1.0 / (static_cast<double>(w) * h);
        PoissonSolution sol;
        sol.potential = GridF(w, h);
        sol.field_x = GridF(w, h);
        sol.field_y = GridF(w, h);
        for (int v = 0; v < h; ++v) {
            const double wv = M_PI * v / h;
            const double pv = (v == 0) ? 1.0 : 2.0;
            for (int u = 0; u < w; ++u) {
                const double wu = M_PI * u / w;
                const double pu = (u == 0) ? 1.0 : 2.0;
                const double denom = wu * wu + wv * wv;
                const double c = denom > 0.0
                                     ? a.at(u, v) * pu * pv * inv_mn / denom
                                     : 0.0;
                sol.potential.at(u, v) = c;
                sol.field_x.at(u, v) = c * wu;
                sol.field_y.at(u, v) = c * wv;
            }
        }
        rows(sol.potential, 1);
        cols(sol.potential, 1);
        rows(sol.field_x, 2);
        cols(sol.field_x, 1);
        rows(sol.field_y, 1);
        cols(sol.field_y, 2);
        return sol;
    }
};

}  // namespace legacy

GridF bench_density_grid(int n) {
    Rng rng(3);
    GridF rho(n, n);
    for (auto& v : rho) v = rng.uniform();
    return rho;
}

void BM_PoissonSolve(benchmark::State& state) {
    OneThreadGuard one;  // kernel speed, not thread scaling
    const int n = static_cast<int>(state.range(0));
    PoissonSolver solver(n, n);
    PoissonWorkspace ws;
    const GridF rho = bench_density_grid(n);
    for (auto _ : state) {
        const PoissonSolution& sol = solver.solve(rho, ws);
        benchmark::DoNotOptimize(sol.potential.data());
    }
}
BENCHMARK(BM_PoissonSolve)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_PoissonSolveLegacy(benchmark::State& state) {
    OneThreadGuard one;
    const int n = static_cast<int>(state.range(0));
    legacy::Solver solver(n, n);
    const GridF rho = bench_density_grid(n);
    for (auto _ : state) {
        auto sol = solver.solve(rho);
        benchmark::DoNotOptimize(sol.potential.data());
    }
}
BENCHMARK(BM_PoissonSolveLegacy)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// 2D pass shapes: contiguous row batch vs the two column strategies
// (blocked transpose round-trip vs the legacy strided walk). These isolate
// why the solver moved to transposes.
void BM_Dct2dRows(benchmark::State& state) {
    OneThreadGuard one;
    const int n = static_cast<int>(state.range(0));
    const GridF g = bench_density_grid(n);
    GridF work;
    DctWorkspace ws(n);
    for (auto _ : state) {
        grid_copy_into(g, work);
        for (int y = 0; y < n; ++y) ws.dct2(&work.at(0, y));
        benchmark::DoNotOptimize(work.data());
    }
}
BENCHMARK(BM_Dct2dRows)->Arg(512)->Arg(1024);

void BM_Dct2dCols(benchmark::State& state) {
    OneThreadGuard one;
    const int n = static_cast<int>(state.range(0));
    const GridF g = bench_density_grid(n);
    GridF t, work;
    DctWorkspace ws(n);
    for (auto _ : state) {
        grid_transpose_into(g, t);
        for (int y = 0; y < n; ++y) ws.dct2(&t.at(0, y));
        grid_transpose_into(t, work);
        benchmark::DoNotOptimize(work.data());
    }
}
BENCHMARK(BM_Dct2dCols)->Arg(512)->Arg(1024);

void BM_Dct2dColsStrided(benchmark::State& state) {
    OneThreadGuard one;
    const int n = static_cast<int>(state.range(0));
    const GridF g = bench_density_grid(n);
    GridF work;
    DctWorkspace ws(n);
    std::vector<double> col(static_cast<size_t>(n));
    for (auto _ : state) {
        grid_copy_into(g, work);
        for (int x = 0; x < n; ++x) {
            for (int y = 0; y < n; ++y)
                col[static_cast<size_t>(y)] = work.at(x, y);
            ws.dct2(col.data());
            for (int y = 0; y < n; ++y)
                work.at(x, y) = col[static_cast<size_t>(y)];
        }
        benchmark::DoNotOptimize(work.data());
    }
}
BENCHMARK(BM_Dct2dColsStrided)->Arg(512)->Arg(1024);

Design bench_design(int cells) {
    GeneratorConfig cfg;
    cfg.seed = 5;
    cfg.num_cells = cells;
    cfg.num_macros = 3;
    return generate_circuit(cfg);
}

void BM_DensityEvaluate(benchmark::State& state) {
    const Design d = bench_design(static_cast<int>(state.range(0)));
    const BinGrid grid(d.region, 64, 64);
    const ElectroDensity ed(grid);
    Design work = d;
    for (auto _ : state) {
        auto res = ed.evaluate(work);
        benchmark::DoNotOptimize(res.penalty);
    }
}
BENCHMARK(BM_DensityEvaluate)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_WaWirelength(benchmark::State& state) {
    const Design d = bench_design(static_cast<int>(state.range(0)));
    const WAWirelength wa(8.0);
    for (auto _ : state) {
        auto res = wa.evaluate(d);
        benchmark::DoNotOptimize(res.total);
    }
}
BENCHMARK(BM_WaWirelength)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_ManhattanMst(benchmark::State& state) {
    const int k = static_cast<int>(state.range(0));
    Rng rng(6);
    std::vector<Vec2> pts(static_cast<size_t>(k));
    for (auto& p : pts) p = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
    for (auto _ : state) {
        auto edges = manhattan_mst(pts);
        benchmark::DoNotOptimize(edges.data());
    }
}
BENCHMARK(BM_ManhattanMst)->Arg(4)->Arg(16)->Arg(64);

void BM_GlobalRoute(benchmark::State& state) {
    const Design d = bench_design(static_cast<int>(state.range(0)));
    const BinGrid grid(d.region, 64, 64);
    const GlobalRouter router(grid);
    for (auto _ : state) {
        auto rr = router.route(d);
        benchmark::DoNotOptimize(rr.wirelength_dbu);
    }
}
BENCHMARK(BM_GlobalRoute)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_NetMovingGradient(benchmark::State& state) {
    const Design d = bench_design(static_cast<int>(state.range(0)));
    const BinGrid grid(d.region, 64, 64);
    const GlobalRouter router(grid);
    const RouteResult rr = router.route(d);
    CongestionField field(grid);
    field.build(rr.congestion);
    const NetMovingGradient nm;
    for (auto _ : state) {
        auto res = nm.compute(d, rr.congestion, field);
        benchmark::DoNotOptimize(res.penalty);
    }
}
BENCHMARK(BM_NetMovingGradient)->Arg(1000)->Arg(4000);

// --- Incremental congestion-estimation benchmarks ------------------------
// Full-vs-incremental pairs emulating the routability loop's converged
// tail, where the incremental cache earns its keep: most outer iterations
// late in the loop move only a handful of cells (early iterations change
// everything and are full rebuilds in either mode, so they measure the
// same code). The generator scatters cells uniformly, which no mid-loop
// placement looks like, so the scenario first pulls each connectivity
// cluster together geometrically — the state a wirelength-driven
// placement has long reached by the time the outer loop converges. Two
// placement snapshots a handful of cells apart are then alternated every
// iteration, so each call sees a fresh "moved since last time" delta and
// the perturbed nets flip back and forth. Audits are disabled for both
// sides of each pair: the incremental-route reconciliation auditor
// recomputes demand from scratch on every call, which would measure the
// audit, not the cache.

/// Pull the generator's index-contiguous connectivity clusters together
/// on a cluster grid (emulates a converged placement; without this every
/// net spans a large fraction of the die and no estimator delta is ever
/// local). Matches GeneratorConfig::cluster_size's default.
void clusterize(Design& d, int cluster_size = 24) {
    std::vector<int> movable;
    for (int i = 0; i < d.num_cells(); ++i)
        if (d.cells[static_cast<size_t>(i)].movable()) movable.push_back(i);
    const int nc = (static_cast<int>(movable.size()) + cluster_size - 1) /
                   cluster_size;
    const int side = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(nc))));
    Rng rng(99);
    const double cw = d.region.width() / side;
    const double ch = d.region.height() / side;
    for (int c = 0; c < nc; ++c) {
        const double cx = d.region.lx + (c % side + 0.5) * cw;
        const double cy = d.region.ly + (c / side + 0.5) * ch;
        const int lo = c * cluster_size;
        const int hi = std::min((c + 1) * cluster_size,
                                static_cast<int>(movable.size()));
        for (int k = lo; k < hi; ++k) {
            Cell& cell = d.cells[static_cast<size_t>(movable[
                static_cast<size_t>(k)])];
            cell.pos = {std::clamp(cx + rng.uniform(-cw, cw) * 0.45,
                                   d.region.lx, d.region.hx),
                        std::clamp(cy + rng.uniform(-ch, ch) * 0.45,
                                   d.region.ly, d.region.hy)};
        }
    }
}

/// Two placement snapshots of one clusterized design, `moves` cells
/// apart, with O(cells) switching between them. `local_only` restricts
/// the moved cells to ones whose nets all stay within `local_extent` of
/// the die (the regime of the paper's local congestion mitigation: a net
/// with a die-crossing escape pin invalidates a die-sized region by
/// construction, in which case an exact incremental update rightly
/// degenerates to a full one).
struct LoopScenario {
    Design d;
    std::vector<Vec2> pos_a, pos_b;

    explicit LoopScenario(int cells, int moves = 8, bool local_only = false,
                          double local_extent = 0.125)
        : d(bench_design(cells)) {
        clusterize(d);
        pos_a.resize(d.cells.size());
        for (size_t i = 0; i < d.cells.size(); ++i) pos_a[i] = d.cells[i].pos;
        pos_b = pos_a;
        std::vector<unsigned char> global_cell(d.cells.size(), 0);
        if (local_only) {
            const double mx = local_extent * d.region.width();
            const double my = local_extent * d.region.height();
            for (const Net& net : d.nets) {
                if (net.pins.empty()) continue;
                Vec2 lo = d.pin_position(net.pins.front());
                Vec2 hi = lo;
                for (int p : net.pins) {
                    const Vec2 pp = d.pin_position(p);
                    lo = {std::min(lo.x, pp.x), std::min(lo.y, pp.y)};
                    hi = {std::max(hi.x, pp.x), std::max(hi.y, pp.y)};
                }
                if (hi.x - lo.x <= mx && hi.y - lo.y <= my) continue;
                for (int p : net.pins)
                    global_cell[static_cast<size_t>(
                        d.pins[static_cast<size_t>(p)].cell)] = 1;
            }
        }
        std::vector<int> movable;
        for (int i = 0; i < d.num_cells(); ++i)
            if (d.cells[static_cast<size_t>(i)].movable() &&
                !global_cell[static_cast<size_t>(i)])
                movable.push_back(i);
        Rng rng(17);
        const double dx = 0.02 * d.region.width();
        const double dy = 0.02 * d.region.height();
        for (int k = 0; k < moves; ++k) {
            const size_t ci = static_cast<size_t>(movable[static_cast<size_t>(
                rng.uniform_int(0, static_cast<int>(movable.size()) - 1))]);
            pos_b[ci] = {std::clamp(pos_a[ci].x + rng.uniform(-dx, dx),
                                    d.region.lx, d.region.hx),
                         std::clamp(pos_a[ci].y + rng.uniform(-dy, dy),
                                    d.region.ly, d.region.hy)};
        }
    }

    void apply(bool b) {
        const std::vector<Vec2>& p = b ? pos_b : pos_a;
        for (size_t i = 0; i < d.cells.size(); ++i) d.cells[i].pos = p[i];
    }
};

/// Disables runtime audits for one benchmark run, restoring them after.
struct AuditOffGuard {
    bool saved = audit_enabled();
    AuditOffGuard() { set_audit_enabled(false); }
    ~AuditOffGuard() { set_audit_enabled(saved); }
};

/// One-RRR-round router config with layer capacities scaled so the
/// clusterized synthetic is routable (near-zero overflow), as the loop's
/// inflation has achieved by its converged tail. At the generator's raw
/// density the maze fallback grinds through a hopeless 20k+-overflow map
/// for ~1s per round in *both* modes, hiding everything else under a
/// constant.
RouterConfig loop_router_config() {
    RouterConfig cfg;
    cfg.rrr_rounds = 1;
    for (LayerSpec& l : cfg.layers) l.capacity *= 4.0;
    return cfg;
}

void BM_RoutabilityLoopRouteFull(benchmark::State& state) {
    AuditOffGuard audits;
    LoopScenario sc(static_cast<int>(state.range(0)));
    const BinGrid grid(sc.d.region, 64, 64);
    const GlobalRouter router(grid, loop_router_config());
    bool flip = false;
    for (auto _ : state) {
        sc.apply(flip);
        flip = !flip;
        auto rr = router.route(sc.d);
        benchmark::DoNotOptimize(rr.total_overflow);
    }
}
BENCHMARK(BM_RoutabilityLoopRouteFull)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_RoutabilityLoopRouteIncremental(benchmark::State& state) {
    AuditOffGuard audits;
    LoopScenario sc(static_cast<int>(state.range(0)));
    const BinGrid grid(sc.d.region, 64, 64);
    const GlobalRouter router(grid, loop_router_config());
    IncrementalRouteState inc;
    inc.rebuild_epoch = 0;  // measure steady-state cache reuse
    sc.apply(false);
    (void)router.route(sc.d, &inc);  // warm the cache outside the timing
    const IncrementalRouteStats warm = inc.stats;
    bool flip = true;
    for (auto _ : state) {
        sc.apply(flip);
        flip = !flip;
        auto rr = router.route(sc.d, &inc);
        benchmark::DoNotOptimize(rr.total_overflow);
    }
    const long long calls = inc.stats.calls - warm.calls;
    const long long total = inc.stats.conns_total - warm.conns_total;
    const long long hits = inc.stats.cache_hits - warm.cache_hits;
    const long long rerouted = inc.stats.conns_rerouted - warm.conns_rerouted;
    const long long nets = inc.stats.nets_rerouted - warm.nets_rerouted;
    state.counters["cache_hit_rate"] =
        total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                  : 0.0;
    state.counters["conns_rerouted_per_iter"] =
        calls > 0 ? static_cast<double>(rerouted) / static_cast<double>(calls)
                  : 0.0;
    state.counters["nets_rerouted_per_iter"] =
        calls > 0 ? static_cast<double>(nets) / static_cast<double>(calls)
                  : 0.0;
}
BENCHMARK(BM_RoutabilityLoopRouteIncremental)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_RudyCongestionFull(benchmark::State& state) {
    AuditOffGuard audits;
    LoopScenario sc(static_cast<int>(state.range(0)), 8, true);
    const BinGrid grid(sc.d.region, 64, 64);
    bool flip = false;
    for (auto _ : state) {
        sc.apply(flip);
        flip = !flip;
        auto cmap = rudy_congestion(sc.d, grid);
        benchmark::DoNotOptimize(cmap.demand().data());
    }
}
BENCHMARK(BM_RudyCongestionFull)->Arg(4000)->Arg(16000);

void BM_RudyCongestionIncremental(benchmark::State& state) {
    AuditOffGuard audits;
    LoopScenario sc(static_cast<int>(state.range(0)), 8, true);
    const BinGrid grid(sc.d.region, 64, 64);
    IncrementalRudyState inc;
    sc.apply(false);
    (void)rudy_congestion(sc.d, grid, {}, {}, &inc);  // warm
    const IncrementalRudyStats warm = inc.stats;
    bool flip = true;
    for (auto _ : state) {
        sc.apply(flip);
        flip = !flip;
        auto cmap = rudy_congestion(sc.d, grid, {}, {}, &inc);
        benchmark::DoNotOptimize(cmap.demand().data());
    }
    const long long calls = inc.stats.calls - warm.calls;
    const long long bins = inc.stats.bins_recomputed - warm.bins_recomputed;
    state.counters["bins_recomputed_per_iter"] =
        calls > 0 ? static_cast<double>(bins) / static_cast<double>(calls)
                  : 0.0;
}
BENCHMARK(BM_RudyCongestionIncremental)->Arg(4000)->Arg(16000);

// --- Thread-scaling benchmarks -------------------------------------------
// The parallel execution layer guarantees bitwise-identical results for any
// thread count, so these measure pure speedup. Arg = worker count; run on a
// >= 4-core host to see the scaling curve (on fewer cores the higher counts
// just oversubscribe). `run_benches.sh` records the 1/2/4/8 sweep.

/// Pins the worker count for one benchmark run, restoring it afterwards.
struct ThreadArgGuard {
    int saved = par::max_threads();
    explicit ThreadArgGuard(benchmark::State& state) {
        par::set_max_threads(static_cast<int>(state.range(0)));
    }
    ~ThreadArgGuard() { par::set_max_threads(saved); }
};

void BM_WaGradientThreads(benchmark::State& state) {
    ThreadArgGuard threads(state);
    const Design d = bench_design(16000);
    const WAWirelength wa(8.0);
    for (auto _ : state) {
        auto res = wa.evaluate(d);
        benchmark::DoNotOptimize(res.total);
    }
}
BENCHMARK(BM_WaGradientThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DensityScatterThreads(benchmark::State& state) {
    ThreadArgGuard threads(state);
    const Design d = bench_design(16000);
    const BinGrid grid(d.region, 64, 64);
    const ElectroDensity ed(grid);
    for (auto _ : state) {
        auto rho = ed.movable_density(d);
        benchmark::DoNotOptimize(rho.data());
    }
}
BENCHMARK(BM_DensityScatterThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RouterRrrRoundThreads(benchmark::State& state) {
    ThreadArgGuard threads(state);
    const Design d = bench_design(4000);
    const BinGrid grid(d.region, 64, 64);
    RouterConfig cfg;
    cfg.rrr_rounds = 1;
    const GlobalRouter router(grid, cfg);
    for (auto _ : state) {
        auto rr = router.route(d);
        benchmark::DoNotOptimize(rr.total_overflow);
    }
}
BENCHMARK(BM_RouterRrrRoundThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- SIMD kernel benchmarks ----------------------------------------------
// Single-thread speedup of the vectorized hot kernels (DESIGN.md §14)
// against faithful copies of the pre-SIMD scalar code they replaced, in the
// same binary on the same host. The baselines are source copies — NOT
// ScalarVecD instantiations — so the comparison is honest even where the
// compiler could auto-vectorize the 4-lane wrapper under -mavx2.
// `run_benches.sh --json` records the BM_Simd* pairs in BENCH_simd.json.
namespace presimd {

/// Pre-SIMD WAWirelength::wa_1d, verbatim minus the class wrapper.
double wa_1d(const double* xs, size_t n, double gamma, double* wp, double* wm,
             double* grad) {
    double xmax = xs[0], xmin = xs[0];
    for (size_t i = 1; i < n; ++i) {
        xmax = std::max(xmax, xs[i]);
        xmin = std::min(xmin, xs[i]);
    }
    double sp = 0.0, ap = 0.0, sm = 0.0, am = 0.0;
    for (size_t i = 0; i < n; ++i) {
        wp[i] = std::exp((xs[i] - xmax) / gamma);
        wm[i] = std::exp((xmin - xs[i]) / gamma);
        sp += wp[i];
        ap += xs[i] * wp[i];
        sm += wm[i];
        am += xs[i] * wm[i];
    }
    const double fp = ap / sp;
    const double fm = am / sm;
    for (size_t j = 0; j < n; ++j) {
        const double dp = (wp[j] / sp) * (1.0 + (xs[j] - fp) / gamma);
        const double dm = (wm[j] / sm) * (1.0 - (xs[j] - fm) / gamma);
        grad[j] = dp - dm;
    }
    return fp - fm;
}

/// Pre-SIMD BinGrid::splat_area: the for_each_overlap deposit loop.
void splat_area(const BinGrid& grid, GridF& g, const Rect& r, double scale) {
    grid.for_each_overlap(
        r, [&](int ix, int iy, double a) { g.at(ix, iy) += a * scale; });
}

/// Pre-SIMD density gather: the for_each_overlap loop of electro_density.
void gather(const BinGrid& grid, const GridF& pot, const GridF& fx,
            const GridF& fy, const Rect& r, double scale, double& psi,
            double& ex, double& ey) {
    psi = ex = ey = 0.0;
    grid.for_each_overlap(r, [&](int ix, int iy, double a) {
        const double w = a * scale;
        psi += w * pot.at(ix, iy);
        ex += w * fx.at(ix, iy);
        ey += w * fy.at(ix, iy);
    });
}

/// Pre-SIMD FftPlan: same tables, scalar strided-twiddle butterfly loop.
struct Fft {
    int n;
    std::vector<int> rev;
    std::vector<Complex> tw;

    explicit Fft(int n_) : n(n_), rev(static_cast<size_t>(n_)) {
        for (int i = 1; i < n; ++i)
            rev[static_cast<size_t>(i)] =
                (rev[static_cast<size_t>(i >> 1)] >> 1) |
                ((i & 1) ? n >> 1 : 0);
        tw.resize(static_cast<size_t>(n / 2));
        for (int k = 0; k < n / 2; ++k) {
            const double ang = -2.0 * M_PI * k / n;
            tw[static_cast<size_t>(k)] = {std::cos(ang), std::sin(ang)};
        }
    }

    template <bool Inverse>
    void transform(Complex* a) const {
        if (n <= 1) return;
        for (int i = 1; i < n; ++i) {
            const int j = rev[static_cast<size_t>(i)];
            if (i < j) std::swap(a[i], a[j]);
        }
        for (int i = 0; i < n; i += 2) {
            const Complex u = a[i];
            const Complex v = a[i + 1];
            a[i] = u + v;
            a[i + 1] = u - v;
        }
        for (int len = 4; len <= n; len <<= 1) {
            const int half = len >> 1;
            const int stride = n / len;
            for (int i = 0; i < n; i += len) {
                Complex* lo = a + i;
                Complex* hi = a + i + half;
                for (int j = 0; j < half; ++j) {
                    const Complex& w = tw[static_cast<size_t>(j * stride)];
                    const double wr = w.real();
                    const double wi = Inverse ? -w.imag() : w.imag();
                    const double hr = hi[j].real(), hi_ = hi[j].imag();
                    const double vr = hr * wr - hi_ * wi;
                    const double vi = hr * wi + hi_ * wr;
                    const double ur = lo[j].real(), ui = lo[j].imag();
                    lo[j] = {ur + vr, ui + vi};
                    hi[j] = {ur - vr, ui - vi};
                }
            }
        }
        if (Inverse) {
            const double inv = 1.0 / n;
            for (int i = 0; i < n; ++i) a[i] *= inv;
        }
    }
};

/// Pre-SIMD DctWorkspace::dct2 on top of the scalar half-size FFT.
struct Dct {
    int n, m;
    Fft fft;
    std::vector<double> cs, sn;
    std::vector<Complex> wr;
    std::vector<Complex> buf;
    std::vector<double> tmp;

    explicit Dct(int n_)
        : n(n_),
          m(n_ / 2),
          fft(n_ / 2),
          cs(static_cast<size_t>(n_)),
          sn(static_cast<size_t>(n_)),
          wr(static_cast<size_t>(n_ / 2) + 1),
          buf(static_cast<size_t>(n_ / 2)),
          tmp(static_cast<size_t>(n_)) {
        for (int k = 0; k < n; ++k) {
            const double ang = M_PI * k / (2.0 * n);
            cs[static_cast<size_t>(k)] = std::cos(ang);
            sn[static_cast<size_t>(k)] = std::sin(ang);
        }
        for (int k = 0; k <= m; ++k) {
            const double ang = -2.0 * M_PI * k / n;
            wr[static_cast<size_t>(k)] = {std::cos(ang), std::sin(ang)};
        }
    }

    void dct2(double* x) {
        if (n == 1) return;
        for (int i = 0; i < m; ++i) tmp[static_cast<size_t>(i)] = x[2 * i];
        for (int i = 0; i < m; ++i)
            tmp[static_cast<size_t>(n - 1 - i)] = x[2 * i + 1];
        for (int k = 0; k < m; ++k)
            buf[static_cast<size_t>(k)] = {tmp[static_cast<size_t>(2 * k)],
                                           tmp[static_cast<size_t>(2 * k + 1)]};
        fft.transform<false>(buf.data());
        x[0] = buf[0].real() + buf[0].imag();
        x[m] = (buf[0].real() - buf[0].imag()) * cs[static_cast<size_t>(m)];
        for (int k = 1; k < m; ++k) {
            const Complex z = buf[static_cast<size_t>(k)];
            const Complex y = buf[static_cast<size_t>(m - k)];
            const double er = 0.5 * (z.real() + y.real());
            const double ei = 0.5 * (z.imag() - y.imag());
            const double odr = 0.5 * (z.imag() + y.imag());
            const double odi = -0.5 * (z.real() - y.real());
            const Complex w = wr[static_cast<size_t>(k)];
            const double vr = er + w.real() * odr - w.imag() * odi;
            const double vi = ei + w.real() * odi + w.imag() * odr;
            x[k] = vr * cs[static_cast<size_t>(k)] +
                   vi * sn[static_cast<size_t>(k)];
            x[n - k] = vr * cs[static_cast<size_t>(n - k)] -
                       vi * sn[static_cast<size_t>(n - k)];
        }
    }
};

}  // namespace presimd

/// A batch of WA "nets" with placement-realistic degree mix.
struct WaBatch {
    std::vector<double> xs;        ///< flat coordinates
    std::vector<size_t> offsets;   ///< net i: [offsets[i], offsets[i+1])
    std::vector<double> wp, wm, grad;

    explicit WaBatch(int nets) {
        Rng rng(77);
        const int degrees[] = {2, 3, 3, 4, 5, 8, 16, 33, 64};
        offsets.push_back(0);
        for (int i = 0; i < nets; ++i) {
            const int deg = degrees[static_cast<size_t>(i) % 9];
            for (int j = 0; j < deg; ++j)
                xs.push_back(rng.uniform(0.0, 1000.0));
            offsets.push_back(xs.size());
        }
        wp.resize(wa::padded_size(xs.size()));
        wm.resize(wp.size());
        grad.resize(xs.size());
    }
};

void BM_SimdWaLegacy(benchmark::State& state) {
    WaBatch b(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        double total = 0.0;
        for (size_t i = 0; i + 1 < b.offsets.size(); ++i) {
            const size_t o = b.offsets[i], n = b.offsets[i + 1] - o;
            total += presimd::wa_1d(b.xs.data() + o, n, 8.0, b.wp.data() + o,
                                    b.wm.data() + o, b.grad.data() + o);
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_SimdWaLegacy)->Arg(2048);

void BM_SimdWa(benchmark::State& state) {
    WaBatch b(static_cast<int>(state.range(0)));
    // Per-net scratch at offset 0 like production (padded per call).
    std::vector<double> wp(wa::padded_size(70)), wm(wp.size());
    for (auto _ : state) {
        double total = 0.0;
        for (size_t i = 0; i + 1 < b.offsets.size(); ++i) {
            const size_t o = b.offsets[i], n = b.offsets[i + 1] - o;
            total += wa::wa_1d_core<simd::VecD>(b.xs.data() + o, n, 8.0,
                                                wp.data(), wm.data(),
                                                b.grad.data() + o);
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_SimdWa)->Arg(2048);

/// Random rects over a 256x256 grid with row spans up to ~32 bins — the
/// shape of density footprints (few bins) through RUDY boxes (wide).
struct SplatBatch {
    BinGrid grid{Rect{0.0, 0.0, 1024.0, 1024.0}, 256, 256};
    std::vector<Rect> rects;
    std::vector<double> scales;

    explicit SplatBatch(int count) {
        Rng rng(78);
        for (int i = 0; i < count; ++i) {
            const double w = rng.uniform(2.0, 128.0);
            const double h = rng.uniform(2.0, 128.0);
            const double x0 = rng.uniform(-16.0, 1024.0 - w + 16.0);
            const double y0 = rng.uniform(-16.0, 1024.0 - h + 16.0);
            rects.push_back({x0, y0, x0 + w, y0 + h});
            scales.push_back(rng.uniform(0.1, 2.0));
        }
    }
};

void BM_SimdScatterLegacy(benchmark::State& state) {
    SplatBatch b(static_cast<int>(state.range(0)));
    GridF g = b.grid.make_grid();
    for (auto _ : state) {
        for (size_t i = 0; i < b.rects.size(); ++i)
            presimd::splat_area(b.grid, g, b.rects[i], b.scales[i]);
        benchmark::DoNotOptimize(g.data());
    }
}
BENCHMARK(BM_SimdScatterLegacy)->Arg(4096);

void BM_SimdScatter(benchmark::State& state) {
    SplatBatch b(static_cast<int>(state.range(0)));
    GridF g = b.grid.make_grid();
    for (auto _ : state) {
        for (size_t i = 0; i < b.rects.size(); ++i)
            splat_rect<simd::VecD>(b.grid, g, b.rects[i], b.scales[i]);
        benchmark::DoNotOptimize(g.data());
    }
}
BENCHMARK(BM_SimdScatter)->Arg(4096);

void BM_SimdGatherLegacy(benchmark::State& state) {
    SplatBatch b(static_cast<int>(state.range(0)));
    Rng rng(79);
    GridF pot = b.grid.make_grid(), fx = b.grid.make_grid(),
          fy = b.grid.make_grid();
    for (auto& v : pot.raw()) v = rng.uniform(-1.0, 1.0);
    for (auto& v : fx.raw()) v = rng.uniform(-1.0, 1.0);
    for (auto& v : fy.raw()) v = rng.uniform(-1.0, 1.0);
    for (auto _ : state) {
        double acc = 0.0;
        for (size_t i = 0; i < b.rects.size(); ++i) {
            double psi, ex, ey;
            presimd::gather(b.grid, pot, fx, fy, b.rects[i], b.scales[i], psi,
                            ex, ey);
            acc += psi + ex + ey;
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_SimdGatherLegacy)->Arg(4096);

void BM_SimdGather(benchmark::State& state) {
    SplatBatch b(static_cast<int>(state.range(0)));
    Rng rng(79);
    GridF pot = b.grid.make_grid(), fx = b.grid.make_grid(),
          fy = b.grid.make_grid();
    for (auto& v : pot.raw()) v = rng.uniform(-1.0, 1.0);
    for (auto& v : fx.raw()) v = rng.uniform(-1.0, 1.0);
    for (auto& v : fy.raw()) v = rng.uniform(-1.0, 1.0);
    for (auto _ : state) {
        double acc = 0.0;
        for (size_t i = 0; i < b.rects.size(); ++i) {
            const GatherAcc a = gather_rect<simd::VecD, true>(
                b.grid, pot, fx, fy, b.rects[i], b.scales[i]);
            acc += a.psi + a.ex + a.ey;
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_SimdGather)->Arg(4096);

void BM_SimdFftLegacy(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const presimd::Fft plan(n);
    Rng rng(80);
    std::vector<Complex> a(static_cast<size_t>(n));
    for (auto& v : a) v = {rng.uniform(), rng.uniform()};
    std::vector<Complex> work(a.size());
    for (auto _ : state) {
        work = a;
        plan.transform<false>(work.data());
        benchmark::DoNotOptimize(work.data());
    }
}
BENCHMARK(BM_SimdFftLegacy)->Arg(1024);

void BM_SimdFft(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const FftPlan& plan = fft_plan(n);
    Rng rng(80);
    std::vector<Complex> a(static_cast<size_t>(n));
    for (auto& v : a) v = {rng.uniform(), rng.uniform()};
    std::vector<Complex> work(a.size());
    for (auto _ : state) {
        work = a;
        plan.forward(work.data());
        benchmark::DoNotOptimize(work.data());
    }
}
BENCHMARK(BM_SimdFft)->Arg(1024);

void BM_SimdDctLegacy(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    presimd::Dct ws(n);
    Rng rng(81);
    std::vector<double> x(static_cast<size_t>(n));
    for (auto& v : x) v = rng.uniform();
    std::vector<double> work(x.size());
    for (auto _ : state) {
        work = x;
        ws.dct2(work.data());
        benchmark::DoNotOptimize(work.data());
    }
}
BENCHMARK(BM_SimdDctLegacy)->Arg(1024);

void BM_SimdDct(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    DctWorkspace ws(n);
    Rng rng(81);
    std::vector<double> x(static_cast<size_t>(n));
    for (auto& v : x) v = rng.uniform();
    std::vector<double> work(x.size());
    for (auto _ : state) {
        work = x;
        ws.dct2(work.data());
        benchmark::DoNotOptimize(work.data());
    }
}
BENCHMARK(BM_SimdDct)->Arg(1024);

/// RUDY per-bin accumulation: the same net boxes/densities deposited with
/// the pre-SIMD overlap loop vs the vectorized row kernel.
struct RudyBatch {
    Design d;
    BinGrid grid;
    std::vector<Rect> bbs;
    std::vector<double> dens;

    explicit RudyBatch(int cells) : d(bench_design(cells)), grid(d.region, 64, 64) {
        const RudyConfig cfg;
        const double mean_extent = 0.5 * (grid.bin_w() + grid.bin_h());
        for (const Net& net : d.nets) {
            if (net.degree() < 2 || net.degree() > cfg.max_degree) continue;
            Rect bb = net_bbox(d, net);
            if (bb.width() < grid.bin_w())
                bb = Rect::from_center(bb.center(), grid.bin_w(), bb.height());
            if (bb.height() < grid.bin_h())
                bb = Rect::from_center(bb.center(), bb.width(), grid.bin_h());
            const double wl = bb.width() + bb.height();
            const double area = bb.area();
            bbs.push_back(bb);
            dens.push_back(area > 0.0 ? net.weight * wl / (area * mean_extent)
                                      : 0.0);
        }
    }
};

void BM_SimdRudyLegacy(benchmark::State& state) {
    RudyBatch b(static_cast<int>(state.range(0)));
    GridF g = b.grid.make_grid();
    for (auto _ : state) {
        for (size_t i = 0; i < b.bbs.size(); ++i)
            presimd::splat_area(b.grid, g, b.bbs[i], b.dens[i]);
        benchmark::DoNotOptimize(g.data());
    }
}
BENCHMARK(BM_SimdRudyLegacy)->Arg(4000);

void BM_SimdRudy(benchmark::State& state) {
    RudyBatch b(static_cast<int>(state.range(0)));
    GridF g = b.grid.make_grid();
    for (auto _ : state) {
        for (size_t i = 0; i < b.bbs.size(); ++i)
            splat_rect<simd::VecD>(b.grid, g, b.bbs[i], b.dens[i]);
        benchmark::DoNotOptimize(g.data());
    }
}
BENCHMARK(BM_SimdRudy)->Arg(4000);

}  // namespace

int main(int argc, char** argv) {
    // Records which backend produced BENCH_simd.json ("avx2" / "neon" /
    // "scalar") in the benchmark context block.
    benchmark::AddCustomContext("rdp_simd", rdp::simd::backend_name());
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
