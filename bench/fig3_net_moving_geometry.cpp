// Fig. 3 harness: geometry of the two-pin net-moving gradient.
//
// Reconstructs the paper's Fig. 3 quantitatively on a synthetic congestion
// field: a hot blob off a two-pin net's segment. For a family of nets at
// increasing distances from the blob it prints the virtual cell position
// (Eq. 6-8), the perpendicular gradient magnitude |grad C_perp|, and the
// per-endpoint gradients with their L/(2 d_iv) scaling (Eq. 9) — showing
// that (a) gradients are perpendicular to the net, (b) the closer pin gets
// the larger gradient, and (c) the effect decays away from the hotspot.

#include <cmath>
#include <iostream>

#include "congestion/congestion_field.hpp"
#include "congestion/net_moving.hpp"
#include "congestion/virtual_cell.hpp"
#include "util/table.hpp"

int main() {
    using namespace rdp;

    // 32x32 G-cells of 10x10 DBU; hot blob centered at (160, 120).
    const BinGrid grid({0, 0, 320, 320}, 32, 32);
    GridF dmd(32, 32, 2.0), cap(32, 32, 10.0);
    for (int y = 10; y <= 13; ++y)
        for (int x = 14; x <= 17; ++x) dmd.at(x, y) = 26.0;
    const CongestionMap cmap(grid, dmd, cap);
    CongestionField field(grid);
    field.build(cmap);

    std::cout << "=== Fig. 3: two-pin net moving geometry ===\n"
              << "hot blob: G-cells [14..17]x[10..13] (x 140-180, y "
                 "100-140), utilization 2.6\n\n";

    // Horizontal nets crossing above the blob at increasing heights.
    Table t({"net y", "virtual cell (x,y)", "vc congestion",
             "|gradC_perp|", "|grad c1| (near)", "|grad c2| (far)",
             "perpendicular?"});
    NetMovingGradient nm;
    // The first four nets cross the blob's rows (congested virtual cells,
    // gradients alive); the last runs well clear of it (no congestion on
    // the segment -> the mechanism leaves the net alone).
    for (const double y : {105.0, 118.0, 128.0, 138.0, 185.0}) {
        Design d;
        d.region = {0, 0, 320, 320};
        const int c1 = d.add_cell("c1", 4, 8, CellKind::Movable, {120, y});
        const int c2 = d.add_cell("c2", 4, 8, CellKind::Movable, {300, y});
        const int net = d.add_net("n");
        d.connect(net, d.add_pin(c1, {0, 0}));
        d.connect(net, d.add_pin(c2, {0, 0}));

        std::vector<Vec2> grad(2);
        const VirtualCell vc = nm.two_pin_gradient(
            d, d.cells[c1].pos, d.cells[c2].pos, c1, c2, 32.0, cmap, field,
            grad);
        const Vec2 gcv = field.charge_gradient(vc.pos, 32.0);
        const Vec2 seg = d.cells[c2].pos - d.cells[c1].pos;
        Vec2 n = seg.perp().normalized();
        if (n.dot(gcv) < 0) n = n * -1.0;
        const double gperp = std::abs(n.dot(gcv));
        const bool perp1 =
            std::abs(grad[0].dot(seg)) < 1e-9 * seg.norm() + 1e-12;

        char pos_buf[64];
        std::snprintf(pos_buf, sizeof pos_buf, "(%.1f, %.1f)", vc.pos.x,
                      vc.pos.y);
        t.add_row({Table::fmt(y, 0), pos_buf, Table::fmt(vc.congestion, 2),
                   Table::fmt(gperp, 4), Table::fmt(grad[0].norm(), 4),
                   Table::fmt(grad[1].norm(), 4), perp1 ? "yes" : "NO"});
    }
    t.print(std::cout);

    std::cout
        << "\nReadout: the virtual cell lands inside the blob's column "
           "range; the near pin (c1) receives the larger gradient per "
           "Eq. (9); gradients are exactly perpendicular to the segment "
           "(Fig. 3(b)). The field physics shows too: the push is "
           "strongest for nets near the blob's edges, nearly zero at the "
           "blob's center (the potential is flat there — no direction "
           "helps), and exactly zero once the segment no longer touches "
           "congestion.\n";
    return 0;
}
