// Design-choice ablation: the congestion source driving the loop.
//
// The paper runs a full GPU global route inside every routability
// iteration (Fig. 2). Prior deep-learning work (DATE'21 [4]) instead uses
// RUDY/PinRUDY — cheap but blind to actual routing behavior ("RUDY treats
// all regions within the BB equally", paper Section I). This bench runs
// the full framework with each source and reports final #DRVs and the
// placement time spent, quantifying the accuracy-vs-cost trade.
//
// Environment knobs: RDP_SCALE (default 1.0).

#include <cstdlib>
#include <iostream>

#include "benchgen/ispd_suite.hpp"
#include "eval/route_metrics.hpp"
#include "place/global_placer.hpp"
#include "util/table.hpp"

int main() {
    using namespace rdp;
    const double scale =
        std::getenv("RDP_SCALE") ? std::atof(std::getenv("RDP_SCALE")) : 1.0;
    const std::vector<SuiteEntry> suite = ablation_suite(scale);

    std::cout << "=== Design-choice ablation: congestion source ("
              << suite.size() << " designs, scale " << scale << ") ===\n\n";

    Table t({"design", "RUDY #DRVs", "router #DRVs", "RUDY PT/s",
             "router PT/s"});
    double sum_rudy = 0.0, sum_router = 0.0;
    for (const SuiteEntry& entry : suite) {
        const Design input = generate_circuit(entry.gen);
        std::cerr << "[ablation-src] " << entry.name << "\n";
        long long drvs[2];
        double pt[2];
        for (int m = 0; m < 2; ++m) {
            PlacerConfig cfg;
            cfg.mode = PlacerMode::Ours;
            cfg.grid_bins = entry.grid_bins;
            cfg.use_rudy_congestion = (m == 0);
            const PlaceResult res = GlobalPlacer(cfg).place(input);
            EvalConfig ec;
            ec.grid_bins = entry.grid_bins * 2;
            const EvalMetrics em = evaluate_placement(res.placed, ec);
            drvs[m] = em.drvs;
            pt[m] = res.place_seconds;
        }
        if (drvs[1] > 0) {
            sum_rudy += static_cast<double>(drvs[0]) / drvs[1];
            sum_router += 1.0;
        }
        t.add_row({entry.name, Table::fmt_int(drvs[0]),
                   Table::fmt_int(drvs[1]), Table::fmt(pt[0], 2),
                   Table::fmt(pt[1], 2)});
    }
    t.add_separator();
    t.add_row({"avg DRV ratio vs router",
               Table::fmt(sum_rudy / static_cast<double>(suite.size()), 2),
               Table::fmt(sum_router / static_cast<double>(suite.size()), 2),
               "-", "-"});
    t.print(std::cout);
    std::cout << "\nReading: RUDY is cheaper per iteration but blind to "
                 "detours, capacity details, and the demand the optimizer "
                 "itself creates; the router-in-the-loop source (the "
                 "paper's choice) should win on #DRVs.\n";
    return 0;
}
