#pragma once
// Dense row-major 2D array used for density maps, demand/capacity maps,
// potential/field grids, and congestion maps.

#include <cassert>
#include <cstddef>
#include <vector>

namespace rdp {

/// Dense 2D array addressed as (ix, iy) = (column, row), row-major storage
/// with `ix` varying fastest. Width = number of columns, height = rows.
template <typename T>
class Grid2D {
public:
    Grid2D() = default;
    Grid2D(int width, int height, T init = T{})
        : w_(width), h_(height), data_(static_cast<size_t>(width) * height, init) {
        assert(width >= 0 && height >= 0);
    }

    int width() const { return w_; }
    int height() const { return h_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    bool in_bounds(int ix, int iy) const {
        return ix >= 0 && ix < w_ && iy >= 0 && iy < h_;
    }

    T& at(int ix, int iy) {
        assert(in_bounds(ix, iy));
        return data_[static_cast<size_t>(iy) * w_ + ix];
    }
    const T& at(int ix, int iy) const {
        assert(in_bounds(ix, iy));
        return data_[static_cast<size_t>(iy) * w_ + ix];
    }
    T& operator()(int ix, int iy) { return at(ix, iy); }
    const T& operator()(int ix, int iy) const { return at(ix, iy); }

    /// Value with out-of-bounds indices clamped to the border.
    const T& at_clamped(int ix, int iy) const {
        const int cx = ix < 0 ? 0 : (ix >= w_ ? w_ - 1 : ix);
        const int cy = iy < 0 ? 0 : (iy >= h_ ? h_ - 1 : iy);
        return at(cx, cy);
    }

    void fill(T v) { std::fill(data_.begin(), data_.end(), v); }
    void resize(int width, int height, T init = T{}) {
        w_ = width;
        h_ = height;
        data_.assign(static_cast<size_t>(width) * height, init);
    }

    T* data() { return data_.data(); }
    const T* data() const { return data_.data(); }
    std::vector<T>& raw() { return data_; }
    const std::vector<T>& raw() const { return data_; }

    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

    bool operator==(const Grid2D&) const = default;

private:
    int w_ = 0;
    int h_ = 0;
    std::vector<T> data_;
};

using GridF = Grid2D<double>;

/// Sum of all entries.
double grid_sum(const GridF& g);
/// Maximum entry (0 for an empty grid).
double grid_max(const GridF& g);
/// Arithmetic mean (0 for an empty grid).
double grid_mean(const GridF& g);
/// Elementwise a += b (dimensions must match).
void grid_add(GridF& a, const GridF& b);
/// Elementwise multiply by a scalar.
void grid_scale(GridF& g, double s);

/// Copy src into dst, resizing only when the dimensions differ — repeated
/// calls on a matching dst are allocation-free.
void grid_copy_into(const GridF& src, GridF& dst);

/// Cache-blocked transpose: dst.at(j, i) = src.at(i, j), with dst resized
/// to (src.height() x src.width()) only when its dimensions differ. When
/// `dst_col_scale` is non-null (length src.height() = dst.width()), every
/// output entry is additionally scaled by dst_col_scale[j] — this lets the
/// spectral Poisson solver fold a per-spectral-index factor into the
/// transpose for free. The tile size comes from the RDP_TRANSPOSE_BLOCK
/// env knob (default 32); writes are elementwise-disjoint and the block
/// decomposition depends only on the grid dimensions, so results are
/// bitwise identical at any thread count.
void grid_transpose_into(const GridF& src, GridF& dst,
                         const double* dst_col_scale = nullptr);

}  // namespace rdp
