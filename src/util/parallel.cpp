#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "util/env.hpp"
#include "util/thread_annotations.hpp"

namespace rdp {
namespace par {

namespace {

int read_env_threads() {
    const unsigned hc = std::thread::hardware_concurrency();
    const int def = hc >= 1 ? static_cast<int>(hc) : 1;
    // Strict parse: "8abc" or out-of-range values warn and fall back to
    // the hardware default instead of being silently truncated.
    return static_cast<int>(env::int_or("RDP_THREADS", def, 1, 1024));
}

std::atomic<int> g_max_threads{0};  // 0 = not initialized yet

/// Set while a pool worker (or a thread inside run_chunks) executes chunk
/// functions; nested parallel regions then run inline and serial.
thread_local bool tls_in_parallel = false;

/// One in-flight parallel region. Workers pull chunk indices from `next`;
/// completion is `done == plan.num_chunks`. `admitted` caps how many pool
/// workers join, so RDP_THREADS=k really uses at most k threads (main + k-1).
struct Job {
    const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
    ChunkPlan plan;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<int> admitted{0};
    int max_workers = 0;
    uint64_t id = 0;
    /// Workers currently holding a pointer to this job (guarded by the pool
    /// mutex). The job lives on the submitting thread's stack, so it must
    /// not be retired until every worker has let go — even ones that only
    /// woke up to find the admission cap already reached.
    int refs = 0;
};

class Pool {
public:
    static Pool& instance() {
        static Pool p;
        return p;
    }

    void run(const ChunkPlan& plan,
             const std::function<void(size_t, size_t, size_t)>& fn,
             int threads) EXCLUDES(run_mutex_, m_) {
        // Serialize whole regions: one job at a time keeps the pool simple
        // and is all the placement loop needs.
        std::lock_guard<std::mutex> run_lock(run_mutex_);
        ensure_workers(threads - 1);

        Job job;
        job.fn = &fn;
        job.plan = plan;
        job.max_workers = threads - 1;
        {
            std::lock_guard<std::mutex> lk(m_);
            job.id = ++job_seq_;
            job_ = &job;
        }
        cv_.notify_all();

        // The calling thread participates too.
        tls_in_parallel = true;
        work_on(job);
        tls_in_parallel = false;

        // Wait until every chunk ran AND every worker released its pointer:
        // `job` is a stack object, so a straggler that grabbed `job_` but
        // lost the admission race must detach before it is destroyed.
        std::unique_lock<std::mutex> lk(m_);
        done_cv_.wait(lk, [&] {
            return job.done.load() == plan.num_chunks && job.refs == 0;
        });
        job_ = nullptr;
    }

private:
    Pool() = default;
    ~Pool() {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        cv_.notify_all();
        // Joining must happen without m_ held (exiting workers take it), so
        // detach the worker list from the guarded member first.
        std::vector<std::thread> workers;
        {
            std::lock_guard<std::mutex> lk(m_);
            workers.swap(workers_);
        }
        for (std::thread& t : workers) t.join();
    }

    void ensure_workers(int want) EXCLUDES(m_) {
        std::lock_guard<std::mutex> lk(m_);
        while (static_cast<int>(workers_.size()) < want)
            workers_.emplace_back([this] { worker_loop(); });
    }

    void work_on(Job& job) EXCLUDES(m_) {
        const size_t n = job.plan.num_chunks;
        while (true) {
            const size_t c = job.next.fetch_add(1);
            if (c >= n) break;
            (*job.fn)(job.plan.begin(c), job.plan.end(c), c);
            if (job.done.fetch_add(1) + 1 == n) {
                std::lock_guard<std::mutex> lk(m_);
                done_cv_.notify_all();
            }
        }
    }

    void worker_loop() EXCLUDES(m_) {
        uint64_t last_id = 0;
        while (true) {
            Job* job = nullptr;
            {
                std::unique_lock<std::mutex> lk(m_);
                cv_.wait(lk, [&] {
                    return stop_ || (job_ != nullptr && job_->id != last_id);
                });
                if (stop_) return;
                job = job_;
                last_id = job->id;
                ++job->refs;
            }
            // Respect the configured thread budget for this region.
            if (job->admitted.fetch_add(1) < job->max_workers) {
                tls_in_parallel = true;
                work_on(*job);
                tls_in_parallel = false;
            }
            {
                std::lock_guard<std::mutex> lk(m_);
                --job->refs;
            }
            done_cv_.notify_all();
        }
    }

    /// Serializes whole parallel regions (one job at a time).
    std::mutex run_mutex_;
    /// Guards the job hand-off state below. Job::refs is guarded by it too,
    /// but lives in the stack-allocated Job, so the annotation cannot name
    /// it — every touch of `refs` in this file is under m_.
    std::mutex m_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_ GUARDED_BY(m_);
    Job* job_ GUARDED_BY(m_) = nullptr;
    uint64_t job_seq_ GUARDED_BY(m_) = 0;
    bool stop_ GUARDED_BY(m_) = false;
};

}  // namespace

int max_threads() {
    int v = g_max_threads.load(std::memory_order_relaxed);
    if (v == 0) {
        v = read_env_threads();
        g_max_threads.store(v, std::memory_order_relaxed);
    }
    return v;
}

void set_max_threads(int n) {
    g_max_threads.store(std::max(n, 1), std::memory_order_relaxed);
}

ChunkPlan plan(size_t n, size_t grain, size_t max_chunks) {
    ChunkPlan p;
    p.n = n;
    const size_t g = std::max<size_t>(grain, 1);
    const size_t by_grain = n / g;  // chunks of at least `grain` items
    p.num_chunks = std::clamp<size_t>(by_grain, 1, std::max<size_t>(max_chunks, 1));
    return p;
}

void run_chunks(const ChunkPlan& p,
                const std::function<void(size_t, size_t, size_t)>& fn) {
    if (p.n == 0) return;
    const int threads = max_threads();
    if (threads <= 1 || p.num_chunks <= 1 || tls_in_parallel) {
        // Serial path: same chunks, same order — bitwise identical results.
        for (size_t c = 0; c < p.num_chunks; ++c)
            fn(p.begin(c), p.end(c), c);
        return;
    }
    Pool::instance().run(p, fn, threads);
}

}  // namespace par
}  // namespace rdp
