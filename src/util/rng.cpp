#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace rdp {

namespace {
uint64_t splitmix64(uint64_t& x) {
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
    assert(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    has_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
    return mean + stddev * normal();
}

int Rng::geometric1(double p) {
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 1;
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    const int k = 1 + static_cast<int>(std::log(u) / std::log1p(-p));
    return k < 1 ? 1 : k;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace rdp
