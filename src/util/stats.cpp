#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/simd.hpp"

namespace rdp {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double geometric_mean(const std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        if (x <= 0.0) return 0.0;
        acc += std::log(x);
    }
    // stable_exp clamps the exponent into the finite window, which is the
    // shared overflow guard (util/simd.hpp) for every exp in the codebase.
    return simd::stable_exp(acc / static_cast<double>(xs.size()));
}

double arithmetic_mean(const std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
}

double l1_norm(const std::vector<double>& xs) {
    double acc = 0.0;
    for (double x : xs) acc += std::abs(x);
    return acc;
}

double percentile(std::vector<double> xs, double p) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<size_t>(rank);
    const auto hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace rdp
