#pragma once
// Runtime contract checking for the invariant-audit subsystem (see
// src/audit/invariant_audit.hpp and DESIGN.md "Correctness tooling").
//
// Three macros express contracts:
//   RDP_ASSERT(cond, msg)        - checked whenever audits are active.
//   RDP_DCHECK(cond, msg)        - like RDP_ASSERT, but compiled out in
//                                  NDEBUG builds (hot-path contracts).
//   RDP_CHECK_FINITE(value, msg) - RDP_ASSERT(std::isfinite(value)).
// `msg` is a stream expression: RDP_ASSERT(x > 0, "x = " << x).
//
// Activation is two-level:
//   * compile time: the RDP_AUDIT CMake option (default ON) defines
//     RDP_AUDIT=1; without it every macro expands to a no-op.
//   * run time: audits default to enabled and can be switched off with
//     the environment variable RDP_AUDIT=0 (or "off"/"false"), or from
//     code via set_audit_enabled(). Disabled checks cost one branch.
//
// A violated contract throws AuditFailure naming the active audit stage
// (see AuditStageScope) — audits observe state and report; they never
// mutate placement or routing results.

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rdp {

/// Thrown on any violated audit contract. `stage` is the pipeline stage
/// active when the check tripped (e.g. "wirelength-gp", "global-route",
/// "legalize"); `invariant` names the violated contract.
class AuditFailure : public std::runtime_error {
public:
    AuditFailure(std::string stage, std::string invariant,
                 const std::string& message);

    const std::string& stage() const { return stage_; }
    const std::string& invariant() const { return invariant_; }

private:
    std::string stage_;
    std::string invariant_;
};

/// True when audit checks are active (compiled in AND runtime-enabled).
bool audit_enabled();
/// Override the runtime toggle (tests; initial value comes from $RDP_AUDIT).
/// Has no effect when audits are compiled out.
void set_audit_enabled(bool on);

/// Name of the innermost active audit stage ("?" outside any scope).
const char* audit_stage();

/// RAII marker for a pipeline stage: audit failures inside the scope are
/// attributed to `stage`. Scopes nest (the router's scope sits inside the
/// routability loop's); the previous stage is restored on destruction.
/// Stages are entered only from the serial orchestration layer, never from
/// inside parallel regions, so a plain global suffices.
class AuditStageScope {
public:
    explicit AuditStageScope(const char* stage);
    ~AuditStageScope();
    AuditStageScope(const AuditStageScope&) = delete;
    AuditStageScope& operator=(const AuditStageScope&) = delete;

private:
    const char* prev_;
};

namespace detail {
/// Throws AuditFailure for the current stage. `invariant` defaults to the
/// failed expression text when a contract macro trips.
[[noreturn]] void audit_fail(const std::string& invariant,
                             const std::string& message);
}  // namespace detail

}  // namespace rdp

#if defined(RDP_AUDIT) && RDP_AUDIT
#define RDP_AUDIT_COMPILED 1
#else
#define RDP_AUDIT_COMPILED 0
#endif

#if RDP_AUDIT_COMPILED
#define RDP_ASSERT(cond, msg)                                        \
    do {                                                             \
        if (::rdp::audit_enabled() && !(cond)) {                     \
            std::ostringstream rdp_check_oss_;                       \
            rdp_check_oss_ << msg;                                   \
            ::rdp::detail::audit_fail(#cond, rdp_check_oss_.str());  \
        }                                                            \
    } while (0)
#else
#define RDP_ASSERT(cond, msg) static_cast<void>(0)
#endif

#if RDP_AUDIT_COMPILED && !defined(NDEBUG)
#define RDP_DCHECK(cond, msg) RDP_ASSERT(cond, msg)
#else
#define RDP_DCHECK(cond, msg) static_cast<void>(0)
#endif

#define RDP_CHECK_FINITE(value, msg) \
    RDP_ASSERT(std::isfinite(value), msg << " (value = " << (value) << ")")
