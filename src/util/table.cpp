#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <ostream>

namespace rdp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
    assert(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::print(std::ostream& os) const {
    std::vector<size_t> w(header_.size(), 0);
    for (size_t i = 0; i < header_.size(); ++i) w[i] = header_[i].size();
    for (const auto& r : rows_)
        for (size_t i = 0; i < r.size(); ++i) w[i] = std::max(w[i], r[i].size());

    auto print_sep = [&] {
        os << "+";
        for (size_t i = 0; i < w.size(); ++i)
            os << std::string(w[i] + 2, '-') << "+";
        os << "\n";
    };
    auto print_row = [&](const std::vector<std::string>& r) {
        os << "|";
        for (size_t i = 0; i < w.size(); ++i) {
            const std::string& cell = i < r.size() ? r[i] : std::string{};
            os << " " << std::string(w[i] - cell.size(), ' ') << cell << " |";
        }
        os << "\n";
    };

    print_sep();
    print_row(header_);
    print_sep();
    for (const auto& r : rows_) {
        if (r.empty())
            print_sep();
        else
            print_row(r);
    }
    print_sep();
}

std::string Table::fmt(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string Table::fmt_int(long long v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", v);
    return buf;
}

}  // namespace rdp
