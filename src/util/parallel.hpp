#pragma once
// Deterministic shared-memory parallel execution layer.
//
// The contract every kernel in this repo relies on: the chunk decomposition
// of an index range is a function of the problem size (and the caller's
// grain) ONLY — never of the worker-thread count. Each chunk produces an
// independent partial result; partials are combined in fixed chunk order.
// Because the serial path (RDP_THREADS=1) executes the *same* chunked
// combine, every result is bitwise identical for any thread count.
//
// Thread count comes from the RDP_THREADS environment variable (default:
// hardware concurrency; 1 forces the serial path) and can be overridden at
// runtime with set_max_threads() — used by tests and benchmarks to sweep
// thread counts inside one process.
//
// The pool is lazily started on the first parallel call and is shared
// process-wide. Nested parallel calls (from inside a worker) run inline and
// serial, with the same chunk plan, so determinism is preserved. Chunk
// functions must not throw.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace rdp {
namespace par {

/// Current maximum number of threads a parallel region may use (>= 1).
/// First call reads RDP_THREADS; unset/invalid falls back to
/// std::thread::hardware_concurrency().
int max_threads();

/// Override the thread count at runtime (clamped to >= 1). Existing pool
/// workers are kept; a lower count simply limits how many participate.
void set_max_threads(int n);

/// A deterministic decomposition of [0, n) into near-equal chunks.
/// Chunk boundaries depend only on (n, grain, max_chunks).
struct ChunkPlan {
    size_t n = 0;
    size_t num_chunks = 1;

    size_t begin(size_t c) const { return c * n / num_chunks; }
    size_t end(size_t c) const { return (c + 1) * n / num_chunks; }
};

/// Plan for [0, n): at most max_chunks chunks, each at least `grain` items
/// (except when n < grain, which yields one chunk). `max_chunks` bounds the
/// memory of per-chunk accumulators at the call site.
ChunkPlan plan(size_t n, size_t grain, size_t max_chunks = 64);

/// Execute fn(begin, end, chunk_index) for every chunk of the plan,
/// possibly concurrently. Returns when all chunks are done. fn must write
/// only to disjoint state (per-chunk slots or disjoint index ranges).
void run_chunks(const ChunkPlan& p,
                const std::function<void(size_t, size_t, size_t)>& fn);

/// Element-parallel loop over [0, n): fn(begin, end) per chunk. Safe when
/// iterations write disjoint locations (no reduction involved).
template <typename Fn>
void parallel_for(size_t n, size_t grain, Fn&& fn) {
    const ChunkPlan p = plan(n, grain);
    run_chunks(p, [&](size_t b, size_t e, size_t) { fn(b, e); });
}

/// Deterministic reduction: chunk_fn(begin, end) -> T computed per chunk
/// (concurrently), then combined in ascending chunk order:
///   acc = combine(combine(init, t0), t1) ...
/// The fixed combine order makes floating-point results thread-invariant.
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(size_t n, size_t grain, T init, ChunkFn&& chunk_fn,
                  CombineFn&& combine, size_t max_chunks = 64) {
    const ChunkPlan p = plan(n, grain, max_chunks);
    std::vector<T> partial(p.num_chunks);
    run_chunks(p,
               [&](size_t b, size_t e, size_t c) { partial[c] = chunk_fn(b, e); });
    T acc = std::move(init);
    for (size_t c = 0; c < p.num_chunks; ++c)
        acc = combine(std::move(acc), std::move(partial[c]));
    return acc;
}

/// Deterministic sum of chunk_fn(begin, end) doubles in chunk order.
template <typename ChunkFn>
double parallel_sum(size_t n, size_t grain, ChunkFn&& chunk_fn,
                    size_t max_chunks = 64) {
    return parallel_reduce(
        n, grain, 0.0, std::forward<ChunkFn>(chunk_fn),
        [](double a, double b) { return a + b; }, max_chunks);
}

}  // namespace par
}  // namespace rdp
