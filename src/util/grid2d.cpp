#include "util/grid2d.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace rdp {

double grid_sum(const GridF& g) {
    return std::accumulate(g.begin(), g.end(), 0.0);
}

double grid_max(const GridF& g) {
    if (g.empty()) return 0.0;
    return *std::max_element(g.begin(), g.end());
}

double grid_mean(const GridF& g) {
    if (g.empty()) return 0.0;
    return grid_sum(g) / static_cast<double>(g.size());
}

void grid_add(GridF& a, const GridF& b) {
    assert(a.width() == b.width() && a.height() == b.height());
    auto it = b.begin();
    for (auto& v : a) v += *it++;
}

void grid_scale(GridF& g, double s) {
    for (auto& v : g) v *= s;
}

}  // namespace rdp
