#include "util/grid2d.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/env.hpp"
#include "util/parallel.hpp"

namespace rdp {

double grid_sum(const GridF& g) {
    return std::accumulate(g.begin(), g.end(), 0.0);
}

double grid_max(const GridF& g) {
    if (g.empty()) return 0.0;
    return *std::max_element(g.begin(), g.end());
}

double grid_mean(const GridF& g) {
    if (g.empty()) return 0.0;
    return grid_sum(g) / static_cast<double>(g.size());
}

void grid_add(GridF& a, const GridF& b) {
    assert(a.width() == b.width() && a.height() == b.height());
    auto it = b.begin();
    for (auto& v : a) v += *it++;
}

void grid_scale(GridF& g, double s) {
    for (auto& v : g) v *= s;
}

void grid_copy_into(const GridF& src, GridF& dst) {
    if (dst.width() != src.width() || dst.height() != src.height())
        dst.resize(src.width(), src.height());
    std::copy(src.begin(), src.end(), dst.begin());
}

namespace {

int transpose_block_size() {
    static const int block =
        static_cast<int>(env::int_or("RDP_TRANSPOSE_BLOCK", 32, 4, 4096));
    return block;
}

}  // namespace

void grid_transpose_into(const GridF& src, GridF& dst,
                         const double* dst_col_scale) {
    assert(&src != &dst);
    const int w = src.width();
    const int h = src.height();
    if (dst.width() != h || dst.height() != w) dst.resize(h, w);
    if (w == 0 || h == 0) return;

    const int block = transpose_block_size();
    const int row_blocks = (w + block - 1) / block;
    // Each task owns a band of dst rows; inner tiles keep both the strided
    // src reads and the contiguous dst writes within cache-sized footprints.
    // Every dst element is written exactly once, so the result is identical
    // for any block size and any thread count.
    par::parallel_for(
        static_cast<size_t>(row_blocks), 1, [&](size_t cb, size_t ce) {
            for (size_t rb = cb; rb < ce; ++rb) {
                const int i0 = static_cast<int>(rb) * block;
                const int i1 = std::min(i0 + block, w);
                for (int j0 = 0; j0 < h; j0 += block) {
                    const int j1 = std::min(j0 + block, h);
                    for (int i = i0; i < i1; ++i) {
                        double* out = dst.data() +
                                      static_cast<size_t>(i) *
                                          static_cast<size_t>(h);
                        if (dst_col_scale) {
                            for (int j = j0; j < j1; ++j)
                                out[j] = src.at(i, j) * dst_col_scale[j];
                        } else {
                            for (int j = j0; j < j1; ++j)
                                out[j] = src.at(i, j);
                        }
                    }
                }
            }
        });
}

}  // namespace rdp
