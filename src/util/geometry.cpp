#include "util/geometry.hpp"

#include <ostream>

namespace rdp {

std::vector<Interval> subtract_intervals(Interval base,
                                         std::vector<Interval> cuts) {
    std::vector<Interval> out;
    if (base.empty()) return out;
    std::sort(cuts.begin(), cuts.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    double cursor = base.lo;
    for (const Interval& c : cuts) {
        if (c.empty()) continue;
        if (c.hi <= cursor) continue;
        if (c.lo >= base.hi) break;
        if (c.lo > cursor) out.push_back({cursor, std::min(c.lo, base.hi)});
        cursor = std::max(cursor, c.hi);
        if (cursor >= base.hi) break;
    }
    if (cursor < base.hi) out.push_back({cursor, base.hi});
    return out;
}

std::ostream& operator<<(std::ostream& os, Vec2 v) {
    return os << "(" << v.x << ", " << v.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
    return os << "[" << r.lx << ", " << r.ly << "; " << r.hx << ", " << r.hy
              << "]";
}

}  // namespace rdp
