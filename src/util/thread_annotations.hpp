#pragma once
// Clang thread-safety capability annotations (DESIGN.md §15).
//
// These macros attach the lock-ownership contract of a piece of state to
// its declaration: which mutex guards a member (GUARDED_BY), which lock a
// function expects its caller to hold (REQUIRES), and which lock a function
// takes itself and must therefore be called without (EXCLUDES). Under
// Clang the contract is enforced at compile time by `-Wthread-safety`
// (run_checks.sh builds with it + -Werror whenever the compiler is Clang);
// under GCC and other compilers every macro expands to nothing, so the
// annotations are pure documentation there.
//
// The macro set mirrors the canonical mutex.h from the Clang
// thread-safety-analysis documentation, trimmed to what this codebase
// uses. Annotate with the macros, never with raw __attribute__ spellings,
// so a non-Clang build stays warning-free.

#if defined(__clang__) && defined(__has_attribute)
#define RDP_TSA_HAS(x) __has_attribute(x)
#else
#define RDP_TSA_HAS(x) 0
#endif

#if RDP_TSA_HAS(guarded_by)
#define RDP_TSA(x) __attribute__((x))
#else
#define RDP_TSA(x)
#endif

/// Member is readable/writable only while the named mutex is held.
#define GUARDED_BY(x) RDP_TSA(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is guarded by the mutex.
#define PT_GUARDED_BY(x) RDP_TSA(pt_guarded_by(x))

/// Function requires the caller to already hold the lock(s).
#define REQUIRES(...) RDP_TSA(requires_capability(__VA_ARGS__))

/// Function must be called with the lock(s) NOT held (it acquires them).
#define EXCLUDES(...) RDP_TSA(locks_excluded(__VA_ARGS__))

/// Function acquires the lock(s) and returns with them held.
#define ACQUIRE(...) RDP_TSA(acquire_capability(__VA_ARGS__))

/// Function releases the lock(s).
#define RELEASE(...) RDP_TSA(release_capability(__VA_ARGS__))

/// Type declares a capability (use on wrapper mutex classes).
#define CAPABILITY(x) RDP_TSA(capability(x))

/// RAII type that acquires on construction / releases on destruction.
#define SCOPED_CAPABILITY RDP_TSA(scoped_lockable)

/// Escape hatch: function intentionally skips the analysis (e.g. a
/// destructor that joins workers after publishing `stop_`).
#define NO_THREAD_SAFETY_ANALYSIS RDP_TSA(no_thread_safety_analysis)
