#include "util/simd.hpp"

namespace rdp::simd {

const char* backend_name() {
#if RDP_SIMD_BACKEND == 1
    return "avx2";
#elif RDP_SIMD_BACKEND == 2
    return "neon";
#else
    return "scalar";
#endif
}

bool fma_enabled() {
#if defined(RDP_SIMD_FMA)
    return true;
#else
    return false;
#endif
}

}  // namespace rdp::simd
