#pragma once
// Small statistics helpers used by the evaluation/reporting layer and tests.

#include <vector>

namespace rdp {

/// Streaming summary of a sample: count/min/max/mean/variance (Welford).
class RunningStats {
public:
    void add(double x);
    long count() const { return n_; }
    double mean() const { return n_ > 0 ? mean_ : 0.0; }
    double min() const { return n_ > 0 ? min_ : 0.0; }
    double max() const { return n_ > 0 ? max_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    double variance() const;
    double stddev() const;
    double sum() const { return sum_; }

private:
    long n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Geometric mean of strictly positive values; 0 if any value <= 0 or empty.
double geometric_mean(const std::vector<double>& xs);

/// Arithmetic mean; 0 for an empty vector.
double arithmetic_mean(const std::vector<double>& xs);

/// L1 norm of a flat vector.
double l1_norm(const std::vector<double>& xs);

/// p-th percentile (0..100) by linear interpolation on the sorted sample.
double percentile(std::vector<double> xs, double p);

}  // namespace rdp
