#pragma once
// Crash-consistent file publication (DESIGN.md §16). Every file written
// under src/ goes through atomic_write: the payload lands in a temporary
// file in the destination directory and is published with one rename(2),
// so a reader — or a crash at any instruction — can observe the old file
// or the new file but never a torn mixture. With `durable` set the data
// is fsync'd before the rename and the directory after it, extending the
// guarantee across power loss (the durable-checkpoint journal needs this;
// ordinary reports do not).
//
// The rdp-raw-file-write lint rule rejects ofstream/fopen writes anywhere
// else under src/, so this header is the single write path.

#include <cstddef>
#include <functional>
#include <string>

namespace rdp::io {

struct AtomicWriteOptions {
    /// fsync the temporary file before the rename and the containing
    /// directory after it. Off by default: rename alone already prevents
    /// torn files on process death; the fsync pair is only needed when
    /// the file must survive power loss (checkpoints).
    bool durable = false;
    /// Test hook invoked after roughly half the payload has reached the
    /// temporary file — the `ckpt-mid-write` kill point fires here, so the
    /// crash tests can die with a half-written temp file on disk while the
    /// published path is still the previous version.
    std::function<void()> mid_write;
};

/// Write `size` bytes to `path` atomically. On failure returns false,
/// fills `error` (when non-null) with the failing step and errno text,
/// and removes the temporary file; the destination is never left torn.
bool atomic_write(const std::string& path, const void* data, std::size_t size,
                  std::string* error = nullptr,
                  const AtomicWriteOptions& opts = {});

/// Convenience overload for string payloads.
bool atomic_write(const std::string& path, const std::string& data,
                  std::string* error = nullptr,
                  const AtomicWriteOptions& opts = {});

}  // namespace rdp::io
