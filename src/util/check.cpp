#include "util/check.hpp"

#include "util/env.hpp"

namespace rdp {

namespace {

const char* g_stage = "?";

#if RDP_AUDIT_COMPILED
// Function-local static: safe to query from other static initializers and
// strict about the flag's spelling (garbage warns and keeps the default).
bool& audit_flag() {
    static bool enabled = env::flag_or("RDP_AUDIT", true);
    return enabled;
}
#endif

}  // namespace

AuditFailure::AuditFailure(std::string stage, std::string invariant,
                           const std::string& message)
    : std::runtime_error("[audit] stage=" + stage + " invariant=" + invariant +
                         ": " + message),
      stage_(std::move(stage)),
      invariant_(std::move(invariant)) {}

#if RDP_AUDIT_COMPILED
bool audit_enabled() { return audit_flag(); }
void set_audit_enabled(bool on) { audit_flag() = on; }
#else
bool audit_enabled() { return false; }
void set_audit_enabled(bool) {}
#endif

const char* audit_stage() { return g_stage; }

AuditStageScope::AuditStageScope(const char* stage) : prev_(g_stage) {
    g_stage = stage;
}

AuditStageScope::~AuditStageScope() { g_stage = prev_; }

namespace detail {
void audit_fail(const std::string& invariant, const std::string& message) {
    throw AuditFailure(g_stage, invariant, message);
}
}  // namespace detail

}  // namespace rdp
