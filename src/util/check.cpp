#include "util/check.hpp"

#include <cstdlib>
#include <cstring>

namespace rdp {

namespace {

const char* g_stage = "?";

#if RDP_AUDIT_COMPILED
bool g_enabled = [] {
    const char* env = std::getenv("RDP_AUDIT");
    if (env == nullptr) return true;
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "false") == 0);
}();
#endif

}  // namespace

AuditFailure::AuditFailure(std::string stage, std::string invariant,
                           const std::string& message)
    : std::runtime_error("[audit] stage=" + stage + " invariant=" + invariant +
                         ": " + message),
      stage_(std::move(stage)),
      invariant_(std::move(invariant)) {}

#if RDP_AUDIT_COMPILED
bool audit_enabled() { return g_enabled; }
void set_audit_enabled(bool on) { g_enabled = on; }
#else
bool audit_enabled() { return false; }
void set_audit_enabled(bool) {}
#endif

const char* audit_stage() { return g_stage; }

AuditStageScope::AuditStageScope(const char* stage) : prev_(g_stage) {
    g_stage = stage;
}

AuditStageScope::~AuditStageScope() { g_stage = prev_; }

namespace detail {
void audit_fail(const std::string& invariant, const std::string& message) {
    throw AuditFailure(g_stage, invariant, message);
}
}  // namespace detail

}  // namespace rdp
