#pragma once
// Basic 2D geometry primitives shared across the placement/routing stack.
//
// All coordinates are double-precision database units (DBU). The placement
// region, bins, G-cells, cells, and PG rails are all axis-aligned rectangles.

#include <algorithm>
#include <cmath>
#include <iosfwd>
#include <vector>

namespace rdp {

/// A 2D point / vector in placement coordinates.
struct Vec2 {
    double x = 0.0;
    double y = 0.0;

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
    constexpr Vec2& operator+=(Vec2 o) {
        x += o.x;
        y += o.y;
        return *this;
    }
    constexpr Vec2& operator-=(Vec2 o) {
        x -= o.x;
        y -= o.y;
        return *this;
    }
    constexpr Vec2& operator*=(double s) {
        x *= s;
        y *= s;
        return *this;
    }
    constexpr bool operator==(const Vec2&) const = default;

    /// Dot product.
    constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
    /// Euclidean length.
    double norm() const { return std::hypot(x, y); }
    /// Squared Euclidean length.
    constexpr double norm2() const { return x * x + y * y; }
    /// L1 (Manhattan) length.
    double norm1() const { return std::abs(x) + std::abs(y); }
    /// Unit vector in the same direction; returns (0,0) for the zero vector.
    Vec2 normalized() const {
        const double n = norm();
        return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
    }
    /// The vector rotated +90 degrees (counter-clockwise).
    constexpr Vec2 perp() const { return {-y, x}; }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

using Point = Vec2;

/// Axis-aligned rectangle, half-open semantics are NOT assumed: [lx,hx]x[ly,hy].
struct Rect {
    double lx = 0.0;
    double ly = 0.0;
    double hx = 0.0;
    double hy = 0.0;

    constexpr Rect() = default;
    constexpr Rect(double lx_, double ly_, double hx_, double hy_)
        : lx(lx_), ly(ly_), hx(hx_), hy(hy_) {}

    static constexpr Rect from_center(Vec2 c, double w, double h) {
        return {c.x - w / 2, c.y - h / 2, c.x + w / 2, c.y + h / 2};
    }

    constexpr double width() const { return hx - lx; }
    constexpr double height() const { return hy - ly; }
    constexpr double area() const { return width() * height(); }
    constexpr Vec2 center() const { return {(lx + hx) / 2, (ly + hy) / 2}; }
    constexpr bool empty() const { return hx <= lx || hy <= ly; }
    constexpr bool operator==(const Rect&) const = default;

    constexpr bool contains(Vec2 p) const {
        return p.x >= lx && p.x <= hx && p.y >= ly && p.y <= hy;
    }
    constexpr bool intersects(const Rect& o) const {
        return lx < o.hx && o.lx < hx && ly < o.hy && o.ly < hy;
    }
    /// Intersection rectangle (may be empty()).
    constexpr Rect intersect(const Rect& o) const {
        return {std::max(lx, o.lx), std::max(ly, o.ly), std::min(hx, o.hx),
                std::min(hy, o.hy)};
    }
    /// Overlap area with another rectangle (0 if disjoint).
    constexpr double overlap_area(const Rect& o) const {
        const double w = std::min(hx, o.hx) - std::max(lx, o.lx);
        const double h = std::min(hy, o.hy) - std::max(ly, o.ly);
        return (w > 0 && h > 0) ? w * h : 0.0;
    }
    /// Smallest rectangle containing both.
    constexpr Rect united(const Rect& o) const {
        return {std::min(lx, o.lx), std::min(ly, o.ly), std::max(hx, o.hx),
                std::max(hy, o.hy)};
    }
    /// Rectangle expanded by `d` on every side (shrinks if d < 0).
    constexpr Rect expanded(double d) const {
        return {lx - d, ly - d, hx + d, hy + d};
    }
    /// Rectangle scaled about its center by `factor` in both dimensions.
    constexpr Rect scaled_about_center(double factor) const {
        const Vec2 c = center();
        const double w = width() * factor, h = height() * factor;
        return from_center(c, w, h);
    }
    /// Clamp a point into the rectangle.
    constexpr Vec2 clamp(Vec2 p) const {
        return {std::clamp(p.x, lx, hx), std::clamp(p.y, ly, hy)};
    }
};

/// An integer grid index pair (column ix, row iy).
struct GridIndex {
    int ix = 0;
    int iy = 0;
    constexpr bool operator==(const GridIndex&) const = default;
};

/// Orientation of a wire segment / rail / routing layer.
enum class Orient { Horizontal, Vertical };

/// A 1D closed interval.
struct Interval {
    double lo = 0.0;
    double hi = 0.0;
    constexpr double length() const { return hi - lo; }
    constexpr bool empty() const { return hi <= lo; }
    constexpr bool operator==(const Interval&) const = default;
};

/// Subtract a set of "cut" intervals from [lo,hi]; returns the remaining
/// pieces in ascending order. Used to cut PG rails by macro bounding boxes.
/// `cuts` need not be sorted or disjoint.
std::vector<Interval> subtract_intervals(Interval base,
                                         std::vector<Interval> cuts);

std::ostream& operator<<(std::ostream& os, Vec2 v);
std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace rdp
