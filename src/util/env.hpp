#pragma once
// Shared, strict environment-variable parsing. Every RDP_* knob goes
// through this parser so garbage values are rejected the same way
// everywhere: a malformed or out-of-range value logs one clear warning
// naming the variable, the offending text, and the accepted form, and the
// knob falls back to its documented default — never an atoi-style silent
// zero, never a partially-consumed "8abc" -> 8.
//
// The parse_* functions are pure (exposed for tests); the *_or functions
// read the process environment and apply the reject-with-message policy.

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <string>

namespace rdp::env {

/// Strict base-10 integer: the whole string (modulo surrounding
/// whitespace) must be a valid integer. "8abc", "", "0x10" -> nullopt.
std::optional<long long> parse_int(const std::string& text);

/// Strict floating-point: the whole string must parse; NaN/inf rejected.
std::optional<double> parse_double(const std::string& text);

/// Boolean flag: 1/0, on/off, true/false, yes/no (case-insensitive).
std::optional<bool> parse_flag(const std::string& text);

/// Raw value of an environment variable (nullopt when unset).
std::optional<std::string> raw(const char* name);

/// Integer knob in [min_v, max_v]. Unset -> def. Malformed or
/// out-of-range -> one warning + def.
long long int_or(const char* name, long long def, long long min_v,
                 long long max_v);

/// Floating-point knob in [min_v, max_v]; same policy as int_or.
double double_or(const char* name, double def, double min_v, double max_v);

/// Boolean knob; same policy.
bool flag_or(const char* name, bool def);

/// Enumerated-choice knob: the value must match one of `options`
/// (case-insensitive, surrounding whitespace ignored). Returns the index of
/// the matching option; unset -> def, anything else -> one warning naming
/// the accepted spellings + def.
size_t choice_or(const char* name, size_t def,
                 std::initializer_list<const char*> options);

}  // namespace rdp::env
