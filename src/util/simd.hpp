#pragma once
// Portable fixed-width SIMD wrapper for the hot placement kernels
// (DESIGN.md §14).
//
// One logical vector shape — kLanes = 4 doubles — implemented by three
// backends selected at build time via the RDP_SIMD CMake option:
//
//   RDP_SIMD_BACKEND == 0   ScalarVecD  four-lane scalar emulation (any ISA)
//   RDP_SIMD_BACKEND == 1   Avx2VecD    one __m256d             (x86-64 AVX2)
//   RDP_SIMD_BACKEND == 2   NeonVecD    two float64x2_t         (AArch64 NEON)
//
// `VecD` aliases the active backend. ScalarVecD is always compiled, so tests
// and benches can instantiate a kernel template with both types in one binary
// and compare results lane for lane.
//
// Determinism contract — all backends produce bitwise-identical results:
//  * add/sub/mul/div and fused multiply-add are correctly rounded IEEE-754
//    ops, so an identical op sequence gives identical bits on every ISA;
//  * vmin/vmax and and_gt_zero are defined as compare+select with x86
//    minpd/maxpd operand semantics ((a<b)?a:b resp. (a>b)?a:b, second operand
//    on NaN); the NEON backend uses explicit compare+bit-select rather than
//    FMIN/FMAX, whose ±0/NaN handling differs;
//  * vneg flips the sign bit, matching unary minus on ±0;
//  * reduce_add uses one fixed tree, (l0 + l2) + (l1 + l3), everywhere;
//  * the lane width is fixed at 4 on every backend, so lane-structured
//    reductions partition an index range identically everywhere.
//
// Fused multiply-add comes in two tiers. fmadd() is *always* fused and is
// used only inside stable_exp, whose scalar twin fuses identically via
// std::fma. mul_add()/mul_sub()/nmul_add() fuse only when the RDP_SIMD_FMA
// CMake option is ON; the default OFF expands them into separately rounded
// multiply then add, which keeps the vector kernels bit-identical to the
// pre-SIMD scalar code. The build also disables implicit FP contraction
// globally (-ffp-contract=off in CMakeLists.txt) so the compiler cannot
// fuse differently per backend behind our back.

#include <bit>
#include <cmath>
#include <cstdint>

#ifndef RDP_SIMD_BACKEND
#define RDP_SIMD_BACKEND 0
#endif

#if RDP_SIMD_BACKEND == 1
#include <immintrin.h>
#elif RDP_SIMD_BACKEND == 2
#include <arm_neon.h>
#endif

namespace rdp::simd {

/// Logical lane count of every backend (f64 lanes).
inline constexpr int kLanes = 4;

/// Human-readable name of the active backend ("avx2", "neon", or "scalar").
/// This is the runtime-readable face of the build-time RDP_SIMD knob; the
/// global placer logs it and the micro-bench JSON records it as context.
const char* backend_name();

/// True when the RDP_SIMD_FMA tolerance-gated fast path is compiled in.
bool fma_enabled();

// ---------------------------------------------------------------------------
// ScalarVecD: the reference backend. Every other backend must match it
// bit for bit (tests/simd_test.cpp enforces this op by op).
// ---------------------------------------------------------------------------

struct ScalarVecD {
    double l[4];

    static ScalarVecD zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
    static ScalarVecD set1(double v) { return {{v, v, v, v}}; }
    static ScalarVecD iota() { return {{0.0, 1.0, 2.0, 3.0}}; }
    static ScalarVecD loadu(const double* p) {
        return {{p[0], p[1], p[2], p[3]}};
    }
    /// First `m` lanes from p (0 < m <= 4), remaining lanes +0.0. Never
    /// reads past p[m-1].
    static ScalarVecD load_partial(const double* p, int m) {
        ScalarVecD r = zero();
        for (int i = 0; i < m; ++i) r.l[i] = p[i];
        return r;
    }

    void storeu(double* p) const {
        p[0] = l[0];
        p[1] = l[1];
        p[2] = l[2];
        p[3] = l[3];
    }
    /// Writes only the first `m` lanes (0 < m <= 4).
    void store_partial(double* p, int m) const {
        for (int i = 0; i < m; ++i) p[i] = l[i];
    }

    friend ScalarVecD operator+(ScalarVecD a, ScalarVecD b) {
        return {{a.l[0] + b.l[0], a.l[1] + b.l[1], a.l[2] + b.l[2],
                 a.l[3] + b.l[3]}};
    }
    friend ScalarVecD operator-(ScalarVecD a, ScalarVecD b) {
        return {{a.l[0] - b.l[0], a.l[1] - b.l[1], a.l[2] - b.l[2],
                 a.l[3] - b.l[3]}};
    }
    friend ScalarVecD operator*(ScalarVecD a, ScalarVecD b) {
        return {{a.l[0] * b.l[0], a.l[1] * b.l[1], a.l[2] * b.l[2],
                 a.l[3] * b.l[3]}};
    }
    friend ScalarVecD operator/(ScalarVecD a, ScalarVecD b) {
        return {{a.l[0] / b.l[0], a.l[1] / b.l[1], a.l[2] / b.l[2],
                 a.l[3] / b.l[3]}};
    }

    /// Sign-bit flip (exact, matches unary minus on every value incl. ±0).
    friend ScalarVecD vneg(ScalarVecD a) {
        return {{-a.l[0], -a.l[1], -a.l[2], -a.l[3]}};
    }
    /// (a < b) ? a : b per lane — x86 minpd semantics (b on NaN).
    friend ScalarVecD vmin(ScalarVecD a, ScalarVecD b) {
        ScalarVecD r;
        for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] < b.l[i] ? a.l[i] : b.l[i];
        return r;
    }
    /// (a > b) ? a : b per lane — x86 maxpd semantics (b on NaN).
    friend ScalarVecD vmax(ScalarVecD a, ScalarVecD b) {
        ScalarVecD r;
        for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] > b.l[i] ? a.l[i] : b.l[i];
        return r;
    }
    /// a*b + c with a single rounding. Always fused on every backend.
    friend ScalarVecD fmadd(ScalarVecD a, ScalarVecD b, ScalarVecD c) {
        ScalarVecD r;
        for (int i = 0; i < 4; ++i) r.l[i] = std::fma(a.l[i], b.l[i], c.l[i]);
        return r;
    }
    /// a*b + c; fused only under RDP_SIMD_FMA (default: two rounded ops).
    friend ScalarVecD mul_add(ScalarVecD a, ScalarVecD b, ScalarVecD c) {
#if defined(RDP_SIMD_FMA)
        return fmadd(a, b, c);
#else
        return a * b + c;
#endif
    }
    /// a*b - c; fused only under RDP_SIMD_FMA.
    friend ScalarVecD mul_sub(ScalarVecD a, ScalarVecD b, ScalarVecD c) {
#if defined(RDP_SIMD_FMA)
        ScalarVecD r;
        for (int i = 0; i < 4; ++i) r.l[i] = std::fma(a.l[i], b.l[i], -c.l[i]);
        return r;
#else
        return a * b - c;
#endif
    }
    /// c - a*b; fused only under RDP_SIMD_FMA.
    friend ScalarVecD nmul_add(ScalarVecD a, ScalarVecD b, ScalarVecD c) {
#if defined(RDP_SIMD_FMA)
        ScalarVecD r;
        for (int i = 0; i < 4; ++i) r.l[i] = std::fma(-a.l[i], b.l[i], c.l[i]);
        return r;
#else
        return c - a * b;
#endif
    }
    /// v where c > 0, else +0.0 (also +0.0 where c is NaN).
    friend ScalarVecD and_gt_zero(ScalarVecD c, ScalarVecD v) {
        ScalarVecD r;
        for (int i = 0; i < 4; ++i) r.l[i] = c.l[i] > 0.0 ? v.l[i] : 0.0;
        return r;
    }
    /// Lanes >= m replaced by +0.0 (0 < m <= 4).
    friend ScalarVecD zero_tail(ScalarVecD v, int m) {
        ScalarVecD r = v;
        for (int i = m; i < 4; ++i) r.l[i] = 0.0;
        return r;
    }
    /// Horizontal sum with the canonical fixed tree (l0 + l2) + (l1 + l3).
    friend double reduce_add(ScalarVecD a) {
        return (a.l[0] + a.l[2]) + (a.l[1] + a.l[3]);
    }
    /// {l3, l2, l1, l0}.
    friend ScalarVecD reverse_lanes(ScalarVecD a) {
        return {{a.l[3], a.l[2], a.l[1], a.l[0]}};
    }
    /// Split 8 interleaved doubles p[0..7] into even = {p0,p2,p4,p6} and
    /// odd = {p1,p3,p5,p7} (complex re/im deinterleave).
    friend void deinterleave2(const double* p, ScalarVecD& even,
                              ScalarVecD& odd) {
        even = {{p[0], p[2], p[4], p[6]}};
        odd = {{p[1], p[3], p[5], p[7]}};
    }
    /// Inverse of deinterleave2: writes p[2i] = even[i], p[2i+1] = odd[i].
    friend void interleave2(double* p, ScalarVecD even, ScalarVecD odd) {
        for (int i = 0; i < 4; ++i) {
            p[2 * i] = even.l[i];
            p[2 * i + 1] = odd.l[i];
        }
    }
    /// {l1, l0, l3, l2}: swaps the halves of each 128-bit pair — the re/im
    /// swap of two interleaved complex values.
    friend ScalarVecD swap_pairs(ScalarVecD a) {
        return {{a.l[1], a.l[0], a.l[3], a.l[2]}};
    }
    /// {a0 - b0, a1 + b1, a2 - b2, a3 + b3}: with swap_pairs this is the
    /// interleaved complex multiply (x86 addsubpd). Plain IEEE add/sub per
    /// lane, so it is exact and backend-identical.
    friend ScalarVecD addsub(ScalarVecD a, ScalarVecD b) {
        return {{a.l[0] - b.l[0], a.l[1] + b.l[1], a.l[2] - b.l[2],
                 a.l[3] + b.l[3]}};
    }
    /// 2^k per lane, where t = kExpShift + k came from the magic-number
    /// rounding inside stable_exp (k an integer, |k| <= 1023).
    friend ScalarVecD pow2_from_shifted(ScalarVecD t);
};

// ---------------------------------------------------------------------------
// Avx2VecD: one 256-bit register (compiled only when the backend is avx2,
// so plain -mavx2 objects never leak into a non-AVX2 build).
// ---------------------------------------------------------------------------

#if RDP_SIMD_BACKEND == 1

struct Avx2VecD {
    __m256d v;

    static Avx2VecD zero() { return {_mm256_setzero_pd()}; }
    static Avx2VecD set1(double x) { return {_mm256_set1_pd(x)}; }
    static Avx2VecD iota() { return {_mm256_setr_pd(0.0, 1.0, 2.0, 3.0)}; }
    static Avx2VecD loadu(const double* p) { return {_mm256_loadu_pd(p)}; }
    /// All-ones in lanes < m, zeros elsewhere, as an integer mask for
    /// maskload/maskstore (which test the lane's top bit).
    static __m256i tail_mask(int m) {
        const __m256d lt = _mm256_cmp_pd(
            _mm256_setr_pd(0.0, 1.0, 2.0, 3.0),
            _mm256_set1_pd(static_cast<double>(m)), _CMP_LT_OQ);
        return _mm256_castpd_si256(lt);
    }
    static Avx2VecD load_partial(const double* p, int m) {
        return {_mm256_maskload_pd(p, tail_mask(m))};
    }

    void storeu(double* p) const { _mm256_storeu_pd(p, v); }
    void store_partial(double* p, int m) const {
        _mm256_maskstore_pd(p, tail_mask(m), v);
    }

    friend Avx2VecD operator+(Avx2VecD a, Avx2VecD b) {
        return {_mm256_add_pd(a.v, b.v)};
    }
    friend Avx2VecD operator-(Avx2VecD a, Avx2VecD b) {
        return {_mm256_sub_pd(a.v, b.v)};
    }
    friend Avx2VecD operator*(Avx2VecD a, Avx2VecD b) {
        return {_mm256_mul_pd(a.v, b.v)};
    }
    friend Avx2VecD operator/(Avx2VecD a, Avx2VecD b) {
        return {_mm256_div_pd(a.v, b.v)};
    }

    friend Avx2VecD vneg(Avx2VecD a) {
        return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))};
    }
    friend Avx2VecD vmin(Avx2VecD a, Avx2VecD b) {
        return {_mm256_min_pd(a.v, b.v)};
    }
    friend Avx2VecD vmax(Avx2VecD a, Avx2VecD b) {
        return {_mm256_max_pd(a.v, b.v)};
    }
    friend Avx2VecD fmadd(Avx2VecD a, Avx2VecD b, Avx2VecD c) {
        return {_mm256_fmadd_pd(a.v, b.v, c.v)};
    }
    friend Avx2VecD mul_add(Avx2VecD a, Avx2VecD b, Avx2VecD c) {
#if defined(RDP_SIMD_FMA)
        return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
        return a * b + c;
#endif
    }
    friend Avx2VecD mul_sub(Avx2VecD a, Avx2VecD b, Avx2VecD c) {
#if defined(RDP_SIMD_FMA)
        return {_mm256_fmsub_pd(a.v, b.v, c.v)};
#else
        return a * b - c;
#endif
    }
    friend Avx2VecD nmul_add(Avx2VecD a, Avx2VecD b, Avx2VecD c) {
#if defined(RDP_SIMD_FMA)
        return {_mm256_fnmadd_pd(a.v, b.v, c.v)};
#else
        return c - a * b;
#endif
    }
    friend Avx2VecD and_gt_zero(Avx2VecD c, Avx2VecD v) {
        const __m256d gt =
            _mm256_cmp_pd(c.v, _mm256_setzero_pd(), _CMP_GT_OQ);
        return {_mm256_and_pd(gt, v.v)};
    }
    friend Avx2VecD zero_tail(Avx2VecD v, int m) {
        return {_mm256_and_pd(v.v, _mm256_castsi256_pd(tail_mask(m)))};
    }
    friend double reduce_add(Avx2VecD a) {
        const __m128d lo = _mm256_castpd256_pd128(a.v);
        const __m128d hi = _mm256_extractf128_pd(a.v, 1);
        const __m128d s = _mm_add_pd(lo, hi);  // {l0+l2, l1+l3}
        return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
    }
    friend Avx2VecD reverse_lanes(Avx2VecD a) {
        return {_mm256_permute4x64_pd(a.v, 0x1B)};
    }
    friend void deinterleave2(const double* p, Avx2VecD& even, Avx2VecD& odd) {
        const __m256d a = _mm256_loadu_pd(p);      // p0 p1 p2 p3
        const __m256d b = _mm256_loadu_pd(p + 4);  // p4 p5 p6 p7
        const __m256d t0 = _mm256_permute2f128_pd(a, b, 0x20);  // p0 p1 p4 p5
        const __m256d t1 = _mm256_permute2f128_pd(a, b, 0x31);  // p2 p3 p6 p7
        even = {_mm256_unpacklo_pd(t0, t1)};                    // p0 p2 p4 p6
        odd = {_mm256_unpackhi_pd(t0, t1)};                     // p1 p3 p5 p7
    }
    friend void interleave2(double* p, Avx2VecD even, Avx2VecD odd) {
        const __m256d t0 = _mm256_unpacklo_pd(even.v, odd.v);  // e0 o0 e2 o2
        const __m256d t1 = _mm256_unpackhi_pd(even.v, odd.v);  // e1 o1 e3 o3
        _mm256_storeu_pd(p, _mm256_permute2f128_pd(t0, t1, 0x20));
        _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(t0, t1, 0x31));
    }
    friend Avx2VecD swap_pairs(Avx2VecD a) {
        return {_mm256_permute_pd(a.v, 0b0101)};
    }
    friend Avx2VecD addsub(Avx2VecD a, Avx2VecD b) {
        return {_mm256_addsub_pd(a.v, b.v)};
    }
    friend Avx2VecD pow2_from_shifted(Avx2VecD t);
};

#endif  // RDP_SIMD_BACKEND == 1

// ---------------------------------------------------------------------------
// NeonVecD: two 128-bit registers (AArch64).
// ---------------------------------------------------------------------------

#if RDP_SIMD_BACKEND == 2

struct NeonVecD {
    float64x2_t v0;  // lanes 0,1
    float64x2_t v1;  // lanes 2,3

    static NeonVecD zero() {
        return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
    }
    static NeonVecD set1(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
    static NeonVecD iota() {
        const double lo[2] = {0.0, 1.0};
        const double hi[2] = {2.0, 3.0};
        return {vld1q_f64(lo), vld1q_f64(hi)};
    }
    static NeonVecD loadu(const double* p) {
        return {vld1q_f64(p), vld1q_f64(p + 2)};
    }
    static NeonVecD load_partial(const double* p, int m) {
        double tmp[4] = {0.0, 0.0, 0.0, 0.0};
        for (int i = 0; i < m; ++i) tmp[i] = p[i];
        return loadu(tmp);
    }

    void storeu(double* p) const {
        vst1q_f64(p, v0);
        vst1q_f64(p + 2, v1);
    }
    void store_partial(double* p, int m) const {
        double tmp[4];
        storeu(tmp);
        for (int i = 0; i < m; ++i) p[i] = tmp[i];
    }

    friend NeonVecD operator+(NeonVecD a, NeonVecD b) {
        return {vaddq_f64(a.v0, b.v0), vaddq_f64(a.v1, b.v1)};
    }
    friend NeonVecD operator-(NeonVecD a, NeonVecD b) {
        return {vsubq_f64(a.v0, b.v0), vsubq_f64(a.v1, b.v1)};
    }
    friend NeonVecD operator*(NeonVecD a, NeonVecD b) {
        return {vmulq_f64(a.v0, b.v0), vmulq_f64(a.v1, b.v1)};
    }
    friend NeonVecD operator/(NeonVecD a, NeonVecD b) {
        return {vdivq_f64(a.v0, b.v0), vdivq_f64(a.v1, b.v1)};
    }

    friend NeonVecD vneg(NeonVecD a) {
        return {vnegq_f64(a.v0), vnegq_f64(a.v1)};
    }
    // Compare+select, NOT vminq/vmaxq: FMIN/FMAX order ±0 and propagate NaN
    // differently from the x86 select semantics the contract fixes.
    friend NeonVecD vmin(NeonVecD a, NeonVecD b) {
        return {vbslq_f64(vcltq_f64(a.v0, b.v0), a.v0, b.v0),
                vbslq_f64(vcltq_f64(a.v1, b.v1), a.v1, b.v1)};
    }
    friend NeonVecD vmax(NeonVecD a, NeonVecD b) {
        return {vbslq_f64(vcgtq_f64(a.v0, b.v0), a.v0, b.v0),
                vbslq_f64(vcgtq_f64(a.v1, b.v1), a.v1, b.v1)};
    }
    friend NeonVecD fmadd(NeonVecD a, NeonVecD b, NeonVecD c) {
        return {vfmaq_f64(c.v0, a.v0, b.v0), vfmaq_f64(c.v1, a.v1, b.v1)};
    }
    friend NeonVecD mul_add(NeonVecD a, NeonVecD b, NeonVecD c) {
#if defined(RDP_SIMD_FMA)
        return fmadd(a, b, c);
#else
        return a * b + c;
#endif
    }
    friend NeonVecD mul_sub(NeonVecD a, NeonVecD b, NeonVecD c) {
#if defined(RDP_SIMD_FMA)
        // a*b - c == -(c - a*b); negation is exact and round-to-nearest is
        // sign-symmetric, so this matches a fused fmsub bit for bit.
        return vneg(nmul_add(a, b, c));
#else
        return a * b - c;
#endif
    }
    friend NeonVecD nmul_add(NeonVecD a, NeonVecD b, NeonVecD c) {
#if defined(RDP_SIMD_FMA)
        return {vfmsq_f64(c.v0, a.v0, b.v0), vfmsq_f64(c.v1, a.v1, b.v1)};
#else
        return c - a * b;
#endif
    }
    friend NeonVecD and_gt_zero(NeonVecD c, NeonVecD v) {
        const uint64x2_t z0 = vcgtq_f64(c.v0, vdupq_n_f64(0.0));
        const uint64x2_t z1 = vcgtq_f64(c.v1, vdupq_n_f64(0.0));
        return {vreinterpretq_f64_u64(
                    vandq_u64(z0, vreinterpretq_u64_f64(v.v0))),
                vreinterpretq_f64_u64(
                    vandq_u64(z1, vreinterpretq_u64_f64(v.v1)))};
    }
    friend NeonVecD zero_tail(NeonVecD v, int m) {
        double tmp[4];
        v.storeu(tmp);
        for (int i = m; i < 4; ++i) tmp[i] = 0.0;
        return loadu(tmp);
    }
    friend double reduce_add(NeonVecD a) {
        const float64x2_t s = vaddq_f64(a.v0, a.v1);  // {l0+l2, l1+l3}
        return vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1);
    }
    friend NeonVecD reverse_lanes(NeonVecD a) {
        return {vextq_f64(a.v1, a.v1, 1), vextq_f64(a.v0, a.v0, 1)};
    }
    friend void deinterleave2(const double* p, NeonVecD& even, NeonVecD& odd) {
        const float64x2x2_t z0 = vld2q_f64(p);      // {p0,p2}, {p1,p3}
        const float64x2x2_t z1 = vld2q_f64(p + 4);  // {p4,p6}, {p5,p7}
        even = {z0.val[0], z1.val[0]};
        odd = {z0.val[1], z1.val[1]};
    }
    friend void interleave2(double* p, NeonVecD even, NeonVecD odd) {
        const float64x2x2_t lo = {{even.v0, odd.v0}};
        const float64x2x2_t hi = {{even.v1, odd.v1}};
        vst2q_f64(p, lo);
        vst2q_f64(p + 4, hi);
    }
    friend NeonVecD swap_pairs(NeonVecD a) {
        return {vextq_f64(a.v0, a.v0, 1), vextq_f64(a.v1, a.v1, 1)};
    }
    friend NeonVecD addsub(NeonVecD a, NeonVecD b) {
        // No NEON addsub: compute both and merge lanes (sub in lane 0,
        // add in lane 1 of each pair) — same IEEE ops as x86 addsubpd.
        const float64x2_t s0 = vsubq_f64(a.v0, b.v0);
        const float64x2_t a0 = vaddq_f64(a.v0, b.v0);
        const float64x2_t s1 = vsubq_f64(a.v1, b.v1);
        const float64x2_t a1 = vaddq_f64(a.v1, b.v1);
        return {vcopyq_laneq_f64(s0, 1, a0, 1), vcopyq_laneq_f64(s1, 1, a1, 1)};
    }
    friend NeonVecD pow2_from_shifted(NeonVecD t);
};

#endif  // RDP_SIMD_BACKEND == 2

#if RDP_SIMD_BACKEND == 1
using VecD = Avx2VecD;
#elif RDP_SIMD_BACKEND == 2
using VecD = NeonVecD;
#else
using VecD = ScalarVecD;
#endif

// ---------------------------------------------------------------------------
// stable_exp: the one exp-overflow guard of the codebase.
//
// exp(x) with the argument clamped into the IEEE-double-safe window
// [-708, 709] (beyond it, exp over/underflows): the clamp replaces the
// ad-hoc guards that used to live in the WA wirelength and the stats
// geometric mean. Accuracy is ~1 ulp (argument reduction with a Cody-Waite
// split of ln 2 plus a degree-13 Horner polynomial, all fused), NOT
// correctly rounded like libm — callers compare against std::exp with a
// relative tolerance, never bitwise. The vector form is lane-for-lane
// bitwise identical to the scalar twin on every backend (fmadd is always
// fused; tests/simd_test.cpp enforces the twin property).
// NaN inputs are clamped like -inf and yield exp(-708).
// ---------------------------------------------------------------------------

namespace detail {
inline constexpr double kExpLo = -708.0;
inline constexpr double kExpHi = 709.0;
inline constexpr double kLog2E = 1.4426950408889634074;  // log2(e)
// 1.5 * 2^52: adding it forces round-to-nearest-integer into the mantissa
// bits, and the integer is recoverable from the bit pattern (|k| < 2^51).
inline constexpr double kExpShift = 6755399441055744.0;
// Cody-Waite split of ln 2: the high part has 20 trailing zero mantissa
// bits, so k * kLn2Hi is exact for |k| <= 2^20.
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
// 1/k! for k = 13 down to 2 (Horner order).
inline constexpr double kExpPoly[12] = {
    1.6059043836821613e-10, 2.0876756987868098e-09, 2.5052108385441720e-08,
    2.7557319223985888e-07, 2.7557319223985893e-06, 2.4801587301587302e-05,
    1.9841269841269841e-04, 1.3888888888888889e-03, 8.3333333333333333e-03,
    4.1666666666666664e-02, 1.6666666666666666e-01, 5.0000000000000000e-01,
};
}  // namespace detail

inline ScalarVecD pow2_from_shifted(ScalarVecD t) {
    ScalarVecD r;
    const auto si = std::bit_cast<std::int64_t>(detail::kExpShift);
    for (int i = 0; i < 4; ++i) {
        const auto ti = std::bit_cast<std::int64_t>(t.l[i]);
        r.l[i] = std::bit_cast<double>((ti - si + 1023) << 52);
    }
    return r;
}

#if RDP_SIMD_BACKEND == 1
inline Avx2VecD pow2_from_shifted(Avx2VecD t) {
    const __m256i ti = _mm256_castpd_si256(t.v);
    const __m256i si =
        _mm256_castpd_si256(_mm256_set1_pd(detail::kExpShift));
    const __m256i k = _mm256_sub_epi64(ti, si);
    const __m256i bits =
        _mm256_slli_epi64(_mm256_add_epi64(k, _mm256_set1_epi64x(1023)), 52);
    return {_mm256_castsi256_pd(bits)};
}
#endif

#if RDP_SIMD_BACKEND == 2
inline NeonVecD pow2_from_shifted(NeonVecD t) {
    const int64x2_t si =
        vreinterpretq_s64_f64(vdupq_n_f64(detail::kExpShift));
    const int64x2_t bias = vdupq_n_s64(1023);
    const int64x2_t k0 = vsubq_s64(vreinterpretq_s64_f64(t.v0), si);
    const int64x2_t k1 = vsubq_s64(vreinterpretq_s64_f64(t.v1), si);
    return {vreinterpretq_f64_s64(vshlq_n_s64(vaddq_s64(k0, bias), 52)),
            vreinterpretq_f64_s64(vshlq_n_s64(vaddq_s64(k1, bias), 52))};
}
#endif

/// Scalar twin of the vectorized stable_exp; bitwise identical per lane.
inline double stable_exp(double x) {
    using namespace detail;
    x = x > kExpLo ? x : kExpLo;  // NaN falls through to the clamp value
    x = x < kExpHi ? x : kExpHi;
    const double t = std::fma(x, kLog2E, kExpShift);
    const double kd = t - kExpShift;
    double r = std::fma(kd, -kLn2Hi, x);
    r = std::fma(kd, -kLn2Lo, r);
    double p = kExpPoly[0];
    for (int i = 1; i < 12; ++i) p = std::fma(p, r, kExpPoly[i]);
    p = std::fma(p, r, 1.0);
    p = std::fma(p, r, 1.0);
    const auto ti = std::bit_cast<std::int64_t>(t);
    const auto si = std::bit_cast<std::int64_t>(kExpShift);
    return p * std::bit_cast<double>((ti - si + 1023) << 52);
}

template <typename V>
inline V stable_exp(V x) {
    using namespace detail;
    x = vmax(x, V::set1(kExpLo));
    x = vmin(x, V::set1(kExpHi));
    const V t = fmadd(x, V::set1(kLog2E), V::set1(kExpShift));
    const V kd = t - V::set1(kExpShift);
    V r = fmadd(kd, V::set1(-kLn2Hi), x);
    r = fmadd(kd, V::set1(-kLn2Lo), r);
    V p = V::set1(kExpPoly[0]);
    for (int i = 1; i < 12; ++i) p = fmadd(p, r, V::set1(kExpPoly[i]));
    p = fmadd(p, r, V::set1(1.0));
    p = fmadd(p, r, V::set1(1.0));
    return p * pow2_from_shifted(t);
}

}  // namespace rdp::simd
