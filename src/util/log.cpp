#include "util/log.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace rdp {

namespace {
LogLevel g_level = [] {
    const char* env = std::getenv("RDP_LOG");
    if (env == nullptr) return LogLevel::Info;
    if (std::strcmp(env, "error") == 0) return LogLevel::Error;
    if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
    if (std::strcmp(env, "info") == 0) return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
    std::cerr << "[W] ignoring invalid RDP_LOG='" << env
              << "' (expected error|warn|info|debug); using the default\n";
    return LogLevel::Info;
}();

const char* level_tag(LogLevel lv) {
    switch (lv) {
        case LogLevel::Error: return "[E]";
        case LogLevel::Warn: return "[W]";
        case LogLevel::Info: return "[I]";
        case LogLevel::Debug: return "[D]";
    }
    return "[?]";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lv) { g_level = lv; }

namespace detail {
void log_emit(LogLevel lv, const std::string& msg) {
    std::cerr << level_tag(lv) << " " << msg << "\n";
}
}  // namespace detail

}  // namespace rdp
