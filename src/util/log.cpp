#include "util/log.hpp"

#include <iostream>

#include "util/env.hpp"

namespace rdp {

namespace {
// RDP_LOG goes through the strict util/env parsing layer like every other
// knob: unknown values warn once (naming the accepted spellings) and fall
// back to the default instead of being silently ignored.
LogLevel g_level = [] {
    constexpr LogLevel kLevels[] = {LogLevel::Error, LogLevel::Warn,
                                    LogLevel::Info, LogLevel::Debug};
    const size_t idx =
        env::choice_or("RDP_LOG", 2, {"error", "warn", "info", "debug"});
    return kLevels[idx];
}();

const char* level_tag(LogLevel lv) {
    switch (lv) {
        case LogLevel::Error: return "[E]";
        case LogLevel::Warn: return "[W]";
        case LogLevel::Info: return "[I]";
        case LogLevel::Debug: return "[D]";
    }
    return "[?]";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lv) { g_level = lv; }

namespace detail {
void log_emit(LogLevel lv, const std::string& msg) {
    std::cerr << level_tag(lv) << " " << msg << "\n";
}
}  // namespace detail

}  // namespace rdp
