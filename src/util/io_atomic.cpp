#include "util/io_atomic.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define RDP_IO_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#else
#define RDP_IO_POSIX 0
#include <fstream>
#endif

namespace rdp::io {

namespace {

void set_error(std::string* error, const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

#if RDP_IO_POSIX

bool write_all(int fd, const unsigned char* p, size_t n, std::string* error) {
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR) continue;
            set_error(error, "write");
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

#endif

}  // namespace

bool atomic_write(const std::string& path, const void* data, std::size_t size,
                  std::string* error, const AtomicWriteOptions& opts) {
    // The temp file must live in the destination directory: rename(2) is
    // only atomic within one filesystem.
    const std::string tmp = path + ".tmp";
    const auto* bytes = static_cast<const unsigned char*>(data);
    const size_t half = opts.mid_write ? size / 2 : size;
#if RDP_IO_POSIX
    ::unlink(tmp.c_str());  // a leftover from an earlier crash
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        set_error(error, "open " + tmp);
        return false;
    }
    bool ok = write_all(fd, bytes, half, error);
    if (ok && opts.mid_write) {
        opts.mid_write();
        ok = write_all(fd, bytes + half, size - half, error);
    }
    if (ok && opts.durable && ::fsync(fd) != 0) {
        set_error(error, "fsync " + tmp);
        ok = false;
    }
    if (::close(fd) != 0 && ok) {
        set_error(error, "close " + tmp);
        ok = false;
    }
    if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) {
        set_error(error, "rename -> " + path);
        ok = false;
    }
    if (ok && opts.durable) {
        // Make the rename itself durable: fsync the containing directory
        // entry. Best effort — some filesystems refuse O_RDONLY dirs.
        const size_t slash = path.find_last_of('/');
        const std::string dir =
            slash == std::string::npos ? "." : path.substr(0, slash);
        const int dfd = ::open(dir.c_str(), O_RDONLY);
        if (dfd >= 0) {
            ::fsync(dfd);
            ::close(dfd);
        }
    }
    if (!ok) ::unlink(tmp.c_str());
    return ok;
#else
    // Portability fallback (no fsync available through the standard
    // library): still temp-file + rename, so readers never see a torn
    // file; power-loss durability is best effort.
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            set_error(error, "open " + tmp);
            return false;
        }
        os.write(reinterpret_cast<const char*>(bytes),
                 static_cast<std::streamsize>(half));
        if (opts.mid_write) opts.mid_write();
        os.write(reinterpret_cast<const char*>(bytes + half),
                 static_cast<std::streamsize>(size - half));
        os.flush();
        if (!os.good()) {
            set_error(error, "write " + tmp);
            std::remove(tmp.c_str());
            return false;
        }
    }
    std::remove(path.c_str());
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        set_error(error, "rename -> " + path);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
#endif
}

bool atomic_write(const std::string& path, const std::string& data,
                  std::string* error, const AtomicWriteOptions& opts) {
    return atomic_write(path, data.data(), data.size(), error, opts);
}

}  // namespace rdp::io
