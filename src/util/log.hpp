#pragma once
// Minimal leveled logger. Output goes to stderr so bench tables on stdout
// stay machine-readable. Level is process-global and settable from code or
// the RDP_LOG environment variable (error|warn|info|debug).

#include <sstream>
#include <string>

namespace rdp {

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Current global level (initialized from $RDP_LOG, default Info).
LogLevel log_level();
void set_log_level(LogLevel lv);

namespace detail {
void log_emit(LogLevel lv, const std::string& msg);
}

/// Stream-style logging: LOG_INFO() << "placed " << n << " cells";
class LogLine {
public:
    LogLine(LogLevel lv) : lv_(lv), active_(lv <= log_level()) {}
    ~LogLine() {
        if (active_) detail::log_emit(lv_, ss_.str());
    }
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    template <typename T>
    LogLine& operator<<(const T& v) {
        if (active_) ss_ << v;
        return *this;
    }

private:
    LogLevel lv_;
    bool active_;
    std::ostringstream ss_;
};

}  // namespace rdp

#define RDP_LOG_ERROR() ::rdp::LogLine(::rdp::LogLevel::Error)
#define RDP_LOG_WARN() ::rdp::LogLine(::rdp::LogLevel::Warn)
#define RDP_LOG_INFO() ::rdp::LogLine(::rdp::LogLevel::Info)
#define RDP_LOG_DEBUG() ::rdp::LogLine(::rdp::LogLevel::Debug)
