#pragma once
// ASCII table printer used by the bench harnesses to emit paper-style rows
// (Table I, Table II) on stdout.

#include <iosfwd>
#include <string>
#include <vector>

namespace rdp {

/// Right-aligned ASCII table with a header row.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Append a data row; must have the same arity as the header.
    void add_row(std::vector<std::string> row);
    /// Append a horizontal separator line.
    void add_separator();

    void print(std::ostream& os) const;

    /// Format helpers for numeric cells.
    static std::string fmt(double v, int precision = 2);
    static std::string fmt_int(long long v);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace rdp
