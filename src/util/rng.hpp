#pragma once
// Deterministic random number generation for synthetic benchmark creation and
// property-based tests. We implement xoshiro256** seeded via SplitMix64 so
// results are bit-identical across platforms and standard-library versions
// (std::mt19937 distributions are not portable).

#include <cstdint>

namespace rdp {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
class Rng {
public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /// Next raw 64-bit value.
    uint64_t next_u64();
    /// Uniform in [0, 1).
    double uniform();
    /// Uniform in [lo, hi).
    double uniform(double lo, double hi);
    /// Uniform integer in [lo, hi] inclusive.
    int uniform_int(int lo, int hi);
    /// Standard normal via Box-Muller.
    double normal();
    /// Normal with given mean and standard deviation.
    double normal(double mean, double stddev);
    /// Geometric distribution on {1, 2, ...} with success probability p.
    /// Used for net-degree distributions (most nets are 2-pin with a tail).
    int geometric1(double p);
    /// True with probability p.
    bool bernoulli(double p);

private:
    uint64_t s_[4];
    bool has_spare_ = false;
    double spare_ = 0.0;
};

}  // namespace rdp
