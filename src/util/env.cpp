#include "util/env.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>

namespace rdp::env {

namespace {

std::string trimmed(const std::string& s) {
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::string lowered(std::string s) {
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

// Direct to stderr rather than RDP_LOG: env knobs are read inside static
// initializers (log level itself among them), where the logger may not be
// configured yet. One warning per variable per process: several knobs
// (RDP_INCREMENTAL, RDP_CHECKPOINT_EVERY, ...) are re-read at every stage
// entry or loop boundary, and a misspelled value must not flood the log.
void warn(const char* name, const std::string& value,
          const std::string& expected) {
    static std::mutex mu;
    static std::set<std::string> warned;
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (!warned.insert(name).second) return;
    }
    std::cerr << "[W] ignoring invalid " << name << "='" << value
              << "' (expected " << expected << "); using the default\n";
}

}  // namespace

std::optional<long long> parse_int(const std::string& text) {
    const std::string t = trimmed(text);
    if (t.empty()) return std::nullopt;
    size_t i = (t[0] == '+' || t[0] == '-') ? 1 : 0;
    if (i == t.size()) return std::nullopt;
    for (size_t k = i; k < t.size(); ++k)
        if (!std::isdigit(static_cast<unsigned char>(t[k])))
            return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(t.c_str(), &end, 10);
    if (errno == ERANGE || end != t.c_str() + t.size()) return std::nullopt;
    return v;
}

std::optional<double> parse_double(const std::string& text) {
    const std::string t = trimmed(text);
    if (t.empty()) return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (errno == ERANGE || end != t.c_str() + t.size()) return std::nullopt;
    if (!std::isfinite(v)) return std::nullopt;
    return v;
}

std::optional<bool> parse_flag(const std::string& text) {
    const std::string t = lowered(trimmed(text));
    if (t == "1" || t == "on" || t == "true" || t == "yes") return true;
    if (t == "0" || t == "off" || t == "false" || t == "no") return false;
    return std::nullopt;
}

std::optional<std::string> raw(const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr) return std::nullopt;
    return std::string(v);
}

long long int_or(const char* name, long long def, long long min_v,
                 long long max_v) {
    const auto text = raw(name);
    if (!text) return def;
    const auto v = parse_int(*text);
    if (!v || *v < min_v || *v > max_v) {
        warn(name, *text,
             "an integer in [" + std::to_string(min_v) + ", " +
                 std::to_string(max_v) + "]");
        return def;
    }
    return *v;
}

double double_or(const char* name, double def, double min_v, double max_v) {
    const auto text = raw(name);
    if (!text) return def;
    const auto v = parse_double(*text);
    if (!v || *v < min_v || *v > max_v) {
        warn(name, *text,
             "a number in [" + std::to_string(min_v) + ", " +
                 std::to_string(max_v) + "]");
        return def;
    }
    return *v;
}

bool flag_or(const char* name, bool def) {
    const auto text = raw(name);
    if (!text) return def;
    const auto v = parse_flag(*text);
    if (!v) {
        warn(name, *text, "one of 0/1, on/off, true/false, yes/no");
        return def;
    }
    return *v;
}

size_t choice_or(const char* name, size_t def,
                 std::initializer_list<const char*> options) {
    const auto text = raw(name);
    if (!text) return def;
    const std::string t = lowered(trimmed(*text));
    size_t i = 0;
    for (const char* opt : options) {
        if (t == opt) return i;
        ++i;
    }
    std::string expected = "one of ";
    i = 0;
    for (const char* opt : options)
        expected += (i++ == 0 ? std::string() : std::string("|")) + opt;
    warn(name, *text, expected);
    return def;
}

}  // namespace rdp::env
