#pragma once
// Definition of FftPlan::transform_with — the planned radix-2 transform
// with vectorized butterfly/twiddle passes (DESIGN.md §14).
//
// Stage structure: bit-reversal and the len = 2 / len = 4 stages run
// scalar (their butterflies are too short for 4-lane vectors); every stage
// with len >= 8 has half = len/2 >= 4 twiddles, so each vector step covers
// two adjacent butterflies with no tail. The complex data stays
// interleaved: one vector holds [re_j im_j re_{j+1} im_{j+1}], the plan's
// lane-duplicated twiddle tables supply [wr_j wr_j wr_{j+1} wr_{j+1}] and
// [-wi_j wi_j -wi_{j+1} wi_{j+1}], and the complex multiply is two lane
// multiplies, one swap_pairs, and one plain add — no deinterleave/
// interleave shuffles in the hot loop.
//
// Every arithmetic op matches the scalar butterfly op for op: the
// sign-alternated imaginary table makes lane 0 compute
// hr*wr + him*(-wi), bitwise equal to the scalar hr*wr - him*wi (IEEE
// x - y == x + (-y), and multiplication by a sign-flipped factor flips
// exactly the sign bit), and lane 1 computes him*wr + hr*wi (the scalar
// hr*wi + him*wr with the bitwise-commutative addition flipped). Keeping
// the combine a plain add matters: an explicit addsub after a multiply
// gets fused into vfmaddsub by the x86 backend even under
// -ffp-contract=off, and that fusion fires per-instantiation, breaking
// cross-backend bitwise identity. Plain mul + add contraction is properly
// gated by -ffp-contract=off, so the transform's output bits are
// identical for every SIMD backend — and identical to the
// pre-vectorization scalar code.

#include <utility>

#include "fft/fft.hpp"
#include "util/simd.hpp"

namespace rdp {

template <typename V, bool Inverse>
void FftPlan::transform_with(Complex* a) const {
    const int n = n_;
    if (n <= 1) return;

    for (int i = 1; i < n; ++i) {
        const int j = rev_[static_cast<size_t>(i)];
        if (i < j) std::swap(a[i], a[j]);
    }

    // First stage (len = 2): all twiddles are 1, no multiply needed.
    for (int i = 0; i < n; i += 2) {
        const Complex u = a[i];
        const Complex v = a[i + 1];
        a[i] = u + v;
        a[i + 1] = u - v;
    }

    // Second stage (len = 4): scalar, generic twiddle walk over tw_.
    if (n >= 4) {
        const int stride = n / 4;
        for (int i = 0; i < n; i += 4) {
            Complex* lo = a + i;
            Complex* hi = a + i + 2;
            for (int j = 0; j < 2; ++j) {
                const Complex& w = tw_[static_cast<size_t>(j * stride)];
                const double wr = w.real();
                const double wi = Inverse ? -w.imag() : w.imag();
                const double hr = hi[j].real(), hi_ = hi[j].imag();
                const double vr = hr * wr - hi_ * wi;
                const double vi = hr * wi + hi_ * wr;
                const double ur = lo[j].real(), ui = lo[j].imag();
                lo[j] = {ur + vr, ui + vi};
                hi[j] = {ur - vr, ui - vi};
            }
        }
    }

    // Stages len >= 8: vectorized butterflies, two interleaved complex
    // values per vector step.
    double* ad = reinterpret_cast<double*>(a);
    for (int len = 8; len <= n; len <<= 1) {
        const int half = len >> 1;
        const double* wre = stw_re_.data() + (len - 8);
        const double* wim = stw_im_.data() + (len - 8);
        for (int i = 0; i < n; i += len) {
            double* lo = ad + 2 * i;
            double* hi = ad + 2 * (i + half);
            for (int j = 0; j < half; j += 2) {
                const V wr = V::loadu(wre + 2 * j);  // wr_j wr_j wr_j1 wr_j1
                V wi = V::loadu(wim + 2 * j);        // -wi_j wi_j ...
                if constexpr (Inverse) wi = vneg(wi);
                const V h = V::loadu(hi + 2 * j);  // hr_j him_j hr_j1 him_j1
                const V u = V::loadu(lo + 2 * j);
                // hr*wr + him*(-wi) | him*wr + hr*wi  (see header comment)
                const V w = h * wr + swap_pairs(h) * wi;
                (u + w).storeu(lo + 2 * j);
                (u - w).storeu(hi + 2 * j);
            }
        }
    }

    if constexpr (Inverse) {
        // Same per-element multiply as `a[i] *= inv`; 2n doubles is a
        // multiple of the lane width for every n >= 2.
        const double inv = 1.0 / n;
        const V vinv = V::set1(inv);
        const int total = 2 * n;
        for (int i = 0; i + simd::kLanes <= total; i += simd::kLanes)
            (V::loadu(ad + i) * vinv).storeu(ad + i);
    }
}

}  // namespace rdp
