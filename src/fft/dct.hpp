#pragma once
// Fast cosine/sine transforms for real input, planned per size.
// Conventions (unnormalized, N = input length, power of two):
//
//   dct2(x)[k]   = sum_{n=0}^{N-1} x[n] cos(pi k (2n+1) / (2N))
//   dct3(a)[n]   = sum_{k=0}^{N-1} a[k] cos(pi k (2n+1) / (2N))
//   idct2(X)     = exact inverse of dct2 (round-trip identity)
//   idxst(b)[n]  = sum_{k=0}^{N-1} b[k] sin(pi k (2n+1) / (2N))
//
// dct3 evaluates a cosine series at half-integer sample points; idxst
// evaluates the matching sine series. These are exactly the evaluations the
// ePlace spectral Poisson solution needs for the potential (cos x cos) and
// the field components (sin x cos / cos x sin).
//
// Implementation: Makhoul's even/odd reordering turns the DCT-II of N real
// samples into the DFT of a real length-N sequence, which is computed with
// one N/2-point *complex* FFT (pack adjacent reals into one complex value,
// unpack via Hermitian symmetry) — half the transform work of the previous
// N-point complex path. A DctPlan holds the per-size twiddle tables
// (cos/sin(pi k / 2N) output rotations and the e^{-2 pi i k / N} unpack
// factors) plus the cached half-size FftPlan; a DctWorkspace adds the
// per-thread scratch, so transforms run in place with zero allocation.

#include <complex>
#include <vector>

namespace rdp {

class DctWorkspace;

/// Immutable per-size tables shared by every workspace of that size.
/// `dct_plan(n)` returns the process-wide cached instance.
class DctPlan {
public:
    /// n must be a power of two (>= 1).
    explicit DctPlan(int n);

    int size() const { return n_; }

private:
    friend class DctWorkspace;

    int n_;                  ///< transform length
    int m_;                  ///< n / 2 (0 when n == 1)
    const class FftPlan* fft_ = nullptr;  ///< cached m-point plan (n >= 2)
    std::vector<double> cos_;             ///< cos(pi k / (2N)), k < n
    std::vector<double> sin_;             ///< sin(pi k / (2N)), k < n
    std::vector<std::complex<double>> wr_;  ///< e^{-2 pi i k / N}, k <= m
};

/// Process-wide plan cache (thread-safe; references live forever).
const DctPlan& dct_plan(int n);

/// Allocation-free transform engine for hot loops (the Poisson solver runs
/// seven batched 1D passes per solve, once per placement iteration): one
/// workspace per length, transforms performed in place on caller storage.
/// Not thread-safe per instance — use one workspace per worker.
class DctWorkspace {
public:
    explicit DctWorkspace(int n);

    int size() const { return plan_->size(); }

    void dct2(double* x);   ///< in-place forward DCT-II
    void idct2(double* x);  ///< in-place inverse of dct2
    void dct3(double* x);   ///< in-place cosine-series evaluation
    void idxst(double* x);  ///< in-place sine-series evaluation

    /// Transform bodies templated on the SIMD vector type (defined in
    /// fft/dct_kernel.hpp). The non-template methods above instantiate the
    /// active simd::VecD; tests/benches also instantiate simd::ScalarVecD
    /// and compare bitwise — the reorder/pack/unpack passes are purely
    /// elementwise, so all backends produce identical bits.
    template <typename V>
    void dct2_with(double* x);
    template <typename V>
    void idct2_with(double* x);
    template <typename V>
    void dct3_with(double* x);
    template <typename V>
    void idxst_with(double* x);

private:
    const DctPlan* plan_;  ///< cached, immutable, process-lifetime
    std::vector<std::complex<double>> buf_;  ///< half-length FFT buffer (m)
    std::vector<std::complex<double>> vbuf_;  ///< half spectrum V[0..m]
    std::vector<double> tmp_;                 ///< length-n reorder scratch
};

/// Convenience out-of-place wrappers (tests, benches, one-off callers).
std::vector<double> dct2(const std::vector<double>& x);
std::vector<double> idct2(const std::vector<double>& X);
std::vector<double> dct3(const std::vector<double>& a);
std::vector<double> idxst(const std::vector<double>& b);

/// Reference O(N^2) implementations used for validation in tests.
namespace naive {
std::vector<double> dct2(const std::vector<double>& x);
std::vector<double> dct3(const std::vector<double>& a);
std::vector<double> idxst(const std::vector<double>& b);
}  // namespace naive

}  // namespace rdp
