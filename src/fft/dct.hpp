#pragma once
// Fast cosine/sine transforms built on the radix-2 FFT (Makhoul's N-point
// method). Conventions (unnormalized, N = input length, power of two):
//
//   dct2(x)[k]   = sum_{n=0}^{N-1} x[n] cos(pi k (2n+1) / (2N))
//   dct3(a)[n]   = sum_{k=0}^{N-1} a[k] cos(pi k (2n+1) / (2N))
//   idct2(X)     = exact inverse of dct2 (round-trip identity)
//   idxst(b)[n]  = sum_{k=0}^{N-1} b[k] sin(pi k (2n+1) / (2N))
//
// dct3 evaluates a cosine series at half-integer sample points; idxst
// evaluates the matching sine series. These are exactly the evaluations the
// ePlace spectral Poisson solution needs for the potential (cos x cos) and
// the field components (sin x cos / cos x sin).

#include <complex>
#include <vector>

namespace rdp {

std::vector<double> dct2(const std::vector<double>& x);
std::vector<double> idct2(const std::vector<double>& X);
std::vector<double> dct3(const std::vector<double>& a);
std::vector<double> idxst(const std::vector<double>& b);

/// Allocation-free transform engine for hot loops (the Poisson solver runs
/// four 2D transforms per solve, once per placement iteration): one
/// workspace per length, transforms performed in place on caller storage.
class DctWorkspace {
public:
    explicit DctWorkspace(int n);

    int size() const { return n_; }

    void dct2(double* x);   ///< in-place forward DCT-II
    void idct2(double* x);  ///< in-place inverse of dct2
    void dct3(double* x);   ///< in-place cosine-series evaluation
    void idxst(double* x);  ///< in-place sine-series evaluation

private:
    int n_;
    std::vector<std::complex<double>> buf_;
    std::vector<double> twiddle_cos_;  ///< cos(pi k / (2N))
    std::vector<double> twiddle_sin_;  ///< sin(pi k / (2N))
    std::vector<double> tmp_;
};

/// Reference O(N^2) implementations used for validation in tests.
namespace naive {
std::vector<double> dct2(const std::vector<double>& x);
std::vector<double> dct3(const std::vector<double>& a);
std::vector<double> idxst(const std::vector<double>& b);
}  // namespace naive

}  // namespace rdp
