#include "fft/fft.hpp"

#include <cassert>
#include <cmath>
#include <memory>
#include <mutex>

#include "fft/fft_kernel.hpp"
#include "util/simd.hpp"
#include "util/thread_annotations.hpp"

namespace rdp {

int next_pow2(int n) {
    int p = 1;
    while (p < n) p <<= 1;
    return p;
}

FftPlan::FftPlan(int n) : n_(n), rev_(static_cast<size_t>(n)) {
    assert(is_pow2(n));
    for (int i = 1; i < n; ++i)
        rev_[static_cast<size_t>(i)] =
            (rev_[static_cast<size_t>(i >> 1)] >> 1) | ((i & 1) ? n >> 1 : 0);
    tw_.resize(static_cast<size_t>(n / 2));
    // Each twiddle from its own cos/sin evaluation: the table is exact to
    // ulp, unlike the repeated-multiplication recurrence it replaces.
    for (int k = 0; k < n / 2; ++k) {
        const double ang = -2.0 * M_PI * k / n;
        tw_[static_cast<size_t>(k)] = {std::cos(ang), std::sin(ang)};
    }
    // Per-stage lane-duplicated twiddle tables for the vectorized stages
    // (len >= 8): each real component is stored twice ([wr0 wr0 wr1 wr1]
    // ...) and each imaginary component twice with alternating signs
    // ([-wi0 wi0 -wi1 wi1] ...), so the interleaved-complex butterfly is a
    // plain multiply + add per vector — the sign alternation folds the
    // complex multiply's subtract into the table. (An explicit addsub op
    // would invite the x86 backend to fuse mul+addsub into vfmaddsub,
    // which ignores -ffp-contract=off and breaks cross-backend bitwise
    // identity.) Stage at offset len - 8, 2 * half = len doubles per stage.
    if (n >= 8) {
        stw_re_.resize(2 * static_cast<size_t>(n) - 8);
        stw_im_.resize(2 * static_cast<size_t>(n) - 8);
        for (int len = 8; len <= n; len <<= 1) {
            const int half = len >> 1;
            const int stride = n / len;
            double* re = stw_re_.data() + (len - 8);
            double* im = stw_im_.data() + (len - 8);
            for (int j = 0; j < half; ++j) {
                const Complex& w = tw_[static_cast<size_t>(j * stride)];
                re[2 * j] = re[2 * j + 1] = w.real();
                im[2 * j] = -w.imag();
                im[2 * j + 1] = w.imag();
            }
        }
    }
}

void FftPlan::forward(Complex* a) const {
    transform_with<simd::VecD, false>(a);
}
void FftPlan::inverse(Complex* a) const {
    transform_with<simd::VecD, true>(a);
}

namespace {

// Plans keyed by log2(size): at most 31 distinct sizes, stable addresses.
// The slot array is written only under `mu`; the plans themselves are
// immutable after construction, so references handed out past the lock
// stay valid and race-free.
struct PlanCache {
    std::mutex mu;
    std::unique_ptr<FftPlan> plans[32] GUARDED_BY(mu);
};

PlanCache& plan_cache() {
    static PlanCache cache;
    return cache;
}

int log2_pow2(int n) {
    int l = 0;
    while ((1 << l) < n) ++l;
    return l;
}

}  // namespace

const FftPlan& fft_plan(int n) {
    assert(is_pow2(n));
    PlanCache& cache = plan_cache();
    const int slot = log2_pow2(n);
    std::lock_guard<std::mutex> lock(cache.mu);
    if (!cache.plans[slot]) cache.plans[slot] = std::make_unique<FftPlan>(n);
    return *cache.plans[slot];
}

void fft(std::vector<Complex>& a, bool inverse) {
    const int n = static_cast<int>(a.size());
    assert(is_pow2(n));
    if (n <= 1) return;
    const FftPlan& plan = fft_plan(n);
    if (inverse)
        plan.inverse(a.data());
    else
        plan.forward(a.data());
}

}  // namespace rdp
