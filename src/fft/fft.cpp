#include "fft/fft.hpp"

#include <cassert>
#include <cmath>
#include <memory>
#include <mutex>

namespace rdp {

int next_pow2(int n) {
    int p = 1;
    while (p < n) p <<= 1;
    return p;
}

FftPlan::FftPlan(int n) : n_(n), rev_(static_cast<size_t>(n)) {
    assert(is_pow2(n));
    for (int i = 1; i < n; ++i)
        rev_[static_cast<size_t>(i)] =
            (rev_[static_cast<size_t>(i >> 1)] >> 1) | ((i & 1) ? n >> 1 : 0);
    tw_.resize(static_cast<size_t>(n / 2));
    // Each twiddle from its own cos/sin evaluation: the table is exact to
    // ulp, unlike the repeated-multiplication recurrence it replaces.
    for (int k = 0; k < n / 2; ++k) {
        const double ang = -2.0 * M_PI * k / n;
        tw_[static_cast<size_t>(k)] = {std::cos(ang), std::sin(ang)};
    }
}

template <bool Inverse>
void FftPlan::transform(Complex* a) const {
    const int n = n_;
    if (n <= 1) return;

    for (int i = 1; i < n; ++i) {
        const int j = rev_[static_cast<size_t>(i)];
        if (i < j) std::swap(a[i], a[j]);
    }

    // First stage (len = 2): all twiddles are 1, no multiply needed.
    for (int i = 0; i < n; i += 2) {
        const Complex u = a[i];
        const Complex v = a[i + 1];
        a[i] = u + v;
        a[i + 1] = u - v;
    }

    for (int len = 4; len <= n; len <<= 1) {
        const int half = len >> 1;
        const int stride = n / len;
        for (int i = 0; i < n; i += len) {
            Complex* lo = a + i;
            Complex* hi = a + i + half;
            for (int j = 0; j < half; ++j) {
                const Complex& w = tw_[static_cast<size_t>(j * stride)];
                const double wr = w.real();
                const double wi = Inverse ? -w.imag() : w.imag();
                const double hr = hi[j].real(), hi_ = hi[j].imag();
                const double vr = hr * wr - hi_ * wi;
                const double vi = hr * wi + hi_ * wr;
                const double ur = lo[j].real(), ui = lo[j].imag();
                lo[j] = {ur + vr, ui + vi};
                hi[j] = {ur - vr, ui - vi};
            }
        }
    }

    if (Inverse) {
        const double inv = 1.0 / n;
        for (int i = 0; i < n; ++i) a[i] *= inv;
    }
}

void FftPlan::forward(Complex* a) const { transform<false>(a); }
void FftPlan::inverse(Complex* a) const { transform<true>(a); }

namespace {

// Plans keyed by log2(size): at most 31 distinct sizes, stable addresses.
struct PlanCache {
    std::mutex mu;
    std::unique_ptr<FftPlan> plans[32];
};

PlanCache& plan_cache() {
    static PlanCache cache;
    return cache;
}

int log2_pow2(int n) {
    int l = 0;
    while ((1 << l) < n) ++l;
    return l;
}

}  // namespace

const FftPlan& fft_plan(int n) {
    assert(is_pow2(n));
    PlanCache& cache = plan_cache();
    const int slot = log2_pow2(n);
    std::lock_guard<std::mutex> lock(cache.mu);
    if (!cache.plans[slot]) cache.plans[slot] = std::make_unique<FftPlan>(n);
    return *cache.plans[slot];
}

void fft(std::vector<Complex>& a, bool inverse) {
    const int n = static_cast<int>(a.size());
    assert(is_pow2(n));
    if (n <= 1) return;
    const FftPlan& plan = fft_plan(n);
    if (inverse)
        plan.inverse(a.data());
    else
        plan.forward(a.data());
}

}  // namespace rdp
