#include "fft/fft.hpp"

#include <cassert>
#include <cmath>

namespace rdp {

int next_pow2(int n) {
    int p = 1;
    while (p < n) p <<= 1;
    return p;
}

void fft(std::vector<Complex>& a, bool inverse) {
    const int n = static_cast<int>(a.size());
    assert(is_pow2(n));
    if (n <= 1) return;

    // Bit-reversal permutation.
    for (int i = 1, j = 0; i < n; ++i) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(a[i], a[j]);
    }

    for (int len = 2; len <= n; len <<= 1) {
        const double ang = 2.0 * M_PI / len * (inverse ? 1.0 : -1.0);
        const Complex wlen(std::cos(ang), std::sin(ang));
        for (int i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (int j = 0; j < len / 2; ++j) {
                const Complex u = a[i + j];
                const Complex v = a[i + j + len / 2] * w;
                a[i + j] = u + v;
                a[i + j + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const double inv = 1.0 / n;
        for (auto& x : a) x *= inv;
    }
}

std::vector<Complex> fft_real(const std::vector<double>& x) {
    std::vector<Complex> a(x.begin(), x.end());
    fft(a, /*inverse=*/false);
    return a;
}

}  // namespace rdp
