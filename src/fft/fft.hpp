#pragma once
// Planned iterative radix-2 complex FFT. Power-of-two sizes only; the
// placement bin grids are chosen to be powers of two so this restriction
// never bites.
//
// An FftPlan holds the precomputed bit-reversal permutation and the full
// twiddle table for one transform size, so repeated transforms (the
// spectral Poisson solver runs a 2D batch every Nesterov iteration) pay
// no per-butterfly cos/sin work and suffer none of the numerical drift a
// `w *= wlen` recurrence accumulates. Plans are immutable after
// construction and therefore freely shared across threads; `fft_plan(n)`
// returns a process-wide cached plan per size.
//
// This is the transform engine underneath the DCT/DST routines used by the
// spectral Poisson solver (ePlace density field and the paper's congestion
// field, both solved via Eq. (1)).

#include <complex>
#include <vector>

namespace rdp {

using Complex = std::complex<double>;

/// True if n is a power of two (n >= 1).
constexpr bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n.
int next_pow2(int n);

/// Precomputed transform plan for one power-of-two size. Immutable after
/// construction; `forward`/`inverse` touch only the caller's buffer, so one
/// plan may serve any number of threads concurrently.
class FftPlan {
public:
    /// n must be a power of two (>= 1).
    explicit FftPlan(int n);

    int size() const { return n_; }

    /// In-place forward DFT: X[k] = sum_n x[n] e^{-2 pi i k n / N}.
    void forward(Complex* a) const;

    /// In-place inverse DFT including the 1/N normalization, so
    /// inverse(forward(x)) == x.
    void inverse(Complex* a) const;

    /// Transform body templated on the SIMD vector type (defined in
    /// fft/fft_kernel.hpp). forward/inverse instantiate the active
    /// simd::VecD; tests and benches also instantiate simd::ScalarVecD to
    /// check bitwise equivalence. The butterflies are purely elementwise,
    /// so every backend produces identical bits.
    template <typename V, bool Inverse>
    void transform_with(Complex* a) const;

private:
    int n_;
    std::vector<int> rev_;     ///< bit-reversal permutation
    std::vector<Complex> tw_;  ///< tw_[k] = e^{-2 pi i k / n}, k < n/2
    // Per-stage contiguous lane-duplicated twiddles for stages len >= 8
    // (stage offset len - 8, total 2n - 8 entries; real components stored
    // twice, imaginary components twice with alternating signs): the
    // strided tw_ walk becomes a unit-stride load feeding the
    // interleaved-complex butterfly pass (fft_kernel.hpp).
    std::vector<double> stw_re_;
    std::vector<double> stw_im_;
};

/// Process-wide plan cache: one immutable plan per size, built on first
/// request (thread-safe). The returned reference is valid for the process
/// lifetime.
const FftPlan& fft_plan(int n);

/// In-place FFT of a power-of-two-sized buffer via the cached plan.
/// Forward: X[k] = sum_n x[n] e^{-2πikn/N}.
/// Inverse: includes the 1/N normalization, so ifft(fft(x)) == x.
void fft(std::vector<Complex>& a, bool inverse);

}  // namespace rdp
