#pragma once
// Iterative radix-2 complex FFT. Power-of-two sizes only; the placement bin
// grids are chosen to be powers of two so this restriction never bites.
//
// This is the transform engine underneath the DCT/DST routines used by the
// spectral Poisson solver (ePlace density field and the paper's congestion
// field, both solved via Eq. (1)).

#include <complex>
#include <vector>

namespace rdp {

using Complex = std::complex<double>;

/// True if n is a power of two (n >= 1).
constexpr bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n.
int next_pow2(int n);

/// In-place FFT of a power-of-two-sized buffer.
/// Forward: X[k] = sum_n x[n] e^{-2πikn/N}.
/// Inverse: includes the 1/N normalization, so ifft(fft(x)) == x.
void fft(std::vector<Complex>& a, bool inverse);

/// Convenience out-of-place forward transform of a real signal.
std::vector<Complex> fft_real(const std::vector<double>& x);

}  // namespace rdp
