#pragma once
// Definitions of the DctWorkspace transform bodies, templated on the SIMD
// vector type (DESIGN.md §14). The Makhoul even/odd reorder, the spectrum
// pack/unpack twiddle passes, and the dct3/idxst pre/post passes all
// vectorize as elementwise loops; the descending-index accesses
// (buf_[m-k], x[n-k], cos_[n-k]) become reversed vector loads/stores.
//
// Every arithmetic op keeps the scalar op order (mul_add/nmul_add expand to
// separate multiply+add in the default build), so the transforms produce
// bit-identical output on every backend — and identical to the
// pre-vectorization scalar code. Vector groups and tails partition the
// index range as a pure function of the transform size.

#include <cmath>
#include <cstring>

#include "fft/dct.hpp"
#include "fft/fft_kernel.hpp"
#include "util/simd.hpp"

namespace rdp {

template <typename V>
void DctWorkspace::dct2_with(double* x) {
    const DctPlan& p = *plan_;
    const int n = p.n_, m = p.m_;
    if (n == 1) return;
    constexpr int L = simd::kLanes;
    double* tmp = tmp_.data();

    // Even/odd reorder: tmp[i] = x[2i], tmp[n-1-i] = x[2i+1].
    int i = 0;
    for (; i + L <= m; i += L) {
        V even, odd;
        deinterleave2(x + 2 * i, even, odd);
        even.storeu(tmp + i);
        reverse_lanes(odd).storeu(tmp + (n - i - L));
    }
    for (; i < m; ++i) {
        tmp[i] = x[2 * i];
        tmp[n - 1 - i] = x[2 * i + 1];
    }
    // Packing adjacent reals into complex values is exactly a copy.
    std::memcpy(reinterpret_cast<double*>(buf_.data()), tmp,
                static_cast<size_t>(n) * sizeof(double));
    p.fft_->transform_with<V, false>(buf_.data());

    // k = 0 and k = m: V[0] and V[m] are real.
    x[0] = buf_[0].real() + buf_[0].imag();
    x[m] = (buf_[0].real() - buf_[0].imag()) * p.cos_[static_cast<size_t>(m)];
    const double* bd = reinterpret_cast<const double*>(buf_.data());
    const double* wd = reinterpret_cast<const double*>(p.wr_.data());
    const double* cs = p.cos_.data();
    const double* sn = p.sin_.data();
    const V half = V::set1(0.5), nhalf = V::set1(-0.5);
    int k = 1;
    for (; k + L <= m; k += L) {
        V zr, zi;
        deinterleave2(bd + 2 * k, zr, zi);
        V yr, yi;  // buf_[m-k] down to buf_[m-k-3], loaded ascending
        deinterleave2(bd + 2 * (m - k - (L - 1)), yr, yi);
        yr = reverse_lanes(yr);
        yi = reverse_lanes(yi);
        const V er = half * (zr + yr);
        const V ei = half * (zi - yi);
        const V odr = half * (zi + yi);
        const V odi = nhalf * (zr - yr);
        V wr, wi;
        deinterleave2(wd + 2 * k, wr, wi);
        const V vr = nmul_add(wi, odi, mul_add(wr, odr, er));
        const V vi = mul_add(wi, odr, mul_add(wr, odi, ei));
        mul_add(vi, V::loadu(sn + k), vr * V::loadu(cs + k)).storeu(x + k);
        const V cnk = reverse_lanes(V::loadu(cs + (n - k - (L - 1))));
        const V snk = reverse_lanes(V::loadu(sn + (n - k - (L - 1))));
        reverse_lanes(nmul_add(vi, snk, vr * cnk))
            .storeu(x + (n - k - (L - 1)));
    }
    for (; k < m; ++k) {
        const Complex z = buf_[static_cast<size_t>(k)];
        const Complex y = buf_[static_cast<size_t>(m - k)];
        const double er = 0.5 * (z.real() + y.real());
        const double ei = 0.5 * (z.imag() - y.imag());
        const double odr = 0.5 * (z.imag() + y.imag());
        const double odi = -0.5 * (z.real() - y.real());
        const Complex w = p.wr_[static_cast<size_t>(k)];
        const double vr = er + w.real() * odr - w.imag() * odi;
        const double vi = ei + w.real() * odi + w.imag() * odr;
        x[k] = vr * cs[k] + vi * sn[k];
        x[n - k] = vr * cs[n - k] - vi * sn[n - k];
    }
}

template <typename V>
void DctWorkspace::idct2_with(double* x) {
    const DctPlan& p = *plan_;
    const int n = p.n_, m = p.m_;
    if (n == 1) return;
    constexpr int L = simd::kLanes;
    double* tmp = tmp_.data();
    const double* cs = p.cos_.data();
    const double* sn = p.sin_.data();

    // Rebuild the half spectrum V[k] = e^{+i pi k/(2N)} (x[k] - i x[n-k]).
    vbuf_[0] = {x[0], 0.0};
    vbuf_[static_cast<size_t>(m)] = {x[m] * M_SQRT2, 0.0};
    double* vd = reinterpret_cast<double*>(vbuf_.data());
    int k = 1;
    for (; k + L <= m; k += L) {
        const V re = V::loadu(x + k);
        const V im = vneg(reverse_lanes(V::loadu(x + (n - k - (L - 1)))));
        const V c = V::loadu(cs + k);
        const V s = V::loadu(sn + k);
        interleave2(vd + 2 * k, nmul_add(im, s, re * c),   // re*c - im*s
                    mul_add(im, c, re * s));               // re*s + im*c
    }
    for (; k < m; ++k) {
        const double re = x[k];
        const double im = -x[n - k];
        vbuf_[static_cast<size_t>(k)] = {re * cs[k] - im * sn[k],
                                         re * sn[k] + im * cs[k]};
    }

    // Repack into the M-point spectrum.
    buf_[0] = {0.5 * (vbuf_[0].real() + vbuf_[static_cast<size_t>(m)].real()),
               0.5 * (vbuf_[0].real() - vbuf_[static_cast<size_t>(m)].real())};
    double* bd = reinterpret_cast<double*>(buf_.data());
    const double* wd = reinterpret_cast<const double*>(p.wr_.data());
    const V half = V::set1(0.5);
    k = 1;
    for (; k + L <= m; k += L) {
        V ar, ai;
        deinterleave2(vd + 2 * k, ar, ai);
        V br, bi;  // vbuf_[m-k] .. vbuf_[m-k-3], loaded ascending
        deinterleave2(vd + 2 * (m - k - (L - 1)), br, bi);
        br = reverse_lanes(br);
        bi = reverse_lanes(bi);
        const V er = half * (ar + br);
        const V ei = half * (ai - bi);
        const V gr = half * (ar - br);
        const V gi = half * (ai + bi);
        V wr, wi;
        deinterleave2(wd + 2 * k, wr, wi);
        // O = conj(W^k) * (V[k] - conj(V[m-k])) / 2; Z[k] = E + i O.
        const V odr = mul_add(wi, gi, wr * gr);   // wr*gr + wi*gi
        const V odi = nmul_add(wi, gr, wr * gi);  // wr*gi - wi*gr
        interleave2(bd + 2 * k, er - odi, ei + odr);
    }
    for (; k < m; ++k) {
        const Complex a = vbuf_[static_cast<size_t>(k)];
        const Complex b = vbuf_[static_cast<size_t>(m - k)];
        const double er = 0.5 * (a.real() + b.real());
        const double ei = 0.5 * (a.imag() - b.imag());
        const double gr = 0.5 * (a.real() - b.real());
        const double gi = 0.5 * (a.imag() + b.imag());
        const Complex w = p.wr_[static_cast<size_t>(k)];
        const double odr = w.real() * gr + w.imag() * gi;
        const double odi = w.real() * gi - w.imag() * gr;
        buf_[static_cast<size_t>(k)] = {er - odi, ei + odr};
    }
    p.fft_->transform_with<V, true>(buf_.data());

    // Unpacking complex back to adjacent reals is again a copy; then undo
    // the even/odd reorder: x[2i] = tmp[i], x[2i+1] = tmp[n-1-i].
    std::memcpy(tmp, reinterpret_cast<const double*>(buf_.data()),
                static_cast<size_t>(n) * sizeof(double));
    int i = 0;
    for (; i + L <= m; i += L) {
        const V even = V::loadu(tmp + i);
        const V odd = reverse_lanes(V::loadu(tmp + (n - i - L)));
        interleave2(x + 2 * i, even, odd);
    }
    for (; i < m; ++i) {
        x[2 * i] = tmp[i];
        x[2 * i + 1] = tmp[n - 1 - i];
    }
}

template <typename V>
void DctWorkspace::dct3_with(double* x) {
    const int n = plan_->n_;
    constexpr int L = simd::kLanes;
    x[0] *= static_cast<double>(n);
    const V vh = V::set1(n / 2.0);
    int k = 1;
    for (; k + L <= n; k += L) (V::loadu(x + k) * vh).storeu(x + k);
    for (; k < n; ++k) x[k] *= n / 2.0;
    idct2_with<V>(x);
}

template <typename V>
void DctWorkspace::idxst_with(double* x) {
    const int n = plan_->n_;
    constexpr int L = simd::kLanes;
    if (n == 1) {
        x[0] = 0.0;
        return;
    }
    double* tmp = tmp_.data();
    tmp[0] = 0.0;
    int k = 1;
    for (; k + L <= n; k += L)
        reverse_lanes(V::loadu(x + (n - k - (L - 1)))).storeu(tmp + k);
    for (; k < n; ++k) tmp[k] = x[n - k];
    std::memcpy(x, tmp, static_cast<size_t>(n) * sizeof(double));
    dct3_with<V>(x);
    // Negate odd indices; multiplying by ±1.0 is exact, so this matches
    // the scalar x[i] = -x[i] bit for bit.
    if (n >= L) {
        const double sgn[4] = {1.0, -1.0, 1.0, -1.0};
        const V vs = V::loadu(sgn);
        for (int i = 0; i + L <= n; i += L)
            (V::loadu(x + i) * vs).storeu(x + i);
    } else {
        for (int i = 1; i < n; i += 2) x[i] = -x[i];
    }
}

}  // namespace rdp
