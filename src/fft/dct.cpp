#include "fft/dct.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "fft/fft.hpp"

namespace rdp {

// Forward DCT-II via Makhoul's even/odd reordering and an N-point FFT:
//   v[n]     = x[2n]          n = 0..ceil(N/2)-1
//   v[N-1-n] = x[2n+1]        n = 0..floor(N/2)-1
//   X[k]     = Re( e^{-i pi k / (2N)} FFT(v)[k] )
std::vector<double> dct2(const std::vector<double>& x) {
    const int n = static_cast<int>(x.size());
    assert(is_pow2(n));
    std::vector<Complex> v(n);
    for (int i = 0; i * 2 < n; ++i) v[i] = x[2 * i];
    for (int i = 0; i * 2 + 1 < n; ++i) v[n - 1 - i] = x[2 * i + 1];
    fft(v, /*inverse=*/false);
    std::vector<double> out(n);
    for (int k = 0; k < n; ++k) {
        const double ang = -M_PI * k / (2.0 * n);
        out[k] = v[k].real() * std::cos(ang) - v[k].imag() * std::sin(ang);
    }
    return out;
}

// Exact inverse of dct2 (reverses Makhoul's steps). Uses the Hermitian
// symmetry of the FFT of the real sequence v:
//   Z[k] = X[k] - i X[N-k]  (Z[0] = X[0]),  V[k] = e^{+i pi k/(2N)} Z[k]
std::vector<double> idct2(const std::vector<double>& X) {
    const int n = static_cast<int>(X.size());
    assert(is_pow2(n));
    std::vector<Complex> v(n);
    for (int k = 0; k < n; ++k) {
        const double re = X[k];
        const double im = (k == 0) ? 0.0 : -X[n - k];
        const double ang = M_PI * k / (2.0 * n);
        const Complex z(re, im);
        v[k] = z * Complex(std::cos(ang), std::sin(ang));
    }
    fft(v, /*inverse=*/true);
    std::vector<double> out(n);
    for (int i = 0; i * 2 < n; ++i) out[2 * i] = v[i].real();
    for (int i = 0; i * 2 + 1 < n; ++i) out[2 * i + 1] = v[n - 1 - i].real();
    return out;
}

// dct3 is the transpose of dct2. With D = diag(N, N/2, ..., N/2) the DCT-II
// matrix M satisfies M M^T = D, hence M^T a = M^{-1} (D a) = idct2(D a).
std::vector<double> dct3(const std::vector<double>& a) {
    const int n = static_cast<int>(a.size());
    assert(is_pow2(n));
    std::vector<double> scaled(n);
    scaled[0] = a[0] * n;
    for (int k = 1; k < n; ++k) scaled[k] = a[k] * (n / 2.0);
    return idct2(scaled);
}

// Sine-series evaluation from the cosine-series evaluator via the identity
//   sin(pi k (2n+1)/(2N)) = (-1)^n cos(pi (N-k) (2n+1)/(2N)),
// so idxst(b) = (-1)^n dct3(c) with c[0] = 0 and c[k] = b[N-k] for k >= 1.
// (The k = 0 sine term vanishes; the k = N cosine term also vanishes.)
std::vector<double> idxst(const std::vector<double>& b) {
    const int n = static_cast<int>(b.size());
    assert(is_pow2(n));
    std::vector<double> c(n, 0.0);
    for (int k = 1; k < n; ++k) c[k] = b[n - k];
    std::vector<double> y = dct3(c);
    for (int i = 1; i < n; i += 2) y[i] = -y[i];
    return y;
}

DctWorkspace::DctWorkspace(int n)
    : n_(n),
      buf_(static_cast<size_t>(n)),
      twiddle_cos_(static_cast<size_t>(n)),
      twiddle_sin_(static_cast<size_t>(n)),
      tmp_(static_cast<size_t>(n)) {
    assert(is_pow2(n));
    for (int k = 0; k < n; ++k) {
        const double ang = M_PI * k / (2.0 * n);
        twiddle_cos_[static_cast<size_t>(k)] = std::cos(ang);
        twiddle_sin_[static_cast<size_t>(k)] = std::sin(ang);
    }
}

void DctWorkspace::dct2(double* x) {
    const int n = n_;
    for (int i = 0; i * 2 < n; ++i) buf_[static_cast<size_t>(i)] = x[2 * i];
    for (int i = 0; i * 2 + 1 < n; ++i)
        buf_[static_cast<size_t>(n - 1 - i)] = x[2 * i + 1];
    fft(buf_, /*inverse=*/false);
    for (int k = 0; k < n; ++k) {
        x[k] = buf_[static_cast<size_t>(k)].real() *
                   twiddle_cos_[static_cast<size_t>(k)] +
               buf_[static_cast<size_t>(k)].imag() *
                   twiddle_sin_[static_cast<size_t>(k)];
    }
}

void DctWorkspace::idct2(double* x) {
    const int n = n_;
    for (int k = 0; k < n; ++k) {
        const double re = x[k];
        const double im = (k == 0) ? 0.0 : -x[n - k];
        const double c = twiddle_cos_[static_cast<size_t>(k)];
        const double s = twiddle_sin_[static_cast<size_t>(k)];
        buf_[static_cast<size_t>(k)] = {re * c - im * s, re * s + im * c};
    }
    fft(buf_, /*inverse=*/true);
    for (int i = 0; i * 2 < n; ++i)
        x[2 * i] = buf_[static_cast<size_t>(i)].real();
    for (int i = 0; i * 2 + 1 < n; ++i)
        x[2 * i + 1] = buf_[static_cast<size_t>(n - 1 - i)].real();
}

void DctWorkspace::dct3(double* x) {
    const int n = n_;
    x[0] *= static_cast<double>(n);
    for (int k = 1; k < n; ++k) x[k] *= n / 2.0;
    idct2(x);
}

void DctWorkspace::idxst(double* x) {
    const int n = n_;
    tmp_[0] = 0.0;
    for (int k = 1; k < n; ++k) tmp_[static_cast<size_t>(k)] = x[n - k];
    std::copy(tmp_.begin(), tmp_.end(), x);
    dct3(x);
    for (int i = 1; i < n; i += 2) x[i] = -x[i];
}

namespace naive {

std::vector<double> dct2(const std::vector<double>& x) {
    const int n = static_cast<int>(x.size());
    std::vector<double> out(n, 0.0);
    for (int k = 0; k < n; ++k)
        for (int i = 0; i < n; ++i)
            out[k] += x[i] * std::cos(M_PI * k * (2 * i + 1) / (2.0 * n));
    return out;
}

std::vector<double> dct3(const std::vector<double>& a) {
    const int n = static_cast<int>(a.size());
    std::vector<double> out(n, 0.0);
    for (int i = 0; i < n; ++i)
        for (int k = 0; k < n; ++k)
            out[i] += a[k] * std::cos(M_PI * k * (2 * i + 1) / (2.0 * n));
    return out;
}

std::vector<double> idxst(const std::vector<double>& b) {
    const int n = static_cast<int>(b.size());
    std::vector<double> out(n, 0.0);
    for (int i = 0; i < n; ++i)
        for (int k = 0; k < n; ++k)
            out[i] += b[k] * std::sin(M_PI * k * (2 * i + 1) / (2.0 * n));
    return out;
}

}  // namespace naive

}  // namespace rdp
