#include "fft/dct.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <mutex>

#include "fft/dct_kernel.hpp"
#include "fft/fft.hpp"
#include "util/simd.hpp"
#include "util/thread_annotations.hpp"

namespace rdp {

DctPlan::DctPlan(int n) : n_(n), m_(n / 2) {
    assert(is_pow2(n));
    cos_.resize(static_cast<size_t>(n));
    sin_.resize(static_cast<size_t>(n));
    for (int k = 0; k < n; ++k) {
        const double ang = M_PI * k / (2.0 * n);
        cos_[static_cast<size_t>(k)] = std::cos(ang);
        sin_[static_cast<size_t>(k)] = std::sin(ang);
    }
    if (m_ >= 1) {
        fft_ = &fft_plan(m_);
        wr_.resize(static_cast<size_t>(m_) + 1);
        for (int k = 0; k <= m_; ++k) {
            const double ang = -2.0 * M_PI * k / n;
            wr_[static_cast<size_t>(k)] = {std::cos(ang), std::sin(ang)};
        }
    }
}

namespace {

// The slot array is written only under `mu`; the pointed-to plans are
// immutable after construction, which is what makes handing out references
// past the lock safe (stable addresses, read-only payload).
struct DctPlanCache {
    std::mutex mu;
    std::unique_ptr<DctPlan> plans[32] GUARDED_BY(mu);
};

DctPlanCache& dct_plan_cache() {
    static DctPlanCache cache;
    return cache;
}

}  // namespace

const DctPlan& dct_plan(int n) {
    assert(is_pow2(n));
    DctPlanCache& cache = dct_plan_cache();
    int slot = 0;
    while ((1 << slot) < n) ++slot;
    std::lock_guard<std::mutex> lock(cache.mu);
    if (!cache.plans[slot]) cache.plans[slot] = std::make_unique<DctPlan>(n);
    return *cache.plans[slot];
}

DctWorkspace::DctWorkspace(int n)
    : plan_(&dct_plan(n)),
      buf_(static_cast<size_t>(plan_->m_)),
      vbuf_(static_cast<size_t>(plan_->m_) + 1),
      tmp_(static_cast<size_t>(n)) {}

// Forward DCT-II via Makhoul's even/odd reordering and a half-size complex
// FFT of the reordered *real* sequence v:
//   v[n]     = x[2n]            n = 0..N/2-1
//   v[N-1-n] = x[2n+1]          n = 0..N/2-1
//   X[k]     = Re( e^{-i pi k / (2N)} V[k] ),  V = DFT_N(v)
// V is computed from the M = N/2 point FFT of z[k] = v[2k] + i v[2k+1]:
//   V[k] = E[k] + W^k O[k],  E = (Z[k]+conj(Z[M-k]))/2,
//   O = -i (Z[k]-conj(Z[M-k]))/2,  W = e^{-2 pi i / N},
// with the Hermitian tail V[N-k] = conj(V[k]) folded into the output pass.
// The loop bodies live in fft/dct_kernel.hpp, templated on the SIMD vector
// type; these entry points instantiate the active backend.
void DctWorkspace::dct2(double* x) { dct2_with<simd::VecD>(x); }

// Exact inverse of dct2: rebuild the half spectrum V[0..m] from X using the
// Hermitian symmetry (Z[k] = X[k] - i X[N-k], V[k] = e^{+i pi k/(2N)} Z[k]),
// repack into the M-point spectrum, inverse-FFT, and undo the reordering.
void DctWorkspace::idct2(double* x) { idct2_with<simd::VecD>(x); }

// dct3 is the transpose of dct2. With D = diag(N, N/2, ..., N/2) the DCT-II
// matrix M satisfies M M^T = D, hence M^T a = M^{-1} (D a) = idct2(D a).
void DctWorkspace::dct3(double* x) { dct3_with<simd::VecD>(x); }

// Sine-series evaluation from the cosine-series evaluator via the identity
//   sin(pi k (2n+1)/(2N)) = (-1)^n cos(pi (N-k) (2n+1)/(2N)),
// so idxst(b) = (-1)^n dct3(c) with c[0] = 0 and c[k] = b[N-k] for k >= 1.
// (The k = 0 sine term vanishes; the k = N cosine term also vanishes.)
void DctWorkspace::idxst(double* x) { idxst_with<simd::VecD>(x); }

std::vector<double> dct2(const std::vector<double>& x) {
    std::vector<double> out = x;
    DctWorkspace ws(static_cast<int>(x.size()));
    ws.dct2(out.data());
    return out;
}

std::vector<double> idct2(const std::vector<double>& X) {
    std::vector<double> out = X;
    DctWorkspace ws(static_cast<int>(X.size()));
    ws.idct2(out.data());
    return out;
}

std::vector<double> dct3(const std::vector<double>& a) {
    std::vector<double> out = a;
    DctWorkspace ws(static_cast<int>(a.size()));
    ws.dct3(out.data());
    return out;
}

std::vector<double> idxst(const std::vector<double>& b) {
    std::vector<double> out = b;
    DctWorkspace ws(static_cast<int>(b.size()));
    ws.idxst(out.data());
    return out;
}

namespace naive {

std::vector<double> dct2(const std::vector<double>& x) {
    const int n = static_cast<int>(x.size());
    std::vector<double> out(static_cast<size_t>(n), 0.0);
    for (int k = 0; k < n; ++k)
        for (int i = 0; i < n; ++i)
            out[static_cast<size_t>(k)] +=
                x[static_cast<size_t>(i)] *
                std::cos(M_PI * k * (2 * i + 1) / (2.0 * n));
    return out;
}

std::vector<double> dct3(const std::vector<double>& a) {
    const int n = static_cast<int>(a.size());
    std::vector<double> out(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < n; ++i)
        for (int k = 0; k < n; ++k)
            out[static_cast<size_t>(i)] +=
                a[static_cast<size_t>(k)] *
                std::cos(M_PI * k * (2 * i + 1) / (2.0 * n));
    return out;
}

std::vector<double> idxst(const std::vector<double>& b) {
    const int n = static_cast<int>(b.size());
    std::vector<double> out(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < n; ++i)
        for (int k = 0; k < n; ++k)
            out[static_cast<size_t>(i)] +=
                b[static_cast<size_t>(k)] *
                std::sin(M_PI * k * (2 * i + 1) / (2.0 * n));
    return out;
}

}  // namespace naive

}  // namespace rdp
