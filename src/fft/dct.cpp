#include "fft/dct.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <mutex>

#include "fft/fft.hpp"

namespace rdp {

DctPlan::DctPlan(int n) : n_(n), m_(n / 2) {
    assert(is_pow2(n));
    cos_.resize(static_cast<size_t>(n));
    sin_.resize(static_cast<size_t>(n));
    for (int k = 0; k < n; ++k) {
        const double ang = M_PI * k / (2.0 * n);
        cos_[static_cast<size_t>(k)] = std::cos(ang);
        sin_[static_cast<size_t>(k)] = std::sin(ang);
    }
    if (m_ >= 1) {
        fft_ = &fft_plan(m_);
        wr_.resize(static_cast<size_t>(m_) + 1);
        for (int k = 0; k <= m_; ++k) {
            const double ang = -2.0 * M_PI * k / n;
            wr_[static_cast<size_t>(k)] = {std::cos(ang), std::sin(ang)};
        }
    }
}

namespace {

struct DctPlanCache {
    std::mutex mu;
    std::unique_ptr<DctPlan> plans[32];
};

DctPlanCache& dct_plan_cache() {
    static DctPlanCache cache;
    return cache;
}

}  // namespace

const DctPlan& dct_plan(int n) {
    assert(is_pow2(n));
    DctPlanCache& cache = dct_plan_cache();
    int slot = 0;
    while ((1 << slot) < n) ++slot;
    std::lock_guard<std::mutex> lock(cache.mu);
    if (!cache.plans[slot]) cache.plans[slot] = std::make_unique<DctPlan>(n);
    return *cache.plans[slot];
}

DctWorkspace::DctWorkspace(int n)
    : plan_(&dct_plan(n)),
      buf_(static_cast<size_t>(plan_->m_)),
      vbuf_(static_cast<size_t>(plan_->m_) + 1),
      tmp_(static_cast<size_t>(n)) {}

// Forward DCT-II via Makhoul's even/odd reordering and a half-size complex
// FFT of the reordered *real* sequence v:
//   v[n]     = x[2n]            n = 0..N/2-1
//   v[N-1-n] = x[2n+1]          n = 0..N/2-1
//   X[k]     = Re( e^{-i pi k / (2N)} V[k] ),  V = DFT_N(v)
// V is computed from the M = N/2 point FFT of z[k] = v[2k] + i v[2k+1]:
//   V[k] = E[k] + W^k O[k],  E = (Z[k]+conj(Z[M-k]))/2,
//   O = -i (Z[k]-conj(Z[M-k]))/2,  W = e^{-2 pi i / N},
// with the Hermitian tail V[N-k] = conj(V[k]) folded into the output pass.
void DctWorkspace::dct2(double* x) {
    const DctPlan& p = *plan_;
    const int n = p.n_, m = p.m_;
    if (n == 1) return;

    for (int i = 0; i < m; ++i) tmp_[static_cast<size_t>(i)] = x[2 * i];
    for (int i = 0; i < m; ++i)
        tmp_[static_cast<size_t>(n - 1 - i)] = x[2 * i + 1];
    for (int k = 0; k < m; ++k)
        buf_[static_cast<size_t>(k)] = {tmp_[static_cast<size_t>(2 * k)],
                                        tmp_[static_cast<size_t>(2 * k + 1)]};
    p.fft_->forward(buf_.data());

    // k = 0 and k = m: V[0] and V[m] are real.
    x[0] = buf_[0].real() + buf_[0].imag();
    x[m] = (buf_[0].real() - buf_[0].imag()) * p.cos_[static_cast<size_t>(m)];
    for (int k = 1; k < m; ++k) {
        const Complex z = buf_[static_cast<size_t>(k)];
        const Complex y = buf_[static_cast<size_t>(m - k)];
        const double er = 0.5 * (z.real() + y.real());
        const double ei = 0.5 * (z.imag() - y.imag());
        const double odr = 0.5 * (z.imag() + y.imag());
        const double odi = -0.5 * (z.real() - y.real());
        const Complex w = p.wr_[static_cast<size_t>(k)];
        const double vr = er + w.real() * odr - w.imag() * odi;
        const double vi = ei + w.real() * odi + w.imag() * odr;
        x[k] = vr * p.cos_[static_cast<size_t>(k)] +
               vi * p.sin_[static_cast<size_t>(k)];
        x[n - k] = vr * p.cos_[static_cast<size_t>(n - k)] -
                   vi * p.sin_[static_cast<size_t>(n - k)];
    }
}

// Exact inverse of dct2: rebuild the half spectrum V[0..m] from X using the
// Hermitian symmetry (Z[k] = X[k] - i X[N-k], V[k] = e^{+i pi k/(2N)} Z[k]),
// repack into the M-point spectrum, inverse-FFT, and undo the reordering.
void DctWorkspace::idct2(double* x) {
    const DctPlan& p = *plan_;
    const int n = p.n_, m = p.m_;
    if (n == 1) return;

    vbuf_[0] = {x[0], 0.0};
    vbuf_[static_cast<size_t>(m)] = {x[m] * M_SQRT2, 0.0};
    for (int k = 1; k < m; ++k) {
        const double re = x[k];
        const double im = -x[n - k];
        const double c = p.cos_[static_cast<size_t>(k)];
        const double s = p.sin_[static_cast<size_t>(k)];
        vbuf_[static_cast<size_t>(k)] = {re * c - im * s, re * s + im * c};
    }

    buf_[0] = {0.5 * (vbuf_[0].real() + vbuf_[static_cast<size_t>(m)].real()),
               0.5 * (vbuf_[0].real() - vbuf_[static_cast<size_t>(m)].real())};
    for (int k = 1; k < m; ++k) {
        const Complex a = vbuf_[static_cast<size_t>(k)];
        const Complex b = vbuf_[static_cast<size_t>(m - k)];
        const double er = 0.5 * (a.real() + b.real());
        const double ei = 0.5 * (a.imag() - b.imag());
        const double gr = 0.5 * (a.real() - b.real());
        const double gi = 0.5 * (a.imag() + b.imag());
        const Complex w = p.wr_[static_cast<size_t>(k)];
        // O = conj(W^k) * (V[k] - conj(V[m-k])) / 2; Z[k] = E + i O.
        const double odr = w.real() * gr + w.imag() * gi;
        const double odi = w.real() * gi - w.imag() * gr;
        buf_[static_cast<size_t>(k)] = {er - odi, ei + odr};
    }
    p.fft_->inverse(buf_.data());

    for (int k = 0; k < m; ++k) {
        tmp_[static_cast<size_t>(2 * k)] = buf_[static_cast<size_t>(k)].real();
        tmp_[static_cast<size_t>(2 * k + 1)] =
            buf_[static_cast<size_t>(k)].imag();
    }
    for (int i = 0; i < m; ++i) {
        x[2 * i] = tmp_[static_cast<size_t>(i)];
        x[2 * i + 1] = tmp_[static_cast<size_t>(n - 1 - i)];
    }
}

// dct3 is the transpose of dct2. With D = diag(N, N/2, ..., N/2) the DCT-II
// matrix M satisfies M M^T = D, hence M^T a = M^{-1} (D a) = idct2(D a).
void DctWorkspace::dct3(double* x) {
    const int n = plan_->n_;
    x[0] *= static_cast<double>(n);
    for (int k = 1; k < n; ++k) x[k] *= n / 2.0;
    idct2(x);
}

// Sine-series evaluation from the cosine-series evaluator via the identity
//   sin(pi k (2n+1)/(2N)) = (-1)^n cos(pi (N-k) (2n+1)/(2N)),
// so idxst(b) = (-1)^n dct3(c) with c[0] = 0 and c[k] = b[N-k] for k >= 1.
// (The k = 0 sine term vanishes; the k = N cosine term also vanishes.)
void DctWorkspace::idxst(double* x) {
    const int n = plan_->n_;
    if (n == 1) {
        x[0] = 0.0;
        return;
    }
    tmp_[0] = 0.0;
    for (int k = 1; k < n; ++k) tmp_[static_cast<size_t>(k)] = x[n - k];
    std::copy(tmp_.begin(), tmp_.end(), x);
    dct3(x);
    for (int i = 1; i < n; i += 2) x[i] = -x[i];
}

std::vector<double> dct2(const std::vector<double>& x) {
    std::vector<double> out = x;
    DctWorkspace ws(static_cast<int>(x.size()));
    ws.dct2(out.data());
    return out;
}

std::vector<double> idct2(const std::vector<double>& X) {
    std::vector<double> out = X;
    DctWorkspace ws(static_cast<int>(X.size()));
    ws.idct2(out.data());
    return out;
}

std::vector<double> dct3(const std::vector<double>& a) {
    std::vector<double> out = a;
    DctWorkspace ws(static_cast<int>(a.size()));
    ws.dct3(out.data());
    return out;
}

std::vector<double> idxst(const std::vector<double>& b) {
    std::vector<double> out = b;
    DctWorkspace ws(static_cast<int>(b.size()));
    ws.idxst(out.data());
    return out;
}

namespace naive {

std::vector<double> dct2(const std::vector<double>& x) {
    const int n = static_cast<int>(x.size());
    std::vector<double> out(static_cast<size_t>(n), 0.0);
    for (int k = 0; k < n; ++k)
        for (int i = 0; i < n; ++i)
            out[static_cast<size_t>(k)] +=
                x[static_cast<size_t>(i)] *
                std::cos(M_PI * k * (2 * i + 1) / (2.0 * n));
    return out;
}

std::vector<double> dct3(const std::vector<double>& a) {
    const int n = static_cast<int>(a.size());
    std::vector<double> out(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < n; ++i)
        for (int k = 0; k < n; ++k)
            out[static_cast<size_t>(i)] +=
                a[static_cast<size_t>(k)] *
                std::cos(M_PI * k * (2 * i + 1) / (2.0 * n));
    return out;
}

std::vector<double> idxst(const std::vector<double>& b) {
    const int n = static_cast<int>(b.size());
    std::vector<double> out(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < n; ++i)
        for (int k = 0; k < n; ++k)
            out[static_cast<size_t>(i)] +=
                b[static_cast<size_t>(k)] *
                std::sin(M_PI * k * (2 * i + 1) / (2.0 * n));
    return out;
}

}  // namespace naive

}  // namespace rdp
