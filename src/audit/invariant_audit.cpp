#include "audit/invariant_audit.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>

namespace rdp::audit {

namespace {

constexpr size_t kNumAuditors = 8;

constexpr std::array<AuditorInfo, kNumAuditors> kAuditors = {{
    {"finite-gradients",
     "WA/density/net-moving gradients are finite and NaN-free"},
    {"density-mass",
     "density-grid mass equals total clipped movable+fixed charge"},
    {"router-accounting",
     "edge demand equals committed route segments; history costs >= 0"},
    {"incremental-route",
     "delta-maintained phase-A demand equals a from-scratch recompute"},
    {"congestion-finite",
     "congestion-map demand and capacity are finite and non-negative"},
    {"spectral-finite",
     "spectral Poisson potential and field grids are finite and NaN-free"},
    {"inflation-budget",
     "inflated-area bookkeeping balances against the filler budget"},
    {"legalized", "legalized cells are row/site-aligned and overlap-free"},
}};

std::array<long long, kNumAuditors> g_runs{};

size_t auditor_index(std::string_view name) {
    for (size_t i = 0; i < kAuditors.size(); ++i)
        if (name == kAuditors[i].name) return i;
    return kAuditors.size();
}

void note_run(std::string_view name) {
    const size_t i = auditor_index(name);
    if (i < g_runs.size()) ++g_runs[i];
}

[[noreturn]] void fail(const char* auditor, const std::string& msg) {
    detail::audit_fail(auditor, msg);
}

/// Shared by router-accounting and incremental-route: recompute wire demand
/// and bend vias from the committed paths with the same unit increments
/// RouteState::commit applies; integer-valued sums in double are exact, so
/// the comparison is exact equality.
void check_demand_matches_paths(const char* auditor, const GridF& dem_h,
                                const GridF& dem_v, const GridF& bend_vias,
                                const std::vector<RoutePath>& paths) {
    GridF ref_h(dem_h.width(), dem_h.height());
    GridF ref_v(dem_v.width(), dem_v.height());
    GridF ref_b(bend_vias.width(), bend_vias.height());
    for (const RoutePath& p : paths) {
        for (const RouteSeg& s : p.segs) {
            if (s.horizontal()) {
                const int lo = std::min(s.x0, s.x1), hi = std::max(s.x0, s.x1);
                for (int x = lo; x <= hi; ++x) ref_h.at(x, s.y0) += 1.0;
            } else {
                const int lo = std::min(s.y0, s.y1), hi = std::max(s.y0, s.y1);
                for (int y = lo; y <= hi; ++y) ref_v.at(s.x0, y) += 1.0;
            }
        }
        for (size_t i = 0; i + 1 < p.segs.size(); ++i)
            ref_b.at(p.segs[i].x1, p.segs[i].y1) += 1.0;
    }

    auto compare = [auditor](const GridF& got, const GridF& want,
                             const char* map) {
        for (int y = 0; y < got.height(); ++y) {
            for (int x = 0; x < got.width(); ++x) {
                if (got.at(x, y) == want.at(x, y)) continue;
                std::ostringstream oss;
                oss << map << " demand at G-cell (" << x << ", " << y << ") is "
                    << got.at(x, y) << " but the committed route segments sum"
                    << " to " << want.at(x, y);
                fail(auditor, oss.str());
            }
        }
    };
    compare(dem_h, ref_h, "horizontal");
    compare(dem_v, ref_v, "vertical");
    compare(bend_vias, ref_b, "bend-via");
}

}  // namespace

const std::vector<AuditorInfo>& registered_auditors() {
    static const std::vector<AuditorInfo> v(kAuditors.begin(), kAuditors.end());
    return v;
}

long long runs(std::string_view name) {
    const size_t i = auditor_index(name);
    return i < g_runs.size() ? g_runs[i] : -1;
}

void reset_runs() { g_runs.fill(0); }

void check_gradients_finite(const char* what, const std::vector<Vec2>& grad) {
    if (!audit_enabled()) return;
    note_run("finite-gradients");
    for (size_t i = 0; i < grad.size(); ++i) {
        if (std::isfinite(grad[i].x) && std::isfinite(grad[i].y)) continue;
        std::ostringstream oss;
        oss << what << " of cell " << i << " is not finite: ("
            << grad[i].x << ", " << grad[i].y << ")";
        fail("finite-gradients", oss.str());
    }
}

void check_density_mass(const GridF& density, double expected_area,
                        double rel_tol) {
    if (!audit_enabled()) return;
    note_run("density-mass");
    const double mass = grid_sum(density);
    const double tol = rel_tol * std::max(std::abs(expected_area), 1.0);
    if (!std::isfinite(mass) || std::abs(mass - expected_area) > tol) {
        std::ostringstream oss;
        oss << "density grid mass " << mass << " != expected charge "
            << expected_area << " (|diff| = " << std::abs(mass - expected_area)
            << " > tol " << tol << ")";
        fail("density-mass", oss.str());
    }
}

void check_router_accounting(const GridF& dem_h, const GridF& dem_v,
                             const GridF& bend_vias,
                             const std::vector<RoutePath>& paths,
                             const GridF& hist_h, const GridF& hist_v) {
    if (!audit_enabled()) return;
    note_run("router-accounting");

    check_demand_matches_paths("router-accounting", dem_h, dem_v, bend_vias,
                               paths);

    auto nonneg = [](const GridF& hist, const char* map) {
        for (int y = 0; y < hist.height(); ++y) {
            for (int x = 0; x < hist.width(); ++x) {
                if (hist.at(x, y) >= 0.0) continue;
                std::ostringstream oss;
                oss << map << " history cost at G-cell (" << x << ", " << y
                    << ") is negative: " << hist.at(x, y);
                fail("router-accounting", oss.str());
            }
        }
    };
    nonneg(hist_h, "horizontal");
    nonneg(hist_v, "vertical");
}

void check_incremental_route(const GridF& dem_h, const GridF& dem_v,
                             const GridF& bend_vias,
                             const std::vector<RoutePath>& paths) {
    if (!audit_enabled()) return;
    note_run("incremental-route");
    check_demand_matches_paths("incremental-route", dem_h, dem_v, bend_vias,
                               paths);
}

void check_congestion_map(const CongestionMap& cmap) {
    if (!audit_enabled()) return;
    note_run("congestion-finite");
    const GridF& dmd = cmap.demand();
    const GridF& cap = cmap.capacity();
    for (int y = 0; y < dmd.height(); ++y) {
        for (int x = 0; x < dmd.width(); ++x) {
            const double dv = dmd.at(x, y);
            const double cv = cap.at(x, y);
            if (std::isfinite(dv) && dv >= 0.0 && std::isfinite(cv) &&
                cv >= 0.0)
                continue;
            std::ostringstream oss;
            oss << "congestion map at G-cell (" << x << ", " << y
                << ") is invalid: demand " << dv << ", capacity " << cv;
            fail("congestion-finite", oss.str());
        }
    }
}

void check_spectral_finite(const char* what, const GridF& potential,
                           const GridF& field_x, const GridF& field_y) {
    if (!audit_enabled()) return;
    note_run("spectral-finite");
    auto scan = [what](const GridF& g, const char* map) {
        const double* p = g.data();
        const size_t n = g.size();
        for (size_t i = 0; i < n; ++i) {
            if (std::isfinite(p[i])) continue;
            const int x = static_cast<int>(i) % g.width();
            const int y = static_cast<int>(i) / g.width();
            std::ostringstream oss;
            oss << what << " solve produced a non-finite " << map
                << " value at bin (" << x << ", " << y << "): " << p[i];
            fail("spectral-finite", oss.str());
        }
    };
    scan(potential, "potential");
    scan(field_x, "field-x");
    scan(field_y, "field-y");
}

void check_inflation_budget(const Design& d, int first_filler,
                            const std::vector<double>& ratios,
                            double usable_filler_frac, double extra_area) {
    if (!audit_enabled()) return;
    note_run("inflation-budget");
    if (ratios.size() != static_cast<size_t>(d.num_cells())) {
        std::ostringstream oss;
        oss << "ratio vector has " << ratios.size() << " entries for "
            << d.num_cells() << " cells";
        fail("inflation-budget", oss.str());
    }

    double growth = 0.0;
    for (int i = 0; i < first_filler; ++i) {
        const Cell& c = d.cells[static_cast<size_t>(i)];
        const double r = ratios[static_cast<size_t>(i)];
        if (!std::isfinite(r) || r <= 0.0) {
            std::ostringstream oss;
            oss << "inflation ratio of cell " << i << " ('" << c.name
                << "') is invalid: " << r;
            fail("inflation-budget", oss.str());
        }
        if (c.movable()) growth += c.area() * (r - 1.0);
    }

    double filler_area = 0.0;
    for (int i = first_filler; i < d.num_cells(); ++i)
        filler_area += d.cells[static_cast<size_t>(i)].area();
    const double budget =
        std::max(usable_filler_frac * filler_area - extra_area, 0.0);
    const double tol = 1e-6 * std::max(usable_filler_frac * filler_area, 1.0);
    if (growth > budget + tol) {
        std::ostringstream oss;
        oss << "real-cell inflated area growth " << growth
            << " exceeds the filler budget " << budget << " (filler area "
            << filler_area << ", PG charge " << extra_area << ")";
        fail("inflation-budget", oss.str());
    }

    // budget_inflation assigns one uniform shrink ratio in (0, 1] to every
    // filler; a diverging entry means the bookkeeping was corrupted.
    for (int i = first_filler; i < d.num_cells(); ++i) {
        const double r = ratios[static_cast<size_t>(i)];
        const double r0 = ratios[static_cast<size_t>(first_filler)];
        if (!std::isfinite(r) || r <= 0.0 || r > 1.0 + 1e-12 || r != r0) {
            std::ostringstream oss;
            oss << "filler " << i << " shrink ratio " << r
                << " is not the uniform in-(0,1] budget ratio (" << r0 << ")";
            fail("inflation-budget", oss.str());
        }
    }
}

void check_legalized(const Design& d, double eps) {
    if (!audit_enabled()) return;
    note_run("legalized");

    for (int i = 0; i < d.num_cells(); ++i) {
        const Cell& c = d.cells[static_cast<size_t>(i)];
        if (!c.movable()) continue;
        const Rect b = c.bbox();
        if (b.lx < d.region.lx - eps || b.hx > d.region.hx + eps ||
            b.ly < d.region.ly - eps || b.hy > d.region.hy + eps) {
            std::ostringstream oss;
            oss << "cell " << i << " ('" << c.name << "') leaves the region: ["
                << b.lx << ", " << b.ly << ", " << b.hx << ", " << b.hy << "]";
            fail("legalized", oss.str());
        }
        const double row_rel = (b.ly - d.region.ly) / d.row_height;
        if (std::abs(row_rel - std::round(row_rel)) > 1e-4) {
            std::ostringstream oss;
            oss << "cell " << i << " ('" << c.name << "') is not row-aligned:"
                << " bottom edge " << b.ly << " (row height " << d.row_height
                << ")";
            fail("legalized", oss.str());
        }
        const double site_rel = (b.lx - d.region.lx) / d.site_width;
        if (std::abs(site_rel - std::round(site_rel)) > 1e-4) {
            std::ostringstream oss;
            oss << "cell " << i << " ('" << c.name << "') is not site-aligned:"
                << " left edge " << b.lx << " (site width " << d.site_width
                << ")";
            fail("legalized", oss.str());
        }
    }

    // Overlaps via a row-bucketed sweep (mirrors legal/tetris.cpp is_legal,
    // but reports the offending pair).
    const size_t nrows = d.rows.size();
    std::vector<std::vector<int>> by_row(nrows);
    for (int i = 0; i < d.num_cells(); ++i) {
        const Cell& c = d.cells[static_cast<size_t>(i)];
        if (!c.movable()) continue;
        const int r = static_cast<int>(
            std::round((c.bbox().ly - d.region.ly) / d.row_height));
        if (r < 0 || r >= static_cast<int>(nrows)) {
            std::ostringstream oss;
            oss << "cell " << i << " ('" << c.name << "') sits outside the "
                << nrows << " rows (row index " << r << ")";
            fail("legalized", oss.str());
        }
        by_row[static_cast<size_t>(r)].push_back(i);
    }
    for (auto& row : by_row) {
        std::sort(row.begin(), row.end(), [&](int a, int b) {
            return d.cells[static_cast<size_t>(a)].bbox().lx <
                   d.cells[static_cast<size_t>(b)].bbox().lx;
        });
        for (size_t i = 0; i + 1 < row.size(); ++i) {
            const Rect a = d.cells[static_cast<size_t>(row[i])].bbox();
            const Rect b = d.cells[static_cast<size_t>(row[i + 1])].bbox();
            if (a.hx > b.lx + eps) {
                std::ostringstream oss;
                oss << "cells " << row[i] << " ('"
                    << d.cells[static_cast<size_t>(row[i])].name << "') and "
                    << row[i + 1] << " ('"
                    << d.cells[static_cast<size_t>(row[i + 1])].name
                    << "') overlap in a row by " << a.hx - b.lx;
                fail("legalized", oss.str());
            }
        }
        for (int ci : row) {
            const Rect b =
                d.cells[static_cast<size_t>(ci)].bbox().expanded(-eps);
            if (b.empty()) continue;
            for (int fi = 0; fi < d.num_cells(); ++fi) {
                const Cell& f = d.cells[static_cast<size_t>(fi)];
                if (f.movable()) continue;
                if (!b.intersects(f.bbox())) continue;
                std::ostringstream oss;
                oss << "cell " << ci << " ('"
                    << d.cells[static_cast<size_t>(ci)].name
                    << "') overlaps fixed cell " << fi << " ('" << f.name
                    << "')";
                fail("legalized", oss.str());
            }
        }
    }
}

}  // namespace rdp::audit
