#pragma once
// Stage-boundary invariant audits: mechanical checks of the conservation
// laws and contracts the paper's physics depends on, run at the boundaries
// of the placement/routing pipeline (see DESIGN.md "Correctness tooling").
//
// Registered auditors and their invariants:
//   finite-gradients   WA / density / net-moving gradient vectors contain
//                      no NaN or infinity (checked every objective
//                      evaluation inside the Nesterov loops).
//   density-mass       the density grid's total charge equals the sum of
//                      every cell's clipped (inflated) footprint area plus
//                      the extra (DPA) charge, within relative tolerance —
//                      the FFTPL-style density equalization conserves mass.
//   router-accounting  per-direction edge demand equals the sum over all
//                      committed route segments, bend vias equal the sum of
//                      path bends, and negotiation history costs are
//                      non-negative (checked after the initial routing pass
//                      and after every rip-up-and-reroute round).
//   congestion-finite  the Eq. (3) congestion map consumed by the
//                      routability loop has finite, non-negative demand and
//                      capacity everywhere (checked on every fresh map,
//                      router-produced or RUDY-estimated).
//   spectral-finite    the potential and field grids produced by a spectral
//                      Poisson solve contain no NaN or infinity (checked on
//                      every density solve; catches FFT/DCT kernel
//                      corruption before it poisons the gradients).
//   incremental-route  the delta-maintained phase-A demand of the
//                      incremental router equals a from-scratch recompute
//                      over the cached per-net routes exactly (checked
//                      after every cache reconciliation; catches stale or
//                      corrupted incremental state).
//   inflation-budget   after budgeting, inflated-area bookkeeping balances:
//                      every ratio is finite and positive, real-cell area
//                      growth stays within the filler-area budget net of
//                      the PG density charge, and filler shrink ratios are
//                      uniform and inside (0, 1].
//   legalized          every movable cell is row- and site-aligned, inside
//                      the region, and overlap-free against movables and
//                      fixed cells/macros.
//
// Auditors observe state and throw AuditFailure (util/check.hpp) naming
// the active stage on violation; they never mutate placement or routing
// results. All of them are no-ops unless audit_enabled().

#include <string_view>
#include <vector>

#include "db/design.hpp"
#include "grid/bin_grid.hpp"
#include "grid/congestion_map.hpp"
#include "router/pattern_route.hpp"
#include "util/check.hpp"
#include "util/grid2d.hpp"

namespace rdp::audit {

struct AuditorInfo {
    const char* name;
    const char* description;
};

/// Names and one-line descriptions of every registered auditor.
const std::vector<AuditorInfo>& registered_auditors();

/// How many times the named auditor has run (and passed) in this process.
/// Unknown names return -1.
long long runs(std::string_view name);
/// Zero all run counters (tests).
void reset_runs();

/// `what` names the gradient term ("wirelength", "density", "net-moving").
void check_gradients_finite(const char* what, const std::vector<Vec2>& grad);

/// `density` is the full charge grid; `expected_area` the independently
/// accumulated total charge (clipped cell footprints + extra density).
void check_density_mass(const GridF& density, double expected_area,
                        double rel_tol = 1e-6);

/// Recomputes per-direction demand and bend vias from `paths` exactly as
/// RouteState::commit accumulates them and requires bitwise-equal grids;
/// also requires hist_h/hist_v >= 0 everywhere.
void check_router_accounting(const GridF& dem_h, const GridF& dem_v,
                             const GridF& bend_vias,
                             const std::vector<RoutePath>& paths,
                             const GridF& hist_h, const GridF& hist_v);

/// Cross-checks the incremental router's delta-maintained demand against a
/// from-scratch recompute over the cached routes (same exact-equality
/// recompute as check_router_accounting, without the history-cost clause —
/// phase-A state carries no history).
void check_incremental_route(const GridF& dem_h, const GridF& dem_v,
                             const GridF& bend_vias,
                             const std::vector<RoutePath>& paths);

/// Finite, non-negative demand and capacity in every G-cell of `cmap`.
void check_congestion_map(const CongestionMap& cmap);

/// Every entry of a spectral solve's potential and field grids is finite.
/// `what` names the solve ("density", "congestion", ...). Grid references
/// keep this decoupled from the solver's result types (the audit library
/// does not link against the poisson layer).
void check_spectral_finite(const char* what, const GridF& potential,
                           const GridF& field_x, const GridF& field_y);

/// Audit the post-budget inflation ratios (see budget_inflation):
/// cells [0, first_filler) are real, the rest fillers. `extra_area` is the
/// PG density charge taken off the top of the budget.
void check_inflation_budget(const Design& d, int first_filler,
                            const std::vector<double>& ratios,
                            double usable_filler_frac, double extra_area);

/// Row/site alignment, region containment, and overlap-freedom of all
/// movable cells.
void check_legalized(const Design& d, double eps = 1e-6);

}  // namespace rdp::audit
