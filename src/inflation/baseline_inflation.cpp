#include "inflation/baseline_inflation.hpp"

#include <algorithm>

namespace rdp {

CurrentOnlyInflation::CurrentOnlyInflation(int num_cells,
                                           BaselineInflationConfig cfg)
    : cfg_(cfg) {
    reset(num_cells);
}

void CurrentOnlyInflation::reset(int num_cells) {
    r_.assign(static_cast<size_t>(num_cells), 1.0);
}

void CurrentOnlyInflation::update(const Design& d, const CongestionMap& cmap) {
    for (int i = 0; i < d.num_cells(); ++i) {
        const Cell& c = d.cells[static_cast<size_t>(i)];
        if (!c.movable()) continue;
        const double cong = cmap.congestion_at_point(c.pos);
        r_[static_cast<size_t>(i)] =
            std::clamp(1.0 + cfg_.beta * cong, 1.0, cfg_.r_max);
    }
}

MonotoneInflation::MonotoneInflation(int num_cells,
                                     BaselineInflationConfig cfg)
    : cfg_(cfg) {
    reset(num_cells);
}

void MonotoneInflation::reset(int num_cells) {
    r_.assign(static_cast<size_t>(num_cells), 1.0);
}

void MonotoneInflation::update(const Design& d, const CongestionMap& cmap) {
    for (int i = 0; i < d.num_cells(); ++i) {
        const Cell& c = d.cells[static_cast<size_t>(i)];
        if (!c.movable()) continue;
        const double cong = cmap.congestion_at_point(c.pos);
        auto& r = r_[static_cast<size_t>(i)];
        r = std::clamp(r + cfg_.beta * cong, 1.0, cfg_.r_max);
    }
}

NoInflation::NoInflation(int num_cells) { reset(num_cells); }

void NoInflation::reset(int num_cells) {
    r_.assign(static_cast<size_t>(num_cells), 1.0);
}

void NoInflation::update(const Design&, const CongestionMap&) {}

}  // namespace rdp
