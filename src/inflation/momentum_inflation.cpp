#include "inflation/momentum_inflation.hpp"

#include <algorithm>
#include <cmath>

namespace rdp {

MomentumInflation::MomentumInflation(int num_cells,
                                     MomentumInflationConfig cfg)
    : cfg_(cfg) {
    reset(num_cells);
}

void MomentumInflation::reset(int num_cells) {
    t_ = 0;
    r_.assign(static_cast<size_t>(num_cells), 1.0);
    dr_.assign(static_cast<size_t>(num_cells), 0.0);
    prev_c_.assign(static_cast<size_t>(num_cells), 0.0);
    prev_avg_ = 0.0;
}

InflationSnapshot MomentumInflation::snapshot() const {
    return {r_, dr_, prev_c_, prev_avg_, t_};
}

void MomentumInflation::restore(const InflationSnapshot& s) {
    r_ = s.r;
    dr_ = s.dr;
    prev_c_ = s.prev_c;
    prev_avg_ = s.prev_avg;
    t_ = s.t;
}

double MomentumInflation::delta(double c_prev, double c_now, double avg_prev,
                                double avg_now) const {
    // Deflation branch: the cell moved from above-average congestion to
    // below-average congestion between the two inflation iterations.
    if (c_now < avg_now && c_prev > avg_prev) {
        const double ap = std::max(avg_prev, cfg_.min_avg_congestion);
        const double an = std::max(avg_now, cfg_.min_avg_congestion);
        const double strength = std::abs(c_prev / ap - c_now / an);
        return -std::min(strength, cfg_.max_deflation);
    }
    return 1.0;
}

void MomentumInflation::update(const Design& d, const CongestionMap& cmap) {
    const double avg_now = cmap.average_congestion();
    const int n = d.num_cells();
    for (int i = 0; i < n; ++i) {
        const Cell& cell = d.cells[static_cast<size_t>(i)];
        if (!cell.movable()) continue;
        const double c_now = cmap.congestion_at_point(cell.pos);
        const size_t si = static_cast<size_t>(i);
        const double g = cfg_.congestion_gain;
        if (t_ == 0) {
            dr_[si] = g * c_now;  // paper: dr^1 = C^1 (scaled by the gain)
        } else {
            const double s =
                delta(prev_c_[si], c_now, prev_avg_, avg_now) * g * c_now;
            dr_[si] = cfg_.alpha * dr_[si] + (1.0 - cfg_.alpha) * s;
        }
        r_[si] = std::clamp(r_[si] + dr_[si], cfg_.r_min, cfg_.r_max);
        prev_c_[si] = c_now;
    }
    prev_avg_ = avg_now;
    ++t_;
}

}  // namespace rdp
