#pragma once
// Baseline cell-inflation schemes reproduced for comparison / ablation:
//
//  * CurrentOnlyInflation — DREAMPlace / RePlAce style: the ratio depends
//    only on the *current* congestion, so a cell that leaves a hotspot is
//    instantly deflated and drifts back in ("moving cells back into
//    congested areas", paper Section I).
//  * MonotoneInflation — Xplace-Route / NTUplace4dr style: ratios only ever
//    grow with accumulated congestion, which over-inflates cells that have
//    long since left the hotspot (paper Section I).
//  * NoInflation — identity ratios (the pure Xplace baseline).

#include "inflation/momentum_inflation.hpp"

namespace rdp {

struct BaselineInflationConfig {
    double r_max = 2.0;
    /// Ratio gain per unit of congestion.
    double beta = 0.3;
};

class CurrentOnlyInflation final : public InflationScheme {
public:
    explicit CurrentOnlyInflation(int num_cells,
                                  BaselineInflationConfig cfg = {});
    void update(const Design& d, const CongestionMap& cmap) override;
    const std::vector<double>& ratios() const override { return r_; }
    void reset(int num_cells) override;
    InflationSnapshot snapshot() const override { return {r_, {}, {}, 0.0, 0}; }
    void restore(const InflationSnapshot& s) override { r_ = s.r; }
    const char* name() const override { return "current-only"; }

private:
    BaselineInflationConfig cfg_;
    std::vector<double> r_;
};

class MonotoneInflation final : public InflationScheme {
public:
    explicit MonotoneInflation(int num_cells,
                               BaselineInflationConfig cfg = {});
    void update(const Design& d, const CongestionMap& cmap) override;
    const std::vector<double>& ratios() const override { return r_; }
    void reset(int num_cells) override;
    InflationSnapshot snapshot() const override { return {r_, {}, {}, 0.0, 0}; }
    void restore(const InflationSnapshot& s) override { r_ = s.r; }
    const char* name() const override { return "monotone"; }

private:
    BaselineInflationConfig cfg_;
    std::vector<double> r_;
};

class NoInflation final : public InflationScheme {
public:
    explicit NoInflation(int num_cells);
    void update(const Design& d, const CongestionMap& cmap) override;
    const std::vector<double>& ratios() const override { return r_; }
    void reset(int num_cells) override;
    InflationSnapshot snapshot() const override { return {r_, {}, {}, 0.0, 0}; }
    void restore(const InflationSnapshot& s) override { r_ = s.r; }
    const char* name() const override { return "none"; }

private:
    std::vector<double> r_;
};

}  // namespace rdp
