#pragma once
// Momentum-based cell inflation (paper Section III-B, Eq. (11)-(12)).
//
//   r_i^t  = clamp(r_i^{t-1} + dr_i^t, r_min, r_max)
//   dr_i^t = alpha dr_i^{t-1} + (1 - alpha) s_i^t,  dr_i^1 = C_i^1
//   s_i^t  = delta_i^t C_i^t
//   delta  = -| C^{t-1}_i/avgC^{t-1} - C^t_i/avgC^t |  if the cell just
//            moved from above-average to below-average congestion
//            (deflation), else 1.
//
// The historical term (momentum) keeps cells inflated for a while after
// they leave a hotspot — preventing the oscillation of current-only
// schemes — while the deflation branch prevents the unbounded growth of
// monotone schemes. Ratios multiply cell *areas* during density evaluation.

#include <vector>

#include "db/design.hpp"
#include "grid/congestion_map.hpp"

namespace rdp {

/// Complete serialized state of an inflation scheme, captured into stage
/// checkpoints by the recovery layer (src/recover) so a rollback restores
/// the inflation history *paired* with the positions it was scored with.
/// Schemes without momentum leave the history vectors empty.
struct InflationSnapshot {
    std::vector<double> r;       ///< current ratios
    std::vector<double> dr;      ///< momentum term (momentum scheme only)
    std::vector<double> prev_c;  ///< last per-cell congestion (momentum only)
    double prev_avg = 0.0;
    int t = 0;
};

/// Abstract inflation scheme so the placer can swap the paper's technique
/// for the ablation baselines.
class InflationScheme {
public:
    virtual ~InflationScheme() = default;
    /// Advance one inflation iteration using the fresh congestion map.
    virtual void update(const Design& d, const CongestionMap& cmap) = 0;
    /// Current per-cell area inflation ratios (size = num_cells).
    virtual const std::vector<double>& ratios() const = 0;
    /// Clear all history and resize for a design with `num_cells` cells.
    virtual void reset(int num_cells) = 0;
    /// Capture/restore the complete scheme state (checkpoint/rollback).
    virtual InflationSnapshot snapshot() const = 0;
    virtual void restore(const InflationSnapshot& s) = 0;
    virtual const char* name() const = 0;
};

struct MomentumInflationConfig {
    double r_min = 0.9;   ///< paper value
    double r_max = 2.0;   ///< paper value
    double alpha = 0.4;   ///< paper value (momentum coefficient)
    /// Response gain applied to the congestion value in s = delta * C.
    /// The paper's benchmarks see Eq. (3) values well below 1; our
    /// synthetic maps run hotter, so the raw recurrence saturates r_max in
    /// one step and every scheme degenerates to "inflate everything".
    double congestion_gain = 0.3;
    /// Guard for the delta denominator when an average congestion is ~0.
    double min_avg_congestion = 1e-6;
    /// Cap on |delta| so a near-zero previous average cannot explode it.
    double max_deflation = 5.0;
};

class MomentumInflation final : public InflationScheme {
public:
    explicit MomentumInflation(int num_cells,
                               MomentumInflationConfig cfg = {});

    void update(const Design& d, const CongestionMap& cmap) override;
    const std::vector<double>& ratios() const override { return r_; }
    void reset(int num_cells) override;
    InflationSnapshot snapshot() const override;
    void restore(const InflationSnapshot& s) override;
    const char* name() const override { return "momentum"; }

    const MomentumInflationConfig& config() const { return cfg_; }
    int iteration() const { return t_; }
    const std::vector<double>& delta_r() const { return dr_; }
    const std::vector<double>& prev_congestion() const { return prev_c_; }
    double prev_average_congestion() const { return prev_avg_; }

    /// Eq. (12) in isolation (exposed for unit tests).
    double delta(double c_prev, double c_now, double avg_prev,
                 double avg_now) const;

private:
    MomentumInflationConfig cfg_;
    int t_ = 0;  ///< completed inflation iterations
    std::vector<double> r_;
    std::vector<double> dr_;
    std::vector<double> prev_c_;
    double prev_avg_ = 0.0;
};

}  // namespace rdp
