#include "grid/bin_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "grid/splat_kernel.hpp"
#include "util/simd.hpp"

namespace rdp {

BinGrid::BinGrid(Rect region, int nx, int ny)
    : region_(region), nx_(nx), ny_(ny) {
    assert(nx > 0 && ny > 0 && !region.empty());
    bin_w_ = region.width() / nx;
    bin_h_ = region.height() / ny;
}

GridIndex BinGrid::index_of(Vec2 p) const {
    int ix = static_cast<int>(std::floor((p.x - region_.lx) / bin_w_));
    int iy = static_cast<int>(std::floor((p.y - region_.ly) / bin_h_));
    ix = std::clamp(ix, 0, nx_ - 1);
    iy = std::clamp(iy, 0, ny_ - 1);
    return {ix, iy};
}

Rect BinGrid::bin_box(int ix, int iy) const {
    const double lx = region_.lx + ix * bin_w_;
    const double ly = region_.ly + iy * bin_h_;
    return {lx, ly, lx + bin_w_, ly + bin_h_};
}

Vec2 BinGrid::bin_center(int ix, int iy) const {
    return {region_.lx + (ix + 0.5) * bin_w_, region_.ly + (iy + 0.5) * bin_h_};
}

void BinGrid::splat_area(GridF& g, const Rect& r, double scale) const {
    assert(compatible(g));
    // Row-vectorized scatter; bit-identical to the scalar
    // for_each_overlap accumulation on every SIMD backend.
    splat_rect<simd::VecD>(*this, g, r, scale);
}

double BinGrid::sample_bilinear(const GridF& g, Vec2 p) const {
    assert(compatible(g));
    // Convert to continuous bin-center coordinates.
    const double fx = (p.x - region_.lx) / bin_w_ - 0.5;
    const double fy = (p.y - region_.ly) / bin_h_ - 0.5;
    const int x0 = static_cast<int>(std::floor(fx));
    const int y0 = static_cast<int>(std::floor(fy));
    const double tx = fx - x0;
    const double ty = fy - y0;
    const double v00 = g.at_clamped(x0, y0);
    const double v10 = g.at_clamped(x0 + 1, y0);
    const double v01 = g.at_clamped(x0, y0 + 1);
    const double v11 = g.at_clamped(x0 + 1, y0 + 1);
    return v00 * (1 - tx) * (1 - ty) + v10 * tx * (1 - ty) +
           v01 * (1 - tx) * ty + v11 * tx * ty;
}

Vec2 BinGrid::sample_field(const GridF& fx, const GridF& fy, Vec2 p) const {
    return {sample_bilinear(fx, p), sample_bilinear(fy, p)};
}

}  // namespace rdp
