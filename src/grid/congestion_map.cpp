#include "grid/congestion_map.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdp {

CongestionMap::CongestionMap(BinGrid grid, GridF demand, GridF capacity)
    : grid_(grid), demand_(std::move(demand)), capacity_(std::move(capacity)) {
    assert(grid_.compatible(demand_) && grid_.compatible(capacity_));
}

double CongestionMap::utilization_at(int ix, int iy) const {
    const double cap = capacity_.at(ix, iy);
    if (cap <= 0.0) return demand_.at(ix, iy) > 0.0 ? 1.0 : 0.0;
    return demand_.at(ix, iy) / cap;
}

double CongestionMap::congestion_at(int ix, int iy) const {
    return std::max(utilization_at(ix, iy) - 1.0, 0.0);
}

double CongestionMap::congestion_at_point(Vec2 p) const {
    const GridIndex g = grid_.index_of(p);
    return congestion_at(g.ix, g.iy);
}

GridF CongestionMap::congestion_grid() const {
    GridF out(demand_.width(), demand_.height());
    for (int y = 0; y < out.height(); ++y)
        for (int x = 0; x < out.width(); ++x)
            out.at(x, y) = congestion_at(x, y);
    return out;
}

GridF CongestionMap::utilization_grid() const {
    GridF out(demand_.width(), demand_.height());
    for (int y = 0; y < out.height(); ++y)
        for (int x = 0; x < out.width(); ++x)
            out.at(x, y) = utilization_at(x, y);
    return out;
}

double CongestionMap::average_congestion() const {
    if (demand_.empty()) return 0.0;
    double acc = 0.0;
    for (int y = 0; y < demand_.height(); ++y)
        for (int x = 0; x < demand_.width(); ++x)
            acc += congestion_at(x, y);
    return acc / static_cast<double>(demand_.size());
}

int CongestionMap::overflowed_cells() const {
    int n = 0;
    for (int y = 0; y < demand_.height(); ++y)
        for (int x = 0; x < demand_.width(); ++x)
            if (congestion_at(x, y) > 0.0) ++n;
    return n;
}

double CongestionMap::total_overflow() const {
    double acc = 0.0;
    for (int y = 0; y < demand_.height(); ++y)
        for (int x = 0; x < demand_.width(); ++x)
            acc += std::max(demand_.at(x, y) - capacity_.at(x, y), 0.0);
    return acc;
}

double CongestionMap::weighted_overflow(double slack, double exponent) const {
    double acc = 0.0;
    for (int y = 0; y < demand_.height(); ++y) {
        for (int x = 0; x < demand_.width(); ++x) {
            const double cap = capacity_.at(x, y);
            const double dmd = demand_.at(x, y);
            const double over = std::max(dmd - slack * cap, 0.0);
            if (over <= 0.0) continue;
            const double util = cap > 0.0 ? dmd / cap : 1.0;
            acc += over * std::pow(util, exponent);
        }
    }
    return acc;
}

double CongestionMap::peak_utilization() const {
    double peak = 0.0;
    for (int y = 0; y < demand_.height(); ++y)
        for (int x = 0; x < demand_.width(); ++x)
            peak = std::max(peak, utilization_at(x, y));
    return peak;
}

}  // namespace rdp
