#pragma once
// Vectorized scatter/gather cores over a BinGrid row span (DESIGN.md §14):
// the per-bin overlap-area loops behind BinGrid::splat_area, the density
// gather in electro_density.cpp, and the RUDY per-bin accumulation in
// congestion/rudy.cpp.
//
// Both kernels vectorize along a bin row (unit stride). The overlap width
// per lane is computed with the exact op sequence of
// Rect::overlap_area(bin_box(ix, iy)) — select-based min/max, multiply,
// `> 0` guard — so for every bin the deposited value is bit-identical to
// the scalar loop; lanes whose overlap is empty contribute exactly +0.0.
// Adding +0.0 where the scalar code skipped the add is bitwise-neutral
// because accumulated grids never hold -0.0 (contributions are products of
// positive areas with non-negative scales).
//
// Templated on the SIMD vector type: production instantiates simd::VecD,
// tests/benches also instantiate simd::ScalarVecD and compare bitwise.
// These kernels never use fused ops (even under RDP_SIMD_FMA) so the
// incremental RUDY scalar dirty-bin path stays bitwise-equal to the
// vectorized fresh rebuild.

#include <algorithm>

#include "grid/bin_grid.hpp"
#include "util/grid2d.hpp"
#include "util/simd.hpp"

namespace rdp {

/// Accumulate `scale` * (overlap area of r with each bin) into g — the
/// vectorized body of BinGrid::splat_area. Deterministic and bit-identical
/// to the scalar for_each_overlap loop for every backend.
template <typename V>
void splat_rect(const BinGrid& grid, GridF& g, const Rect& r, double scale) {
    int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    if (!grid.bin_span(r, x0, y0, x1, y1)) return;
    const Rect c = r.intersect(grid.region());
    const Rect reg = grid.region();
    const double bw = grid.bin_w(), bh = grid.bin_h();
    const int span = x1 - x0 + 1;
    const V vreg_lx = V::set1(reg.lx);
    const V vbw = V::set1(bw);
    const V vclx = V::set1(c.lx), vchx = V::set1(c.hx);
    const V vscale = V::set1(scale);
    const V ix_first = V::set1(static_cast<double>(x0)) + V::iota();
    const V lane_step = V::set1(static_cast<double>(simd::kLanes));
    for (int iy = y0; iy <= y1; ++iy) {
        // Row-constant vertical overlap, same expression as overlap_area.
        const double bly = reg.ly + iy * bh;
        const double h = std::min(c.hy, bly + bh) - std::max(c.ly, bly);
        if (h <= 0.0) continue;
        const V vh = V::set1(h);
        double* row = &g.at(x0, iy);
        V ixv = ix_first;
        int i = 0;
        for (; i + simd::kLanes <= span; i += simd::kLanes) {
            const V blx = vreg_lx + ixv * vbw;  // bin_box: lx + ix*bin_w
            const V bhx = blx + vbw;
            // std::min(c.hx, b.hx) == vmin(b.hx, c.hx) select-for-select;
            // likewise for std::max — ties resolve to the same operand.
            const V w = vmin(bhx, vchx) - vmax(blx, vclx);
            const V contrib = and_gt_zero(w, (w * vh) * vscale);
            (V::loadu(row + i) + contrib).storeu(row + i);
            ixv = ixv + lane_step;
        }
        if (i < span) {
            const int m = span - i;
            const V blx = vreg_lx + ixv * vbw;
            const V bhx = blx + vbw;
            const V w = vmin(bhx, vchx) - vmax(blx, vclx);
            const V contrib = and_gt_zero(w, (w * vh) * vscale);
            const V cur = V::load_partial(row + i, m);
            (cur + contrib).store_partial(row + i, m);
        }
    }
}

/// Result of a footprint gather: overlap-weighted sums of the potential
/// and (optionally) field grids.
struct GatherAcc {
    double psi = 0.0;
    double ex = 0.0;
    double ey = 0.0;
};

/// Overlap-weighted gather of pot (and fx/fy when WithField) over the bins
/// covered by r: the adjoint of splat_rect, vectorized the same way. The
/// per-bin weight w = area * scale matches the scalar loop bit for bit;
/// the sums use the fixed 4-lane structure + reduce_add tree, so results
/// depend only on (r, grids) — identical on every backend and thread count.
template <typename V, bool WithField>
GatherAcc gather_rect(const BinGrid& grid, const GridF& pot, const GridF& fx,
                      const GridF& fy, const Rect& r, double scale) {
    GatherAcc out;
    int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    if (!grid.bin_span(r, x0, y0, x1, y1)) return out;
    const Rect c = r.intersect(grid.region());
    const Rect reg = grid.region();
    const double bw = grid.bin_w(), bh = grid.bin_h();
    const int span = x1 - x0 + 1;
    const V vreg_lx = V::set1(reg.lx);
    const V vbw = V::set1(bw);
    const V vclx = V::set1(c.lx), vchx = V::set1(c.hx);
    const V vscale = V::set1(scale);
    const V ix_first = V::set1(static_cast<double>(x0)) + V::iota();
    const V lane_step = V::set1(static_cast<double>(simd::kLanes));
    V psi_v = V::zero(), ex_v = V::zero(), ey_v = V::zero();
    for (int iy = y0; iy <= y1; ++iy) {
        const double bly = reg.ly + iy * bh;
        const double h = std::min(c.hy, bly + bh) - std::max(c.ly, bly);
        if (h <= 0.0) continue;
        const V vh = V::set1(h);
        const double* prow = &pot.at(x0, iy);
        const double* xrow = WithField ? &fx.at(x0, iy) : nullptr;
        const double* yrow = WithField ? &fy.at(x0, iy) : nullptr;
        V ixv = ix_first;
        int i = 0;
        for (; i + simd::kLanes <= span; i += simd::kLanes) {
            const V blx = vreg_lx + ixv * vbw;
            const V bhx = blx + vbw;
            const V wov = vmin(bhx, vchx) - vmax(blx, vclx);
            const V wgt = and_gt_zero(wov, (wov * vh) * vscale);
            psi_v = mul_add(wgt, V::loadu(prow + i), psi_v);
            if constexpr (WithField) {
                ex_v = mul_add(wgt, V::loadu(xrow + i), ex_v);
                ey_v = mul_add(wgt, V::loadu(yrow + i), ey_v);
            }
            ixv = ixv + lane_step;
        }
        if (i < span) {
            const int m = span - i;
            const V blx = vreg_lx + ixv * vbw;
            const V bhx = blx + vbw;
            const V wov = vmin(bhx, vchx) - vmax(blx, vclx);
            // Lanes past x1 have empty overlap (bin lx >= clipped hx), so
            // and_gt_zero already zeroes their weight; the partial loads
            // only avoid reading past the row.
            const V wgt = and_gt_zero(wov, (wov * vh) * vscale);
            psi_v = mul_add(wgt, V::load_partial(prow + i, m), psi_v);
            if constexpr (WithField) {
                ex_v = mul_add(wgt, V::load_partial(xrow + i, m), ex_v);
                ey_v = mul_add(wgt, V::load_partial(yrow + i, m), ey_v);
            }
        }
    }
    out.psi = reduce_add(psi_v);
    if constexpr (WithField) {
        out.ex = reduce_add(ex_v);
        out.ey = reduce_add(ey_v);
    }
    return out;
}

}  // namespace rdp
