#pragma once
// Uniform bin grid over the placement region. The paper (Section II-B)
// deliberately gives the density bins and the router G-cells the same
// dimensions so congestion values can be mapped 1:1 onto bins; we follow
// that: one BinGrid geometry is shared by the density map, the congestion
// map, and the DPA density adjustment.

#include <algorithm>
#include <cmath>

#include "db/design.hpp"
#include "util/geometry.hpp"
#include "util/grid2d.hpp"
#include "util/parallel.hpp"

namespace rdp {

class BinGrid {
public:
    BinGrid() = default;
    BinGrid(Rect region, int nx, int ny);

    const Rect& region() const { return region_; }
    int nx() const { return nx_; }
    int ny() const { return ny_; }
    double bin_w() const { return bin_w_; }
    double bin_h() const { return bin_h_; }
    double bin_area() const { return bin_w_ * bin_h_; }

    /// Grid index containing point p, clamped to valid range.
    GridIndex index_of(Vec2 p) const;
    /// Geometric box of bin (ix, iy).
    Rect bin_box(int ix, int iy) const;
    /// Center of bin (ix, iy).
    Vec2 bin_center(int ix, int iy) const;

    /// Fresh zero grid with this geometry.
    GridF make_grid() const { return GridF(nx_, ny_); }

    /// Accumulate `scale` * (overlap area of r with each bin) into g.
    void splat_area(GridF& g, const Rect& r, double scale = 1.0) const;

    /// Inclusive bin-index span [x0, x1] x [y0, y1] of the bins r (clipped
    /// to the region) can overlap; false when the clipped rect is empty.
    /// The single source of truth for rect -> bin-range mapping, shared by
    /// for_each_overlap and the incremental-RUDY dirty-span queries.
    bool bin_span(const Rect& r, int& x0, int& y0, int& x1, int& y1) const {
        const Rect c = r.intersect(region_);
        if (c.empty()) return false;
        x0 = std::clamp(
            static_cast<int>(std::floor((c.lx - region_.lx) / bin_w_)), 0,
            nx_ - 1);
        x1 = std::clamp(
            static_cast<int>(std::floor((c.hx - region_.lx) / bin_w_)), 0,
            nx_ - 1);
        y0 = std::clamp(
            static_cast<int>(std::floor((c.ly - region_.ly) / bin_h_)), 0,
            ny_ - 1);
        y1 = std::clamp(
            static_cast<int>(std::floor((c.hy - region_.ly) / bin_h_)), 0,
            ny_ - 1);
        return true;
    }

    /// Visit every bin overlapping r (clipped to the region) with the
    /// overlap area: fn(ix, iy, area). The adjoint of splat_area.
    template <typename Fn>
    void for_each_overlap(const Rect& r, Fn&& fn) const {
        const Rect c = r.intersect(region_);
        int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
        if (!bin_span(r, x0, y0, x1, y1)) return;
        for (int iy = y0; iy <= y1; ++iy) {
            for (int ix = x0; ix <= x1; ++ix) {
                const double a = c.overlap_area(bin_box(ix, iy));
                if (a > 0.0) fn(ix, iy, a);
            }
        }
    }

    /// Bilinear interpolation of a bin-centered scalar field at p
    /// (border-clamped outside the outermost bin centers).
    double sample_bilinear(const GridF& g, Vec2 p) const;
    /// Bilinear interpolation of a bin-centered vector field at p.
    Vec2 sample_field(const GridF& fx, const GridF& fy, Vec2 p) const;

    bool compatible(const GridF& g) const {
        return g.width() == nx_ && g.height() == ny_;
    }

private:
    Rect region_;
    int nx_ = 0;
    int ny_ = 0;
    double bin_w_ = 0.0;
    double bin_h_ = 0.0;
};

/// Deterministic parallel scatter: for each item i in [0, n), `splat(g, i)`
/// accumulates into a grid; items are chunked (chunking a function of n
/// only), each chunk splats into a private zero grid, and the per-chunk
/// grids are summed into `out` bin-by-bin in ascending chunk order — so the
/// result is bitwise identical for any RDP_THREADS value. `out` must
/// already have the grid's dimensions (it is added to, not cleared).
template <typename SplatFn>
void parallel_splat(const BinGrid& grid, GridF& out, size_t n, size_t grain,
                    SplatFn&& splat) {
    if (n == 0) return;
    const par::ChunkPlan cp = par::plan(n, grain, 16);
    std::vector<GridF> partial(cp.num_chunks);
    par::run_chunks(cp, [&](size_t b, size_t e, size_t c) {
        GridF g = grid.make_grid();
        for (size_t i = b; i < e; ++i) splat(g, i);
        partial[c] = std::move(g);
    });
    par::parallel_for(out.size(), 16384, [&](size_t b, size_t e) {
        double* dst = out.data();
        for (size_t c = 0; c < cp.num_chunks; ++c) {
            const double* src = partial[c].data();
            for (size_t i = b; i < e; ++i) dst[i] += src[i];
        }
    });
}

}  // namespace rdp
