#pragma once
// Routing congestion map (paper Eq. (3)). The global router produces 3D
// per-layer demand/capacity; this container holds the 2D layer-summed maps
//   Dmd_{m,n} = sum_l Dmd_{m,n,l},  Cap_{m,n} = sum_l Cap_{m,n,l}
// and derives
//   C_{m,n}   = max(Dmd/Cap - 1, 0)          (Eq. (3), overflow congestion)
//   rho_{m,n} = Dmd/Cap                      (charge density for the
//                                             congestion Poisson field)

#include "grid/bin_grid.hpp"
#include "util/grid2d.hpp"

namespace rdp {

class CongestionMap {
public:
    CongestionMap() = default;
    CongestionMap(BinGrid grid, GridF demand, GridF capacity);

    const BinGrid& grid() const { return grid_; }
    const GridF& demand() const { return demand_; }
    const GridF& capacity() const { return capacity_; }

    /// Eq. (3) congestion of one G-cell.
    double congestion_at(int ix, int iy) const;
    /// Eq. (3) congestion of the G-cell containing p.
    double congestion_at_point(Vec2 p) const;
    /// Demand / capacity of one G-cell (>= 0; 0 where capacity is 0).
    double utilization_at(int ix, int iy) const;

    /// Full Eq. (3) congestion grid.
    GridF congestion_grid() const;
    /// Full Dmd/Cap grid (the rho of the congestion Poisson problem).
    GridF utilization_grid() const;

    /// Mean of Eq. (3) congestion over all G-cells (the \bar{C} used by
    /// momentum inflation Eq. (12) and the DPA gate Eq. (15)).
    double average_congestion() const;
    /// Number of G-cells with positive Eq. (3) congestion.
    int overflowed_cells() const;
    /// Sum over G-cells of max(Dmd - Cap, 0) — absolute overflow.
    double total_overflow() const;
    /// Severity-weighted overflow: sum of max(Dmd - slack*Cap, 0) *
    /// (Dmd/Cap)^exponent. With slack > 1 and exponent > 0 this counts the
    /// hard hotspots that survive detailed-routing detours — the quantity
    /// the #DRVs proxy is built on.
    double weighted_overflow(double slack = 1.2, double exponent = 2.0) const;
    /// Maximum utilization over all G-cells.
    double peak_utilization() const;

private:
    BinGrid grid_;
    GridF demand_;
    GridF capacity_;
};

}  // namespace rdp
