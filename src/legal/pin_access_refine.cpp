#include "legal/pin_access_refine.hpp"

#include <cmath>

#include "wirelength/hpwl.hpp"

namespace rdp {

namespace {

/// Weighted HPWL of the nets touching one cell.
double cell_nets_hpwl(const Design& d, int cell) {
    double acc = 0.0;
    for (int pin : d.cells[static_cast<size_t>(cell)].pins) {
        const int net = d.pins[static_cast<size_t>(pin)].net;
        if (net < 0) continue;
        acc += d.nets[static_cast<size_t>(net)].weight *
               net_hpwl(d, d.nets[static_cast<size_t>(net)]);
    }
    return acc;
}

/// Mirror the cell's pins about its horizontal center line.
void flip_vertical(Design& d, int cell) {
    for (int pin : d.cells[static_cast<size_t>(cell)].pins)
        d.pins[static_cast<size_t>(pin)].offset.y =
            -d.pins[static_cast<size_t>(pin)].offset.y;
}

}  // namespace

int pins_under_rails(const Design& d, int cell,
                     const std::vector<PGRail>& rails) {
    int count = 0;
    const Rect cell_box = d.cells[static_cast<size_t>(cell)].bbox();
    for (int pin : d.cells[static_cast<size_t>(cell)].pins) {
        const Vec2 pos = d.pin_position(pin);
        for (const PGRail& r : rails) {
            if (!r.box.intersects(cell_box.expanded(1.0))) continue;
            if (r.box.contains(pos)) {
                ++count;
                break;
            }
        }
    }
    return count;
}

PinAccessRefineStats pin_access_refine(Design& d,
                                       const std::vector<PGRail>& rails,
                                       const PinAccessRefineConfig& cfg) {
    PinAccessRefineStats stats;
    if (rails.empty()) return stats;

    for (int ci = 0; ci < d.num_cells(); ++ci) {
        const Cell& c = d.cells[static_cast<size_t>(ci)];
        if (!c.movable() || c.pins.empty()) continue;
        const int before = pins_under_rails(d, ci, rails);
        if (before == 0) continue;
        ++stats.cells_considered;

        const double hpwl_before = cell_nets_hpwl(d, ci);
        flip_vertical(d, ci);
        const int after = pins_under_rails(d, ci, rails);
        const double hpwl_after = cell_nets_hpwl(d, ci);
        const bool accept =
            after < before &&
            hpwl_after <=
                hpwl_before * (1.0 + cfg.max_hpwl_increase_frac) + 1e-9;
        if (accept) {
            ++stats.flips;
            stats.pins_freed += before - after;
        } else {
            flip_vertical(d, ci);  // revert
        }
    }
    return stats;
}

}  // namespace rdp
