#include "legal/tetris.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rdp {

namespace {

/// Per-row occupancy: the free intervals remaining (fixed blockages are
/// subtracted up front; placements consume/split intervals). Tracking
/// intervals rather than a single frontier keeps mid-row whitespace usable
/// at high utilization.
struct RowState {
    double y = 0.0;
    std::vector<Interval> free_segs;   ///< sorted, disjoint
    std::vector<Interval> all_segs;    ///< segments before any placement
    std::vector<int> placed;           ///< cells placed into this row
    double free_width = 0.0;           ///< total remaining free width
};

double snap_up(double x, double lx, double site) {
    return lx + std::ceil((x - lx) / site - 1e-9) * site;
}
double snap_down(double x, double lx, double site) {
    return lx + std::floor((x - lx) / site + 1e-9) * site;
}

/// Best legal left-edge for a cell of `width` wanting `want`, or a negative
/// value when the row has no room. Prefers the position minimizing
/// |x - want|.
double find_slot(const RowState& r, double want, double width,
                 double site_width, double region_lx) {
    double best = -1.0;
    double best_cost = std::numeric_limits<double>::max();
    for (const Interval& iv : r.free_segs) {
        const double lo = snap_up(iv.lo, region_lx, site_width);
        const double hi = snap_down(iv.hi, region_lx, site_width);
        if (hi - lo < width - 1e-9) continue;
        // Closest aligned position to `want` inside [lo, hi - width].
        double x = std::clamp(want, lo, hi - width);
        x = snap_up(x, region_lx, site_width);
        if (x + width > hi + 1e-9) x = snap_down(hi - width, region_lx,
                                                 site_width);
        if (x < lo - 1e-9) continue;
        const double cost = std::abs(x - want);
        if (cost < best_cost) {
            best_cost = cost;
            best = x;
        }
        // Intervals are sorted; once we're past `want` the first fitting
        // interval is the best on the right side.
        if (iv.lo > want && best >= 0.0) break;
    }
    return best;
}

/// Remove [x, x+width) from the row's free intervals.
void consume(RowState& r, double x, double width) {
    for (size_t i = 0; i < r.free_segs.size(); ++i) {
        Interval& iv = r.free_segs[i];
        if (x < iv.lo - 1e-9 || x + width > iv.hi + 1e-9) continue;
        const Interval left{iv.lo, x};
        const Interval right{x + width, iv.hi};
        if (left.length() > 1e-9 && right.length() > 1e-9) {
            iv = left;
            r.free_segs.insert(r.free_segs.begin() + static_cast<long>(i) + 1,
                               right);
        } else if (left.length() > 1e-9) {
            iv = left;
        } else if (right.length() > 1e-9) {
            iv = right;
        } else {
            r.free_segs.erase(r.free_segs.begin() + static_cast<long>(i));
        }
        return;
    }
}

/// Repack an entire row left-justified (preserving the cells' x order) to
/// consolidate fragmented whitespace, inserting `new_cell`. Simulates
/// first; commits and refreshes the row state only on success.
bool try_repack_row(Design& d, RowState& r, int new_cell) {
    std::vector<int> cells = r.placed;
    cells.push_back(new_cell);
    std::sort(cells.begin(), cells.end(), [&](int a, int b) {
        return d.cells[static_cast<size_t>(a)].pos.x <
               d.cells[static_cast<size_t>(b)].pos.x;
    });

    const double site = d.site_width;
    const double lx0 = d.region.lx;
    std::vector<double> new_lx(cells.size());
    size_t seg = 0;
    double cursor = 0.0;
    bool have_cursor = false;
    for (size_t i = 0; i < cells.size(); ++i) {
        const double w = d.cells[static_cast<size_t>(cells[i])].width;
        while (seg < r.all_segs.size()) {
            if (!have_cursor) {
                cursor = snap_up(r.all_segs[seg].lo, lx0, site);
                have_cursor = true;
            }
            if (cursor + w <= r.all_segs[seg].hi + 1e-9) break;
            ++seg;
            have_cursor = false;
        }
        if (seg >= r.all_segs.size()) return false;
        new_lx[i] = cursor;
        cursor += w;
    }

    // Commit.
    for (size_t i = 0; i < cells.size(); ++i) {
        Cell& c = d.cells[static_cast<size_t>(cells[i])];
        c.pos = {new_lx[i] + c.width / 2.0, r.y + c.height / 2.0};
    }
    r.placed = cells;
    std::vector<Interval> occupied;
    double used = 0.0;
    for (int ci : cells) {
        const Rect b = d.cells[static_cast<size_t>(ci)].bbox();
        occupied.push_back({b.lx, b.hx});
        used += b.width();
    }
    r.free_segs.clear();
    r.free_width = 0.0;
    for (const Interval& base : r.all_segs) {
        for (const Interval& piece : subtract_intervals(base, occupied)) {
            r.free_segs.push_back(piece);
            r.free_width += piece.length();
        }
    }
    return true;
}

}  // namespace

LegalizeStats tetris_legalize(Design& d, const TetrisConfig& cfg) {
    LegalizeStats stats;
    std::vector<int> failed;
    if (d.rows.empty()) d.build_rows();

    std::vector<RowState> rows(d.rows.size());
    for (size_t i = 0; i < d.rows.size(); ++i) {
        rows[i].y = d.rows[i].y;
        const Rect row_box{d.rows[i].lx, d.rows[i].y, d.rows[i].hx,
                           d.rows[i].y + d.rows[i].height};
        std::vector<Interval> cuts;
        for (const Cell& c : d.cells) {
            if (c.movable()) continue;
            const Rect b = c.bbox();
            if (b.intersects(row_box)) cuts.push_back({b.lx, b.hx});
        }
        rows[i].free_segs = subtract_intervals(
            {d.rows[i].lx, d.rows[i].hx}, std::move(cuts));
        rows[i].all_segs = rows[i].free_segs;
        for (const Interval& iv : rows[i].free_segs)
            rows[i].free_width += iv.length();
    }

    std::vector<int> order = d.movable_cells();
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return d.cells[static_cast<size_t>(a)].pos.x <
               d.cells[static_cast<size_t>(b)].pos.x;
    });

    const int nrows = static_cast<int>(rows.size());
    for (int ci : order) {
        Cell& c = d.cells[static_cast<size_t>(ci)];
        const double want_lx = c.pos.x - c.width / 2.0;
        const double want_y = c.pos.y - c.height / 2.0;
        int best_row = -1;
        double best_x = 0.0;
        double best_cost = std::numeric_limits<double>::max();

        const int r0 = std::clamp(
            static_cast<int>(std::floor((want_y - d.region.ly) /
                                        d.row_height)),
            0, nrows - 1);
        // Search rows outward from the desired one; once a fit exists,
        // finish the configured radius before committing.
        for (int radius = 0; radius < nrows; ++radius) {
            bool any_candidate = false;
            for (int sgn = -1; sgn <= 1; sgn += 2) {
                const int r = r0 + sgn * radius;
                if (radius == 0 && sgn == 1) continue;
                if (r < 0 || r >= nrows) continue;
                any_candidate = true;
                const double x = find_slot(rows[static_cast<size_t>(r)],
                                           want_lx, c.width, d.site_width,
                                           d.region.lx);
                if (x < 0.0) continue;
                const double dy =
                    std::abs(rows[static_cast<size_t>(r)].y - want_y);
                const double cost =
                    std::abs(x - want_lx) + cfg.vertical_weight * dy;
                if (cost < best_cost) {
                    best_cost = cost;
                    best_row = r;
                    best_x = x;
                }
            }
            if (best_row >= 0 && radius >= cfg.row_search_radius) break;
            if (!any_candidate && radius > 0) break;
        }

        if (best_row < 0) {
            failed.push_back(ci);
            continue;
        }
        RowState& r = rows[static_cast<size_t>(best_row)];
        const Vec2 old = c.pos;
        c.pos = {best_x + c.width / 2.0, r.y + c.height / 2.0};
        consume(r, best_x, c.width);
        r.placed.push_back(ci);
        r.free_width -= c.width;
        ++stats.cells_placed;
        const double disp = (c.pos - old).norm1();
        stats.total_displacement += disp;
        stats.max_displacement = std::max(stats.max_displacement, disp);
    }

    // Fallback for fragmentation at high utilization: no single free
    // interval fits the cell anywhere, but rows still have scattered
    // whitespace. Compact the row with the most total free width (packing
    // its cells left-justified segment by segment), which consolidates the
    // whitespace, then place the cell in the opened gap.
    for (int ci : failed) {
        Cell& c = d.cells[static_cast<size_t>(ci)];
        // Rows ordered by free width, most spacious first.
        std::vector<int> by_space(rows.size());
        for (size_t i = 0; i < rows.size(); ++i) by_space[i] = static_cast<int>(i);
        std::sort(by_space.begin(), by_space.end(), [&](int a, int b) {
            return rows[static_cast<size_t>(a)].free_width >
                   rows[static_cast<size_t>(b)].free_width;
        });
        bool placed_ok = false;
        for (int ri : by_space) {
            RowState& r = rows[static_cast<size_t>(ri)];
            if (r.free_width < c.width) break;
            if (try_repack_row(d, r, ci)) {
                placed_ok = true;
                break;
            }
        }
        if (placed_ok) {
            ++stats.cells_placed;
            stats.total_displacement += 0.0;  // displacement not tracked here
        } else {
            ++stats.cells_failed;
        }
    }
    return stats;
}

bool is_legal(const Design& d, double eps) {
    // Site/row alignment and containment.
    for (const Cell& c : d.cells) {
        if (!c.movable()) continue;
        const Rect b = c.bbox();
        if (b.lx < d.region.lx - eps || b.hx > d.region.hx + eps ||
            b.ly < d.region.ly - eps || b.hy > d.region.hy + eps)
            return false;
        const double row_rel = (b.ly - d.region.ly) / d.row_height;
        if (std::abs(row_rel - std::round(row_rel)) > 1e-4) return false;
        const double site_rel = (b.lx - d.region.lx) / d.site_width;
        if (std::abs(site_rel - std::round(site_rel)) > 1e-4) return false;
    }
    // Overlaps via row-bucketed sweep.
    std::vector<std::vector<int>> by_row(d.rows.size());
    for (int i = 0; i < d.num_cells(); ++i) {
        const Cell& c = d.cells[static_cast<size_t>(i)];
        if (!c.movable()) continue;
        const int r = static_cast<int>(
            std::round((c.bbox().ly - d.region.ly) / d.row_height));
        if (r < 0 || r >= static_cast<int>(by_row.size())) return false;
        by_row[static_cast<size_t>(r)].push_back(i);
    }
    for (auto& row : by_row) {
        std::sort(row.begin(), row.end(), [&](int a, int b) {
            return d.cells[static_cast<size_t>(a)].bbox().lx <
                   d.cells[static_cast<size_t>(b)].bbox().lx;
        });
        for (size_t i = 0; i + 1 < row.size(); ++i) {
            const Rect a = d.cells[static_cast<size_t>(row[i])].bbox();
            const Rect b = d.cells[static_cast<size_t>(row[i + 1])].bbox();
            if (a.hx > b.lx + eps) return false;
        }
        // Overlap with fixed cells.
        for (int ci : row) {
            const Rect b =
                d.cells[static_cast<size_t>(ci)].bbox().expanded(-eps);
            if (b.empty()) continue;
            for (const Cell& f : d.cells) {
                if (f.movable()) continue;
                if (b.intersects(f.bbox())) return false;
            }
        }
    }
    return true;
}

}  // namespace rdp
