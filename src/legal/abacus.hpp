#pragma once
// Abacus-style row refinement (Spindler et al.): after Tetris assigns each
// cell a row, every row segment is re-packed optimally for quadratic
// displacement from the cells' global-placement positions, using the
// classic cluster-merging algorithm. Rows and cell-to-row assignment are
// kept; only x positions change, so legality is preserved.

#include <vector>

#include "db/design.hpp"

namespace rdp {

/// Re-pack every row. `desired` holds the target center positions (size
/// num_cells, usually the pre-legalization global placement); cells keep
/// their current rows. Returns total |x - desired_x| displacement after
/// refinement.
double abacus_refine(Design& d, const std::vector<Vec2>& desired);

}  // namespace rdp
