#pragma once
// EXTENSION (beyond the paper): detailed-placement pin-access refinement.
//
// The paper optimizes pin accessibility during *global* placement (DPA)
// and cites cell flipping / shifting at the detailed-placement stage as
// the prior approach ([11]-[13]). This pass implements the classic flip
// move: a cell whose pins land under horizontal PG rails is mirrored
// vertically (pin offsets y -> -y) when that frees pins without hurting
// wirelength. It composes with DPA: global placement clears congested
// rail regions, flipping cleans up the stragglers.

#include <vector>

#include "db/design.hpp"

namespace rdp {

struct PinAccessRefineConfig {
    /// A flip is accepted only if the cell's connected-net HPWL grows by
    /// at most this fraction.
    double max_hpwl_increase_frac = 0.002;
};

struct PinAccessRefineStats {
    int cells_considered = 0;  ///< movable cells with pins under rails
    int flips = 0;
    int pins_freed = 0;        ///< rail-covered pins removed by flipping
};

/// Flip cells to move their pins off the given (selected) PG rails.
/// Only pin offsets change; positions and legality are untouched.
PinAccessRefineStats pin_access_refine(Design& d,
                                       const std::vector<PGRail>& rails,
                                       const PinAccessRefineConfig& cfg = {});

/// Number of `cell`'s pins lying inside any of the rails.
int pins_under_rails(const Design& d, int cell,
                     const std::vector<PGRail>& rails);

}  // namespace rdp
