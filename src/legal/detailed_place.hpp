#pragma once
// Greedy detailed placement: local moves on the legalized placement that
// reduce HPWL without breaking legality. Two move types per pass:
//   * swap of two cells adjacent in a row (when both still fit),
//   * shift of a cell inside the free gap around it to its locally optimal
//     x (median of connected-net bounding boxes), snapped to sites.
// This mirrors the (much more elaborate) routability-driven detailed
// placement the paper borrows from Xplace-Route closely enough for the
// relative comparisons.

#include "db/design.hpp"

namespace rdp {

struct DetailedPlaceConfig {
    int max_passes = 3;
    /// Stop a pass early when the relative HPWL improvement drops below this.
    double min_improvement = 1e-4;
};

struct DetailedPlaceStats {
    int swaps = 0;
    int shifts = 0;
    double hpwl_before = 0.0;
    double hpwl_after = 0.0;
};

DetailedPlaceStats detailed_place(Design& d,
                                  const DetailedPlaceConfig& cfg = {});

}  // namespace rdp
