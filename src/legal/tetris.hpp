#pragma once
// Tetris-style legalization: movable standard cells are processed in
// ascending x order and greedily packed into nearby rows at the first legal
// site at or right of their global-placement position, avoiding fixed cells
// and macros. This is the classic fast legalizer used after electrostatic
// global placement; Abacus (abacus.hpp) then refines each row.

#include <vector>

#include "db/design.hpp"

namespace rdp {

struct TetrisConfig {
    /// Rows examined around the cell's desired row on each side.
    int row_search_radius = 12;
    /// Weight of vertical displacement vs horizontal in the row-choice cost.
    double vertical_weight = 1.0;
};

struct LegalizeStats {
    int cells_placed = 0;
    int cells_failed = 0;     ///< could not fit (pathological utilization)
    double total_displacement = 0.0;
    double max_displacement = 0.0;
};

/// Legalize all movable cells of `d` in place. Cell heights must equal the
/// row height (single-row standard cells). Returns displacement statistics.
LegalizeStats tetris_legalize(Design& d, const TetrisConfig& cfg = {});

/// True if no two movable cells overlap and every movable cell sits on a
/// row and site boundary inside the region (tolerance `eps`).
bool is_legal(const Design& d, double eps = 1e-6);

}  // namespace rdp
