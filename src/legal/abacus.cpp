#include "legal/abacus.hpp"

#include <algorithm>
#include <cmath>

namespace rdp {

namespace {

struct Cluster {
    double total_weight = 0.0;  ///< e: sum of cell weights
    double q = 0.0;             ///< sum of w_i (x_i' - offset_i)
    double width = 0.0;         ///< total width
    double x = 0.0;             ///< left edge of the cluster
    int first = 0;              ///< index range into the ordered cell list
    int last = 0;
};

}  // namespace

double abacus_refine(Design& d, const std::vector<Vec2>& desired) {
    if (d.rows.empty()) d.build_rows();

    // Free segments per row (subtract fixed blockages).
    const int nrows = static_cast<int>(d.rows.size());
    std::vector<std::vector<Interval>> free_segs(static_cast<size_t>(nrows));
    for (int r = 0; r < nrows; ++r) {
        const Row& row = d.rows[static_cast<size_t>(r)];
        const Rect row_box{row.lx, row.y, row.hx, row.y + row.height};
        std::vector<Interval> cuts;
        for (const Cell& c : d.cells) {
            if (c.movable()) continue;
            const Rect b = c.bbox();
            if (b.intersects(row_box)) cuts.push_back({b.lx, b.hx});
        }
        free_segs[static_cast<size_t>(r)] =
            subtract_intervals({row.lx, row.hx}, std::move(cuts));
    }

    // Bucket movable cells by row.
    std::vector<std::vector<int>> by_row(static_cast<size_t>(nrows));
    for (int i = 0; i < d.num_cells(); ++i) {
        const Cell& c = d.cells[static_cast<size_t>(i)];
        if (!c.movable()) continue;
        const int r = std::clamp(
            static_cast<int>(
                std::round((c.bbox().ly - d.region.ly) / d.row_height)),
            0, nrows - 1);
        by_row[static_cast<size_t>(r)].push_back(i);
    }

    double total_disp = 0.0;
    for (int r = 0; r < nrows; ++r) {
        auto& cells = by_row[static_cast<size_t>(r)];
        if (cells.empty()) continue;
        std::sort(cells.begin(), cells.end(), [&](int a, int b) {
            return d.cells[static_cast<size_t>(a)].pos.x <
                   d.cells[static_cast<size_t>(b)].pos.x;
        });

        // Segment boundaries aligned to the site grid (fixed cells such as
        // IO pads can sit at fractional coordinates; the legalized cells
        // always live inside the aligned interior).
        std::vector<Interval> segs;
        for (const Interval& iv : free_segs[static_cast<size_t>(r)]) {
            Interval s;
            s.lo = d.region.lx +
                   std::ceil((iv.lo - d.region.lx) / d.site_width - 1e-9) *
                       d.site_width;
            s.hi = d.region.lx +
                   std::floor((iv.hi - d.region.lx) / d.site_width + 1e-9) *
                       d.site_width;
            if (!s.empty()) segs.push_back(s);
        }
        if (segs.empty()) continue;

        // Distribute cells to free segments by current position, spilling
        // right (then left) when a segment is full.
        std::vector<std::vector<int>> per_seg(segs.size());
        std::vector<double> seg_load(segs.size(), 0.0);
        size_t si = 0;
        for (int ci : cells) {
            const Cell& c = d.cells[static_cast<size_t>(ci)];
            // Advance to the segment containing (or right of) the cell.
            while (si + 1 < segs.size() && segs[si].hi < c.pos.x) ++si;
            size_t target = si;
            // Spill to a segment with room.
            while (target < segs.size() &&
                   seg_load[target] + c.width > segs[target].length() + 1e-9)
                ++target;
            if (target >= segs.size()) {
                target = si;
                while (target > 0 && seg_load[target] + c.width >
                                         segs[target].length() + 1e-9)
                    --target;
            }
            per_seg[target].push_back(ci);
            seg_load[target] += c.width;
        }

        // Abacus cluster algorithm per segment.
        for (size_t s = 0; s < segs.size(); ++s) {
            const auto& list = per_seg[s];
            if (list.empty()) continue;
            const double lo = segs[s].lo, hi = segs[s].hi;
            std::vector<Cluster> stack;
            for (int idx = 0; idx < static_cast<int>(list.size()); ++idx) {
                const Cell& c =
                    d.cells[static_cast<size_t>(list[static_cast<size_t>(idx)])];
                const double want_lx =
                    desired[static_cast<size_t>(list[static_cast<size_t>(idx)])]
                        .x -
                    c.width / 2.0;
                Cluster cl;
                cl.total_weight = 1.0;
                cl.q = want_lx;
                cl.width = c.width;
                cl.first = cl.last = idx;
                cl.x = std::clamp(want_lx, lo, hi - cl.width);
                stack.push_back(cl);
                // Merge while overlapping the predecessor.
                while (stack.size() > 1) {
                    Cluster& prev = stack[stack.size() - 2];
                    Cluster& cur = stack.back();
                    if (prev.x + prev.width <= cur.x + 1e-12) break;
                    prev.q += cur.q - cur.total_weight * prev.width;
                    prev.total_weight += cur.total_weight;
                    prev.width += cur.width;
                    prev.last = cur.last;
                    prev.x = std::clamp(prev.q / prev.total_weight, lo,
                                        std::max(lo, hi - prev.width));
                    stack.pop_back();
                }
            }
            // Write back positions. Segment bounds and cell widths are
            // site-aligned, so snapping the cluster start once keeps every
            // cell aligned; a running cursor rules out any overlap between
            // consecutive clusters.
            double cursor = lo;
            for (const Cluster& cl : stack) {
                double x = d.region.lx +
                           std::floor((cl.x - d.region.lx) / d.site_width +
                                      1e-9) *
                               d.site_width;
                x = std::max(std::min(x, hi - cl.width), cursor);
                for (int idx = cl.first; idx <= cl.last; ++idx) {
                    Cell& c = d.cells[static_cast<size_t>(
                        list[static_cast<size_t>(idx)])];
                    c.pos.x = x + c.width / 2.0;
                    x += c.width;
                    total_disp += std::abs(
                        c.pos.x -
                        desired[static_cast<size_t>(
                                    list[static_cast<size_t>(idx)])]
                            .x);
                }
                cursor = x;
            }
        }
    }
    return total_disp;
}

}  // namespace rdp
