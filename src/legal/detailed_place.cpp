#include "legal/detailed_place.hpp"

#include <algorithm>
#include <cmath>

#include "wirelength/hpwl.hpp"

namespace rdp {

namespace {

/// Weighted HPWL of all nets touching cell ci.
double local_hpwl(const Design& d, int ci) {
    double acc = 0.0;
    for (int pin : d.cells[static_cast<size_t>(ci)].pins) {
        const int net = d.pins[static_cast<size_t>(pin)].net;
        if (net < 0) continue;
        acc += d.nets[static_cast<size_t>(net)].weight *
               net_hpwl(d, d.nets[static_cast<size_t>(net)]);
    }
    return acc;
}

/// Weighted HPWL of the union of nets touching two cells (each net once).
double pair_hpwl(const Design& d, int a, int b) {
    std::vector<int> nets;
    for (int ci : {a, b}) {
        for (int pin : d.cells[static_cast<size_t>(ci)].pins) {
            const int net = d.pins[static_cast<size_t>(pin)].net;
            if (net >= 0) nets.push_back(net);
        }
    }
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
    double acc = 0.0;
    for (int net : nets) {
        acc += d.nets[static_cast<size_t>(net)].weight *
               net_hpwl(d, d.nets[static_cast<size_t>(net)]);
    }
    return acc;
}

}  // namespace

DetailedPlaceStats detailed_place(Design& d, const DetailedPlaceConfig& cfg) {
    DetailedPlaceStats stats;
    stats.hpwl_before = total_hpwl(d);

    if (d.rows.empty()) d.build_rows();
    const int nrows = static_cast<int>(d.rows.size());

    // Fixed blockages per row (macros, pads): moves must not cross them.
    std::vector<std::vector<Interval>> blocked(static_cast<size_t>(nrows));
    for (int r = 0; r < nrows; ++r) {
        const Row& row = d.rows[static_cast<size_t>(r)];
        const Rect row_box{row.lx, row.y, row.hx, row.y + row.height};
        for (const Cell& c : d.cells) {
            if (c.movable()) continue;
            const Rect b = c.bbox();
            if (b.intersects(row_box))
                blocked[static_cast<size_t>(r)].push_back({b.lx, b.hx});
        }
        std::sort(blocked[static_cast<size_t>(r)].begin(),
                  blocked[static_cast<size_t>(r)].end(),
                  [](const Interval& a, const Interval& b) {
                      return a.lo < b.lo;
                  });
    }
    auto span_blocked = [&](int r, double lo, double hi) {
        for (const Interval& b : blocked[static_cast<size_t>(r)]) {
            if (b.lo >= hi) break;
            if (b.hi > lo) return true;
        }
        return false;
    };

    for (int pass = 0; pass < cfg.max_passes; ++pass) {
        // Bucket movable cells by row, ordered by x.
        std::vector<std::vector<int>> by_row(static_cast<size_t>(nrows));
        for (int i = 0; i < d.num_cells(); ++i) {
            const Cell& c = d.cells[static_cast<size_t>(i)];
            if (!c.movable()) continue;
            const int r = std::clamp(
                static_cast<int>(
                    std::round((c.bbox().ly - d.region.ly) / d.row_height)),
                0, nrows - 1);
            by_row[static_cast<size_t>(r)].push_back(i);
        }
        for (auto& row : by_row) {
            std::sort(row.begin(), row.end(), [&](int a, int b) {
                return d.cells[static_cast<size_t>(a)].pos.x <
                       d.cells[static_cast<size_t>(b)].pos.x;
            });
        }

        int moves_this_pass = 0;

        // Adjacent swaps.
        for (int r = 0; r < nrows; ++r) {
            auto& row = by_row[static_cast<size_t>(r)];
            for (size_t i = 0; i + 1 < row.size(); ++i) {
                const int a = row[i];
                const int b = row[i + 1];
                Cell& ca = d.cells[static_cast<size_t>(a)];
                Cell& cb = d.cells[static_cast<size_t>(b)];
                const double a_lx = ca.bbox().lx;
                const double gap = cb.bbox().lx - ca.bbox().hx;
                if (gap < -1e-9) continue;  // shouldn't happen when legal
                // A fixed blockage between the two cells forbids the swap.
                if (span_blocked(r, a_lx, cb.bbox().hx)) continue;
                const double before = pair_hpwl(d, a, b);
                const Vec2 pa = ca.pos, pb = cb.pos;
                // Swap order: b first, then a after the preserved gap.
                cb.pos.x = a_lx + cb.width / 2.0;
                ca.pos.x = a_lx + cb.width + gap + ca.width / 2.0;
                const double after = pair_hpwl(d, a, b);
                if (after + 1e-9 < before) {
                    ++stats.swaps;
                    ++moves_this_pass;
                    std::swap(row[i], row[i + 1]);
                } else {
                    ca.pos = pa;
                    cb.pos = pb;
                }
            }
        }

        // Gap shifts toward each cell's locally optimal x.
        for (int r = 0; r < nrows; ++r) {
            auto& row = by_row[static_cast<size_t>(r)];
            for (size_t i = 0; i < row.size(); ++i) {
                const int ci = row[i];
                Cell& c = d.cells[static_cast<size_t>(ci)];
                const double lo =
                    (i == 0) ? d.region.lx
                             : d.cells[static_cast<size_t>(row[i - 1])]
                                   .bbox()
                                   .hx;
                const double hi =
                    (i + 1 == row.size())
                        ? d.region.hx
                        : d.cells[static_cast<size_t>(row[i + 1])].bbox().lx;
                if (hi - lo < c.width + d.site_width / 2.0) continue;

                const double before = local_hpwl(d, ci);
                const Vec2 old = c.pos;
                // Target: mean center of connected nets' other pins.
                double target = old.x;
                {
                    double acc = 0.0;
                    int cnt = 0;
                    for (int pin : c.pins) {
                        const int net = d.pins[static_cast<size_t>(pin)].net;
                        if (net < 0) continue;
                        for (int op :
                             d.nets[static_cast<size_t>(net)].pins) {
                            if (d.pins[static_cast<size_t>(op)].cell == ci)
                                continue;
                            acc += d.pin_position(op).x;
                            ++cnt;
                        }
                    }
                    if (cnt > 0) target = acc / cnt;
                }
                double want_lx =
                    std::clamp(target - c.width / 2.0, lo, hi - c.width);
                want_lx = d.region.lx +
                          std::round((want_lx - d.region.lx) / d.site_width) *
                              d.site_width;
                want_lx = std::clamp(want_lx, lo, hi - c.width);
                // Keep site alignment after the clamp.
                const double rel = (want_lx - d.region.lx) / d.site_width;
                if (std::abs(rel - std::round(rel)) > 1e-6) continue;
                // Never move onto a fixed blockage.
                if (span_blocked(r, want_lx, want_lx + c.width)) continue;
                c.pos.x = want_lx + c.width / 2.0;
                const double after = local_hpwl(d, ci);
                if (after + 1e-9 < before) {
                    ++stats.shifts;
                    ++moves_this_pass;
                } else {
                    c.pos = old;
                }
            }
        }

        if (moves_this_pass == 0) break;
    }

    stats.hpwl_after = total_hpwl(d);
    return stats;
}

}  // namespace rdp
