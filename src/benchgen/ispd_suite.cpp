#include "benchgen/ispd_suite.hpp"

#include <cmath>
#include <stdexcept>

namespace rdp {

namespace {

/// Relative profile of one contest design.
struct Profile {
    const char* name;
    int cells;         ///< at scale 1.0
    int macros;
    double macro_frac; ///< macro area fraction
    double util;       ///< movable utilization (congestion pressure)
    double avg_deg;
    double nets_per_cell;
    bool fence_removed;
    int grid_bins;
    uint64_t seed;
};

// Sizes follow the contest's relative ordering (fft/pci smallest,
// matrix_mult mid, superblue largest); utilization/macro profiles make the
// des_perf_a / edit_dist_a / matrix_mult_b designs the congested ones and
// superblue14 / pci_bridge32_b the easy ones, mirroring the DRV ordering
// in paper Table I.
constexpr Profile kProfiles[] = {
    {"des_perf_1", 5200, 0, 0.00, 0.78, 2.8, 1.25, false, 64, 11},
    {"des_perf_a", 5000, 4, 0.16, 0.80, 2.8, 1.25, true, 64, 12},
    {"des_perf_b", 5200, 4, 0.12, 0.68, 2.7, 1.20, true, 64, 13},
    {"edit_dist_a", 6000, 6, 0.14, 0.82, 2.9, 1.30, true, 64, 14},
    {"fft_1", 1600, 0, 0.00, 0.76, 2.7, 1.20, false, 32, 15},
    {"fft_2", 1600, 0, 0.00, 0.70, 2.7, 1.20, false, 32, 16},
    {"fft_a", 1550, 2, 0.10, 0.62, 2.6, 1.15, false, 32, 17},
    {"fft_b", 1550, 2, 0.10, 0.78, 2.8, 1.25, false, 32, 18},
    {"matrix_mult_1", 7200, 0, 0.00, 0.74, 2.7, 1.20, false, 64, 19},
    {"matrix_mult_2", 7200, 0, 0.00, 0.75, 2.7, 1.20, false, 64, 20},
    {"matrix_mult_a", 7000, 5, 0.12, 0.66, 2.6, 1.15, false, 64, 21},
    {"matrix_mult_b", 6800, 5, 0.12, 0.80, 2.8, 1.25, false, 64, 22},
    {"matrix_mult_c", 6800, 5, 0.12, 0.66, 2.6, 1.15, true, 64, 23},
    {"pci_bridge32_a", 1500, 3, 0.14, 0.72, 2.7, 1.20, true, 32, 24},
    {"pci_bridge32_b", 1450, 3, 0.14, 0.58, 2.6, 1.15, true, 32, 25},
    {"superblue11_a", 10500, 8, 0.10, 0.58, 2.6, 1.10, true, 64, 26},
    {"superblue12", 12500, 10, 0.08, 0.80, 2.8, 1.25, false, 64, 27},
    {"superblue14", 9000, 8, 0.10, 0.56, 2.6, 1.10, false, 64, 28},
    {"superblue16_a", 9800, 6, 0.08, 0.62, 2.6, 1.15, true, 64, 29},
    {"superblue19", 8500, 8, 0.10, 0.64, 2.6, 1.15, false, 64, 30},
};

SuiteEntry make_entry(const Profile& p, double scale) {
    SuiteEntry e;
    e.name = p.name;
    e.fence_removed = p.fence_removed;
    e.grid_bins = p.grid_bins;
    GeneratorConfig& g = e.gen;
    g.name = p.name;
    g.seed = p.seed;
    g.num_cells = std::max(200, static_cast<int>(std::lround(p.cells * scale)));
    g.num_macros = p.macros;
    g.macro_area_frac = p.macro_frac;
    g.utilization = p.util;
    g.avg_net_degree = p.avg_deg;
    g.nets_per_cell = p.nets_per_cell;
    g.num_ios = std::max(16, g.num_cells / 100);
    return e;
}

}  // namespace

std::vector<SuiteEntry> ispd2015_suite(double scale) {
    std::vector<SuiteEntry> out;
    for (const Profile& p : kProfiles) out.push_back(make_entry(p, scale));
    return out;
}

std::vector<SuiteEntry> ablation_suite(double scale) {
    // Congestion-prone designs: ablation effects show clearly (on designs
    // with near-zero DRVs the per-design ratios are noise).
    const std::vector<std::string> names = {
        "des_perf_1", "des_perf_a", "edit_dist_a",
        "matrix_mult_b", "matrix_mult_2", "superblue12",
    };
    std::vector<SuiteEntry> out;
    for (const std::string& n : names) out.push_back(suite_entry(n, scale));
    return out;
}

SuiteEntry suite_entry(const std::string& name, double scale) {
    for (const Profile& p : kProfiles) {
        if (name == p.name) return make_entry(p, scale);
    }
    throw std::out_of_range("ispd_suite: unknown design " + name);
}

}  // namespace rdp
