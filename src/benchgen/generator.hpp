#pragma once
// Deterministic synthetic circuit generator — the repo's substitute for the
// ISPD 2015 LEF/DEF benchmarks (see DESIGN.md, Substitutions). Generated
// designs reproduce the statistics routability-driven placement actually
// interacts with:
//   * standard cells with a discrete width distribution on a row/site grid,
//   * fixed macro blocks (row/site aligned, non-overlapping),
//   * boundary IO pads,
//   * a net hypergraph with geometric degree distribution (2-pin dominated,
//     long tail) and cluster-local connectivity (placeable structure),
//   * M2 PG rails per row plus vertical straps.

#include <cstdint>
#include <string>

#include "db/design.hpp"
#include "pinaccess/pg_rails.hpp"

namespace rdp {

struct GeneratorConfig {
    std::string name = "synthetic";
    uint64_t seed = 1;

    int num_cells = 8000;          ///< movable standard cells
    int num_ios = 64;              ///< fixed boundary pads
    int num_macros = 4;
    /// Routing blockage rectangles (capacity holes without placement
    /// blockage), as in the ISPD 2015 "routing blockages" benchmarks.
    int num_routing_blockages = 0;
    double routing_blockage_area_frac = 0.02;
    double macro_area_frac = 0.10; ///< macro area / region area
    double utilization = 0.65;     ///< movable area / free area

    double nets_per_cell = 1.15;
    /// Net degree = 2 + geometric(p); p tuned from this mean (>= 2).
    double avg_net_degree = 2.7;
    int max_net_degree = 32;
    /// Cells per connectivity cluster (index-contiguous communities).
    int cluster_size = 24;
    /// Probability that a net pin escapes its cluster to a random cell.
    double escape_prob = 0.12;
    /// Fraction of nets attached to an IO pad.
    double io_net_frac = 0.02;

    double row_height = 8.0;
    double site_width = 1.0;
    /// Cell width choices in sites (picked uniformly with decreasing
    /// weight); mean width ~2.4 sites.
    int max_cell_sites = 6;

    PGRailConfig rails;
};

/// Generate a complete design (rows and PG rails included).
Design generate_circuit(const GeneratorConfig& cfg);

}  // namespace rdp
