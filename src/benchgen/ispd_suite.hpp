#pragma once
// The 20-design "ISPD 2015-like" suite used by the Table I / Table II
// benches. Each entry mirrors one contest design's name and its *relative*
// character — size ordering, macro-heaviness, utilization (congestion
// pressure) — scaled down so the whole suite places and routes on a CPU in
// minutes. Designs whose fence regions the paper removed are flagged.

#include <string>
#include <vector>

#include "benchgen/generator.hpp"

namespace rdp {

struct SuiteEntry {
    std::string name;
    GeneratorConfig gen;
    bool fence_removed = false;  ///< the dagger (†) designs of Table I
    int grid_bins = 64;          ///< placement/congestion grid per side
};

/// The full 20-design suite. `scale` multiplies cell counts (1.0 gives
/// ~1.5k-12k cells per design; the benches pass smaller scales for smoke
/// runs).
std::vector<SuiteEntry> ispd2015_suite(double scale = 1.0);

/// Subset used by the ablation bench (medium-sized, congested designs).
std::vector<SuiteEntry> ablation_suite(double scale = 1.0);

/// Look up one entry by name (throws std::out_of_range when missing).
SuiteEntry suite_entry(const std::string& name, double scale = 1.0);

}  // namespace rdp
