#include "benchgen/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace rdp {

namespace {

/// Cell width in sites with decreasing weights 1/w (mean ~2.4 for max 6).
int pick_width_sites(Rng& rng, int max_sites) {
    double total = 0.0;
    for (int w = 1; w <= max_sites; ++w) total += 1.0 / w;
    double u = rng.uniform() * total;
    for (int w = 1; w <= max_sites; ++w) {
        u -= 1.0 / w;
        if (u <= 0.0) return w;
    }
    return max_sites;
}

}  // namespace

Design generate_circuit(const GeneratorConfig& cfg) {
    Rng rng(cfg.seed);
    Design d;
    d.name = cfg.name;
    d.row_height = cfg.row_height;
    d.site_width = cfg.site_width;

    // --- size the region ----------------------------------------------------
    // Draw widths first so the region matches the actual movable area.
    std::vector<int> widths(static_cast<size_t>(cfg.num_cells));
    double movable_area = 0.0;
    for (auto& w : widths) {
        w = pick_width_sites(rng, cfg.max_cell_sites);
        movable_area += w * cfg.site_width * cfg.row_height;
    }
    const double free_area = movable_area / std::max(cfg.utilization, 0.05);
    const double total_area =
        free_area / std::max(1.0 - cfg.macro_area_frac, 0.1);
    double side = std::sqrt(total_area);
    // Round to whole rows and sites.
    const int nrows =
        std::max(4, static_cast<int>(std::round(side / cfg.row_height)));
    const int nsites =
        std::max(16, static_cast<int>(std::round(side / cfg.site_width)));
    d.region = {0.0, 0.0, nsites * cfg.site_width, nrows * cfg.row_height};
    d.build_rows();

    // --- macros --------------------------------------------------------------
    // Row/site aligned, non-overlapping, away from the boundary.
    std::vector<Rect> macro_boxes;
    const double macro_total = cfg.macro_area_frac * d.region.area();
    for (int m = 0; m < cfg.num_macros; ++m) {
        const double target = macro_total / std::max(cfg.num_macros, 1);
        const double aspect = rng.uniform(0.6, 1.7);
        double w = std::sqrt(target * aspect);
        double h = std::sqrt(target / aspect);
        // Snap dims to the grid.
        w = std::max(4.0 * cfg.site_width,
                     std::round(w / cfg.site_width) * cfg.site_width);
        h = std::max(2.0 * cfg.row_height,
                     std::round(h / cfg.row_height) * cfg.row_height);
        bool placed = false;
        for (int attempt = 0; attempt < 200 && !placed; ++attempt) {
            const double margin_x = 2.0 * cfg.site_width;
            const double margin_y = 2.0 * cfg.row_height;
            if (d.region.width() - w < 2 * margin_x ||
                d.region.height() - h < 2 * margin_y)
                break;
            double lx = rng.uniform(d.region.lx + margin_x,
                                    d.region.hx - margin_x - w);
            double ly = rng.uniform(d.region.ly + margin_y,
                                    d.region.hy - margin_y - h);
            lx = std::round(lx / cfg.site_width) * cfg.site_width;
            ly = std::round(ly / cfg.row_height) * cfg.row_height;
            const Rect box{lx, ly, lx + w, ly + h};
            bool ok = true;
            for (const Rect& other : macro_boxes) {
                if (box.expanded(2.0 * cfg.row_height).intersects(other)) {
                    ok = false;
                    break;
                }
            }
            if (!ok) continue;
            macro_boxes.push_back(box);
            const int ci =
                d.add_cell("macro_" + std::to_string(m), w, h,
                           CellKind::Macro, box.center());
            // A few macro pins along the bottom edge.
            const int npins = 4 + rng.uniform_int(0, 4);
            for (int p = 0; p < npins; ++p) {
                const double dx = rng.uniform(-w / 2 * 0.9, w / 2 * 0.9);
                d.add_pin(ci, {dx, -h / 2 + cfg.row_height / 2});
            }
            placed = true;
        }
    }

    // --- IO pads on the boundary --------------------------------------------
    std::vector<int> io_cells;
    for (int i = 0; i < cfg.num_ios; ++i) {
        const int edge = rng.uniform_int(0, 3);
        Vec2 p;
        switch (edge) {
            case 0: p = {d.region.lx, rng.uniform(d.region.ly, d.region.hy)}; break;
            case 1: p = {d.region.hx, rng.uniform(d.region.ly, d.region.hy)}; break;
            case 2: p = {rng.uniform(d.region.lx, d.region.hx), d.region.ly}; break;
            default: p = {rng.uniform(d.region.lx, d.region.hx), d.region.hy}; break;
        }
        const int ci = d.add_cell("io_" + std::to_string(i), cfg.site_width,
                                  cfg.site_width, CellKind::Fixed, p);
        d.add_pin(ci, {0.0, 0.0});
        io_cells.push_back(ci);
    }

    // --- standard cells -------------------------------------------------------
    std::vector<int> std_cells;
    std_cells.reserve(static_cast<size_t>(cfg.num_cells));
    for (int i = 0; i < cfg.num_cells; ++i) {
        const double w = widths[static_cast<size_t>(i)] * cfg.site_width;
        const Vec2 p{rng.uniform(d.region.lx + w / 2, d.region.hx - w / 2),
                     rng.uniform(d.region.ly + cfg.row_height / 2,
                                 d.region.hy - cfg.row_height / 2)};
        std_cells.push_back(d.add_cell("c" + std::to_string(i), w,
                                       cfg.row_height, CellKind::Movable, p));
    }

    // --- nets ------------------------------------------------------------------
    const int num_nets =
        std::max(1, static_cast<int>(cfg.nets_per_cell * cfg.num_cells));
    const int num_clusters =
        std::max(1, cfg.num_cells / std::max(cfg.cluster_size, 2));
    // Geometric tail: degree = 2 + geometric1(p) - 1 with mean avg_net_degree.
    const double tail_mean = std::max(cfg.avg_net_degree - 2.0, 0.05);
    const double p_geo = std::min(1.0, 1.0 / (tail_mean + 1.0));

    auto pick_cell = [&](int cluster) {
        if (rng.bernoulli(cfg.escape_prob))
            return std_cells[static_cast<size_t>(
                rng.uniform_int(0, cfg.num_cells - 1))];
        const int lo = cluster * cfg.cluster_size;
        const int hi =
            std::min(lo + cfg.cluster_size, cfg.num_cells) - 1;
        return std_cells[static_cast<size_t>(rng.uniform_int(lo, hi))];
    };

    for (int n = 0; n < num_nets; ++n) {
        int degree = 1 + cfg.max_net_degree;
        while (degree > cfg.max_net_degree)
            degree = 2 + (rng.geometric1(p_geo) - 1);
        const int cluster = rng.uniform_int(0, num_clusters - 1);

        std::vector<int> members;
        const bool io_net = !io_cells.empty() && rng.bernoulli(cfg.io_net_frac);
        if (io_net) {
            members.push_back(io_cells[static_cast<size_t>(
                rng.uniform_int(0, static_cast<int>(io_cells.size()) - 1))]);
        }
        int guard = 0;
        while (static_cast<int>(members.size()) < degree && guard++ < 200) {
            const int c = pick_cell(cluster);
            if (std::find(members.begin(), members.end(), c) == members.end())
                members.push_back(c);
        }
        if (members.size() < 2) continue;

        const int net = d.add_net("n" + std::to_string(n));
        for (int ci : members) {
            const Cell& c = d.cells[static_cast<size_t>(ci)];
            // Pin offset inside the cell box (snapped-ish toward the middle
            // rows of the cell where real pins sit).
            const Vec2 off{rng.uniform(-c.width / 2 * 0.8, c.width / 2 * 0.8),
                           rng.uniform(-c.height / 2 * 0.6,
                                       c.height / 2 * 0.6)};
            const int pin = d.add_pin(ci, off);
            d.connect(net, pin);
        }
    }

    // Some macro pins join nets too (connect each macro pin that exists to a
    // random net's cluster): attach macro pins to fresh 2-pin nets.
    for (int ci = 0; ci < d.num_cells(); ++ci) {
        const Cell& c = d.cells[static_cast<size_t>(ci)];
        if (!c.is_macro()) continue;
        for (int pin : c.pins) {
            if (d.pins[static_cast<size_t>(pin)].net != -1) continue;
            const int net = d.add_net("mn" + std::to_string(pin));
            d.connect(net, pin);
            const int other = std_cells[static_cast<size_t>(
                rng.uniform_int(0, cfg.num_cells - 1))];
            const int opin = d.add_pin(other, {0.0, 0.0});
            d.connect(net, opin);
        }
    }

    // Routing blockages: capacity holes that do not block placement.
    for (int b = 0; b < cfg.num_routing_blockages; ++b) {
        const double target = cfg.routing_blockage_area_frac *
                              d.region.area() /
                              std::max(cfg.num_routing_blockages, 1);
        const double aspect = rng.uniform(0.5, 2.0);
        const double w = std::min(std::sqrt(target * aspect),
                                  d.region.width() * 0.5);
        const double h = std::min(std::sqrt(target / aspect),
                                  d.region.height() * 0.5);
        const double lx = rng.uniform(d.region.lx, d.region.hx - w);
        const double ly = rng.uniform(d.region.ly, d.region.hy - h);
        d.routing_blockages.push_back({lx, ly, lx + w, ly + h});
    }

    build_pg_rails(d, cfg.rails);
    return d;
}

}  // namespace rdp
