#pragma once
// Routability-driven global placement framework (paper Fig. 2).
//
// Stage 1 — wirelength-driven GP (the Xplace role): Nesterov on
//   min sum WA_e + lambda_1 D(x, y)
// with filler cells, a decaying WA gamma, and a growing lambda_1, until the
// density overflow target is met.
//
// Stage 2 — routability-driven GP (modes other than WirelengthOnly): the
// outer loop of Fig. 2 — route, build the Eq. (3) congestion map, update
// cell inflation (MCI or a baseline scheme), update the DPA density term,
// rebuild the congestion Poisson field, then run inner Nesterov iterations
// on Eq. (5); repeat until the congestion stops improving.
//
// Finally: Tetris legalization + Abacus refinement + greedy detailed
// placement (the Xplace-Route legalization/DP role).

#include <cstdint>
#include <vector>

#include "db/design.hpp"
#include "density/electro_density.hpp"
#include "congestion/net_moving.hpp"
#include "inflation/baseline_inflation.hpp"
#include "inflation/momentum_inflation.hpp"
#include "legal/detailed_place.hpp"
#include "legal/tetris.hpp"
#include "pinaccess/rail_select.hpp"
#include "recover/durable_checkpoint.hpp"
#include "recover/recover.hpp"
#include "router/global_router.hpp"

namespace rdp {

/// Which placer of Table I to emulate.
enum class PlacerMode {
    WirelengthOnly,  ///< "Xplace": no routability stage
    RouteBaseline,   ///< "Xplace-Route"-like: monotone inflation + static PG
    Ours,            ///< the paper's framework (MCI/DC/DPA per toggles)
};

struct PlacerConfig {
    PlacerMode mode = PlacerMode::Ours;
    // Technique toggles, honored in Ours mode (Table II ablation rows).
    bool enable_mci = true;
    bool enable_dc = true;
    bool enable_dpa = true;

    /// Bins per side for density, G-cells, and congestion (power of two;
    /// the paper keeps bins and G-cells the same size).
    int grid_bins = 64;
    DensityConfig density;
    /// Fraction of spare whitespace filled with filler cells.
    double filler_ratio = 0.8;

    /// WA gamma schedule, in units of max(bin_w, bin_h).
    double gamma_frac = 6.0;
    double gamma_min_frac = 0.5;
    double gamma_decay = 0.99;
    /// lambda_1 growth per Nesterov iteration (ePlace-style schedule).
    double lambda1_growth = 1.05;

    int max_wl_iters = 400;
    double stop_overflow = 0.08;

    // --- routability stage -------------------------------------------------
    int max_route_iters = 16;  ///< outer (route) iterations
    int inner_iters = 12;      ///< Nesterov steps per outer iteration
    /// Outer loop stops after this many consecutive non-improving
    /// iterations of the congestion penalty.
    int stop_patience = 3;
    /// Fraction of the filler area that inflation may consume (inflated
    /// cell area is taken from the fillers, keeping density feasible).
    double inflation_budget_frac = 1.2;
    /// A routability snapshot replaces the kept-best only when it improves
    /// the severity-weighted overflow by this relative margin; marginal
    /// "improvements" late in the loop usually just trade wirelength.
    double keep_best_margin = 0.03;
    /// Damping applied to the Eq. (10) lambda_2 (the congestion gradients
    /// act on a map that is frozen for a whole outer iteration; full
    /// strength overshoots between router calls).
    double dc_weight = 0.4;
    /// Damping applied to the Eq. (14) D^PG charge.
    double dpa_weight = 0.4;
    /// lambda_1 is re-initialized at the routability stage entry to this
    /// multiple of ||grad W||_1 / ||grad D||_1 (the stage-1 schedule has
    /// grown it far past what a converged placement needs).
    double route_lambda1_boost = 0.5;
    RouterConfig router;
    NetMovingConfig netmove;
    /// Congestion gradient model for the DC term: false = the paper's net
    /// moving (default), true = the prior bounding-box penalty [2]
    /// (compared in the ablation_dc_model bench).
    bool use_bbox_dc_model = false;
    /// Congestion source for the routability loop: false = global router
    /// in the loop (the paper), true = RUDY/PinRUDY estimation (as in
    /// DATE'21 [4]; compared in the ablation_congestion_source bench).
    bool use_rudy_congestion = false;
    /// EXTENSION: run the flip-based pin-access refinement after detailed
    /// placement (the DP-stage optimization of the paper's refs [11-13]).
    bool enable_pin_access_dp = false;
    MomentumInflationConfig mci;
    BaselineInflationConfig baseline_inflation;
    RailSelectConfig rail_select;
    /// Weight of the static (Xplace-Route style) PG density term.
    double static_pg_weight = 0.15;

    TetrisConfig tetris;
    DetailedPlaceConfig dp;

    /// Fault-tolerant pipeline runner knobs (DESIGN.md §11): checkpoints,
    /// divergence thresholds, bounded retries, stage budgets. With the
    /// defaults a clean run is bitwise identical to recovery disabled.
    recover::RecoverConfig recover;

    /// Durable checkpoint/resume layer (DESIGN.md §16): journal directory,
    /// stage-1 save cadence, and resume request. RDP_CHECKPOINT_DIR /
    /// RDP_CHECKPOINT_EVERY / RDP_RESUME override these; the layer stays
    /// off while the directory is empty, and a resumed run finishes
    /// bitwise identical to the uninterrupted one.
    recover::DurableOptions durable;

    uint64_t seed = 1;
    bool verbose = false;
};

struct PlaceResult {
    Design placed;  ///< final legal placement (fillers removed)
    double hpwl_gp = 0.0;
    double hpwl_final = 0.0;
    double place_seconds = 0.0;
    int wl_iters = 0;
    int route_outer_iters = 0;
    LegalizeStats legal_stats;
    DetailedPlaceStats dp_stats;
    std::vector<double> overflow_history;    ///< stage 1 density overflow
    std::vector<double> congestion_history;  ///< outer-loop total overflow
    std::vector<double> penalty_history;     ///< C(x, y) per outer iteration
    /// Outer iteration whose snapshot the routability stage restored
    /// (-1 = entry state; see RoutabilityStats::best_iter).
    int route_best_iter = -1;
    /// Recovery and degradation events across all guarded stages; empty on
    /// a clean run.
    recover::RecoveryReport recovery;
};

class GlobalPlacer {
public:
    explicit GlobalPlacer(PlacerConfig cfg = {}) : cfg_(std::move(cfg)) {}

    const PlacerConfig& config() const { return cfg_; }

    /// Place a design. The input is copied; the result contains the final
    /// legalized design with the original cell count (fillers stripped).
    PlaceResult place(const Design& input) const;

    /// Append filler cells to a working copy (exposed for tests).
    /// Returns the index of the first filler cell (== input num_cells).
    static int add_fillers(Design& d, const PlacerConfig& cfg, uint64_t seed);

private:
    PlacerConfig cfg_;
};

}  // namespace rdp
