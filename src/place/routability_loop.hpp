#pragma once
// Stage 2 of the framework: the routability-driven outer loop of paper
// Fig. 2. Split from GlobalPlacer so it can be driven directly by tests
// and by the ablation bench.

#include <memory>

#include "place/global_placer.hpp"
#include "place/nesterov.hpp"
#include "place/objective.hpp"
#include "recover/recover.hpp"

namespace rdp {

struct RoutabilityStats {
    int outer_iters = 0;
    std::vector<double> total_overflow;   ///< router overflow per outer iter
    std::vector<double> penalty;          ///< C(x, y) per outer iter
    std::vector<double> mean_inflation;   ///< mean ratio over movables
    /// Outer iteration whose snapshot the stage restored at the end
    /// (-1 = the entry state survived as best).
    int best_iter = -1;
    /// Inflation-budget bookkeeping restored together with the snapshot:
    /// the effective ratios and the PG/DPA extra-area charge the restored
    /// positions were actually scored with (not the last iteration's).
    std::vector<double> final_ratios;
    double final_extra_area = 0.0;
    /// Recovery/degradation events of this stage (merged into
    /// PlaceResult::recovery by GlobalPlacer).
    recover::RecoveryReport recovery;
    /// Incremental-routing reconciliation totals over the stage's router
    /// invocations (reporting only; see RouteResult::inc_*). With
    /// RDP_INCREMENTAL=0 rerouted == total.
    long long route_conns_total = 0;
    long long route_conns_rerouted = 0;
};

/// Run the routability-driven stage on a working design (fillers included;
/// `movable` lists the optimizer's cell indices). Mutates cell positions.
/// `selected_rails` is the PG-rail pre-selection (Fig. 2 first box).
/// `first_filler` is the index of the first filler cell (== d.num_cells()
/// when there are none): inflation is budgeted against the filler area —
/// inflated cell area is taken from the fillers so the total charge stays
/// feasible and the density term cannot diverge.
///
/// `durable` (optional) journals a PipelineSnapshot at every outer
/// iteration boundary; `resume` (optional, stage == kStageRoutability)
/// restarts the loop from such a snapshot — positions, inflation, maps,
/// router relaxations, and best-so-far state all restored, incremental
/// route/RUDY caches invalidated exactly as on recovery rollbacks — and
/// continues to a bitwise-identical final placement (DESIGN.md §16).
RoutabilityStats run_routability_stage(
    Design& d, const std::vector<int>& movable, PlacementObjective& obj,
    const PlacerConfig& cfg, const std::vector<PGRail>& selected_rails,
    int first_filler, recover::DurableCheckpointer* durable = nullptr,
    const recover::PipelineSnapshot* resume = nullptr);

/// Budget raw inflation ratios against the filler whitespace: scales the
/// per-cell inflation excesses so their area growth plus `extra_area`
/// (the PG density charge) does not exceed the usable filler area, and
/// shrinks the fillers by the total consumed area. Returns the filler
/// shrink ratio. `ratios` is modified in place (fillers' entries are
/// overwritten).
double budget_inflation(const Design& d, int first_filler,
                        std::vector<double>& ratios,
                        double usable_filler_frac, double extra_area = 0.0);

/// Create the inflation scheme matching mode/toggles (exposed for tests).
std::unique_ptr<InflationScheme> make_inflation_scheme(const PlacerConfig& cfg,
                                                       int num_cells);

}  // namespace rdp
