#include "place/nesterov.hpp"

#include <cassert>
#include <cmath>

#include "util/check.hpp"

namespace rdp {

NesterovSolver::NesterovSolver(std::vector<Vec2> initial, NesterovConfig cfg)
    : cfg_(cfg), u_(initial), v_(std::move(initial)) {}

void NesterovSolver::step(const std::vector<Vec2>& grad,
                          const std::function<Vec2(size_t, Vec2)>& project) {
    RDP_ASSERT(grad.size() == v_.size(),
               "gradient has " << grad.size() << " entries for " << v_.size()
                               << " solver points");
    assert(grad.size() == v_.size());
    const size_t n = v_.size();

    // Steplength: BB inverse-Lipschitz estimate once history exists, with
    // growth clamped so one noisy estimate cannot blow up the trajectory.
    double alpha = cfg_.initial_step;
    if (have_prev_) {
        double dv2 = 0.0, dg2 = 0.0;
        for (size_t i = 0; i < n; ++i) {
            dv2 += (v_[i] - prev_v_[i]).norm2();
            dg2 += (grad[i] - prev_g_[i]).norm2();
        }
        if (dg2 > 0.0) alpha = std::sqrt(dv2 / dg2);
        if (!(alpha > 0.0) || !std::isfinite(alpha)) alpha = cfg_.initial_step;
        if (last_alpha_ > 0.0)
            alpha = std::min(alpha, cfg_.max_step_growth * last_alpha_);
    }
    alpha = std::clamp(alpha, cfg_.min_step, cfg_.max_step);
    RDP_CHECK_FINITE(alpha, "Barzilai-Borwein steplength");
    last_alpha_ = alpha;

    // Adaptive restart (O'Donoghue & Candes): when the gradient points
    // along the momentum direction, the momentum is carrying the iterate
    // uphill — drop it. Prevents the oscillation/divergence BB steps can
    // trigger on ill-conditioned objectives.
    if (have_prev_) {
        double along = 0.0;
        for (size_t i = 0; i < n; ++i) along += grad[i].dot(v_[i] - u_[i]);
        if (along > 0.0) a_ = 1.0;
    }

    prev_v_ = v_;
    prev_g_ = grad;
    have_prev_ = true;

    // u_{k+1} = v_k - alpha grad; v_{k+1} = u_{k+1} + coef (u_{k+1} - u_k).
    const double a_next = (1.0 + std::sqrt(4.0 * a_ * a_ + 1.0)) / 2.0;
    const double coef = (a_ - 1.0) / a_next;
    for (size_t i = 0; i < n; ++i) {
        Vec2 u_next = v_[i] - grad[i] * alpha;
        if (project) u_next = project(i, u_next);
        Vec2 v_next = u_next + (u_next - u_[i]) * coef;
        if (project) v_next = project(i, v_next);
        u_[i] = u_next;
        v_[i] = v_next;
    }
    a_ = a_next;
    ++k_;
}

recover::OptimizerSnapshot NesterovSolver::snapshot() const {
    recover::OptimizerSnapshot s;
    s.u = u_;
    s.v = v_;
    s.prev_v = prev_v_;
    s.prev_g = prev_g_;
    s.a = a_;
    s.k = k_;
    s.last_alpha = last_alpha_;
    s.have_prev = have_prev_;
    return s;
}

void NesterovSolver::restore(const recover::OptimizerSnapshot& s) {
    u_ = s.u;
    v_ = s.v;
    prev_v_ = s.prev_v;
    prev_g_ = s.prev_g;
    a_ = s.a;
    k_ = s.k;
    last_alpha_ = s.last_alpha;
    have_prev_ = s.have_prev;
}

}  // namespace rdp
