#include "place/routability_loop.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "audit/invariant_audit.hpp"
#include "congestion/rudy.hpp"
#include "pinaccess/dynamic_density.hpp"
#include "recover/checkpoint.hpp"
#include "recover/durable_checkpoint.hpp"
#include "recover/fault_injection.hpp"
#include "recover/kill_points.hpp"
#include "recover/stage_guard.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace rdp {

std::unique_ptr<InflationScheme> make_inflation_scheme(const PlacerConfig& cfg,
                                                       int num_cells) {
    if (cfg.mode == PlacerMode::Ours && cfg.enable_mci)
        return std::make_unique<MomentumInflation>(num_cells, cfg.mci);
    // Baseline framework (Xplace-Route-like) and the no-MCI ablation rows
    // use the monotone historical scheme the paper attributes to [8]/[9].
    return std::make_unique<MonotoneInflation>(num_cells,
                                               cfg.baseline_inflation);
}

double budget_inflation(const Design& d, int first_filler,
                        std::vector<double>& ratios,
                        double usable_filler_frac, double extra_area) {
    double raw_extra = 0.0;
    for (int i = 0; i < first_filler; ++i) {
        const Cell& c = d.cells[static_cast<size_t>(i)];
        if (!c.movable()) continue;
        raw_extra += c.area() * (ratios[static_cast<size_t>(i)] - 1.0);
    }
    double filler_area = 0.0;
    for (int i = first_filler; i < d.num_cells(); ++i)
        filler_area += d.cells[static_cast<size_t>(i)].area();

    // The PG density charge comes off the top of the budget.
    const double budget = std::max(
        usable_filler_frac * filler_area - extra_area, 0.0);
    if (raw_extra > budget && raw_extra > 0.0) {
        const double scale = budget / raw_extra;
        for (int i = 0; i < first_filler; ++i) {
            const Cell& c = d.cells[static_cast<size_t>(i)];
            if (!c.movable()) continue;
            auto& r = ratios[static_cast<size_t>(i)];
            r = 1.0 + scale * (r - 1.0);
        }
    }
    // Fillers shrink by exactly the area the real cells and the PG charge
    // gained (never below a small floor).
    const double consumed =
        std::min(std::max(raw_extra, 0.0), budget) +
        std::min(extra_area, usable_filler_frac * filler_area);
    const double filler_ratio =
        filler_area > 0.0
            ? std::max(1.0 - consumed / filler_area, 0.05)
            : 1.0;
    for (int i = first_filler; i < d.num_cells(); ++i)
        ratios[static_cast<size_t>(i)] = filler_ratio;
    return filler_ratio;
}

namespace {

constexpr const char* kStage = "routability-gp";

/// Physical upper bound on any in-region WA wirelength: one die span
/// (width + height) per routed net. The explosion threshold is floored at
/// a multiple of this so legitimate many-fold wirelength growth (early
/// spreading) can never false-positive.
double die_wirelength_bound(const Design& d) {
    int nets = 0;
    for (const Net& n : d.nets)
        if (n.degree() >= 2) ++nets;
    return (d.region.width() + d.region.height()) *
           static_cast<double>(std::max(nets, 1));
}

/// Recovery-side mirror of audit::check_congestion_map for runs with the
/// audits compiled out or disabled: same predicate, RecoverableError
/// instead of AuditFailure.
bool find_invalid_gcell(const CongestionMap& cmap, std::string& msg) {
    const GridF& dmd = cmap.demand();
    const GridF& cap = cmap.capacity();
    for (int y = 0; y < dmd.height(); ++y) {
        for (int x = 0; x < dmd.width(); ++x) {
            const double dv = dmd.at(x, y);
            const double cv = cap.at(x, y);
            if (std::isfinite(dv) && dv >= 0.0 && std::isfinite(cv) &&
                cv >= 0.0)
                continue;
            std::ostringstream oss;
            oss << "demand/capacity at G-cell (" << x << ", " << y
                << ") is invalid: " << dv << " / " << cv;
            msg = oss.str();
            return true;
        }
    }
    return false;
}

/// True when the last `flips` deltas of `window` alternate in sign and
/// each swings by at least `amplitude` of the smaller endpoint — the
/// outer-loop overflow is bouncing instead of converging.
bool overflow_oscillates(const std::vector<double>& window, int flips,
                         double amplitude) {
    if (static_cast<int>(window.size()) < flips + 1) return false;
    const size_t n = window.size();
    double prev_sign = 0.0;
    for (int i = 0; i < flips; ++i) {
        const double a = window[n - 2 - static_cast<size_t>(i)];
        const double b = window[n - 1 - static_cast<size_t>(i)];
        const double delta = b - a;
        const double base = std::max(std::min(a, b), 1e-12);
        if (!(std::abs(delta) >= amplitude * base)) return false;
        const double sign = delta > 0.0 ? 1.0 : -1.0;
        if (i > 0 && sign == prev_sign) return false;
        prev_sign = sign;
    }
    return true;
}

}  // namespace

RoutabilityStats run_routability_stage(
    Design& d, const std::vector<int>& movable, PlacementObjective& obj,
    const PlacerConfig& cfg, const std::vector<PGRail>& selected_rails,
    int first_filler, recover::DurableCheckpointer* durable,
    const recover::PipelineSnapshot* resume) {
    if (resume != nullptr && resume->stage != recover::kStageRoutability)
        resume = nullptr;
    const AuditStageScope audit_scope(kStage);
    RoutabilityStats stats;
    recover::StageGuard guard(kStage, cfg.recover, &stats.recovery);
    const BinGrid& grid = obj.grid();

    // Recovery-adjustable knobs. On a clean run they keep their configured
    // values for the whole stage, so behavior is identical to an unguarded
    // loop; the recovery ladder below is the only writer.
    RouterConfig router_cfg = cfg.router;
    auto router = std::make_unique<GlobalRouter>(grid, router_cfg);
    NesterovConfig nes_cfg;

    // Incremental congestion estimation (RDP_INCREMENTAL, default on):
    // persistent router / RUDY caches threaded through every estimation of
    // this stage. Pure performance: route(d, &state) and the incremental
    // RUDY maps are bitwise identical to their from-scratch counterparts,
    // so the knob changes wall clock only, never results. RDP_REBUILD_EPOCH
    // bounds cache lifetime with a deterministic periodic full rebuild
    // (0 disables the epoch; see DESIGN.md §12).
    const bool incremental = env::flag_or("RDP_INCREMENTAL", true);
    IncrementalRouteState inc_route;
    inc_route.rebuild_epoch = static_cast<int>(
        env::int_or("RDP_REBUILD_EPOCH", 16, 0, 1 << 20));
    IncrementalRudyState inc_rudy;
    double lambda1_growth = cfg.lambda1_growth;

    CongestionField field(grid);

    bool dc = cfg.mode == PlacerMode::Ours && cfg.enable_dc;
    bool dpa = cfg.mode == PlacerMode::Ours && cfg.enable_dpa;

    auto scheme = make_inflation_scheme(cfg, d.num_cells());
    std::vector<double> effective_ratios(
        static_cast<size_t>(d.num_cells()), 1.0);
    obj.set_inflation(&effective_ratios);

    const GridF rail_area = rail_area_per_bin(selected_rails, grid);
    // Static PG density (Xplace-Route style): fixed before the loop.
    GridF extra = static_pg_density(rail_area, cfg.static_pg_weight);
    obj.set_extra_density(&extra);

    // Optimizer state: continue from the stage-1 result.
    std::vector<Vec2> pos(movable.size());
    for (size_t i = 0; i < movable.size(); ++i)
        pos[i] = d.cells[static_cast<size_t>(movable[i])].pos;

    auto project = [&](size_t slot, Vec2 p) {
        const Cell& c = d.cells[static_cast<size_t>(movable[slot])];
        const Rect r = d.region;
        return Vec2{std::clamp(p.x, r.lx + c.width / 2, r.hx - c.width / 2),
                    std::clamp(p.y, r.ly + c.height / 2, r.hy - c.height / 2)};
    };

    double best_metric = std::numeric_limits<double>::max();
    double best_overflow = std::numeric_limits<double>::max();
    std::vector<Vec2> best_pos = pos;
    // Bookkeeping paired with best_pos: the snapshot is taken before the
    // iteration's inflation update, so the state it was scored with is the
    // *current* ratios/extra charge — restored together at stage end.
    std::vector<double> best_ratios = effective_ratios;
    double best_extra_area = grid_sum(extra);
    InflationSnapshot best_inflation = scheme->snapshot();
    int best_iter = -1;
    int stall = 0;
    CongestionMap cmap;
    obj.set_lambda2_scale(cfg.dc_weight);

    // Fresh lambda_1 for the stage: the stage-1 schedule leaves it orders
    // of magnitude above the gradient balance a converged placement needs.
    // A resumed run restores the serialized lambda_1 below instead.
    if (resume == nullptr) {
        std::vector<Vec2> grad0;
        obj.set_lambda1(0.0);
        const ObjectiveTerms t0 = obj.evaluate(d, movable, pos, grad0);
        const double ratio = t0.density_grad_l1 > 0.0
                                 ? t0.wl_grad_l1 / t0.density_grad_l1
                                 : 1.0;
        obj.set_lambda1(cfg.route_lambda1_boost * ratio);
    }

    const double die_bound = die_wirelength_bound(d);
    recover::StageCheckpoint ckpt;
    std::vector<double> osc_window;  // severity per iter, divergence window
    double last_wl = 0.0;            // last healthy WA total (explosion base)
    bool use_ckpt_cmap = false;      // CorruptedDemand fallback, one-shot

    int outer = 0;
    if (resume != nullptr) {
        // Durable resume (DESIGN.md §16): restore every input the loop
        // body reads — positions, schedules, inflation bookkeeping, the
        // best-so-far snapshot, router relaxations, maps, and divergence
        // history — then drop the incremental caches exactly as a recovery
        // rollback does (they reconcile against positions this process
        // never routed). The remaining iterations are then bitwise
        // identical to the uninterrupted run.
        outer = resume->iter;
        pos = resume->pos;
        for (size_t i = 0; i < movable.size(); ++i)
            d.cells[static_cast<size_t>(movable[i])].pos = pos[i];
        obj.set_lambda1(resume->lambda1);
        // Stage 1 was skipped, so the objective still carries its
        // construction-time gamma, not the decayed stage-1 result.
        obj.set_gamma(resume->gamma);
        lambda1_growth = resume->lambda1_growth;
        nes_cfg.initial_step = resume->initial_step;
        last_wl = resume->last_wl;
        effective_ratios = resume->ratios;
        scheme->restore(resume->inflation);
        extra = resume->extra;  // same object obj points at; content swap
        best_pos = resume->best_pos;
        best_ratios = resume->best_ratios;
        best_inflation = resume->best_inflation;
        best_metric = resume->best_metric;
        best_overflow = resume->best_overflow;
        best_extra_area = resume->best_extra_area;
        best_iter = resume->best_iter;
        stall = resume->stall;
        osc_window = resume->osc_window;
        stats.outer_iters = resume->iter;
        dc = resume->dc;
        dpa = resume->dpa;
        use_ckpt_cmap = resume->use_ckpt_cmap;
        router_cfg.overflow_penalty = resume->router_overflow_penalty;
        if (resume->router_layer_capacity.size() ==
            router_cfg.layers.size())
            for (size_t i = 0; i < router_cfg.layers.size(); ++i)
                router_cfg.layers[i].capacity =
                    resume->router_layer_capacity[i];
        router = std::make_unique<GlobalRouter>(grid, router_cfg);
        if (resume->cmap_demand.width() > 0)
            cmap = CongestionMap(grid, resume->cmap_demand,
                                 resume->cmap_capacity);
        inc_route.invalidate();
        inc_rudy.invalidate();
        RDP_LOG_INFO() << "resumed " << kStage << " at outer iteration "
                       << outer;
    }

    // Recovery ladder. Returns false once retries are exhausted: the loop
    // then stops and the stage finishes on its best snapshot.
    auto apply_recovery = [&](recover::FaultKind kind,
                              const char* what) -> bool {
        using recover::FaultKind;
        if (!guard.allow_retry(kind, outer, what)) {
            guard.degrade(kind, outer,
                          "retries exhausted; finishing on the best"
                          " snapshot");
            return false;
        }
        switch (kind) {
            case FaultKind::RouterNoProgress: {
                // Relax the router capacity model: cheaper overflow and
                // more effective tracks let the negotiation move again.
                router_cfg.overflow_penalty *= cfg.recover.router_relax;
                for (LayerSpec& l : router_cfg.layers)
                    l.capacity /= cfg.recover.router_relax;
                router = std::make_unique<GlobalRouter>(grid, router_cfg);
                // The relaxed config changes the cached routes' cost model;
                // the config key would force the rebuild anyway, but drop
                // the cache explicitly.
                inc_route.invalidate();
                std::ostringstream oss;
                oss << "overflow penalty -> " << router_cfg.overflow_penalty
                    << ", capacity factors x"
                    << 1.0 / cfg.recover.router_relax;
                guard.record(kind, outer, "relax-router", oss.str());
                break;
            }
            case FaultKind::CorruptedDemand: {
                // The corruption may live in the persistent incremental
                // caches (that is exactly what the incremental-route
                // auditor detects), so the retry must never reuse them.
                inc_route.invalidate();
                inc_rudy.invalidate();
                // First retry re-routes (transient corruption); further
                // ones fall back to the last-good checkpointed map.
                if (guard.retries_used() > 1 && ckpt.valid() &&
                    ckpt.cmap.demand().width() > 0) {
                    use_ckpt_cmap = true;
                    guard.record(kind, outer, "fallback-demand",
                                 "using the last-good congestion map of"
                                 " iteration " + std::to_string(ckpt.iter));
                } else {
                    guard.record(kind, outer, "reroute",
                                 "re-running congestion estimation");
                }
                break;
            }
            case FaultKind::CorruptedBudget: {
                if (ckpt.valid()) {
                    effective_ratios = ckpt.ratios;
                    scheme->restore(ckpt.inflation);
                }
                guard.record(kind, outer, "reset-inflation",
                             "restored checkpoint inflation bookkeeping");
                break;
            }
            default: {
                // GradientNaN / HpwlExplosion / OverflowOscillation /
                // AuditViolation: roll back to the checkpoint and damp the
                // schedule that drove the divergence. The incremental
                // caches were reconciled against the *failed* positions;
                // a restored checkpoint must never be scored against them.
                inc_route.invalidate();
                inc_rudy.invalidate();
                if (ckpt.valid()) {
                    pos = ckpt.pos;
                    for (size_t i = 0; i < movable.size(); ++i)
                        d.cells[static_cast<size_t>(movable[i])].pos =
                            pos[i];
                    obj.set_lambda1(ckpt.lambda1);
                    effective_ratios = ckpt.ratios;
                    scheme->restore(ckpt.inflation);
                }
                nes_cfg.initial_step *= cfg.recover.step_shrink;
                lambda1_growth =
                    1.0 + (lambda1_growth - 1.0) * cfg.recover.lambda_tighten;
                ++stats.recovery.rollbacks;
                std::ostringstream oss;
                oss << "restored checkpoint of outer iteration " << ckpt.iter
                    << "; step x" << cfg.recover.step_shrink
                    << ", lambda1 growth -> " << lambda1_growth;
                guard.record(kind, outer, "rollback", oss.str());
                if (guard.retries_used() >= cfg.recover.max_retries &&
                    (dc || dpa)) {
                    // Last rung: skip the optional congestion-directed
                    // terms for the rest of the stage.
                    dc = false;
                    dpa = false;
                    obj.set_congestion(nullptr, nullptr);
                    extra = static_pg_density(rail_area,
                                              cfg.static_pg_weight);
                    obj.set_extra_density(&extra);
                    guard.record(kind, outer, "skip-optional",
                                 "disabled net-moving DC and DPA for the"
                                 " rest of the stage");
                }
                break;
            }
        }
        return true;
    };

    while (outer < cfg.max_route_iters) {
        if (guard.over_budget(outer)) break;

        // Checkpoint the outer boundary: pure copies of the state a
        // rollback restores, captured only while recovery is active.
        if (guard.active()) {
            ckpt.iter = outer;
            ckpt.pos = pos;
            ckpt.lambda1 = obj.lambda1();
            ckpt.ratios = effective_ratios;
            ckpt.extra_area = grid_sum(extra);
            ckpt.inflation = scheme->snapshot();
            ckpt.cmap = cmap;  // last good map (empty before iteration 0)
            ckpt.wirelength = last_wl;
        }
        // Durable journal entry at every outer boundary: an outer
        // iteration routes the whole design, so the snapshot cost is
        // noise against the body it fronts.
        if (durable != nullptr && durable->enabled()) {
            recover::PipelineSnapshot snap;
            snap.stage = recover::kStageRoutability;
            snap.iter = outer;
            snap.pos = pos;
            snap.lambda1 = obj.lambda1();
            snap.gamma = obj.gamma();
            snap.lambda1_growth = lambda1_growth;
            snap.initial_step = nes_cfg.initial_step;
            snap.last_wl = last_wl;
            snap.ratios = effective_ratios;
            snap.inflation = scheme->snapshot();
            snap.best_pos = best_pos;
            snap.best_ratios = best_ratios;
            snap.best_inflation = best_inflation;
            snap.best_metric = best_metric;
            snap.best_overflow = best_overflow;
            snap.best_extra_area = best_extra_area;
            snap.best_iter = best_iter;
            snap.stall = stall;
            snap.dc = dc;
            snap.dpa = dpa;
            snap.use_ckpt_cmap = use_ckpt_cmap;
            snap.router_overflow_penalty = router_cfg.overflow_penalty;
            snap.router_layer_capacity.reserve(router_cfg.layers.size());
            for (const LayerSpec& l : router_cfg.layers)
                snap.router_layer_capacity.push_back(l.capacity);
            snap.extra = extra;
            if (cmap.demand().width() > 0) {
                snap.cmap_demand = cmap.demand();
                snap.cmap_capacity = cmap.capacity();
            }
            snap.osc_window = osc_window;
            durable->save(snap);
        }
        recover::crash::maybe_kill("route-mid");
        // Stats entries of a failed attempt are rolled back with it.
        const size_t mark_overflow = stats.total_overflow.size();
        const size_t mark_inflation = stats.mean_inflation.size();
        const size_t mark_penalty = stats.penalty.size();

        try {
            // 1. Congestion estimation on current positions -> map (Eq. 3):
            //    a full global route (the paper) or RUDY (router-free).
            int rrr_executed = 0;
            int rrr_stalled = 0;
            if (use_ckpt_cmap && ckpt.valid() &&
                ckpt.cmap.demand().width() > 0) {
                use_ckpt_cmap = false;
                cmap = ckpt.cmap;
            } else if (cfg.use_rudy_congestion) {
                cmap = rudy_congestion(d, grid, cfg.router, {},
                                       incremental ? &inc_rudy : nullptr);
            } else {
                const RouteResult rr =
                    router->route(d, incremental ? &inc_route : nullptr);
                cmap = rr.congestion;
                rrr_executed = rr.rrr_rounds_executed;
                rrr_stalled = rr.rrr_rounds_stalled;
                stats.route_conns_total += rr.inc_conns_total;
                stats.route_conns_rerouted += rr.inc_conns_rerouted;
                // Fault-injection site (stage "global-route", distinct
                // from the kStage sites below): corrupt the *persistent*
                // phase-A demand after a successful route. The next
                // route() call's incremental-route auditor must trip on
                // the stale cache and recovery must invalidate it.
                if (guard.active() && incremental &&
                    recover::fault::fire("global-route",
                                         recover::FaultKind::CorruptedDemand,
                                         outer) &&
                    inc_route.dem_h.width() > 0) {
                    inc_route.dem_h.at(0, 0) += 1.0;
                }
            }

            // Fault-injection sites (inert unless a matching spec is
            // armed): the site corrupts its own state, detection below
            // must catch it.
            if (guard.active()) {
                using recover::FaultKind;
                namespace fault = recover::fault;
                if (fault::fire(kStage, FaultKind::CorruptedDemand, outer)) {
                    GridF dmd = cmap.demand();
                    dmd.at(0, 0) =
                        std::numeric_limits<double>::quiet_NaN();
                    cmap = CongestionMap(grid, std::move(dmd),
                                         cmap.capacity());
                }
                if (fault::fire(kStage, FaultKind::RouterNoProgress,
                                outer)) {
                    // Simulate the livelock symptom: absurd demand that
                    // every RRR round failed to improve.
                    GridF dmd = cmap.demand();
                    grid_scale(dmd, 1e9);
                    cmap = CongestionMap(grid, std::move(dmd),
                                         cmap.capacity());
                    rrr_executed = std::max(rrr_executed, 1);
                    rrr_stalled = rrr_executed;
                }
                if (fault::fire(kStage, FaultKind::OverflowOscillation,
                                outer) &&
                    outer % 2 == 0) {
                    // Every other iteration sees 64x demand: the overflow
                    // window alternates huge/normal until detected.
                    GridF dmd = cmap.demand();
                    grid_scale(dmd, 64.0);
                    cmap = CongestionMap(grid, std::move(dmd),
                                         cmap.capacity());
                }
            }

            // Divergence detection: corrupted demand. The auditor throws
            // AuditFailure (classified below); when audits are off the
            // recovery layer runs the same predicate itself.
            audit::check_congestion_map(cmap);
            if (guard.active() && !audit_enabled()) {
                std::string msg;
                if (find_invalid_gcell(cmap, msg))
                    throw recover::RecoverableError(
                        recover::FaultKind::CorruptedDemand, kStage, msg);
            }

            stats.total_overflow.push_back(cmap.total_overflow());
            // Keep the best-routed snapshot under the severity-weighted
            // overflow (the quantity detailed-routing violations track):
            // the stage must never end worse than it started.
            const double severe = cmap.weighted_overflow();

            // Divergence detection: router livelock — every RRR round
            // stalled while the overflow is beyond anything a healthy run
            // produces.
            if (guard.active() && rrr_executed > 0 &&
                rrr_stalled == rrr_executed &&
                severe > cfg.recover.router_livelock_overflow) {
                std::ostringstream oss;
                oss << "all " << rrr_executed
                    << " RRR rounds stalled at weighted overflow " << severe;
                throw recover::RecoverableError(
                    recover::FaultKind::RouterNoProgress, kStage, oss.str());
            }
            // Divergence detection: outer-loop overflow oscillation.
            if (guard.active()) {
                osc_window.push_back(severe);
                if (overflow_oscillates(osc_window, cfg.recover.osc_flips,
                                        cfg.recover.osc_amplitude)) {
                    std::ostringstream oss;
                    oss << "weighted overflow alternated "
                        << cfg.recover.osc_flips
                        << " times (last " << severe << ")";
                    throw recover::RecoverableError(
                        recover::FaultKind::OverflowOscillation, kStage,
                        oss.str());
                }
            }

            if (severe < best_overflow * (1.0 - cfg.keep_best_margin)) {
                best_overflow = severe;
                best_pos = pos;
                best_ratios = effective_ratios;
                best_extra_area = grid_sum(extra);
                best_inflation = scheme->snapshot();
                best_iter = outer;
            }

            // 3'. Dynamic pin-accessibility density adjustment (Eq. 13-15)
            //     is refreshed first so its charge is known to the budget.
            if (dpa) {
                extra = dynamic_pg_density(rail_area, cmap);
                grid_scale(extra, cfg.dpa_weight);
                obj.set_extra_density(&extra);
            }

            // 2. Momentum-based (or baseline) cell inflation update,
            //    budgeted (together with the PG charge) against the filler
            //    whitespace so the density stays feasible.
            scheme->update(d, cmap);
            effective_ratios = scheme->ratios();
            const double extra_area = grid_sum(extra);
            budget_inflation(d, first_filler, effective_ratios,
                             cfg.inflation_budget_frac, extra_area);
            if (guard.active() &&
                recover::fault::fire(kStage,
                                     recover::FaultKind::CorruptedBudget,
                                     outer) &&
                !effective_ratios.empty()) {
                effective_ratios[0] = -1.0;
            }
            // Invariant audit: the budgeted ratios must balance —
            // real-cell area growth inside the filler budget, uniform
            // filler shrink.
            if (audit_enabled())
                audit::check_inflation_budget(d, first_filler,
                                              effective_ratios,
                                              cfg.inflation_budget_frac,
                                              extra_area);
            else if (guard.active()) {
                for (size_t i = 0; i < effective_ratios.size(); ++i) {
                    const double r = effective_ratios[i];
                    if (std::isfinite(r) && r > 0.0) continue;
                    std::ostringstream oss;
                    oss << "inflation ratio of cell " << i
                        << " is invalid: " << r;
                    throw recover::RecoverableError(
                        recover::FaultKind::CorruptedBudget, kStage,
                        oss.str());
                }
            }
            {
                double acc = 0.0;
                int n = 0;
                for (int ci : movable) {
                    if (ci >= first_filler) continue;
                    acc += effective_ratios[static_cast<size_t>(ci)];
                    ++n;
                }
                stats.mean_inflation.push_back(n > 0 ? acc / n : 1.0);
            }

            // 4. Congestion potential field for the DC term (the
            //    bounding-box baseline model needs only the map, not the
            //    field).
            if (dc) {
                obj.set_dc_model(cfg.use_bbox_dc_model
                                     ? DcModel::BoundingBox
                                     : DcModel::NetMoving);
                if (!cfg.use_bbox_dc_model) field.build(cmap);
                obj.set_congestion(
                    &cmap, cfg.use_bbox_dc_model ? nullptr : &field);
            }

            // 5. Inner Nesterov iterations on Eq. (5).
            NesterovSolver solver(pos, nes_cfg);
            if (guard.active() &&
                recover::fault::fire(kStage,
                                     recover::FaultKind::HpwlExplosion,
                                     outer)) {
                // Fling the optimizer state far outside the die; the WA
                // total blows past the explosion threshold next evaluate.
                std::vector<Vec2> blown = pos;
                const Vec2 c = d.region.center();
                for (Vec2& p : blown)
                    p = {c.x + (p.x - c.x) * 1e4, c.y + (p.y - c.y) * 1e4};
                solver = NesterovSolver(std::move(blown), nes_cfg);
            }
            std::vector<Vec2> grad;
            double penalty = 0.0;
            double attempt_wl = last_wl;
            for (int it = 0; it < cfg.inner_iters; ++it) {
                const ObjectiveTerms terms =
                    obj.evaluate(d, movable, solver.reference(), grad);
                if (guard.active()) {
                    if (it == 0 && !grad.empty() &&
                        recover::fault::fire(
                            kStage, recover::FaultKind::GradientNaN, outer))
                        grad[0].x =
                            std::numeric_limits<double>::quiet_NaN();
                    // Catch non-finite gradients before they step: a NaN
                    // position would poison every later evaluation (and
                    // the grid index casts behind it).
                    for (size_t gi = 0; gi < grad.size(); ++gi) {
                        if (std::isfinite(grad[gi].x) &&
                            std::isfinite(grad[gi].y))
                            continue;
                        std::ostringstream oss;
                        oss << "non-finite gradient of slot " << gi
                            << " at inner iteration " << it;
                        throw recover::RecoverableError(
                            recover::FaultKind::GradientNaN, kStage,
                            oss.str());
                    }
                    // Divergence detection: non-finite objective terms
                    // (NaN gradients poison the terms one step later) and
                    // wirelength beyond k x the checkpoint / die bound.
                    const double tsum = terms.wirelength + terms.density +
                                        terms.congestion;
                    if (!std::isfinite(tsum)) {
                        std::ostringstream oss;
                        oss << "non-finite objective terms at inner"
                            << " iteration " << it;
                        throw recover::RecoverableError(
                            recover::FaultKind::GradientNaN, kStage,
                            oss.str());
                    }
                    const double bound =
                        cfg.recover.hpwl_explosion_factor *
                        std::max(ckpt.wirelength, die_bound);
                    if (terms.wirelength > bound) {
                        std::ostringstream oss;
                        oss << "WA wirelength " << terms.wirelength
                            << " exceeds the explosion bound " << bound;
                        throw recover::RecoverableError(
                            recover::FaultKind::HpwlExplosion, kStage,
                            oss.str());
                    }
                }
                penalty = terms.congestion;
                solver.step(grad, project);
                // Keep the ePlace lambda_1 schedule only while the density
                // target is not met; once spread, wirelength/congestion
                // lead.
                if (terms.overflow > cfg.stop_overflow)
                    obj.set_lambda1(obj.lambda1() * lambda1_growth);
                attempt_wl = terms.wirelength;
            }
            {
                // Last line of defense before NaN positions reach the
                // design: scan the solution once (observe-only).
                const std::vector<Vec2>& sol = solver.solution();
                if (guard.active()) {
                    for (size_t i = 0; i < sol.size(); ++i) {
                        if (std::isfinite(sol[i].x) &&
                            std::isfinite(sol[i].y))
                            continue;
                        std::ostringstream oss;
                        oss << "non-finite solution position of slot " << i;
                        throw recover::RecoverableError(
                            recover::FaultKind::GradientNaN, kStage,
                            oss.str());
                    }
                }
                pos = sol;
            }
            for (size_t i = 0; i < movable.size(); ++i)
                d.cells[static_cast<size_t>(movable[i])].pos = pos[i];
            last_wl = attempt_wl;
            stats.penalty.push_back(penalty);
            ++stats.outer_iters;

            if (cfg.verbose) {
                RDP_LOG_INFO() << "[route-iter " << outer << "] overflow="
                               << cmap.total_overflow()
                               << " C(x,y)=" << penalty
                               << " inflation=" << stats.mean_inflation.back();
            }

            // 6. Stop when the congestion metric no longer decreases
            //    (paper: "until C(x,y) no longer decreases or the given
            //    number of iterations is reached"). When DC is off the
            //    router overflow serves as the metric.
            const double metric = dc ? penalty : cmap.weighted_overflow();
            ++outer;
            if (metric < best_metric - 1e-9) {
                best_metric = metric;
                stall = 0;
            } else if (++stall >= cfg.stop_patience) {
                break;
            }
            continue;
        } catch (const recover::RecoverableError& e) {
            stats.total_overflow.resize(mark_overflow);
            stats.mean_inflation.resize(mark_inflation);
            stats.penalty.resize(mark_penalty);
            osc_window.clear();
            if (!apply_recovery(e.kind(), e.what())) break;
            continue;
        } catch (const AuditFailure& e) {
            if (!guard.active()) throw;
            stats.total_overflow.resize(mark_overflow);
            stats.mean_inflation.resize(mark_inflation);
            stats.penalty.resize(mark_penalty);
            osc_window.clear();
            if (!apply_recovery(recover::classify_audit_failure(e),
                                e.what()))
                break;
            continue;
        }
    }

    // Score the final positions too, then restore the best snapshot seen —
    // positions together with the inflation bookkeeping they were scored
    // with (ratios, extra charge, scheme history), so downstream consumers
    // never see a mixed state.
    {
        const double severe =
            cfg.use_rudy_congestion
                ? rudy_congestion(d, grid, cfg.router, {},
                                  incremental ? &inc_rudy : nullptr)
                      .weighted_overflow()
                : router->route(d, incremental ? &inc_route : nullptr)
                      .congestion.weighted_overflow();
        if (severe < best_overflow * (1.0 - cfg.keep_best_margin)) {
            best_overflow = severe;
            best_pos = pos;
            best_ratios = effective_ratios;
            best_extra_area = grid_sum(extra);
            best_inflation = scheme->snapshot();
            best_iter = stats.outer_iters;
        }
        for (size_t i = 0; i < movable.size(); ++i)
            d.cells[static_cast<size_t>(movable[i])].pos = best_pos[i];
        effective_ratios = best_ratios;
        scheme->restore(best_inflation);
        stats.best_iter = best_iter;
        stats.final_ratios = best_ratios;
        stats.final_extra_area = best_extra_area;
        // Re-audit the restored pairing: the bookkeeping must balance for
        // the snapshot exactly as it did when the snapshot was scored.
        if (audit_enabled())
            audit::check_inflation_budget(d, first_filler, effective_ratios,
                                          cfg.inflation_budget_frac,
                                          best_extra_area);
    }

    // Detach caller-owned state before `extra`/`scheme` go out of scope.
    obj.set_congestion(nullptr, nullptr);
    obj.set_extra_density(nullptr);
    obj.set_inflation(nullptr);
    return stats;
}

}  // namespace rdp
