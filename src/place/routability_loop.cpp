#include "place/routability_loop.hpp"

#include <algorithm>
#include <limits>

#include "audit/invariant_audit.hpp"
#include "congestion/rudy.hpp"
#include "pinaccess/dynamic_density.hpp"
#include "util/log.hpp"

namespace rdp {

std::unique_ptr<InflationScheme> make_inflation_scheme(const PlacerConfig& cfg,
                                                       int num_cells) {
    if (cfg.mode == PlacerMode::Ours && cfg.enable_mci)
        return std::make_unique<MomentumInflation>(num_cells, cfg.mci);
    // Baseline framework (Xplace-Route-like) and the no-MCI ablation rows
    // use the monotone historical scheme the paper attributes to [8]/[9].
    return std::make_unique<MonotoneInflation>(num_cells,
                                               cfg.baseline_inflation);
}

double budget_inflation(const Design& d, int first_filler,
                        std::vector<double>& ratios,
                        double usable_filler_frac, double extra_area) {
    double raw_extra = 0.0;
    for (int i = 0; i < first_filler; ++i) {
        const Cell& c = d.cells[static_cast<size_t>(i)];
        if (!c.movable()) continue;
        raw_extra += c.area() * (ratios[static_cast<size_t>(i)] - 1.0);
    }
    double filler_area = 0.0;
    for (int i = first_filler; i < d.num_cells(); ++i)
        filler_area += d.cells[static_cast<size_t>(i)].area();

    // The PG density charge comes off the top of the budget.
    const double budget = std::max(
        usable_filler_frac * filler_area - extra_area, 0.0);
    if (raw_extra > budget && raw_extra > 0.0) {
        const double scale = budget / raw_extra;
        for (int i = 0; i < first_filler; ++i) {
            const Cell& c = d.cells[static_cast<size_t>(i)];
            if (!c.movable()) continue;
            auto& r = ratios[static_cast<size_t>(i)];
            r = 1.0 + scale * (r - 1.0);
        }
    }
    // Fillers shrink by exactly the area the real cells and the PG charge
    // gained (never below a small floor).
    const double consumed =
        std::min(std::max(raw_extra, 0.0), budget) +
        std::min(extra_area, usable_filler_frac * filler_area);
    const double filler_ratio =
        filler_area > 0.0
            ? std::max(1.0 - consumed / filler_area, 0.05)
            : 1.0;
    for (int i = first_filler; i < d.num_cells(); ++i)
        ratios[static_cast<size_t>(i)] = filler_ratio;
    return filler_ratio;
}

RoutabilityStats run_routability_stage(
    Design& d, const std::vector<int>& movable, PlacementObjective& obj,
    const PlacerConfig& cfg, const std::vector<PGRail>& selected_rails,
    int first_filler) {
    const AuditStageScope audit_scope("routability-gp");
    RoutabilityStats stats;
    const BinGrid& grid = obj.grid();
    GlobalRouter router(grid, cfg.router);
    CongestionField field(grid);

    const bool dc = cfg.mode == PlacerMode::Ours && cfg.enable_dc;
    const bool dpa = cfg.mode == PlacerMode::Ours && cfg.enable_dpa;

    auto scheme = make_inflation_scheme(cfg, d.num_cells());
    std::vector<double> effective_ratios(
        static_cast<size_t>(d.num_cells()), 1.0);
    obj.set_inflation(&effective_ratios);

    const GridF rail_area = rail_area_per_bin(selected_rails, grid);
    // Static PG density (Xplace-Route style): fixed before the loop.
    GridF extra = static_pg_density(rail_area, cfg.static_pg_weight);
    obj.set_extra_density(&extra);

    // Optimizer state: continue from the stage-1 result.
    std::vector<Vec2> pos(movable.size());
    for (size_t i = 0; i < movable.size(); ++i)
        pos[i] = d.cells[static_cast<size_t>(movable[i])].pos;

    auto project = [&](size_t slot, Vec2 p) {
        const Cell& c = d.cells[static_cast<size_t>(movable[slot])];
        const Rect r = d.region;
        return Vec2{std::clamp(p.x, r.lx + c.width / 2, r.hx - c.width / 2),
                    std::clamp(p.y, r.ly + c.height / 2, r.hy - c.height / 2)};
    };

    double best_metric = std::numeric_limits<double>::max();
    double best_overflow = std::numeric_limits<double>::max();
    std::vector<Vec2> best_pos = pos;
    int stall = 0;
    CongestionMap cmap;
    obj.set_lambda2_scale(cfg.dc_weight);

    // Fresh lambda_1 for the stage: the stage-1 schedule leaves it orders
    // of magnitude above the gradient balance a converged placement needs.
    {
        std::vector<Vec2> grad0;
        obj.set_lambda1(0.0);
        const ObjectiveTerms t0 = obj.evaluate(d, movable, pos, grad0);
        const double ratio = t0.density_grad_l1 > 0.0
                                 ? t0.wl_grad_l1 / t0.density_grad_l1
                                 : 1.0;
        obj.set_lambda1(cfg.route_lambda1_boost * ratio);
    }

    for (int outer = 0; outer < cfg.max_route_iters; ++outer) {
        // 1. Congestion estimation on current positions -> map (Eq. 3):
        //    a full global route (the paper) or RUDY (router-free).
        if (cfg.use_rudy_congestion) {
            cmap = rudy_congestion(d, grid, cfg.router);
        } else {
            const RouteResult rr = router.route(d);
            cmap = rr.congestion;
        }
        stats.total_overflow.push_back(cmap.total_overflow());
        // Keep the best-routed snapshot under the severity-weighted
        // overflow (the quantity detailed-routing violations track): the
        // stage must never end worse than it started.
        const double severe = cmap.weighted_overflow();
        if (severe < best_overflow * (1.0 - cfg.keep_best_margin)) {
            best_overflow = severe;
            best_pos = pos;
        }

        // 3'. Dynamic pin-accessibility density adjustment (Eq. 13-15) is
        //     refreshed first so its charge is known to the budget.
        if (dpa) {
            extra = dynamic_pg_density(rail_area, cmap);
            grid_scale(extra, cfg.dpa_weight);
            obj.set_extra_density(&extra);
        }

        // 2. Momentum-based (or baseline) cell inflation update, budgeted
        //    (together with the PG charge) against the filler whitespace so
        //    the density stays feasible.
        scheme->update(d, cmap);
        effective_ratios = scheme->ratios();
        const double extra_area = grid_sum(extra);
        budget_inflation(d, first_filler, effective_ratios,
                         cfg.inflation_budget_frac, extra_area);
        // Invariant audit: the budgeted ratios must balance — real-cell
        // area growth inside the filler budget, uniform filler shrink.
        if (audit_enabled())
            audit::check_inflation_budget(d, first_filler, effective_ratios,
                                          cfg.inflation_budget_frac,
                                          extra_area);
        {
            double acc = 0.0;
            int n = 0;
            for (int ci : movable) {
                if (ci >= first_filler) continue;
                acc += effective_ratios[static_cast<size_t>(ci)];
                ++n;
            }
            stats.mean_inflation.push_back(n > 0 ? acc / n : 1.0);
        }

        // 4. Congestion potential field for the DC term (the bounding-box
        //    baseline model needs only the map, not the field).
        if (dc) {
            obj.set_dc_model(cfg.use_bbox_dc_model ? DcModel::BoundingBox
                                                   : DcModel::NetMoving);
            if (!cfg.use_bbox_dc_model) field.build(cmap);
            obj.set_congestion(
                &cmap, cfg.use_bbox_dc_model ? nullptr : &field);
        }

        // 5. Inner Nesterov iterations on Eq. (5).
        NesterovSolver solver(pos);
        std::vector<Vec2> grad;
        double penalty = 0.0;
        for (int it = 0; it < cfg.inner_iters; ++it) {
            const ObjectiveTerms terms =
                obj.evaluate(d, movable, solver.reference(), grad);
            penalty = terms.congestion;
            solver.step(grad, project);
            // Keep the ePlace lambda_1 schedule only while the density
            // target is not met; once spread, wirelength/congestion lead.
            if (terms.overflow > cfg.stop_overflow)
                obj.set_lambda1(obj.lambda1() * cfg.lambda1_growth);
        }
        pos = solver.solution();
        for (size_t i = 0; i < movable.size(); ++i)
            d.cells[static_cast<size_t>(movable[i])].pos = pos[i];
        stats.penalty.push_back(penalty);
        ++stats.outer_iters;

        if (cfg.verbose) {
            RDP_LOG_INFO() << "[route-iter " << outer << "] overflow="
                           << cmap.total_overflow()
                           << " C(x,y)=" << penalty
                           << " inflation=" << stats.mean_inflation.back();
        }

        // 6. Stop when the congestion metric no longer decreases
        //    (paper: "until C(x,y) no longer decreases or the given number
        //    of iterations is reached"). When DC is off the router overflow
        //    serves as the metric.
        const double metric = dc ? penalty : cmap.weighted_overflow();
        if (metric < best_metric - 1e-9) {
            best_metric = metric;
            stall = 0;
        } else if (++stall >= cfg.stop_patience) {
            break;
        }
    }

    // Score the final positions too, then restore the best snapshot seen.
    {
        const double severe =
            cfg.use_rudy_congestion
                ? rudy_congestion(d, grid, cfg.router).weighted_overflow()
                : router.route(d).congestion.weighted_overflow();
        if (severe < best_overflow * (1.0 - cfg.keep_best_margin)) {
            best_overflow = severe;
            best_pos = pos;
        }
        for (size_t i = 0; i < movable.size(); ++i)
            d.cells[static_cast<size_t>(movable[i])].pos = best_pos[i];
    }

    // Detach caller-owned state before `extra`/`scheme` go out of scope.
    obj.set_congestion(nullptr, nullptr);
    obj.set_extra_density(nullptr);
    obj.set_inflation(nullptr);
    return stats;
}

}  // namespace rdp
