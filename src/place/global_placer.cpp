#include "place/global_placer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include <iomanip>
#include <limits>
#include <sstream>

#include "audit/invariant_audit.hpp"
#include "db/netlist_io.hpp"
#include "fft/fft.hpp"
#include "legal/abacus.hpp"
#include "legal/pin_access_refine.hpp"
#include "place/nesterov.hpp"
#include "place/objective.hpp"
#include "place/routability_loop.hpp"
#include "recover/checkpoint.hpp"
#include "recover/durable_checkpoint.hpp"
#include "recover/fault_injection.hpp"
#include "recover/kill_points.hpp"
#include "recover/stage_guard.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "wirelength/hpwl.hpp"

namespace rdp {

namespace {

/// Design + curated-config fingerprint stored in every durable snapshot
/// (DESIGN.md §16): a checkpoint must never resume a different design,
/// seed, or schedule — any of those silently breaks the bitwise-identity
/// contract of a resumed run.
uint64_t durable_fingerprint(const Design& d, const PlacerConfig& cfg) {
    std::ostringstream ss;
    write_design(d, ss);
    ss << std::setprecision(17) << "|mode=" << static_cast<int>(cfg.mode)
       << "|mci=" << cfg.enable_mci << "|dc=" << cfg.enable_dc
       << "|dpa=" << cfg.enable_dpa << "|bins=" << cfg.grid_bins
       << "|td=" << cfg.density.target_density
       << "|filler=" << cfg.filler_ratio << "|g=" << cfg.gamma_frac << ":"
       << cfg.gamma_min_frac << ":" << cfg.gamma_decay
       << "|l1=" << cfg.lambda1_growth << "|wl=" << cfg.max_wl_iters << ":"
       << cfg.stop_overflow << "|route=" << cfg.max_route_iters << ":"
       << cfg.inner_iters << ":" << cfg.stop_patience
       << "|infl=" << cfg.inflation_budget_frac << ":"
       << cfg.keep_best_margin << "|w=" << cfg.dc_weight << ":"
       << cfg.dpa_weight << ":" << cfg.route_lambda1_boost << ":"
       << cfg.static_pg_weight << "|bbox=" << cfg.use_bbox_dc_model
       << "|rudy=" << cfg.use_rudy_congestion
       << "|padp=" << cfg.enable_pin_access_dp
       << "|nm=" << cfg.netmove.multi_pin_congestion_threshold
       << "|seed=" << cfg.seed;
    const std::string text = ss.str();
    return recover::fnv1a64(text.data(), text.size());
}

}  // namespace

int GlobalPlacer::add_fillers(Design& d, const PlacerConfig& cfg,
                              uint64_t seed) {
    const int first = d.num_cells();
    const double free_area = d.region.area() - d.total_fixed_area();
    const double spare =
        cfg.density.target_density * free_area - d.total_movable_area();
    if (spare <= 0.0) return first;

    // Filler size: mean movable cell dimensions.
    double mean_w = 0.0, mean_h = d.row_height;
    int n_mov = 0;
    for (const Cell& c : d.cells) {
        if (!c.movable()) continue;
        mean_w += c.width;
        ++n_mov;
    }
    if (n_mov == 0) return first;
    mean_w /= n_mov;
    const double fa = mean_w * mean_h;
    const int count =
        static_cast<int>(std::floor(cfg.filler_ratio * spare / fa));

    Rng rng(seed ^ 0xF117E55ull);
    for (int i = 0; i < count; ++i) {
        const Vec2 p{rng.uniform(d.region.lx + mean_w / 2,
                                 d.region.hx - mean_w / 2),
                     rng.uniform(d.region.ly + mean_h / 2,
                                 d.region.hy - mean_h / 2)};
        d.add_cell("__filler_" + std::to_string(i), mean_w, mean_h,
                   CellKind::Movable, p);
    }
    return first;
}

PlaceResult GlobalPlacer::place(const Design& input) const {
    const auto t0 = std::chrono::steady_clock::now();
    RDP_LOG_INFO() << "simd backend: " << simd::backend_name()
                   << (simd::fma_enabled() ? " (fma)" : "");
    PlaceResult res;

    Design d = input;
    if (d.rows.empty()) d.build_rows();

    // Durable checkpoint/resume layer (DESIGN.md §16). The fingerprint is
    // computed on the pre-placement design (movable input positions are
    // overwritten below either way), so the same input file and config
    // always fingerprint identically.
    const recover::DurableOptions dopts =
        recover::resolve_durable_options(cfg_.durable);
    uint64_t fingerprint = 0;
    if (!dopts.dir.empty() || !dopts.resume.empty())
        fingerprint = durable_fingerprint(d, cfg_);
    recover::DurableCheckpointer durable(dopts, fingerprint);
    const std::optional<recover::PipelineSnapshot> resume =
        durable.load_resume();
    const bool resume_stage2 =
        resume && resume->stage == recover::kStageRoutability;

    // Initial positions: movable cells near the centroid of fixed pins
    // (or the region center), with a small deterministic spread.
    {
        Vec2 centroid = d.region.center();
        Rng rng(cfg_.seed);
        const double sx = d.region.width() * 0.08;
        const double sy = d.region.height() * 0.08;
        for (Cell& c : d.cells) {
            if (!c.movable()) continue;
            c.pos = {centroid.x + rng.normal(0.0, sx),
                     centroid.y + rng.normal(0.0, sy)};
        }
        d.clamp_movables_to_region();
    }

    const int first_filler = add_fillers(d, cfg_, cfg_.seed);
    std::vector<int> movable = d.movable_cells();

    // Shared grid for density, G-cells, and congestion (paper II-B).
    const int bins = next_pow2(cfg_.grid_bins);
    const BinGrid grid(d.region, bins, bins);
    PlacementObjective obj(grid, cfg_.density, cfg_.netmove,
                           cfg_.gamma_frac *
                               std::max(grid.bin_w(), grid.bin_h()));

    auto project = [&](size_t slot, Vec2 p) {
        const Cell& c = d.cells[static_cast<size_t>(movable[slot])];
        const Rect r = d.region;
        return Vec2{std::clamp(p.x, r.lx + c.width / 2, r.hx - c.width / 2),
                    std::clamp(p.y, r.ly + c.height / 2, r.hy - c.height / 2)};
    };

    // ---- Stage 1: wirelength-driven GP ------------------------------------
    // Skipped entirely when resuming from a routability-stage snapshot:
    // everything it would compute is superseded by the snapshot state.
    if (!resume_stage2) {
        const AuditStageScope audit_scope("wirelength-gp");
        recover::StageGuard sguard("wirelength-gp", cfg_.recover,
                                   &res.recovery);
        std::vector<Vec2> pos(movable.size());
        for (size_t i = 0; i < movable.size(); ++i)
            pos[i] = d.cells[static_cast<size_t>(movable[i])].pos;
        // Recovery-adjustable knobs; identical to the configured values on
        // a clean run (the recovery ladder is the only writer).
        NesterovConfig nes_cfg;
        double lambda1_growth = cfg_.lambda1_growth;
        NesterovSolver solver(pos, nes_cfg);
        std::vector<Vec2> grad;

        const double gamma0 =
            cfg_.gamma_frac * std::max(grid.bin_w(), grid.bin_h());
        const double gamma_min =
            cfg_.gamma_min_frac * std::max(grid.bin_w(), grid.bin_h());
        double gamma = gamma0;

        // lambda_1 initialization: ||grad W||_1 / ||grad D||_1.
        obj.set_lambda1(0.0);
        {
            const ObjectiveTerms t0terms =
                obj.evaluate(d, movable, solver.reference(), grad);
            const double l1 =
                t0terms.density_grad_l1 > 0.0
                    ? t0terms.wl_grad_l1 / t0terms.density_grad_l1
                    : 1.0;
            obj.set_lambda1(l1);
        }

        // Physical wirelength bound (one die span per net), the floor of
        // the explosion threshold: early-stage spreading legitimately
        // grows the WA total many-fold and must never false-positive.
        double die_bound = d.region.width() + d.region.height();
        {
            int nets = 0;
            for (const Net& n : d.nets)
                if (n.degree() >= 2) ++nets;
            die_bound *= static_cast<double>(std::max(nets, 1));
        }

        recover::StageCheckpoint ckpt;
        size_t hist_at_ckpt = 0;
        double last_wl = 0.0;

        int it = 0;
        if (resume && resume->stage == recover::kStageWirelength) {
            // Rebuild the optimizer exactly as serialized: positions plus
            // the full momentum state, under the snapshot's (possibly
            // recovery-adjusted) step and schedule knobs. The iterations
            // from here on are bitwise identical to the uninterrupted run.
            it = resume->iter;
            res.wl_iters = resume->iter;
            nes_cfg.initial_step = resume->initial_step;
            lambda1_growth = resume->lambda1_growth;
            solver = NesterovSolver(resume->pos, nes_cfg);
            solver.restore(resume->opt);
            obj.set_lambda1(resume->lambda1);
            gamma = resume->gamma;
            obj.set_gamma(gamma);
            last_wl = resume->last_wl;
            RDP_LOG_INFO() << "resumed wirelength-gp at iteration " << it;
        }
        // Recovery ladder for the wirelength stage: roll back to the last
        // checkpoint with a halved step and a tightened lambda schedule.
        // Returns false once retries are exhausted (stage degrades to the
        // checkpoint state).
        auto apply_recovery = [&](recover::FaultKind kind,
                                  const char* what) -> bool {
            const bool retry = sguard.allow_retry(kind, it, what);
            if (ckpt.valid()) {
                if (retry) {
                    nes_cfg.initial_step *= cfg_.recover.step_shrink;
                    lambda1_growth = 1.0 + (lambda1_growth - 1.0) *
                                               cfg_.recover.lambda_tighten;
                }
                solver = NesterovSolver(ckpt.pos, nes_cfg);
                obj.set_lambda1(ckpt.lambda1);
                gamma = ckpt.gamma;
                obj.set_gamma(gamma);
                res.overflow_history.resize(hist_at_ckpt);
                res.wl_iters = ckpt.iter;
                it = ckpt.iter;
            }
            if (!retry) {
                sguard.degrade(kind, it,
                               "retries exhausted; finishing on the last"
                               " checkpoint");
                return false;
            }
            ++res.recovery.rollbacks;
            std::ostringstream oss;
            oss << "restored checkpoint of iteration " << ckpt.iter
                << "; step x" << cfg_.recover.step_shrink
                << ", lambda1 growth -> " << lambda1_growth;
            sguard.record(kind, it, "rollback", oss.str());
            return true;
        };

        while (it < cfg_.max_wl_iters) {
            if (sguard.over_budget(it)) break;
            if (sguard.active() &&
                (!ckpt.valid() ||
                 it - ckpt.iter >= cfg_.recover.checkpoint_every)) {
                ckpt.iter = it;
                ckpt.pos = solver.solution();
                ckpt.lambda1 = obj.lambda1();
                ckpt.gamma = gamma;
                ckpt.wirelength = last_wl;
                hist_at_ckpt = res.overflow_history.size();
            }
            if (durable.enabled() && it % durable.every() == 0) {
                recover::PipelineSnapshot snap;
                snap.stage = recover::kStageWirelength;
                snap.iter = it;
                snap.pos = solver.solution();
                snap.opt = solver.snapshot();
                snap.lambda1 = obj.lambda1();
                snap.gamma = gamma;
                snap.lambda1_growth = lambda1_growth;
                snap.initial_step = nes_cfg.initial_step;
                snap.last_wl = last_wl;
                durable.save(snap);
            }
            recover::crash::maybe_kill("wl-mid");
            try {
                if (sguard.active() &&
                    recover::fault::fire("wirelength-gp",
                                         recover::FaultKind::HpwlExplosion,
                                         it)) {
                    // Fling the optimizer state far outside the die.
                    std::vector<Vec2> blown = solver.solution();
                    const Vec2 c = d.region.center();
                    for (Vec2& p : blown)
                        p = {c.x + (p.x - c.x) * 1e4,
                             c.y + (p.y - c.y) * 1e4};
                    solver = NesterovSolver(std::move(blown), nes_cfg);
                }
                const ObjectiveTerms terms =
                    obj.evaluate(d, movable, solver.reference(), grad);
                if (sguard.active()) {
                    // Divergence detection (observe-only): non-finite
                    // terms, or wirelength beyond k x checkpoint/die bound.
                    const double tsum = terms.wirelength + terms.density +
                                        terms.overflow;
                    if (!std::isfinite(tsum)) {
                        std::ostringstream oss;
                        oss << "non-finite objective terms at iteration "
                            << it;
                        throw recover::RecoverableError(
                            recover::FaultKind::GradientNaN,
                            "wirelength-gp", oss.str());
                    }
                    const double bound =
                        cfg_.recover.hpwl_explosion_factor *
                        std::max(ckpt.wirelength, die_bound);
                    if (terms.wirelength > bound) {
                        std::ostringstream oss;
                        oss << "WA wirelength " << terms.wirelength
                            << " exceeds the explosion bound " << bound;
                        throw recover::RecoverableError(
                            recover::FaultKind::HpwlExplosion,
                            "wirelength-gp", oss.str());
                    }
                }
                res.overflow_history.push_back(terms.overflow);
                if (sguard.active() && !grad.empty() &&
                    recover::fault::fire("wirelength-gp",
                                         recover::FaultKind::GradientNaN,
                                         it))
                    grad[0].x = std::numeric_limits<double>::quiet_NaN();
                if (sguard.active()) {
                    // Catch non-finite gradients before they step: a NaN
                    // position would poison every later evaluation (and the
                    // grid index casts behind it).
                    for (size_t gi = 0; gi < grad.size(); ++gi) {
                        if (std::isfinite(grad[gi].x) &&
                            std::isfinite(grad[gi].y))
                            continue;
                        std::ostringstream oss;
                        oss << "non-finite gradient of slot " << gi
                            << " at iteration " << it;
                        throw recover::RecoverableError(
                            recover::FaultKind::GradientNaN,
                            "wirelength-gp", oss.str());
                    }
                }
                solver.step(grad, project);
                obj.set_lambda1(obj.lambda1() * lambda1_growth);
                gamma = std::max(gamma * cfg_.gamma_decay, gamma_min);
                obj.set_gamma(gamma);
                ++res.wl_iters;
                last_wl = terms.wirelength;
                if (cfg_.verbose && it % 50 == 0) {
                    RDP_LOG_INFO()
                        << "[wl-iter " << it << "] overflow="
                        << terms.overflow << " WA=" << terms.wirelength;
                }
                const bool done =
                    terms.overflow < cfg_.stop_overflow && it > 20;
                ++it;
                if (done) break;
            } catch (const recover::RecoverableError& e) {
                if (!apply_recovery(e.kind(), e.what())) break;
            } catch (const AuditFailure& e) {
                if (!sguard.active()) throw;
                if (!apply_recovery(recover::classify_audit_failure(e),
                                    e.what()))
                    break;
            }
        }
        const std::vector<Vec2>& sol = solver.solution();
        for (size_t i = 0; i < movable.size(); ++i)
            d.cells[static_cast<size_t>(movable[i])].pos = sol[i];
    }

    // ---- Stage 2: routability-driven GP ------------------------------------
    if (cfg_.mode != PlacerMode::WirelengthOnly) {
        // PG rail selection from macro positions (Fig. 2 pre-process).
        const std::vector<PGRail> rails = select_pg_rails(d, cfg_.rail_select);
        recover::StageGuard sguard("routability-gp", cfg_.recover,
                                   &res.recovery);
        try {
            const RoutabilityStats rs = run_routability_stage(
                d, movable, obj, cfg_, rails, first_filler, &durable,
                resume_stage2 ? &*resume : nullptr);
            res.route_outer_iters = rs.outer_iters;
            res.congestion_history = rs.total_overflow;
            res.penalty_history = rs.penalty;
            res.route_best_iter = rs.best_iter;
            res.recovery.events.insert(res.recovery.events.end(),
                                       rs.recovery.events.begin(),
                                       rs.recovery.events.end());
            res.recovery.rollbacks += rs.recovery.rollbacks;
            res.recovery.degraded_stages += rs.recovery.degraded_stages;
        } catch (const AuditFailure& e) {
            // The stage handles in-loop failures itself; anything escaping
            // (entry/exit audits) skips the optional stage: the stage-1
            // placement continues into legalization.
            if (!sguard.active()) throw;
            obj.set_congestion(nullptr, nullptr);
            obj.set_extra_density(nullptr);
            obj.set_inflation(nullptr);
            sguard.degrade(recover::classify_audit_failure(e), -1,
                           std::string("routability stage skipped: ") +
                               e.what());
        } catch (const recover::RecoverableError& e) {
            if (!sguard.active()) throw;
            obj.set_congestion(nullptr, nullptr);
            obj.set_extra_density(nullptr);
            obj.set_inflation(nullptr);
            sguard.degrade(e.kind(), -1,
                           std::string("routability stage skipped: ") +
                               e.what());
        }
    }

    // ---- Legalization + detailed placement ---------------------------------
    // Strip fillers (they were appended last and own no pins).
    d.cells.resize(static_cast<size_t>(first_filler));
    d.clamp_movables_to_region();
    res.hpwl_gp = total_hpwl(d);

    std::vector<Vec2> desired(static_cast<size_t>(d.num_cells()));
    for (int i = 0; i < d.num_cells(); ++i)
        desired[static_cast<size_t>(i)] = d.cells[static_cast<size_t>(i)].pos;

    {
        const AuditStageScope audit_scope("legalize");
        recover::StageGuard sguard("legalize", cfg_.recover, &res.recovery);
        try {
            res.legal_stats = tetris_legalize(d, cfg_.tetris);
            abacus_refine(d, desired);
            res.dp_stats = detailed_place(d, cfg_.dp);
            if (cfg_.enable_pin_access_dp) {
                const std::vector<PGRail> rails =
                    select_pg_rails(d, cfg_.rail_select);
                pin_access_refine(d, rails);
            }
            // Invariant audit: the legalization pipeline must leave every
            // cell row/site-aligned and overlap-free. Skipped when Tetris
            // reported unplaceable cells (pathological utilization) — the
            // failure is already visible in legal_stats.
            if (audit_enabled() && res.legal_stats.cells_failed == 0)
                audit::check_legalized(d);
        } catch (const AuditFailure& e) {
            // A tripped legalization audit degrades to the best-effort
            // placement instead of ending the run; the violation stays
            // visible in the recovery report.
            if (!sguard.active()) throw;
            sguard.degrade(recover::classify_audit_failure(e), -1,
                           std::string("returning best-effort"
                                       " legalization: ") +
                               e.what());
        }
    }
    res.hpwl_final = total_hpwl(d);

    res.placed = std::move(d);
    const auto t1 = std::chrono::steady_clock::now();
    res.place_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    return res;
}

}  // namespace rdp
