#pragma once
// Nesterov's accelerated gradient method as used by ePlace (paper Section
// II-A references [15]): the optimizer keeps a solution sequence u_k and a
// reference (lookahead) sequence v_k; gradients are evaluated at v_k, the
// steplength comes from a Barzilai-Borwein-style inverse-Lipschitz estimate
//   alpha_k = ||v_k - v_{k-1}|| / ||grad_k - grad_{k-1}||
// and the momentum coefficient follows a_{k+1} = (1 + sqrt(4 a_k^2 + 1))/2.
//
// The solver is a plain stepper over vectors of 2D points; the caller
// evaluates its objective gradient at reference() and calls step().

#include <functional>
#include <vector>

#include "recover/durable_checkpoint.hpp"
#include "util/geometry.hpp"

namespace rdp {

struct NesterovConfig {
    /// Steplength of the very first iteration, before a BB estimate exists.
    /// Deliberately tiny: it is only a probe displacement for the first
    /// Barzilai-Borwein ratio; a large first step can fling a converged
    /// placement far from its optimum.
    double initial_step = 1e-3;
    double min_step = 1e-12;
    double max_step = 1e6;
    /// Maximum per-iteration growth factor of the BB steplength.
    double max_step_growth = 10.0;
};

class NesterovSolver {
public:
    NesterovSolver(std::vector<Vec2> initial, NesterovConfig cfg = {});

    /// Point to evaluate the objective gradient at (v_k).
    const std::vector<Vec2>& reference() const { return v_; }
    /// Best-known solution (u_k).
    const std::vector<Vec2>& solution() const { return u_; }

    /// Advance one iteration using grad = d f / d v evaluated at reference().
    /// `project` is applied to every proposed point (e.g. clamping into the
    /// placement region); pass nullptr for unconstrained steps.
    void step(const std::vector<Vec2>& grad,
              const std::function<Vec2(size_t, Vec2)>& project);

    int iteration() const { return k_; }
    double last_step_length() const { return last_alpha_; }

    /// Complete momentum state for durable checkpoints (DESIGN.md §16).
    /// restore() onto a freshly constructed solver reproduces the iterate
    /// sequence bit for bit from the captured iteration.
    recover::OptimizerSnapshot snapshot() const;
    void restore(const recover::OptimizerSnapshot& s);

private:
    NesterovConfig cfg_;
    std::vector<Vec2> u_;       // solution
    std::vector<Vec2> v_;       // reference
    std::vector<Vec2> prev_v_;  // v_{k-1}
    std::vector<Vec2> prev_g_;  // grad_{k-1}
    double a_ = 1.0;
    int k_ = 0;
    double last_alpha_ = 0.0;
    bool have_prev_ = false;
};

}  // namespace rdp
