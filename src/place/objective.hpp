#pragma once
// Combined objective of the analytical routability-driven placement model
// (paper Eq. (5)):
//
//   f(x, y) = sum_e WA_e + lambda_1 D(x, y) + lambda_2 C(x, y)
//
// The wirelength and density terms are re-evaluated every Nesterov
// iteration. The congestion term uses the *frozen* congestion map/field of
// the most recent global routing (outer iteration), but its gradient is
// recomputed at the current cell positions through Algorithms 1-2 —
// virtual-cell positions move with the nets. lambda_2 follows Eq. (10)
// from the current gradient norms; lambda_1 follows the caller's ePlace
// schedule.

#include <vector>

#include "congestion/bbox_penalty.hpp"
#include "congestion/congestion_field.hpp"
#include "congestion/net_moving.hpp"
#include "density/electro_density.hpp"
#include "wirelength/wa_model.hpp"

namespace rdp {

/// Which congestion-gradient model drives the C(x, y) term: the paper's
/// net-moving gradients, or the prior bounding-box penalty [2] it is
/// compared against (ablation_dc_model bench).
enum class DcModel { NetMoving, BoundingBox };

struct ObjectiveTerms {
    double wirelength = 0.0;       ///< WA total
    double density = 0.0;          ///< D(x, y)
    double congestion = 0.0;       ///< C(x, y)
    double lambda1 = 0.0;
    double lambda2 = 0.0;
    double overflow = 0.0;         ///< density overflow tau
    int num_congested_cells = 0;   ///< N_C of Eq. (10)
    double wl_grad_l1 = 0.0;       ///< ||grad W||_1 (lambda_1 initialization)
    double density_grad_l1 = 0.0;  ///< ||grad D||_1
};

class PlacementObjective {
public:
    PlacementObjective(BinGrid grid, DensityConfig density_cfg,
                       NetMovingConfig netmove_cfg, double gamma);

    // --- state plugged in by the placer / routability loop ----------------
    void set_gamma(double g) { wa_.set_gamma(g); }
    double gamma() const { return wa_.gamma(); }
    void set_lambda1(double l) { lambda1_ = l; }
    double lambda1() const { return lambda1_; }
    /// Per-cell inflation ratios (owned by the caller); nullptr = none.
    void set_inflation(const std::vector<double>* r) { inflation_ = r; }
    /// Extra bin density in area units (DPA term); nullptr = none.
    void set_extra_density(const GridF* extra) { extra_density_ = extra; }
    /// Congestion map + field for the DC term; both nullptr disables it.
    void set_congestion(const CongestionMap* cmap,
                        const CongestionField* field) {
        cmap_ = cmap;
        cfield_ = field;
    }
    /// Damping multiplier applied on top of the Eq. (10) lambda_2.
    void set_lambda2_scale(double s) { lambda2_scale_ = s; }
    /// Select the congestion gradient model (default: net moving).
    void set_dc_model(DcModel m) { dc_model_ = m; }
    DcModel dc_model() const { return dc_model_; }

    const BinGrid& grid() const { return density_.grid(); }

    /// Write `pos` into the movable cells of `d`, evaluate all terms, and
    /// fill `grad_out` (same indexing as `movable`/`pos`) with
    /// grad WA + lambda1 grad D + lambda2 grad C.
    ObjectiveTerms evaluate(Design& d, const std::vector<int>& movable,
                            const std::vector<Vec2>& pos,
                            std::vector<Vec2>& grad_out) const;

private:
    WAWirelength wa_;
    ElectroDensity density_;
    NetMovingGradient netmove_;
    BBoxCongestionGradient bbox_;
    DcModel dc_model_ = DcModel::NetMoving;
    double lambda1_ = 0.0;
    double lambda2_scale_ = 1.0;
    const std::vector<double>* inflation_ = nullptr;
    const GridF* extra_density_ = nullptr;
    const CongestionMap* cmap_ = nullptr;
    const CongestionField* cfield_ = nullptr;
};

}  // namespace rdp
