#include "place/objective.hpp"

#include <cassert>

#include "audit/invariant_audit.hpp"
#include "congestion/lambda_schedule.hpp"

namespace rdp {

PlacementObjective::PlacementObjective(BinGrid grid, DensityConfig density_cfg,
                                       NetMovingConfig netmove_cfg,
                                       double gamma)
    : wa_(gamma), density_(grid, density_cfg), netmove_(netmove_cfg) {}

ObjectiveTerms PlacementObjective::evaluate(Design& d,
                                            const std::vector<int>& movable,
                                            const std::vector<Vec2>& pos,
                                            std::vector<Vec2>& grad_out) const {
    assert(movable.size() == pos.size());
    // Input positions are audited before they touch the design: a NaN
    // coordinate would otherwise flow into the density splat (and cast to an
    // int bin index) before the gradient checks below could see it.
    if (audit_enabled())
        audit::check_gradients_finite("input position", pos);
    for (size_t i = 0; i < movable.size(); ++i)
        d.cells[static_cast<size_t>(movable[i])].pos = pos[i];

    ObjectiveTerms terms;
    terms.lambda1 = lambda1_;

    const WirelengthResult wl = wa_.evaluate(d);
    terms.wirelength = wl.total;

    const DensityResult den =
        density_.evaluate(d, inflation_, extra_density_);
    terms.density = den.penalty;
    terms.overflow = den.overflow;
    terms.wl_grad_l1 = gradient_l1(wl.cell_grad);
    terms.density_grad_l1 = gradient_l1(den.cell_grad);

    // Congestion term: either the paper's net-moving gradients or the
    // bounding-box baseline, both weighted by the Eq. (10) lambda_2.
    std::vector<Vec2> cong_grad;
    const bool dc = cmap_ != nullptr &&
                    (dc_model_ == DcModel::BoundingBox || cfield_ != nullptr);
    if (dc) {
        if (dc_model_ == DcModel::NetMoving) {
            NetMovingResult cong = netmove_.compute(d, *cmap_, *cfield_);
            terms.congestion = cong.penalty;
            terms.num_congested_cells = cong.num_congested_cells;
            cong_grad = std::move(cong.cell_grad);
        } else {
            BBoxPenaltyResult cong = bbox_.compute(d, *cmap_);
            terms.congestion = cong.penalty;
            for (const Cell& c : d.cells) {
                if (!c.movable()) continue;
                if (cmap_->congestion_at_point(c.pos) > 0.0)
                    ++terms.num_congested_cells;
            }
            cong_grad = std::move(cong.cell_grad);
        }
        terms.lambda2 =
            lambda2_scale_ *
            compute_lambda2(terms.num_congested_cells, d.num_cells(),
                            gradient_l1(wl.cell_grad),
                            gradient_l1(cong_grad));
    }

    // Invariant audit: every gradient term the Nesterov step consumes must
    // be finite and NaN-free (a single NaN coordinate silently corrupts the
    // whole trajectory through the BB steplength estimate).
    if (audit_enabled()) {
        audit::check_gradients_finite("wirelength gradient", wl.cell_grad);
        audit::check_gradients_finite("density gradient", den.cell_grad);
        if (dc)
            audit::check_gradients_finite(dc_model_ == DcModel::NetMoving
                                              ? "net-moving gradient"
                                              : "bounding-box gradient",
                                          cong_grad);
    }

    grad_out.assign(movable.size(), Vec2{});
    for (size_t i = 0; i < movable.size(); ++i) {
        const size_t ci = static_cast<size_t>(movable[i]);
        Vec2 g = wl.cell_grad[ci] + den.cell_grad[ci] * lambda1_;
        if (dc) g += cong_grad[ci] * terms.lambda2;
        grad_out[i] = g;
    }
    return terms;
}

}  // namespace rdp
