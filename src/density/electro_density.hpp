#pragma once
// Electrostatics-based density penalty D(x, y) (ePlace, paper Section II-A).
// Cells are charges with q_i = (inflated) cell area; the bin-wise charge
// density feeds the spectral Poisson solver; the penalty is
//   D = 1/2 sum_i q_i psi(x_i)
// and its gradient wrt a movable cell center is -q_i E(x_i).
//
// Two hooks implement the paper's congestion-mitigation techniques:
//  * per-cell inflation ratios (momentum-based cell inflation, Section III-B)
//    multiply each movable cell's charge AREA by r_i;
//  * an extra density grid (the D^PG term of dynamic pin-accessibility
//    density adjustment, Section III-C, Eq. (14)) is added to the bin
//    density before solving.

#include <vector>

#include "db/design.hpp"
#include "grid/bin_grid.hpp"
#include "poisson/poisson.hpp"

namespace rdp {

struct DensityConfig {
    /// Target utilization of the free area; overflow is measured against it.
    double target_density = 0.9;
};

struct DensityResult {
    double penalty = 0.0;          ///< D = 1/2 sum q_i psi_i over movables
    std::vector<Vec2> cell_grad;   ///< dD/d(center) for every cell (0 for fixed)
    double overflow = 0.0;         ///< normalized density overflow (tau)
    GridF density;                 ///< total charge density per bin (area units)
};

class ElectroDensity {
public:
    explicit ElectroDensity(BinGrid grid, DensityConfig cfg = {});

    const BinGrid& grid() const { return grid_; }
    const DensityConfig& config() const { return cfg_; }

    /// Evaluate penalty/gradient/overflow.
    /// `inflation`: optional per-cell area inflation ratios (size num_cells;
    /// only movable entries are used). `extra_density`: optional additional
    /// charge (area units) per bin, e.g. the DPA PG-rail term.
    DensityResult evaluate(const Design& d,
                           const std::vector<double>* inflation = nullptr,
                           const GridF* extra_density = nullptr) const;

    /// Movable-area density grid only (no fixed, no extra); used by tests
    /// and the Fig. 1 congestion decomposition bench.
    GridF movable_density(const Design& d,
                          const std::vector<double>* inflation = nullptr) const;

private:
    BinGrid grid_;
    DensityConfig cfg_;
    PoissonSolver solver_;
    /// Persistent solve scratch + outputs: after the first evaluate() the
    /// Poisson stage performs no allocation. Mutable because evaluate() is
    /// logically const; evaluate() itself is not safe to call concurrently
    /// on one instance (it never was — the solver shares transform state).
    mutable PoissonWorkspace solve_ws_;
};

}  // namespace rdp
