#include "density/electro_density.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "audit/invariant_audit.hpp"
#include "grid/splat_kernel.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace rdp {

ElectroDensity::ElectroDensity(BinGrid grid, DensityConfig cfg)
    : grid_(grid), cfg_(cfg), solver_(grid.nx(), grid.ny()) {}

namespace {

/// Effective rasterization box of a cell: dimensions inflated by sqrt(r)
/// (area scales by r) and clamped up to one bin so sub-bin cells spread
/// their charge smoothly, with the charge scale preserving total area.
struct EffBox {
    Rect box;
    double scale;  ///< multiply overlap areas by this to conserve charge
};

EffBox effective_box(const Cell& c, double r, const BinGrid& g) {
    const double lin = std::sqrt(std::max(r, 0.0));
    const double w0 = c.width * lin;
    const double h0 = c.height * lin;
    const double w = std::max(w0, g.bin_w());
    const double h = std::max(h0, g.bin_h());
    const double target_area = c.area() * r;
    const double scale = (w * h) > 0.0 ? target_area / (w * h) : 0.0;
    return {Rect::from_center(c.pos, w, h), scale};
}

}  // namespace

GridF ElectroDensity::movable_density(
    const Design& d, const std::vector<double>* inflation) const {
    GridF rho = grid_.make_grid();
    // Chunk-parallel scatter with ordered merge (see parallel_splat).
    parallel_splat(grid_, rho, static_cast<size_t>(d.num_cells()), 512,
                   [&](GridF& g, size_t i) {
                       const Cell& c = d.cells[i];
                       if (!c.movable()) return;
                       const double r = inflation != nullptr
                                            ? (*inflation)[i]
                                            : 1.0;
                       const EffBox eb = effective_box(c, r, grid_);
                       grid_.splat_area(g, eb.box, eb.scale);
                   });
    return rho;
}

DensityResult ElectroDensity::evaluate(const Design& d,
                                       const std::vector<double>* inflation,
                                       const GridF* extra_density) const {
    DensityResult res;
    const size_t num_cells = static_cast<size_t>(d.num_cells());
    res.cell_grad.assign(num_cells, Vec2{});

    // Movable charge (with inflation) and fixed obstruction charge.
    const GridF mov = movable_density(d, inflation);
    GridF rho = mov;
    GridF fixed = grid_.make_grid();
    parallel_splat(grid_, fixed, num_cells, 512, [&](GridF& g, size_t i) {
        const Cell& c = d.cells[i];
        if (c.movable()) return;
        grid_.splat_area(g, c.bbox());
    });
    // Fixed area beyond the target density acts as full charge; this keeps
    // macros repulsive without over-charging lightly blocked bins.
    grid_add(rho, fixed);
    if (extra_density != nullptr) {
        assert(grid_.compatible(*extra_density));
        grid_add(rho, *extra_density);
    }
    res.density = rho;

    // Invariant audit: the scatter must conserve charge — grid mass equals
    // the independently accumulated clipped footprint areas (per-cell
    // rectangle intersections, a separate arithmetic path from the per-bin
    // overlap loop in splat_area) plus the extra (DPA) charge.
    if (audit_enabled()) {
        double expected = 0.0;
        for (size_t i = 0; i < num_cells; ++i) {
            const Cell& c = d.cells[i];
            if (c.movable()) {
                const double r =
                    inflation != nullptr ? (*inflation)[i] : 1.0;
                const EffBox eb = effective_box(c, r, grid_);
                expected += eb.box.overlap_area(grid_.region()) * eb.scale;
            } else {
                expected += c.bbox().overlap_area(grid_.region());
            }
        }
        if (extra_density != nullptr) expected += grid_sum(*extra_density);
        audit::check_density_mass(rho, expected);
    }

    // Poisson solve on area-per-bin-area density (dimensionless): the
    // 1/bin_area normalization rides into the solver's spectral multipliers
    // instead of scaling a copy of the charge grid.
    const PoissonSolution& sol =
        solver_.solve(rho, solve_ws_, 1.0 / grid_.bin_area());
    if (audit_enabled())
        audit::check_spectral_finite("density", sol.potential, sol.field_x,
                                     sol.field_y);

    // Field is in grid-index units; convert to physical units.
    const double inv_bw = 1.0 / grid_.bin_w();
    const double inv_bh = 1.0 / grid_.bin_h();

    // Gather is the adjoint of the scatter: potential and field are
    // integrated over each cell's (effective) charge footprint with the
    // same overlap weights used to deposit the charge. The penalty sums
    // over ALL charges (movable and fixed) — the system energy
    // 1/2 sum q_i psi_i is only consistent with the per-cell gradient
    // q grad(psi) when fixed charges' energy terms are included, since
    // half of a movable-fixed interaction lives in the fixed term.
    // Parallel over cell chunks: gradients go to disjoint slots, the
    // penalty is reduced in fixed chunk order.
    res.penalty += par::parallel_sum(num_cells, 512, [&](size_t b, size_t e) {
        double psi_chunk = 0.0;
        for (size_t i = b; i < e; ++i) {
            const Cell& c = d.cells[i];
            const double r =
                (c.movable() && inflation != nullptr) ? (*inflation)[i] : 1.0;
            const EffBox eb = c.movable() ? effective_box(c, r, grid_)
                                          : EffBox{c.bbox(), 1.0};
            // Row-vectorized footprint gather (grid/splat_kernel.hpp);
            // fixed cells skip the field loads entirely.
            const GatherAcc acc =
                c.movable()
                    ? gather_rect<simd::VecD, true>(grid_, sol.potential,
                                                    sol.field_x, sol.field_y,
                                                    eb.box, eb.scale)
                    : gather_rect<simd::VecD, false>(grid_, sol.potential,
                                                     sol.potential,
                                                     sol.potential, eb.box,
                                                     eb.scale);
            psi_chunk += 0.5 * acc.psi;
            if (!c.movable()) continue;
            // dD/dx_i = q_i d(psi)/dx = -q_i E, footprint-averaged and
            // converted to physical units.
            res.cell_grad[i] = Vec2{-acc.ex * inv_bw, -acc.ey * inv_bh};
        }
        return psi_chunk;
    });

    // The extra (DPA) charge also carries its half of the interaction
    // energy, keeping penalty and gradient consistent.
    if (extra_density != nullptr) {
        res.penalty += par::parallel_sum(
            rho.size(), 16384, [&](size_t b, size_t e) {
                const double* q = extra_density->data();
                const double* psi = sol.potential.data();
                double acc = 0.0;
                for (size_t i = b; i < e; ++i) acc += 0.5 * q[i] * psi[i];
                return acc;
            });
    }

    // Normalized overflow tau = sum_b max(mov_b - target * free_b, 0) / mov.
    struct OverflowAcc {
        double mov = 0.0, over = 0.0;
    };
    const OverflowAcc of = par::parallel_reduce(
        mov.size(), 16384, OverflowAcc{},
        [&](size_t b, size_t e) {
            OverflowAcc acc;
            const double* m = mov.data();
            const double* f = fixed.data();
            for (size_t i = b; i < e; ++i) {
                const double free_area =
                    std::max(grid_.bin_area() - f[i], 0.0);
                acc.mov += m[i];
                acc.over += std::max(
                    m[i] - cfg_.target_density * free_area, 0.0);
            }
            return acc;
        },
        [](OverflowAcc a, OverflowAcc b) {
            a.mov += b.mov;
            a.over += b.over;
            return a;
        });
    res.overflow = of.mov > 0.0 ? of.over / of.mov : 0.0;
    return res;
}

}  // namespace rdp
