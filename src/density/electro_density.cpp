#include "density/electro_density.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdp {

ElectroDensity::ElectroDensity(BinGrid grid, DensityConfig cfg)
    : grid_(grid), cfg_(cfg), solver_(grid.nx(), grid.ny()) {}

namespace {

/// Effective rasterization box of a cell: dimensions inflated by sqrt(r)
/// (area scales by r) and clamped up to one bin so sub-bin cells spread
/// their charge smoothly, with the charge scale preserving total area.
struct EffBox {
    Rect box;
    double scale;  ///< multiply overlap areas by this to conserve charge
};

EffBox effective_box(const Cell& c, double r, const BinGrid& g) {
    const double lin = std::sqrt(std::max(r, 0.0));
    const double w0 = c.width * lin;
    const double h0 = c.height * lin;
    const double w = std::max(w0, g.bin_w());
    const double h = std::max(h0, g.bin_h());
    const double target_area = c.area() * r;
    const double scale = (w * h) > 0.0 ? target_area / (w * h) : 0.0;
    return {Rect::from_center(c.pos, w, h), scale};
}

}  // namespace

GridF ElectroDensity::movable_density(
    const Design& d, const std::vector<double>* inflation) const {
    GridF rho = grid_.make_grid();
    for (int i = 0; i < d.num_cells(); ++i) {
        const Cell& c = d.cells[i];
        if (!c.movable()) continue;
        const double r =
            inflation != nullptr ? (*inflation)[static_cast<size_t>(i)] : 1.0;
        const EffBox eb = effective_box(c, r, grid_);
        grid_.splat_area(rho, eb.box, eb.scale);
    }
    return rho;
}

DensityResult ElectroDensity::evaluate(const Design& d,
                                       const std::vector<double>* inflation,
                                       const GridF* extra_density) const {
    DensityResult res;
    res.cell_grad.assign(static_cast<size_t>(d.num_cells()), Vec2{});

    // Movable charge (with inflation) and fixed obstruction charge.
    const GridF mov = movable_density(d, inflation);
    GridF rho = mov;
    GridF fixed = grid_.make_grid();
    for (const Cell& c : d.cells) {
        if (c.movable()) continue;
        grid_.splat_area(fixed, c.bbox());
    }
    // Fixed area beyond the target density acts as full charge; this keeps
    // macros repulsive without over-charging lightly blocked bins.
    grid_add(rho, fixed);
    if (extra_density != nullptr) {
        assert(grid_.compatible(*extra_density));
        grid_add(rho, *extra_density);
    }
    res.density = rho;

    // Poisson solve on area-per-bin-area density (dimensionless).
    GridF rho_norm = rho;
    grid_scale(rho_norm, 1.0 / grid_.bin_area());
    const PoissonSolution sol = solver_.solve(rho_norm);

    // Field is in grid-index units; convert to physical units.
    const double inv_bw = 1.0 / grid_.bin_w();
    const double inv_bh = 1.0 / grid_.bin_h();

    // Gather is the adjoint of the scatter: potential and field are
    // integrated over each cell's (effective) charge footprint with the
    // same overlap weights used to deposit the charge. The penalty sums
    // over ALL charges (movable and fixed) — the system energy
    // 1/2 sum q_i psi_i is only consistent with the per-cell gradient
    // q grad(psi) when fixed charges' energy terms are included, since
    // half of a movable-fixed interaction lives in the fixed term.
    for (int i = 0; i < d.num_cells(); ++i) {
        const Cell& c = d.cells[i];
        const double r =
            (c.movable() && inflation != nullptr)
                ? (*inflation)[static_cast<size_t>(i)]
                : 1.0;
        const EffBox eb = c.movable() ? effective_box(c, r, grid_)
                                      : EffBox{c.bbox(), 1.0};
        double psi_acc = 0.0, ex_acc = 0.0, ey_acc = 0.0;
        grid_.for_each_overlap(eb.box, [&](int ix, int iy, double a) {
            const double w = a * eb.scale;
            psi_acc += w * sol.potential.at(ix, iy);
            if (c.movable()) {
                ex_acc += w * sol.field_x.at(ix, iy);
                ey_acc += w * sol.field_y.at(ix, iy);
            }
        });
        res.penalty += 0.5 * psi_acc;
        if (!c.movable()) continue;
        // dD/dx_i = q_i d(psi)/dx = -q_i E, footprint-averaged and
        // converted to physical units.
        res.cell_grad[static_cast<size_t>(i)] =
            Vec2{-ex_acc * inv_bw, -ey_acc * inv_bh};
    }

    // The extra (DPA) charge also carries its half of the interaction
    // energy, keeping penalty and gradient consistent.
    if (extra_density != nullptr) {
        for (int y = 0; y < rho.height(); ++y)
            for (int x = 0; x < rho.width(); ++x)
                res.penalty +=
                    0.5 * extra_density->at(x, y) * sol.potential.at(x, y);
    }

    // Normalized overflow tau = sum_b max(mov_b - target * free_b, 0) / mov.
    double total_mov = 0.0, over = 0.0;
    for (int y = 0; y < mov.height(); ++y) {
        for (int x = 0; x < mov.width(); ++x) {
            const double free_area =
                std::max(grid_.bin_area() - fixed.at(x, y), 0.0);
            total_mov += mov.at(x, y);
            over += std::max(mov.at(x, y) - cfg_.target_density * free_area,
                             0.0);
        }
    }
    res.overflow = total_mov > 0.0 ? over / total_mov : 0.0;
    return res;
}

}  // namespace rdp
