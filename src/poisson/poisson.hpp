#pragma once
// Spectral solver for the placement Poisson problem (paper Eq. (1), following
// ePlace):
//
//   div grad psi(x, y) = -rho(x, y)   on the rectangular region R
//   n . grad psi       = 0            on the boundary (Neumann)
//   integral rho = integral psi = 0   (compatibility / uniqueness)
//
// With Neumann boundaries the natural basis is the product cosine basis at
// half-integer sample points; the solve is three 2D fast cosine/sine
// transforms. The same solver is used twice in the framework:
//   * the electrostatic density field D(x, y) with rho = cell area density,
//   * the paper's differentiable congestion field C(x, y) with
//     rho = Dmd/Cap from the global router (Section II-B).
//
// Everything here works in *grid index* units (unit bin spacing). Callers
// convert the field to physical units by dividing by the physical bin size.
//
// 2D transform strategy (see DESIGN.md "Spectral kernel layer"): every pass
// over the grid is a batch of *contiguous row* transforms. Column
// (y-direction) transforms are never walked with stride-w loads; instead the
// grid is transposed with a cache-blocked kernel and the column pass runs as
// a row pass on the transposed layout. The y-direction passes shared by the
// potential and field_x (both need a DCT-III in v) are computed once, and
// field_x's extra w_u factor is folded into the transpose back out of the
// transposed layout as a per-column scale. One solve is 7 row-batched 1D
// passes plus 4 blocked transposes.

#include <memory>
#include <vector>

#include "util/grid2d.hpp"

namespace rdp {

/// Result of one Poisson solve. `field_x/y` hold E = -grad(psi).
struct PoissonSolution {
    GridF potential;
    GridF field_x;
    GridF field_y;
};

/// Caller-owned scratch + output storage for repeated solves. After the
/// first solve on a given grid size every buffer is at its steady-state
/// capacity and subsequent solves perform no allocation at all.
struct PoissonWorkspace {
    PoissonSolution sol;  ///< outputs of the most recent solve
    GridF a;              ///< width x height scratch (input layout)
    GridF ta;             ///< height x width scratch (transposed layout)
    GridF tb;             ///< transposed scratch for the y-field spectra
};

class DctWorkspace;

/// Reusable spectral Poisson solver for a fixed power-of-two grid size.
/// Holds the per-size transform plans, precomputed spectral multipliers,
/// and a pool of per-chunk DCT workspaces; all per-solve storage lives in
/// the caller's PoissonWorkspace.
///
/// Determinism: each batched pass runs row chunks in parallel with the
/// deterministic chunk plans from util/parallel.hpp. The plan is a function
/// of the grid dimensions only; chunks write disjoint rows and each owns a
/// private DctWorkspace from a pool sized to the plan, so results are
/// bitwise identical for any RDP_THREADS.
///
/// Concurrency: a single PoissonSolver instance must not run two solves at
/// the same time (the workspace pool is shared across one solve's chunks,
/// not across solves). Distinct instances are independent.
class PoissonSolver {
public:
    /// Width and height must be powers of two.
    PoissonSolver(int width, int height);
    ~PoissonSolver();
    PoissonSolver(const PoissonSolver&);
    PoissonSolver& operator=(const PoissonSolver&) = delete;

    int width() const { return w_; }
    int height() const { return h_; }

    /// Solve for the given charge density, writing potential and field into
    /// `ws` (resized on first use, reused allocation-free afterwards). The
    /// density is mean-shifted internally to satisfy the compatibility
    /// condition and scaled by `charge_scale` (folded into the spectral
    /// multipliers — no input copy is scaled). Returns `ws.sol`.
    const PoissonSolution& solve(const GridF& rho, PoissonWorkspace& ws,
                                 double charge_scale = 1.0) const;

    /// Potential only (cheaper when the field is not needed); returns
    /// `ws.sol.potential`.
    const GridF& solve_potential(const GridF& rho, PoissonWorkspace& ws,
                                 double charge_scale = 1.0) const;

    /// Convenience value-returning forms for one-off callers and tests.
    PoissonSolution solve(const GridF& rho) const;
    GridF solve_potential(const GridF& rho) const;

private:
    enum class Kind { Dct2, Dct3, Idxst };

    static void apply_1d(DctWorkspace& ws, Kind kind, double* x);
    /// Batched 1D pass over the rows of a width x height (input layout)
    /// grid: h transforms of length w.
    void rows_u(GridF& g, Kind kind) const;
    /// Batched 1D pass over the rows of a height x width (transposed
    /// layout) grid: w transforms of length h.
    void rows_v(GridF& g, Kind kind) const;
    /// dst = rho - mean(rho), resizing dst only on first use.
    void load_mean_shifted(const GridF& rho, GridF& dst) const;
    /// In the transposed layout, turn forward DCT coefficients into
    /// potential spectra (ta) and, when `tb` is non-null, y-field spectra
    /// (tb = ta * w_v). charge_scale multiplies every coefficient.
    void apply_spectral(GridF& ta, GridF* tb, double charge_scale) const;

    int w_;
    int h_;
    std::vector<double> wu_;    ///< w_u = pi u / w, u < w
    std::vector<double> wv_;    ///< w_v = pi v / h, v < h
    /// Precomputed p_u p_v / (w h (w_u^2 + w_v^2)) indexed [u * h + v]
    /// (transposed layout); the (0,0) entry is 0 (zero-mean potential).
    std::vector<double> spec_;
    /// One length-w workspace per chunk of the h-row plan (rows_u).
    std::vector<std::unique_ptr<DctWorkspace>> ws_w_;
    /// One length-h workspace per chunk of the w-row plan (rows_v).
    std::vector<std::unique_ptr<DctWorkspace>> ws_h_;
};

}  // namespace rdp
