#pragma once
// Spectral solver for the placement Poisson problem (paper Eq. (1), following
// ePlace):
//
//   div grad psi(x, y) = -rho(x, y)   on the rectangular region R
//   n . grad psi       = 0            on the boundary (Neumann)
//   integral rho = integral psi = 0   (compatibility / uniqueness)
//
// With Neumann boundaries the natural basis is the product cosine basis at
// half-integer sample points; the solve is three 2D fast cosine/sine
// transforms. The same solver is used twice in the framework:
//   * the electrostatic density field D(x, y) with rho = cell area density,
//   * the paper's differentiable congestion field C(x, y) with
//     rho = Dmd/Cap from the global router (Section II-B).
//
// Everything here works in *grid index* units (unit bin spacing). Callers
// convert the field to physical units by dividing by the physical bin size.

#include <memory>

#include "util/grid2d.hpp"

namespace rdp {

/// Result of one Poisson solve. `field_x/y` hold E = -grad(psi).
struct PoissonSolution {
    GridF potential;
    GridF field_x;
    GridF field_y;
};

class DctWorkspace;

/// Reusable spectral Poisson solver for a fixed power-of-two grid size.
/// Holds preallocated transform workspaces, so repeated solves in the
/// placement loop are allocation-free apart from the result grids.
///
/// The 2D transforms run row/column batches in parallel (deterministic
/// chunking, see util/parallel.hpp): each chunk of rows (columns) owns a
/// private DctWorkspace from a pool sized to the chunk plan, which is a
/// function of the grid dimensions only. Rows write disjoint memory, so no
/// reduction is involved and results are thread-count invariant.
class PoissonSolver {
public:
    /// Width and height must be powers of two.
    PoissonSolver(int width, int height);
    ~PoissonSolver();
    PoissonSolver(const PoissonSolver&);
    PoissonSolver& operator=(const PoissonSolver&) = delete;

    int width() const { return w_; }
    int height() const { return h_; }

    /// Solve for the given charge density. The density is mean-shifted
    /// internally to satisfy the compatibility condition, and the returned
    /// potential has (numerically) zero mean.
    PoissonSolution solve(const GridF& rho) const;

    /// Potential only (cheaper when the field is not needed).
    GridF solve_potential(const GridF& rho) const;

private:
    void transform_rows_inplace(GridF& g, int kind) const;
    void transform_cols_inplace(GridF& g, int kind) const;
    void cosine_coefficients(GridF& rho) const;
    void subtract_mean(GridF& g) const;

    int w_;
    int h_;
    /// One length-w workspace per row-plan chunk; chunk c of the row loop
    /// uses row_ws_[c], so concurrent chunks never share scratch state.
    std::vector<std::unique_ptr<DctWorkspace>> row_ws_;
    /// One length-h workspace per column-plan chunk.
    std::vector<std::unique_ptr<DctWorkspace>> col_ws_;
};

/// Apply a 1D transform to every row (x-direction) of `g`.
/// `f` maps a length-width vector to a length-width vector.
template <typename F>
GridF transform_rows(const GridF& g, F&& f) {
    GridF out(g.width(), g.height());
    std::vector<double> buf(static_cast<size_t>(g.width()));
    for (int y = 0; y < g.height(); ++y) {
        for (int x = 0; x < g.width(); ++x) buf[x] = g.at(x, y);
        const std::vector<double> res = f(buf);
        for (int x = 0; x < g.width(); ++x) out.at(x, y) = res[x];
    }
    return out;
}

/// Apply a 1D transform to every column (y-direction) of `g`.
template <typename F>
GridF transform_cols(const GridF& g, F&& f) {
    GridF out(g.width(), g.height());
    std::vector<double> buf(static_cast<size_t>(g.height()));
    for (int x = 0; x < g.width(); ++x) {
        for (int y = 0; y < g.height(); ++y) buf[y] = g.at(x, y);
        const std::vector<double> res = f(buf);
        for (int y = 0; y < g.height(); ++y) out.at(x, y) = res[y];
    }
    return out;
}

}  // namespace rdp
