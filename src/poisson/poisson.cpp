#include "poisson/poisson.hpp"

#include <cassert>
#include <cmath>

#include "fft/dct.hpp"
#include "fft/fft.hpp"

namespace rdp {

PoissonSolver::PoissonSolver(int width, int height)
    : w_(width),
      h_(height),
      ws_x_(std::make_unique<DctWorkspace>(width)),
      ws_y_(std::make_unique<DctWorkspace>(height)) {
    assert(is_pow2(width) && is_pow2(height));
}

PoissonSolver::~PoissonSolver() = default;
PoissonSolver::PoissonSolver(const PoissonSolver& o)
    : PoissonSolver(o.w_, o.h_) {}

namespace {

enum class Kind { Dct2, Dct3, Idxst };

void apply_1d(DctWorkspace& ws, Kind k, double* x) {
    switch (k) {
        case Kind::Dct2: ws.dct2(x); break;
        case Kind::Dct3: ws.dct3(x); break;
        case Kind::Idxst: ws.idxst(x); break;
    }
}

}  // namespace

// Rows are contiguous in the row-major grid; columns go through a scratch
// buffer. Everything runs in place on `g`.
void PoissonSolver::transform_rows_inplace(GridF& g, int kind) const {
    for (int y = 0; y < h_; ++y)
        apply_1d(*ws_x_, static_cast<Kind>(kind), &g.at(0, y));
}

void PoissonSolver::transform_cols_inplace(GridF& g, int kind) const {
    std::vector<double> col(static_cast<size_t>(h_));
    for (int x = 0; x < w_; ++x) {
        for (int y = 0; y < h_; ++y) col[static_cast<size_t>(y)] = g.at(x, y);
        apply_1d(*ws_y_, static_cast<Kind>(kind), col.data());
        for (int y = 0; y < h_; ++y) g.at(x, y) = col[static_cast<size_t>(y)];
    }
}

// Cosine-series coefficients a_uv of rho:
//   rho[nx,ny] = sum_uv a_uv cos(w_u (nx+1/2)) cos(w_v (ny+1/2)),
//   w_u = pi u / M. From DCT-II orthogonality a_uv = p_u p_v / (M N) X_uv
// with p_0 = 1 and p_k = 2 otherwise. Input is overwritten.
void PoissonSolver::cosine_coefficients(GridF& rho) const {
    transform_rows_inplace(rho, static_cast<int>(Kind::Dct2));
    transform_cols_inplace(rho, static_cast<int>(Kind::Dct2));
    const double inv_mn = 1.0 / (static_cast<double>(w_) * h_);
    for (int v = 0; v < h_; ++v) {
        const double pv = (v == 0) ? 1.0 : 2.0;
        for (int u = 0; u < w_; ++u) {
            const double pu = (u == 0) ? 1.0 : 2.0;
            rho.at(u, v) *= pu * pv * inv_mn;
        }
    }
}

PoissonSolution PoissonSolver::solve(const GridF& rho) const {
    assert(rho.width() == w_ && rho.height() == h_);

    // Enforce the compatibility condition by removing the mean charge.
    GridF a = rho;
    const double mean = grid_mean(a);
    for (auto& v : a) v -= mean;
    cosine_coefficients(a);

    PoissonSolution sol;
    sol.potential = GridF(w_, h_);
    sol.field_x = GridF(w_, h_);
    sol.field_y = GridF(w_, h_);

    // psi coefficients a_uv / (w_u^2 + w_v^2); the (0,0) mode is fixed to 0
    // (zero-mean potential). Field coefficients carry an extra w factor.
    for (int v = 0; v < h_; ++v) {
        const double wv = M_PI * v / h_;
        for (int u = 0; u < w_; ++u) {
            const double wu = M_PI * u / w_;
            const double denom = wu * wu + wv * wv;
            const double c = (denom > 0.0) ? a.at(u, v) / denom : 0.0;
            sol.potential.at(u, v) = c;
            sol.field_x.at(u, v) = c * wu;
            sol.field_y.at(u, v) = c * wv;
        }
    }

    transform_rows_inplace(sol.potential, static_cast<int>(Kind::Dct3));
    transform_cols_inplace(sol.potential, static_cast<int>(Kind::Dct3));

    transform_rows_inplace(sol.field_x, static_cast<int>(Kind::Idxst));
    transform_cols_inplace(sol.field_x, static_cast<int>(Kind::Dct3));

    transform_rows_inplace(sol.field_y, static_cast<int>(Kind::Dct3));
    transform_cols_inplace(sol.field_y, static_cast<int>(Kind::Idxst));
    return sol;
}

GridF PoissonSolver::solve_potential(const GridF& rho) const {
    assert(rho.width() == w_ && rho.height() == h_);
    GridF a = rho;
    const double mean = grid_mean(a);
    for (auto& v : a) v -= mean;
    cosine_coefficients(a);
    for (int v = 0; v < h_; ++v) {
        const double wv = M_PI * v / h_;
        for (int u = 0; u < w_; ++u) {
            const double wu = M_PI * u / w_;
            const double denom = wu * wu + wv * wv;
            a.at(u, v) = (denom > 0.0) ? a.at(u, v) / denom : 0.0;
        }
    }
    transform_rows_inplace(a, static_cast<int>(Kind::Dct3));
    transform_cols_inplace(a, static_cast<int>(Kind::Dct3));
    return a;
}

}  // namespace rdp
