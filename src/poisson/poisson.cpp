#include "poisson/poisson.hpp"

#include <cassert>
#include <cmath>

#include "fft/dct.hpp"
#include "fft/fft.hpp"
#include "util/parallel.hpp"

namespace rdp {

namespace {

/// Chunk plans for the row/column batch loops. Grain 1: a row transform is
/// O(n log n), plenty of work per chunk; the plan depends on the grid
/// dimensions only, never on the thread count.
par::ChunkPlan row_plan(int h) { return par::plan(static_cast<size_t>(h), 1); }
par::ChunkPlan col_plan(int w) { return par::plan(static_cast<size_t>(w), 1); }

}  // namespace

PoissonSolver::PoissonSolver(int width, int height) : w_(width), h_(height) {
    assert(is_pow2(width) && is_pow2(height));
    row_ws_.resize(row_plan(h_).num_chunks);
    for (auto& ws : row_ws_) ws = std::make_unique<DctWorkspace>(w_);
    col_ws_.resize(col_plan(w_).num_chunks);
    for (auto& ws : col_ws_) ws = std::make_unique<DctWorkspace>(h_);
}

PoissonSolver::~PoissonSolver() = default;
PoissonSolver::PoissonSolver(const PoissonSolver& o)
    : PoissonSolver(o.w_, o.h_) {}

namespace {

enum class Kind { Dct2, Dct3, Idxst };

void apply_1d(DctWorkspace& ws, Kind k, double* x) {
    switch (k) {
        case Kind::Dct2: ws.dct2(x); break;
        case Kind::Dct3: ws.dct3(x); break;
        case Kind::Idxst: ws.idxst(x); break;
    }
}

}  // namespace

// Rows are contiguous in the row-major grid; columns go through a scratch
// buffer. Everything runs in place on `g`. Row chunks use distinct
// workspaces, so the batch is safe to run concurrently.
void PoissonSolver::transform_rows_inplace(GridF& g, int kind) const {
    par::run_chunks(row_plan(h_), [&](size_t b, size_t e, size_t c) {
        DctWorkspace& ws = *row_ws_[c];
        for (size_t y = b; y < e; ++y)
            apply_1d(ws, static_cast<Kind>(kind), &g.at(0, static_cast<int>(y)));
    });
}

void PoissonSolver::transform_cols_inplace(GridF& g, int kind) const {
    par::run_chunks(col_plan(w_), [&](size_t b, size_t e, size_t c) {
        DctWorkspace& ws = *col_ws_[c];
        std::vector<double> col(static_cast<size_t>(h_));
        for (size_t x = b; x < e; ++x) {
            const int xi = static_cast<int>(x);
            for (int y = 0; y < h_; ++y)
                col[static_cast<size_t>(y)] = g.at(xi, y);
            apply_1d(ws, static_cast<Kind>(kind), col.data());
            for (int y = 0; y < h_; ++y)
                g.at(xi, y) = col[static_cast<size_t>(y)];
        }
    });
}

// Cosine-series coefficients a_uv of rho:
//   rho[nx,ny] = sum_uv a_uv cos(w_u (nx+1/2)) cos(w_v (ny+1/2)),
//   w_u = pi u / M. From DCT-II orthogonality a_uv = p_u p_v / (M N) X_uv
// with p_0 = 1 and p_k = 2 otherwise. Input is overwritten.
void PoissonSolver::cosine_coefficients(GridF& rho) const {
    transform_rows_inplace(rho, static_cast<int>(Kind::Dct2));
    transform_cols_inplace(rho, static_cast<int>(Kind::Dct2));
    const double inv_mn = 1.0 / (static_cast<double>(w_) * h_);
    par::parallel_for(static_cast<size_t>(h_), 1, [&](size_t vb, size_t ve) {
        for (size_t v = vb; v < ve; ++v) {
            const double pv = (v == 0) ? 1.0 : 2.0;
            for (int u = 0; u < w_; ++u) {
                const double pu = (u == 0) ? 1.0 : 2.0;
                rho.at(u, static_cast<int>(v)) *= pu * pv * inv_mn;
            }
        }
    });
}

// Deterministic mean subtraction (compatibility condition): the sum is a
// chunked reduction in fixed chunk order.
void PoissonSolver::subtract_mean(GridF& g) const {
    const size_t n = g.size();
    if (n == 0) return;
    const double sum = par::parallel_sum(n, 16384, [&](size_t b, size_t e) {
        const double* p = g.data();
        double acc = 0.0;
        for (size_t i = b; i < e; ++i) acc += p[i];
        return acc;
    });
    const double mean = sum / static_cast<double>(n);
    par::parallel_for(n, 16384, [&](size_t b, size_t e) {
        double* p = g.data();
        for (size_t i = b; i < e; ++i) p[i] -= mean;
    });
}

PoissonSolution PoissonSolver::solve(const GridF& rho) const {
    assert(rho.width() == w_ && rho.height() == h_);

    // Enforce the compatibility condition by removing the mean charge.
    GridF a = rho;
    subtract_mean(a);
    cosine_coefficients(a);

    PoissonSolution sol;
    sol.potential = GridF(w_, h_);
    sol.field_x = GridF(w_, h_);
    sol.field_y = GridF(w_, h_);

    // psi coefficients a_uv / (w_u^2 + w_v^2); the (0,0) mode is fixed to 0
    // (zero-mean potential). Field coefficients carry an extra w factor.
    par::parallel_for(static_cast<size_t>(h_), 1, [&](size_t vb, size_t ve) {
        for (size_t vi = vb; vi < ve; ++vi) {
            const int v = static_cast<int>(vi);
            const double wv = M_PI * v / h_;
            for (int u = 0; u < w_; ++u) {
                const double wu = M_PI * u / w_;
                const double denom = wu * wu + wv * wv;
                const double c = (denom > 0.0) ? a.at(u, v) / denom : 0.0;
                sol.potential.at(u, v) = c;
                sol.field_x.at(u, v) = c * wu;
                sol.field_y.at(u, v) = c * wv;
            }
        }
    });

    transform_rows_inplace(sol.potential, static_cast<int>(Kind::Dct3));
    transform_cols_inplace(sol.potential, static_cast<int>(Kind::Dct3));

    transform_rows_inplace(sol.field_x, static_cast<int>(Kind::Idxst));
    transform_cols_inplace(sol.field_x, static_cast<int>(Kind::Dct3));

    transform_rows_inplace(sol.field_y, static_cast<int>(Kind::Dct3));
    transform_cols_inplace(sol.field_y, static_cast<int>(Kind::Idxst));
    return sol;
}

GridF PoissonSolver::solve_potential(const GridF& rho) const {
    assert(rho.width() == w_ && rho.height() == h_);
    GridF a = rho;
    subtract_mean(a);
    cosine_coefficients(a);
    par::parallel_for(static_cast<size_t>(h_), 1, [&](size_t vb, size_t ve) {
        for (size_t vi = vb; vi < ve; ++vi) {
            const int v = static_cast<int>(vi);
            const double wv = M_PI * v / h_;
            for (int u = 0; u < w_; ++u) {
                const double wu = M_PI * u / w_;
                const double denom = wu * wu + wv * wv;
                a.at(u, v) = (denom > 0.0) ? a.at(u, v) / denom : 0.0;
            }
        }
    });
    transform_rows_inplace(a, static_cast<int>(Kind::Dct3));
    transform_cols_inplace(a, static_cast<int>(Kind::Dct3));
    return a;
}

}  // namespace rdp
