#include "poisson/poisson.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "fft/dct.hpp"
#include "fft/fft.hpp"
#include "util/parallel.hpp"

namespace rdp {

namespace {

/// Chunk plans for the batched row loops. Grain 1: a row transform is
/// O(n log n), plenty of work per chunk; the plan depends on the grid
/// dimensions only, never on the thread count.
par::ChunkPlan band_plan(int rows) {
    return par::plan(static_cast<size_t>(rows), 1);
}

}  // namespace

PoissonSolver::PoissonSolver(int width, int height) : w_(width), h_(height) {
    assert(is_pow2(width) && is_pow2(height));
    wu_.resize(static_cast<size_t>(w_));
    for (int u = 0; u < w_; ++u)
        wu_[static_cast<size_t>(u)] = M_PI * u / w_;
    wv_.resize(static_cast<size_t>(h_));
    for (int v = 0; v < h_; ++v)
        wv_[static_cast<size_t>(v)] = M_PI * v / h_;

    // Spectral multiplier table: cosine-coefficient normalization
    // p_u p_v / (w h) (p_0 = 1, else 2) times the Poisson kernel
    // 1 / (w_u^2 + w_v^2), with the (0,0) mode pinned to 0. Precomputing
    // removes every divide from the per-solve spectral pass.
    spec_.resize(static_cast<size_t>(w_) * static_cast<size_t>(h_));
    const double inv_mn = 1.0 / (static_cast<double>(w_) * h_);
    for (int u = 0; u < w_; ++u) {
        const double wu = wu_[static_cast<size_t>(u)];
        const double pu = (u == 0) ? 1.0 : 2.0;
        double* row = spec_.data() + static_cast<size_t>(u) * h_;
        for (int v = 0; v < h_; ++v) {
            const double wv = wv_[static_cast<size_t>(v)];
            const double denom = wu * wu + wv * wv;
            const double pv = (v == 0) ? 1.0 : 2.0;
            row[v] = (denom > 0.0) ? pu * pv * inv_mn / denom : 0.0;
        }
    }

    ws_w_.resize(band_plan(h_).num_chunks);
    for (auto& ws : ws_w_) ws = std::make_unique<DctWorkspace>(w_);
    ws_h_.resize(band_plan(w_).num_chunks);
    for (auto& ws : ws_h_) ws = std::make_unique<DctWorkspace>(h_);
}

PoissonSolver::~PoissonSolver() = default;
PoissonSolver::PoissonSolver(const PoissonSolver& o)
    : PoissonSolver(o.w_, o.h_) {}

void PoissonSolver::apply_1d(DctWorkspace& ws, Kind k, double* x) {
    switch (k) {
        case Kind::Dct2: ws.dct2(x); break;
        case Kind::Dct3: ws.dct3(x); break;
        case Kind::Idxst: ws.idxst(x); break;
    }
}

// Rows are contiguous in the row-major grid, so every pass streams cache
// lines linearly. Row chunks use distinct workspaces from the pool, so the
// batch is safe to run concurrently and thread-count invariant.
void PoissonSolver::rows_u(GridF& g, Kind kind) const {
    assert(g.width() == w_ && g.height() == h_);
    par::run_chunks(band_plan(h_), [&](size_t b, size_t e, size_t c) {
        DctWorkspace& ws = *ws_w_[c];
        for (size_t y = b; y < e; ++y)
            apply_1d(ws, kind, &g.at(0, static_cast<int>(y)));
    });
}

void PoissonSolver::rows_v(GridF& g, Kind kind) const {
    assert(g.width() == h_ && g.height() == w_);
    par::run_chunks(band_plan(w_), [&](size_t b, size_t e, size_t c) {
        DctWorkspace& ws = *ws_h_[c];
        for (size_t u = b; u < e; ++u)
            apply_1d(ws, kind, &g.at(0, static_cast<int>(u)));
    });
}

// Enforce the compatibility condition while loading the input into scratch:
// dst = rho - mean(rho) in a single fused pass (deterministic chunked sum in
// fixed chunk order, then disjoint writes).
void PoissonSolver::load_mean_shifted(const GridF& rho, GridF& dst) const {
    if (dst.width() != w_ || dst.height() != h_) dst.resize(w_, h_);
    const size_t n = rho.size();
    if (n == 0) return;
    const double sum = par::parallel_sum(n, 16384, [&](size_t b, size_t e) {
        const double* p = rho.data();
        double acc = 0.0;
        for (size_t i = b; i < e; ++i) acc += p[i];
        return acc;
    });
    const double mean = sum / static_cast<double>(n);
    par::parallel_for(n, 16384, [&](size_t b, size_t e) {
        const double* src = rho.data();
        double* out = dst.data();
        for (size_t i = b; i < e; ++i) out[i] = src[i] - mean;
    });
}

// ta (transposed layout, rows indexed by u) holds the raw 2D DCT-II output
// X_uv. Replace it with the potential spectra c_uv = s X_uv spec_[u, v]
// (s = charge_scale, folded here by linearity instead of scaling the input)
// and optionally emit the y-field spectra c_uv w_v into tb.
void PoissonSolver::apply_spectral(GridF& ta, GridF* tb,
                                   double charge_scale) const {
    assert(ta.width() == h_ && ta.height() == w_);
    if (tb && (tb->width() != h_ || tb->height() != w_)) tb->resize(h_, w_);
    par::parallel_for(static_cast<size_t>(w_), 1, [&](size_t ub, size_t ue) {
        for (size_t ui = ub; ui < ue; ++ui) {
            const int u = static_cast<int>(ui);
            const double* sm = spec_.data() + static_cast<size_t>(u) * h_;
            double* trow = &ta.at(0, u);
            double* brow = tb ? &tb->at(0, u) : nullptr;
            if (brow) {
                for (int v = 0; v < h_; ++v) {
                    const double c = trow[v] * sm[v] * charge_scale;
                    trow[v] = c;
                    brow[v] = c * wv_[static_cast<size_t>(v)];
                }
            } else {
                for (int v = 0; v < h_; ++v)
                    trow[v] *= sm[v] * charge_scale;
            }
        }
    });
}

// Full solve: 7 batched row passes + 4 blocked transposes.
//
//   a  = rho - mean           (input layout)
//   a  = DCT2 rows (u)        forward pass 1
//   ta = a^T                  transpose 1
//   ta = DCT2 rows (v)        forward pass 2 -> X_uv
//   ta = c_uv, tb = c_uv w_v  fused spectral scale
//   ta = DCT3 rows (v)        shared v-pass for potential AND field_x
//   tb = IDXST rows (v)       v-pass for field_y
//   potential = ta^T          transpose 2
//   field_x   = ta^T * w_u    transpose 3 (w_u folded in as a column scale)
//   field_y   = tb^T          transpose 4
//   potential = DCT3 rows (u), field_x = IDXST rows (u),
//   field_y   = DCT3 rows (u)
//
// field_x's v-direction transform is identical to the potential's (w_u is
// constant along v), so the shared DCT3 pass is computed once and the w_u
// factor rides along with the transpose for free.
const PoissonSolution& PoissonSolver::solve(const GridF& rho,
                                            PoissonWorkspace& ws,
                                            double charge_scale) const {
    assert(rho.width() == w_ && rho.height() == h_);
    load_mean_shifted(rho, ws.a);
    rows_u(ws.a, Kind::Dct2);
    grid_transpose_into(ws.a, ws.ta);
    rows_v(ws.ta, Kind::Dct2);
    apply_spectral(ws.ta, &ws.tb, charge_scale);
    rows_v(ws.ta, Kind::Dct3);
    rows_v(ws.tb, Kind::Idxst);
    grid_transpose_into(ws.ta, ws.sol.potential);
    grid_transpose_into(ws.ta, ws.sol.field_x, wu_.data());
    grid_transpose_into(ws.tb, ws.sol.field_y);
    rows_u(ws.sol.potential, Kind::Dct3);
    rows_u(ws.sol.field_x, Kind::Idxst);
    rows_u(ws.sol.field_y, Kind::Dct3);
    return ws.sol;
}

const GridF& PoissonSolver::solve_potential(const GridF& rho,
                                            PoissonWorkspace& ws,
                                            double charge_scale) const {
    assert(rho.width() == w_ && rho.height() == h_);
    load_mean_shifted(rho, ws.a);
    rows_u(ws.a, Kind::Dct2);
    grid_transpose_into(ws.a, ws.ta);
    rows_v(ws.ta, Kind::Dct2);
    apply_spectral(ws.ta, nullptr, charge_scale);
    rows_v(ws.ta, Kind::Dct3);
    grid_transpose_into(ws.ta, ws.sol.potential);
    rows_u(ws.sol.potential, Kind::Dct3);
    return ws.sol.potential;
}

PoissonSolution PoissonSolver::solve(const GridF& rho) const {
    PoissonWorkspace ws;
    solve(rho, ws);
    return std::move(ws.sol);
}

GridF PoissonSolver::solve_potential(const GridF& rho) const {
    PoissonWorkspace ws;
    solve_potential(rho, ws);
    return std::move(ws.sol.potential);
}

}  // namespace rdp
