#pragma once
// Differentiable global congestion function (paper Section II-B).
//
// The router's Dmd/Cap ratio is used as the charge density of Poisson's
// equation (1):
//      rho_{m,n} = Dmd_{m,n} / Cap_{m,n}
// and the resulting electric potential psi is the congestion potential. The
// congestion penalty is C(x, y) = 1/2 sum_{i in V'} A_i psi_i over the set
// V' of selected multi-pin cells and virtual cells, and the per-cell
// congestion gradient is q grad(psi) = -q E, exactly as in the
// electrostatic density model — but applied to congestion charge.

#include "grid/bin_grid.hpp"
#include "grid/congestion_map.hpp"
#include "poisson/poisson.hpp"
#include "util/geometry.hpp"

namespace rdp {

class CongestionField {
public:
    explicit CongestionField(BinGrid grid);

    /// Solve Poisson's equation on rho = Dmd/Cap of the given map.
    void build(const CongestionMap& cmap);

    bool built() const { return built_; }
    const BinGrid& grid() const { return grid_; }
    const GridF& potential() const { return ws_.sol.potential; }

    /// Electric potential at a point (bilinear).
    double potential_at(Vec2 p) const;
    /// Field E = -grad(psi) at a point, converted to physical units.
    Vec2 field_at(Vec2 p) const;
    /// Congestion gradient of a charge of area `area` at point p:
    /// d/dp [area * psi(p)] = -area * E(p).
    Vec2 charge_gradient(Vec2 p, double area) const;

private:
    BinGrid grid_;
    PoissonSolver solver_;
    /// Solve scratch + results; build() writes potential/field in place, so
    /// rebuilds on a new congestion map are allocation-free.
    PoissonWorkspace ws_;
    bool built_ = false;
};

}  // namespace rdp
