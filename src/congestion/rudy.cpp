#include "congestion/rudy.hpp"

#include <algorithm>

#include "wirelength/hpwl.hpp"

namespace rdp {

GridF rudy_map(const Design& d, const BinGrid& grid, const RudyConfig& cfg) {
    GridF out = grid.make_grid();
    const double mean_extent = 0.5 * (grid.bin_w() + grid.bin_h());
    for (const Net& net : d.nets) {
        if (net.degree() < 2 || net.degree() > cfg.max_degree) continue;
        Rect bb = net_bbox(d, net);
        // Degenerate boxes still occupy at least one G-cell of extent.
        if (bb.width() < grid.bin_w())
            bb = Rect::from_center(bb.center(), grid.bin_w(), bb.height());
        if (bb.height() < grid.bin_h())
            bb = Rect::from_center(bb.center(), bb.width(), grid.bin_h());
        const double wl = bb.width() + bb.height();
        const double area = bb.area();
        if (area <= 0.0) continue;
        // Track units: wirelength assigned to the bin / G-cell extent.
        const double density = net.weight * wl / (area * mean_extent);
        grid.for_each_overlap(bb, [&](int ix, int iy, double a) {
            out.at(ix, iy) += density * a;
        });
    }
    return out;
}

GridF pin_rudy_map(const Design& d, const BinGrid& grid,
                   const RudyConfig& cfg) {
    GridF out = grid.make_grid();
    for (int p = 0; p < d.num_pins(); ++p) {
        const GridIndex g = grid.index_of(d.pin_position(p));
        out.at(g.ix, g.iy) += cfg.pin_weight;
    }
    return out;
}

CongestionMap rudy_congestion(const Design& d, const BinGrid& grid,
                              const RouterConfig& router_cfg,
                              const RudyConfig& cfg) {
    GridF dmd = rudy_map(d, grid, cfg);
    grid_add(dmd, pin_rudy_map(d, grid, cfg));

    const GlobalRouter router(grid, router_cfg);
    GridF cap_h, cap_v;
    router.build_capacity(d, cap_h, cap_v);
    GridF cap = cap_h;
    grid_add(cap, cap_v);
    return CongestionMap(grid, std::move(dmd), std::move(cap));
}

}  // namespace rdp
