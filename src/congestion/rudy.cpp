#include "congestion/rudy.hpp"

#include <algorithm>
#include <cstring>

#include "grid/splat_kernel.hpp"
#include "util/simd.hpp"
#include "wirelength/hpwl.hpp"

namespace rdp {

namespace {

// FNV-1a over 64-bit words (same scheme as the router's cache keys).
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    return h;
}

std::uint64_t hash_double(std::uint64_t h, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return hash_mix(h, bits);
}

/// Cache identity: netlist structure, grid geometry, and the RUDY knobs.
/// Per-net weight / bbox / density changes are diffed value-wise instead.
std::uint64_t rudy_key(const Design& d, const BinGrid& grid,
                       const RudyConfig& cfg) {
    std::uint64_t h = kFnvOffset;
    h = hash_mix(h, static_cast<std::uint64_t>(d.num_pins()));
    h = hash_mix(h, static_cast<std::uint64_t>(d.nets.size()));
    for (const Net& n : d.nets)
        h = hash_mix(h, static_cast<std::uint64_t>(n.pins.size()));
    h = hash_mix(h, static_cast<std::uint64_t>(grid.nx()));
    h = hash_mix(h, static_cast<std::uint64_t>(grid.ny()));
    h = hash_double(h, grid.region().lx);
    h = hash_double(h, grid.region().ly);
    h = hash_double(h, grid.region().hx);
    h = hash_double(h, grid.region().hy);
    h = hash_double(h, cfg.pin_weight);
    h = hash_mix(h, static_cast<std::uint64_t>(cfg.max_degree));
    return h;
}

/// This call's effective bounding box (degenerate boxes expanded to one
/// G-cell of extent) and track-unit density of `net` — the per-net values
/// whose change invalidates the bins the net touches.
void net_bb_density(const Design& d, const BinGrid& grid, const Net& net,
                    Rect& bb, double& density) {
    bb = net_bbox(d, net);
    if (bb.width() < grid.bin_w())
        bb = Rect::from_center(bb.center(), grid.bin_w(), bb.height());
    if (bb.height() < grid.bin_h())
        bb = Rect::from_center(bb.center(), bb.width(), grid.bin_h());
    const double mean_extent = 0.5 * (grid.bin_w() + grid.bin_h());
    const double wl = bb.width() + bb.height();
    const double area = bb.area();
    density = area > 0.0 ? net.weight * wl / (area * mean_extent) : 0.0;
}

/// Reconcile `S` with the current placement: recompute only the demand of
/// bins whose contributing nets or pins changed. A zeroed dirty bin is
/// re-accumulated over all overlapping nets in ascending net order — the
/// summation order of the full rebuild — so the maintained maps stay
/// bitwise identical to rudy_map / pin_rudy_map built from scratch.
void rudy_maps_impl(const Design& d, const BinGrid& grid,
                    const RudyConfig& cfg, IncrementalRudyState& S) {
    const int nx = grid.nx(), ny = grid.ny();
    const size_t num_nets = d.nets.size();
    const size_t num_pins = static_cast<size_t>(d.num_pins());
    const size_t num_bins = static_cast<size_t>(nx) * ny;

    ++S.stats.calls;
    const std::uint64_t key = rudy_key(d, grid, cfg);
    const bool fresh = !S.valid || S.key != key;

    if (fresh) {
        ++S.stats.full_rebuilds;
        S.net_skip.resize(num_nets);
        S.net_bb.resize(num_nets);
        S.net_density.resize(num_nets);
        S.pin_bin.resize(num_pins);
        S.wire = grid.make_grid();
        S.pins = grid.make_grid();
        for (size_t ni = 0; ni < num_nets; ++ni) {
            const Net& net = d.nets[ni];
            S.net_skip[ni] =
                net.degree() < 2 || net.degree() > cfg.max_degree ? 1 : 0;
            if (S.net_skip[ni]) {
                S.net_bb[ni] = Rect{};
                S.net_density[ni] = 0.0;
                continue;
            }
            net_bb_density(d, grid, net, S.net_bb[ni], S.net_density[ni]);
            // Row-vectorized per-bin accumulation. IEEE multiplication is
            // commutative bit for bit, so density*a from the scalar dirty
            // path below equals the kernel's a*density exactly — the
            // incremental-vs-fresh bitwise invariant is preserved.
            splat_rect<simd::VecD>(grid, S.wire, S.net_bb[ni],
                                   S.net_density[ni]);
            ++S.stats.nets_rescanned;
        }
        for (size_t p = 0; p < num_pins; ++p) {
            const GridIndex g = grid.index_of(d.pin_position(static_cast<int>(p)));
            S.pin_bin[p] = g.iy * nx + g.ix;
            S.pins.at(g.ix, g.iy) += cfg.pin_weight;
        }
        S.stats.bins_recomputed += static_cast<long long>(num_bins);
        S.valid = true;
        S.key = key;
        return;
    }

    // ---- Wire map: diff per-net (bb, density), mark touched bins dirty.
    S.dirty_wire.assign(num_bins, 0);
    auto mark = [&](const Rect& bb) {
        grid.for_each_overlap(bb, [&](int ix, int iy, double) {
            S.dirty_wire[static_cast<size_t>(iy) * nx + ix] = 1;
        });
    };
    bool any_wire_dirty = false;
    for (size_t ni = 0; ni < num_nets; ++ni) {
        if (S.net_skip[ni]) continue;  // degree is structural (keyed)
        Rect bb;
        double density = 0.0;
        net_bb_density(d, grid, d.nets[ni], bb, density);
        if (bb == S.net_bb[ni] && density == S.net_density[ni]) continue;
        mark(S.net_bb[ni]);  // old contribution region
        mark(bb);            // new contribution region
        S.net_bb[ni] = bb;
        S.net_density[ni] = density;
        any_wire_dirty = true;
    }
    if (any_wire_dirty) {
        // Zero the dirty bins, then re-add every overlapping net's
        // contribution in ascending net order. The summed-area table over
        // the dirty mask makes the per-net "touches anything dirty?" test
        // O(1), so unchanged far-away nets are skipped outright.
        long long dirty_count = 0;
        for (size_t b = 0; b < num_bins; ++b) {
            if (!S.dirty_wire[b]) continue;
            S.wire.data()[b] = 0.0;
            ++dirty_count;
        }
        S.stats.bins_recomputed += dirty_count;
        const int W = nx + 1;
        S.dirty_sat.assign(static_cast<size_t>(W) * (ny + 1), 0);
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x) {
                S.dirty_sat[static_cast<size_t>(y + 1) * W + (x + 1)] =
                    static_cast<int>(
                        S.dirty_wire[static_cast<size_t>(y) * nx + x]) +
                    S.dirty_sat[static_cast<size_t>(y) * W + (x + 1)] +
                    S.dirty_sat[static_cast<size_t>(y + 1) * W + x] -
                    S.dirty_sat[static_cast<size_t>(y) * W + x];
            }
        }
        auto span_has_dirty = [&](int x0, int y0, int x1, int y1) {
            return S.dirty_sat[static_cast<size_t>(y1 + 1) * W + (x1 + 1)] -
                       S.dirty_sat[static_cast<size_t>(y0) * W + (x1 + 1)] -
                       S.dirty_sat[static_cast<size_t>(y1 + 1) * W + x0] +
                       S.dirty_sat[static_cast<size_t>(y0) * W + x0] >
                   0;
        };
        for (size_t ni = 0; ni < num_nets; ++ni) {
            if (S.net_skip[ni]) continue;
            int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
            if (!grid.bin_span(S.net_bb[ni], x0, y0, x1, y1)) continue;
            if (!span_has_dirty(x0, y0, x1, y1)) continue;
            // Walk only the dirty bins of the span (clean rows skipped via
            // the SAT): a net whose box covers half the die but overlaps
            // three dirty bins pays for three bins, not for its box. The
            // overlap area is the same `r.intersect(region)`-vs-bin_box
            // expression for_each_overlap evaluates, so the accumulated
            // values match the fresh path's bit for bit.
            const double density = S.net_density[ni];
            const Rect c = S.net_bb[ni].intersect(grid.region());
            for (int iy = y0; iy <= y1; ++iy) {
                if (!span_has_dirty(x0, iy, x1, iy)) continue;
                for (int ix = x0; ix <= x1; ++ix) {
                    if (!S.dirty_wire[static_cast<size_t>(iy) * nx + ix])
                        continue;
                    const double a = c.overlap_area(grid.bin_box(ix, iy));
                    if (a > 0.0) S.wire.at(ix, iy) += density * a;
                }
            }
            ++S.stats.nets_rescanned;
        }
    }

    // ---- Pin map: diff per-pin bins, re-sum dirty bins in pin order.
    S.dirty_pin.assign(num_bins, 0);
    bool any_pin_dirty = false;
    for (size_t p = 0; p < num_pins; ++p) {
        const GridIndex g = grid.index_of(d.pin_position(static_cast<int>(p)));
        const int nb = g.iy * nx + g.ix;
        if (nb == S.pin_bin[p]) continue;
        S.dirty_pin[static_cast<size_t>(S.pin_bin[p])] = 1;
        S.dirty_pin[static_cast<size_t>(nb)] = 1;
        S.pin_bin[p] = nb;
        any_pin_dirty = true;
    }
    if (any_pin_dirty) {
        for (size_t b = 0; b < num_bins; ++b)
            if (S.dirty_pin[b]) S.pins.data()[b] = 0.0;
        for (size_t p = 0; p < num_pins; ++p) {
            const size_t b = static_cast<size_t>(S.pin_bin[p]);
            if (S.dirty_pin[b]) S.pins.data()[b] += cfg.pin_weight;
        }
    }
}

}  // namespace

GridF rudy_map(const Design& d, const BinGrid& grid, const RudyConfig& cfg) {
    IncrementalRudyState tmp;
    rudy_maps_impl(d, grid, cfg, tmp);
    return std::move(tmp.wire);
}

GridF pin_rudy_map(const Design& d, const BinGrid& grid,
                   const RudyConfig& cfg) {
    GridF out = grid.make_grid();
    for (int p = 0; p < d.num_pins(); ++p) {
        const GridIndex g = grid.index_of(d.pin_position(p));
        out.at(g.ix, g.iy) += cfg.pin_weight;
    }
    return out;
}

CongestionMap rudy_congestion(const Design& d, const BinGrid& grid,
                              const RouterConfig& router_cfg,
                              const RudyConfig& cfg,
                              IncrementalRudyState* state) {
    IncrementalRudyState tmp;
    IncrementalRudyState& S = state != nullptr ? *state : tmp;
    rudy_maps_impl(d, grid, cfg, S);
    GridF dmd = S.wire;
    grid_add(dmd, S.pins);

    const GlobalRouter router(grid, router_cfg);
    GridF cap_h, cap_v;
    router.build_capacity(d, cap_h, cap_v);
    GridF cap = cap_h;
    grid_add(cap, cap_v);
    return CongestionMap(grid, std::move(dmd), std::move(cap));
}

}  // namespace rdp
