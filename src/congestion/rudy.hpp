#pragma once
// RUDY / PinRUDY congestion estimation (Spindler & Johannes, DATE'07) —
// the router-free estimator the paper contrasts with router-based
// congestion (Section I: RUDY "treats all regions within the BB equally,
// overlooking the specific congestion situation"). Provided so the
// framework can run with either congestion source
// (ablation_congestion_source bench) and so the criticism is reproducible.
//
// RUDY spreads each net's expected wirelength (w + h) uniformly over its
// bounding box; PinRUDY adds pin-count pressure. Demands are scaled to the
// router's track units so the same CongestionMap/Eq. (3) machinery applies.

#include "db/design.hpp"
#include "grid/bin_grid.hpp"
#include "grid/congestion_map.hpp"
#include "router/global_router.hpp"

namespace rdp {

struct RudyConfig {
    /// Demand contribution per pin (matches the router's via pressure).
    double pin_weight = 0.25;
    /// Nets above this degree are skipped (match the BB-penalty cap).
    int max_degree = 64;
};

/// Classic RUDY: expected wirelength per bin, in track units
/// (wirelength-in-bin / mean G-cell extent).
GridF rudy_map(const Design& d, const BinGrid& grid, const RudyConfig& cfg = {});

/// Pin count per bin, weighted by cfg.pin_weight.
GridF pin_rudy_map(const Design& d, const BinGrid& grid,
                   const RudyConfig& cfg = {});

/// Full congestion map with RUDY + PinRUDY demand and the router's
/// capacity model (so Eq. (3) values are directly comparable with
/// router-based maps).
CongestionMap rudy_congestion(const Design& d, const BinGrid& grid,
                              const RouterConfig& router_cfg = {},
                              const RudyConfig& cfg = {});

}  // namespace rdp
