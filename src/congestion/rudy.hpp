#pragma once
// RUDY / PinRUDY congestion estimation (Spindler & Johannes, DATE'07) —
// the router-free estimator the paper contrasts with router-based
// congestion (Section I: RUDY "treats all regions within the BB equally,
// overlooking the specific congestion situation"). Provided so the
// framework can run with either congestion source
// (ablation_congestion_source bench) and so the criticism is reproducible.
//
// RUDY spreads each net's expected wirelength (w + h) uniformly over its
// bounding box; PinRUDY adds pin-count pressure. Demands are scaled to the
// router's track units so the same CongestionMap/Eq. (3) machinery applies.

#include <cstdint>
#include <vector>

#include "db/design.hpp"
#include "grid/bin_grid.hpp"
#include "grid/congestion_map.hpp"
#include "router/global_router.hpp"

namespace rdp {

struct RudyConfig {
    /// Demand contribution per pin (matches the router's via pressure).
    double pin_weight = 0.25;
    /// Nets above this degree are skipped (match the BB-penalty cap).
    int max_degree = 64;
};

/// Lifetime counters of one IncrementalRudyState (monotone).
struct IncrementalRudyStats {
    long long calls = 0;
    long long full_rebuilds = 0;
    long long nets_rescanned = 0;   ///< nets re-accumulated over dirty bins
    long long bins_recomputed = 0;  ///< wire-map bins zeroed + re-summed
};

/// Persistent cross-call RUDY state: cached per-net effective bounding
/// boxes / densities, per-pin bins, and the accumulated wire / pin demand
/// maps, maintained by dirty-bin rectangle updates (DESIGN.md §12).
///
/// Bitwise identity with the from-scratch maps is preserved by *not*
/// applying float deltas: a bin whose contributing set changed is zeroed
/// and every overlapping net's contribution is re-added in ascending net
/// order — the exact summation order of the full rebuild. Bins whose
/// contributing nets are all unchanged keep their value, which is the
/// same ordered sum.
struct IncrementalRudyState {
    bool valid = false;
    std::uint64_t key = 0;  ///< netlist structure + grid + config hash

    std::vector<unsigned char> net_skip;  ///< degree out of [2, max_degree]
    std::vector<Rect> net_bb;             ///< effective (expanded) net bbox
    std::vector<double> net_density;      ///< track-unit density over net_bb
    std::vector<int> pin_bin;             ///< per pin: iy * nx + ix

    GridF wire;  ///< accumulated rudy_map
    GridF pins;  ///< accumulated pin_rudy_map

    IncrementalRudyStats stats;

    // Reusable per-call buffers.
    std::vector<unsigned char> dirty_wire, dirty_pin;
    std::vector<int> dirty_sat;

    /// Drop the cached maps; the next call rebuilds from scratch (stats
    /// survive). Called by the recovery layer on placement rollback.
    void invalidate() { valid = false; }
};

/// Classic RUDY: expected wirelength per bin, in track units
/// (wirelength-in-bin / mean G-cell extent).
GridF rudy_map(const Design& d, const BinGrid& grid, const RudyConfig& cfg = {});

/// Pin count per bin, weighted by cfg.pin_weight.
GridF pin_rudy_map(const Design& d, const BinGrid& grid,
                   const RudyConfig& cfg = {});

/// Full congestion map with RUDY + PinRUDY demand and the router's
/// capacity model (so Eq. (3) values are directly comparable with
/// router-based maps). A non-null `state` enables dirty-bin incremental
/// demand updates across calls; the result is bitwise identical to the
/// stateless call (the stateless call runs the same implementation
/// against a short-lived empty state).
CongestionMap rudy_congestion(const Design& d, const BinGrid& grid,
                              const RouterConfig& router_cfg = {},
                              const RudyConfig& cfg = {},
                              IncrementalRudyState* state = nullptr);

}  // namespace rdp
