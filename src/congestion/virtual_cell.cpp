#include "congestion/virtual_cell.hpp"

#include <cmath>

namespace rdp {

VirtualCell find_virtual_cell(Vec2 p1, Vec2 p2, const CongestionMap& cmap) {
    VirtualCell vc;
    const double lx = cmap.grid().bin_w();
    const double ly = cmap.grid().bin_h();

    // Eq. (6): k = max(floor(|x1-x2|/l_x), floor(|y1-y2|/l_y)).
    const int kx = static_cast<int>(std::floor(std::abs(p1.x - p2.x) / lx));
    const int ky = static_cast<int>(std::floor(std::abs(p1.y - p2.y) / ly));
    vc.k = std::max(kx, ky);
    if (vc.k < 1) return vc;  // net stays inside one G-cell: no pivot

    // Eq. (7)-(8): evenly spaced interior candidates; keep the one whose
    // G-cell has the maximum Eq. (3) congestion.
    double best_c = -1.0;
    Vec2 best_pos;
    for (int i = 1; i <= vc.k; ++i) {
        const double t = static_cast<double>(i) / (vc.k + 1);
        const Vec2 cand = p1 + t * (p2 - p1);
        const double c = cmap.congestion_at_point(cand);
        if (c > best_c) {
            best_c = c;
            best_pos = cand;
        }
    }
    vc.valid = true;
    vc.pos = best_pos;
    vc.congestion = best_c;
    return vc;
}

}  // namespace rdp
