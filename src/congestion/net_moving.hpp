#pragma once
// Congestion gradient update for net moving (paper Algorithms 1 and 2).
//
// Unlike the density field — whose gradient is applied to every movable
// cell directly — the congestion field's gradient is redistributed through
// the netlist:
//   * two-pin nets get a virtual cell at the most congested point of the
//     pin-to-pin segment; the virtual cell's field gradient is projected
//     onto the segment normal and scaled by L/(2 d_iv) for each endpoint
//     cell (Algorithm 1, Eq. (9)), which moves the whole net sideways out
//     of the congested region;
//   * selected multi-pin cells (pin count above the design average AND
//     sitting in a G-cell with Eq. (3) congestion above a threshold) get
//     the plain field gradient (Algorithm 2, lines 7-15).
// Gradients superpose over all nets (Algorithm 2, closing remark).

#include <vector>

#include "congestion/congestion_field.hpp"
#include "congestion/virtual_cell.hpp"
#include "db/design.hpp"

namespace rdp {

struct NetMovingConfig {
    /// Alg. 2 line 11: Eq. (3) congestion a multi-pin cell's G-cell must
    /// exceed before the cell receives a direct congestion gradient.
    double multi_pin_congestion_threshold = 0.7;
    /// Two-pin moving is skipped when the virtual cell's congestion is at or
    /// below this (no congestion to escape from).
    double min_virtual_congestion = 0.0;
    /// Lower clamp for d_iv in Eq. (9) as a fraction of the G-cell diagonal,
    /// preventing an unbounded gradient when a pin coincides with c_v.
    double min_pin_distance_frac = 0.25;
    /// Upper clamp on the Eq. (9) factor L / (2 d_iv): very long nets with
    /// a pin right at the virtual cell would otherwise produce gradient
    /// spikes orders of magnitude above everything else.
    double max_distance_scale = 16.0;
    /// EXTENSION (not in the paper): apply the virtual-cell net-moving
    /// gradient to every MST edge of multi-pin nets as well, each edge
    /// weighted by 1/(degree-1). The paper restricts Algorithm 1 to
    /// two-pin nets and handles multi-pin nets only through Algorithm 2's
    /// cell moving; this generalizes the same mechanism to the tree edges.
    bool move_multi_pin_edges = false;
    /// Degree cap for the extension (giant nets contribute noise).
    int max_multi_pin_degree = 12;
};

struct NetMovingResult {
    /// Congestion gradient CGrad per cell (dC/d center); zero for cells not
    /// selected by either mechanism.
    std::vector<Vec2> cell_grad;
    /// Penalty C(x,y) = 1/2 sum_{i in V'} A_i psi_i over virtual cells and
    /// selected multi-pin cells.
    double penalty = 0.0;
    /// Movable cells located in G-cells with positive Eq. (3) congestion —
    /// the N_C of the lambda_2 schedule (Eq. (10)).
    int num_congested_cells = 0;
    int virtual_cells_created = 0;
    int multi_pin_updates = 0;
};

class NetMovingGradient {
public:
    explicit NetMovingGradient(NetMovingConfig cfg = {}) : cfg_(cfg) {}

    const NetMovingConfig& config() const { return cfg_; }

    /// Run Algorithm 2 over every net of the design.
    NetMovingResult compute(const Design& d, const CongestionMap& cmap,
                            const CongestionField& field) const;

    /// Algorithm 1 for a single two-pin net; adds the two endpoint-cell
    /// gradients into `grad` and returns the virtual cell (for tests /
    /// the Fig. 3 bench). `virtual_area` is the charge area of c_v.
    VirtualCell two_pin_gradient(const Design& d, Vec2 p1, Vec2 p2, int cell1,
                                 int cell2, double virtual_area,
                                 const CongestionMap& cmap,
                                 const CongestionField& field,
                                 std::vector<Vec2>& grad) const;

private:
    NetMovingConfig cfg_;
};

}  // namespace rdp
