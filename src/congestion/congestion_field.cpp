#include "congestion/congestion_field.hpp"

#include <cassert>

namespace rdp {

CongestionField::CongestionField(BinGrid grid)
    : grid_(grid), solver_(grid.nx(), grid.ny()) {}

void CongestionField::build(const CongestionMap& cmap) {
    assert(cmap.grid().nx() == grid_.nx() && cmap.grid().ny() == grid_.ny());
    const GridF rho = cmap.utilization_grid();
    const PoissonSolution sol = solver_.solve(rho);
    psi_ = sol.potential;
    ex_ = sol.field_x;
    ey_ = sol.field_y;
    built_ = true;
}

double CongestionField::potential_at(Vec2 p) const {
    assert(built_);
    return grid_.sample_bilinear(psi_, p);
}

Vec2 CongestionField::field_at(Vec2 p) const {
    assert(built_);
    const Vec2 e = grid_.sample_field(ex_, ey_, p);
    // Spectral field is in grid-index units; convert to physical.
    return {e.x / grid_.bin_w(), e.y / grid_.bin_h()};
}

Vec2 CongestionField::charge_gradient(Vec2 p, double area) const {
    const Vec2 e = field_at(p);
    return {-area * e.x, -area * e.y};
}

}  // namespace rdp
