#include "congestion/congestion_field.hpp"

#include <cassert>

namespace rdp {

CongestionField::CongestionField(BinGrid grid)
    : grid_(grid), solver_(grid.nx(), grid.ny()) {}

void CongestionField::build(const CongestionMap& cmap) {
    assert(cmap.grid().nx() == grid_.nx() && cmap.grid().ny() == grid_.ny());
    const GridF rho = cmap.utilization_grid();
    solver_.solve(rho, ws_);
    built_ = true;
}

double CongestionField::potential_at(Vec2 p) const {
    assert(built_);
    return grid_.sample_bilinear(ws_.sol.potential, p);
}

Vec2 CongestionField::field_at(Vec2 p) const {
    assert(built_);
    const Vec2 e = grid_.sample_field(ws_.sol.field_x, ws_.sol.field_y, p);
    // Spectral field is in grid-index units; convert to physical.
    return {e.x / grid_.bin_w(), e.y / grid_.bin_h()};
}

Vec2 CongestionField::charge_gradient(Vec2 p, double area) const {
    const Vec2 e = field_at(p);
    return {-area * e.x, -area * e.y};
}

}  // namespace rdp
