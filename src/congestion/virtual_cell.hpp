#pragma once
// Virtual-cell construction for two-pin net moving (paper Eq. (6)-(8) and
// Fig. 3(a)). For a two-pin net, k candidate points are sampled evenly
// along the pin-to-pin segment — one per traversed G-cell — and the
// candidate in the most congested G-cell becomes the position of a virtual
// standard cell c_v that serves as the pivot for the net-moving gradient.

#include "grid/congestion_map.hpp"
#include "util/geometry.hpp"

namespace rdp {

struct VirtualCell {
    bool valid = false;      ///< false when k = 0 (net within one G-cell)
    Vec2 pos;                ///< (x_v, y_v) of Eq. (8)
    double congestion = 0.0; ///< Eq. (3) congestion at the chosen G-cell
    int k = 0;               ///< number of candidates (Eq. (6))
};

/// Apply Eq. (6)-(8): k from G-cell spans, candidates at i/(k+1) fractions,
/// winner by maximum congestion value.
VirtualCell find_virtual_cell(Vec2 p1, Vec2 p2, const CongestionMap& cmap);

}  // namespace rdp
