#include "congestion/lambda_schedule.hpp"

#include <cmath>

namespace rdp {

double gradient_l1(const std::vector<Vec2>& grad) {
    double acc = 0.0;
    for (const Vec2& g : grad) acc += std::abs(g.x) + std::abs(g.y);
    return acc;
}

double compute_lambda2(int num_congested_cells, int num_total_cells,
                       double wirelength_grad_l1, double congestion_grad_l1) {
    if (num_total_cells <= 0) return 0.0;
    if (congestion_grad_l1 <= 0.0) return 0.0;
    const double coeff =
        2.0 * static_cast<double>(num_congested_cells) / num_total_cells;
    return coeff * wirelength_grad_l1 / congestion_grad_l1;
}

}  // namespace rdp
