#pragma once
// Adaptive congestion-penalty weight lambda_2 (paper Eq. (10)):
//
//   lambda_2 = (2 N_C / N) * ||grad W||_1 / ||grad C||_1
//
// When many cells sit in congested regions the weight grows and congestion
// dominates; as congestion clears, the weight decays and wirelength takes
// over again.

#include <vector>

#include "util/geometry.hpp"

namespace rdp {

/// L1 norm of a gradient field (sum of |x| + |y| over all entries).
double gradient_l1(const std::vector<Vec2>& grad);

/// Eq. (10). Returns 0 when the congestion gradient vanishes (nothing to
/// weight) or there are no cells.
double compute_lambda2(int num_congested_cells, int num_total_cells,
                       double wirelength_grad_l1, double congestion_grad_l1);

}  // namespace rdp
