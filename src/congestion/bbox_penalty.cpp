#include "congestion/bbox_penalty.hpp"

#include <algorithm>
#include <cmath>

#include "wirelength/hpwl.hpp"

namespace rdp {

namespace {

/// Integral of congestion along a vertical line at `x` over [ly, hy],
/// divided by the bin area (the marginal penalty of widening the box by
/// dx at that edge).
double edge_rate_vertical(const CongestionMap& cmap, double x, double ly,
                          double hy) {
    const BinGrid& g = cmap.grid();
    const GridIndex gx = g.index_of({x, std::clamp(ly, g.region().ly,
                                                   g.region().hy)});
    double acc = 0.0;
    const int iy0 = g.index_of({x, ly}).iy;
    const int iy1 = g.index_of({x, hy}).iy;
    for (int iy = iy0; iy <= iy1; ++iy) {
        const Rect b = g.bin_box(gx.ix, iy);
        const double h = std::min(hy, b.hy) - std::max(ly, b.ly);
        if (h <= 0.0) continue;
        acc += cmap.congestion_at(gx.ix, iy) * h / g.bin_area();
    }
    return acc;
}

/// Horizontal counterpart: line at `y` over [lx, hx].
double edge_rate_horizontal(const CongestionMap& cmap, double y, double lx,
                            double hx) {
    const BinGrid& g = cmap.grid();
    const GridIndex gy = g.index_of({std::clamp(lx, g.region().lx,
                                                g.region().hx),
                                     y});
    double acc = 0.0;
    const int ix0 = g.index_of({lx, y}).ix;
    const int ix1 = g.index_of({hx, y}).ix;
    for (int ix = ix0; ix <= ix1; ++ix) {
        const Rect b = g.bin_box(ix, gy.iy);
        const double w = std::min(hx, b.hx) - std::max(lx, b.lx);
        if (w <= 0.0) continue;
        acc += cmap.congestion_at(ix, gy.iy) * w / g.bin_area();
    }
    return acc;
}

/// Nets narrower than one G-cell still occupy routing tracks there: give
/// the box a minimum extent of one G-cell per dimension.
Rect effective_bbox(Rect bb, const BinGrid& g) {
    if (bb.width() < g.bin_w())
        bb = Rect::from_center(bb.center(), g.bin_w(), bb.height());
    if (bb.height() < g.bin_h())
        bb = Rect::from_center(bb.center(), bb.width(), g.bin_h());
    return bb;
}

}  // namespace

double BBoxCongestionGradient::net_penalty(const Design& d, const Net& net,
                                           const CongestionMap& cmap) const {
    if (net.degree() < 2) return 0.0;
    const Rect bb = effective_bbox(net_bbox(d, net), cmap.grid());
    double acc = 0.0;
    cmap.grid().for_each_overlap(bb, [&](int ix, int iy, double a) {
        acc += cmap.congestion_at(ix, iy) * a / cmap.grid().bin_area();
    });
    return acc;
}

BBoxPenaltyResult BBoxCongestionGradient::compute(
    const Design& d, const CongestionMap& cmap) const {
    BBoxPenaltyResult res;
    res.cell_grad.assign(static_cast<size_t>(d.num_cells()), Vec2{});

    for (const Net& net : d.nets) {
        if (net.degree() < 2 || net.degree() > cfg_.max_degree) continue;
        const Rect bb = effective_bbox(net_bbox(d, net), cmap.grid());
        const double p = net_penalty(d, net, cmap);
        if (p <= 0.0) continue;  // nothing congested inside the box
        res.penalty += p;
        ++res.nets_penalized;

        // Subgradient: each box edge moves with the extreme pin(s).
        int pin_lx = -1, pin_hx = -1, pin_ly = -1, pin_hy = -1;
        for (int pin : net.pins) {
            const Vec2 pos = d.pin_position(pin);
            if (pin_lx < 0 || pos.x < d.pin_position(pin_lx).x) pin_lx = pin;
            if (pin_hx < 0 || pos.x > d.pin_position(pin_hx).x) pin_hx = pin;
            if (pin_ly < 0 || pos.y < d.pin_position(pin_ly).y) pin_ly = pin;
            if (pin_hy < 0 || pos.y > d.pin_position(pin_hy).y) pin_hy = pin;
        }
        // Widening dP/d(edge); shrinking is the negative direction.
        const double r_hx = edge_rate_vertical(cmap, bb.hx, bb.ly, bb.hy);
        const double r_lx = edge_rate_vertical(cmap, bb.lx, bb.ly, bb.hy);
        const double r_hy = edge_rate_horizontal(cmap, bb.hy, bb.lx, bb.hx);
        const double r_ly = edge_rate_horizontal(cmap, bb.ly, bb.lx, bb.hx);

        auto add = [&](int pin, Vec2 g) {
            const int cell = d.pins[static_cast<size_t>(pin)].cell;
            if (!d.cells[static_cast<size_t>(cell)].movable()) return;
            res.cell_grad[static_cast<size_t>(cell)] += g;
        };
        add(pin_hx, {r_hx, 0.0});
        add(pin_lx, {-r_lx, 0.0});
        add(pin_hy, {0.0, r_hy});
        add(pin_ly, {0.0, -r_ly});
    }
    return res;
}

}  // namespace rdp
