#pragma once
// Bounding-box congestion penalty — the prior approach (Lin et al.,
// ICCAD'21 [2]) that the paper's differentiable net-moving replaces. Each
// net is penalized by the Eq. (3) congestion it overlaps inside its
// bounding box:
//
//   P(e) = sum_b C_b * A(BB(e) ∩ b) / A_b
//
// The (sub)gradient moves the bounding-box edges: shrinking or shifting
// an edge changes the overlapped congestion by the congestion integral
// along that edge strip, attributed to the pins that define the edge.
//
// The paper's Fig. 1(b) criticism is visible by construction: congestion
// anywhere inside the box is charged to the net even when the net's
// likely route never goes near it. The ablation bench
// (ablation_dc_model) compares this model against net moving.

#include <vector>

#include "db/design.hpp"
#include "grid/congestion_map.hpp"

namespace rdp {

struct BBoxPenaltyConfig {
    /// Nets with more pins than this are skipped (their BB covers most of
    /// the die and the model degenerates to a global drag).
    int max_degree = 32;
};

struct BBoxPenaltyResult {
    std::vector<Vec2> cell_grad;  ///< d(penalty)/d(cell center)
    double penalty = 0.0;
    int nets_penalized = 0;
};

class BBoxCongestionGradient {
public:
    explicit BBoxCongestionGradient(BBoxPenaltyConfig cfg = {}) : cfg_(cfg) {}

    const BBoxPenaltyConfig& config() const { return cfg_; }

    BBoxPenaltyResult compute(const Design& d, const CongestionMap& cmap) const;

    /// Penalty of one net (exposed for tests).
    double net_penalty(const Design& d, const Net& net,
                       const CongestionMap& cmap) const;

private:
    BBoxPenaltyConfig cfg_;
};

}  // namespace rdp
