#include "congestion/net_moving.hpp"

#include <cassert>
#include <cmath>

#include "congestion/virtual_cell.hpp"
#include "router/net_decompose.hpp"
#include "util/parallel.hpp"

namespace rdp {

VirtualCell NetMovingGradient::two_pin_gradient(
    const Design& d, Vec2 p1, Vec2 p2, int cell1, int cell2,
    double virtual_area, const CongestionMap& cmap,
    const CongestionField& field, std::vector<Vec2>& grad) const {
    (void)d;
    // Alg. 1 line 1-2: virtual cell at the most congested candidate point.
    const VirtualCell vc = find_virtual_cell(p1, p2, cmap);
    if (!vc.valid || vc.congestion <= cfg_.min_virtual_congestion) return vc;

    // Alg. 1 line 3: congestion gradient of c_v from the electric field
    // model: grad C_cv = A_v * grad(psi) = -A_v * E.
    const Vec2 grad_cv = field.charge_gradient(vc.pos, virtual_area);
    if (grad_cv.norm2() == 0.0) return vc;

    // Alg. 1 lines 4-5: segment length L and the unit normal n of the
    // segment, oriented to form an acute angle with grad C_cv.
    const Vec2 seg = p2 - p1;
    const double len = seg.norm();
    if (len <= 0.0) return vc;
    Vec2 n = seg.perp() / len;
    if (n.dot(grad_cv) < 0.0) n = n * -1.0;

    // Alg. 1 lines 6-10 / Eq. (9): project the gradient onto n and scale by
    // L / (2 d_iv) per endpoint.
    const Vec2 grad_perp = n * n.dot(grad_cv);
    const double diag =
        std::hypot(cmap.grid().bin_w(), cmap.grid().bin_h());
    const double dmin = cfg_.min_pin_distance_frac * diag;
    const Vec2 pin_pos[2] = {p1, p2};
    const int cells[2] = {cell1, cell2};
    for (int i = 0; i < 2; ++i) {
        const double div = std::max((pin_pos[i] - vc.pos).norm(), dmin);
        const double scale =
            std::min(len / (2.0 * div), cfg_.max_distance_scale);
        grad[static_cast<size_t>(cells[i])] += grad_perp * scale;
    }
    return vc;
}

NetMovingResult NetMovingGradient::compute(const Design& d,
                                           const CongestionMap& cmap,
                                           const CongestionField& field) const {
    assert(field.built());
    NetMovingResult res;
    const size_t num_cells = static_cast<size_t>(d.num_cells());
    res.cell_grad.assign(num_cells, Vec2{});

    // \bar{n}: average number of pins over all cells (Alg. 2 line 1).
    const double avg_pins = d.average_pins_per_cell();
    // Virtual cells have "the same size as a standard cell": use the mean
    // movable cell area of the design. Chunked reduction in fixed order.
    struct AreaAcc {
        double area = 0.0;
        long long n_mov = 0;
        int congested = 0;
    };
    const AreaAcc cells_acc = par::parallel_reduce(
        num_cells, 2048, AreaAcc{},
        [&](size_t b, size_t e) {
            AreaAcc acc;
            for (size_t i = b; i < e; ++i) {
                const Cell& c = d.cells[i];
                if (!c.movable()) continue;
                acc.area += c.area();
                ++acc.n_mov;
                // N_C for the lambda_2 schedule: movable cells in congested
                // G-cells.
                if (cmap.congestion_at_point(c.pos) > 0.0) ++acc.congested;
            }
            return acc;
        },
        [](AreaAcc a, AreaAcc b) {
            a.area += b.area;
            a.n_mov += b.n_mov;
            a.congested += b.congested;
            return a;
        });
    const double virtual_area =
        cells_acc.n_mov > 0 ? cells_acc.area / static_cast<double>(cells_acc.n_mov)
                            : 1.0;
    res.num_congested_cells = cells_acc.congested;

    // Parallel over nets: each chunk accumulates into its own gradient
    // vector and scalar counters; partials merge in fixed chunk order, so
    // the result is bitwise identical for any RDP_THREADS value.
    struct ChunkAcc {
        double penalty = 0.0;
        int virtual_cells = 0;
        int multi_pin = 0;
    };
    // No nets: run_chunks would never invoke the chunk body, leaving the
    // per-chunk accumulators unallocated for the merge below.
    if (d.nets.empty()) return res;
    const par::ChunkPlan cp = par::plan(d.nets.size(), 256, 16);
    std::vector<ChunkAcc> acc(cp.num_chunks);
    std::vector<std::vector<Vec2>> partial(cp.num_chunks);
    par::run_chunks(cp, [&](size_t nb, size_t ne, size_t c) {
        std::vector<Vec2>& grad = partial[c];
        grad.assign(num_cells, Vec2{});
        ChunkAcc& a = acc[c];
        for (size_t ni = nb; ni < ne; ++ni) {
            const Net& net = d.nets[ni];
            // Alg. 2 lines 4-6: two-pin nets get the net-moving gradient.
            if (net.degree() == 2) {
                const int pin1 = net.pins[0];
                const int pin2 = net.pins[1];
                const int c1 = d.pins[pin1].cell;
                const int c2 = d.pins[pin2].cell;
                const Vec2 p1 = d.pin_position(pin1);
                const Vec2 p2 = d.pin_position(pin2);
                // Only movable endpoints can be moved; a net between two
                // fixed cells gets no gradient. Mixed nets still get the
                // pivot so the movable endpoint is pushed.
                if (d.cells[c1].movable() || d.cells[c2].movable()) {
                    const VirtualCell vc =
                        two_pin_gradient(d, p1, p2, c1, c2, virtual_area,
                                         cmap, field, grad);
                    if (vc.valid &&
                        vc.congestion > cfg_.min_virtual_congestion) {
                        ++a.virtual_cells;
                        a.penalty +=
                            0.5 * virtual_area * field.potential_at(vc.pos);
                    }
                }
            }
            // Extension: net moving on the MST edges of multi-pin nets (off
            // by default; the paper's Algorithm 2 only moves selected cells).
            if (cfg_.move_multi_pin_edges && net.degree() >= 3 &&
                net.degree() <= cfg_.max_multi_pin_degree) {
                std::vector<Vec2> pts;
                pts.reserve(net.pins.size());
                for (int pin : net.pins) pts.push_back(d.pin_position(pin));
                const double edge_weight = 1.0 / (net.degree() - 1);
                for (const auto& [i, j] : manhattan_mst(pts)) {
                    const int ci =
                        d.pins[net.pins[static_cast<size_t>(i)]].cell;
                    const int cj =
                        d.pins[net.pins[static_cast<size_t>(j)]].cell;
                    if (!d.cells[static_cast<size_t>(ci)].movable() &&
                        !d.cells[static_cast<size_t>(cj)].movable())
                        continue;
                    // Scale just this edge's contribution: snapshot the two
                    // affected entries instead of clearing a full scratch
                    // grid.
                    const Vec2 gi0 = grad[static_cast<size_t>(ci)];
                    const Vec2 gj0 = grad[static_cast<size_t>(cj)];
                    const VirtualCell vc = two_pin_gradient(
                        d, pts[static_cast<size_t>(i)],
                        pts[static_cast<size_t>(j)], ci, cj, virtual_area,
                        cmap, field, grad);
                    if (!vc.valid ||
                        vc.congestion <= cfg_.min_virtual_congestion) {
                        grad[static_cast<size_t>(ci)] = gi0;
                        grad[static_cast<size_t>(cj)] = gj0;
                        continue;
                    }
                    ++a.virtual_cells;
                    a.penalty += 0.5 * edge_weight * virtual_area *
                                 field.potential_at(vc.pos);
                    auto& gi = grad[static_cast<size_t>(ci)];
                    gi = gi0 + (gi - gi0) * edge_weight;
                    if (cj != ci) {
                        auto& gj = grad[static_cast<size_t>(cj)];
                        gj = gj0 + (gj - gj0) * edge_weight;
                    }
                }
            }

            // Alg. 2 lines 7-15: selected multi-pin cells on this net.
            for (int pin : net.pins) {
                const int ci = d.pins[pin].cell;
                const Cell& cell = d.cells[static_cast<size_t>(ci)];
                if (!cell.movable()) continue;
                const int n_pins = static_cast<int>(cell.pins.size());
                if (static_cast<double>(n_pins) <= avg_pins) continue;
                const double cong = cmap.congestion_at_point(cell.pos);
                if (cong <= cfg_.multi_pin_congestion_threshold) continue;
                grad[static_cast<size_t>(ci)] +=
                    field.charge_gradient(cell.pos, cell.area());
                a.penalty +=
                    0.5 * cell.area() * field.potential_at(cell.pos);
                ++a.multi_pin;
            }
        }
    });

    for (size_t c = 0; c < cp.num_chunks; ++c) {
        res.penalty += acc[c].penalty;
        res.virtual_cells_created += acc[c].virtual_cells;
        res.multi_pin_updates += acc[c].multi_pin;
    }
    // Ordered merge of the per-chunk gradients (fixed cells never move:
    // their gradients stay zero).
    par::parallel_for(num_cells, 4096, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            if (!d.cells[i].movable()) continue;
            Vec2 g{};
            for (size_t c = 0; c < cp.num_chunks; ++c) g += partial[c][i];
            res.cell_grad[i] = g;
        }
    });
    return res;
}

}  // namespace rdp
