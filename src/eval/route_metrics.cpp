#include "eval/route_metrics.hpp"

#include <chrono>

#include "fft/fft.hpp"

namespace rdp {

EvalMetrics evaluate_placement(const Design& d, const EvalConfig& cfg) {
    EvalMetrics m;
    const int bins = next_pow2(cfg.grid_bins);
    const BinGrid grid(d.region, bins, bins);
    GlobalRouter router(grid, cfg.router);

    const auto t0 = std::chrono::steady_clock::now();
    const RouteResult rr = router.route(d);
    const auto t1 = std::chrono::steady_clock::now();
    m.route_seconds = std::chrono::duration<double>(t1 - t0).count();

    const double stub =
        cfg.pin_stub_frac * 0.5 * (grid.bin_w() + grid.bin_h());
    m.drwl = rr.wirelength_dbu + stub * d.num_pins();
    m.vias = rr.num_vias;
    m.total_overflow = rr.total_overflow;
    m.overflowed_gcells = rr.overflowed_gcells;
    m.drv_detail = drv_proxy(d, rr, cfg.drv);
    m.drvs = m.drv_detail.total;
    return m;
}

}  // namespace rdp
