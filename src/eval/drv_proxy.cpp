#include "eval/drv_proxy.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rdp {

DrvReport drv_proxy(const Design& d, const RouteResult& rr,
                    const DrvProxyConfig& cfg) {
    DrvReport rep;
    const CongestionMap& cmap = rr.congestion;
    const BinGrid& grid = cmap.grid();

    // (a) wiring overflow beyond the detour slack, weighted by severity.
    double overflow_acc = 0.0;
    for (int y = 0; y < grid.ny(); ++y) {
        for (int x = 0; x < grid.nx(); ++x) {
            const double cap = cmap.capacity().at(x, y);
            const double dmd = cmap.demand().at(x, y);
            const double over = std::max(dmd - cfg.overflow_slack * cap, 0.0);
            if (over <= 0.0) continue;
            const double util = cap > 0.0 ? dmd / cap : 1.0;
            overflow_acc += cfg.overflow_weight * over *
                            std::pow(util, cfg.severity_exponent);
        }
    }
    rep.overflow_drvs = static_cast<long long>(std::llround(overflow_acc));

    // (b) pin density beyond the local escape budget.
    GridF pin_count = grid.make_grid();
    for (int p = 0; p < d.num_pins(); ++p) {
        const GridIndex g = grid.index_of(d.pin_position(p));
        pin_count.at(g.ix, g.iy) += 1.0;
    }
    double pin_acc = 0.0;
    for (int y = 0; y < grid.ny(); ++y) {
        for (int x = 0; x < grid.nx(); ++x) {
            const double budget =
                cfg.pins_per_capacity * cmap.capacity().at(x, y);
            pin_acc += cfg.pin_density_weight *
                       std::max(pin_count.at(x, y) - budget, 0.0);
        }
    }
    rep.pin_density_drvs = static_cast<long long>(std::llround(pin_acc));

    // (c) pins under PG rails in congested G-cells. Horizontal rails are
    // indexed by their bottom edge so each pin costs a binary search.
    std::vector<const PGRail*> horiz, vert;
    for (const PGRail& r : d.pg_rails)
        (r.orient == Orient::Horizontal ? horiz : vert).push_back(&r);
    std::sort(horiz.begin(), horiz.end(),
              [](const PGRail* a, const PGRail* b) {
                  return a->box.ly < b->box.ly;
              });
    auto under_horiz = [&](Vec2 pos) {
        auto it = std::upper_bound(
            horiz.begin(), horiz.end(), pos.y,
            [](double y, const PGRail* r) { return y < r->box.ly; });
        // Rails starting at or below pos.y: check the closest few (rail
        // thicknesses are uniform, so one step back suffices; use two for
        // safety with cut rails sharing a boundary).
        for (int back = 1; back <= 2; ++back) {
            if (it == horiz.begin()) break;
            const PGRail* r = *std::prev(it, back);
            if (r->box.contains(pos)) return true;
            if (static_cast<size_t>(back) >=
                static_cast<size_t>(std::distance(horiz.begin(), it)))
                break;
        }
        return false;
    };
    double pg_acc = 0.0;
    for (int p = 0; p < d.num_pins(); ++p) {
        const Vec2 pos = d.pin_position(p);
        bool under_rail = under_horiz(pos);
        if (!under_rail) {
            for (const PGRail* r : vert) {
                if (r->box.contains(pos)) {
                    under_rail = true;
                    break;
                }
            }
        }
        if (!under_rail) continue;
        const GridIndex g = grid.index_of(pos);
        const double util = cmap.utilization_at(g.ix, g.iy);
        pg_acc += cfg.pg_pin_weight * std::max(util - cfg.pg_util_floor, 0.0);
    }
    rep.pg_access_drvs = static_cast<long long>(std::llround(pg_acc));

    rep.total = rep.overflow_drvs + rep.pin_density_drvs + rep.pg_access_drvs;
    return rep;
}

}  // namespace rdp
