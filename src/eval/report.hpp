#pragma once
// Table assembly helpers for the bench harnesses: per-design rows in the
// style of paper Table I and the "Avg. Ratio" summary rows of Tables I/II.

#include <string>
#include <vector>

#include "eval/route_metrics.hpp"
#include "util/table.hpp"

namespace rdp {

/// One placer's results on one design.
struct RunRecord {
    std::string design;
    std::string placer;
    double drwl = 0.0;
    long long vias = 0;
    long long drvs = 0;
    double place_seconds = 0.0;
    double route_seconds = 0.0;
};

/// Mean of per-design metric ratios vs a reference placer (the paper
/// normalizes each column to "Ours"). Zero-valued reference entries are
/// skipped.
struct RatioSummary {
    double drwl = 0.0;
    double vias = 0.0;
    double drvs = 0.0;
    double place_time = 0.0;
    double route_time = 0.0;
    int designs = 0;
};

/// Compute average ratios of `runs` against `reference` (matched by design
/// name). `skip_designs` lists designs excluded from the mean (the paper
/// excludes superblue12 for Xplace's DRV ratio).
RatioSummary average_ratios(const std::vector<RunRecord>& runs,
                            const std::vector<RunRecord>& reference,
                            const std::vector<std::string>& skip_designs = {});

/// Paper-Table-I-style table: one row per design per placer.
Table make_comparison_table(const std::vector<std::vector<RunRecord>>& placers);

}  // namespace rdp
