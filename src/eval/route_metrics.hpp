#pragma once
// Post-placement routing evaluation — the repo's stand-in for the Innovus
// global+detailed routing runs of the paper's Table I. The final placement
// is routed once more at evaluation resolution (finer grid, more rip-up
// rounds) and the detailed-routing metrics are derived:
//   DRWL    — routed wirelength (+ pin stubs),
//   #DRVias — vias from layer assignment,
//   #DRVs   — violation proxy (see drv_proxy.hpp),
//   RT      — wall-clock of this evaluation routing.

#include "db/design.hpp"
#include "eval/drv_proxy.hpp"
#include "router/global_router.hpp"

namespace rdp {

struct EvalConfig {
    /// Evaluation G-cell grid per side (power of two); typically 2x the
    /// placement grid for a finer, "detailed-routing-like" look.
    int grid_bins = 128;
    RouterConfig router = [] {
        RouterConfig rc;
        rc.rrr_rounds = 3;
        return rc;
    }();
    DrvProxyConfig drv;
    /// Extra wirelength per pin for the in-cell stub (fraction of the mean
    /// G-cell pitch).
    double pin_stub_frac = 0.25;
};

struct EvalMetrics {
    double drwl = 0.0;        ///< detailed-routing wirelength proxy (DBU)
    long long vias = 0;       ///< #DRVias
    long long drvs = 0;       ///< #DRVs proxy
    DrvReport drv_detail;
    double route_seconds = 0.0;
    double total_overflow = 0.0;
    int overflowed_gcells = 0;
};

/// Route `d` at evaluation resolution and compute the Table I metrics.
EvalMetrics evaluate_placement(const Design& d, const EvalConfig& cfg = {});

}  // namespace rdp
