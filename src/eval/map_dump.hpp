#pragma once
// Grid visualization: write scalar maps (density, congestion, potential)
// as binary PGM images so results can be inspected with any image viewer
// and diffed across runs. Row 0 of the grid is the bottom of the die and
// is written as the bottom image row.

#include <iosfwd>
#include <string>

#include "util/grid2d.hpp"

namespace rdp {

struct MapDumpConfig {
    /// Pixels per grid cell (nearest-neighbor upscale for viewability).
    int cell_pixels = 4;
    /// Values at or above this fraction of the max map to white; <= 0
    /// auto-scales to the grid maximum.
    double max_value = 0.0;
};

/// Write `g` as an 8-bit binary PGM (P5).
void write_pgm(const GridF& g, std::ostream& os, const MapDumpConfig& cfg = {});
void write_pgm_file(const GridF& g, const std::string& path,
                    const MapDumpConfig& cfg = {});

}  // namespace rdp
