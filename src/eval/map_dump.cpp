#include "eval/map_dump.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/io_atomic.hpp"

namespace rdp {

void write_pgm(const GridF& g, std::ostream& os, const MapDumpConfig& cfg) {
    const int px = std::max(cfg.cell_pixels, 1);
    const int w = g.width() * px;
    const int h = g.height() * px;
    const double vmax = cfg.max_value > 0.0 ? cfg.max_value : grid_max(g);

    os << "P5\n" << w << " " << h << "\n255\n";
    std::vector<unsigned char> row(static_cast<size_t>(w));
    // Image rows top-to-bottom; grid row (height-1) is the top of the die.
    for (int iy = g.height() - 1; iy >= 0; --iy) {
        for (int ix = 0; ix < g.width(); ++ix) {
            const double t =
                vmax > 0.0 ? std::clamp(g.at(ix, iy) / vmax, 0.0, 1.0) : 0.0;
            const auto v = static_cast<unsigned char>(std::lround(t * 255.0));
            for (int k = 0; k < px; ++k)
                row[static_cast<size_t>(ix * px + k)] = v;
        }
        for (int k = 0; k < px; ++k)
            os.write(reinterpret_cast<const char*>(row.data()),
                     static_cast<std::streamsize>(row.size()));
    }
}

void write_pgm_file(const GridF& g, const std::string& path,
                    const MapDumpConfig& cfg) {
    // Render to memory, publish atomically: image viewers polling the
    // dump directory never catch a half-written frame.
    std::ostringstream os(std::ios::binary);
    write_pgm(g, os, cfg);
    std::string err;
    if (!io::atomic_write(path, os.str(), &err))
        throw std::runtime_error("map_dump: cannot write " + path + " (" +
                                 err + ")");
}

}  // namespace rdp
