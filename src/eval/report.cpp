#include "eval/report.hpp"

#include <algorithm>
#include <cassert>

namespace rdp {

namespace {
const RunRecord* find_design(const std::vector<RunRecord>& runs,
                             const std::string& design) {
    for (const RunRecord& r : runs)
        if (r.design == design) return &r;
    return nullptr;
}
}  // namespace

RatioSummary average_ratios(const std::vector<RunRecord>& runs,
                            const std::vector<RunRecord>& reference,
                            const std::vector<std::string>& skip_designs) {
    RatioSummary s;
    double drwl = 0.0, vias = 0.0, drvs = 0.0, pt = 0.0, rt = 0.0;
    int n = 0, n_drv = 0;
    for (const RunRecord& r : runs) {
        const RunRecord* ref = find_design(reference, r.design);
        if (ref == nullptr) continue;
        ++n;
        if (ref->drwl > 0.0) drwl += r.drwl / ref->drwl;
        if (ref->vias > 0)
            vias += static_cast<double>(r.vias) / static_cast<double>(ref->vias);
        if (ref->place_seconds > 0.0) pt += r.place_seconds / ref->place_seconds;
        if (ref->route_seconds > 0.0) rt += r.route_seconds / ref->route_seconds;
        const bool skipped =
            std::find(skip_designs.begin(), skip_designs.end(), r.design) !=
            skip_designs.end();
        if (!skipped && ref->drvs > 0) {
            drvs += static_cast<double>(r.drvs) / static_cast<double>(ref->drvs);
            ++n_drv;
        }
    }
    if (n > 0) {
        s.drwl = drwl / n;
        s.vias = vias / n;
        s.place_time = pt / n;
        s.route_time = rt / n;
        s.designs = n;
    }
    if (n_drv > 0) s.drvs = drvs / n_drv;
    return s;
}

Table make_comparison_table(
    const std::vector<std::vector<RunRecord>>& placers) {
    std::vector<std::string> header = {"Design"};
    for (const auto& runs : placers) {
        const std::string p = runs.empty() ? "?" : runs.front().placer;
        header.push_back(p + " DRWL");
        header.push_back(p + " #Vias");
        header.push_back(p + " #DRVs");
        header.push_back(p + " PT/s");
        header.push_back(p + " RT/s");
    }
    Table t(header);
    if (placers.empty() || placers.front().empty()) return t;
    for (const RunRecord& first : placers.front()) {
        std::vector<std::string> row = {first.design};
        for (const auto& runs : placers) {
            const RunRecord* r = find_design(runs, first.design);
            if (r == nullptr) {
                for (int i = 0; i < 5; ++i) row.push_back("-");
                continue;
            }
            row.push_back(Table::fmt(r->drwl, 0));
            row.push_back(Table::fmt_int(r->vias));
            row.push_back(Table::fmt_int(r->drvs));
            row.push_back(Table::fmt(r->place_seconds, 2));
            row.push_back(Table::fmt(r->route_seconds, 2));
        }
        t.add_row(std::move(row));
    }
    return t;
}

}  // namespace rdp
