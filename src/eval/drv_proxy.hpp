#pragma once
// Detailed-routing violation (#DRVs) proxy.
//
// Innovus DRV counts on the ISPD 2015 benchmarks are dominated by
//  (a) wiring overflow — demand beyond capacity forces illegal spacing /
//      shorts in the overflowed G-cells,
//  (b) pin-density hot spots — more pins than the local routing resources
//      can escape cleanly,
//  (c) pin-accessibility failures under M2 PG rails in congested regions
//      (the failure mode the paper's DPA technique targets).
// The proxy counts exactly these three phenomena from the evaluation
// routing result, so placements are ranked by the same effects that rank
// them after real detailed routing, even though the absolute counts differ.

#include "db/design.hpp"
#include "router/global_router.hpp"

namespace rdp {

struct DrvProxyConfig {
    /// DRVs per unit of G-cell demand overflow (beyond the slack).
    double overflow_weight = 2.0;
    /// Demand up to slack * capacity is assumed fixable by detailed-routing
    /// detours and contributes no DRVs; only demand beyond it counts.
    double overflow_slack = 1.2;
    /// Overflow is weighted by util^severity — violations concentrate
    /// superlinearly in severe hotspots, which is what distinguishes
    /// routability-driven placements after detailed routing.
    double severity_exponent = 2.0;
    /// Pins a G-cell can escape per unit of total routing capacity.
    double pins_per_capacity = 1.5;
    /// DRVs per excess pin beyond the escape budget.
    double pin_density_weight = 1.0;
    /// DRVs per pin under a PG rail, scaled by local utilization above
    /// `pg_util_floor` (uncongested rail pins remain routable).
    double pg_pin_weight = 1.0;
    double pg_util_floor = 0.5;
};

struct DrvReport {
    long long total = 0;
    long long overflow_drvs = 0;
    long long pin_density_drvs = 0;
    long long pg_access_drvs = 0;
};

/// Score a routed placement. `rr` must come from routing `d` on grid
/// `rr.congestion.grid()`.
DrvReport drv_proxy(const Design& d, const RouteResult& rr,
                    const DrvProxyConfig& cfg = {});

}  // namespace rdp
