#include "wirelength/wa_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/parallel.hpp"
#include "util/simd.hpp"
#include "wirelength/wa_kernel.hpp"

namespace rdp {

double WAWirelength::wa_1d(const std::vector<double>& xs,
                           std::vector<double>& grad,
                           WaScratch& scratch) const {
    const size_t n = xs.size();
    grad.assign(n, 0.0);
    if (n < 2) return 0.0;

    // The kernel stores the tail lane group as a full vector, so the weight
    // scratch is padded to the lane width (see wa::padded_size).
    const size_t cap = wa::padded_size(n);
    if (scratch.wp.size() < cap) {
        scratch.wp.resize(cap);
        scratch.wm.resize(cap);
    }
    return wa::wa_1d_core<simd::VecD>(xs.data(), n, gamma_,
                                      scratch.wp.data(), scratch.wm.data(),
                                      grad.data());
}

double WAWirelength::net_wa(const Design& d, const Net& net) const {
    if (net.degree() < 2) return 0.0;
    std::vector<double> xs, ys, tmp;
    WaScratch scratch;
    xs.reserve(net.pins.size());
    ys.reserve(net.pins.size());
    for (int p : net.pins) {
        const Vec2 pos = d.pin_position(p);
        xs.push_back(pos.x);
        ys.push_back(pos.y);
    }
    return wa_1d(xs, tmp, scratch) + wa_1d(ys, tmp, scratch);
}

WirelengthResult WAWirelength::evaluate(const Design& d) const {
    WirelengthResult res;
    const size_t num_cells = static_cast<size_t>(d.num_cells());
    res.cell_grad.assign(num_cells, Vec2{});
    // No nets: run_chunks would never invoke the chunk body, leaving the
    // per-chunk accumulators unallocated for the merge below.
    if (d.nets.empty()) return res;

    // Parallel over nets. Each chunk owns a full-size gradient accumulator
    // (bounded by max_chunks = 16) plus a scalar total; partials are merged
    // in fixed chunk order below, so any thread count gives the same bits.
    const par::ChunkPlan cp = par::plan(d.nets.size(), 256, 16);
    std::vector<double> totals(cp.num_chunks, 0.0);
    std::vector<std::vector<Vec2>> partial(cp.num_chunks);
    par::run_chunks(cp, [&](size_t nb, size_t ne, size_t c) {
        std::vector<Vec2>& grad = partial[c];
        grad.assign(num_cells, Vec2{});
        std::vector<double> xs, ys, gx, gy;
        WaScratch scratch;
        double total = 0.0;
        for (size_t ni = nb; ni < ne; ++ni) {
            const Net& net = d.nets[ni];
            if (net.degree() < 2) continue;
            xs.clear();
            ys.clear();
            for (int p : net.pins) {
                const Vec2 pos = d.pin_position(p);
                xs.push_back(pos.x);
                ys.push_back(pos.y);
            }
            const double wx = wa_1d(xs, gx, scratch);
            const double wy = wa_1d(ys, gy, scratch);
            total += net.weight * (wx + wy);
            for (size_t i = 0; i < net.pins.size(); ++i) {
                const int cell = d.pins[net.pins[i]].cell;
                grad[static_cast<size_t>(cell)] +=
                    Vec2{gx[i], gy[i]} * net.weight;
            }
        }
        totals[c] = total;
    });

    for (size_t c = 0; c < cp.num_chunks; ++c) res.total += totals[c];
    // Ordered merge of the per-chunk gradients, parallel over cells.
    par::parallel_for(num_cells, 4096, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            Vec2 acc{};
            for (size_t c = 0; c < cp.num_chunks; ++c) acc += partial[c][i];
            res.cell_grad[i] = acc;
        }
    });
    return res;
}

}  // namespace rdp
