#pragma once
// Vectorized core of the one-dimensional weighted-average wirelength
// (the exp/weight and gradient loops of wa_model.cpp, DESIGN.md §14).
//
// Templated on the SIMD vector type so the production build instantiates
// the active simd::VecD while tests and benches also instantiate
// simd::ScalarVecD in the same binary and compare results bitwise.
//
// Determinism: every pass uses a fixed 4-lane structure. The min/max scan
// folds lane-wise then reduces lanes in index order; pass 1 keeps
// lane-private partial sums that are combined with reduce_add's fixed tree,
// and the tail group contributes through zeroed weight lanes — so the bits
// depend only on (xs, n, gamma), never on the backend or thread count
// (chunking lives one level up in WAWirelength::evaluate and is untouched).
// Pass 2 is purely elementwise in the same per-element op order on every
// backend, hence bit-identical by construction.
//
// The divisions of the pre-SIMD loop are replaced by multiplies with
// precomputed reciprocals (1/gamma, 1/sum): ~1 ulp different from the
// division form, well inside the WA model's smooth-max approximation
// tolerance, and worth ~25% of the kernel (vdivpd does not pipeline).

#include <cstddef>

#include "util/simd.hpp"

namespace rdp::wa {

/// Weight-buffer capacity needed for n coordinates: the last partial lane
/// group is stored as a full vector (dead lanes hold +0.0), so callers pad
/// the wp/wm scratch to the next multiple of the lane width.
inline size_t padded_size(size_t n) {
    constexpr size_t lanes = static_cast<size_t>(simd::kLanes);
    return (n + lanes - 1) & ~(lanes - 1);
}

/// 1D WA and gradient for n >= 2 pin coordinates. wp/wm must have capacity
/// >= padded_size(n); grad has length n. Returns smooth-max minus
/// smooth-min; grad[j] = d(WA_1d)/d(xs[j]).
template <typename V>
double wa_1d_core(const double* xs, size_t n, double gamma, double* wp,
                  double* wm, double* grad) {
    constexpr size_t lanes = static_cast<size_t>(simd::kLanes);

    // Min/max scan: lane-wise folds, lanes reduced in index order. Min and
    // max are associative and commutative over placement coordinates (the
    // one order-sensitive case, a +0.0 / -0.0 tie, still yields identical
    // weights: exp(±0/g) == 1.0 either way), so the vector fold matches the
    // sequential scan bit for bit.
    double xmax = xs[0], xmin = xs[0];
    size_t i = 1;
    if (n >= lanes) {
        V vmx = V::loadu(xs);
        V vmn = vmx;
        for (i = lanes; i + lanes <= n; i += lanes) {
            const V x = V::loadu(xs + i);
            vmx = vmax(vmx, x);
            vmn = vmin(vmn, x);
        }
        double mx[lanes], mn[lanes];
        vmx.storeu(mx);
        vmn.storeu(mn);
        xmax = mx[0];
        xmin = mn[0];
        for (size_t l = 1; l < lanes; ++l) {
            xmax = mx[l] > xmax ? mx[l] : xmax;
            xmin = mn[l] < xmin ? mn[l] : xmin;
        }
    }
    for (; i < n; ++i) {
        xmax = xs[i] > xmax ? xs[i] : xmax;
        xmin = xs[i] < xmin ? xs[i] : xmin;
    }

    // Pass 1: weights e^{(x-xmax)/g} / e^{(xmin-x)/g} plus the four sums.
    const double inv_gamma = 1.0 / gamma;
    const V vinvg = V::set1(inv_gamma);
    const V vxmax = V::set1(xmax);
    const V vxmin = V::set1(xmin);
    V sp_v = V::zero(), ap_v = V::zero();  // max side: sum w, sum x*w
    V sm_v = V::zero(), am_v = V::zero();  // min side
    i = 0;
    for (; i + lanes <= n; i += lanes) {
        const V x = V::loadu(xs + i);
        const V wpv = simd::stable_exp((x - vxmax) * vinvg);
        const V wmv = simd::stable_exp((vxmin - x) * vinvg);
        wpv.storeu(wp + i);
        wmv.storeu(wm + i);
        sp_v = sp_v + wpv;
        ap_v = mul_add(x, wpv, ap_v);
        sm_v = sm_v + wmv;
        am_v = mul_add(x, wmv, am_v);
    }
    if (i < n) {
        const int m = static_cast<int>(n - i);
        const V x = V::load_partial(xs + i, m);
        // Dead lanes get weight +0.0, so they add exactly nothing to the
        // sums and the bits match any other (backend, n) combination.
        const V wpv = zero_tail(simd::stable_exp((x - vxmax) * vinvg), m);
        const V wmv = zero_tail(simd::stable_exp((vxmin - x) * vinvg), m);
        wpv.storeu(wp + i);  // full store into the padded scratch
        wmv.storeu(wm + i);
        sp_v = sp_v + wpv;
        ap_v = mul_add(x, wpv, ap_v);
        sm_v = sm_v + wmv;
        am_v = mul_add(x, wmv, am_v);
    }
    const double sp = reduce_add(sp_v), ap = reduce_add(ap_v);
    const double sm = reduce_add(sm_v), am = reduce_add(am_v);
    const double fp = ap / sp;  // smooth max
    const double fm = am / sm;  // smooth min

    // Pass 2 (elementwise):
    //   d fp / d x_j = (w_j / sp) (1 + (x_j - fp)/g)
    //   d fm / d x_j = (w_j / sm) (1 - (x_j - fm)/g)
    const double inv_sp = 1.0 / sp, inv_sm = 1.0 / sm;
    const V visp = V::set1(inv_sp), vism = V::set1(inv_sm);
    const V vfp = V::set1(fp), vfm = V::set1(fm);
    const V one = V::set1(1.0);
    i = 0;
    for (; i + lanes <= n; i += lanes) {
        const V x = V::loadu(xs + i);
        const V dp = (V::loadu(wp + i) * visp) * (one + (x - vfp) * vinvg);
        const V dm = (V::loadu(wm + i) * vism) * (one - (x - vfm) * vinvg);
        (dp - dm).storeu(grad + i);
    }
    for (; i < n; ++i) {
        const double dp = (wp[i] * inv_sp) * (1.0 + (xs[i] - fp) * inv_gamma);
        const double dm = (wm[i] * inv_sm) * (1.0 - (xs[i] - fm) * inv_gamma);
        grad[i] = dp - dm;
    }
    return fp - fm;
}

}  // namespace rdp::wa
