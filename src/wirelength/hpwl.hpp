#pragma once
// Half-perimeter wirelength (HPWL) — the non-smooth objective the WA model
// approximates, and the metric reported for placement quality.

#include "db/design.hpp"

namespace rdp {

/// HPWL of one net (0 for degree < 2).
double net_hpwl(const Design& d, const Net& net);

/// Bounding box of one net's pins (empty Rect for degree 0).
Rect net_bbox(const Design& d, const Net& net);

/// Weighted total HPWL over all nets.
double total_hpwl(const Design& d);

}  // namespace rdp
