#include "wirelength/hpwl.hpp"

#include <algorithm>
#include <limits>

namespace rdp {

Rect net_bbox(const Design& d, const Net& net) {
    if (net.pins.empty()) return {};
    double lx = std::numeric_limits<double>::max();
    double ly = std::numeric_limits<double>::max();
    double hx = std::numeric_limits<double>::lowest();
    double hy = std::numeric_limits<double>::lowest();
    for (int p : net.pins) {
        const Vec2 pos = d.pin_position(p);
        lx = std::min(lx, pos.x);
        ly = std::min(ly, pos.y);
        hx = std::max(hx, pos.x);
        hy = std::max(hy, pos.y);
    }
    return {lx, ly, hx, hy};
}

double net_hpwl(const Design& d, const Net& net) {
    if (net.degree() < 2) return 0.0;
    const Rect b = net_bbox(d, net);
    return b.width() + b.height();
}

double total_hpwl(const Design& d) {
    double acc = 0.0;
    for (const Net& n : d.nets) acc += n.weight * net_hpwl(d, n);
    return acc;
}

}  // namespace rdp
