#pragma once
// Weighted-average (WA) wirelength model (Hsu, Chang, Balabanov, DAC'11),
// the smooth HPWL surrogate of paper Section II-A:
//
//   WA_x(e) = sum_i x_i e^{x_i/g} / sum_i e^{x_i/g}
//           - sum_i x_i e^{-x_i/g} / sum_i e^{-x_i/g}
//
// As gamma -> 0 the model converges to HPWL from below. The implementation
// shifts exponents by the pin max/min, so it is stable for any gamma and
// coordinate magnitude.
//
// evaluate() is parallel over nets with deterministic chunking (see
// util/parallel.hpp): each chunk accumulates into a private gradient vector
// and a private total; chunk partials are merged in fixed chunk order, so
// the result is bitwise identical for any RDP_THREADS value.

#include <vector>

#include "db/design.hpp"

namespace rdp {

/// Result of one full-netlist WA evaluation.
struct WirelengthResult {
    double total = 0.0;           ///< weighted WA wirelength over all nets
    std::vector<Vec2> cell_grad;  ///< d(total)/d(cell center), all cells
};

/// Reusable per-call scratch for wa_1d: the exponential weight buffers,
/// padded to the SIMD lane width (wa::padded_size). Callers (and each
/// parallel chunk) keep one instance so the inner loop is allocation-free
/// after warm-up.
struct WaScratch {
    std::vector<double> wp;  ///< max-side weights e^{(x_i - xmax)/g}
    std::vector<double> wm;  ///< min-side weights e^{(xmin - x_i)/g}
};

class WAWirelength {
public:
    /// gamma is the smoothing parameter of the exponent (same units as
    /// coordinates). A common choice is a few bin widths.
    explicit WAWirelength(double gamma) : gamma_(gamma) {}

    double gamma() const { return gamma_; }
    void set_gamma(double g) { gamma_ = g; }

    /// WA wirelength of one net (unweighted).
    double net_wa(const Design& d, const Net& net) const;

    /// Total weighted WA wirelength and analytic gradient wrt every cell
    /// center. Fixed cells receive gradient entries too; the optimizer simply
    /// ignores them.
    WirelengthResult evaluate(const Design& d) const;

    /// One-dimensional WA and d(WA)/d(coordinate) for a pin coordinate list.
    /// Overwrites `grad` (same length as xs); `scratch` provides the weight
    /// buffers and is resized as needed.
    double wa_1d(const std::vector<double>& xs, std::vector<double>& grad,
                 WaScratch& scratch) const;

private:
    double gamma_;
};

}  // namespace rdp
