#pragma once
// Weighted-average (WA) wirelength model (Hsu, Chang, Balabanov, DAC'11),
// the smooth HPWL surrogate of paper Section II-A:
//
//   WA_x(e) = sum_i x_i e^{x_i/g} / sum_i e^{x_i/g}
//           - sum_i x_i e^{-x_i/g} / sum_i e^{-x_i/g}
//
// As gamma -> 0 the model converges to HPWL from below. The implementation
// shifts exponents by the pin max/min, so it is stable for any gamma and
// coordinate magnitude.

#include <vector>

#include "db/design.hpp"

namespace rdp {

/// Result of one full-netlist WA evaluation.
struct WirelengthResult {
    double total = 0.0;           ///< weighted WA wirelength over all nets
    std::vector<Vec2> cell_grad;  ///< d(total)/d(cell center), all cells
};

class WAWirelength {
public:
    /// gamma is the smoothing parameter of the exponent (same units as
    /// coordinates). A common choice is a few bin widths.
    explicit WAWirelength(double gamma) : gamma_(gamma) {}

    double gamma() const { return gamma_; }
    void set_gamma(double g) { gamma_ = g; }

    /// WA wirelength of one net (unweighted).
    double net_wa(const Design& d, const Net& net) const;

    /// Total weighted WA wirelength and analytic gradient wrt every cell
    /// center. Fixed cells receive gradient entries too; the optimizer simply
    /// ignores them.
    WirelengthResult evaluate(const Design& d) const;

private:
    /// One-dimensional WA and d(WA)/d(coordinate) for a pin coordinate list.
    /// Appends per-pin derivative into `grad` (same length as xs).
    double wa_1d(const std::vector<double>& xs, std::vector<double>& grad) const;

    double gamma_;
};

}  // namespace rdp
