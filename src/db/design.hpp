#pragma once
// Netlist / floorplan database. Index-based references (ints) rather than
// pointers: cells, pins and nets live in flat vectors owned by Design, which
// keeps the hot placement loops cache-friendly and makes copies cheap.
//
// Conventions:
//  * Cell `pos` is the cell CENTER in DBU.
//  * Pin `offset` is relative to the owning cell's center.
//  * Macros are pre-placed and fixed (the ISPD 2015 designs we model have
//    fixed macro blocks); standard cells are movable.
//  * PG rails model the M2 power/ground stripes whose pin-accessibility the
//    paper's DPA technique optimizes (Section III-C).

#include <string>
#include <vector>

#include "util/geometry.hpp"

namespace rdp {

enum class CellKind {
    Movable,  ///< standard cell optimized by the placer
    Fixed,    ///< pre-placed standard cell / blockage
    Macro,    ///< fixed macro block
};

struct Pin {
    int cell = -1;   ///< owning cell index
    int net = -1;    ///< connected net index (-1 while unconnected)
    Vec2 offset;     ///< offset from the owning cell's center
};

struct Cell {
    std::string name;
    double width = 0.0;
    double height = 0.0;
    CellKind kind = CellKind::Movable;
    Vec2 pos;                ///< center position
    std::vector<int> pins;   ///< pin indices on this cell

    bool movable() const { return kind == CellKind::Movable; }
    bool is_macro() const { return kind == CellKind::Macro; }
    double area() const { return width * height; }
    Rect bbox() const { return Rect::from_center(pos, width, height); }
};

struct Net {
    std::string name;
    std::vector<int> pins;  ///< pin indices
    double weight = 1.0;

    int degree() const { return static_cast<int>(pins.size()); }
};

/// One standard-cell row of the core area.
struct Row {
    double y = 0.0;       ///< bottom edge
    double height = 0.0;
    double lx = 0.0;
    double hx = 0.0;
};

/// One M2 power/ground rail segment projected to 2D.
struct PGRail {
    Rect box;
    Orient orient = Orient::Horizontal;

    double length() const {
        return orient == Orient::Horizontal ? box.width() : box.height();
    }
};

/// Whole-design container: floorplan, cells, pins, nets, rows, PG rails.
class Design {
public:
    std::string name;
    Rect region;              ///< placement region
    double row_height = 1.0;  ///< standard row height
    double site_width = 1.0;  ///< legalization site width

    std::vector<Cell> cells;
    std::vector<Pin> pins;
    std::vector<Net> nets;
    std::vector<Row> rows;
    std::vector<PGRail> pg_rails;
    /// Routing blockage rectangles (the ISPD 2015 benchmarks ship these):
    /// routing capacity inside them is reduced; placement is unaffected.
    std::vector<Rect> routing_blockages;

    // ---- construction helpers -------------------------------------------
    /// Add a cell; returns its index.
    int add_cell(std::string cell_name, double w, double h, CellKind kind,
                 Vec2 pos = {});
    /// Add an (unconnected) pin on a cell; returns the pin index.
    int add_pin(int cell, Vec2 offset);
    /// Add an empty net; returns its index.
    int add_net(std::string net_name, double weight = 1.0);
    /// Connect an existing pin to an existing net.
    void connect(int net, int pin);
    /// Create uniform rows covering the region.
    void build_rows();

    // ---- queries ----------------------------------------------------------
    int num_cells() const { return static_cast<int>(cells.size()); }
    int num_pins() const { return static_cast<int>(pins.size()); }
    int num_nets() const { return static_cast<int>(nets.size()); }

    /// Absolute position of a pin.
    Vec2 pin_position(int pin) const {
        const Pin& p = pins[pin];
        return cells[p.cell].pos + p.offset;
    }

    /// Indices of all movable cells.
    std::vector<int> movable_cells() const;
    /// Indices of all macros.
    std::vector<int> macro_cells() const;

    double total_movable_area() const;
    double total_fixed_area() const;  ///< fixed + macro area inside region
    /// movable area / (region area - fixed area)
    double utilization() const;
    /// Mean pin count over all cells (the \bar{n} of Algorithm 2).
    double average_pins_per_cell() const;

    /// Clamp every movable cell center so its box stays inside the region.
    void clamp_movables_to_region();

    /// Structural consistency check; returns a list of human-readable
    /// problems (empty when the design is well-formed).
    std::vector<std::string> validate() const;
};

}  // namespace rdp
