#include "db/design.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdp {

int Design::add_cell(std::string cell_name, double w, double h, CellKind kind,
                     Vec2 pos) {
    Cell c;
    c.name = std::move(cell_name);
    c.width = w;
    c.height = h;
    c.kind = kind;
    c.pos = pos;
    cells.push_back(std::move(c));
    return num_cells() - 1;
}

int Design::add_pin(int cell, Vec2 offset) {
    assert(cell >= 0 && cell < num_cells());
    Pin p;
    p.cell = cell;
    p.offset = offset;
    pins.push_back(p);
    const int idx = num_pins() - 1;
    cells[cell].pins.push_back(idx);
    return idx;
}

int Design::add_net(std::string net_name, double weight) {
    Net n;
    n.name = std::move(net_name);
    n.weight = weight;
    nets.push_back(std::move(n));
    return num_nets() - 1;
}

void Design::connect(int net, int pin) {
    assert(net >= 0 && net < num_nets());
    assert(pin >= 0 && pin < num_pins());
    assert(pins[pin].net == -1 && "pin already connected");
    pins[pin].net = net;
    nets[net].pins.push_back(pin);
}

void Design::build_rows() {
    rows.clear();
    if (row_height <= 0.0) return;
    const int n = static_cast<int>(std::floor(region.height() / row_height));
    rows.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        Row r;
        r.y = region.ly + i * row_height;
        r.height = row_height;
        r.lx = region.lx;
        r.hx = region.hx;
        rows.push_back(r);
    }
}

std::vector<int> Design::movable_cells() const {
    std::vector<int> out;
    for (int i = 0; i < num_cells(); ++i)
        if (cells[i].movable()) out.push_back(i);
    return out;
}

std::vector<int> Design::macro_cells() const {
    std::vector<int> out;
    for (int i = 0; i < num_cells(); ++i)
        if (cells[i].is_macro()) out.push_back(i);
    return out;
}

double Design::total_movable_area() const {
    double a = 0.0;
    for (const Cell& c : cells)
        if (c.movable()) a += c.area();
    return a;
}

double Design::total_fixed_area() const {
    double a = 0.0;
    for (const Cell& c : cells)
        if (!c.movable()) a += c.bbox().overlap_area(region);
    return a;
}

double Design::utilization() const {
    const double free_area = region.area() - total_fixed_area();
    return free_area > 0.0 ? total_movable_area() / free_area : 0.0;
}

double Design::average_pins_per_cell() const {
    if (cells.empty()) return 0.0;
    return static_cast<double>(num_pins()) / num_cells();
}

void Design::clamp_movables_to_region() {
    for (Cell& c : cells) {
        if (!c.movable()) continue;
        const double hw = c.width / 2.0, hh = c.height / 2.0;
        c.pos.x = std::clamp(c.pos.x, region.lx + hw, region.hx - hw);
        c.pos.y = std::clamp(c.pos.y, region.ly + hh, region.hy - hh);
    }
}

std::vector<std::string> Design::validate() const {
    std::vector<std::string> problems;
    if (region.empty()) problems.push_back("empty placement region");
    for (int i = 0; i < num_pins(); ++i) {
        const Pin& p = pins[i];
        if (p.cell < 0 || p.cell >= num_cells())
            problems.push_back("pin " + std::to_string(i) + " has bad cell");
        if (p.net < -1 || p.net >= num_nets())
            problems.push_back("pin " + std::to_string(i) + " has bad net");
    }
    for (int i = 0; i < num_nets(); ++i) {
        for (int p : nets[i].pins) {
            if (p < 0 || p >= num_pins() || pins[p].net != i) {
                problems.push_back("net " + std::to_string(i) +
                                   " pin list inconsistent");
                break;
            }
        }
    }
    for (int i = 0; i < num_cells(); ++i) {
        const Cell& c = cells[i];
        if (c.width <= 0.0 || c.height <= 0.0)
            problems.push_back("cell " + c.name + " has non-positive size");
        for (int p : c.pins) {
            if (p < 0 || p >= num_pins() || pins[p].cell != i) {
                problems.push_back("cell " + c.name + " pin list inconsistent");
                break;
            }
        }
    }
    return problems;
}

}  // namespace rdp
