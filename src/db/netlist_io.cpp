#include "db/netlist_io.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/io_atomic.hpp"

namespace rdp {

ParseError::ParseError(int line, const std::string& reason)
    : std::runtime_error("netlist_io: " + reason + " at line " +
                         std::to_string(line)),
      line_(line),
      reason_(reason) {}

namespace {
const char* kind_tag(CellKind k) {
    switch (k) {
        case CellKind::Movable: return "mov";
        case CellKind::Fixed: return "fix";
        case CellKind::Macro: return "mac";
    }
    return "mov";
}

CellKind parse_kind(const std::string& s, int line) {
    if (s == "mov") return CellKind::Movable;
    if (s == "fix") return CellKind::Fixed;
    if (s == "mac") return CellKind::Macro;
    throw ParseError(line, "bad cell kind '" + s + "'");
}
}  // namespace

void write_design(const Design& d, std::ostream& os) {
    // Round-trip exactness: every double survives write -> read bitwise.
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "design " << d.name << "\n";
    os << "region " << d.region.lx << " " << d.region.ly << " " << d.region.hx
       << " " << d.region.hy << "\n";
    os << "rowheight " << d.row_height << "\n";
    os << "sitewidth " << d.site_width << "\n";
    for (const Cell& c : d.cells) {
        os << "cell " << c.name << " " << kind_tag(c.kind) << " " << c.width
           << " " << c.height << " " << c.pos.x << " " << c.pos.y << "\n";
    }
    for (const Pin& p : d.pins) {
        os << "pin " << p.cell << " " << p.offset.x << " " << p.offset.y
           << "\n";
    }
    for (const Net& n : d.nets) {
        os << "net " << n.name << " " << n.weight;
        for (int p : n.pins) os << " " << p;
        os << "\n";
    }
    for (const PGRail& r : d.pg_rails) {
        os << "rail " << (r.orient == Orient::Horizontal ? "h" : "v") << " "
           << r.box.lx << " " << r.box.ly << " " << r.box.hx << " " << r.box.hy
           << "\n";
    }
    for (const Rect& b : d.routing_blockages) {
        os << "blockage " << b.lx << " " << b.ly << " " << b.hx << " " << b.hy
           << "\n";
    }
}

void write_design_file(const Design& d, const std::string& path) {
    // Serialize to memory, then publish with one atomic rename: a crash
    // (or a concurrent reader) can never observe a torn design file.
    std::ostringstream os;
    write_design(d, os);
    std::string err;
    if (!io::atomic_write(path, os.str(), &err))
        throw std::runtime_error("netlist_io: cannot write " + path + " (" +
                                 err + ")");
}

Design read_design(std::istream& is) {
    Design d;
    std::string line;
    int line_no = 0;
    auto fail = [&](const std::string& msg) {
        throw ParseError(line_no, msg);
    };
    auto finite = [&](double v, const char* what) {
        if (!std::isfinite(v)) fail(std::string("non-finite ") + what);
    };
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ss(line);
        std::string tok;
        ss >> tok;
        if (tok == "design") {
            ss >> d.name;
        } else if (tok == "region") {
            if (!(ss >> d.region.lx >> d.region.ly >> d.region.hx >>
                  d.region.hy))
                fail("bad region");
            finite(d.region.lx, "region coordinate");
            finite(d.region.ly, "region coordinate");
            finite(d.region.hx, "region coordinate");
            finite(d.region.hy, "region coordinate");
            if (d.region.hx <= d.region.lx || d.region.hy <= d.region.ly)
                fail("region has non-positive extent");
        } else if (tok == "rowheight") {
            if (!(ss >> d.row_height)) fail("bad rowheight");
            if (!std::isfinite(d.row_height) || d.row_height <= 0.0)
                fail("rowheight must be finite and positive");
        } else if (tok == "sitewidth") {
            if (!(ss >> d.site_width)) fail("bad sitewidth");
            if (!std::isfinite(d.site_width) || d.site_width <= 0.0)
                fail("sitewidth must be finite and positive");
        } else if (tok == "cell") {
            std::string nm, kind;
            double w, h, cx, cy;
            if (!(ss >> nm >> kind >> w >> h >> cx >> cy)) fail("bad cell");
            finite(w, "cell width");
            finite(h, "cell height");
            finite(cx, "cell position");
            finite(cy, "cell position");
            if (w < 0.0 || h < 0.0) fail("negative cell dimensions");
            d.add_cell(nm, w, h, parse_kind(kind, line_no), {cx, cy});
        } else if (tok == "pin") {
            int cell;
            double dx, dy;
            if (!(ss >> cell >> dx >> dy)) fail("bad pin");
            if (cell < 0 || cell >= d.num_cells()) fail("pin on missing cell");
            finite(dx, "pin offset");
            finite(dy, "pin offset");
            d.add_pin(cell, {dx, dy});
        } else if (tok == "net") {
            std::string nm;
            double wgt;
            if (!(ss >> nm >> wgt)) fail("bad net");
            if (!std::isfinite(wgt) || wgt < 0.0)
                fail("net weight must be finite and non-negative");
            const int net = d.add_net(nm, wgt);
            int pin;
            while (ss >> pin) {
                if (pin < 0 || pin >= d.num_pins()) fail("net on missing pin");
                if (d.pins[static_cast<size_t>(pin)].net != -1)
                    fail("pin " + std::to_string(pin) +
                         " is already connected");
                d.connect(net, pin);
            }
            if (!ss.eof()) fail("bad pin index");
        } else if (tok == "blockage") {
            Rect b;
            if (!(ss >> b.lx >> b.ly >> b.hx >> b.hy)) fail("bad blockage");
            finite(b.lx, "blockage coordinate");
            finite(b.ly, "blockage coordinate");
            finite(b.hx, "blockage coordinate");
            finite(b.hy, "blockage coordinate");
            d.routing_blockages.push_back(b);
        } else if (tok == "rail") {
            std::string o;
            Rect b;
            if (!(ss >> o >> b.lx >> b.ly >> b.hx >> b.hy)) fail("bad rail");
            if (o != "h" && o != "v")
                fail("bad rail orientation '" + o + "'");
            finite(b.lx, "rail coordinate");
            finite(b.ly, "rail coordinate");
            finite(b.hx, "rail coordinate");
            finite(b.hy, "rail coordinate");
            PGRail r;
            r.box = b;
            r.orient = (o == "h") ? Orient::Horizontal : Orient::Vertical;
            d.pg_rails.push_back(r);
        } else {
            fail("unknown directive '" + tok + "'");
        }
    }
    d.build_rows();
    return d;
}

Design read_design_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("netlist_io: cannot open " + path);
    return read_design(is);
}

}  // namespace rdp
