#pragma once
// Plain-text netlist serialization ("bookshelf-lite"). One file carries the
// floorplan, cells, pins, nets, rows, and PG rails, so a generated benchmark
// can be saved, diffed, and re-loaded deterministically.
//
// Format (line oriented, '#' comments):
//   design <name>
//   region <lx> <ly> <hx> <hy>
//   rowheight <h>
//   sitewidth <w>
//   cell <name> <kind:mov|fix|mac> <w> <h> <cx> <cy>
//   pin <cellIndex> <dx> <dy>
//   net <name> <weight> <pinIndex> <pinIndex> ...
//   rail <h|v> <lx> <ly> <hx> <hy>
//   blockage <lx> <ly> <hx> <hy>

#include <iosfwd>
#include <string>

#include "db/design.hpp"

namespace rdp {

void write_design(const Design& d, std::ostream& os);
void write_design_file(const Design& d, const std::string& path);

/// Parses a design; throws std::runtime_error with a line number on a
/// malformed input.
Design read_design(std::istream& is);
Design read_design_file(const std::string& path);

}  // namespace rdp
