#pragma once
// Plain-text netlist serialization ("bookshelf-lite"). One file carries the
// floorplan, cells, pins, nets, rows, and PG rails, so a generated benchmark
// can be saved, diffed, and re-loaded deterministically.
//
// Format (line oriented, '#' comments):
//   design <name>
//   region <lx> <ly> <hx> <hy>
//   rowheight <h>
//   sitewidth <w>
//   cell <name> <kind:mov|fix|mac> <w> <h> <cx> <cy>
//   pin <cellIndex> <dx> <dy>
//   net <name> <weight> <pinIndex> <pinIndex> ...
//   rail <h|v> <lx> <ly> <hx> <hy>
//   blockage <lx> <ly> <hx> <hy>

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "db/design.hpp"

namespace rdp {

/// Typed parse failure: carries the 1-based input line and the reason.
/// Derives from std::runtime_error, so callers that only care about
/// "malformed input" keep working; what() reads
///   netlist_io: <reason> at line <line>
class ParseError : public std::runtime_error {
public:
    ParseError(int line, const std::string& reason);

    int line() const { return line_; }
    const std::string& reason() const { return reason_; }

private:
    int line_;
    std::string reason_;
};

void write_design(const Design& d, std::ostream& os);
void write_design_file(const Design& d, const std::string& path);

/// Parses a design; throws ParseError naming the offending line on any
/// malformed input: unknown directives, missing or trailing fields,
/// non-finite numbers, non-positive dimensions, inverted regions,
/// out-of-range cell/pin indices, and doubly-connected pins.
Design read_design(std::istream& is);
Design read_design_file(const std::string& path);

}  // namespace rdp
