#include "db/design_stats.hpp"

#include <ostream>

namespace rdp {

DesignStats compute_stats(const Design& d) {
    DesignStats s;
    for (const Cell& c : d.cells) {
        switch (c.kind) {
            case CellKind::Movable: ++s.num_movable; break;
            case CellKind::Fixed: ++s.num_fixed; break;
            case CellKind::Macro: ++s.num_macros; break;
        }
    }
    s.num_nets = d.num_nets();
    s.num_pins = d.num_pins();
    long degree_sum = 0;
    for (const Net& n : d.nets) {
        const int deg = n.degree();
        degree_sum += deg;
        if (deg >= static_cast<int>(s.degree_histogram.size()))
            s.degree_histogram.resize(static_cast<size_t>(deg) + 1, 0);
        ++s.degree_histogram[static_cast<size_t>(deg)];
    }
    s.avg_net_degree =
        d.num_nets() > 0 ? static_cast<double>(degree_sum) / d.num_nets() : 0.0;
    s.avg_pins_per_cell = d.average_pins_per_cell();
    s.utilization = d.utilization();
    s.movable_area = d.total_movable_area();
    s.fixed_area = d.total_fixed_area();
    return s;
}

std::ostream& operator<<(std::ostream& os, const DesignStats& s) {
    os << "movable=" << s.num_movable << " fixed=" << s.num_fixed
       << " macros=" << s.num_macros << " nets=" << s.num_nets
       << " pins=" << s.num_pins << " avg_deg=" << s.avg_net_degree
       << " util=" << s.utilization;
    return os;
}

}  // namespace rdp
