#pragma once
// Summary statistics of a design, used by the benchmark generator's tests
// (to check that generated circuits hit their target distributions) and by
// the bench harnesses' per-design header lines.

#include <iosfwd>
#include <vector>

#include "db/design.hpp"

namespace rdp {

struct DesignStats {
    int num_movable = 0;
    int num_fixed = 0;
    int num_macros = 0;
    int num_nets = 0;
    int num_pins = 0;
    double avg_net_degree = 0.0;
    double avg_pins_per_cell = 0.0;
    double utilization = 0.0;
    double movable_area = 0.0;
    double fixed_area = 0.0;
    /// net-degree histogram: index d holds the count of nets with degree d
    /// (index 0 and 1 count degenerate nets).
    std::vector<int> degree_histogram;
};

DesignStats compute_stats(const Design& d);

std::ostream& operator<<(std::ostream& os, const DesignStats& s);

}  // namespace rdp
