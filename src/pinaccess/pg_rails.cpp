#include "pinaccess/pg_rails.hpp"

namespace rdp {

void build_pg_rails(Design& d, const PGRailConfig& cfg) {
    d.pg_rails.clear();
    const double w = cfg.rail_width_frac * d.row_height;

    // Horizontal rails on row boundaries (VDD/VSS alternate; for placement
    // density purposes only the geometry matters).
    for (size_t i = 0; i < d.rows.size(); i += static_cast<size_t>(cfg.row_step)) {
        const Row& r = d.rows[i];
        PGRail rail;
        rail.orient = Orient::Horizontal;
        rail.box = Rect{r.lx, r.y - w / 2, r.hx, r.y + w / 2};
        d.pg_rails.push_back(rail);
    }
    // Top boundary of the last row.
    if (!d.rows.empty()) {
        const Row& r = d.rows.back();
        PGRail rail;
        rail.orient = Orient::Horizontal;
        rail.box =
            Rect{r.lx, r.y + r.height - w / 2, r.hx, r.y + r.height + w / 2};
        d.pg_rails.push_back(rail);
    }

    // Vertical power straps.
    if (cfg.vertical_straps > 0) {
        const double sw = cfg.strap_width_frac * d.region.width();
        for (int i = 0; i < cfg.vertical_straps; ++i) {
            const double x = d.region.lx + d.region.width() *
                                               (i + 1.0) /
                                               (cfg.vertical_straps + 1.0);
            PGRail rail;
            rail.orient = Orient::Vertical;
            rail.box =
                Rect{x - sw / 2, d.region.ly, x + sw / 2, d.region.hy};
            d.pg_rails.push_back(rail);
        }
    }
}

}  // namespace rdp
