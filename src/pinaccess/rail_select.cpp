#include "pinaccess/rail_select.hpp"

namespace rdp {

std::vector<PGRail> cut_rail(const PGRail& rail,
                             const std::vector<Rect>& blockers) {
    // Work along the rail's axis: collect blocker intervals that actually
    // overlap the rail's cross-section, then subtract.
    const bool horiz = rail.orient == Orient::Horizontal;
    const Interval base = horiz ? Interval{rail.box.lx, rail.box.hx}
                                : Interval{rail.box.ly, rail.box.hy};
    std::vector<Interval> cuts;
    for (const Rect& b : blockers) {
        if (!b.intersects(rail.box)) continue;
        cuts.push_back(horiz ? Interval{b.lx, b.hx} : Interval{b.ly, b.hy});
    }
    std::vector<PGRail> out;
    for (const Interval& piece : subtract_intervals(base, std::move(cuts))) {
        PGRail p = rail;
        if (horiz) {
            p.box.lx = piece.lo;
            p.box.hx = piece.hi;
        } else {
            p.box.ly = piece.lo;
            p.box.hy = piece.hi;
        }
        out.push_back(p);
    }
    return out;
}

std::vector<PGRail> select_pg_rails(const Design& d,
                                    const RailSelectConfig& cfg) {
    std::vector<Rect> blockers;
    for (const Cell& c : d.cells) {
        if (!c.is_macro()) continue;
        blockers.push_back(
            c.bbox().scaled_about_center(1.0 + cfg.macro_expand_frac));
    }

    const double min_h = cfg.min_length_frac * d.region.width();
    const double min_v = cfg.min_length_frac * d.region.height();

    std::vector<PGRail> selected;
    for (const PGRail& rail : d.pg_rails) {
        for (const PGRail& piece : cut_rail(rail, blockers)) {
            const double min_len =
                piece.orient == Orient::Horizontal ? min_h : min_v;
            if (piece.length() >= min_len) selected.push_back(piece);
        }
    }
    return selected;
}

}  // namespace rdp
