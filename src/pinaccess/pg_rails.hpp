#pragma once
// Power/ground rail geometry. The ISPD 2015 designs carry M2 PG rails along
// every standard-cell row (plus occasional vertical straps); cells whose
// pins end up under these rails are hard to reach from M1 (paper Section
// III-C). The generator calls this to give synthetic designs the same rail
// structure the paper's DPA technique targets.

#include <vector>

#include "db/design.hpp"

namespace rdp {

struct PGRailConfig {
    /// Rail thickness as a fraction of the row height.
    double rail_width_frac = 0.15;
    /// Horizontal rail every `row_step` row boundaries (1 = every row).
    int row_step = 1;
    /// Number of vertical power straps distributed across the region
    /// (0 disables them).
    int vertical_straps = 4;
    /// Vertical strap thickness as a fraction of the region width.
    double strap_width_frac = 0.004;
};

/// Build the PG rail set for a design with rows already constructed and
/// store it in d.pg_rails (replacing any existing rails).
void build_pg_rails(Design& d, const PGRailConfig& cfg = {});

}  // namespace rdp
