#pragma once
// PG rail selection for pin-accessibility (paper Section III-C step 1,
// Fig. 4). Indiscriminately raising density under every rail would choke
// the already-tight channels between macros, so:
//   1. every macro bounding box is expanded by 10%,
//   2. the expanded boxes cut the projected rails into pieces,
//   3. only pieces at least 0.2x the placement region's width (horizontal
//      rails) or height (vertical rails) survive.

#include <vector>

#include "db/design.hpp"

namespace rdp {

struct RailSelectConfig {
    /// Macro bounding-box expansion factor (paper: 10%).
    double macro_expand_frac = 0.10;
    /// Minimum surviving rail length as a fraction of the region extent in
    /// the rail's direction (paper: 0.2).
    double min_length_frac = 0.20;
};

/// Cut one rail by a set of blocking rectangles; returns surviving pieces
/// (any length — the length filter is applied by select_pg_rails).
std::vector<PGRail> cut_rail(const PGRail& rail,
                             const std::vector<Rect>& blockers);

/// Full selection: expand macros, cut all rails, filter by length.
std::vector<PGRail> select_pg_rails(const Design& d,
                                    const RailSelectConfig& cfg = {});

}  // namespace rdp
