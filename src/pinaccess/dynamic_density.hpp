#pragma once
// Dynamic pin-accessibility density adjustment (paper Section III-C step 2,
// Eq. (13)-(15)). The extra density of bin b is
//
//   D_b^PG = eta_b (1 + C_b) / A_b * sum_{i in V_PG} A_{PG_i  cap  b},
//   eta_b  = 1 if C_b > avg(C) else 0,
//
// i.e. selected-rail area in a bin counts as extra charge only while that
// bin is more congested than average, weighted up by its congestion. The
// density module consumes the extra charge in *area* units, so this file
// returns eta_b (1 + C_b) * railarea_b per bin.
//
// The static variant (rail area added everywhere with a constant weight,
// computed once before placement) reproduces Xplace-Route's pre-placement
// PG adjustment for the baseline/ablation comparison.

#include <vector>

#include "db/design.hpp"
#include "grid/bin_grid.hpp"
#include "grid/congestion_map.hpp"

namespace rdp {

/// Rasterize selected-rail area per bin (the sum term of Eq. (14)).
GridF rail_area_per_bin(const std::vector<PGRail>& selected,
                        const BinGrid& grid);

/// Eq. (13)-(15) dynamic extra charge (area units) per bin.
/// `rail_area` must come from rail_area_per_bin on the same grid.
GridF dynamic_pg_density(const GridF& rail_area, const CongestionMap& cmap);

/// Xplace-Route-style static adjustment: weight * rail area, no gating.
GridF static_pg_density(const GridF& rail_area, double weight = 1.0);

}  // namespace rdp
