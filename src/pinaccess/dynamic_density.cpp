#include "pinaccess/dynamic_density.hpp"

#include <cassert>

namespace rdp {

GridF rail_area_per_bin(const std::vector<PGRail>& selected,
                        const BinGrid& grid) {
    GridF area = grid.make_grid();
    for (const PGRail& r : selected) grid.splat_area(area, r.box);
    return area;
}

GridF dynamic_pg_density(const GridF& rail_area, const CongestionMap& cmap) {
    assert(cmap.grid().compatible(rail_area));
    const double avg = cmap.average_congestion();
    GridF extra(rail_area.width(), rail_area.height());
    for (int y = 0; y < extra.height(); ++y) {
        for (int x = 0; x < extra.width(); ++x) {
            const double c = cmap.congestion_at(x, y);
            const double eta = c > avg ? 1.0 : 0.0;  // Eq. (15)
            extra.at(x, y) = eta * (1.0 + c) * rail_area.at(x, y);
        }
    }
    return extra;
}

GridF static_pg_density(const GridF& rail_area, double weight) {
    GridF extra = rail_area;
    grid_scale(extra, weight);
    return extra;
}

}  // namespace rdp
