#include "router/layer_assign.hpp"

#include <cassert>
#include <cmath>

namespace rdp {

GridF LayerAssignment::demand_2d() const {
    GridF out;
    if (demand.empty()) return out;
    out = demand.front();
    for (size_t l = 1; l < demand.size(); ++l) grid_add(out, demand[l]);
    return out;
}

LayerAssignment assign_layers(const std::vector<LayerSpec>& specs,
                              const GridF& demand_h, const GridF& demand_v,
                              const GridF& bend_vias, const GridF& pin_vias) {
    LayerAssignment la;
    la.specs = specs;
    la.demand.assign(specs.size(), GridF(demand_h.width(), demand_h.height()));

    // Indices of layers per direction, bottom-up.
    std::vector<size_t> h_layers, v_layers;
    for (size_t l = 0; l < specs.size(); ++l) {
        (specs[l].dir == Orient::Horizontal ? h_layers : v_layers).push_back(l);
    }
    assert(!h_layers.empty() && !v_layers.empty());

    double climb_vias = 0.0;
    auto fill = [&](const GridF& dem, const std::vector<size_t>& layers,
                    int x, int y) {
        double remaining = dem.at(x, y);
        for (size_t i = 0; i < layers.size(); ++i) {
            const size_t l = layers[i];
            const double cap = specs[l].capacity;
            const double take =
                (i + 1 == layers.size()) ? remaining  // overflow stays on top
                                         : std::min(remaining, cap);
            la.demand[l].at(x, y) += take;
            // Wires pushed above the bottom layer of their direction pay an
            // (amortized) climb-via charge per occupied cell-track.
            climb_vias += 0.1 * static_cast<double>(i) * take;
            remaining -= take;
            if (remaining <= 0.0) break;
        }
    };

    double event_vias = 0.0;
    for (int y = 0; y < demand_h.height(); ++y) {
        for (int x = 0; x < demand_h.width(); ++x) {
            fill(demand_h, h_layers, x, y);
            fill(demand_v, v_layers, x, y);
            event_vias += bend_vias.at(x, y) + pin_vias.at(x, y);
        }
    }
    la.total_vias =
        static_cast<long long>(std::llround(event_vias + climb_vias));
    return la;
}

}  // namespace rdp
