#pragma once
// Maze (Dijkstra) routing fallback. Pattern routing explores only L and Z
// shapes; when a connection still overflows after rip-up-and-reroute, the
// router escalates to a full shortest-path search on the same directional
// cost grids (plus the via cost at every turn), restricted to a window
// around the connection. This mirrors the pattern→maze escalation of
// production global routers.

#include "router/pattern_route.hpp"
#include "util/geometry.hpp"

namespace rdp {

struct MazeConfig {
    /// Window margin around the endpoints' bounding box, in G-cells.
    int window_margin = 8;
};

/// Shortest path from (x0,y0) to (x1,y1) under the cost model, restricted
/// to the window. Returns an empty path only if the window somehow
/// disconnects the endpoints (cannot happen for margin >= 0 since the
/// window always contains both endpoints and is rectangular).
RoutePath maze_route(int x0, int y0, int x1, int y1, const RouteCostModel& m,
                     const MazeConfig& cfg = {});

}  // namespace rdp
