#pragma once
// Net decomposition for global routing: a multi-pin net is broken into
// two-pin connections along a rectilinear minimum spanning tree (Prim's
// algorithm under Manhattan distance). This approximates the RSMT topology
// real global routers use while staying O(k^2) per k-pin net, which is fine
// for the net degrees in our benchmark suite.

#include <utility>
#include <vector>

#include "util/geometry.hpp"

namespace rdp {

/// Edges (index pairs into pts) of a Manhattan-distance MST over pts.
/// Returns an empty vector for fewer than two points. Duplicate positions
/// are connected by zero-length edges.
std::vector<std::pair<int, int>> manhattan_mst(const std::vector<Vec2>& pts);

/// Total Manhattan length of the MST edges.
double mst_length(const std::vector<Vec2>& pts);

}  // namespace rdp
