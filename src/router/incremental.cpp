#include "router/incremental.hpp"

namespace rdp {

namespace {

/// Size `g` to nx x ny and zero it without shrinking its allocation.
void reset_grid(GridF& g, int nx, int ny) {
    if (g.width() == nx && g.height() == ny) {
        g.fill(0.0);
    } else {
        g.resize(nx, ny);
    }
}

}  // namespace

void RouterScratch::reset(int nx, int ny) {
    reset_grid(cap_h, nx, ny);
    reset_grid(cap_v, nx, ny);
    reset_grid(dem_h, nx, ny);
    reset_grid(dem_v, nx, ny);
    reset_grid(bend_vias, nx, ny);
    reset_grid(pin_vias, nx, ny);
    reset_grid(hist_h, nx, ny);
    reset_grid(hist_v, nx, ny);
    reset_grid(cost_h, nx, ny);
    reset_grid(cost_v, nx, ny);
}

void IncrementalRouteState::invalidate() {
    valid = false;
    calls_since_rebuild = 0;
}

}  // namespace rdp
