#include "router/global_router.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>

#include "audit/invariant_audit.hpp"
#include "router/net_decompose.hpp"
#include "util/parallel.hpp"

namespace rdp {

GlobalRouter::GlobalRouter(BinGrid grid, RouterConfig cfg)
    : grid_(grid), cfg_(std::move(cfg)) {
    assert(!cfg_.layers.empty());
}

std::vector<LayerSpec> GlobalRouter::effective_layers() const {
    std::vector<LayerSpec> out = cfg_.layers;
    for (LayerSpec& l : out) {
        const double extent =
            l.dir == Orient::Horizontal ? grid_.bin_h() : grid_.bin_w();
        l.capacity *= extent / cfg_.track_pitch;
    }
    return out;
}

void GlobalRouter::build_capacity(const Design& d, GridF& cap_h,
                                  GridF& cap_v) const {
    build_capacity_impl(d, effective_layers(), cap_h, cap_v);
}

void GlobalRouter::build_capacity_impl(const Design& d,
                                       const std::vector<LayerSpec>& layers,
                                       GridF& cap_h, GridF& cap_v) const {
    double base_h = 0.0, base_v = 0.0;
    for (const LayerSpec& l : layers)
        (l.dir == Orient::Horizontal ? base_h : base_v) += l.capacity;

    // Reuse the callers' grids when the geometry matches (the incremental
    // state passes the same scratch every call).
    if (cap_h.width() != grid_.nx() || cap_h.height() != grid_.ny())
        cap_h.resize(grid_.nx(), grid_.ny());
    if (cap_v.width() != grid_.nx() || cap_v.height() != grid_.ny())
        cap_v.resize(grid_.nx(), grid_.ny());
    for (auto& v : cap_h) v = base_h;
    for (auto& v : cap_v) v = base_v;

    // Pin blockage: pins eat tracks on the lowest horizontal layer, so
    // G-cells packed with cells lose horizontal capacity (local congestion).
    // Deterministic parallel scatter (ordered per-chunk merge).
    GridF pin_block = grid_.make_grid();
    parallel_splat(grid_, pin_block, static_cast<size_t>(d.num_pins()), 2048,
                   [&](GridF& g, size_t p) {
                       const GridIndex gi =
                           grid_.index_of(d.pin_position(static_cast<int>(p)));
                       g.at(gi.ix, gi.iy) += cfg_.pin_blockage;
                   });
    // Macro blockage: macros block all routing over them except the top
    // layer pair (a common modeling choice); scale capacity by uncovered
    // fraction plus a top-layer allowance.
    const double macro_pass = cfg_.layers.size() >= 4 ? 0.4 : 0.5;
    GridF macro_cover = grid_.make_grid();
    parallel_splat(grid_, macro_cover, d.cells.size(), 2048,
                   [&](GridF& g, size_t i) {
                       const Cell& c = d.cells[i];
                       if (!c.is_macro()) return;
                       grid_.splat_area(g, c.bbox());
                   });
    // PG-rail blockage on the lowest horizontal layer.
    GridF rail_cover = grid_.make_grid();
    parallel_splat(grid_, rail_cover, d.pg_rails.size(), 1024,
                   [&](GridF& g, size_t i) {
                       grid_.splat_area(g, d.pg_rails[i].box);
                   });
    // Routing blockages (ISPD 2015 style) remove capacity on all layers.
    GridF blockage_cover = grid_.make_grid();
    parallel_splat(grid_, blockage_cover, d.routing_blockages.size(), 1024,
                   [&](GridF& g, size_t i) {
                       grid_.splat_area(g, d.routing_blockages[i]);
                   });

    const double bin_area = grid_.bin_area();
    par::parallel_for(
        static_cast<size_t>(cap_h.height()), 1, [&](size_t yb, size_t ye) {
            for (size_t yi = yb; yi < ye; ++yi) {
                const int y = static_cast<int>(yi);
                for (int x = 0; x < cap_h.width(); ++x) {
                    cap_h.at(x, y) -= pin_block.at(x, y);
                    const double mc =
                        std::min(macro_cover.at(x, y) / bin_area, 1.0);
                    const double block = mc * (1.0 - macro_pass);
                    cap_h.at(x, y) *= (1.0 - block);
                    cap_v.at(x, y) *= (1.0 - block);
                    const double bc =
                        std::min(blockage_cover.at(x, y) / bin_area, 1.0);
                    cap_h.at(x, y) *= (1.0 - cfg_.routing_blockage_frac * bc);
                    cap_v.at(x, y) *= (1.0 - cfg_.routing_blockage_frac * bc);
                    const double rails =
                        std::min(rail_cover.at(x, y) / bin_area, 1.0);
                    cap_h.at(x, y) -= cfg_.pg_blockage_frac * base_h * rails;
                    cap_h.at(x, y) = std::max(cap_h.at(x, y), cfg_.min_capacity);
                    cap_v.at(x, y) = std::max(cap_v.at(x, y), cfg_.min_capacity);
                }
            }
        });
}

namespace {

/// Mutable routing state for one GlobalRouter::route() invocation. The
/// grids live in the (possibly persistent) RouterScratch; this wrapper
/// only binds them to the cost/commit logic.
struct RouteState {
    const RouterConfig& cfg;
    GridF &cap_h, &cap_v;
    GridF &dem_h, &dem_v;
    GridF &bend_vias, &pin_vias;
    GridF &hist_h, &hist_v;
    GridF &cost_h, &cost_v;

    RouteState(const RouterConfig& c, RouterScratch& ws)
        : cfg(c),
          cap_h(ws.cap_h),
          cap_v(ws.cap_v),
          dem_h(ws.dem_h),
          dem_v(ws.dem_v),
          bend_vias(ws.bend_vias),
          pin_vias(ws.pin_vias),
          hist_h(ws.hist_h),
          hist_v(ws.hist_v),
          cost_h(ws.cost_h),
          cost_v(ws.cost_v) {}

    double cell_cost(double dem, double cap, double hist) const {
        const double util = (dem + 1.0) / cap;
        double c = 1.0 + hist + 2.0 * util;
        if (util > 1.0) c += cfg.overflow_penalty * (util - 1.0);
        return c;
    }

    void refresh_cost(int x, int y) {
        cost_h.at(x, y) = cell_cost(dem_h.at(x, y), cap_h.at(x, y),
                                    hist_h.at(x, y));
        cost_v.at(x, y) = cell_cost(dem_v.at(x, y), cap_v.at(x, y),
                                    hist_v.at(x, y));
    }

    /// Elementwise, so the parallel version is trivially deterministic.
    void refresh_all_costs() {
        par::parallel_for(
            static_cast<size_t>(cost_h.height()), 1, [&](size_t yb, size_t ye) {
                for (size_t y = yb; y < ye; ++y)
                    for (int x = 0; x < cost_h.width(); ++x)
                        refresh_cost(x, static_cast<int>(y));
            });
    }

    /// Add (sign=+1) or remove (sign=-1) a path's demand, updating costs.
    void commit(const RoutePath& p, double sign) {
        for (const RouteSeg& s : p.segs) {
            if (s.horizontal()) {
                const int lo = std::min(s.x0, s.x1), hi = std::max(s.x0, s.x1);
                for (int x = lo; x <= hi; ++x) {
                    dem_h.at(x, s.y0) += sign;
                    refresh_cost(x, s.y0);
                }
            } else {
                const int lo = std::min(s.y0, s.y1), hi = std::max(s.y0, s.y1);
                for (int y = lo; y <= hi; ++y) {
                    dem_v.at(s.x0, y) += sign;
                    refresh_cost(s.x0, y);
                }
            }
        }
        // One via per bend, charged at the end cell of the earlier span.
        for (size_t i = 0; i + 1 < p.segs.size(); ++i) {
            bend_vias.at(p.segs[i].x1, p.segs[i].y1) += sign;
        }
    }

    bool path_overflows(const RoutePath& p) const {
        for (const RouteSeg& s : p.segs) {
            if (s.horizontal()) {
                const int lo = std::min(s.x0, s.x1), hi = std::max(s.x0, s.x1);
                for (int x = lo; x <= hi; ++x)
                    if (dem_h.at(x, s.y0) > cap_h.at(x, s.y0)) return true;
            } else {
                const int lo = std::min(s.y0, s.y1), hi = std::max(s.y0, s.y1);
                for (int y = lo; y <= hi; ++y)
                    if (dem_v.at(s.x0, y) > cap_v.at(s.x0, y)) return true;
            }
        }
        return false;
    }

    /// Would committing `p` leave any of its cells overflowed? Read-only
    /// equivalent of commit(+1) / path_overflows / commit(-1): demand is
    /// evaluated as-if-committed, counting how often the path itself covers
    /// each cell (a cell crossed by two same-direction spans gains 2).
    bool path_would_overflow(const RoutePath& p) const {
        auto coverage = [&](bool horizontal, int x, int y) {
            double add = 0.0;
            for (const RouteSeg& s : p.segs) {
                if (s.horizontal() != horizontal) continue;
                if (horizontal) {
                    if (s.y0 == y && x >= std::min(s.x0, s.x1) &&
                        x <= std::max(s.x0, s.x1))
                        add += 1.0;
                } else {
                    if (s.x0 == x && y >= std::min(s.y0, s.y1) &&
                        y <= std::max(s.y0, s.y1))
                        add += 1.0;
                }
            }
            return add;
        };
        for (const RouteSeg& s : p.segs) {
            if (s.horizontal()) {
                const int lo = std::min(s.x0, s.x1), hi = std::max(s.x0, s.x1);
                for (int x = lo; x <= hi; ++x)
                    if (dem_h.at(x, s.y0) + coverage(true, x, s.y0) >
                        cap_h.at(x, s.y0))
                        return true;
            } else {
                const int lo = std::min(s.y0, s.y1), hi = std::max(s.y0, s.y1);
                for (int y = lo; y <= hi; ++y)
                    if (dem_v.at(s.x0, y) + coverage(false, s.x0, y) >
                        cap_v.at(s.x0, y))
                        return true;
            }
        }
        return false;
    }
};

/// Accumulate a path's unit demand into phase-A grids without touching
/// costs (phase A routes against a frozen baseline). Unit increments on
/// doubles are integer-valued, so add/remove deltas are exact and the
/// result is independent of accumulation order.
void accumulate_path(GridF& dem_h, GridF& dem_v, GridF& bend_vias,
                     const RoutePath& p, double sign) {
    for (const RouteSeg& s : p.segs) {
        if (s.horizontal()) {
            const int lo = std::min(s.x0, s.x1), hi = std::max(s.x0, s.x1);
            for (int x = lo; x <= hi; ++x) dem_h.at(x, s.y0) += sign;
        } else {
            const int lo = std::min(s.y0, s.y1), hi = std::max(s.y0, s.y1);
            for (int y = lo; y <= hi; ++y) dem_v.at(s.x0, y) += sign;
        }
    }
    for (size_t i = 0; i + 1 < p.segs.size(); ++i)
        bend_vias.at(p.segs[i].x1, p.segs[i].y1) += sign;
}

// FNV-1a over 64-bit words: cheap, deterministic cache-identity hashing.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    return h;
}

std::uint64_t hash_double(std::uint64_t h, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return hash_mix(h, bits);
}

/// Everything the cached phase-A routes depend on besides pin bins and
/// capacity cells: grid geometry (bin centers feed the MST decomposition)
/// and the cost-model knobs of the baseline cost.
std::uint64_t router_config_key(const BinGrid& g, const RouterConfig& cfg) {
    std::uint64_t h = kFnvOffset;
    h = hash_mix(h, static_cast<std::uint64_t>(g.nx()));
    h = hash_mix(h, static_cast<std::uint64_t>(g.ny()));
    h = hash_double(h, g.region().lx);
    h = hash_double(h, g.region().ly);
    h = hash_double(h, g.region().hx);
    h = hash_double(h, g.region().hy);
    for (const LayerSpec& l : cfg.layers) {
        h = hash_mix(h, l.dir == Orient::Horizontal ? 1u : 2u);
        h = hash_double(h, l.capacity);
    }
    h = hash_double(h, cfg.track_pitch);
    h = hash_double(h, cfg.pin_blockage);
    h = hash_double(h, cfg.pg_blockage_frac);
    h = hash_double(h, cfg.routing_blockage_frac);
    h = hash_double(h, cfg.min_capacity);
    h = hash_double(h, cfg.overflow_penalty);
    h = hash_mix(h, static_cast<std::uint64_t>(cfg.max_bend_candidates));
    return h;
}

/// Netlist structure (net -> pin lists): cell movement never changes it,
/// so a key mismatch means the state belongs to a different design.
std::uint64_t design_structure_key(const Design& d) {
    std::uint64_t h = kFnvOffset;
    h = hash_mix(h, static_cast<std::uint64_t>(d.num_cells()));
    h = hash_mix(h, static_cast<std::uint64_t>(d.num_pins()));
    h = hash_mix(h, static_cast<std::uint64_t>(d.nets.size()));
    for (const Net& n : d.nets) {
        h = hash_mix(h, static_cast<std::uint64_t>(n.pins.size()));
        for (int p : n.pins) h = hash_mix(h, static_cast<std::uint64_t>(p));
    }
    return h;
}

}  // namespace

RouteResult GlobalRouter::route(const Design& d) const {
    // A short-lived empty state turns the stateless route into a full
    // rebuild through the one shared implementation.
    IncrementalRouteState tmp;
    return route_impl(d, tmp);
}

RouteResult GlobalRouter::route(const Design& d,
                                IncrementalRouteState* state) const {
    if (state == nullptr) return route(d);
    return route_impl(d, *state);
}

RouteResult GlobalRouter::route_impl(const Design& d,
                                     IncrementalRouteState& S) const {
    const AuditStageScope audit_scope("global-route");
    // Resolve the layer stack once per invocation; both capacity building
    // and the final layer assignment consume the same copy.
    const std::vector<LayerSpec> layers = effective_layers();
    const int nx = grid_.nx(), ny = grid_.ny();

    RouterScratch& ws = S.scratch;
    ws.reset(nx, ny);
    RouteState st(cfg_, ws);
    build_capacity_impl(d, layers, ws.cap_h, ws.cap_v);

    // Pin vias: every pin climbs from the pin layer into the stack.
    parallel_splat(grid_, ws.pin_vias, static_cast<size_t>(d.num_pins()), 2048,
                   [&](GridF& g, size_t p) {
                       const GridIndex gi =
                           grid_.index_of(d.pin_position(static_cast<int>(p)));
                       g.at(gi.ix, gi.iy) += 1.0;
                   });

    // ---- Phase A: reconcile the cached baseline routes ------------------
    // Cache identity and the deterministic rebuild epoch. The epoch fires
    // as a function of the call count only, never of the placement
    // trajectory, so rebuild timing is reproducible.
    ++S.stats.calls;
    const std::uint64_t ckey = router_config_key(grid_, cfg_);
    const std::uint64_t dkey = design_structure_key(d);
    bool fresh = !S.valid || S.config_key != ckey || S.design_key != dkey ||
                 S.nx != nx || S.ny != ny;
    if (!fresh && S.rebuild_epoch > 0 &&
        ++S.calls_since_rebuild >= S.rebuild_epoch)
        fresh = true;
    if (fresh) S.calls_since_rebuild = 0;

    // Pin-bin signatures of this call (disjoint writes -> deterministic).
    const size_t num_pins = static_cast<size_t>(d.num_pins());
    std::vector<int>& pin_bin = ws.pin_bin;
    pin_bin.resize(num_pins);
    par::parallel_for(num_pins, 2048, [&](size_t b, size_t e) {
        for (size_t p = b; p < e; ++p) {
            const GridIndex gi =
                grid_.index_of(d.pin_position(static_cast<int>(p)));
            pin_bin[p] = gi.iy * nx + gi.ix;
        }
    });

    // Baseline cost: capacity only (working demand and history are still
    // zero here). Phase-A routes scored against this frozen model are
    // order-independent and local to the endpoints' bounding box — the
    // two properties the per-net cache rests on.
    st.refresh_all_costs();
    const RouteCostModel base_model{&ws.cost_h, &ws.cost_v, 1.0};

    // Re-decompose nets whose pin-bin signature changed (all of them on a
    // fresh rebuild). Per-net MST over the pin-bin centers, written into
    // the net's fixed connection slots (a net of degree k always owns
    // exactly k-1 slots), chunked over nets with disjoint outputs.
    const size_t num_nets = d.nets.size();
    std::vector<unsigned char>& net_changed = ws.net_changed;
    net_changed.assign(num_nets, fresh ? 1 : 0);
    if (fresh) {
        S.net_first_conn.assign(num_nets + 1, 0);
        for (size_t ni = 0; ni < num_nets; ++ni) {
            const int deg = d.nets[ni].degree();
            S.net_first_conn[ni + 1] =
                S.net_first_conn[ni] + (deg >= 2 ? deg - 1 : 0);
        }
        const size_t total =
            static_cast<size_t>(S.net_first_conn[num_nets]);
        S.conns.assign(total, RouteConn{});
        S.paths.assign(total, RoutePath{});
        S.dem_h.resize(nx, ny);
        S.dem_v.resize(nx, ny);
        S.bend_vias.resize(nx, ny);
        ++S.stats.full_rebuilds;
    } else {
        par::parallel_for(num_nets, 256, [&](size_t b, size_t e) {
            for (size_t ni = b; ni < e; ++ni) {
                for (int p : d.nets[ni].pins) {
                    if (pin_bin[static_cast<size_t>(p)] ==
                        S.pin_bin[static_cast<size_t>(p)])
                        continue;
                    net_changed[ni] = 1;
                    break;
                }
            }
        });
    }
    par::parallel_for(num_nets, 64, [&](size_t nb, size_t ne) {
        std::vector<Vec2> pts;
        std::vector<GridIndex> bins;
        for (size_t ni = nb; ni < ne; ++ni) {
            if (!net_changed[ni]) continue;
            const Net& net = d.nets[ni];
            if (net.degree() < 2) continue;
            pts.clear();
            bins.clear();
            for (int p : net.pins) {
                const int pb = pin_bin[static_cast<size_t>(p)];
                const GridIndex gi{pb % nx, pb / nx};
                bins.push_back(gi);
                pts.push_back(grid_.bin_center(gi.ix, gi.iy));
            }
            int slot = S.net_first_conn[ni];
            for (const auto& [i, j] : manhattan_mst(pts)) {
                const GridIndex a = bins[static_cast<size_t>(i)];
                const GridIndex b = bins[static_cast<size_t>(j)];
                S.conns[static_cast<size_t>(slot++)] = {
                    a.ix, a.iy, b.ix, b.iy, static_cast<int>(ni),
                    std::abs(a.ix - b.ix) + std::abs(a.iy - b.iy)};
            }
            assert(slot == S.net_first_conn[ni + 1]);
        }
    });

    // A cached route is stale when its endpoint bounding box touches a
    // G-cell whose capacity changed: the baseline cost is a pure function
    // of the cell's capacity, and every L/Z candidate stays inside the
    // bbox. Summed-area table over the dirty mask -> O(1) per connection.
    std::vector<int>& todo = ws.todo;
    todo.clear();
    int nets_rerouted = 0;
    if (fresh) {
        todo.resize(S.conns.size());
        std::iota(todo.begin(), todo.end(), 0);
        for (size_t ni = 0; ni < num_nets; ++ni)
            if (S.net_first_conn[ni + 1] > S.net_first_conn[ni])
                ++nets_rerouted;
    } else {
        const int W = nx + 1;
        std::vector<int>& sat = ws.dirty_sat;
        sat.assign(static_cast<size_t>(W) * (ny + 1), 0);
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x) {
                const int dirty =
                    ws.cap_h.at(x, y) != S.cap_h.at(x, y) ||
                            ws.cap_v.at(x, y) != S.cap_v.at(x, y)
                        ? 1
                        : 0;
                sat[static_cast<size_t>(y + 1) * W + (x + 1)] =
                    dirty + sat[static_cast<size_t>(y) * W + (x + 1)] +
                    sat[static_cast<size_t>(y + 1) * W + x] -
                    sat[static_cast<size_t>(y) * W + x];
            }
        }
        auto rect_has_dirty = [&](int x0, int y0, int x1, int y1) {
            return sat[static_cast<size_t>(y1 + 1) * W + (x1 + 1)] -
                       sat[static_cast<size_t>(y0) * W + (x1 + 1)] -
                       sat[static_cast<size_t>(y1 + 1) * W + x0] +
                       sat[static_cast<size_t>(y0) * W + x0] >
                   0;
        };
        for (size_t ni = 0; ni < num_nets; ++ni) {
            const int c0 = S.net_first_conn[ni];
            const int c1 = S.net_first_conn[ni + 1];
            if (c0 == c1) continue;
            bool touched = false;
            for (int c = c0; c < c1; ++c) {
                const RouteConn& conn = S.conns[static_cast<size_t>(c)];
                if (!net_changed[ni] &&
                    !rect_has_dirty(std::min(conn.ax, conn.bx),
                                    std::min(conn.ay, conn.by),
                                    std::max(conn.ax, conn.bx),
                                    std::max(conn.ay, conn.by)))
                    continue;
                todo.push_back(c);
                touched = true;
            }
            if (touched) ++nets_rerouted;
        }
    }

    // Rip up the stale routes (exact unit deltas; fresh slots are empty
    // paths, so this is a no-op on a rebuild), reroute them against the
    // frozen baseline in parallel, and commit the replacements.
    for (int idx : todo)
        accumulate_path(S.dem_h, S.dem_v, S.bend_vias,
                        S.paths[static_cast<size_t>(idx)], -1.0);
    par::parallel_for(todo.size(), 4, [&](size_t b, size_t e) {
        PatternScratch ps;
        for (size_t i = b; i < e; ++i) {
            const size_t idx = static_cast<size_t>(todo[i]);
            const RouteConn& c = S.conns[idx];
            pattern_route_into(c.ax, c.ay, c.bx, c.by, base_model,
                               cfg_.max_bend_candidates, ps, S.paths[idx]);
        }
    });
    for (int idx : todo)
        accumulate_path(S.dem_h, S.dem_v, S.bend_vias,
                        S.paths[static_cast<size_t>(idx)], +1.0);

    // Refresh the cache identity the next call reconciles against.
    S.valid = true;
    S.nx = nx;
    S.ny = ny;
    S.config_key = ckey;
    S.design_key = dkey;
    S.pin_bin = pin_bin;
    S.cap_h = ws.cap_h;
    S.cap_v = ws.cap_v;
    S.stats.conns_total += static_cast<long long>(S.conns.size());
    S.stats.conns_rerouted += static_cast<long long>(todo.size());
    S.stats.cache_hits +=
        static_cast<long long>(S.conns.size() - todo.size());
    S.stats.nets_rerouted += nets_rerouted;

    // Invariant audit (extended demand accounting): the delta-maintained
    // phase-A demand must equal a from-scratch recompute over the cached
    // routes exactly — the safety net against stale-cache corruption.
    if (audit_enabled())
        audit::check_incremental_route(S.dem_h, S.dem_v, S.bend_vias,
                                       S.paths);

    // ---- Phase B: negotiation-style rip-up-and-reroute ------------------
    // Work on copies so the persistent phase-A state survives the RRR
    // mutations; history restarts from zero every invocation, exactly as
    // a from-scratch route would.
    ws.dem_h = S.dem_h;
    ws.dem_v = S.dem_v;
    ws.bend_vias = S.bend_vias;
    ws.paths = S.paths;
    st.refresh_all_costs();
    const RouteCostModel model{&ws.cost_h, &ws.cost_v, 1.0};
    std::vector<RoutePath>& paths = ws.paths;

    // Route short connections first (they have the fewest alternatives);
    // the bin-space length is signature-stable, the stable sort keeps
    // construction order on ties.
    std::vector<int>& order = ws.order;
    order.resize(S.conns.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int i, int j) {
        return S.conns[static_cast<size_t>(i)].len <
               S.conns[static_cast<size_t>(j)].len;
    });

    // Invariant audit: entering RRR, the working demand maps must equal
    // the sum of the committed paths exactly (the reconciliation may not
    // drop or double-commit a connection).
    if (audit_enabled())
        audit::check_router_accounting(ws.dem_h, ws.dem_v, ws.bend_vias,
                                       paths, ws.hist_h, ws.hist_v);

    // Negotiation does not decrease total overflow monotonically, so keep
    // the best state seen. Overflow of the combined 2D map (wire + via
    // demand vs summed capacity) — the same metric
    // CongestionMap::total_overflow reports.
    auto total_overflow_now = [&] {
        return par::parallel_sum(
            static_cast<size_t>(ws.dem_h.height()), 1,
            [&](size_t yb, size_t ye) {
                double acc = 0.0;
                for (size_t yi = yb; yi < ye; ++yi) {
                    const int y = static_cast<int>(yi);
                    for (int x = 0; x < ws.dem_h.width(); ++x) {
                        const double dmd =
                            ws.dem_h.at(x, y) + ws.dem_v.at(x, y) +
                            cfg_.via_demand_weight *
                                (ws.bend_vias.at(x, y) + ws.pin_vias.at(x, y));
                        const double cap = ws.cap_h.at(x, y) + ws.cap_v.at(x, y);
                        acc += std::max(dmd - cap, 0.0);
                    }
                }
                return acc;
            });
    };
    double best_overflow = total_overflow_now();
    ws.best_paths = paths;
    ws.best_dem_h = ws.dem_h;
    ws.best_dem_v = ws.dem_v;
    ws.best_bends = ws.bend_vias;
    int rounds_executed = 0, rounds_stalled = 0;

    for (int round = 0; round < cfg_.rrr_rounds; ++round) {
        // Grow history costs where utilization exceeds capacity. Elementwise
        // over rows; the any-overflow flag ORs chunk partials in order.
        const bool any_overflow = par::parallel_reduce(
            static_cast<size_t>(ws.dem_h.height()), 1, false,
            [&](size_t yb, size_t ye) {
                bool any = false;
                for (size_t yi = yb; yi < ye; ++yi) {
                    const int y = static_cast<int>(yi);
                    for (int x = 0; x < ws.dem_h.width(); ++x) {
                        const double oh =
                            ws.dem_h.at(x, y) / ws.cap_h.at(x, y) - 1.0;
                        const double ov =
                            ws.dem_v.at(x, y) / ws.cap_v.at(x, y) - 1.0;
                        if (oh > 0.0) {
                            ws.hist_h.at(x, y) += cfg_.history_increment * oh;
                            any = true;
                        }
                        if (ov > 0.0) {
                            ws.hist_v.at(x, y) += cfg_.history_increment * ov;
                            any = true;
                        }
                    }
                }
                return any;
            },
            [](bool a, bool b) { return a || b; });
        if (!any_overflow) break;
        ++rounds_executed;
        st.refresh_all_costs();

        for (int idx : order) {
            RoutePath& p = paths[static_cast<size_t>(idx)];
            if (!st.path_overflows(p)) continue;
            st.commit(p, -1.0);
            const RouteConn& c = S.conns[static_cast<size_t>(idx)];
            pattern_route_into(c.ax, c.ay, c.bx, c.by, model,
                               cfg_.max_bend_candidates, ws.pattern, p);
            // Escalate to a maze search when L/Z patterns cannot escape
            // the overflow (maze cost <= pattern cost by construction).
            if (cfg_.maze_fallback && st.path_would_overflow(p)) {
                RoutePath mz = maze_route(c.ax, c.ay, c.bx,
                                          c.by, model, cfg_.maze);
                if (!mz.segs.empty() &&
                    path_cost(mz, model) < path_cost(p, model))
                    p = std::move(mz);
            }
            st.commit(p, +1.0);
        }

        // Invariant audit: a rip-up/reroute round must leave edge usage
        // equal to the committed segments (every commit(-1) matched by a
        // commit(+1)) with non-negative history costs.
        if (audit_enabled())
            audit::check_router_accounting(ws.dem_h, ws.dem_v, ws.bend_vias,
                                           paths, ws.hist_h, ws.hist_v);

        const double overflow = total_overflow_now();
        if (overflow < best_overflow) {
            best_overflow = overflow;
            ws.best_paths = paths;
            ws.best_dem_h = ws.dem_h;
            ws.best_dem_v = ws.dem_v;
            ws.best_bends = ws.bend_vias;
        } else {
            ++rounds_stalled;
        }
    }
    // Restore the best routing state seen across rounds (swaps keep the
    // scratch buffers' capacity alive for the next invocation).
    paths.swap(ws.best_paths);
    std::swap(ws.dem_h, ws.best_dem_h);
    std::swap(ws.dem_v, ws.best_dem_v);
    std::swap(ws.bend_vias, ws.best_bends);
    // Invariant audit: the restored snapshot must still be consistent
    // (paths and demand grids are saved/restored together).
    if (audit_enabled())
        audit::check_router_accounting(ws.dem_h, ws.dem_v, ws.bend_vias,
                                       paths, ws.hist_h, ws.hist_v);

    // Assemble results.
    RouteResult res;
    res.demand_h = ws.dem_h;
    res.demand_v = ws.dem_v;
    res.bend_vias = ws.bend_vias;
    res.pin_vias = ws.pin_vias;
    res.layers = assign_layers(layers, ws.dem_h, ws.dem_v,
                               ws.bend_vias, ws.pin_vias);
    res.num_vias = res.layers.total_vias;

    // 2D Dmd = wire demand + weighted via demand; Cap = directional sums.
    GridF dmd = ws.dem_h;
    grid_add(dmd, ws.dem_v);
    for (int y = 0; y < dmd.height(); ++y)
        for (int x = 0; x < dmd.width(); ++x)
            dmd.at(x, y) += cfg_.via_demand_weight *
                            (ws.bend_vias.at(x, y) + ws.pin_vias.at(x, y));
    GridF cap = ws.cap_h;
    grid_add(cap, ws.cap_v);
    res.congestion = CongestionMap(grid_, std::move(dmd), std::move(cap));
    res.total_overflow = res.congestion.total_overflow();
    res.overflowed_gcells = res.congestion.overflowed_cells();
    res.rrr_rounds_executed = rounds_executed;
    res.rrr_rounds_stalled = rounds_stalled;
    res.inc_conns_total = static_cast<int>(S.conns.size());
    res.inc_conns_rerouted = static_cast<int>(todo.size());
    res.inc_nets_rerouted = nets_rerouted;
    res.inc_full_rebuild = fresh;

    // Routed wirelength: traversed G-cells scaled by pitch per direction.
    double wl = 0.0;
    for (const RoutePath& p : paths) {
        for (const RouteSeg& s : p.segs) {
            if (s.horizontal())
                wl += std::abs(s.x1 - s.x0) * grid_.bin_w();
            else
                wl += std::abs(s.y1 - s.y0) * grid_.bin_h();
        }
        // Bends add half a pitch each (staircase detour inside the cell).
        wl += 0.5 * p.num_bends() * std::min(grid_.bin_w(), grid_.bin_h());
    }
    res.wirelength_dbu = wl;
    return res;
}

}  // namespace rdp
