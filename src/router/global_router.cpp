#include "router/global_router.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <numeric>

#include "audit/invariant_audit.hpp"
#include "router/net_decompose.hpp"
#include "util/parallel.hpp"

namespace rdp {

GlobalRouter::GlobalRouter(BinGrid grid, RouterConfig cfg)
    : grid_(grid), cfg_(std::move(cfg)) {
    assert(!cfg_.layers.empty());
}

std::vector<LayerSpec> GlobalRouter::effective_layers() const {
    std::vector<LayerSpec> out = cfg_.layers;
    for (LayerSpec& l : out) {
        const double extent =
            l.dir == Orient::Horizontal ? grid_.bin_h() : grid_.bin_w();
        l.capacity *= extent / cfg_.track_pitch;
    }
    return out;
}

void GlobalRouter::build_capacity(const Design& d, GridF& cap_h,
                                  GridF& cap_v) const {
    build_capacity_impl(d, effective_layers(), cap_h, cap_v);
}

void GlobalRouter::build_capacity_impl(const Design& d,
                                       const std::vector<LayerSpec>& layers,
                                       GridF& cap_h, GridF& cap_v) const {
    double base_h = 0.0, base_v = 0.0;
    for (const LayerSpec& l : layers)
        (l.dir == Orient::Horizontal ? base_h : base_v) += l.capacity;

    cap_h = grid_.make_grid();
    cap_v = grid_.make_grid();
    for (auto& v : cap_h) v = base_h;
    for (auto& v : cap_v) v = base_v;

    // Pin blockage: pins eat tracks on the lowest horizontal layer, so
    // G-cells packed with cells lose horizontal capacity (local congestion).
    // Deterministic parallel scatter (ordered per-chunk merge).
    GridF pin_block = grid_.make_grid();
    parallel_splat(grid_, pin_block, static_cast<size_t>(d.num_pins()), 2048,
                   [&](GridF& g, size_t p) {
                       const GridIndex gi =
                           grid_.index_of(d.pin_position(static_cast<int>(p)));
                       g.at(gi.ix, gi.iy) += cfg_.pin_blockage;
                   });
    // Macro blockage: macros block all routing over them except the top
    // layer pair (a common modeling choice); scale capacity by uncovered
    // fraction plus a top-layer allowance.
    const double macro_pass = cfg_.layers.size() >= 4 ? 0.4 : 0.5;
    GridF macro_cover = grid_.make_grid();
    parallel_splat(grid_, macro_cover, d.cells.size(), 2048,
                   [&](GridF& g, size_t i) {
                       const Cell& c = d.cells[i];
                       if (!c.is_macro()) return;
                       grid_.splat_area(g, c.bbox());
                   });
    // PG-rail blockage on the lowest horizontal layer.
    GridF rail_cover = grid_.make_grid();
    parallel_splat(grid_, rail_cover, d.pg_rails.size(), 1024,
                   [&](GridF& g, size_t i) {
                       grid_.splat_area(g, d.pg_rails[i].box);
                   });
    // Routing blockages (ISPD 2015 style) remove capacity on all layers.
    GridF blockage_cover = grid_.make_grid();
    parallel_splat(grid_, blockage_cover, d.routing_blockages.size(), 1024,
                   [&](GridF& g, size_t i) {
                       grid_.splat_area(g, d.routing_blockages[i]);
                   });

    const double bin_area = grid_.bin_area();
    par::parallel_for(
        static_cast<size_t>(cap_h.height()), 1, [&](size_t yb, size_t ye) {
            for (size_t yi = yb; yi < ye; ++yi) {
                const int y = static_cast<int>(yi);
                for (int x = 0; x < cap_h.width(); ++x) {
                    cap_h.at(x, y) -= pin_block.at(x, y);
                    const double mc =
                        std::min(macro_cover.at(x, y) / bin_area, 1.0);
                    const double block = mc * (1.0 - macro_pass);
                    cap_h.at(x, y) *= (1.0 - block);
                    cap_v.at(x, y) *= (1.0 - block);
                    const double bc =
                        std::min(blockage_cover.at(x, y) / bin_area, 1.0);
                    cap_h.at(x, y) *= (1.0 - cfg_.routing_blockage_frac * bc);
                    cap_v.at(x, y) *= (1.0 - cfg_.routing_blockage_frac * bc);
                    const double rails =
                        std::min(rail_cover.at(x, y) / bin_area, 1.0);
                    cap_h.at(x, y) -= cfg_.pg_blockage_frac * base_h * rails;
                    cap_h.at(x, y) = std::max(cap_h.at(x, y), cfg_.min_capacity);
                    cap_v.at(x, y) = std::max(cap_v.at(x, y), cfg_.min_capacity);
                }
            }
        });
}

namespace {

/// Mutable routing state for one GlobalRouter::route() invocation.
struct RouteState {
    const RouterConfig& cfg;
    GridF cap_h, cap_v;
    GridF dem_h, dem_v;
    GridF bend_vias, pin_vias;
    GridF hist_h, hist_v;
    GridF cost_h, cost_v;

    explicit RouteState(const RouterConfig& c, const BinGrid& g)
        : cfg(c),
          dem_h(g.nx(), g.ny()),
          dem_v(g.nx(), g.ny()),
          bend_vias(g.nx(), g.ny()),
          pin_vias(g.nx(), g.ny()),
          hist_h(g.nx(), g.ny()),
          hist_v(g.nx(), g.ny()),
          cost_h(g.nx(), g.ny()),
          cost_v(g.nx(), g.ny()) {}

    double cell_cost(double dem, double cap, double hist) const {
        const double util = (dem + 1.0) / cap;
        double c = 1.0 + hist + 2.0 * util;
        if (util > 1.0) c += cfg.overflow_penalty * (util - 1.0);
        return c;
    }

    void refresh_cost(int x, int y) {
        cost_h.at(x, y) = cell_cost(dem_h.at(x, y), cap_h.at(x, y),
                                    hist_h.at(x, y));
        cost_v.at(x, y) = cell_cost(dem_v.at(x, y), cap_v.at(x, y),
                                    hist_v.at(x, y));
    }

    /// Elementwise, so the parallel version is trivially deterministic.
    void refresh_all_costs() {
        par::parallel_for(
            static_cast<size_t>(cost_h.height()), 1, [&](size_t yb, size_t ye) {
                for (size_t y = yb; y < ye; ++y)
                    for (int x = 0; x < cost_h.width(); ++x)
                        refresh_cost(x, static_cast<int>(y));
            });
    }

    /// Add (sign=+1) or remove (sign=-1) a path's demand, updating costs.
    void commit(const RoutePath& p, double sign) {
        for (const RouteSeg& s : p.segs) {
            if (s.horizontal()) {
                const int lo = std::min(s.x0, s.x1), hi = std::max(s.x0, s.x1);
                for (int x = lo; x <= hi; ++x) {
                    dem_h.at(x, s.y0) += sign;
                    refresh_cost(x, s.y0);
                }
            } else {
                const int lo = std::min(s.y0, s.y1), hi = std::max(s.y0, s.y1);
                for (int y = lo; y <= hi; ++y) {
                    dem_v.at(s.x0, y) += sign;
                    refresh_cost(s.x0, y);
                }
            }
        }
        // One via per bend, charged at the end cell of the earlier span.
        for (size_t i = 0; i + 1 < p.segs.size(); ++i) {
            bend_vias.at(p.segs[i].x1, p.segs[i].y1) += sign;
        }
    }

    bool path_overflows(const RoutePath& p) const {
        for (const RouteSeg& s : p.segs) {
            if (s.horizontal()) {
                const int lo = std::min(s.x0, s.x1), hi = std::max(s.x0, s.x1);
                for (int x = lo; x <= hi; ++x)
                    if (dem_h.at(x, s.y0) > cap_h.at(x, s.y0)) return true;
            } else {
                const int lo = std::min(s.y0, s.y1), hi = std::max(s.y0, s.y1);
                for (int y = lo; y <= hi; ++y)
                    if (dem_v.at(s.x0, y) > cap_v.at(s.x0, y)) return true;
            }
        }
        return false;
    }

    /// Would committing `p` leave any of its cells overflowed? Read-only
    /// equivalent of commit(+1) / path_overflows / commit(-1): demand is
    /// evaluated as-if-committed, counting how often the path itself covers
    /// each cell (a cell crossed by two same-direction spans gains 2).
    bool path_would_overflow(const RoutePath& p) const {
        auto coverage = [&](bool horizontal, int x, int y) {
            double add = 0.0;
            for (const RouteSeg& s : p.segs) {
                if (s.horizontal() != horizontal) continue;
                if (horizontal) {
                    if (s.y0 == y && x >= std::min(s.x0, s.x1) &&
                        x <= std::max(s.x0, s.x1))
                        add += 1.0;
                } else {
                    if (s.x0 == x && y >= std::min(s.y0, s.y1) &&
                        y <= std::max(s.y0, s.y1))
                        add += 1.0;
                }
            }
            return add;
        };
        for (const RouteSeg& s : p.segs) {
            if (s.horizontal()) {
                const int lo = std::min(s.x0, s.x1), hi = std::max(s.x0, s.x1);
                for (int x = lo; x <= hi; ++x)
                    if (dem_h.at(x, s.y0) + coverage(true, x, s.y0) >
                        cap_h.at(x, s.y0))
                        return true;
            } else {
                const int lo = std::min(s.y0, s.y1), hi = std::max(s.y0, s.y1);
                for (int y = lo; y <= hi; ++y)
                    if (dem_v.at(s.x0, y) + coverage(false, s.x0, y) >
                        cap_v.at(s.x0, y))
                        return true;
            }
        }
        return false;
    }
};

}  // namespace

RouteResult GlobalRouter::route(const Design& d) const {
    const AuditStageScope audit_scope("global-route");
    // Resolve the layer stack once per invocation; both capacity building
    // and the final layer assignment consume the same copy.
    const std::vector<LayerSpec> layers = effective_layers();

    RouteState st(cfg_, grid_);
    build_capacity_impl(d, layers, st.cap_h, st.cap_v);
    st.refresh_all_costs();

    // Pin vias: every pin climbs from the pin layer into the stack.
    parallel_splat(grid_, st.pin_vias, static_cast<size_t>(d.num_pins()), 2048,
                   [&](GridF& g, size_t p) {
                       const GridIndex gi =
                           grid_.index_of(d.pin_position(static_cast<int>(p)));
                       g.at(gi.ix, gi.iy) += 1.0;
                   });

    // Two-pin connections from MST decomposition of every net. Chunked over
    // nets with per-chunk output lists concatenated in chunk order, which
    // reproduces the serial connection order exactly.
    struct Conn {
        GridIndex a, b;
        double len;
    };
    std::vector<Conn> conns;
    {
        const par::ChunkPlan cp = par::plan(d.nets.size(), 128, 64);
        std::vector<std::vector<Conn>> chunk_conns(cp.num_chunks);
        par::run_chunks(cp, [&](size_t nb, size_t ne, size_t c) {
            std::vector<Conn>& out = chunk_conns[c];
            std::vector<Vec2> pts;
            for (size_t ni = nb; ni < ne; ++ni) {
                const Net& net = d.nets[ni];
                if (net.degree() < 2) continue;
                pts.clear();
                pts.reserve(net.pins.size());
                for (int p : net.pins) pts.push_back(d.pin_position(p));
                for (const auto& [i, j] : manhattan_mst(pts)) {
                    const GridIndex a =
                        grid_.index_of(pts[static_cast<size_t>(i)]);
                    const GridIndex b =
                        grid_.index_of(pts[static_cast<size_t>(j)]);
                    const double len = std::abs(pts[i].x - pts[j].x) +
                                       std::abs(pts[i].y - pts[j].y);
                    out.push_back({a, b, len});
                }
            }
        });
        for (const auto& cc : chunk_conns)
            conns.insert(conns.end(), cc.begin(), cc.end());
    }
    // Route short connections first (they have the fewest alternatives).
    std::vector<int> order(conns.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int i, int j) {
        return conns[static_cast<size_t>(i)].len <
               conns[static_cast<size_t>(j)].len;
    });

    RouteCostModel model{&st.cost_h, &st.cost_v, 1.0};
    std::vector<RoutePath> paths(conns.size());

    // Initial pass: spatially-partitioned waves routed against a frozen
    // cost snapshot, committed in fixed order (the batched scheme of the
    // GPU routers the paper builds on). A wave takes connections — in
    // routing order — whose bounding boxes occupy disjoint tiles of a
    // kTiles x kTiles partition. Pattern candidates never leave the
    // endpoint bbox, so wave members cannot share a G-cell: routing them
    // against the frozen snapshot commits the same paths serial routing
    // would, and the wave construction depends on the input only, never
    // on the thread count.
    {
        constexpr int kTiles = 16;
        const int tile_w = (grid_.nx() + kTiles - 1) / kTiles;
        const int tile_h = (grid_.ny() + kTiles - 1) / kTiles;
        auto tile_rect = [&](const Conn& c) {
            const int tx0 = std::min(c.a.ix, c.b.ix) / tile_w;
            const int tx1 = std::max(c.a.ix, c.b.ix) / tile_w;
            const int ty0 = std::min(c.a.iy, c.b.iy) / tile_h;
            const int ty1 = std::max(c.a.iy, c.b.iy) / tile_h;
            return std::array<int, 4>{tx0, ty0, tx1, ty1};
        };
        std::vector<int> pending = order;
        std::vector<int> wave, deferred;
        std::array<bool, kTiles * kTiles> occupied{};
        while (!pending.empty()) {
            wave.clear();
            deferred.clear();
            occupied.fill(false);
            for (int idx : pending) {
                const auto [tx0, ty0, tx1, ty1] =
                    tile_rect(conns[static_cast<size_t>(idx)]);
                bool free = true;
                for (int ty = ty0; ty <= ty1 && free; ++ty)
                    for (int tx = tx0; tx <= tx1 && free; ++tx)
                        free = !occupied[static_cast<size_t>(ty * kTiles + tx)];
                if (!free) {
                    deferred.push_back(idx);
                    continue;
                }
                for (int ty = ty0; ty <= ty1; ++ty)
                    for (int tx = tx0; tx <= tx1; ++tx)
                        occupied[static_cast<size_t>(ty * kTiles + tx)] = true;
                wave.push_back(idx);
            }
            // Route the wave against the frozen cost snapshot.
            par::parallel_for(wave.size(), 4, [&](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i) {
                    const int idx = wave[i];
                    const Conn& c = conns[static_cast<size_t>(idx)];
                    paths[static_cast<size_t>(idx)] =
                        pattern_route(c.a.ix, c.a.iy, c.b.ix, c.b.iy, model,
                                      cfg_.max_bend_candidates);
                }
            });
            // Commit in fixed (routing) order; costs update for the next wave.
            for (int idx : wave) st.commit(paths[static_cast<size_t>(idx)], +1.0);
            pending.swap(deferred);
        }
    }
    // Invariant audit: after the initial pass the demand maps must equal
    // the sum of the committed paths exactly (the batched-wave scheme may
    // not drop or double-commit a connection).
    if (audit_enabled())
        audit::check_router_accounting(st.dem_h, st.dem_v, st.bend_vias,
                                       paths, st.hist_h, st.hist_v);

    // Negotiation-style rip-up-and-reroute. Negotiation does not decrease
    // total overflow monotonically, so keep the best state seen.
    // Overflow of the combined 2D map (wire + via demand vs summed
    // capacity) — the same metric CongestionMap::total_overflow reports.
    auto total_overflow_now = [&] {
        return par::parallel_sum(
            static_cast<size_t>(st.dem_h.height()), 1,
            [&](size_t yb, size_t ye) {
                double acc = 0.0;
                for (size_t yi = yb; yi < ye; ++yi) {
                    const int y = static_cast<int>(yi);
                    for (int x = 0; x < st.dem_h.width(); ++x) {
                        const double dmd =
                            st.dem_h.at(x, y) + st.dem_v.at(x, y) +
                            cfg_.via_demand_weight *
                                (st.bend_vias.at(x, y) + st.pin_vias.at(x, y));
                        const double cap = st.cap_h.at(x, y) + st.cap_v.at(x, y);
                        acc += std::max(dmd - cap, 0.0);
                    }
                }
                return acc;
            });
    };
    double best_overflow = total_overflow_now();
    std::vector<RoutePath> best_paths = paths;
    GridF best_dem_h = st.dem_h, best_dem_v = st.dem_v,
          best_bends = st.bend_vias;
    int rounds_executed = 0, rounds_stalled = 0;

    for (int round = 0; round < cfg_.rrr_rounds; ++round) {
        // Grow history costs where utilization exceeds capacity. Elementwise
        // over rows; the any-overflow flag ORs chunk partials in order.
        const bool any_overflow = par::parallel_reduce(
            static_cast<size_t>(st.dem_h.height()), 1, false,
            [&](size_t yb, size_t ye) {
                bool any = false;
                for (size_t yi = yb; yi < ye; ++yi) {
                    const int y = static_cast<int>(yi);
                    for (int x = 0; x < st.dem_h.width(); ++x) {
                        const double oh =
                            st.dem_h.at(x, y) / st.cap_h.at(x, y) - 1.0;
                        const double ov =
                            st.dem_v.at(x, y) / st.cap_v.at(x, y) - 1.0;
                        if (oh > 0.0) {
                            st.hist_h.at(x, y) += cfg_.history_increment * oh;
                            any = true;
                        }
                        if (ov > 0.0) {
                            st.hist_v.at(x, y) += cfg_.history_increment * ov;
                            any = true;
                        }
                    }
                }
                return any;
            },
            [](bool a, bool b) { return a || b; });
        if (!any_overflow) break;
        ++rounds_executed;
        st.refresh_all_costs();

        for (int idx : order) {
            RoutePath& p = paths[static_cast<size_t>(idx)];
            if (!st.path_overflows(p)) continue;
            st.commit(p, -1.0);
            const Conn& c = conns[static_cast<size_t>(idx)];
            p = pattern_route(c.a.ix, c.a.iy, c.b.ix, c.b.iy, model,
                              cfg_.max_bend_candidates);
            // Escalate to a maze search when L/Z patterns cannot escape
            // the overflow (maze cost <= pattern cost by construction).
            if (cfg_.maze_fallback && st.path_would_overflow(p)) {
                RoutePath mz = maze_route(c.a.ix, c.a.iy, c.b.ix,
                                          c.b.iy, model, cfg_.maze);
                if (!mz.segs.empty() &&
                    path_cost(mz, model) < path_cost(p, model))
                    p = std::move(mz);
            }
            st.commit(p, +1.0);
        }

        // Invariant audit: a rip-up/reroute round must leave edge usage
        // equal to the committed segments (every commit(-1) matched by a
        // commit(+1)) with non-negative history costs.
        if (audit_enabled())
            audit::check_router_accounting(st.dem_h, st.dem_v, st.bend_vias,
                                           paths, st.hist_h, st.hist_v);

        const double overflow = total_overflow_now();
        if (overflow < best_overflow) {
            best_overflow = overflow;
            best_paths = paths;
            best_dem_h = st.dem_h;
            best_dem_v = st.dem_v;
            best_bends = st.bend_vias;
        } else {
            ++rounds_stalled;
        }
    }
    // Restore the best routing state seen across rounds.
    paths = std::move(best_paths);
    st.dem_h = std::move(best_dem_h);
    st.dem_v = std::move(best_dem_v);
    st.bend_vias = std::move(best_bends);
    // Invariant audit: the restored snapshot must still be consistent
    // (paths and demand grids are saved/restored together).
    if (audit_enabled())
        audit::check_router_accounting(st.dem_h, st.dem_v, st.bend_vias,
                                       paths, st.hist_h, st.hist_v);

    // Assemble results.
    RouteResult res;
    res.demand_h = st.dem_h;
    res.demand_v = st.dem_v;
    res.bend_vias = st.bend_vias;
    res.pin_vias = st.pin_vias;
    res.layers = assign_layers(layers, st.dem_h, st.dem_v,
                               st.bend_vias, st.pin_vias);
    res.num_vias = res.layers.total_vias;

    // 2D Dmd = wire demand + weighted via demand; Cap = directional sums.
    GridF dmd = st.dem_h;
    grid_add(dmd, st.dem_v);
    for (int y = 0; y < dmd.height(); ++y)
        for (int x = 0; x < dmd.width(); ++x)
            dmd.at(x, y) += cfg_.via_demand_weight *
                            (st.bend_vias.at(x, y) + st.pin_vias.at(x, y));
    GridF cap = st.cap_h;
    grid_add(cap, st.cap_v);
    res.congestion = CongestionMap(grid_, std::move(dmd), std::move(cap));
    res.total_overflow = res.congestion.total_overflow();
    res.overflowed_gcells = res.congestion.overflowed_cells();
    res.rrr_rounds_executed = rounds_executed;
    res.rrr_rounds_stalled = rounds_stalled;

    // Routed wirelength: traversed G-cells scaled by pitch per direction.
    double wl = 0.0;
    for (const RoutePath& p : paths) {
        for (const RouteSeg& s : p.segs) {
            if (s.horizontal())
                wl += std::abs(s.x1 - s.x0) * grid_.bin_w();
            else
                wl += std::abs(s.y1 - s.y0) * grid_.bin_h();
        }
        // Bends add half a pitch each (staircase detour inside the cell).
        wl += 0.5 * p.num_bends() * std::min(grid_.bin_w(), grid_.bin_h());
    }
    res.wirelength_dbu = wl;
    return res;
}

}  // namespace rdp
