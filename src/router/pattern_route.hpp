#pragma once
// L/Z pattern routing for a two-pin connection on the G-cell grid, the CPU
// analogue of the 3D Z-shape routing of Lin & Wong (ICCAD'22) that the paper
// uses for congestion estimation. A route is a list of axis-aligned G-cell
// spans; candidates are the two L-shapes plus HVH/VHV Z-shapes over sampled
// intermediate bend lines, scored by a congestion-aware cost map.

#include <vector>

#include "util/geometry.hpp"
#include "util/grid2d.hpp"

namespace rdp {

/// One axis-aligned span of G-cells, inclusive on both ends, with an
/// explicit routing direction (a single-cell span still occupies a track
/// in one specific direction — maze staircases produce many of those).
struct RouteSeg {
    int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    Orient dir = Orient::Horizontal;

    bool horizontal() const { return dir == Orient::Horizontal; }
    /// Number of G-cells covered.
    int length() const { return std::abs(x1 - x0) + std::abs(y1 - y0) + 1; }
};

/// Span constructors that set the direction from the coordinates.
inline RouteSeg hseg(int x0, int y, int x1) {
    return {x0, y, x1, y, Orient::Horizontal};
}
inline RouteSeg vseg(int x, int y0, int y1) {
    return {x, y0, x, y1, Orient::Vertical};
}

/// A routed two-pin connection: contiguous spans; bends between consecutive
/// spans cost vias.
struct RoutePath {
    std::vector<RouteSeg> segs;

    int num_bends() const {
        return segs.size() > 1 ? static_cast<int>(segs.size()) - 1 : 0;
    }
    /// Total G-cells covered (shared bend cells counted once per span).
    int total_cells() const {
        int acc = 0;
        for (const RouteSeg& s : segs) acc += s.length();
        return acc;
    }
};

/// Per-direction traversal costs: cost_h(x,y) is the price of routing
/// horizontally through G-cell (x,y); cost_v vertically. via_cost is added
/// per bend. The GlobalRouter derives these from utilization + history.
struct RouteCostModel {
    const GridF* cost_h = nullptr;
    const GridF* cost_v = nullptr;
    double via_cost = 1.0;
};

/// Cost of an existing path under the model.
double path_cost(const RoutePath& p, const RouteCostModel& m);

/// Reusable buffers for pattern_route_into: the candidate path and the
/// Z-shape bend-sample list survive across calls, so steady-state routing
/// performs no allocations. Not thread-safe — callers in parallel regions
/// keep one scratch per chunk.
struct PatternScratch {
    std::vector<int> samples;
    RoutePath cand;
};

/// Pattern-route (x0,y0) -> (x1,y1) in G-cell coordinates. Evaluates both
/// L-shapes and up to `max_bend_candidates` HVH and VHV Z-shapes and returns
/// the cheapest path. Degenerate cases (same cell / same row / same column)
/// return straight or single-cell paths.
RoutePath pattern_route(int x0, int y0, int x1, int y1,
                        const RouteCostModel& m,
                        int max_bend_candidates = 16);

/// Allocation-free variant: writes the winning path into `out` (reusing
/// its span storage) with per-call buffers hoisted into `scratch`.
void pattern_route_into(int x0, int y0, int x1, int y1,
                        const RouteCostModel& m, int max_bend_candidates,
                        PatternScratch& scratch, RoutePath& out);

}  // namespace rdp
