#pragma once
// 3D layer assignment of the 2D routed demand. The routing stack alternates
// preferred directions (M2 horizontal, M3 vertical, ... in our model; M1 is
// a pin/PG layer with no routing capacity). Each G-cell's horizontal demand
// is distributed over the horizontal layers proportionally to their free
// capacity, and likewise for vertical; vias are charged for reaching the
// assigned layers from the pin layer and for bends.
//
// The result provides the per-layer demand/capacity of paper Eq. (3) —
// summed over layers they give the 2D Dmd/Cap maps the placer consumes —
// plus the #vias statistic reported in Table I.

#include <vector>

#include "util/geometry.hpp"
#include "util/grid2d.hpp"

namespace rdp {

struct LayerSpec {
    Orient dir = Orient::Horizontal;
    double capacity = 8.0;  ///< routing tracks per G-cell on this layer
};

struct LayerAssignment {
    std::vector<GridF> demand;    ///< per layer
    std::vector<LayerSpec> specs;
    long long total_vias = 0;

    /// Layer-summed demand map.
    GridF demand_2d() const;
};

/// Distribute 2D directional demand over the layer stack.
/// `bend_vias` counts route bends per G-cell; `pin_vias` counts pins per
/// G-cell (each pin climbs from the pin layer to the lowest routing layer).
LayerAssignment assign_layers(const std::vector<LayerSpec>& specs,
                              const GridF& demand_h, const GridF& demand_v,
                              const GridF& bend_vias, const GridF& pin_vias);

}  // namespace rdp
