#include "router/maze_route.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace rdp {

namespace {

/// Search state: cell within the window plus the direction of entry
/// (0 = horizontal, 1 = vertical); turns pay the via cost.
struct QEntry {
    double cost;
    int idx;  ///< (dir * wh + y * w + x) within the window

    bool operator>(const QEntry& o) const { return cost > o.cost; }
};

}  // namespace

RoutePath maze_route(int x0, int y0, int x1, int y1, const RouteCostModel& m,
                     const MazeConfig& cfg) {
    const GridF& ch = *m.cost_h;
    const GridF& cv = *m.cost_v;

    // Window around the endpoints.
    const int wx0 = std::max(std::min(x0, x1) - cfg.window_margin, 0);
    const int wy0 = std::max(std::min(y0, y1) - cfg.window_margin, 0);
    const int wx1 = std::min(std::max(x0, x1) + cfg.window_margin,
                             ch.width() - 1);
    const int wy1 = std::min(std::max(y0, y1) + cfg.window_margin,
                             ch.height() - 1);
    const int w = wx1 - wx0 + 1;
    const int h = wy1 - wy0 + 1;
    const int wh = w * h;

    auto node = [&](int x, int y, int dir) {
        return dir * wh + (y - wy0) * w + (x - wx0);
    };
    auto cell_cost = [&](int x, int y, int dir) {
        return dir == 0 ? ch.at(x, y) : cv.at(x, y);
    };

    const double inf = std::numeric_limits<double>::max();
    std::vector<double> dist(static_cast<size_t>(2 * wh), inf);
    std::vector<int> parent(static_cast<size_t>(2 * wh), -1);
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;

    for (int dir = 0; dir < 2; ++dir) {
        const int s = node(x0, y0, dir);
        dist[static_cast<size_t>(s)] = cell_cost(x0, y0, dir);
        pq.push({dist[static_cast<size_t>(s)], s});
    }

    const int dx[4] = {1, -1, 0, 0};
    const int dy[4] = {0, 0, 1, -1};

    int goal = -1;
    while (!pq.empty()) {
        const QEntry top = pq.top();
        pq.pop();
        if (top.cost > dist[static_cast<size_t>(top.idx)]) continue;
        const int dir = top.idx / wh;
        const int rem = top.idx % wh;
        const int x = wx0 + rem % w;
        const int y = wy0 + rem / w;
        if (x == x1 && y == y1) {
            goal = top.idx;
            break;
        }
        for (int k = 0; k < 4; ++k) {
            const int nx = x + dx[k], ny = y + dy[k];
            if (nx < wx0 || nx > wx1 || ny < wy0 || ny > wy1) continue;
            const int ndir = (dy[k] == 0) ? 0 : 1;
            const double step = cell_cost(nx, ny, ndir) +
                                (ndir != dir ? m.via_cost : 0.0);
            const int nn = node(nx, ny, ndir);
            const double nd = top.cost + step;
            if (nd < dist[static_cast<size_t>(nn)]) {
                dist[static_cast<size_t>(nn)] = nd;
                parent[static_cast<size_t>(nn)] = top.idx;
                pq.push({nd, nn});
            }
        }
    }

    RoutePath path;
    if (goal < 0) return path;  // unreachable (cannot happen in-window)

    // Reconstruct the (cell, direction) sequence; the direction each cell
    // was entered with defines which track it occupies.
    struct Step {
        GridIndex cell;
        int dir;
    };
    std::vector<Step> steps;
    for (int cur = goal; cur >= 0; cur = parent[static_cast<size_t>(cur)]) {
        const int rem = cur % wh;
        steps.push_back({{wx0 + rem % w, wy0 + rem / w}, cur / wh});
    }
    std::reverse(steps.begin(), steps.end());

    // Merge maximal same-direction runs into spans (single-cell runs keep
    // their direction through RouteSeg::dir).
    size_t i = 0;
    while (i < steps.size()) {
        size_t j = i;
        while (j + 1 < steps.size() && steps[j + 1].dir == steps[i].dir) ++j;
        RouteSeg s;
        s.x0 = steps[i].cell.ix;
        s.y0 = steps[i].cell.iy;
        s.x1 = steps[j].cell.ix;
        s.y1 = steps[j].cell.iy;
        s.dir = steps[i].dir == 0 ? Orient::Horizontal : Orient::Vertical;
        path.segs.push_back(s);
        i = j + 1;
    }
    return path;
}

}  // namespace rdp
