#pragma once
// Persistent cross-call state for incremental global routing (DESIGN.md
// §12). The routability loop re-invokes GlobalRouter::route() at every
// outer iteration, but between iterations most nets' pin G-cells do not
// change. IncrementalRouteState caches, per net, the MST decomposition
// and the baseline-cost routes of the initial ("phase A") pass, keyed by
// the net's pin-bin signature, and maintains the phase-A demand maps by
// exact rip-up/commit deltas instead of rebuilding them.
//
// Soundness of the cache rests on two properties of the restructured
// route() (see global_router.cpp):
//   1. the MST decomposition is quantized to pin-bin centers, so it is a
//      pure function of the pin-bin signature;
//   2. phase-A routes are scored against a frozen capacity-only baseline
//      cost, so a cached route stays valid until its endpoint bounding
//      box touches a G-cell whose capacity changed (a "dirty" cell).
// Unit demand increments on doubles are integer-valued and therefore
// exact, so delta accounting is bitwise identical to a from-scratch
// rebuild — route(d, &state) == route(d) bitwise, for any RDP_THREADS.
//
// A deterministic periodic full rebuild (`rebuild_epoch`, env knob
// RDP_REBUILD_EPOCH) bounds drift: every Nth call with a valid cache
// drops it and rebuilds from scratch, independent of the placement
// trajectory, so results cannot depend on when a cache happened to fill.

#include <cstdint>
#include <vector>

#include "router/pattern_route.hpp"
#include "util/grid2d.hpp"

namespace rdp {

/// One two-pin connection of a net's MST decomposition, in G-cell space.
/// Endpoints are pin bins (the decomposition is quantized to bin centers,
/// so intra-bin cell movement cannot change it).
struct RouteConn {
    int ax = 0, ay = 0;  ///< first endpoint bin
    int bx = 0, by = 0;  ///< second endpoint bin
    int net = -1;        ///< owning net index
    int len = 0;         ///< bin-space Manhattan length (routing-order key)
};

/// Lifetime counters of one IncrementalRouteState (monotone; survive
/// invalidate()). cache_hits / conns_total is the cache hit rate the
/// bench layer reports.
struct IncrementalRouteStats {
    long long calls = 0;          ///< route() invocations through this state
    long long full_rebuilds = 0;  ///< calls that rebuilt the cache wholesale
    long long conns_total = 0;    ///< connections seen, summed over calls
    long long conns_rerouted = 0; ///< phase-A reroutes, summed over calls
    long long cache_hits = 0;     ///< connections reused from the cache
    long long nets_rerouted = 0;  ///< nets with >= 1 phase-A reroute
};

/// Reusable per-call routing buffers (hoisted out of route() so repeated
/// invocations through one state stop allocating; a stateless route()
/// carries a short-lived instance). Sized by RouterScratch-owning code.
struct RouterScratch {
    GridF cap_h, cap_v;
    GridF dem_h, dem_v;
    GridF bend_vias, pin_vias;
    GridF hist_h, hist_v;
    GridF cost_h, cost_v;
    GridF best_dem_h, best_dem_v, best_bends;
    std::vector<RoutePath> paths;       ///< working routes mutated by RRR
    std::vector<RoutePath> best_paths;  ///< best-overflow snapshot
    std::vector<int> order;             ///< routing order (short first)
    std::vector<int> todo;              ///< phase-A connections to reroute
    std::vector<int> pin_bin;           ///< this call's pin-bin signature
    std::vector<unsigned char> net_changed;
    std::vector<int> dirty_sat;         ///< (nx+1)*(ny+1) dirty-cell SAT
    PatternScratch pattern;             ///< serial (RRR) pattern buffers

    /// Size every working grid to nx x ny and zero it (keeps capacity).
    void reset(int nx, int ny);
};

/// Persistent phase-A cache surviving across GlobalRouter::route() calls.
/// Plain value type: the caller (the routability loop) owns it, threads it
/// through consecutive route() calls, and invalidate()s it whenever the
/// recovery layer rolls placement state back.
struct IncrementalRouteState {
    // Cache identity: the cached routes are only reusable against the
    // same netlist structure, grid geometry, and router cost model.
    bool valid = false;
    std::uint64_t design_key = 0;  ///< netlist structure hash
    std::uint64_t config_key = 0;  ///< grid geometry + router config hash
    int nx = 0, ny = 0;

    // Per-net cache, keyed by the pin-bin signature.
    std::vector<int> pin_bin;         ///< per pin: iy * nx + ix
    std::vector<int> net_first_conn;  ///< nets+1 offsets into conns/paths
    std::vector<RouteConn> conns;     ///< MST edges, net-major order
    std::vector<RoutePath> paths;     ///< cached phase-A route per conn

    // Capacity maps of the last call (for dirty-cell diffing) and the
    // phase-A demand maintained by exact rip-up/commit deltas.
    GridF cap_h, cap_v;
    GridF dem_h, dem_v, bend_vias;

    /// Deterministic full-rebuild period: every rebuild_epoch-th call with
    /// a valid cache rebuilds from scratch (<= 0 disables the epoch).
    int rebuild_epoch = 16;
    int calls_since_rebuild = 0;

    IncrementalRouteStats stats;

    /// Reusable per-call buffers (see RouterScratch).
    RouterScratch scratch;

    /// Drop the cached routes; the next route() call rebuilds from
    /// scratch. Buffers keep their capacity; stats and the epoch knob
    /// survive. The recovery layer calls this on every rollback so a
    /// restored checkpoint can never be scored against stale routes.
    void invalidate();
};

}  // namespace rdp
