#pragma once
// Congestion-estimating global router (paper Section II-B). Produces the
// Dmd/Cap maps that define the congestion map of Eq. (3) and the routed
// wirelength / via statistics used by the evaluation layer.
//
// Flow per invocation:
//   1. build per-direction capacity maps (layer stack minus pin blockage on
//      the lowest horizontal layer minus PG-rail blockage),
//   2. decompose every net into two-pin MST edges over pin-bin centers and
//      pattern-route each against a frozen capacity-only baseline cost
//      (phase A — order-independent, so routes are cacheable per net; see
//      router/incremental.hpp),
//   3. optional rip-up-and-reroute rounds with history costs on overflowed
//      G-cells (negotiation-style, phase B),
//   4. 3D layer assignment for via counting and the layered demand maps.
//
// route(d, &state) reconciles a persistent IncrementalRouteState instead
// of rebuilding phase A, and is bitwise identical to route(d).

#include <vector>

#include "db/design.hpp"
#include "grid/bin_grid.hpp"
#include "grid/congestion_map.hpp"
#include "router/incremental.hpp"
#include "router/layer_assign.hpp"
#include "router/maze_route.hpp"
#include "router/pattern_route.hpp"

namespace rdp {

struct RouterConfig {
    /// Routing stack above the pin layer; alternating preferred directions.
    /// `capacity` here is a *utilization factor*: the effective track count
    /// of a layer in a G-cell is capacity * (G-cell extent / track_pitch),
    /// so capacity scales with the grid resolution like a real router's.
    /// The bottom layer starts de-rated (pin escapes, PG stripes).
    std::vector<LayerSpec> layers = {
        {Orient::Horizontal, 0.7},
        {Orient::Vertical, 1.0},
        {Orient::Horizontal, 1.0},
        {Orient::Vertical, 1.0},
    };
    /// Distance between adjacent routing tracks (DBU).
    double track_pitch = 1.0;
    /// Capacity (track) units consumed on the lowest horizontal layer per
    /// pin inside a G-cell — this is what turns cell clustering into *local*
    /// routing congestion (paper Fig. 1(a) left).
    double pin_blockage = 0.08;
    /// Fraction of the lowest horizontal layer blocked where PG rails run.
    double pg_blockage_frac = 0.15;
    /// Fraction of all routing capacity removed under a routing blockage.
    double routing_blockage_frac = 0.8;
    /// Demand units contributed to Dmd (Eq. 3) per via event in a G-cell.
    double via_demand_weight = 0.25;
    /// Rip-up-and-reroute rounds after the initial routing pass.
    int rrr_rounds = 2;
    /// During RRR, escalate connections that still overflow after the
    /// pattern reroute to a windowed maze (Dijkstra) search.
    bool maze_fallback = true;
    MazeConfig maze;
    /// Z-shape bend candidates sampled per direction.
    int max_bend_candidates = 12;
    /// History cost added per unit of utilization overflow per RRR round.
    double history_increment = 1.5;
    /// Cost penalty slope once a G-cell's directional utilization passes 1.
    double overflow_penalty = 8.0;
    /// Minimum directional capacity after blockages (avoids divide-by-zero
    /// and infinitely expensive cells).
    double min_capacity = 0.5;
};

struct RouteResult {
    CongestionMap congestion;  ///< Dmd (wire+via) vs Cap, Eq. (3) source
    GridF demand_h;
    GridF demand_v;
    GridF bend_vias;
    GridF pin_vias;
    LayerAssignment layers;
    double wirelength_dbu = 0.0;  ///< routed wirelength (DRWL proxy input)
    long long num_vias = 0;
    double total_overflow = 0.0;
    int overflowed_gcells = 0;
    /// Executed rip-up-and-reroute rounds (rounds with no overflow left are
    /// skipped) and how many of them failed to improve the best overflow.
    /// stalled == executed with overflow remaining is the router-livelock
    /// signal the recovery layer (src/recover) consumes.
    int rrr_rounds_executed = 0;
    int rrr_rounds_stalled = 0;
    /// Phase-A (initial pass) reconciliation statistics of this call.
    /// Reporting only: the routing result itself never depends on whether
    /// a persistent cache was in play. A stateless route() is a full
    /// rebuild, so conns_rerouted == conns_total there.
    int inc_conns_total = 0;
    int inc_conns_rerouted = 0;
    int inc_nets_rerouted = 0;
    bool inc_full_rebuild = true;
};

class GlobalRouter {
public:
    GlobalRouter(BinGrid grid, RouterConfig cfg = {});

    const BinGrid& grid() const { return grid_; }
    const RouterConfig& config() const { return cfg_; }

    /// Route the whole design and return aggregate maps and statistics.
    RouteResult route(const Design& d) const;

    /// Incremental variant: reconcile `state` (cached per-net phase-A
    /// routes and delta-maintained demand) instead of rebuilding from
    /// scratch. Bitwise identical to route(d) for any RDP_THREADS value;
    /// a null or incompatible state degenerates to a full rebuild. The
    /// caller owns the state and must invalidate() it when rolling the
    /// placement back (see src/recover).
    RouteResult route(const Design& d, IncrementalRouteState* state) const;

    /// Capacity maps alone (per direction), for tests and the DRV proxy.
    void build_capacity(const Design& d, GridF& cap_h, GridF& cap_v) const;

    /// The layer stack with absolute per-G-cell track capacities resolved
    /// from the utilization factors, track pitch, and this grid's G-cell
    /// dimensions.
    std::vector<LayerSpec> effective_layers() const;

private:
    /// Capacity construction against an already-resolved layer stack, so
    /// route() resolves effective_layers() exactly once per invocation.
    void build_capacity_impl(const Design& d,
                             const std::vector<LayerSpec>& layers,
                             GridF& cap_h, GridF& cap_v) const;

    /// Shared implementation: a stateless route() runs it against a
    /// short-lived empty state, so "full" and "incremental" are one code
    /// path and bitwise identity between them is structural.
    RouteResult route_impl(const Design& d, IncrementalRouteState& state) const;

    BinGrid grid_;
    RouterConfig cfg_;
};

}  // namespace rdp
