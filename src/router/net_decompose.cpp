#include "router/net_decompose.hpp"

#include <cmath>
#include <limits>

namespace rdp {

std::vector<std::pair<int, int>> manhattan_mst(const std::vector<Vec2>& pts) {
    const int n = static_cast<int>(pts.size());
    std::vector<std::pair<int, int>> edges;
    if (n < 2) return edges;
    edges.reserve(static_cast<size_t>(n) - 1);

    auto dist = [&](int a, int b) {
        return std::abs(pts[a].x - pts[b].x) + std::abs(pts[a].y - pts[b].y);
    };

    std::vector<bool> in_tree(static_cast<size_t>(n), false);
    std::vector<double> best(static_cast<size_t>(n),
                             std::numeric_limits<double>::max());
    std::vector<int> parent(static_cast<size_t>(n), -1);

    in_tree[0] = true;
    for (int j = 1; j < n; ++j) {
        best[j] = dist(0, j);
        parent[j] = 0;
    }
    for (int it = 1; it < n; ++it) {
        int pick = -1;
        double pick_d = std::numeric_limits<double>::max();
        for (int j = 0; j < n; ++j) {
            if (!in_tree[j] && best[j] < pick_d) {
                pick = j;
                pick_d = best[j];
            }
        }
        in_tree[pick] = true;
        edges.emplace_back(parent[pick], pick);
        for (int j = 0; j < n; ++j) {
            if (in_tree[j]) continue;
            const double dj = dist(pick, j);
            if (dj < best[j]) {
                best[j] = dj;
                parent[j] = pick;
            }
        }
    }
    return edges;
}

double mst_length(const std::vector<Vec2>& pts) {
    double acc = 0.0;
    for (const auto& [a, b] : manhattan_mst(pts)) {
        acc += std::abs(pts[a].x - pts[b].x) + std::abs(pts[a].y - pts[b].y);
    }
    return acc;
}

}  // namespace rdp
