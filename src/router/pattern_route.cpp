#include "router/pattern_route.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace rdp {

namespace {

double span_cost(int x0, int y0, int x1, int y1, const GridF& cost) {
    // Inclusive walk over an axis-aligned span.
    double acc = 0.0;
    if (y0 == y1) {
        const int lo = std::min(x0, x1), hi = std::max(x0, x1);
        for (int x = lo; x <= hi; ++x) acc += cost.at(x, y0);
    } else {
        const int lo = std::min(y0, y1), hi = std::max(y0, y1);
        for (int y = lo; y <= hi; ++y) acc += cost.at(x0, y);
    }
    return acc;
}

/// Evenly sampled interior values between a and b (exclusive), at most k.
std::vector<int> sample_between(int a, int b, int k) {
    std::vector<int> out;
    const int lo = std::min(a, b) + 1;
    const int hi = std::max(a, b) - 1;
    const int span = hi - lo + 1;
    if (span <= 0 || k <= 0) return out;
    if (span <= k) {
        for (int v = lo; v <= hi; ++v) out.push_back(v);
        return out;
    }
    for (int i = 0; i < k; ++i) {
        const int v = lo + static_cast<int>(
                              (static_cast<long long>(span - 1) * i) / (k - 1));
        if (out.empty() || out.back() != v) out.push_back(v);
    }
    return out;
}

}  // namespace

double path_cost(const RoutePath& p, const RouteCostModel& m) {
    double acc = m.via_cost * p.num_bends();
    for (const RouteSeg& s : p.segs) {
        acc += span_cost(s.x0, s.y0, s.x1, s.y1,
                         s.horizontal() ? *m.cost_h : *m.cost_v);
    }
    return acc;
}

RoutePath pattern_route(int x0, int y0, int x1, int y1,
                        const RouteCostModel& m, int max_bend_candidates) {
    assert(m.cost_h != nullptr && m.cost_v != nullptr);
    RoutePath best;

    if (x0 == x1 && y0 == y1) {
        best.segs.push_back(hseg(x0, y0, x0));
        return best;
    }
    if (y0 == y1) {
        best.segs.push_back(hseg(x0, y0, x1));
        return best;
    }
    if (x0 == x1) {
        best.segs.push_back(vseg(x0, y0, y1));
        return best;
    }

    double best_cost = std::numeric_limits<double>::max();
    auto consider = [&](RoutePath p) {
        const double c = path_cost(p, m);
        if (c < best_cost) {
            best_cost = c;
            best = std::move(p);
        }
    };

    // L-shapes. The bend cell is covered by both spans; the second span
    // starts adjacent to the bend to avoid double-charging the corner cell.
    {
        RoutePath p;  // horizontal first
        p.segs.push_back(hseg(x0, y0, x1));
        p.segs.push_back(vseg(x1, y0 + (y1 > y0 ? 1 : -1), y1));
        consider(std::move(p));
    }
    {
        RoutePath p;  // vertical first
        p.segs.push_back(vseg(x0, y0, y1));
        p.segs.push_back(hseg(x0 + (x1 > x0 ? 1 : -1), y1, x1));
        consider(std::move(p));
    }

    // HVH Z-shapes: horizontal to column z, vertical, horizontal.
    for (int z : sample_between(x0, x1, max_bend_candidates)) {
        RoutePath p;
        p.segs.push_back(hseg(x0, y0, z));
        p.segs.push_back(vseg(z, y0 + (y1 > y0 ? 1 : -1), y1));
        p.segs.push_back(hseg(z + (x1 > z ? 1 : -1), y1, x1));
        consider(std::move(p));
    }
    // VHV Z-shapes: vertical to row z, horizontal, vertical.
    for (int z : sample_between(y0, y1, max_bend_candidates)) {
        RoutePath p;
        p.segs.push_back(vseg(x0, y0, z));
        p.segs.push_back(hseg(x0 + (x1 > x0 ? 1 : -1), z, x1));
        p.segs.push_back(vseg(x1, z + (y1 > z ? 1 : -1), y1));
        consider(std::move(p));
    }
    return best;
}

}  // namespace rdp
