#include "router/pattern_route.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace rdp {

namespace {

double span_cost(int x0, int y0, int x1, int y1, const GridF& cost) {
    // Inclusive walk over an axis-aligned span.
    double acc = 0.0;
    if (y0 == y1) {
        const int lo = std::min(x0, x1), hi = std::max(x0, x1);
        for (int x = lo; x <= hi; ++x) acc += cost.at(x, y0);
    } else {
        const int lo = std::min(y0, y1), hi = std::max(y0, y1);
        for (int y = lo; y <= hi; ++y) acc += cost.at(x0, y);
    }
    return acc;
}

/// Evenly sampled interior values between a and b (exclusive), at most k.
void sample_between(int a, int b, int k, std::vector<int>& out) {
    out.clear();
    const int lo = std::min(a, b) + 1;
    const int hi = std::max(a, b) - 1;
    const int span = hi - lo + 1;
    if (span <= 0 || k <= 0) return;
    if (span <= k) {
        for (int v = lo; v <= hi; ++v) out.push_back(v);
        return;
    }
    for (int i = 0; i < k; ++i) {
        const int v = lo + static_cast<int>(
                              (static_cast<long long>(span - 1) * i) / (k - 1));
        if (out.empty() || out.back() != v) out.push_back(v);
    }
}

}  // namespace

double path_cost(const RoutePath& p, const RouteCostModel& m) {
    double acc = m.via_cost * p.num_bends();
    for (const RouteSeg& s : p.segs) {
        acc += span_cost(s.x0, s.y0, s.x1, s.y1,
                         s.horizontal() ? *m.cost_h : *m.cost_v);
    }
    return acc;
}

RoutePath pattern_route(int x0, int y0, int x1, int y1,
                        const RouteCostModel& m, int max_bend_candidates) {
    PatternScratch scratch;
    RoutePath out;
    pattern_route_into(x0, y0, x1, y1, m, max_bend_candidates, scratch, out);
    return out;
}

void pattern_route_into(int x0, int y0, int x1, int y1,
                        const RouteCostModel& m, int max_bend_candidates,
                        PatternScratch& scratch, RoutePath& out) {
    assert(m.cost_h != nullptr && m.cost_v != nullptr);
    out.segs.clear();

    if (x0 == x1 && y0 == y1) {
        out.segs.push_back(hseg(x0, y0, x0));
        return;
    }
    if (y0 == y1) {
        out.segs.push_back(hseg(x0, y0, x1));
        return;
    }
    if (x0 == x1) {
        out.segs.push_back(vseg(x0, y0, y1));
        return;
    }

    double best_cost = std::numeric_limits<double>::max();
    RoutePath& cand = scratch.cand;
    // Strictly-less keeps the first of equal-cost candidates, in the same
    // candidate order as ever — the tie-break the determinism tests pin.
    auto consider = [&] {
        const double c = path_cost(cand, m);
        if (c < best_cost) {
            best_cost = c;
            out.segs.swap(cand.segs);
        }
    };

    // L-shapes. The bend cell is covered by both spans; the second span
    // starts adjacent to the bend to avoid double-charging the corner cell.
    cand.segs.clear();  // horizontal first
    cand.segs.push_back(hseg(x0, y0, x1));
    cand.segs.push_back(vseg(x1, y0 + (y1 > y0 ? 1 : -1), y1));
    consider();
    cand.segs.clear();  // vertical first
    cand.segs.push_back(vseg(x0, y0, y1));
    cand.segs.push_back(hseg(x0 + (x1 > x0 ? 1 : -1), y1, x1));
    consider();

    // HVH Z-shapes: horizontal to column z, vertical, horizontal.
    sample_between(x0, x1, max_bend_candidates, scratch.samples);
    for (int z : scratch.samples) {
        cand.segs.clear();
        cand.segs.push_back(hseg(x0, y0, z));
        cand.segs.push_back(vseg(z, y0 + (y1 > y0 ? 1 : -1), y1));
        cand.segs.push_back(hseg(z + (x1 > z ? 1 : -1), y1, x1));
        consider();
    }
    // VHV Z-shapes: vertical to row z, horizontal, vertical.
    sample_between(y0, y1, max_bend_candidates, scratch.samples);
    for (int z : scratch.samples) {
        cand.segs.clear();
        cand.segs.push_back(vseg(x0, y0, z));
        cand.segs.push_back(hseg(x0 + (x1 > x0 ? 1 : -1), z, x1));
        cand.segs.push_back(vseg(x1, z + (y1 > z ? 1 : -1), y1));
        consider();
    }
}

}  // namespace rdp
