#pragma once
// Copy-on-demand stage checkpoints (DESIGN.md §11). Captured at stage
// boundaries of the guarded pipeline — cheap flat-vector copies of exactly
// the state a rollback must restore:
//   * movable-cell positions (the optimizer state; Nesterov momentum is
//     deliberately NOT preserved — restarting the solver from the restored
//     positions resets the momentum that drove the divergence),
//   * the lambda_1 / gamma penalty schedule,
//   * the budgeted inflation ratios, the PG/DPA extra-area charge they
//     were budgeted against, and the inflation scheme's history
//     (paired bookkeeping: positions are only ever restored together with
//     the inflation state they were scored with),
//   * the last-good router congestion map, so CorruptedDemand recovery can
//     fall back to known-good demand instead of re-routing forever,
//   * the metrics (wirelength, overflow) divergence detection compares
//     against.
//
// Checkpoints are captured only when the recovery layer is active, and
// capturing never mutates pipeline state — clean-run results stay bitwise
// identical with the layer on or off.

#include <vector>

#include "grid/congestion_map.hpp"
#include "inflation/momentum_inflation.hpp"
#include "util/geometry.hpp"

namespace rdp::recover {

struct StageCheckpoint {
    int iter = -1;  ///< stage-local iteration at capture (-1 = none yet)

    std::vector<Vec2> pos;  ///< movable-cell positions

    // Penalty schedule.
    double lambda1 = 0.0;
    double gamma = 0.0;

    // Inflation bookkeeping (stage 2).
    std::vector<double> ratios;  ///< budgeted effective ratios
    double extra_area = 0.0;     ///< PG/DPA charge paired with `ratios`
    InflationSnapshot inflation; ///< scheme history (momentum state)

    // Last-good router state (stage 2).
    CongestionMap cmap;

    // Detection baselines.
    double wirelength = 0.0;
    double overflow = 0.0;

    bool valid() const { return iter >= 0; }
};

}  // namespace rdp::recover
