#pragma once
// Durable crash-consistent checkpointing (DESIGN.md §16).
//
// The in-memory StageCheckpoint (checkpoint.hpp) dies with the process;
// this layer persists the pipeline state a stage boundary needs so a run
// killed at any instruction — OOM, preemption, power loss — resumes and
// finishes **bitwise identical** to the uninterrupted run.
//
// Format: a versioned binary snapshot ("RDPCKPT\0", format version,
// design/config fingerprint, stage/iteration cursor) holding tagged
// sections — positions, optimizer momentum, inflation state, best-so-far
// snapshot, congestion/extra-density maps, oscillation history — each
// with its own FNV-1a 64 checksum, so truncation or a bit flip anywhere
// names the damaged section instead of producing silent garbage.
//
// Journal: two alternating slot files (ckpt-a.bin / ckpt-b.bin, slot =
// generation % 2), each written temp-file + fsync + atomic rename
// (io_atomic.hpp). A crash mid-write tears at most the temp file; a
// corrupted newest generation falls back to the previous one; when both
// are unusable the run warns and starts clean. Write failures (disk
// full, unwritable directory) degrade once, loudly, to the in-memory
// recovery ladder only.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "inflation/momentum_inflation.hpp"
#include "util/geometry.hpp"
#include "util/grid2d.hpp"

namespace rdp::recover {

/// Stage cursor values stored in the snapshot header.
inline constexpr int kStageWirelength = 1;
inline constexpr int kStageRoutability = 2;

inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;

/// FNV-1a 64-bit over `n` bytes — the per-section checksum and the
/// design-fingerprint hash. Chainable via `seed`.
uint64_t fnv1a64(const void* data, size_t n, uint64_t seed = kFnvOffset);

/// Complete momentum state of a NesterovSolver: restore() onto a freshly
/// constructed solver reproduces the iterate sequence bit for bit.
struct OptimizerSnapshot {
    std::vector<Vec2> u;       ///< main iterate
    std::vector<Vec2> v;       ///< reference (lookahead) iterate
    std::vector<Vec2> prev_v;  ///< previous reference (BB steplength)
    std::vector<Vec2> prev_g;  ///< previous gradient (BB steplength)
    double a = 1.0;
    int k = 0;
    double last_alpha = 0.0;
    bool have_prev = false;
};

/// Everything a stage-boundary resume must restore. Stage 1 uses the
/// cursor/position/optimizer/scalar fields; stage 2 additionally carries
/// inflation, best-so-far, map, and router-relaxation state (its inner
/// solver is rebuilt fresh every outer iteration, so `opt` stays empty).
struct PipelineSnapshot {
    int stage = 0;
    int iter = 0;

    double lambda1 = 0.0;
    double gamma = 0.0;
    double lambda1_growth = 1.0;
    double initial_step = 1e-3;
    double last_wl = 0.0;

    std::vector<Vec2> pos;
    OptimizerSnapshot opt;

    std::vector<double> ratios;  ///< effective inflation ratios
    InflationSnapshot inflation;

    std::vector<Vec2> best_pos;
    std::vector<double> best_ratios;
    InflationSnapshot best_inflation;
    double best_metric = 0.0;
    double best_overflow = 0.0;
    double best_extra_area = 0.0;
    int best_iter = -1;
    int stall = 0;

    bool dc = false;
    bool dpa = false;
    bool use_ckpt_cmap = false;
    double router_overflow_penalty = 0.0;
    std::vector<double> router_layer_capacity;

    GridF extra;          ///< static extra-density field (PG rails + DPA)
    GridF cmap_demand;    ///< last routed congestion map
    GridF cmap_capacity;  ///< (empty grids when no route happened yet)
    std::vector<double> osc_window;
};

/// Knobs of the durable layer; disabled while `dir` is empty.
struct DurableOptions {
    std::string dir;     ///< journal directory (RDP_CHECKPOINT_DIR)
    int every = 25;      ///< stage-1 save cadence (RDP_CHECKPOINT_EVERY);
                         ///< stage 2 saves at every outer iteration
    std::string resume;  ///< "", "auto", or a snapshot path (RDP_RESUME)
};

/// Overlay the RDP_CHECKPOINT_DIR / RDP_CHECKPOINT_EVERY / RDP_RESUME
/// environment knobs onto `base` (env wins, matching the other RDP_*
/// knobs so a wrapper script can retrofit checkpointing onto any run).
DurableOptions resolve_durable_options(DurableOptions base);

/// Serialize/deserialize one snapshot. Exposed (rather than private to
/// DurableCheckpointer) so the corruption tests can flip bytes in every
/// section and assert each one is detected. deserialize_snapshot never
/// throws on hostile bytes: any structural damage, checksum mismatch, or
/// fingerprint mismatch returns false with a diagnostic in `error`.
std::vector<uint8_t> serialize_snapshot(const PipelineSnapshot& snap,
                                        uint64_t fingerprint,
                                        uint64_t generation);
bool deserialize_snapshot(const std::vector<uint8_t>& bytes,
                          uint64_t fingerprint, PipelineSnapshot* out,
                          uint64_t* generation, std::string* error);

/// The two-generation journal. Construction scans the directory so new
/// saves continue the generation sequence past whatever valid snapshots
/// already exist (a resumed run's saves must stay the newest).
class DurableCheckpointer {
public:
    DurableCheckpointer() = default;  ///< disabled
    DurableCheckpointer(const DurableOptions& opts, uint64_t fingerprint);

    /// False when no directory is configured or a write failure degraded
    /// the layer to in-memory-only recovery.
    bool enabled() const { return !opts_.dir.empty() && !degraded_; }
    int every() const { return opts_.every < 1 ? 1 : opts_.every; }
    uint64_t generation() const { return generation_; }

    /// Persist one snapshot as the next generation. Any I/O failure
    /// warns once and permanently degrades (the run itself continues).
    void save(const PipelineSnapshot& snap);

    /// Honour the resume request ("" = none, "auto" = newest valid
    /// generation in the journal, else an explicit snapshot path).
    /// Corrupt or mismatched candidates warn and fall back — to the
    /// previous generation under "auto", else to a clean start.
    std::optional<PipelineSnapshot> load_resume();

    /// Journal slot file that generation `generation` occupies.
    std::string slot_path(uint64_t generation) const;

private:
    DurableOptions opts_;
    uint64_t fingerprint_ = 0;
    uint64_t generation_ = 0;
    bool degraded_ = false;
};

}  // namespace rdp::recover
