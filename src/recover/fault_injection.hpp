#pragma once
// Deterministic fault-injection harness (DESIGN.md §11). A single armed
// FaultSpec — from the RDP_FAULT environment variable or the programmatic
// arm() hook — makes a chosen pipeline site corrupt its own state at a
// chosen iteration, so every recovery path can be exercised in tests and
// under the sanitizer matrix without randomness.
//
//   RDP_FAULT=<stage>:<kind>:<iter>[:<count>]
//
//   stage  guarded stage name: wirelength-gp, routability-gp, legalize
//   kind   fault_kind_name() spelling, e.g. gradient-nan, corrupted-demand
//   iter   stage-local iteration at which the site fires
//   count  number of consecutive iterations the fault keeps firing
//          (default 1; overflow-oscillation needs several)
//
// Each iteration in [iter, iter+count) fires at most once, even when the
// recovery loop rolls back and re-executes it — otherwise a persistent
// fault would defeat its own recovery and retries could never converge.
// Injection sites call fire() which is a single branch when nothing is
// armed; an unset RDP_FAULT costs nothing.
//
// The harness is process-global and driven from the serial orchestration
// layer only (like AuditStageScope); it is not touched from worker threads.

#include <optional>
#include <string>

#include "recover/recover.hpp"

namespace rdp::recover {

struct FaultSpec {
    std::string stage;
    FaultKind kind = FaultKind::GradientNaN;
    int iter = 0;
    int count = 1;
};

/// Parse "stage:kind:iter[:count]". On failure returns nullopt and, when
/// `error` is non-null, a message naming the bad field and accepted form.
std::optional<FaultSpec> parse_fault_spec(const std::string& text,
                                          std::string* error = nullptr);

namespace fault {

/// Arm a fault programmatically (replaces any armed spec, including one
/// loaded from RDP_FAULT). Resets the shot counters.
void arm(const FaultSpec& spec);
/// Disarm; subsequent fire() calls are inert (tests call this in SetUp).
void clear();
/// True when a spec is armed (loads RDP_FAULT lazily on first query).
bool armed();
/// True when the armed spec matches (stage, kind) and `iter` lies in
/// [spec.iter, spec.iter + spec.count) and has not fired yet. The caller
/// then corrupts its own state — the harness only schedules.
bool fire(const char* stage, FaultKind kind, int iter);
/// Total shots delivered since the last arm()/clear() (tests).
int shots();

}  // namespace fault
}  // namespace rdp::recover
