#pragma once
// Fault taxonomy and recovery policy knobs of the fault-tolerant pipeline
// runner (see DESIGN.md §11 "Failure handling & recovery").
//
// The placement/routing flow is a long multi-stage loop; a numerical
// blow-up, a livelocked router, or a tripped invariant audit must not end
// the run. Divergence detectors (and the PR-2 auditors) raise a typed
// RecoverableError; the StageGuard (stage_guard.hpp) applies a bounded
// recovery ladder — rollback to the last-good checkpoint, halve the
// Nesterov step, tighten the lambda schedule, relax the router capacity
// model, or skip an optional stage — so the run finishes with the best
// state it reached.
//
// On a clean run every detector only *observes* (finite checks, metric
// comparisons); results are bitwise identical with recovery enabled or
// disabled.

#include <stdexcept>
#include <string>
#include <vector>

namespace rdp {

class AuditFailure;  // util/check.hpp

namespace recover {

/// Every failure class the pipeline can detect (and the fault-injection
/// harness can induce). Kebab-case names — fault_kind_name() — are the
/// spelling used by RDP_FAULT=stage:kind:iter.
enum class FaultKind {
    GradientNaN,          ///< non-finite objective terms / gradients
    HpwlExplosion,        ///< wirelength beyond k x checkpoint (and die bound)
    OverflowOscillation,  ///< outer-loop overflow swinging instead of converging
    RouterNoProgress,     ///< RRR livelock: stalled rounds with absurd overflow
    StageTimeout,         ///< per-stage wall-clock/iteration budget exhausted
    CorruptedDemand,      ///< non-finite or negative router demand maps
    CorruptedBudget,      ///< invalid inflation ratios / budget bookkeeping
    AuditViolation,       ///< any other tripped invariant audit
};

const char* fault_kind_name(FaultKind k);
/// Inverse of fault_kind_name (exact match); false when unknown.
bool parse_fault_kind(const std::string& name, FaultKind& out);

/// Typed, recoverable pipeline fault. Thrown by the divergence detectors
/// and by the conversion of AuditFailure inside guarded stages; caught by
/// the stage's recovery loop, never meant to escape a guarded pipeline.
class RecoverableError : public std::runtime_error {
public:
    RecoverableError(FaultKind kind, std::string stage,
                     const std::string& message);

    FaultKind kind() const { return kind_; }
    const std::string& stage() const { return stage_; }

private:
    FaultKind kind_;
    std::string stage_;
};

/// Map a tripped invariant audit onto the fault taxonomy by the invariant
/// it named (finite-gradients -> GradientNaN, router-accounting /
/// congestion-finite -> CorruptedDemand, inflation-budget ->
/// CorruptedBudget, anything else -> AuditViolation).
FaultKind classify_audit_failure(const AuditFailure& failure);

/// Recovery policy knobs (part of PlacerConfig). Detection thresholds are
/// deliberately far outside what a healthy run produces: on a clean run no
/// detector trips and the recovery layer is invisible.
struct RecoverConfig {
    /// Master switch. The environment variable RDP_RECOVER=0 forces the
    /// layer off regardless (resolved by StageGuard).
    bool enabled = true;
    /// Recovery attempts per guarded stage before it degrades to its best
    /// snapshot.
    int max_retries = 2;
    /// Stage-1 iterations between placement checkpoints (stage 2
    /// checkpoints at every outer-iteration boundary).
    int checkpoint_every = 25;
    /// Wirelength explosion: WA total beyond this multiple of the last
    /// checkpoint's wirelength AND beyond the physical die bound
    /// (sum over nets of region width+height).
    double hpwl_explosion_factor = 20.0;
    /// Overflow oscillation: this many consecutive sign alternations of
    /// the outer-loop overflow, each with relative amplitude above
    /// osc_amplitude, call the schedule divergent.
    int osc_flips = 4;
    double osc_amplitude = 0.75;
    /// Router livelock: every RRR round stalled AND severity-weighted
    /// overflow beyond this absolute floor.
    double router_livelock_overflow = 1e6;
    /// Per-stage wall-clock budget in milliseconds; 0 = unlimited. The
    /// environment variable RDP_STAGE_BUDGET_MS overrides when set.
    double stage_budget_ms = 0.0;
    /// Nesterov step scale applied per rollback ("halve the step").
    double step_shrink = 0.5;
    /// lambda_1 growth excess scale applied per rollback ("tighten").
    double lambda_tighten = 0.5;
    /// Router relaxation per RouterNoProgress recovery: overflow_penalty
    /// is scaled by this, capacity utilization factors by 1/this.
    double router_relax = 0.5;
};

/// One recovery (or degradation) event, for logs and tests.
struct RecoveryEvent {
    std::string stage;
    FaultKind kind = FaultKind::AuditViolation;
    std::string action;  ///< "rollback", "reroute", "relax-router", ...
    std::string detail;
    int iter = -1;
};

/// Aggregated over a whole pipeline run (PlaceResult::recovery).
struct RecoveryReport {
    std::vector<RecoveryEvent> events;
    int rollbacks = 0;
    /// Stages that hit their budget / exhausted retries and finished on
    /// their best snapshot or were skipped.
    int degraded_stages = 0;

    bool recovered_any() const { return !events.empty(); }
    /// Events of one kind (tests).
    int count(FaultKind k) const;
};

}  // namespace recover
}  // namespace rdp
