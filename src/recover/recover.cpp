#include "recover/recover.hpp"

#include <array>
#include <utility>

#include "util/check.hpp"

namespace rdp::recover {

namespace {

constexpr std::array<std::pair<FaultKind, const char*>, 8> kKindNames = {{
    {FaultKind::GradientNaN, "gradient-nan"},
    {FaultKind::HpwlExplosion, "hpwl-explosion"},
    {FaultKind::OverflowOscillation, "overflow-oscillation"},
    {FaultKind::RouterNoProgress, "router-no-progress"},
    {FaultKind::StageTimeout, "stage-timeout"},
    {FaultKind::CorruptedDemand, "corrupted-demand"},
    {FaultKind::CorruptedBudget, "corrupted-budget"},
    {FaultKind::AuditViolation, "audit-violation"},
}};

}  // namespace

const char* fault_kind_name(FaultKind k) {
    for (const auto& [kind, name] : kKindNames)
        if (kind == k) return name;
    return "unknown";
}

bool parse_fault_kind(const std::string& name, FaultKind& out) {
    for (const auto& [kind, kname] : kKindNames) {
        if (name == kname) {
            out = kind;
            return true;
        }
    }
    return false;
}

RecoverableError::RecoverableError(FaultKind kind, std::string stage,
                                   const std::string& message)
    : std::runtime_error("[recover] stage=" + stage +
                         " fault=" + fault_kind_name(kind) + ": " + message),
      kind_(kind),
      stage_(std::move(stage)) {}

FaultKind classify_audit_failure(const AuditFailure& failure) {
    const std::string& inv = failure.invariant();
    if (inv == "finite-gradients") return FaultKind::GradientNaN;
    if (inv == "router-accounting" || inv == "incremental-route" ||
        inv == "congestion-finite")
        return FaultKind::CorruptedDemand;
    if (inv == "inflation-budget") return FaultKind::CorruptedBudget;
    return FaultKind::AuditViolation;
}

int RecoveryReport::count(FaultKind k) const {
    int n = 0;
    for (const RecoveryEvent& e : events)
        if (e.kind == k) ++n;
    return n;
}

}  // namespace rdp::recover
