#include "recover/stage_guard.hpp"

#include "recover/fault_injection.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace rdp::recover {

namespace {

/// RDP_RECOVER=0 force-disables the layer process-wide (mirrors RDP_AUDIT).
bool recover_env_enabled() {
    static const bool enabled = env::flag_or("RDP_RECOVER", true);
    return enabled;
}

}  // namespace

StageGuard::StageGuard(const char* stage, const RecoverConfig& cfg,
                       RecoveryReport* report)
    : stage_(stage),
      cfg_(cfg),
      report_(report),
      active_(cfg.enabled && recover_env_enabled()),
      budget_ms_(env::double_or("RDP_STAGE_BUDGET_MS", cfg.stage_budget_ms,
                                0.0, 1e12)),
      start_(std::chrono::steady_clock::now()) {}

bool StageGuard::over_budget(int iter) {
    if (!active_ || timed_out_) return timed_out_;
    const bool forced =
        fault::fire(stage_, FaultKind::StageTimeout, iter);
    bool expired = forced;
    if (!expired && budget_ms_ > 0.0) {
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start_)
                .count();
        expired = elapsed_ms > budget_ms_;
    }
    if (expired) {
        timed_out_ = true;
        degrade(FaultKind::StageTimeout, iter,
                forced ? "injected stage timeout"
                       : "wall-clock budget of " +
                             std::to_string(budget_ms_) + " ms exhausted");
    }
    return expired;
}

bool StageGuard::allow_retry(FaultKind kind, int iter,
                             const std::string& detail) {
    if (!active_) return false;
    if (retries_ >= cfg_.max_retries) return false;
    ++retries_;
    record(kind, iter, "retry", detail);
    return true;
}

void StageGuard::record(FaultKind kind, int iter, const char* action,
                        const std::string& detail) {
    RDP_LOG_WARN() << "[recover] stage=" << stage_
                   << " fault=" << fault_kind_name(kind) << " iter=" << iter
                   << " action=" << action << ": " << detail;
    if (report_ == nullptr) return;
    report_->events.push_back({stage_, kind, action, detail, iter});
}

void StageGuard::degrade(FaultKind kind, int iter,
                         const std::string& detail) {
    record(kind, iter, "degrade", detail);
    if (report_ != nullptr) ++report_->degraded_stages;
}

}  // namespace rdp::recover
