#include "recover/fault_injection.hpp"

#include <iostream>
#include <mutex>
#include <vector>

#include "util/env.hpp"
#include "util/thread_annotations.hpp"

namespace rdp::recover {

namespace {

std::string take_field(std::string& rest) {
    const size_t colon = rest.find(':');
    std::string field = rest.substr(0, colon);
    rest = colon == std::string::npos ? std::string() : rest.substr(colon + 1);
    return field;
}

}  // namespace

std::optional<FaultSpec> parse_fault_spec(const std::string& text,
                                          std::string* error) {
    auto fail = [&](const std::string& msg) -> std::optional<FaultSpec> {
        if (error != nullptr)
            *error = msg + " (expected <stage>:<kind>:<iter>[:<count>], e.g. "
                           "routability-gp:corrupted-demand:1)";
        return std::nullopt;
    };
    std::string rest = text;
    FaultSpec spec;
    spec.stage = take_field(rest);
    if (spec.stage.empty()) return fail("empty stage");
    if (rest.empty()) return fail("missing fault kind");
    const std::string kind = take_field(rest);
    if (!parse_fault_kind(kind, spec.kind))
        return fail("unknown fault kind '" + kind + "'");
    if (rest.empty()) return fail("missing iteration");
    const auto iter = env::parse_int(take_field(rest));
    if (!iter || *iter < 0) return fail("iteration must be an integer >= 0");
    spec.iter = static_cast<int>(*iter);
    if (!rest.empty()) {
        const auto count = env::parse_int(take_field(rest));
        if (!count || *count < 1 || !rest.empty())
            return fail("count must be an integer >= 1");
        spec.count = static_cast<int>(*count);
    }
    return spec;
}

namespace fault {

namespace {

struct Harness {
    std::optional<FaultSpec> spec;
    /// First iteration that has not fired yet; a rolled-back (re-executed)
    /// iteration below this mark stays clean so recovery can converge.
    int next_unfired = 0;
    int shots = 0;
};

/// Guards the process-wide harness: arm/clear from a test driver may race
/// with fire() from a pipeline thread, and the mutable fire bookkeeping
/// (next_unfired/shots) is exactly the kind of shared recover-state the
/// static determinism contract wants lock-annotated (DESIGN.md §15).
std::mutex g_harness_mu;

Harness& harness() REQUIRES(g_harness_mu) {
    static Harness h = [] {
        Harness init;
        if (const auto text = env::raw("RDP_FAULT")) {
            std::string err;
            if (auto spec = parse_fault_spec(*text, &err)) {
                init.spec = std::move(*spec);
                init.next_unfired = init.spec->iter;
            } else {
                std::cerr << "[W] ignoring invalid RDP_FAULT='" << *text
                          << "': " << err << "\n";
            }
        }
        return init;
    }();
    return h;
}

}  // namespace

void arm(const FaultSpec& spec) {
    std::lock_guard<std::mutex> lock(g_harness_mu);
    Harness& h = harness();
    h.spec = spec;
    h.next_unfired = spec.iter;
    h.shots = 0;
}

void clear() {
    std::lock_guard<std::mutex> lock(g_harness_mu);
    Harness& h = harness();
    h.spec.reset();
    h.shots = 0;
}

bool armed() {
    std::lock_guard<std::mutex> lock(g_harness_mu);
    return harness().spec.has_value();
}

bool fire(const char* stage, FaultKind kind, int iter) {
    std::lock_guard<std::mutex> lock(g_harness_mu);
    Harness& h = harness();
    if (!h.spec) return false;
    const FaultSpec& s = *h.spec;
    if (kind != s.kind || s.stage != stage) return false;
    if (iter < h.next_unfired || iter >= s.iter + s.count) return false;
    h.next_unfired = iter + 1;
    ++h.shots;
    return true;
}

int shots() {
    std::lock_guard<std::mutex> lock(g_harness_mu);
    return harness().shots;
}

}  // namespace fault
}  // namespace rdp::recover
