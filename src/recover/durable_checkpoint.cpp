#include "recover/durable_checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "recover/kill_points.hpp"
#include "util/env.hpp"
#include "util/io_atomic.hpp"

namespace rdp::recover {

namespace {

// ---- binary layout --------------------------------------------------------
// Header (48 bytes, checksummed over its first 40):
//   magic[8] version:u32 nsections:u32 fingerprint:u64 generation:u64
//   stage:i32 iter:i32 header_cksum:u64
// Then `nsections` sections, each:
//   tag:u32 pad:u32 payload_size:u64 payload_cksum:u64 payload[...]
// All integers and doubles are host-endian: a checkpoint is a per-host
// artifact (written and resumed on the same machine), not an interchange
// format, and memcpy'ing native representations keeps the resume bitwise
// trivially faithful.

constexpr char kMagic[8] = {'R', 'D', 'P', 'C', 'K', 'P', 'T', '\0'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 48;
constexpr size_t kSectionHeaderSize = 24;

enum SectionTag : uint32_t {
    kSecMeta = 1,
    kSecPos = 2,
    kSecOpt = 3,
    kSecInfl = 4,
    kSecBest = 5,
    kSecMaps = 6,
    kSecHist = 7,
};
constexpr uint32_t kSectionTags[] = {kSecMeta, kSecPos,  kSecOpt, kSecInfl,
                                     kSecBest, kSecMaps, kSecHist};
constexpr uint32_t kSectionCount =
    static_cast<uint32_t>(sizeof(kSectionTags) / sizeof(kSectionTags[0]));

struct Writer {
    std::vector<uint8_t> out;

    void bytes(const void* p, size_t n) {
        const auto* b = static_cast<const uint8_t*>(p);
        out.insert(out.end(), b, b + n);
    }
    void u32(uint32_t v) { bytes(&v, 4); }
    void u64(uint64_t v) { bytes(&v, 8); }
    void i32(int32_t v) { bytes(&v, 4); }
    void f64(double v) { bytes(&v, 8); }
    void b8(bool v) {
        const uint8_t x = v ? 1 : 0;
        bytes(&x, 1);
    }
    void vec_f64(const std::vector<double>& v) {
        u64(v.size());
        if (!v.empty()) bytes(v.data(), v.size() * sizeof(double));
    }
    void vec_v2(const std::vector<Vec2>& v) {
        u64(v.size());
        for (const Vec2& p : v) {
            f64(p.x);
            f64(p.y);
        }
    }
    void grid(const GridF& g) {
        i32(g.width());
        i32(g.height());
        if (!g.raw().empty())
            bytes(g.raw().data(), g.raw().size() * sizeof(double));
    }
};

struct Reader {
    const uint8_t* p = nullptr;
    size_t n = 0;
    size_t pos = 0;
    bool ok = true;

    size_t remaining() const { return n - pos; }
    bool take(void* dst, size_t k) {
        if (!ok || k > remaining()) {
            ok = false;
            return false;
        }
        std::memcpy(dst, p + pos, k);
        pos += k;
        return true;
    }
    uint32_t u32() {
        uint32_t v = 0;
        take(&v, 4);
        return v;
    }
    uint64_t u64() {
        uint64_t v = 0;
        take(&v, 8);
        return v;
    }
    int32_t i32() {
        int32_t v = 0;
        take(&v, 4);
        return v;
    }
    double f64() {
        double v = 0;
        take(&v, 8);
        return v;
    }
    bool b8() {
        uint8_t v = 0;
        take(&v, 1);
        return v != 0;
    }
    // Element counts are bounds-checked against the bytes actually present
    // before any allocation: a corrupt count must fail cleanly, not OOM.
    std::vector<double> vec_f64() {
        const uint64_t c = u64();
        if (!ok || c > remaining() / sizeof(double)) {
            ok = false;
            return {};
        }
        std::vector<double> v(static_cast<size_t>(c));
        if (c > 0) take(v.data(), v.size() * sizeof(double));
        return v;
    }
    std::vector<Vec2> vec_v2() {
        const uint64_t c = u64();
        if (!ok || c > remaining() / (2 * sizeof(double))) {
            ok = false;
            return {};
        }
        std::vector<Vec2> v(static_cast<size_t>(c));
        for (Vec2& q : v) {
            q.x = f64();
            q.y = f64();
        }
        return v;
    }
    GridF grid() {
        const int32_t w = i32();
        const int32_t h = i32();
        if (!ok || w < 0 || h < 0 ||
            (w > 0 &&
             static_cast<uint64_t>(w) * static_cast<uint64_t>(h) >
                 remaining() / sizeof(double))) {
            ok = false;
            return {};
        }
        GridF g(w, h);
        if (!g.raw().empty())
            take(g.raw().data(), g.raw().size() * sizeof(double));
        return g;
    }
};

std::vector<uint8_t> section_payload(uint32_t tag,
                                     const PipelineSnapshot& s) {
    Writer w;
    switch (tag) {
        case kSecMeta:
            w.f64(s.lambda1);
            w.f64(s.gamma);
            w.f64(s.lambda1_growth);
            w.f64(s.initial_step);
            w.f64(s.last_wl);
            w.f64(s.best_metric);
            w.f64(s.best_overflow);
            w.f64(s.best_extra_area);
            w.f64(s.router_overflow_penalty);
            w.i32(s.best_iter);
            w.i32(s.stall);
            w.b8(s.dc);
            w.b8(s.dpa);
            w.b8(s.use_ckpt_cmap);
            w.vec_f64(s.router_layer_capacity);
            break;
        case kSecPos:
            w.vec_v2(s.pos);
            break;
        case kSecOpt:
            w.vec_v2(s.opt.u);
            w.vec_v2(s.opt.v);
            w.vec_v2(s.opt.prev_v);
            w.vec_v2(s.opt.prev_g);
            w.f64(s.opt.a);
            w.i32(s.opt.k);
            w.f64(s.opt.last_alpha);
            w.b8(s.opt.have_prev);
            break;
        case kSecInfl:
            w.vec_f64(s.ratios);
            w.vec_f64(s.inflation.r);
            w.vec_f64(s.inflation.dr);
            w.vec_f64(s.inflation.prev_c);
            w.f64(s.inflation.prev_avg);
            w.i32(s.inflation.t);
            break;
        case kSecBest:
            w.vec_v2(s.best_pos);
            w.vec_f64(s.best_ratios);
            w.vec_f64(s.best_inflation.r);
            w.vec_f64(s.best_inflation.dr);
            w.vec_f64(s.best_inflation.prev_c);
            w.f64(s.best_inflation.prev_avg);
            w.i32(s.best_inflation.t);
            break;
        case kSecMaps:
            w.grid(s.extra);
            w.grid(s.cmap_demand);
            w.grid(s.cmap_capacity);
            break;
        case kSecHist:
            w.vec_f64(s.osc_window);
            break;
        default:
            break;
    }
    return w.out;
}

bool parse_section(uint32_t tag, Reader& r, PipelineSnapshot& s) {
    switch (tag) {
        case kSecMeta:
            s.lambda1 = r.f64();
            s.gamma = r.f64();
            s.lambda1_growth = r.f64();
            s.initial_step = r.f64();
            s.last_wl = r.f64();
            s.best_metric = r.f64();
            s.best_overflow = r.f64();
            s.best_extra_area = r.f64();
            s.router_overflow_penalty = r.f64();
            s.best_iter = r.i32();
            s.stall = r.i32();
            s.dc = r.b8();
            s.dpa = r.b8();
            s.use_ckpt_cmap = r.b8();
            s.router_layer_capacity = r.vec_f64();
            break;
        case kSecPos:
            s.pos = r.vec_v2();
            break;
        case kSecOpt:
            s.opt.u = r.vec_v2();
            s.opt.v = r.vec_v2();
            s.opt.prev_v = r.vec_v2();
            s.opt.prev_g = r.vec_v2();
            s.opt.a = r.f64();
            s.opt.k = r.i32();
            s.opt.last_alpha = r.f64();
            s.opt.have_prev = r.b8();
            break;
        case kSecInfl:
            s.ratios = r.vec_f64();
            s.inflation.r = r.vec_f64();
            s.inflation.dr = r.vec_f64();
            s.inflation.prev_c = r.vec_f64();
            s.inflation.prev_avg = r.f64();
            s.inflation.t = r.i32();
            break;
        case kSecBest:
            s.best_pos = r.vec_v2();
            s.best_ratios = r.vec_f64();
            s.best_inflation.r = r.vec_f64();
            s.best_inflation.dr = r.vec_f64();
            s.best_inflation.prev_c = r.vec_f64();
            s.best_inflation.prev_avg = r.f64();
            s.best_inflation.t = r.i32();
            break;
        case kSecMaps:
            s.extra = r.grid();
            s.cmap_demand = r.grid();
            s.cmap_capacity = r.grid();
            break;
        case kSecHist:
            s.osc_window = r.vec_f64();
            break;
        default:
            return false;
    }
    // The payload length must match the fields exactly: trailing bytes
    // mean the writer and reader disagree about the format.
    return r.ok && r.remaining() == 0;
}

bool fail(std::string* error, const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
}

std::optional<std::vector<uint8_t>> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
    if (in.bad()) return std::nullopt;
    return bytes;
}

/// Generation of a structurally plausible snapshot, ignoring fingerprint
/// and section payloads: used at construction to continue the sequence
/// past whatever the directory already holds (even foreign snapshots —
/// our new generations must outrank them at the next "auto" resume).
std::optional<uint64_t> peek_generation(const std::vector<uint8_t>& bytes) {
    if (bytes.size() < kHeaderSize) return std::nullopt;
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;
    uint64_t stored_cksum = 0;
    std::memcpy(&stored_cksum, bytes.data() + 40, 8);
    if (fnv1a64(bytes.data(), 40) != stored_cksum) return std::nullopt;
    uint64_t generation = 0;
    std::memcpy(&generation, bytes.data() + 24, 8);
    return generation;
}

}  // namespace

uint64_t fnv1a64(const void* data, size_t n, uint64_t seed) {
    constexpr uint64_t kPrime = 1099511628211ull;
    const auto* p = static_cast<const uint8_t*>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kPrime;
    }
    return h;
}

DurableOptions resolve_durable_options(DurableOptions base) {
    if (const auto dir = env::raw("RDP_CHECKPOINT_DIR"); dir && !dir->empty())
        base.dir = *dir;
    base.every = static_cast<int>(
        env::int_or("RDP_CHECKPOINT_EVERY", base.every, 1, 1 << 20));
    if (const auto res = env::raw("RDP_RESUME"); res && !res->empty())
        base.resume = *res;
    return base;
}

std::vector<uint8_t> serialize_snapshot(const PipelineSnapshot& snap,
                                        uint64_t fingerprint,
                                        uint64_t generation) {
    Writer w;
    w.bytes(kMagic, sizeof(kMagic));
    w.u32(kVersion);
    w.u32(kSectionCount);
    w.u64(fingerprint);
    w.u64(generation);
    w.i32(snap.stage);
    w.i32(snap.iter);
    w.u64(fnv1a64(w.out.data(), w.out.size()));
    for (const uint32_t tag : kSectionTags) {
        const std::vector<uint8_t> payload = section_payload(tag, snap);
        w.u32(tag);
        w.u32(0);
        w.u64(payload.size());
        w.u64(fnv1a64(payload.data(), payload.size()));
        w.bytes(payload.data(), payload.size());
    }
    return w.out;
}

bool deserialize_snapshot(const std::vector<uint8_t>& bytes,
                          uint64_t fingerprint, PipelineSnapshot* out,
                          uint64_t* generation, std::string* error) {
    if (bytes.size() < kHeaderSize)
        return fail(error, "file shorter than the snapshot header");
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return fail(error, "bad magic (not an RDP checkpoint)");
    Reader r{bytes.data(), bytes.size(), sizeof(kMagic), true};
    const uint32_t version = r.u32();
    const uint32_t nsections = r.u32();
    const uint64_t fp = r.u64();
    const uint64_t gen = r.u64();
    PipelineSnapshot snap;
    snap.stage = r.i32();
    snap.iter = r.i32();
    const uint64_t header_cksum = r.u64();
    if (fnv1a64(bytes.data(), 40) != header_cksum)
        return fail(error, "header checksum mismatch");
    if (version != kVersion)
        return fail(error,
                    "unsupported format version " + std::to_string(version));
    if (fp != fingerprint)
        return fail(error,
                    "design/config fingerprint mismatch (snapshot is from "
                    "a different design, seed, or configuration)");
    for (uint32_t i = 0; i < nsections; ++i) {
        if (r.remaining() < kSectionHeaderSize)
            return fail(error, "truncated section table");
        const uint32_t tag = r.u32();
        // The pad is always written as zero; the section headers carry no
        // checksum of their own, so validating it closes the one window
        // where a bit flip could go unnoticed (harmlessly, but noisily is
        // better than silently).
        if (r.u32() != 0)
            return fail(error, "section " + std::to_string(tag) +
                                   " header corrupted (nonzero pad)");
        const uint64_t size = r.u64();
        const uint64_t cksum = r.u64();
        if (size > r.remaining())
            return fail(error, "section " + std::to_string(tag) +
                                   " truncated (payload past end of file)");
        if (fnv1a64(bytes.data() + r.pos, static_cast<size_t>(size)) != cksum)
            return fail(error, "section " + std::to_string(tag) +
                                   " checksum mismatch");
        Reader sec{bytes.data() + r.pos, static_cast<size_t>(size), 0, true};
        if (!parse_section(tag, sec, snap))
            return fail(error, "section " + std::to_string(tag) +
                                   " malformed or unknown");
        r.pos += static_cast<size_t>(size);
    }
    if (r.remaining() != 0)
        return fail(error, "trailing bytes after the last section");
    if (out != nullptr) *out = std::move(snap);
    if (generation != nullptr) *generation = gen;
    return true;
}

DurableCheckpointer::DurableCheckpointer(const DurableOptions& opts,
                                         uint64_t fingerprint)
    : opts_(opts), fingerprint_(fingerprint) {
    if (opts_.dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(opts_.dir, ec);
    if (ec) {
        std::cerr << "[W] durable checkpointing disabled: cannot create '"
                  << opts_.dir << "' (" << ec.message()
                  << "); continuing with in-memory recovery only\n";
        degraded_ = true;
        return;
    }
    for (uint64_t slot = 0; slot < 2; ++slot) {
        if (const auto bytes = read_file(slot_path(slot)))
            if (const auto gen = peek_generation(*bytes))
                generation_ = std::max(generation_, *gen);
    }
}

std::string DurableCheckpointer::slot_path(uint64_t generation) const {
    return opts_.dir + (generation % 2 == 0 ? "/ckpt-a.bin" : "/ckpt-b.bin");
}

void DurableCheckpointer::save(const PipelineSnapshot& snap) {
    if (!enabled()) return;
    const uint64_t gen = generation_ + 1;
    const std::vector<uint8_t> bytes =
        serialize_snapshot(snap, fingerprint_, gen);
    io::AtomicWriteOptions wopts;
    wopts.durable = true;
    wopts.mid_write = [] { crash::maybe_kill("ckpt-mid-write"); };
    std::string err;
    if (!io::atomic_write(slot_path(gen), bytes.data(), bytes.size(), &err,
                          wopts)) {
        std::cerr << "[W] durable checkpointing disabled: " << err
                  << "; continuing with in-memory recovery only\n";
        degraded_ = true;
        return;
    }
    generation_ = gen;
    crash::maybe_kill("ckpt-post-write");
}

std::optional<PipelineSnapshot> DurableCheckpointer::load_resume() {
    if (opts_.resume.empty()) return std::nullopt;
    if (opts_.resume != "auto") {
        const auto bytes = read_file(opts_.resume);
        if (!bytes) {
            std::cerr << "[W] RDP_RESUME: cannot read '" << opts_.resume
                      << "'; starting fresh\n";
            return std::nullopt;
        }
        PipelineSnapshot snap;
        uint64_t gen = 0;
        std::string err;
        if (!deserialize_snapshot(*bytes, fingerprint_, &snap, &gen, &err)) {
            std::cerr << "[W] RDP_RESUME: checkpoint '" << opts_.resume
                      << "' rejected: " << err << "; starting fresh\n";
            return std::nullopt;
        }
        generation_ = std::max(generation_, gen);
        std::cerr << "[I] resuming from '" << opts_.resume << "' (stage "
                  << snap.stage << ", iteration " << snap.iter << ")\n";
        return snap;
    }
    if (opts_.dir.empty()) {
        std::cerr << "[W] RDP_RESUME=auto needs RDP_CHECKPOINT_DIR; "
                     "starting fresh\n";
        return std::nullopt;
    }
    std::optional<PipelineSnapshot> best;
    uint64_t best_gen = 0;
    for (uint64_t slot = 0; slot < 2; ++slot) {
        const std::string path = slot_path(slot);
        const auto bytes = read_file(path);
        if (!bytes) continue;
        PipelineSnapshot snap;
        uint64_t gen = 0;
        std::string err;
        if (!deserialize_snapshot(*bytes, fingerprint_, &snap, &gen, &err)) {
            std::cerr << "[W] checkpoint '" << path << "' rejected: " << err
                      << "; trying the previous generation\n";
            continue;
        }
        if (!best || gen > best_gen) {
            best = std::move(snap);
            best_gen = gen;
        }
    }
    if (!best) {
        std::cerr << "[W] RDP_RESUME=auto: no usable checkpoint in '"
                  << opts_.dir << "'; starting fresh\n";
        return std::nullopt;
    }
    generation_ = std::max(generation_, best_gen);
    std::cerr << "[I] resuming from generation " << best_gen << " (stage "
              << best->stage << ", iteration " << best->iter << ")\n";
    return best;
}

}  // namespace rdp::recover
