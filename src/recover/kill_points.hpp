#pragma once
// Deterministic crash injection (DESIGN.md §16). RDP_CRASH=<site>:<n>
// arms one kill point: the n-th time execution reaches that site the
// process dies with std::_Exit — no stream flushing, no atexit handlers,
// the closest portable stand-in for an OOM kill or power loss at that
// exact instruction. The persist test matrix uses this to prove the
// durable-checkpoint journal survives death at every interesting moment:
//
//   ckpt-mid-write   half the snapshot bytes are in the temp file
//   ckpt-post-write  the snapshot was just published (rename done)
//   wl-mid           top of a wirelength-stage (stage 1) iteration
//   route-mid        top of a routability-stage (stage 2) outer iteration
//
// Sibling of the RDP_FAULT harness (fault_injection.hpp), which throws
// recoverable errors; this one kills the process.

#include <string>

namespace rdp::recover::crash {

/// Exit code of an injected kill, so the child-process test driver can
/// tell an intentional death from a real crash.
inline constexpr int kExitCode = 86;

/// Die via std::_Exit(kExitCode) if RDP_CRASH (or arm()) armed this site
/// and this is the n-th hit; otherwise no-op. Thread-safe.
void maybe_kill(const char* site);

/// Test hooks: arm a site programmatically / disarm and reset hit counts.
void arm(const std::string& site, int nth);
void clear();

}  // namespace rdp::recover::crash
