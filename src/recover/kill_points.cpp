#include "recover/kill_points.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <optional>

#include "util/env.hpp"
#include "util/thread_annotations.hpp"

namespace rdp::recover::crash {

namespace {

struct KillSpec {
    std::string site;
    int nth = 1;
};

struct Harness {
    std::optional<KillSpec> spec;
    int hits = 0;  // hits of the armed site only
};

std::mutex g_crash_mu;

// Lazy first-use load of RDP_CRASH, same idiom as the RDP_FAULT harness:
// the env var is read once, under the lock, when the first site is hit.
Harness& harness() REQUIRES(g_crash_mu) {
    static Harness h = [] {
        Harness init;
        const auto text = env::raw("RDP_CRASH");
        if (!text || text->empty()) return init;
        const size_t colon = text->rfind(':');
        std::optional<long long> nth;
        if (colon != std::string::npos)
            nth = env::parse_int(text->substr(colon + 1));
        if (colon == std::string::npos || colon == 0 || !nth || *nth < 1) {
            std::cerr << "[W] ignoring invalid RDP_CRASH='" << *text
                      << "' (expected <site>:<n>, e.g. ckpt-mid-write:2)\n";
            return init;
        }
        init.spec =
            KillSpec{text->substr(0, colon), static_cast<int>(*nth)};
        return init;
    }();
    return h;
}

}  // namespace

void maybe_kill(const char* site) {
    std::lock_guard<std::mutex> lock(g_crash_mu);
    Harness& h = harness();
    if (!h.spec || h.spec->site != site) return;
    if (++h.hits < h.spec->nth) return;
    // cerr is unbuffered, so the marker survives the unflushed exit.
    std::cerr << "[crash-point] " << site << " hit " << h.hits
              << ": killing process\n";
    std::_Exit(kExitCode);
}

void arm(const std::string& site, int nth) {
    std::lock_guard<std::mutex> lock(g_crash_mu);
    Harness& h = harness();
    h.spec = KillSpec{site, nth < 1 ? 1 : nth};
    h.hits = 0;
}

void clear() {
    std::lock_guard<std::mutex> lock(g_crash_mu);
    Harness& h = harness();
    h.spec.reset();
    h.hits = 0;
}

}  // namespace rdp::recover::crash
