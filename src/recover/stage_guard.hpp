#pragma once
// StageGuard — the per-stage half of the fault-tolerant pipeline runner
// (DESIGN.md §11). One guard wraps one pipeline stage (wirelength GP,
// routability GP, legalization) and owns:
//
//   * the stage wall-clock budget (RecoverConfig::stage_budget_ms,
//     overridden by RDP_STAGE_BUDGET_MS): over_budget() turns a livelocked
//     stage into a graceful stop on its best snapshot instead of a hang;
//   * the bounded retry ledger: allow_retry() admits at most
//     RecoverConfig::max_retries recovery attempts per stage, then the
//     stage degrades;
//   * the recovery log: every attempt and degradation is recorded into the
//     run's RecoveryReport.
//
// The guard never touches placement state itself — rollback and knob
// adjustment stay in the stage code, next to the state they restore.

#include <chrono>
#include <string>

#include "recover/recover.hpp"

namespace rdp::recover {

class StageGuard {
public:
    /// `report` may be null (events are then only counted, not kept).
    StageGuard(const char* stage, const RecoverConfig& cfg,
               RecoveryReport* report);

    const char* stage() const { return stage_; }
    /// Recovery active = config enabled and not vetoed by RDP_RECOVER=0.
    bool active() const { return active_; }
    /// Resolved wall-clock budget in ms (0 = unlimited).
    double budget_ms() const { return budget_ms_; }

    /// True when the stage exhausted its wall-clock budget (or a
    /// stage-timeout fault fired for `iter`); records the event once.
    /// Always false when the guard is inactive or the budget unlimited.
    bool over_budget(int iter);

    /// Ask to recover from `kind` at stage-iteration `iter`. Returns true
    /// (and logs the attempt) while retries remain; false once the stage
    /// must degrade. Inactive guards never grant retries.
    bool allow_retry(FaultKind kind, int iter, const std::string& detail);

    /// Record a recovery-ladder action taken by the stage code
    /// ("rollback", "reroute", "relax-router", "reset-inflation", ...).
    void record(FaultKind kind, int iter, const char* action,
                const std::string& detail);
    /// Record that the stage finished degraded (best snapshot / skipped).
    void degrade(FaultKind kind, int iter, const std::string& detail);

    int retries_used() const { return retries_; }

private:
    const char* stage_;
    const RecoverConfig& cfg_;
    RecoveryReport* report_;
    bool active_;
    double budget_ms_;
    bool timed_out_ = false;
    int retries_ = 0;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace rdp::recover
