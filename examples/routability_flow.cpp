// The paper's headline scenario on one design: place the same circuit with
// the Xplace-like baseline, the Xplace-Route-like baseline, and the full
// framework, then route each result and compare DRWL / #vias / #DRVs —
// a single-design slice of Table I.
//
//   ./examples/routability_flow [design_name] [scale]
// design_name defaults to "des_perf_a" (a congested, macro-heavy design).

#include <cstdlib>
#include <iostream>

#include "benchgen/ispd_suite.hpp"
#include "eval/report.hpp"
#include "eval/route_metrics.hpp"
#include "place/global_placer.hpp"

int main(int argc, char** argv) {
    using namespace rdp;

    const std::string name = argc > 1 ? argv[1] : "des_perf_a";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.4;

    const SuiteEntry entry = suite_entry(name, scale);
    const Design input = generate_circuit(entry.gen);
    std::cout << "design " << name << ": " << entry.gen.num_cells
              << " movable cells\n";

    struct ModeSpec {
        const char* label;
        PlacerMode mode;
    };
    const ModeSpec modes[] = {
        {"Xplace-like", PlacerMode::WirelengthOnly},
        {"Xplace-Route-like", PlacerMode::RouteBaseline},
        {"Ours", PlacerMode::Ours},
    };

    Table t({"placer", "DRWL", "#vias", "#DRVs", "PT/s", "RT/s"});
    for (const ModeSpec& m : modes) {
        PlacerConfig cfg;
        cfg.mode = m.mode;
        cfg.grid_bins = entry.grid_bins;
        GlobalPlacer placer(cfg);
        const PlaceResult res = placer.place(input);
        EvalConfig ec;
        ec.grid_bins = entry.grid_bins * 2;
        const EvalMetrics em = evaluate_placement(res.placed, ec);
        t.add_row({m.label, Table::fmt(em.drwl, 0), Table::fmt_int(em.vias),
                   Table::fmt_int(em.drvs), Table::fmt(res.place_seconds, 2),
                   Table::fmt(em.route_seconds, 2)});
        std::cout << m.label << " done (outer routability iterations: "
                  << res.route_outer_iters << ")\n";
    }
    std::cout << "\n";
    t.print(std::cout);
    std::cout << "\nExpected shape (paper Table I): Ours < Xplace-Route < "
                 "Xplace in #DRVs, with DRWL and #vias roughly equal.\n";
    return 0;
}
