// Quickstart: generate a small synthetic circuit, run the paper's
// routability-driven global placement, route it, and print the metrics.
//
//   ./examples/quickstart [num_cells]

#include <cstdlib>
#include <iostream>

#include <algorithm>
#include <cmath>

#include "benchgen/generator.hpp"
#include "db/design_stats.hpp"
#include "fft/fft.hpp"
#include "eval/route_metrics.hpp"
#include "place/global_placer.hpp"

int main(int argc, char** argv) {
    using namespace rdp;

    const int num_cells = argc > 1 ? std::atoi(argv[1]) : 1500;

    // 1. Make (or load) a design. See custom_netlist.cpp for building one
    //    by hand and db/netlist_io.hpp for reading a file.
    GeneratorConfig gen;
    gen.name = "quickstart";
    gen.seed = 7;
    gen.num_cells = num_cells;
    gen.num_macros = 3;
    gen.utilization = 0.75;
    const Design design = generate_circuit(gen);
    std::cout << "design: " << design.name << " (" << compute_stats(design)
              << ")\n";

    // 2. Configure the placer. PlacerMode::Ours enables all three paper
    //    techniques (momentum inflation, differentiable congestion with
    //    net moving, dynamic pin-accessibility density).
    PlacerConfig cfg;
    cfg.mode = PlacerMode::Ours;
    // Bins sized so a bin holds roughly one cell (and G-cells hold a
    // sensible number of routing tracks).
    cfg.grid_bins = std::clamp(
        next_pow2(static_cast<int>(std::sqrt(num_cells))), 16, 128);
    cfg.verbose = true;

    // 3. Place.
    GlobalPlacer placer(cfg);
    const PlaceResult result = placer.place(design);
    std::cout << "placement done: HPWL(gp) = " << result.hpwl_gp
              << ", HPWL(final) = " << result.hpwl_final << ", "
              << result.wl_iters << " WL iters + "
              << result.route_outer_iters << " routability iters in "
              << result.place_seconds << " s\n";

    // 4. Route and score (the Innovus stand-in).
    const EvalMetrics m = evaluate_placement(result.placed);
    std::cout << "routed:  DRWL = " << m.drwl << "  #vias = " << m.vias
              << "  #DRVs = " << m.drvs << " (overflow "
              << m.drv_detail.overflow_drvs << ", pin-density "
              << m.drv_detail.pin_density_drvs << ", pg-access "
              << m.drv_detail.pg_access_drvs << ")\n";
    return 0;
}
