// Building a design through the database API by hand, saving it to the
// bookshelf-lite text format, reloading it, and placing it.
//
// The circuit is a tiny systolic-array-like fabric: a grid of processing
// cells, each connected to its right and upper neighbor, plus a "bus"
// multi-pin net per row — enough structure for the placer to find.

#include <iostream>
#include <sstream>

#include "db/netlist_io.hpp"
#include "legal/tetris.hpp"
#include "place/global_placer.hpp"
#include "wirelength/hpwl.hpp"

int main() {
    using namespace rdp;

    Design d;
    d.name = "systolic8x8";
    d.region = {0.0, 0.0, 400.0, 320.0};
    d.row_height = 8.0;
    d.site_width = 1.0;
    d.build_rows();

    const int N = 8;
    std::vector<std::vector<int>> cell(N, std::vector<int>(N));
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            // Cells get arbitrary initial positions; the placer re-inits.
            cell[i][j] = d.add_cell("pe_" + std::to_string(i) + "_" +
                                        std::to_string(j),
                                    4.0, 8.0, CellKind::Movable,
                                    {200.0, 160.0});
        }
    }
    // Neighbor nets.
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            if (j + 1 < N) {
                const int n = d.add_net("h_" + std::to_string(i) + "_" +
                                        std::to_string(j));
                d.connect(n, d.add_pin(cell[i][j], {2.0, 0.0}));
                d.connect(n, d.add_pin(cell[i][j + 1], {-2.0, 0.0}));
            }
            if (i + 1 < N) {
                const int n = d.add_net("v_" + std::to_string(i) + "_" +
                                        std::to_string(j));
                d.connect(n, d.add_pin(cell[i][j], {0.0, 4.0}));
                d.connect(n, d.add_pin(cell[i + 1][j], {0.0, -4.0}));
            }
        }
    }
    // Row buses (multi-pin nets).
    for (int i = 0; i < N; ++i) {
        const int n = d.add_net("bus_" + std::to_string(i), 0.5);
        for (int j = 0; j < N; ++j)
            d.connect(n, d.add_pin(cell[i][j], {0.0, 0.0}));
    }

    const auto problems = d.validate();
    if (!problems.empty()) {
        for (const auto& p : problems) std::cerr << "problem: " << p << "\n";
        return 1;
    }

    // Round-trip through the text format.
    std::stringstream file;
    write_design(d, file);
    Design loaded = read_design(file);
    std::cout << "serialized " << file.str().size() << " bytes, reloaded "
              << loaded.num_cells() << " cells / " << loaded.num_nets()
              << " nets\n";

    // Place it (wirelength mode is enough for an uncongested toy).
    PlacerConfig cfg;
    cfg.mode = PlacerMode::WirelengthOnly;
    cfg.grid_bins = 32;
    cfg.max_wl_iters = 200;
    const PlaceResult res = GlobalPlacer(cfg).place(loaded);

    std::cout << "placed: HPWL = " << res.hpwl_final
              << ", legal = " << (is_legal(res.placed) ? "yes" : "NO")
              << "\n";
    // The systolic grid should place its neighbors close: mean 2-pin net
    // length within a few rows.
    double acc = 0.0;
    int n2 = 0;
    for (const Net& net : res.placed.nets) {
        if (net.degree() != 2) continue;
        acc += net_hpwl(res.placed, net);
        ++n2;
    }
    std::cout << "mean neighbor-net HPWL: " << acc / n2 << " DBU (region "
              << res.placed.region.width() << " wide)\n";
    return 0;
}
