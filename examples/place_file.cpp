// File-based placement driver: read a design from the bookshelf-lite text
// format, place it with a chosen mode, write the placed design back, and
// print the quality metrics. The closest thing in this repo to a
// standalone placer binary.
//
//   ./examples/place_file <input> [output] [--mode=wl|route|ours]
//                         [--bins=N] [--seed=N] [--no-mci] [--no-dc]
//                         [--no-dpa] [--multi-pin-moving]
//                         [--budget-ms=N] [--no-recover]
//                         [--checkpoint-dir=PATH] [--checkpoint-every=N]
//                         [--resume[=auto|PATH]] [--wl-iters=N]
//                         [--route-iters=N] [--inner-iters=N] [--no-eval]
//
// --checkpoint-dir enables the durable checkpoint journal (DESIGN.md §16)
// and --resume continues a killed run from it; the resumed run finishes
// bitwise identical to the uninterrupted one. The RDP_CHECKPOINT_DIR /
// RDP_CHECKPOINT_EVERY / RDP_RESUME environment knobs override the flags.
//
// With no arguments, generates a demo design, saves it to
// /tmp/rdplace_demo.txt, and runs on that file.

#include <cstring>
#include <iostream>
#include <string>

#include "benchgen/generator.hpp"
#include "db/design_stats.hpp"
#include "db/netlist_io.hpp"
#include "eval/route_metrics.hpp"
#include "fft/fft.hpp"
#include "place/global_placer.hpp"

int main(int argc, char** argv) {
    using namespace rdp;

    std::string input_path;
    std::string output_path;
    PlacerConfig cfg;
    cfg.mode = PlacerMode::Ours;
    int bins = 0;
    bool run_eval = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--mode=", 0) == 0) {
            const std::string m = arg.substr(7);
            if (m == "wl") cfg.mode = PlacerMode::WirelengthOnly;
            else if (m == "route") cfg.mode = PlacerMode::RouteBaseline;
            else if (m == "ours") cfg.mode = PlacerMode::Ours;
            else {
                std::cerr << "unknown mode " << m << "\n";
                return 2;
            }
        } else if (arg.rfind("--bins=", 0) == 0) {
            bins = std::stoi(arg.substr(7));
        } else if (arg.rfind("--seed=", 0) == 0) {
            cfg.seed = std::stoull(arg.substr(7));
        } else if (arg == "--no-mci") {
            cfg.enable_mci = false;
        } else if (arg == "--no-dc") {
            cfg.enable_dc = false;
        } else if (arg == "--no-dpa") {
            cfg.enable_dpa = false;
        } else if (arg == "--multi-pin-moving") {
            cfg.netmove.move_multi_pin_edges = true;  // paper extension
        } else if (arg.rfind("--budget-ms=", 0) == 0) {
            cfg.recover.stage_budget_ms = std::stod(arg.substr(12));
        } else if (arg == "--no-recover") {
            cfg.recover.enabled = false;
        } else if (arg.rfind("--checkpoint-dir=", 0) == 0) {
            cfg.durable.dir = arg.substr(17);
        } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
            cfg.durable.every = std::stoi(arg.substr(19));
        } else if (arg == "--resume" || arg.rfind("--resume=", 0) == 0) {
            cfg.durable.resume = arg.size() > 9 ? arg.substr(9) : "auto";
        } else if (arg.rfind("--wl-iters=", 0) == 0) {
            cfg.max_wl_iters = std::stoi(arg.substr(11));
        } else if (arg.rfind("--route-iters=", 0) == 0) {
            cfg.max_route_iters = std::stoi(arg.substr(14));
        } else if (arg.rfind("--inner-iters=", 0) == 0) {
            cfg.inner_iters = std::stoi(arg.substr(14));
        } else if (arg == "--no-eval") {
            run_eval = false;
        } else if (input_path.empty()) {
            input_path = arg;
        } else if (output_path.empty()) {
            output_path = arg;
        } else {
            std::cerr << "unexpected argument " << arg << "\n";
            return 2;
        }
    }

    if (input_path.empty()) {
        input_path = "/tmp/rdplace_demo.txt";
        std::cout << "no input given: generating a demo design at "
                  << input_path << "\n";
        GeneratorConfig gen;
        gen.name = "demo";
        gen.num_cells = 2000;
        gen.num_macros = 3;
        gen.utilization = 0.75;
        write_design_file(generate_circuit(gen), input_path);
    }
    if (output_path.empty()) output_path = input_path + ".placed";

    Design design;
    try {
        design = read_design_file(input_path);
    } catch (const std::exception& e) {
        std::cerr << "failed to read " << input_path << ": " << e.what()
                  << "\n";
        return 1;
    }
    const auto problems = design.validate();
    if (!problems.empty()) {
        std::cerr << "design has " << problems.size()
                  << " consistency problems; first: " << problems[0] << "\n";
        return 1;
    }
    std::cout << "read " << input_path << ": " << compute_stats(design)
              << "\n";

    // Grid: explicit, or sized so a bin holds roughly one cell.
    if (bins == 0) {
        int movable = static_cast<int>(design.movable_cells().size());
        bins = std::clamp(next_pow2(static_cast<int>(std::sqrt(
                              std::max(movable, 1)))),
                          16, 256);
    }
    cfg.grid_bins = bins;
    std::cout << "placing (mode "
              << (cfg.mode == PlacerMode::WirelengthOnly ? "wirelength-only"
                  : cfg.mode == PlacerMode::RouteBaseline
                      ? "route-baseline"
                      : "ours")
              << ", grid " << bins << "x" << bins << ")...\n";

    const PlaceResult res = GlobalPlacer(cfg).place(design);
    std::cout << "placed in " << res.place_seconds << " s: HPWL "
              << res.hpwl_final << ", " << res.wl_iters
              << " wirelength iters + " << res.route_outer_iters
              << " routability iters\n";
    if (res.recovery.recovered_any()) {
        std::cout << "recovery: " << res.recovery.events.size()
                  << " events, " << res.recovery.rollbacks << " rollbacks, "
                  << res.recovery.degraded_stages << " degraded stages\n";
        for (const auto& e : res.recovery.events)
            std::cout << "  [" << e.stage << "] iter " << e.iter << " "
                      << recover::fault_kind_name(e.kind) << " -> "
                      << e.action << " (" << e.detail << ")\n";
    }

    if (run_eval) {
        const EvalMetrics m = evaluate_placement(res.placed);
        std::cout << "routed: DRWL " << m.drwl << ", #vias " << m.vias
                  << ", #DRVs " << m.drvs << "\n";
    }

    write_design_file(res.placed, output_path);
    std::cout << "wrote placed design to " << output_path << "\n";
    return 0;
}
