// Congestion analysis on a placed design: run the global router, print
// congestion statistics, an ASCII heatmap of Dmd/Cap, and the decomposition
// into local (cell-cluster-driven) vs global (net-crossing-driven)
// congestion that motivates the paper (Fig. 1).
//
//   ./examples/congestion_analysis [num_cells] [utilization]

#include <cstdlib>
#include <iostream>

#include "benchgen/generator.hpp"
#include "density/electro_density.hpp"
#include "legal/tetris.hpp"
#include "place/global_placer.hpp"
#include "eval/map_dump.hpp"
#include "router/global_router.hpp"

namespace {

/// 0-9 + '#' ASCII scale.
char shade(double v, double vmax) {
    if (vmax <= 0.0) return '.';
    const double t = v / vmax;
    if (t <= 0.0) return '.';
    const int idx = static_cast<int>(t * 10.0);
    if (idx >= 10) return '#';
    return static_cast<char>('0' + idx);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace rdp;

    GeneratorConfig gen;
    gen.name = "congestion-analysis";
    gen.seed = 99;
    gen.num_cells = argc > 1 ? std::atoi(argv[1]) : 2000;
    gen.utilization = argc > 2 ? std::atof(argv[2]) : 0.8;
    gen.num_macros = 4;
    const Design input = generate_circuit(gen);

    // Wirelength-only placement: congestion hotspots survive for analysis.
    PlacerConfig pcfg;
    pcfg.mode = PlacerMode::WirelengthOnly;
    pcfg.grid_bins = 64;
    const Design placed = GlobalPlacer(pcfg).place(input).placed;

    const int bins = 32;  // coarse for a readable heatmap
    const BinGrid grid(placed.region, bins, bins);
    GlobalRouter router(grid);
    const RouteResult rr = router.route(placed);
    const CongestionMap& cmap = rr.congestion;

    std::cout << "routed wirelength: " << rr.wirelength_dbu << " DBU, vias "
              << rr.num_vias << "\n";
    std::cout << "overflowed G-cells: " << rr.overflowed_gcells << " / "
              << bins * bins << ", total overflow " << rr.total_overflow
              << "\n";
    std::cout << "peak utilization: " << cmap.peak_utilization()
              << ", average congestion (Eq.3): "
              << cmap.average_congestion() << "\n\n";

    // Heatmap of utilization (top row = top of the die).
    const GridF util = cmap.utilization_grid();
    const double umax = grid_max(util);
    std::cout << "utilization heatmap ('.'=0 .. '#'>=" << umax << "):\n";
    for (int y = bins - 1; y >= 0; --y) {
        for (int x = 0; x < bins; ++x) std::cout << shade(util.at(x, y), umax);
        std::cout << "\n";
    }

    // Local vs global decomposition (Fig. 1): an overflowed G-cell whose
    // movable-cell density is high is locally congested (cell clustering);
    // one with low cell density is globally congested (nets crossing).
    ElectroDensity ed(grid);
    const GridF cell_density = ed.movable_density(placed);
    int local = 0, global = 0;
    for (int y = 0; y < bins; ++y) {
        for (int x = 0; x < bins; ++x) {
            if (cmap.congestion_at(x, y) <= 0.0) continue;
            const double occupancy = cell_density.at(x, y) / grid.bin_area();
            if (occupancy > 0.5)
                ++local;
            else
                ++global;
        }
    }
    std::cout << "\ncongestion decomposition: " << local
              << " locally congested G-cells (cell clustering), " << global
              << " globally congested G-cells (net crossings)\n";

    // PGM dumps for inspection with any image viewer.
    write_pgm_file(util, "/tmp/rdplace_utilization.pgm");
    write_pgm_file(cell_density, "/tmp/rdplace_cell_density.pgm");
    std::cout << "wrote /tmp/rdplace_utilization.pgm and "
                 "/tmp/rdplace_cell_density.pgm\n";
    return 0;
}
