#!/usr/bin/env bash
# Local CI entrypoint: one command that runs every correctness gate this
# repo defines (see DESIGN.md, "Correctness tooling").
#
#   1. format check      clang-format --dry-run over src/ and tests/
#   2. default build     RDP_WERROR=ON + full ctest suite
#   3. lint              determinism-contract checks (DESIGN.md §15):
#                        rdp_lint over every src/ file, ctest -L lint
#                        (fixture regressions for each rdp-* check), and —
#                        when the rdp-tidy plugin was built — a clang-tidy
#                        -load pass with the rdp-* AST checks
#   4. clang-tidy        over src/ via the exported compile_commands.json
#   5. scalar build      RDP_SIMD=scalar build + full ctest suite (the
#                        portable fallback backend must pass everything the
#                        native-SIMD build passes, bit for bit)
#   6. sanitizer matrix  address, undefined, address;undefined -> ctest -L sanitize
#                        thread                                -> ctest -L parallel
#                        plus explicit ASan+UBSan passes: ctest -L recover
#                        (fault injection), RDP_INCREMENTAL=1 ctest -L
#                        router (persistent route/RUDY caches forced on),
#                        ctest -L poisson (spectral kernels), ctest -L
#                        simd (vector backends / stable_exp / kernel
#                        equivalence), and ctest -L persist (durable
#                        checkpoint format + crash/resume kill-point
#                        matrix, DESIGN.md §16)
#
# Any failing step fails the script (non-zero exit). Tools missing from the
# host (clang-format / clang-tidy / the rdp-tidy plugin) skip their step
# with a notice so the script stays usable on gcc-only machines — the
# portable rdp_lint gate and the test gates always run. With --strict a
# missing tool is a FAILED gate instead of a notice: CI hosts that are
# supposed to have the full Clang toolchain must not pass by silently
# skipping it.
#
# Usage: ./run_checks.sh [--fast] [--strict]
#   --fast     skip the sanitizer matrix (format + build + tests + lint +
#              tidy only)
#   --strict   missing clang-format/clang-tidy/rdp-tidy plugin fails the
#              run instead of skipping with a notice

set -u

cd "$(dirname "$0")"

FAST=0
STRICT=0
for arg in "$@"; do
    case "$arg" in
        --fast) FAST=1 ;;
        --strict) STRICT=1 ;;
        *)
            echo "unknown option '$arg' (usage: ./run_checks.sh [--fast] [--strict])" >&2
            exit 2
            ;;
    esac
done

JOBS=$(nproc 2>/dev/null || echo 2)
FAILURES=()

note() { printf '\n==== %s ====\n' "$*"; }
record_failure() { FAILURES+=("$1"); printf '!!!! FAILED: %s\n' "$1"; }

# A ctest label that selects zero tests is a silently skipped gate (e.g. a
# suite renamed without its label moving along). Fail loudly instead.
require_label() {
    local dir="$1" label="$2"
    local n
    n=$(ctest --test-dir "$dir" -L "$label" -N 2>/dev/null |
        sed -n 's/.*Total Tests: //p')
    if [[ -z "$n" || "$n" -eq 0 ]]; then
        record_failure "label '$label' selects no tests in $dir"
        return 1
    fi
}

# A tool the host lacks: notice by default, failed gate under --strict.
missing_tool() {
    if [[ "$STRICT" == 1 ]]; then
        record_failure "$1 unavailable (--strict)"
    else
        echo "$1 not found: skipping (run with --strict to fail instead)"
    fi
}

# ---- 1. format check (skip when clang-format is unavailable) --------------
# tests/lint_fixtures holds deliberately-bad code the lint checks must fire
# on (lint input, not source) and tools/rdp-tidy follows upstream LLVM
# style so it diffs cleanly against clang-tidy examples; both stay outside
# the repo-style format gate.
note "format check"
if command -v clang-format >/dev/null 2>&1; then
    mapfile -t SOURCES < <(find src tests tools/rdp-lint \
                               \( -name '*.cpp' -o -name '*.hpp' \) \
                               -not -path '*/lint_fixtures/*' | sort)
    if ! clang-format --dry-run -Werror "${SOURCES[@]}"; then
        record_failure "clang-format"
    fi
else
    missing_tool "clang-format"
fi

# ---- 2. default build (warnings as errors) + full test suite --------------
note "default build (RDP_WERROR=ON) + ctest"
if cmake -B build-checks -S . -DRDP_WERROR=ON >/dev/null &&
   cmake --build build-checks -j "$JOBS"; then
    require_label build-checks sanitize
    require_label build-checks parallel
    require_label build-checks recover
    require_label build-checks router
    require_label build-checks poisson
    require_label build-checks simd
    require_label build-checks persist
    if ! ctest --test-dir build-checks --output-on-failure -j "$JOBS"; then
        record_failure "default ctest"
    fi
else
    record_failure "default build"
fi

# ---- 3. lint: the static determinism contract (DESIGN.md §15) -------------
# Three layers, strongest available wins, none silently absent:
#   a. rdp_lint (portable, built above) over every src/ source file
#   b. ctest -L lint — fixture regressions proving each rdp-* check still
#      fires on its bad fixture and stays silent on its good twin
#   c. when the host's Clang dev install built the rdp-tidy plugin, the
#      same five checks as real AST matchers via clang-tidy -load
note "lint (determinism contract)"
RDP_LINT_BIN=build-checks/tools/rdp-lint/rdp_lint
if [[ -x "$RDP_LINT_BIN" ]]; then
    mapfile -t LINT_SOURCES < <(find src \( -name '*.cpp' -o -name '*.hpp' \) |
                                sort)
    if ! "$RDP_LINT_BIN" "${LINT_SOURCES[@]}"; then
        record_failure "rdp_lint (determinism contract)"
    fi
else
    record_failure "rdp_lint binary missing ($RDP_LINT_BIN)"
fi
if require_label build-checks lint; then
    if ! ctest --test-dir build-checks -L lint --output-on-failure \
               -j "$JOBS"; then
        record_failure "lint fixture tests (ctest -L lint)"
    fi
fi
RDP_TIDY_PLUGIN_SO=build-checks/tools/rdp-tidy/librdp_tidy_module.so
TIDY_LOAD_ARGS=()
if [[ -f "$RDP_TIDY_PLUGIN_SO" ]]; then
    TIDY_LOAD_ARGS=(-load "$RDP_TIDY_PLUGIN_SO")
    if command -v clang-tidy >/dev/null 2>&1; then
        mapfile -t LINT_TIDY_SOURCES < <(find src -name '*.cpp' | sort)
        if ! clang-tidy "${TIDY_LOAD_ARGS[@]}" -checks='-*,rdp-*' \
                 --warnings-as-errors='rdp-*' -p build-checks --quiet \
                 "${LINT_TIDY_SOURCES[@]}"; then
            record_failure "rdp-tidy plugin checks over src/"
        fi
    else
        missing_tool "clang-tidy (for the rdp-tidy plugin pass)"
    fi
else
    missing_tool "rdp-tidy plugin (no Clang development install)"
fi

# ---- 4. clang-tidy over src/ (skip when unavailable) ----------------------
# When the rdp-tidy plugin exists it is loaded here too, so the rdp-* glob
# in .clang-tidy resolves and the contract checks run alongside the stock
# bug-finding families.
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
    if [[ -f build-checks/compile_commands.json ]]; then
        mapfile -t TIDY_SOURCES < <(find src -name '*.cpp' | sort)
        if ! clang-tidy "${TIDY_LOAD_ARGS[@]}" -p build-checks --quiet \
                 "${TIDY_SOURCES[@]}"; then
            record_failure "clang-tidy"
        fi
    else
        record_failure "clang-tidy (no compile_commands.json)"
    fi
else
    missing_tool "clang-tidy"
fi

# ---- 5. forced-scalar SIMD backend + full test suite ----------------------
# The scalar backend is the portability fallback for hosts without AVX2/
# NEON; it must pass the full suite, and the determinism tests inside it
# must see the same bits the native-SIMD build produces.
note "scalar SIMD backend (RDP_SIMD=scalar) + ctest"
if cmake -B build-scalar -S . -DRDP_SIMD=scalar >/dev/null &&
   cmake --build build-scalar -j "$JOBS"; then
    if ! ctest --test-dir build-scalar --output-on-failure -j "$JOBS"; then
        record_failure "scalar-backend ctest"
    fi
else
    record_failure "scalar-backend build"
fi

# ---- 6. sanitizer matrix --------------------------------------------------
if [[ "$FAST" == 0 ]]; then
    sanitize_config() {
        local preset="$1" label="$2"
        local dir="build-san-${preset//;/-}"
        note "sanitizer: $preset (ctest -L $label)"
        if cmake -B "$dir" -S . -DRDP_SANITIZE="$preset" >/dev/null &&
           cmake --build "$dir" -j "$JOBS"; then
            if require_label "$dir" "$label"; then
                if ! ctest --test-dir "$dir" -L "$label" \
                           --output-on-failure -j "$JOBS"; then
                    record_failure "sanitizer $preset"
                fi
            fi
        else
            record_failure "sanitizer $preset build"
        fi
    }
    sanitize_config "address" "sanitize"
    sanitize_config "undefined" "sanitize"
    sanitize_config "address;undefined" "sanitize"

    # Fault injection under ASan+UBSan: every recovery path (rollbacks,
    # demand fallbacks, degradations) must be memory- and UB-clean. The
    # recover label is part of the sanitize set above; this explicit pass
    # keeps the gate visible even if the label sets drift apart.
    note "fault injection under ASan+UBSan (ctest -L recover)"
    if require_label build-san-address-undefined recover; then
        if ! ctest --test-dir build-san-address-undefined -L recover \
                   --output-on-failure -j "$JOBS"; then
            record_failure "fault injection (asan+ubsan)"
        fi
    fi

    # Incremental routing under ASan+UBSan: the persistent route/RUDY
    # caches (rip-up/commit deltas, dirty-bin recompute, rebuild epochs)
    # must be memory- and UB-clean with the cache path forced on.
    note "incremental routing under ASan+UBSan (RDP_INCREMENTAL=1 ctest -L router)"
    if require_label build-san-address-undefined router; then
        if ! RDP_INCREMENTAL=1 ctest --test-dir build-san-address-undefined \
                   -L router --output-on-failure -j "$JOBS"; then
            record_failure "incremental routing (asan+ubsan)"
        fi
    fi

    # Spectral kernels under ASan+UBSan: the planned FFT/DCT layer is dense
    # index arithmetic (bit-reversal permutes, half-spectrum pack/unpack,
    # blocked transposes) — exactly the code ASan catches off-by-ones in.
    note "spectral kernels under ASan+UBSan (ctest -L poisson)"
    if require_label build-san-address-undefined poisson; then
        if ! ctest --test-dir build-san-address-undefined -L poisson \
                   --output-on-failure -j "$JOBS"; then
            record_failure "spectral kernels (asan+ubsan)"
        fi
    fi

    # SIMD layer under ASan+UBSan: the vector loads/stores around chunk
    # tails (maskload/partial stores, padded scratch rows, interleaved
    # twiddle tables) are exactly where an off-by-one reads past a buffer.
    note "SIMD kernels under ASan+UBSan (ctest -L simd)"
    if require_label build-san-address-undefined simd; then
        if ! ctest --test-dir build-san-address-undefined -L simd \
                   --output-on-failure -j "$JOBS"; then
            record_failure "simd kernels (asan+ubsan)"
        fi
    fi

    # Durable checkpointing under ASan+UBSan: the snapshot (de)serializer
    # walks hostile bytes (corruption tests feed it flipped and truncated
    # buffers), and the crash/resume matrix re-runs the whole kill-point
    # harness against sanitized binaries.
    note "durable checkpointing under ASan+UBSan (ctest -L persist)"
    if require_label build-san-address-undefined persist; then
        if ! ctest --test-dir build-san-address-undefined -L persist \
                   --output-on-failure -j "$JOBS"; then
            record_failure "durable checkpointing (asan+ubsan)"
        fi
    fi

    sanitize_config "thread" "parallel"
else
    note "sanitizer matrix skipped (--fast)"
fi

# ---- summary --------------------------------------------------------------
note "summary"
if ((${#FAILURES[@]})); then
    printf 'FAILED gates (%d):\n' "${#FAILURES[@]}"
    printf '  - %s\n' "${FAILURES[@]}"
    exit 1
fi
echo "all gates passed"
