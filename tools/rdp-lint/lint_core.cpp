#include "lint_core.hpp"

#include <algorithm>
#include <cctype>

namespace rdp::lint {

namespace {

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Index of the last non-whitespace character before `pos`, or npos.
size_t prev_sig(const std::string& s, size_t pos) {
    while (pos > 0) {
        --pos;
        if (std::isspace(static_cast<unsigned char>(s[pos])) == 0) return pos;
    }
    return std::string::npos;
}

/// Index of the first non-whitespace character at/after `pos`, or npos.
size_t next_sig(const std::string& s, size_t pos) {
    while (pos < s.size()) {
        if (std::isspace(static_cast<unsigned char>(s[pos])) == 0) return pos;
        ++pos;
    }
    return std::string::npos;
}

struct Token {
    std::string_view text;
    size_t pos = 0;
    int line = 1;
};

std::vector<Token> identifiers(const std::string& s) {
    std::vector<Token> out;
    int line = 1;
    for (size_t i = 0; i < s.size();) {
        if (s[i] == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (is_ident_char(s[i]) &&
            std::isdigit(static_cast<unsigned char>(s[i])) == 0) {
            const size_t b = i;
            while (i < s.size() && is_ident_char(s[i])) ++i;
            out.push_back({std::string_view(s).substr(b, i - b), b, line});
        } else {
            ++i;
        }
    }
    return out;
}

/// Keywords that can directly precede an expression; an identifier after
/// one of these is a use, not a declared name, and one before `::` means
/// the `::` is global-scope (e.g. `return ::getenv(...)`).
bool is_expr_keyword(std::string_view w) {
    return w == "return" || w == "else" || w == "do" || w == "case" ||
           w == "throw" || w == "co_return" || w == "co_yield" ||
           w == "co_await";
}

/// Identifier ending at index `e` (inclusive) in `s`.
std::string_view ident_ending_at(const std::string& s, size_t e) {
    size_t b = e;
    while (b > 0 && is_ident_char(s[b - 1])) --b;
    return std::string_view(s).substr(b, e - b + 1);
}

/// How an identifier call is qualified: `std::f` / `::f` (flagged), a
/// member access `x.f` / `x->f`, another namespace `foo::f`, or bare `f`.
enum class Qual { StdOrGlobal, Member, OtherScope, Bare };

Qual qualifier_of(const std::string& s, size_t tok_pos) {
    size_t p = prev_sig(s, tok_pos);
    if (p == std::string::npos) return Qual::Bare;
    if (s[p] == '.') return Qual::Member;
    if (s[p] == '>' && p > 0 && s[p - 1] == '-') return Qual::Member;
    if (s[p] == ':' && p > 0 && s[p - 1] == ':') {
        const size_t q = prev_sig(s, p - 1);
        if (q == std::string::npos || !is_ident_char(s[q]))
            return Qual::StdOrGlobal;  // global-scope ::f
        const std::string_view w = ident_ending_at(s, q);
        if (w == "std") return Qual::StdOrGlobal;
        // `return ::f(...)`: the keyword is not a namespace qualifier.
        if (is_expr_keyword(w)) return Qual::StdOrGlobal;
        return Qual::OtherScope;
    }
    return Qual::Bare;
}

/// A bare identifier directly preceded by another identifier is (almost
/// always) being declared — `double exp(double)` — not called.
bool looks_like_declaration(const std::string& s, size_t tok_pos) {
    const size_t p = prev_sig(s, tok_pos);
    if (p == std::string::npos || !is_ident_char(s[p])) return false;
    return !is_expr_keyword(ident_ending_at(s, p));
}

bool followed_by_call(const std::string& s, const Token& t) {
    const size_t n = next_sig(s, t.pos + t.text.size());
    return n != std::string::npos && s[n] == '(';
}

void add(std::vector<Finding>& out, const char* check, const std::string& path,
         int line, std::string message) {
    out.push_back({check, path, line, std::move(message)});
}

// ---- rdp-raw-exp ----------------------------------------------------------

void check_raw_exp(const std::string& stripped, const std::string& path,
                   std::vector<Finding>& out) {
    static constexpr std::string_view kFns[] = {"exp",   "expf",  "expl",
                                                "exp2",  "expm1", "fma",
                                                "fmaf",  "fmal"};
    for (const Token& t : identifiers(stripped)) {
        if (std::find(std::begin(kFns), std::end(kFns), t.text) ==
            std::end(kFns))
            continue;
        if (!followed_by_call(stripped, t)) continue;
        const Qual q = qualifier_of(stripped, t.pos);
        if (q == Qual::Member || q == Qual::OtherScope) continue;
        if (q == Qual::Bare && looks_like_declaration(stripped, t.pos))
            continue;
        add(out, "rdp-raw-exp", path, t.line,
            "raw " + std::string(t.text) +
                "() call; exp must go through rdp::simd::stable_exp and "
                "fused multiply-adds through the RDP_SIMD_FMA-gated "
                "mul_add helpers (util/simd.hpp), or SIMD backends stop "
                "being bitwise identical");
    }
}

// ---- rdp-unordered-iteration ----------------------------------------------

bool is_unordered_type(std::string_view id) {
    return id == "unordered_map" || id == "unordered_set" ||
           id == "unordered_multimap" || id == "unordered_multiset";
}

/// Variable names declared with an unordered container type in this file.
std::vector<std::string> unordered_decl_names(const std::string& s) {
    std::vector<std::string> names;
    for (const Token& t : identifiers(s)) {
        if (!is_unordered_type(t.text)) continue;
        size_t i = next_sig(s, t.pos + t.text.size());
        if (i == std::string::npos || s[i] != '<') continue;
        int depth = 0;
        while (i < s.size()) {  // skip the balanced template argument list
            if (s[i] == '<') ++depth;
            if (s[i] == '>' && --depth == 0) break;
            ++i;
        }
        if (i >= s.size()) continue;
        ++i;
        // Skip ref/pointer decorations and cv keywords before the name.
        while (true) {
            i = next_sig(s, i);
            if (i == std::string::npos) break;
            if (s[i] == '&' || s[i] == '*') {
                ++i;
                continue;
            }
            break;
        }
        if (i == std::string::npos || !is_ident_char(s[i])) continue;
        size_t b = i;
        while (i < s.size() && is_ident_char(s[i])) ++i;
        std::string name = s.substr(b, i - b);
        if (name == "const") continue;
        names.push_back(std::move(name));
    }
    return names;
}

bool contains_token(std::string_view hay, std::string_view needle) {
    size_t p = 0;
    while ((p = hay.find(needle, p)) != std::string_view::npos) {
        const bool lb = p == 0 || !is_ident_char(hay[p - 1]);
        const bool rb = p + needle.size() == hay.size() ||
                        !is_ident_char(hay[p + needle.size()]);
        if (lb && rb) return true;
        p += needle.size();
    }
    return false;
}

void check_unordered_iteration(const std::string& stripped,
                               const std::string& path,
                               std::vector<Finding>& out) {
    const std::vector<std::string> names = unordered_decl_names(stripped);
    const std::vector<Token> toks = identifiers(stripped);
    for (const Token& t : toks) {
        // Range-for whose range expression names an unordered container.
        if (t.text == "for") {
            size_t i = next_sig(stripped, t.pos + t.text.size());
            if (i == std::string::npos || stripped[i] != '(') continue;
            int depth = 0;
            size_t close = i;
            while (close < stripped.size()) {
                if (stripped[close] == '(') ++depth;
                if (stripped[close] == ')' && --depth == 0) break;
                ++close;
            }
            if (close >= stripped.size()) continue;
            // Top-level ':' (not '::') separates declaration from range.
            size_t colon = std::string::npos;
            depth = 0;
            for (size_t k = i; k < close; ++k) {
                const char c = stripped[k];
                if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
                if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
                if (c == ':' && depth == 1) {
                    if (k + 1 < close && stripped[k + 1] == ':') {
                        ++k;
                        continue;
                    }
                    if (k > 0 && stripped[k - 1] == ':') continue;
                    colon = k;
                    break;
                }
            }
            if (colon == std::string::npos) continue;
            const std::string_view range =
                std::string_view(stripped).substr(colon + 1, close - colon - 1);
            const bool hits_decl =
                std::any_of(names.begin(), names.end(),
                            [&](const std::string& n) {
                                return contains_token(range, n);
                            });
            if (hits_decl || range.find("unordered_") != std::string_view::npos)
                add(out, "rdp-unordered-iteration", path, t.line,
                    "range-for over a std::unordered_ container: hash order "
                    "is not deterministic; copy into a sorted/indexed "
                    "container before iterating (DESIGN.md §9)");
        }
        // Explicit iterator walk: container.begin() on a declared name.
        if ((t.text == "begin" || t.text == "cbegin" || t.text == "rbegin") &&
            followed_by_call(stripped, t) &&
            qualifier_of(stripped, t.pos) == Qual::Member) {
            const size_t dot = prev_sig(stripped, t.pos);
            if (dot == std::string::npos) continue;
            const size_t recv_end =
                prev_sig(stripped, stripped[dot] == '>' ? dot - 1 : dot);
            if (recv_end == std::string::npos ||
                !is_ident_char(stripped[recv_end]))
                continue;
            size_t b = recv_end;
            while (b > 0 && is_ident_char(stripped[b - 1])) --b;
            const std::string recv = stripped.substr(b, recv_end - b + 1);
            if (std::find(names.begin(), names.end(), recv) != names.end())
                add(out, "rdp-unordered-iteration", path, t.line,
                    "iterator walk over std::unordered_ container '" + recv +
                        "': hash order is not deterministic (DESIGN.md "
                        "§9)");
        }
    }
}

// ---- rdp-raw-thread -------------------------------------------------------

void check_raw_thread(const std::string& stripped, const std::string& path,
                      std::vector<Finding>& out) {
    for (const Token& t : identifiers(stripped)) {
        const bool std_prim =
            (t.text == "thread" || t.text == "jthread" || t.text == "async" ||
             t.text == "execution") &&
            qualifier_of(stripped, t.pos) == Qual::StdOrGlobal;
        const bool pthread = t.text == "pthread_create";
        if (std_prim || pthread)
            add(out, "rdp-raw-thread", path, t.line,
                "raw threading primitive (" +
                    (std_prim ? "std::" + std::string(t.text)
                              : std::string(t.text)) +
                    "); all parallelism must go through the deterministic "
                    "rdp::par:: chunk layer (util/parallel.hpp, DESIGN.md "
                    "§9)");
        if (t.text == "omp") {
            // Only flag inside an `#pragma omp` directive.
            size_t ls = stripped.rfind('\n', t.pos);
            ls = ls == std::string::npos ? 0 : ls + 1;
            const std::string_view linev =
                std::string_view(stripped).substr(ls, t.pos - ls);
            if (linev.find("#pragma") != std::string_view::npos)
                add(out, "rdp-raw-thread", path, t.line,
                    "OpenMP pragma; all parallelism must go through the "
                    "deterministic rdp::par:: chunk layer (DESIGN.md "
                    "§9)");
        }
    }
}

// ---- rdp-raw-getenv -------------------------------------------------------

void check_raw_getenv(const std::string& stripped, const std::string& path,
                      std::vector<Finding>& out) {
    for (const Token& t : identifiers(stripped)) {
        if (t.text != "getenv" && t.text != "secure_getenv") continue;
        if (qualifier_of(stripped, t.pos) == Qual::Member) continue;
        add(out, "rdp-raw-getenv", path, t.line,
            "raw " + std::string(t.text) +
                "(); every knob must use the strict rdp::env parsing "
                "layer (util/env.hpp) so malformed values warn and fall "
                "back deterministically");
    }
}

// ---- rdp-raw-file-write ---------------------------------------------------

/// True when the token sits on a preprocessor directive line: `#include
/// <fstream>` must not count as a use of std::fstream.
bool on_pp_directive(const std::string& s, size_t tok_pos) {
    size_t ls = s.rfind('\n', tok_pos);
    ls = ls == std::string::npos ? 0 : ls + 1;
    const size_t first = next_sig(s, ls);
    return first != std::string::npos && first < tok_pos && s[first] == '#';
}

void check_raw_file_write(const std::string& stripped,
                          const std::string& path,
                          std::vector<Finding>& out) {
    for (const Token& t : identifiers(stripped)) {
        const Qual q = qualifier_of(stripped, t.pos);
        const bool stream_type =
            (t.text == "ofstream" || t.text == "fstream" ||
             t.text == "basic_ofstream" || t.text == "basic_fstream") &&
            (q == Qual::StdOrGlobal || q == Qual::Bare) &&
            !on_pp_directive(stripped, t.pos);
        const bool cstdio_open =
            (t.text == "fopen" || t.text == "freopen") &&
            followed_by_call(stripped, t) && q != Qual::Member &&
            q != Qual::OtherScope &&
            !(q == Qual::Bare && looks_like_declaration(stripped, t.pos));
        if (!stream_type && !cstdio_open) continue;
        add(out, "rdp-raw-file-write", path, t.line,
            "raw file write (" + std::string(t.text) +
                "); every file under src/ must be published through "
                "rdp::io::atomic_write (util/io_atomic.hpp) so a crash "
                "can never leave a torn or half-written file "
                "(DESIGN.md §16)");
    }
}

// ---- rdp-hot-loop-alloc ---------------------------------------------------

void check_hot_loop_alloc(const std::string& stripped, const std::string& path,
                          std::vector<Finding>& out) {
    static constexpr std::string_view kAllocFns[] = {
        "malloc", "calloc", "realloc", "aligned_alloc", "strdup"};
    static constexpr std::string_view kGrowth[] = {
        "push_back", "emplace_back", "resize", "reserve",
        "insert",    "emplace",      "assign", "append"};
    static constexpr std::string_view kContainers[] = {"vector", "string",
                                                       "basic_string", "map",
                                                       "set", "deque", "list"};
    for (const Token& t : identifiers(stripped)) {
        if (t.text == "new") {
            add(out, "rdp-hot-loop-alloc", path, t.line,
                "new-expression in a kernel header; kernels run inside "
                "parallel regions on caller-owned scratch and must not "
                "allocate");
            continue;
        }
        const Qual q = qualifier_of(stripped, t.pos);
        if (std::find(std::begin(kAllocFns), std::end(kAllocFns), t.text) !=
                std::end(kAllocFns) &&
            followed_by_call(stripped, t)) {
            add(out, "rdp-hot-loop-alloc", path, t.line,
                std::string(t.text) + "() in a kernel header; kernels must "
                                      "not allocate");
            continue;
        }
        if (std::find(std::begin(kGrowth), std::end(kGrowth), t.text) !=
                std::end(kGrowth) &&
            q == Qual::Member && followed_by_call(stripped, t)) {
            add(out, "rdp-hot-loop-alloc", path, t.line,
                "container growth call ." + std::string(t.text) +
                    "() in a kernel header; size/allocate in the caller, "
                    "pass raw spans into the kernel");
            continue;
        }
        if (std::find(std::begin(kContainers), std::end(kContainers),
                      t.text) != std::end(kContainers) &&
            q == Qual::StdOrGlobal) {
            add(out, "rdp-hot-loop-alloc", path, t.line,
                "std::" + std::string(t.text) +
                    " in a kernel header; kernels operate on caller-owned "
                    "raw pointers/scratch, never owning containers");
        }
    }
}

bool path_contains(const std::string& path, std::string_view needle) {
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    return p.find(needle) != std::string::npos;
}

bool is_kernel_header(const std::string& path) {
    return path_contains(path, "wa_kernel.hpp") ||
           path_contains(path, "splat_kernel.hpp") ||
           path_contains(path, "fft_kernel.hpp") ||
           path_contains(path, "dct_kernel.hpp");
}

}  // namespace

const std::vector<std::string>& all_checks() {
    static const std::vector<std::string> kChecks = {
        "rdp-raw-exp", "rdp-unordered-iteration", "rdp-raw-thread",
        "rdp-raw-getenv", "rdp-raw-file-write", "rdp-hot-loop-alloc"};
    return kChecks;
}

std::string strip_comments_and_strings(const std::string& source) {
    std::string out = source;
    enum class St { Code, Line, Block, Str, Chr, Raw };
    St st = St::Code;
    std::string raw_delim;  // for R"delim( ... )delim"
    for (size_t i = 0; i < source.size(); ++i) {
        const char c = source[i];
        const char n = i + 1 < source.size() ? source[i + 1] : '\0';
        switch (st) {
            case St::Code:
                if (c == '/' && n == '/') {
                    st = St::Line;
                    out[i] = out[i + 1] = ' ';
                    ++i;
                } else if (c == '/' && n == '*') {
                    st = St::Block;
                    out[i] = out[i + 1] = ' ';
                    ++i;
                } else if (c == '"') {
                    // Raw string? Identify the R prefix (also u8R, LR, ...).
                    size_t r = i;
                    while (r > 0 && is_ident_char(source[r - 1])) --r;
                    const std::string_view prefix =
                        std::string_view(source).substr(r, i - r);
                    if (!prefix.empty() && prefix.back() == 'R') {
                        st = St::Raw;
                        raw_delim.clear();
                        size_t k = i + 1;
                        while (k < source.size() && source[k] != '(')
                            raw_delim.push_back(source[k++]);
                        raw_delim = ")" + raw_delim + "\"";
                        for (size_t z = i; z < std::min(k + 1, source.size());
                             ++z)
                            if (out[z] != '\n') out[z] = ' ';
                        i = std::min(k, source.size() - 1);
                    } else {
                        st = St::Str;
                        out[i] = ' ';
                    }
                } else if (c == '\'') {
                    // Digit separator (1'000) or numeric suffix, not a char
                    // literal, when directly preceded by a digit.
                    if (i > 0 &&
                        std::isdigit(static_cast<unsigned char>(
                            source[i - 1])) != 0)
                        break;
                    st = St::Chr;
                    out[i] = ' ';
                }
                break;
            case St::Line:
                if (c == '\n')
                    st = St::Code;
                else
                    out[i] = ' ';
                break;
            case St::Block:
                if (c == '*' && n == '/') {
                    st = St::Code;
                    out[i] = out[i + 1] = ' ';
                    ++i;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case St::Str:
                if (c == '\\') {
                    out[i] = ' ';
                    if (n != '\0' && n != '\n') {
                        out[i + 1] = ' ';
                        ++i;
                    }
                } else if (c == '"') {
                    st = St::Code;
                    out[i] = ' ';
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case St::Chr:
                if (c == '\\') {
                    out[i] = ' ';
                    if (n != '\0' && n != '\n') {
                        out[i + 1] = ' ';
                        ++i;
                    }
                } else if (c == '\'') {
                    st = St::Code;
                    out[i] = ' ';
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case St::Raw:
                if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
                    for (size_t z = i; z < i + raw_delim.size(); ++z)
                        if (out[z] != '\n') out[z] = ' ';
                    i += raw_delim.size() - 1;
                    st = St::Code;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
        }
    }
    return out;
}

std::vector<Finding> run_check(std::string_view check, const std::string& path,
                               const std::string& content) {
    const std::string stripped = strip_comments_and_strings(content);
    std::vector<Finding> out;
    if (check == "rdp-raw-exp") check_raw_exp(stripped, path, out);
    if (check == "rdp-unordered-iteration")
        check_unordered_iteration(stripped, path, out);
    if (check == "rdp-raw-thread") check_raw_thread(stripped, path, out);
    if (check == "rdp-raw-getenv") check_raw_getenv(stripped, path, out);
    if (check == "rdp-raw-file-write")
        check_raw_file_write(stripped, path, out);
    if (check == "rdp-hot-loop-alloc")
        check_hot_loop_alloc(stripped, path, out);
    return out;
}

std::vector<Finding> run_file(const std::string& path,
                              const std::string& content) {
    std::vector<Finding> out;
    const std::string stripped = strip_comments_and_strings(content);
    // The simd layer is the one place allowed to touch raw exp/fma; the
    // parallel layer is the one place allowed to own threads; the env
    // parser is the one place allowed to call getenv; the atomic-write
    // helper is the one place allowed to open a file for writing.
    if (!path_contains(path, "util/simd.")) check_raw_exp(stripped, path, out);
    check_unordered_iteration(stripped, path, out);
    if (!path_contains(path, "util/parallel."))
        check_raw_thread(stripped, path, out);
    if (!path_contains(path, "util/env.cpp"))
        check_raw_getenv(stripped, path, out);
    if (!path_contains(path, "util/io_atomic."))
        check_raw_file_write(stripped, path, out);
    if (is_kernel_header(path)) check_hot_loop_alloc(stripped, path, out);
    return out;
}

}  // namespace rdp::lint
