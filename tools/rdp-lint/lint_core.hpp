#pragma once
// Portable implementation of the rdp-* determinism-contract checks
// (DESIGN.md §15). The authoritative implementation is the clang-tidy
// plugin in tools/rdp-tidy (real AST matchers); this one is a
// comment/string-aware token scanner with no dependency beyond the C++
// standard library, so the lint gate still runs — and still fails the
// build on a violation — on hosts without a Clang development install.
//
// Both implementations enforce the same six rules:
//
//   rdp-raw-exp             std::exp / std::fma (and friends) outside
//                           src/util/simd.* — everything else must go
//                           through simd::stable_exp or the RDP_SIMD_FMA-
//                           gated mul_add helpers, or SIMD-vs-scalar and
//                           FMA-vs-not builds stop being bitwise identical.
//   rdp-unordered-iteration iteration over std::unordered_{map,set,...}
//                           anywhere in src/ — hash-order is not a
//                           deterministic order; iterating one feeds
//                           order-dependent FP accumulation.
//   rdp-raw-thread          std::thread / std::async / OpenMP outside
//                           src/util/parallel.* — ad-hoc threads bypass
//                           the deterministic chunk-plan layer (§9).
//   rdp-raw-getenv          std::getenv outside src/util/env.cpp — every
//                           knob must use the strict util/env parser.
//   rdp-raw-file-write      std::ofstream / std::fstream / fopen outside
//                           src/util/io_atomic.* — files must be
//                           published via io::atomic_write (temp + fsync
//                           + rename, DESIGN.md §16) so a crash never
//                           leaves a torn file behind.
//   rdp-hot-loop-alloc      heap allocation (new/malloc/vector or string
//                           growth) inside the kernel headers wa_kernel,
//                           splat_kernel, fft_kernel, dct_kernel — the
//                           kernels run inside parallel regions on
//                           caller-owned scratch; allocating there is a
//                           latency and determinism hazard.

#include <string>
#include <string_view>
#include <vector>

namespace rdp::lint {

struct Finding {
    std::string check;    // e.g. "rdp-raw-exp"
    std::string file;     // path as given by the caller
    int line = 0;         // 1-based
    std::string message;  // human-readable violation description
};

/// Names of every implemented check, in a fixed order.
const std::vector<std::string>& all_checks();

/// Replace comments, string literals, and character literals with spaces,
/// preserving the line structure (newlines survive) so findings keep
/// correct line numbers. Handles //, /* */, "...", '...', and R"(...)"
/// raw strings; digit separators (1'000'000) are not treated as literals.
std::string strip_comments_and_strings(const std::string& source);

/// Run one named check over `content` unconditionally (no path-based
/// applicability rules) — used by the fixture tests. `path` only labels
/// the findings. Unknown check names yield no findings.
std::vector<Finding> run_check(std::string_view check, const std::string& path,
                               const std::string& content);

/// Run every check whose path rules say it applies to `path`: the exp/
/// thread/getenv/file-write checks skip their own implementation files, the
/// hot-loop-alloc check fires only on the four kernel headers. This is
/// what the rdp_lint CLI and the full-tree regression test use.
std::vector<Finding> run_file(const std::string& path,
                              const std::string& content);

}  // namespace rdp::lint
