// rdp_lint: portable command-line front-end for the rdp-* determinism
// checks (lint_core.hpp). run_checks.sh runs it over every file in src/;
// any finding is a failed gate. Exit codes: 0 clean, 1 findings, 2 usage
// or I/O error.
//
//   rdp_lint [--check=<rdp-check-name>] <file>...
//
// With --check, exactly that check runs on every file (no path-based
// applicability rules) — handy for reproducing a fixture failure. Without
// it, each file gets the checks its path selects (see lint_core.hpp).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    std::string only_check;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--check=", 0) == 0) {
            only_check = arg.substr(8);
        } else if (arg == "--list-checks") {
            for (const std::string& c : rdp::lint::all_checks())
                std::cout << c << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: rdp_lint [--check=<name>] <file>...\n";
            return 0;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        std::cerr << "rdp_lint: no input files (see --help)\n";
        return 2;
    }
    size_t findings = 0;
    for (const std::string& path : files) {
        std::string content;
        if (!read_file(path, content)) {
            std::cerr << "rdp_lint: cannot read '" << path << "'\n";
            return 2;
        }
        const std::vector<rdp::lint::Finding> fs =
            only_check.empty()
                ? rdp::lint::run_file(path, content)
                : rdp::lint::run_check(only_check, path, content);
        for (const rdp::lint::Finding& f : fs) {
            std::cout << f.file << ":" << f.line << ": [" << f.check << "] "
                      << f.message << "\n";
            ++findings;
        }
    }
    if (findings > 0) {
        std::cerr << "rdp_lint: " << findings
                  << " determinism-contract violation(s)\n";
        return 1;
    }
    return 0;
}
