#include "UnorderedIterationCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace rdp {

namespace {

/// Matches an expression whose (desugared) type is one of the std
/// unordered containers.
auto unorderedExpr() {
  return expr(hasType(qualType(hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(classTemplateSpecializationDecl(hasAnyName(
          "::std::unordered_map", "::std::unordered_set",
          "::std::unordered_multimap", "::std::unordered_multiset"))))))));
}

} // namespace

void UnorderedIterationCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxForRangeStmt(hasRangeInit(unorderedExpr())).bind("loop"), this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("begin", "cbegin"))),
                        on(unorderedExpr()))
          .bind("begin"),
      this);
}

void UnorderedIterationCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *Loop = Result.Nodes.getNodeAs<CXXForRangeStmt>("loop")) {
    diag(Loop->getBeginLoc(),
         "range-for over a std::unordered_ container: hash order is not "
         "deterministic; copy into a sorted/indexed container before "
         "iterating (DESIGN.md §9)");
    return;
  }
  if (const auto *Begin = Result.Nodes.getNodeAs<CXXMemberCallExpr>("begin"))
    diag(Begin->getBeginLoc(),
         "iterator walk over a std::unordered_ container: hash order is "
         "not deterministic (DESIGN.md §9)");
}

} // namespace rdp
} // namespace tidy
} // namespace clang
