#pragma once
// rdp-raw-thread: std::thread / std::jthread construction, std::async,
// pthread_create, or an OpenMP directive anywhere except
// src/util/parallel.*.
//
// Why it is a determinism bug: the par:: layer is the repo's only
// threading primitive precisely because its chunk decomposition is a pure
// function of the problem size, never the thread count (DESIGN.md §9). An
// ad-hoc thread or OpenMP region reintroduces scheduling-order-dependent
// floating-point combination and races against the pool's one-region-at-
// a-time invariant.

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace rdp {

class RawThreadCheck : public ClangTidyCheck {
public:
  RawThreadCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace rdp
} // namespace tidy
} // namespace clang
