#pragma once
// Shared helpers for the rdp-* clang-tidy checks (tools/rdp-tidy).
//
// Each check enforces one clause of the repo's determinism contract
// (DESIGN.md §9/§14/§15). The portable twin of this module — same rules,
// token-level instead of AST-level — lives in tools/rdp-lint and runs on
// hosts without a Clang development install; keep the two in sync when a
// rule changes.

#include <algorithm>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace rdp {

/// Path (with backslashes normalized) of the spelling location of `Loc`,
/// or an empty string when it is not a real file.
inline std::string locFile(const SourceManager &SM, SourceLocation Loc) {
  std::string File = SM.getFilename(SM.getSpellingLoc(Loc)).str();
  std::replace(File.begin(), File.end(), '\\', '/');
  return File;
}

/// True when the location lives in a file whose path contains `Needle` —
/// used for the per-check exemption lists (e.g. util/simd.* may call
/// std::exp; everything else must not).
inline bool inFileContaining(const SourceManager &SM, SourceLocation Loc,
                             llvm::StringRef Needle) {
  return llvm::StringRef(locFile(SM, Loc)).contains(Needle);
}

} // namespace rdp
} // namespace tidy
} // namespace clang
