#pragma once
// rdp-raw-file-write: std::ofstream / std::fstream construction and
// fopen/freopen calls anywhere except src/util/io_atomic.cpp.
//
// Why it matters: every file the placer publishes (design snapshots,
// reports, map dumps, durable checkpoints) must go through
// rdp::io::atomic_write — temp file, optional fsync, atomic rename
// (DESIGN.md §16) — so a crash or a concurrent reader can never observe
// a torn, half-written file. A raw write stream bypasses that protocol.

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace rdp {

class RawFileWriteCheck : public ClangTidyCheck {
public:
  RawFileWriteCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace rdp
} // namespace tidy
} // namespace clang
