#include "RawFileWriteCheck.h"

#include "RdpCheckCommon.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace rdp {

void RawFileWriteCheck::registerMatchers(MatchFinder *Finder) {
  // Constructing a write-capable stream (ofstream covers wide variants
  // via basic_ofstream; plain fstream opens read/write).
  Finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(ofClass(hasAnyName(
                           "::std::basic_ofstream", "::std::basic_fstream")))))
          .bind("ctor"),
      this);
  // declRefExpr (not just callExpr) so taking the address of fopen is
  // flagged too.
  Finder->addMatcher(
      declRefExpr(to(functionDecl(hasAnyName("::fopen", "::std::fopen",
                                             "::freopen", "::std::freopen"))))
          .bind("ref"),
      this);
}

void RawFileWriteCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc;
  if (const auto *Ctor = Result.Nodes.getNodeAs<CXXConstructExpr>("ctor"))
    Loc = Ctor->getBeginLoc();
  else if (const auto *Ref = Result.Nodes.getNodeAs<DeclRefExpr>("ref"))
    Loc = Ref->getBeginLoc();
  else
    return;
  // io_atomic.cpp implements the blessed write path.
  if (inFileContaining(SM, Loc, "util/io_atomic."))
    return;
  diag(Loc, "raw file write; publish through rdp::io::atomic_write "
            "(util/io_atomic.hpp) so a crash can never leave a torn or "
            "half-written file (DESIGN.md §16)");
}

} // namespace rdp
} // namespace tidy
} // namespace clang
