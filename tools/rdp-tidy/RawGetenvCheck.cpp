#include "RawGetenvCheck.h"

#include "RdpCheckCommon.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace rdp {

void RawGetenvCheck::registerMatchers(MatchFinder *Finder) {
  // declRefExpr (not just callExpr) so taking the address of getenv is
  // flagged too.
  Finder->addMatcher(
      declRefExpr(to(functionDecl(hasAnyName("::getenv", "::std::getenv",
                                             "::secure_getenv"))))
          .bind("ref"),
      this);
}

void RawGetenvCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Ref = Result.Nodes.getNodeAs<DeclRefExpr>("ref");
  if (!Ref)
    return;
  const SourceManager &SM = *Result.SourceManager;
  // env.cpp implements the blessed wrapper.
  if (inFileContaining(SM, Ref->getBeginLoc(), "util/env.cpp"))
    return;
  diag(Ref->getBeginLoc(),
       "raw getenv; every knob must use the strict rdp::env parsing layer "
       "(util/env.hpp) so malformed values warn and fall back "
       "deterministically");
}

} // namespace rdp
} // namespace tidy
} // namespace clang
