#include "HotLoopAllocCheck.h"

#include "RdpCheckCommon.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace rdp {

namespace {

bool inKernelHeader(const SourceManager &SM, SourceLocation Loc) {
  const std::string File = locFile(SM, Loc);
  return llvm::StringRef(File).endswith("wa_kernel.hpp") ||
         llvm::StringRef(File).endswith("splat_kernel.hpp") ||
         llvm::StringRef(File).endswith("fft_kernel.hpp") ||
         llvm::StringRef(File).endswith("dct_kernel.hpp");
}

auto owningContainer() {
  return hasAnyName("::std::vector", "::std::basic_string", "::std::deque",
                    "::std::list", "::std::map", "::std::set",
                    "::std::unordered_map", "::std::unordered_set");
}

} // namespace

void HotLoopAllocCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(cxxNewExpr().bind("new"), this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::malloc", "::calloc",
                                              "::realloc",
                                              "::aligned_alloc"))))
          .bind("malloc"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("push_back", "emplace_back",
                                          "resize", "reserve", "insert",
                                          "emplace", "assign", "append"),
                               ofClass(owningContainer()))))
          .bind("growth"),
      this);
  Finder->addMatcher(
      varDecl(hasType(qualType(hasUnqualifiedDesugaredType(recordType(
                  hasDeclaration(classTemplateSpecializationDecl(
                      owningContainer())))))),
              unless(parmVarDecl()))
          .bind("decl"),
      this);
}

void HotLoopAllocCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc;
  const char *What = nullptr;
  if (const auto *New = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
    Loc = New->getBeginLoc();
    What = "new-expression";
  } else if (const auto *M = Result.Nodes.getNodeAs<CallExpr>("malloc")) {
    Loc = M->getBeginLoc();
    What = "malloc-family call";
  } else if (const auto *G =
                 Result.Nodes.getNodeAs<CXXMemberCallExpr>("growth")) {
    Loc = G->getBeginLoc();
    What = "container growth call";
  } else if (const auto *D = Result.Nodes.getNodeAs<VarDecl>("decl")) {
    Loc = D->getBeginLoc();
    What = "owning container declaration";
  } else {
    return;
  }
  // The rule applies to the kernel headers only; everything else may
  // allocate freely.
  if (!inKernelHeader(SM, Loc))
    return;
  diag(Loc, "%0 in a kernel header; kernels run inside parallel regions on "
            "caller-owned scratch and must not allocate (size in the "
            "caller, pass raw spans in)")
      << What;
}

} // namespace rdp
} // namespace tidy
} // namespace clang
