#include "RawThreadCheck.h"

#include "RdpCheckCommon.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace rdp {

void RawThreadCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(
                           ofClass(hasAnyName("::std::thread",
                                              "::std::jthread")))))
          .bind("use"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::std::async", "::pthread_create"))))
          .bind("use"),
      this);
  // OpenMP directives parse into the AST under -fopenmp; flag them all.
  Finder->addMatcher(ompExecutableDirective().bind("omp"), this);
}

void RawThreadCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc;
  if (const auto *Use = Result.Nodes.getNodeAs<Expr>("use"))
    Loc = Use->getBeginLoc();
  else if (const auto *Omp =
               Result.Nodes.getNodeAs<OMPExecutableDirective>("omp"))
    Loc = Omp->getBeginLoc();
  else
    return;
  // The par:: layer is the single blessed owner of threads.
  if (inFileContaining(SM, Loc, "util/parallel."))
    return;
  diag(Loc, "raw threading primitive; all parallelism must go through the "
            "deterministic rdp::par:: chunk layer (util/parallel.hpp, "
            "DESIGN.md §9)");
}

} // namespace rdp
} // namespace tidy
} // namespace clang
