#pragma once
// rdp-hot-loop-alloc: heap allocation inside the four kernel headers
// (wa_kernel.hpp, splat_kernel.hpp, fft_kernel.hpp, dct_kernel.hpp):
// new-expressions, malloc-family calls, growth calls on std containers
// (push_back/resize/reserve/...), and declarations of owning containers.
//
// Why it matters: the kernels run inside par:: parallel regions on
// caller-owned scratch (DESIGN.md §13/§14). An allocation there is a
// silent serialization point (allocator locks), a latency cliff in the
// hot loop, and — for containers that reallocate mid-kernel — a source of
// pointer invalidation bugs the chunk plans cannot see.

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace rdp {

class HotLoopAllocCheck : public ClangTidyCheck {
public:
  HotLoopAllocCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace rdp
} // namespace tidy
} // namespace clang
