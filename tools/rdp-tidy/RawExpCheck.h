#pragma once
// rdp-raw-exp: direct std::exp / std::fma (and the expf/expl/exp2/expm1/
// fmaf/fmal variants) anywhere except src/util/simd.*.
//
// Why it is a determinism bug: rdp::simd::stable_exp is the one exp
// implementation whose scalar and vector lanes are bitwise identical, and
// fused multiply-adds are legal only behind the RDP_SIMD_FMA gate
// (DESIGN.md §14). A raw libm call or an unconditional std::fma gives
// different bits per libm version / ISA and silently breaks the
// cross-backend bitwise contract.

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace rdp {

class RawExpCheck : public ClangTidyCheck {
public:
  RawExpCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace rdp
} // namespace tidy
} // namespace clang
