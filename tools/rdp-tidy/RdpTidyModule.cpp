// rdp-tidy: project-specific clang-tidy module enforcing the determinism
// contract statically (DESIGN.md §15). Build as a shared object and load
// into a stock clang-tidy:
//
//   clang-tidy -load tools/rdp-tidy/librdp_tidy_module.so \
//              -checks='-*,rdp-*' -p build src/**/*.cpp
//
// run_checks.sh does exactly that whenever the plugin was built; the
// fixture regression tests under tests/lint_test keep every check honest
// (each must fire on its bad fixture and stay silent on its good one).

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "HotLoopAllocCheck.h"
#include "RawExpCheck.h"
#include "RawFileWriteCheck.h"
#include "RawGetenvCheck.h"
#include "RawThreadCheck.h"
#include "UnorderedIterationCheck.h"

namespace clang {
namespace tidy {
namespace rdp {

class RdpTidyModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<RawExpCheck>("rdp-raw-exp");
    Factories.registerCheck<UnorderedIterationCheck>(
        "rdp-unordered-iteration");
    Factories.registerCheck<RawThreadCheck>("rdp-raw-thread");
    Factories.registerCheck<RawGetenvCheck>("rdp-raw-getenv");
    Factories.registerCheck<RawFileWriteCheck>("rdp-raw-file-write");
    Factories.registerCheck<HotLoopAllocCheck>("rdp-hot-loop-alloc");
  }
};

static ClangTidyModuleRegistry::Add<RdpTidyModule>
    X("rdp-module", "rdplace determinism-contract checks");

} // namespace rdp
} // namespace tidy

// Anchor so -load keeps the module object file alive.
volatile int RdpTidyModuleAnchorSource = 0;

} // namespace clang
