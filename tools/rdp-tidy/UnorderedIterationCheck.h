#pragma once
// rdp-unordered-iteration: a range-for loop or an explicit begin()/cbegin()
// iterator walk over std::unordered_map / unordered_set (and the multi
// variants) anywhere in src/.
//
// Why it is a determinism bug: hash-table iteration order depends on the
// implementation, the seed, and the insertion history. A loop over an
// unordered container feeding a floating-point accumulation (or any
// order-sensitive fold) produces different bits run to run, which violates
// the bitwise-reproducibility contract (DESIGN.md §9). Copy keys into a
// sorted vector — or use an index-keyed container — before iterating.

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace rdp {

class UnorderedIterationCheck : public ClangTidyCheck {
public:
  UnorderedIterationCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace rdp
} // namespace tidy
} // namespace clang
