#pragma once
// rdp-raw-getenv: std::getenv / ::getenv / secure_getenv anywhere except
// src/util/env.cpp.
//
// Why it matters: every RDP_* knob goes through the strict rdp::env
// parsing layer so malformed values produce one warning and a documented
// default instead of an atoi-style silent zero — and so a future
// PlacementContext can virtualize the environment for multi-tenant runs
// (ROADMAP item 1). A raw getenv bypasses both.

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace rdp {

class RawGetenvCheck : public ClangTidyCheck {
public:
  RawGetenvCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace rdp
} // namespace tidy
} // namespace clang
