#include "RawExpCheck.h"

#include "RdpCheckCommon.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace rdp {

void RawExpCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::exp", "::expf", "::expl", "::exp2", "::expm1", "::fma",
                   "::fmaf", "::fmal", "::std::exp", "::std::expf",
                   "::std::expl", "::std::exp2", "::std::expm1", "::std::fma",
                   "::std::fmaf", "::std::fmal"))))
          .bind("call"),
      this);
}

void RawExpCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  if (!Call)
    return;
  const SourceManager &SM = *Result.SourceManager;
  // The SIMD layer itself is the single blessed caller.
  if (inFileContaining(SM, Call->getBeginLoc(), "util/simd."))
    return;
  diag(Call->getBeginLoc(),
       "raw exp/fma call; exp must go through rdp::simd::stable_exp and "
       "fused multiply-adds through the RDP_SIMD_FMA-gated mul_add helpers "
       "(util/simd.hpp), or SIMD backends stop being bitwise identical");
}

} // namespace rdp
} // namespace tidy
} // namespace clang
