// Tests for the paper's core contribution: the congestion Poisson field,
// virtual-cell construction (Eq. 6-8), the two-pin net-moving gradient
// (Algorithm 1 / Eq. 9), multi-pin selection (Algorithm 2), and the
// lambda_2 schedule (Eq. 10).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "congestion/bbox_penalty.hpp"
#include "congestion/rudy.hpp"
#include "congestion/congestion_field.hpp"
#include "congestion/lambda_schedule.hpp"
#include "congestion/net_moving.hpp"
#include "congestion/virtual_cell.hpp"

namespace rdp {
namespace {

/// 16x16 G-cells of 10x10 DBU with a congested column/blob.
struct Fixture {
    BinGrid grid{Rect{0, 0, 160, 160}, 16, 16};
    GridF dmd, cap;

    Fixture() : dmd(16, 16, 2.0), cap(16, 16, 10.0) {}

    CongestionMap map() const { return CongestionMap(grid, dmd, cap); }
};

TEST(VirtualCellTest, KCountsTraversedGcells) {
    Fixture f;
    const CongestionMap m = f.map();
    // Horizontal segment spanning 5 G-cell widths.
    VirtualCell vc = find_virtual_cell({10, 15}, {60, 15}, m);
    EXPECT_EQ(vc.k, 5);
    EXPECT_TRUE(vc.valid);
    // Short segment inside one G-cell: k = 0, invalid.
    vc = find_virtual_cell({12, 15}, {18, 17}, m);
    EXPECT_EQ(vc.k, 0);
    EXPECT_FALSE(vc.valid);
    // Diagonal: k = max of the two spans.
    vc = find_virtual_cell({5, 5}, {5 + 30, 5 + 70}, m);
    EXPECT_EQ(vc.k, 7);
}

TEST(VirtualCellTest, PicksMaxCongestionCandidate) {
    Fixture f;
    f.dmd.at(8, 1) = 25.0;  // congestion 1.5 at column 8, row 1
    f.dmd.at(4, 1) = 15.0;  // congestion 0.5 at column 4
    const CongestionMap m = f.map();
    const VirtualCell vc = find_virtual_cell({5, 15}, {155, 15}, m);
    ASSERT_TRUE(vc.valid);
    EXPECT_DOUBLE_EQ(vc.congestion, 1.5);
    EXPECT_EQ(m.grid().index_of(vc.pos).ix, 8);
}

TEST(VirtualCellTest, CandidatePointsLieOnSegment) {
    Fixture f;
    f.dmd.at(8, 8) = 30.0;
    const CongestionMap m = f.map();
    const Vec2 p1{20, 30}, p2{140, 130};
    const VirtualCell vc = find_virtual_cell(p1, p2, m);
    ASSERT_TRUE(vc.valid);
    // vc.pos = p1 + t (p2 - p1) for some t in (0, 1).
    const Vec2 d = p2 - p1;
    const double t = (vc.pos - p1).dot(d) / d.norm2();
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 1.0);
    const Vec2 on_seg = p1 + t * d;
    EXPECT_NEAR((vc.pos - on_seg).norm(), 0.0, 1e-9);
}

TEST(VirtualCellTest, ZeroCongestionStillValidWithZeroValue) {
    Fixture f;  // uniform utilization 0.2, congestion 0 everywhere
    const VirtualCell vc = find_virtual_cell({5, 15}, {155, 15}, f.map());
    EXPECT_TRUE(vc.valid);
    EXPECT_DOUBLE_EQ(vc.congestion, 0.0);
}

TEST(CongestionFieldTest, FieldPushesAwayFromHotColumn) {
    Fixture f;
    for (int y = 0; y < 16; ++y) f.dmd.at(8, y) = 30.0;
    const CongestionMap m = f.map();
    CongestionField field(f.grid);
    field.build(m);
    // Left of the hot column the field points -x (away), right +x.
    EXPECT_LT(field.field_at({55, 80}).x, 0.0);
    EXPECT_GT(field.field_at({115, 80}).x, 0.0);
    // charge_gradient = -A E: moving down the gradient moves away.
    const Vec2 g = field.charge_gradient({55, 80}, 10.0);
    EXPECT_GT(g.x, 0.0);
}

TEST(CongestionFieldTest, PotentialPeaksAtHotSpot) {
    Fixture f;
    f.dmd.at(10, 10) = 40.0;
    CongestionField field(f.grid);
    field.build(f.map());
    const Vec2 hot = f.grid.bin_center(10, 10);
    EXPECT_GT(field.potential_at(hot), field.potential_at({15, 15}));
}

class NetMovingFixture : public ::testing::Test {
protected:
    void SetUp() override {
        f_.dmd = GridF(16, 16, 2.0);
        // Hot horizontal band on rows 6-7 (y in [60, 80)), with a peak at
        // column 8 so the virtual-cell winner is unambiguous.
        for (int x = 0; x < 16; ++x) {
            f_.dmd.at(x, 6) = 28.0;
            f_.dmd.at(x, 7) = 28.0;
        }
        f_.dmd.at(8, 7) = 34.0;
        cmap_ = f_.map();
        field_ = std::make_unique<CongestionField>(f_.grid);
        field_->build(cmap_);
    }

    /// Two-pin horizontal-ish net inside the hot band (y ~ 76).
    Design two_pin_design(double y1, double y2) {
        Design d;
        d.region = {0, 0, 160, 160};
        d.row_height = 8;
        const int a = d.add_cell("a", 4, 8, CellKind::Movable, {30, y1});
        const int b = d.add_cell("b", 4, 8, CellKind::Movable, {130, y2});
        const int net = d.add_net("n");
        d.connect(net, d.add_pin(a, {0, 0}));
        d.connect(net, d.add_pin(b, {0, 0}));
        return d;
    }

    Fixture f_;
    CongestionMap cmap_;
    std::unique_ptr<CongestionField> field_;
};

TEST_F(NetMovingFixture, TwoPinGradientIsPerpendicular) {
    const Design d = two_pin_design(76, 76);
    NetMovingGradient nm;
    const NetMovingResult res = nm.compute(d, cmap_, *field_);
    // A horizontal net: the perpendicular direction is vertical, so the
    // x component of both gradients must vanish and the y components
    // agree in direction (the whole net translates, paper Fig. 3(b)).
    ASSERT_EQ(res.cell_grad.size(), 2u);
    EXPECT_NEAR(res.cell_grad[0].x, 0.0, 1e-9);
    EXPECT_NEAR(res.cell_grad[1].x, 0.0, 1e-9);
    EXPECT_GT(std::abs(res.cell_grad[0].y), 0.0);
    EXPECT_GT(res.cell_grad[0].y * res.cell_grad[1].y, 0.0);
    EXPECT_EQ(res.virtual_cells_created, 1);
    // The net sits above the band center (y=76 vs 70): the congestion
    // gradient points back toward the hot center (-y), so gradient descent
    // moves the net up and out of the band.
    EXPECT_LT(res.cell_grad[0].y, 0.0);
}

TEST_F(NetMovingFixture, BothCellsMoveTheSameDirection) {
    // Slanted net crossing the band: gradients still share direction (the
    // whole net translates out of the congested band, paper Fig. 3(b)).
    const Design d = two_pin_design(66, 78);
    NetMovingGradient nm;
    const NetMovingResult res = nm.compute(d, cmap_, *field_);
    ASSERT_GT(res.cell_grad[0].norm(), 0.0);
    const double dot = res.cell_grad[0].dot(res.cell_grad[1]);
    EXPECT_GT(dot, 0.0);
}

TEST_F(NetMovingFixture, CloserPinGetsLargerGradient) {
    // Pin distances to the virtual cell differ -> Eq. (9): gradient scales
    // with L / (2 d_iv). The congestion peak is at column 8 (x ~ 85), so
    // the virtual cell lands there; the pin at x=60 is closer than x=150.
    Design d;
    d.region = {0, 0, 160, 160};
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {60, 76});
    const int b = d.add_cell("b", 4, 8, CellKind::Movable, {150, 76});
    const int net = d.add_net("n");
    d.connect(net, d.add_pin(a, {0, 0}));
    d.connect(net, d.add_pin(b, {0, 0}));
    NetMovingGradient nm;
    const NetMovingResult res = nm.compute(d, cmap_, *field_);
    EXPECT_GT(res.cell_grad[static_cast<size_t>(a)].norm(),
              res.cell_grad[static_cast<size_t>(b)].norm());
}

TEST_F(NetMovingFixture, UncongestedNetGetsNoGradient) {
    GridF dmd(16, 16, 2.0);  // no congestion anywhere
    const CongestionMap quiet(f_.grid, dmd, f_.cap);
    CongestionField field(f_.grid);
    field.build(quiet);
    const Design d = two_pin_design(76, 76);
    NetMovingGradient nm;
    const NetMovingResult res = nm.compute(d, quiet, field);
    EXPECT_EQ(res.cell_grad[0], Vec2{});
    EXPECT_EQ(res.cell_grad[1], Vec2{});
    EXPECT_EQ(res.virtual_cells_created, 0);
    EXPECT_EQ(res.num_congested_cells, 0);
}

TEST_F(NetMovingFixture, FixedCellsGetNoGradient) {
    Design d = two_pin_design(76, 76);
    d.cells[0].kind = CellKind::Fixed;
    NetMovingGradient nm;
    const NetMovingResult res = nm.compute(d, cmap_, *field_);
    EXPECT_EQ(res.cell_grad[0], Vec2{});
    EXPECT_GT(res.cell_grad[1].norm(), 0.0);
}

TEST_F(NetMovingFixture, MultiPinCellGatedBySelectionRule) {
    // Build a design where one cell has many pins and sits in the hot band
    // and another has many pins in a quiet area.
    Design d;
    d.region = {0, 0, 160, 160};
    const int hot = d.add_cell("hot", 4, 8, CellKind::Movable, {75, 75});
    const int cold = d.add_cell("cold", 4, 8, CellKind::Movable, {20, 20});
    const int lone = d.add_cell("lone", 4, 8, CellKind::Movable, {140, 140});
    // 4 three-pin nets hot-cold-lone: hot and cold get 4 pins each.
    for (int i = 0; i < 4; ++i) {
        const int n = d.add_net("n" + std::to_string(i));
        d.connect(n, d.add_pin(hot, {0, 0}));
        d.connect(n, d.add_pin(cold, {0, 0}));
        d.connect(n, d.add_pin(lone, {0, 0}));
    }
    // Average pins/cell = 12/3 = 4; nobody exceeds it. Add three-pin nets
    // (no two-pin nets in this design, so only Algorithm 2's multi-pin
    // path can produce gradients) to push `hot` and `lone` above average.
    for (int i = 0; i < 2; ++i) {
        const int n = d.add_net("m" + std::to_string(i));
        d.connect(n, d.add_pin(hot, {0, 0}));
        d.connect(n, d.add_pin(hot, {1, 0}));
        d.connect(n, d.add_pin(lone, {0, 0}));
    }
    // Now hot has 8 pins, cold 4, lone 6; average = 18/3 = 6.
    NetMovingConfig cfg;
    cfg.multi_pin_congestion_threshold = 0.7;
    NetMovingGradient nm(cfg);
    const NetMovingResult res = nm.compute(d, cmap_, *field_);
    // hot: pins > avg AND congestion at (75,75) = 1.8 > 0.7 -> updated.
    EXPECT_GT(res.multi_pin_updates, 0);
    // cold: pins > avg but congestion 0 -> no direct cell gradient. Its
    // gradient can still be nonzero only via two-pin nets (none here are
    // two-pin), so it must be exactly zero.
    EXPECT_EQ(res.cell_grad[static_cast<size_t>(cold)], Vec2{});
    EXPECT_GT(res.cell_grad[static_cast<size_t>(hot)].norm(), 0.0);
}

TEST_F(NetMovingFixture, CongestedCellCountForLambda2) {
    // Both cells sit inside the hot band: N_C = 2.
    const Design d = two_pin_design(76, 76);
    NetMovingGradient nm;
    const NetMovingResult res = nm.compute(d, cmap_, *field_);
    EXPECT_EQ(res.num_congested_cells, 2);
    // Moving one cell out of the band drops the count to 1.
    Design d2 = two_pin_design(76, 76);
    d2.cells[0].pos = {30, 20};
    const NetMovingResult res2 = nm.compute(d2, cmap_, *field_);
    EXPECT_EQ(res2.num_congested_cells, 1);
}


TEST_F(NetMovingFixture, MultiPinEdgeMovingExtension) {
    // EXTENSION: with move_multi_pin_edges on, a 3-pin net crossing the
    // hot band receives perpendicular net-moving gradients on its MST
    // edges; with it off (the paper's algorithm), a 3-pin net gets no
    // two-pin gradient at all.
    Design d;
    d.region = {0, 0, 160, 160};
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {20, 76});
    const int b = d.add_cell("b", 4, 8, CellKind::Movable, {80, 76});
    const int c = d.add_cell("c", 4, 8, CellKind::Movable, {140, 76});
    const int net = d.add_net("n");
    d.connect(net, d.add_pin(a, {0, 0}));
    d.connect(net, d.add_pin(b, {0, 0}));
    d.connect(net, d.add_pin(c, {0, 0}));

    NetMovingConfig off;
    const NetMovingResult r_off =
        NetMovingGradient(off).compute(d, cmap_, *field_);
    EXPECT_EQ(r_off.virtual_cells_created, 0);
    EXPECT_EQ(r_off.cell_grad[static_cast<size_t>(a)], Vec2{});

    NetMovingConfig on;
    on.move_multi_pin_edges = true;
    const NetMovingResult r_on =
        NetMovingGradient(on).compute(d, cmap_, *field_);
    EXPECT_GT(r_on.virtual_cells_created, 0);
    // Horizontal chain: gradients perpendicular (pure y), same direction.
    for (int ci : {a, b, c}) {
        EXPECT_NEAR(r_on.cell_grad[static_cast<size_t>(ci)].x, 0.0, 1e-9);
    }
    EXPECT_LT(r_on.cell_grad[static_cast<size_t>(a)].y, 0.0);
    EXPECT_GT(r_on.penalty, 0.0);
}

TEST_F(NetMovingFixture, MultiPinExtensionRespectsDegreeCap) {
    Design d;
    d.region = {0, 0, 160, 160};
    const int net = d.add_net("big");
    for (int i = 0; i < 6; ++i) {
        const int ci = d.add_cell("c" + std::to_string(i), 4, 8,
                                  CellKind::Movable,
                                  {20.0 + 24.0 * i, 76.0});
        d.connect(net, d.add_pin(ci, {0, 0}));
    }
    NetMovingConfig on;
    on.move_multi_pin_edges = true;
    on.max_multi_pin_degree = 4;  // net degree 6 exceeds the cap
    const NetMovingResult res =
        NetMovingGradient(on).compute(d, cmap_, *field_);
    EXPECT_EQ(res.virtual_cells_created, 0);
}


TEST_F(NetMovingFixture, BBoxPenaltyChargesUnrelatedCongestion) {
    // The paper's Fig. 1(b) criticism, reproduced as a test: a hot corner
    // INSIDE a net's bounding box but far from any plausible route still
    // charges the net under the BB model, while net moving ignores it.
    GridF dmd(16, 16, 2.0);
    dmd.at(12, 2) = 30.0;  // hot spot at the lower-right of the box
    const CongestionMap m(f_.grid, dmd, f_.cap);

    Design d;
    d.region = {0, 0, 160, 160};
    // L-shaped pin pair: BB spans x in [20,140], y in [15,150]; the hot
    // cell (120..130, 20..30) is inside the BB but the segment between
    // the pins passes nowhere near it.
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {20, 150});
    const int b = d.add_cell("b", 4, 8, CellKind::Movable, {140, 140});
    const int net = d.add_net("n");
    d.connect(net, d.add_pin(a, {0, 0}));
    d.connect(net, d.add_pin(b, {0, 0}));
    // Extend the BB down with a third pin on cell a.
    d.connect(net, d.add_pin(b, {0, -125}));

    BBoxCongestionGradient bbox;
    EXPECT_GT(bbox.net_penalty(d, d.nets[0], m), 0.0);

    CongestionField field(f_.grid);
    field.build(m);
    NetMovingGradient nm;
    const NetMovingResult res = nm.compute(d, m, field);
    // Three-pin net: the paper's Algorithm 1 does not touch it, and its
    // cells are not congested/multi-pin-selected either.
    EXPECT_DOUBLE_EQ(res.penalty, 0.0);
}

TEST_F(NetMovingFixture, BBoxGradientPullsAwayFromCongestedEdge) {
    // Two-pin net whose right end sits in the hot band column: the BB
    // gradient on that pin must point left (shrinking the box away from
    // the congestion).
    GridF dmd(16, 16, 2.0);
    for (int y = 0; y < 16; ++y) dmd.at(12, y) = 30.0;  // hot column 12
    const CongestionMap m(f_.grid, dmd, f_.cap);

    Design d;
    d.region = {0, 0, 160, 160};
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {20, 80});
    const int b = d.add_cell("b", 4, 8, CellKind::Movable, {125, 80});
    const int net = d.add_net("n");
    d.connect(net, d.add_pin(a, {0, 0}));
    d.connect(net, d.add_pin(b, {0, 0}));

    BBoxCongestionGradient bbox;
    const BBoxPenaltyResult res = bbox.compute(d, m);
    EXPECT_EQ(res.nets_penalized, 1);
    EXPECT_GT(res.penalty, 0.0);
    // hx edge at x=125 inside the hot column: widening right increases
    // the penalty -> positive x gradient on b (descent pulls it left).
    EXPECT_GT(res.cell_grad[static_cast<size_t>(b)].x, 0.0);
    // lx edge at x=20 is in quiet space: zero rate.
    EXPECT_NEAR(res.cell_grad[static_cast<size_t>(a)].x, 0.0, 1e-9);
}

TEST_F(NetMovingFixture, BBoxSkipsHighDegreeNets) {
    Design d;
    d.region = {0, 0, 160, 160};
    const int net = d.add_net("big");
    for (int i = 0; i < 40; ++i) {
        const int ci = d.add_cell("c" + std::to_string(i), 4, 8,
                                  CellKind::Movable,
                                  {10.0 + 3.5 * i, 70.0});
        d.connect(net, d.add_pin(ci, {0, 0}));
    }
    BBoxPenaltyConfig cfg;
    cfg.max_degree = 32;
    BBoxCongestionGradient bbox(cfg);
    const BBoxPenaltyResult res = bbox.compute(d, cmap_);
    EXPECT_EQ(res.nets_penalized, 0);
}


TEST(RudyTest, ConservesNetWirelength) {
    // Total RUDY demand (track units * mean extent) equals the summed
    // net HPWL-perimeter of all counted nets.
    Design d;
    d.region = {0, 0, 160, 160};
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {20, 20});
    const int b = d.add_cell("b", 4, 8, CellKind::Movable, {100, 60});
    const int net = d.add_net("n");
    d.connect(net, d.add_pin(a, {0, 0}));
    d.connect(net, d.add_pin(b, {0, 0}));
    const BinGrid grid({0, 0, 160, 160}, 16, 16);
    const GridF r = rudy_map(d, grid);
    const double mean_extent = 10.0;
    EXPECT_NEAR(grid_sum(r) * mean_extent, 80.0 + 40.0, 1e-6);
}

TEST(RudyTest, DemandConcentratesInBBox) {
    Design d;
    d.region = {0, 0, 160, 160};
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {30, 30});
    const int b = d.add_cell("b", 4, 8, CellKind::Movable, {60, 60});
    const int net = d.add_net("n");
    d.connect(net, d.add_pin(a, {0, 0}));
    d.connect(net, d.add_pin(b, {0, 0}));
    const BinGrid grid({0, 0, 160, 160}, 16, 16);
    const GridF r = rudy_map(d, grid);
    EXPECT_GT(r.at(4, 4), 0.0);   // inside the box
    EXPECT_DOUBLE_EQ(r.at(12, 12), 0.0);  // outside
}

TEST(RudyTest, PinRudyCountsPins) {
    Design d;
    d.region = {0, 0, 160, 160};
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {25, 25});
    d.add_pin(a, {0, 0});
    d.add_pin(a, {1, 0});
    const BinGrid grid({0, 0, 160, 160}, 16, 16);
    RudyConfig cfg;
    cfg.pin_weight = 0.5;
    const GridF p = pin_rudy_map(d, grid, cfg);
    EXPECT_DOUBLE_EQ(p.at(2, 2), 1.0);
    EXPECT_DOUBLE_EQ(grid_sum(p), 1.0);
}

TEST(RudyTest, CongestionMapUsesRouterCapacity) {
    Design d;
    d.region = {0, 0, 160, 160};
    // A dense one-bin cluster of 2-pin nets drives local RUDY congestion.
    std::vector<int> cells;
    for (int i = 0; i < 30; ++i)
        cells.push_back(d.add_cell("c" + std::to_string(i), 4, 8,
                                   CellKind::Movable,
                                   {75.0 + (i % 5), 75.0 + (i / 5)}));
    for (int i = 0; i + 1 < 30; i += 2) {
        const int net = d.add_net("n" + std::to_string(i));
        d.connect(net, d.add_pin(cells[i], {0, 0}));
        d.connect(net, d.add_pin(cells[i + 1], {0, 0}));
    }
    const BinGrid grid({0, 0, 160, 160}, 16, 16);
    const CongestionMap m = rudy_congestion(d, grid);
    EXPECT_GT(grid_sum(m.capacity()), 0.0);
    // The hot bin has more utilization than a far empty corner.
    EXPECT_GT(m.utilization_at(7, 7), m.utilization_at(1, 14));
}

TEST(RudyTest, RudyIsBlindToDetours) {
    // The paper's criticism quantified: RUDY sees only bounding boxes, so
    // two placements with identical pin positions but different routed
    // detours get the same RUDY map. (The router-based map differs - that
    // is why the framework routes in the loop.)
    Design d;
    d.region = {0, 0, 160, 160};
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {30, 80});
    const int b = d.add_cell("b", 4, 8, CellKind::Movable, {130, 80});
    const int net = d.add_net("n");
    d.connect(net, d.add_pin(a, {0, 0}));
    d.connect(net, d.add_pin(b, {0, 0}));
    const BinGrid grid({0, 0, 160, 160}, 16, 16);
    const GridF r1 = rudy_map(d, grid);
    // Add a routing blockage between the pins: routed demand must detour,
    // RUDY does not change at all.
    d.routing_blockages.push_back({70, 60, 90, 100});
    const GridF r2 = rudy_map(d, grid);
    EXPECT_TRUE(r1 == r2);
}

TEST(LambdaScheduleTest, Formula) {
    // lambda2 = (2 Nc / N) ||gW|| / ||gC||.
    EXPECT_DOUBLE_EQ(compute_lambda2(50, 100, 200.0, 10.0), 1.0 * 20.0);
    EXPECT_DOUBLE_EQ(compute_lambda2(0, 100, 200.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(compute_lambda2(50, 100, 200.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(compute_lambda2(10, 0, 200.0, 10.0), 0.0);
}

TEST(LambdaScheduleTest, GradientL1) {
    EXPECT_DOUBLE_EQ(gradient_l1({{1, -2}, {-3, 4}}), 10.0);
    EXPECT_DOUBLE_EQ(gradient_l1({}), 0.0);
}

TEST_F(NetMovingFixture, PenaltyPositiveInCongestion) {
    const Design d = two_pin_design(76, 76);
    NetMovingGradient nm;
    const NetMovingResult res = nm.compute(d, cmap_, *field_);
    // The virtual cell sits in the hot band where potential is maximal,
    // so C(x,y) > 0.
    EXPECT_GT(res.penalty, 0.0);
}

}  // namespace
}  // namespace rdp
