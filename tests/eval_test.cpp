// Tests for the evaluation layer: DRV proxy components, evaluate_placement,
// and the report/ratio helpers.

#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/generator.hpp"
#include "eval/report.hpp"
#include "eval/map_dump.hpp"
#include "eval/route_metrics.hpp"
#include "legal/tetris.hpp"
#include "util/rng.hpp"
#include "wirelength/hpwl.hpp"

namespace rdp {
namespace {

Design eval_design(uint64_t seed = 3, double util = 0.7) {
    GeneratorConfig cfg;
    cfg.name = "eval-test";
    cfg.seed = seed;
    cfg.num_cells = 500;
    cfg.num_macros = 2;
    cfg.utilization = util;
    Design d = generate_circuit(cfg);
    tetris_legalize(d);
    return d;
}

TEST(DrvProxyTest, ComponentsSumToTotal) {
    const Design d = eval_design();
    const BinGrid grid(d.region, 32, 32);
    GlobalRouter router(grid);
    const RouteResult rr = router.route(d);
    const DrvReport rep = drv_proxy(d, rr);
    EXPECT_EQ(rep.total,
              rep.overflow_drvs + rep.pin_density_drvs + rep.pg_access_drvs);
    EXPECT_GE(rep.overflow_drvs, 0);
    EXPECT_GE(rep.pin_density_drvs, 0);
    EXPECT_GE(rep.pg_access_drvs, 0);
}

TEST(DrvProxyTest, OverflowWeightScales) {
    const Design d = eval_design(4, 0.85);
    const BinGrid grid(d.region, 32, 32);
    GlobalRouter router(grid);
    const RouteResult rr = router.route(d);
    DrvProxyConfig c1;
    c1.overflow_weight = 1.0;
    DrvProxyConfig c2 = c1;
    c2.overflow_weight = 3.0;
    const DrvReport r1 = drv_proxy(d, rr, c1);
    const DrvReport r2 = drv_proxy(d, rr, c2);
    if (r1.overflow_drvs > 0) {
        EXPECT_NEAR(static_cast<double>(r2.overflow_drvs),
                    3.0 * r1.overflow_drvs, 2.0);
    }
}

TEST(DrvProxyTest, ClusteredPlacementWorse) {
    // The same netlist, clustered vs legal-spread: the proxy must rank the
    // clustered placement worse (it has real overflow and pin pileups).
    Design spread = eval_design(5, 0.7);
    Design clustered = spread;
    const Vec2 c = clustered.region.center();
    Rng rng(1);
    for (Cell& cell : clustered.cells) {
        if (!cell.movable()) continue;
        cell.pos = {c.x + rng.uniform(-25, 25), c.y + rng.uniform(-25, 25)};
    }
    const BinGrid grid(spread.region, 32, 32);
    GlobalRouter router(grid);
    const DrvReport r_spread = drv_proxy(spread, router.route(spread));
    const DrvReport r_clustered =
        drv_proxy(clustered, router.route(clustered));
    EXPECT_GT(r_clustered.total, r_spread.total);
}

TEST(DrvProxyTest, PgAccessCountsOnlyCongestedRailPins) {
    // Hand-built: one pin under a rail, one not; congestion injected at
    // the rail pin's G-cell only.
    Design d;
    d.region = {0, 0, 160, 160};
    d.row_height = 8;
    d.build_rows();
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {20, 8});
    d.add_pin(a, {0, 0});  // at (20, 8) - on the row-1 boundary rail
    const int b = d.add_cell("b", 4, 8, CellKind::Movable, {100, 100});
    d.add_pin(b, {0, 0});
    PGRail rail;
    rail.orient = Orient::Horizontal;
    rail.box = {0, 7, 160, 9};
    d.pg_rails.push_back(rail);

    const BinGrid grid(d.region, 16, 16);
    RouteResult rr;
    GridF dmd = grid.make_grid(), cap(16, 16, 10.0);
    dmd.at(2, 0) = 20.0;  // pin a's G-cell: utilization 2.0
    rr.congestion = CongestionMap(grid, dmd, cap);
    DrvProxyConfig cfg;
    cfg.overflow_weight = 0.0;    // isolate the PG component
    cfg.pin_density_weight = 0.0;
    cfg.pg_pin_weight = 1.0;
    cfg.pg_util_floor = 0.5;
    const DrvReport rep = drv_proxy(d, rr, cfg);
    EXPECT_EQ(rep.pg_access_drvs, 2);  // round(2.0 - 0.5) = 2
    EXPECT_EQ(rep.pin_density_drvs, 0);
    EXPECT_EQ(rep.overflow_drvs, 0);
}

TEST(EvalMetricsTest, EvaluatePlacementProducesSaneNumbers) {
    const Design d = eval_design(6);
    EvalConfig cfg;
    cfg.grid_bins = 64;
    const EvalMetrics m = evaluate_placement(d, cfg);
    EXPECT_GT(m.drwl, 0.0);
    EXPECT_GT(m.vias, d.num_pins() / 2);  // at least pin via scale
    EXPECT_GE(m.drvs, 0);
    EXPECT_GT(m.route_seconds, 0.0);
    // DRWL must dominate the sum of net HPWLs' scale (routes detour).
    EXPECT_GT(m.drwl, 0.5 * total_hpwl(d));
}


TEST(MapDumpTest, WritesValidPgm) {
    GridF g(4, 3);
    g.at(0, 0) = 1.0;
    g.at(3, 2) = 2.0;
    std::ostringstream os;
    MapDumpConfig cfg;
    cfg.cell_pixels = 2;
    write_pgm(g, os, cfg);
    const std::string s = os.str();
    EXPECT_EQ(s.rfind("P5\n8 6\n255\n", 0), 0u);
    // Header + 8*6 payload bytes.
    EXPECT_EQ(s.size(), std::string("P5\n8 6\n255\n").size() + 48u);
    // Max value maps to 255; it is at grid (3,2) = top-right, which is the
    // first image row's last pixel.
    const size_t payload = std::string("P5\n8 6\n255\n").size();
    EXPECT_EQ(static_cast<unsigned char>(s[payload + 7]), 255);
    // Grid (0,0) = bottom-left maps to half intensity in the last row.
    EXPECT_EQ(static_cast<unsigned char>(s[payload + 40]), 128);
}

TEST(MapDumpTest, FixedScaleClampsValues) {
    GridF g(2, 1);
    g.at(0, 0) = 5.0;
    g.at(1, 0) = 50.0;
    std::ostringstream os;
    MapDumpConfig cfg;
    cfg.cell_pixels = 1;
    cfg.max_value = 10.0;
    write_pgm(g, os, cfg);
    const std::string s = os.str();
    const size_t payload = std::string("P5\n2 1\n255\n").size();
    EXPECT_EQ(static_cast<unsigned char>(s[payload + 0]), 128);
    EXPECT_EQ(static_cast<unsigned char>(s[payload + 1]), 255);
}

TEST(ReportTest, AverageRatios) {
    std::vector<RunRecord> ours = {
        {"a", "ours", 100.0, 1000, 10, 1.0, 2.0},
        {"b", "ours", 200.0, 2000, 20, 2.0, 4.0},
    };
    std::vector<RunRecord> other = {
        {"a", "x", 110.0, 1100, 30, 0.5, 3.0},
        {"b", "x", 220.0, 2200, 10, 1.0, 6.0},
    };
    const RatioSummary s = average_ratios(other, ours);
    EXPECT_EQ(s.designs, 2);
    EXPECT_NEAR(s.drwl, 1.1, 1e-12);
    EXPECT_NEAR(s.vias, 1.1, 1e-12);
    EXPECT_NEAR(s.drvs, (3.0 + 0.5) / 2.0, 1e-12);
    EXPECT_NEAR(s.place_time, 0.5, 1e-12);
    EXPECT_NEAR(s.route_time, 1.5, 1e-12);
}

TEST(ReportTest, SkipListExcludesDrvOnly) {
    std::vector<RunRecord> ours = {
        {"a", "ours", 100.0, 1000, 10, 1.0, 2.0},
        {"b", "ours", 200.0, 2000, 20, 2.0, 4.0},
    };
    std::vector<RunRecord> other = {
        {"a", "x", 100.0, 1000, 1000, 1.0, 2.0},
        {"b", "x", 200.0, 2000, 40, 2.0, 4.0},
    };
    const RatioSummary s = average_ratios(other, ours, {"a"});
    EXPECT_NEAR(s.drvs, 2.0, 1e-12);   // only design b counted
    EXPECT_NEAR(s.drwl, 1.0, 1e-12);   // both designs still counted
}

TEST(ReportTest, ComparisonTablePrints) {
    std::vector<std::vector<RunRecord>> placers = {
        {{"a", "X", 1.0, 1, 1, 1.0, 1.0}},
        {{"a", "Y", 2.0, 2, 2, 2.0, 2.0}},
    };
    const Table t = make_comparison_table(placers);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("X DRWL"), std::string::npos);
    EXPECT_NE(os.str().find("Y #DRVs"), std::string::npos);
    EXPECT_NE(os.str().find(" a "), std::string::npos);
}

}  // namespace
}  // namespace rdp
