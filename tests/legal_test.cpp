// Tests for the legalization stack: Tetris, Abacus refinement, and greedy
// detailed placement — legality invariants over randomized designs.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "legal/abacus.hpp"
#include "legal/detailed_place.hpp"
#include "legal/pin_access_refine.hpp"
#include "legal/tetris.hpp"
#include "util/rng.hpp"
#include "wirelength/hpwl.hpp"

namespace rdp {
namespace {

Design random_design(int cells, double util, uint64_t seed, int macros = 0) {
    GeneratorConfig cfg;
    cfg.name = "legal-test";
    cfg.seed = seed;
    cfg.num_cells = cells;
    cfg.num_macros = macros;
    cfg.macro_area_frac = macros > 0 ? 0.12 : 0.0;
    cfg.utilization = util;
    cfg.num_ios = 8;
    return generate_circuit(cfg);
}

TEST(TetrisTest, ProducesLegalPlacement) {
    Design d = random_design(400, 0.6, 11);
    const LegalizeStats st = tetris_legalize(d);
    EXPECT_EQ(st.cells_failed, 0);
    EXPECT_EQ(st.cells_placed, 400);
    EXPECT_TRUE(is_legal(d));
}

class TetrisSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(TetrisSweep, LegalAcrossUtilizationsAndMacros) {
    const auto [cells, util, macros] = GetParam();
    Design d = random_design(cells, util, 100 + cells + macros, macros);
    const LegalizeStats st = tetris_legalize(d);
    EXPECT_EQ(st.cells_failed, 0);
    EXPECT_TRUE(is_legal(d)) << "cells=" << cells << " util=" << util
                             << " macros=" << macros;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TetrisSweep,
    ::testing::Values(std::make_tuple(100, 0.5, 0),
                      std::make_tuple(300, 0.7, 0),
                      std::make_tuple(300, 0.85, 0),
                      std::make_tuple(500, 0.6, 3),
                      std::make_tuple(500, 0.8, 3),
                      std::make_tuple(800, 0.75, 5)));

TEST(TetrisTest, MacrosUntouched) {
    Design d = random_design(300, 0.6, 12, 3);
    std::vector<Vec2> macro_pos;
    for (int m : d.macro_cells()) macro_pos.push_back(d.cells[m].pos);
    tetris_legalize(d);
    size_t i = 0;
    for (int m : d.macro_cells()) EXPECT_EQ(d.cells[m].pos, macro_pos[i++]);
}

TEST(TetrisTest, SmallDisplacementWhenAlreadySpread) {
    // Cells pre-placed on a regular grid: legalization barely moves them.
    Design d;
    d.region = {0, 0, 100, 80};
    d.row_height = 8;
    d.site_width = 1;
    d.build_rows();
    for (int i = 0; i < 40; ++i) {
        const double x = 5.0 + (i % 8) * 12.0;
        const double y = 4.0 + (i / 8) * 16.0;
        d.add_cell("c" + std::to_string(i), 2, 8, CellKind::Movable, {x, y});
    }
    const LegalizeStats st = tetris_legalize(d);
    EXPECT_TRUE(is_legal(d));
    EXPECT_LT(st.max_displacement, 8.0);
}

TEST(IsLegalTest, DetectsViolations) {
    Design d;
    d.region = {0, 0, 100, 80};
    d.row_height = 8;
    d.site_width = 1;
    d.build_rows();
    d.add_cell("a", 4, 8, CellKind::Movable, {10, 4});   // row 0, site 8
    d.add_cell("b", 4, 8, CellKind::Movable, {12, 4});   // overlaps a
    EXPECT_FALSE(is_legal(d));
    d.cells[1].pos = {14, 4};  // touching, no overlap
    EXPECT_TRUE(is_legal(d));
    d.cells[1].pos = {14.5, 4};  // off site grid
    EXPECT_FALSE(is_legal(d));
    d.cells[1].pos = {14, 6};  // off row grid
    EXPECT_FALSE(is_legal(d));
    d.cells[1].pos = {99, 4};  // sticks out of the region
    EXPECT_FALSE(is_legal(d));
}

TEST(AbacusTest, PreservesLegalityAndReducesDisplacement) {
    Design d = random_design(500, 0.7, 13, 2);
    std::vector<Vec2> desired(static_cast<size_t>(d.num_cells()));
    for (int i = 0; i < d.num_cells(); ++i) desired[i] = d.cells[i].pos;
    tetris_legalize(d);
    ASSERT_TRUE(is_legal(d));
    double disp_before = 0.0;
    for (int i : d.movable_cells())
        disp_before += std::abs(d.cells[i].pos.x - desired[i].x);
    const double disp_after = abacus_refine(d, desired);
    EXPECT_TRUE(is_legal(d));
    EXPECT_LE(disp_after, disp_before + 1e-6);
}

TEST(AbacusTest, SingleRowOptimalPacking) {
    // Three same-width cells wanting the same x: Abacus packs them around
    // the target (quadratic-optimal cluster).
    Design d;
    d.region = {0, 0, 100, 8};
    d.row_height = 8;
    d.site_width = 1;
    d.build_rows();
    for (int i = 0; i < 3; ++i)
        d.add_cell("c" + std::to_string(i), 4, 8, CellKind::Movable,
                   {50.0 + i, 4});
    std::vector<Vec2> desired = {{50, 4}, {50, 4}, {50, 4}};
    tetris_legalize(d);
    abacus_refine(d, desired);
    ASSERT_TRUE(is_legal(d));
    // Cluster of width 12 centered near x=50: cells near 44..56.
    std::vector<double> xs;
    for (int i = 0; i < 3; ++i) xs.push_back(d.cells[i].bbox().lx);
    std::sort(xs.begin(), xs.end());
    EXPECT_NEAR(xs[0], 44.0, 2.0);
    EXPECT_NEAR(xs[2], 52.0, 2.0);
}

TEST(DetailedPlaceTest, ReducesHpwlAndKeepsLegality) {
    Design d = random_design(400, 0.65, 14);
    tetris_legalize(d);
    ASSERT_TRUE(is_legal(d));
    const double before = total_hpwl(d);
    const DetailedPlaceStats st = detailed_place(d);
    EXPECT_TRUE(is_legal(d));
    EXPECT_LE(st.hpwl_after, before + 1e-6);
    EXPECT_DOUBLE_EQ(st.hpwl_before, before);
    EXPECT_GT(st.swaps + st.shifts, 0);
}

TEST(DetailedPlaceTest, NoMovesOnOptimalPlacement) {
    // Two disconnected cells, each already at its net's optimum.
    Design d;
    d.region = {0, 0, 64, 8};
    d.row_height = 8;
    d.site_width = 1;
    d.build_rows();
    const int a = d.add_cell("a", 2, 8, CellKind::Movable, {11, 4});
    const int f = d.add_cell("f", 2, 8, CellKind::Fixed, {11, 4});
    (void)f;
    d.cells[1].pos = {31, 4};
    const int n = d.add_net("n");
    d.connect(n, d.add_pin(a, {0, 0}));
    d.connect(n, d.add_pin(1, {0, 0}));
    // Place a at the fixed pin's x already.
    d.cells[0].pos = {31, 4};
    tetris_legalize(d);
    detailed_place(d);
    EXPECT_TRUE(is_legal(d));
}


TEST(PinAccessRefineTest, FlipFreesRailPins) {
    // A cell with its pin at the bottom edge, sitting on a rail along the
    // row boundary: flipping moves the pin to the top, off the rail.
    Design d;
    d.region = {0, 0, 100, 80};
    d.row_height = 8;
    d.site_width = 1;
    d.build_rows();
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {50, 4});
    d.add_pin(a, {0.0, -3.5});  // near the bottom edge, y = 0.5
    std::vector<PGRail> rails(1);
    rails[0].orient = Orient::Horizontal;
    rails[0].box = {0, -1, 100, 1};  // rail on the y = 0 boundary

    ASSERT_EQ(pins_under_rails(d, a, rails), 1);
    const PinAccessRefineStats st = pin_access_refine(d, rails);
    EXPECT_EQ(st.cells_considered, 1);
    EXPECT_EQ(st.flips, 1);
    EXPECT_EQ(st.pins_freed, 1);
    EXPECT_EQ(pins_under_rails(d, a, rails), 0);
    // Geometry untouched: only the pin offset changed.
    EXPECT_EQ(d.cells[a].pos, Vec2(50, 4));
    EXPECT_DOUBLE_EQ(d.pins[0].offset.y, 3.5);
}

TEST(PinAccessRefineTest, RejectsFlipThatHurtsWirelength) {
    // The flipped pin would move far from its net partner: the HPWL guard
    // must reject the flip.
    Design d;
    d.region = {0, 0, 100, 80};
    d.row_height = 8;
    d.site_width = 1;
    d.build_rows();
    const int a = d.add_cell("a", 4, 8, CellKind::Movable, {50, 4});
    const int pa = d.add_pin(a, {0.0, -3.5});
    const int b = d.add_cell("b", 4, 8, CellKind::Fixed, {50, 0.5});
    const int pb = d.add_pin(b, {0.0, 0.0});
    const int net = d.add_net("n");
    d.connect(net, pa);
    d.connect(net, pb);
    std::vector<PGRail> rails(1);
    rails[0].orient = Orient::Horizontal;
    rails[0].box = {0, -1, 100, 1};

    PinAccessRefineConfig cfg;
    cfg.max_hpwl_increase_frac = 0.0;  // strict: no HPWL growth allowed
    const PinAccessRefineStats st = pin_access_refine(d, rails, cfg);
    EXPECT_EQ(st.flips, 0);
    EXPECT_DOUBLE_EQ(d.pins[0].offset.y, -3.5);  // unchanged
}

TEST(PinAccessRefineTest, SymmetricCellIsFlippedOrNotButNeverWorse) {
    // Property over a generated design: refinement never increases the
    // number of rail-covered pins and never changes cell positions.
    Design d = random_design(300, 0.6, 77);
    tetris_legalize(d);
    std::vector<PGRail> rails;
    for (const PGRail& r : d.pg_rails) rails.push_back(r);
    int before = 0;
    for (int i = 0; i < d.num_cells(); ++i)
        before += pins_under_rails(d, i, rails);
    std::vector<Vec2> pos;
    for (const Cell& c : d.cells) pos.push_back(c.pos);
    const PinAccessRefineStats st = pin_access_refine(d, rails);
    int after = 0;
    for (int i = 0; i < d.num_cells(); ++i)
        after += pins_under_rails(d, i, rails);
    EXPECT_LE(after, before);
    EXPECT_EQ(before - after, st.pins_freed);
    for (int i = 0; i < d.num_cells(); ++i) EXPECT_EQ(d.cells[i].pos, pos[i]);
    EXPECT_TRUE(is_legal(d));
}

class LegalizationPipelineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LegalizationPipelineSweep, FullPipelineLegalAndNoHpwlBlowup) {
    Design d = random_design(350, 0.72, GetParam(), 2);
    std::vector<Vec2> desired(static_cast<size_t>(d.num_cells()));
    for (int i = 0; i < d.num_cells(); ++i) desired[i] = d.cells[i].pos;
    const double hpwl_gp = total_hpwl(d);
    tetris_legalize(d);
    abacus_refine(d, desired);
    const DetailedPlaceStats st = detailed_place(d);
    EXPECT_TRUE(is_legal(d));
    // Legalization of a random (spread) placement should not blow up HPWL.
    EXPECT_LT(st.hpwl_after, 1.5 * hpwl_gp + 1e3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalizationPipelineSweep,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace rdp
