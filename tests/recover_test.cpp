// Tests for the fault-tolerant pipeline runner (DESIGN.md §11): the fault
// taxonomy and spec parser, the strict env parsing it shares with the other
// knobs, the deterministic injection harness, and — the core contract —
// that every injected fault class is recovered (or gracefully degraded)
// while the pipeline still finishes with a legal placement, and that a
// clean run is bitwise identical with recovery enabled or disabled.
//
// Also here: the hardened netlist reader (typed ParseError with line
// numbers on ~a dozen corrupted fixtures) and the degenerate-design suite
// (empty design, single cell, one-pin net, zero-area cell, die-covering
// macro) that must finish without throwing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "benchgen/generator.hpp"
#include "db/netlist_io.hpp"
#include "legal/tetris.hpp"
#include "place/global_placer.hpp"
#include "place/objective.hpp"
#include "place/routability_loop.hpp"
#include "recover/fault_injection.hpp"
#include "recover/stage_guard.hpp"
#include "util/check.hpp"
#include "util/env.hpp"

namespace rdp {
namespace {

using recover::FaultKind;
using recover::FaultSpec;

// ---------------------------------------------------------------------------
// Fault taxonomy and spec parsing
// ---------------------------------------------------------------------------

TEST(FaultKindTest, NamesRoundTrip) {
    for (const FaultKind k :
         {FaultKind::GradientNaN, FaultKind::HpwlExplosion,
          FaultKind::OverflowOscillation, FaultKind::RouterNoProgress,
          FaultKind::StageTimeout, FaultKind::CorruptedDemand,
          FaultKind::CorruptedBudget, FaultKind::AuditViolation}) {
        FaultKind back = FaultKind::AuditViolation;
        ASSERT_TRUE(
            recover::parse_fault_kind(recover::fault_kind_name(k), back));
        EXPECT_EQ(back, k) << recover::fault_kind_name(k);
    }
    FaultKind out;
    EXPECT_FALSE(recover::parse_fault_kind("not-a-fault", out));
    EXPECT_FALSE(recover::parse_fault_kind("", out));
}

TEST(FaultSpecTest, ParsesFullSpec) {
    const auto spec =
        recover::parse_fault_spec("routability-gp:corrupted-demand:3:5");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->stage, "routability-gp");
    EXPECT_EQ(spec->kind, FaultKind::CorruptedDemand);
    EXPECT_EQ(spec->iter, 3);
    EXPECT_EQ(spec->count, 5);
}

TEST(FaultSpecTest, CountDefaultsToOne) {
    const auto spec =
        recover::parse_fault_spec("wirelength-gp:gradient-nan:12");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->kind, FaultKind::GradientNaN);
    EXPECT_EQ(spec->iter, 12);
    EXPECT_EQ(spec->count, 1);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
    const char* bad[] = {
        "",                                  // empty stage
        "wirelength-gp",                     // missing kind
        "wirelength-gp:gradient-nan",        // missing iteration
        "wirelength-gp:no-such-kind:1",      // unknown kind
        "wirelength-gp:gradient-nan:-1",     // negative iteration
        "wirelength-gp:gradient-nan:x",      // non-numeric iteration
        "wirelength-gp:gradient-nan:1:0",    // count below 1
        "wirelength-gp:gradient-nan:1:2:3",  // trailing field
    };
    for (const char* text : bad) {
        std::string err;
        EXPECT_FALSE(recover::parse_fault_spec(text, &err).has_value())
            << text;
        // Every error names the accepted form.
        EXPECT_NE(err.find("expected"), std::string::npos) << text;
    }
}

TEST(RecoverableErrorTest, MessageNamesStageAndKind) {
    const recover::RecoverableError e(FaultKind::HpwlExplosion,
                                      "routability-gp", "boom");
    EXPECT_EQ(e.kind(), FaultKind::HpwlExplosion);
    EXPECT_EQ(e.stage(), "routability-gp");
    const std::string what = e.what();
    EXPECT_NE(what.find("routability-gp"), std::string::npos);
    EXPECT_NE(what.find("hpwl-explosion"), std::string::npos);
    EXPECT_NE(what.find("boom"), std::string::npos);
}

TEST(ClassifyAuditFailureTest, MapsInvariantsToFaultKinds) {
    const auto classify = [](const char* invariant) {
        return recover::classify_audit_failure(
            AuditFailure("stage", invariant, "msg"));
    };
    EXPECT_EQ(classify("finite-gradients"), FaultKind::GradientNaN);
    EXPECT_EQ(classify("router-accounting"), FaultKind::CorruptedDemand);
    EXPECT_EQ(classify("incremental-route"), FaultKind::CorruptedDemand);
    EXPECT_EQ(classify("congestion-finite"), FaultKind::CorruptedDemand);
    EXPECT_EQ(classify("inflation-budget"), FaultKind::CorruptedBudget);
    EXPECT_EQ(classify("legal-overlap"), FaultKind::AuditViolation);
}

// ---------------------------------------------------------------------------
// Shared strict env parsing (util/env)
// ---------------------------------------------------------------------------

TEST(EnvParseTest, ParseIntIsStrict) {
    EXPECT_EQ(env::parse_int("42").value_or(-1), 42);
    EXPECT_EQ(env::parse_int(" 7 ").value_or(-1), 7);
    EXPECT_EQ(env::parse_int("+3").value_or(-1), 3);
    EXPECT_EQ(env::parse_int("-3").value_or(0), -3);
    EXPECT_FALSE(env::parse_int("").has_value());
    EXPECT_FALSE(env::parse_int("  ").has_value());
    EXPECT_FALSE(env::parse_int("8abc").has_value());
    EXPECT_FALSE(env::parse_int("1.5").has_value());
    EXPECT_FALSE(env::parse_int("0x10").has_value());
    EXPECT_FALSE(env::parse_int("+").has_value());
    EXPECT_FALSE(env::parse_int("99999999999999999999").has_value());
}

TEST(EnvParseTest, ParseDoubleIsStrictAndFinite) {
    EXPECT_DOUBLE_EQ(env::parse_double("1.5").value_or(0.0), 1.5);
    EXPECT_DOUBLE_EQ(env::parse_double("1e3").value_or(0.0), 1000.0);
    EXPECT_DOUBLE_EQ(env::parse_double(" -2.25 ").value_or(0.0), -2.25);
    EXPECT_FALSE(env::parse_double("").has_value());
    EXPECT_FALSE(env::parse_double("1.5x").has_value());
    EXPECT_FALSE(env::parse_double("nan").has_value());
    EXPECT_FALSE(env::parse_double("inf").has_value());
    EXPECT_FALSE(env::parse_double("1e999").has_value());
}

TEST(EnvParseTest, ParseFlagAcceptsTheUsualSpellings) {
    for (const char* t : {"1", "on", "true", "yes", "TRUE", "Yes", " on "})
        EXPECT_EQ(env::parse_flag(t).value_or(false), true) << t;
    for (const char* t : {"0", "off", "false", "no", "OFF"})
        EXPECT_EQ(env::parse_flag(t).value_or(true), false) << t;
    EXPECT_FALSE(env::parse_flag("2").has_value());
    EXPECT_FALSE(env::parse_flag("maybe").has_value());
    EXPECT_FALSE(env::parse_flag("").has_value());
}

TEST(EnvParseTest, LookupsFallBackOnGarbageAndRange) {
    ::setenv("RDP_TEST_ENV_INT", "8", 1);
    EXPECT_EQ(env::int_or("RDP_TEST_ENV_INT", 1, 1, 64), 8);
    ::setenv("RDP_TEST_ENV_INT", "8abc", 1);
    EXPECT_EQ(env::int_or("RDP_TEST_ENV_INT", 1, 1, 64), 1);
    ::setenv("RDP_TEST_ENV_INT", "1024", 1);  // above max
    EXPECT_EQ(env::int_or("RDP_TEST_ENV_INT", 1, 1, 64), 1);
    ::unsetenv("RDP_TEST_ENV_INT");
    EXPECT_EQ(env::int_or("RDP_TEST_ENV_INT", 5, 1, 64), 5);

    ::setenv("RDP_TEST_ENV_DBL", "2.5", 1);
    EXPECT_DOUBLE_EQ(env::double_or("RDP_TEST_ENV_DBL", 0.0, 0.0, 10.0), 2.5);
    ::setenv("RDP_TEST_ENV_DBL", "-1", 1);  // below min
    EXPECT_DOUBLE_EQ(env::double_or("RDP_TEST_ENV_DBL", 0.5, 0.0, 10.0), 0.5);
    ::unsetenv("RDP_TEST_ENV_DBL");

    ::setenv("RDP_TEST_ENV_FLAG", "off", 1);
    EXPECT_FALSE(env::flag_or("RDP_TEST_ENV_FLAG", true));
    ::setenv("RDP_TEST_ENV_FLAG", "garbage", 1);
    EXPECT_TRUE(env::flag_or("RDP_TEST_ENV_FLAG", true));
    ::unsetenv("RDP_TEST_ENV_FLAG");
}

// ---------------------------------------------------------------------------
// Fault-injection harness scheduling
// ---------------------------------------------------------------------------

class FaultHarnessTest : public ::testing::Test {
protected:
    void SetUp() override { recover::fault::clear(); }
    void TearDown() override { recover::fault::clear(); }
};

TEST_F(FaultHarnessTest, FiresOnlyOnMatchingSite) {
    recover::fault::arm({"routability-gp", FaultKind::CorruptedDemand, 2, 1});
    EXPECT_TRUE(recover::fault::armed());
    EXPECT_FALSE(recover::fault::fire("routability-gp",
                                      FaultKind::CorruptedDemand, 1));
    EXPECT_FALSE(recover::fault::fire("wirelength-gp",
                                      FaultKind::CorruptedDemand, 2));
    EXPECT_FALSE(recover::fault::fire("routability-gp",
                                      FaultKind::GradientNaN, 2));
    EXPECT_TRUE(recover::fault::fire("routability-gp",
                                     FaultKind::CorruptedDemand, 2));
    EXPECT_EQ(recover::fault::shots(), 1);
}

TEST_F(FaultHarnessTest, EachIterationFiresAtMostOnce) {
    recover::fault::arm({"routability-gp", FaultKind::GradientNaN, 3, 2});
    EXPECT_TRUE(
        recover::fault::fire("routability-gp", FaultKind::GradientNaN, 3));
    // The rolled-back re-execution of iteration 3 stays clean.
    EXPECT_FALSE(
        recover::fault::fire("routability-gp", FaultKind::GradientNaN, 3));
    EXPECT_TRUE(
        recover::fault::fire("routability-gp", FaultKind::GradientNaN, 4));
    // Past the [iter, iter + count) window.
    EXPECT_FALSE(
        recover::fault::fire("routability-gp", FaultKind::GradientNaN, 5));
    EXPECT_EQ(recover::fault::shots(), 2);
}

TEST_F(FaultHarnessTest, ClearDisarms) {
    recover::fault::arm({"legalize", FaultKind::StageTimeout, 0, 1});
    recover::fault::clear();
    EXPECT_FALSE(recover::fault::armed());
    EXPECT_FALSE(recover::fault::fire("legalize", FaultKind::StageTimeout, 0));
    EXPECT_EQ(recover::fault::shots(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end fault recovery through the placer pipeline
// ---------------------------------------------------------------------------

GeneratorConfig recover_design_cfg(uint64_t seed = 11) {
    GeneratorConfig cfg;
    cfg.name = "recover-test";
    cfg.seed = seed;
    cfg.num_cells = 300;
    cfg.num_macros = 1;
    cfg.macro_area_frac = 0.08;
    cfg.utilization = 0.7;
    cfg.num_ios = 12;
    return cfg;
}

PlacerConfig recover_placer_cfg() {
    PlacerConfig cfg;
    cfg.mode = PlacerMode::Ours;
    cfg.grid_bins = 32;
    cfg.max_wl_iters = 100;
    cfg.stop_overflow = 0.12;
    cfg.max_route_iters = 3;
    cfg.inner_iters = 5;
    cfg.router.rrr_rounds = 1;
    cfg.dp.max_passes = 1;
    return cfg;
}

class FaultRecoveryTest : public ::testing::Test {
protected:
    void SetUp() override { recover::fault::clear(); }
    void TearDown() override { recover::fault::clear(); }

    /// Arm `spec`, place the shared small design, and require the pipeline
    /// to finish with a legal placement while reporting the fault.
    PlaceResult place_with_fault(const FaultSpec& spec,
                                 PlacerConfig cfg = recover_placer_cfg()) {
        const Design input = generate_circuit(recover_design_cfg());
        recover::fault::arm(spec);
        const PlaceResult res = GlobalPlacer(cfg).place(input);
        EXPECT_GE(recover::fault::shots(), 1)
            << "the armed fault never reached its injection site";
        EXPECT_GE(res.recovery.count(spec.kind), 1)
            << "no recovery event of kind "
            << recover::fault_kind_name(spec.kind);
        EXPECT_EQ(res.placed.num_cells(), input.num_cells());
        EXPECT_TRUE(is_legal(res.placed));
        EXPECT_EQ(res.legal_stats.cells_failed, 0);
        EXPECT_GT(res.hpwl_final, 0.0);
        return res;
    }
};

TEST_F(FaultRecoveryTest, WirelengthStageRecoversFromGradientNaN) {
    const PlaceResult res =
        place_with_fault({"wirelength-gp", FaultKind::GradientNaN, 30, 1});
    EXPECT_GE(res.recovery.rollbacks, 1);
    // The stage kept running after the rollback.
    EXPECT_GT(res.wl_iters, 30);
}

TEST_F(FaultRecoveryTest, WirelengthStageRecoversFromHpwlExplosion) {
    const PlaceResult res =
        place_with_fault({"wirelength-gp", FaultKind::HpwlExplosion, 30, 1});
    EXPECT_GE(res.recovery.rollbacks, 1);
}

TEST_F(FaultRecoveryTest, RoutabilityStageRecoversFromGradientNaN) {
    const PlaceResult res =
        place_with_fault({"routability-gp", FaultKind::GradientNaN, 1, 1});
    EXPECT_GE(res.recovery.rollbacks, 1);
    EXPECT_GT(res.route_outer_iters, 0);
}

TEST_F(FaultRecoveryTest, RoutabilityStageRecoversFromHpwlExplosion) {
    const PlaceResult res =
        place_with_fault({"routability-gp", FaultKind::HpwlExplosion, 1, 1});
    EXPECT_GE(res.recovery.rollbacks, 1);
}

TEST_F(FaultRecoveryTest, RoutabilityStageReroutesCorruptedDemand) {
    const PlaceResult res =
        place_with_fault({"routability-gp", FaultKind::CorruptedDemand, 1, 1});
    bool rerouted = false;
    for (const auto& e : res.recovery.events)
        if (e.action == "reroute" || e.action == "fallback-demand")
            rerouted = true;
    EXPECT_TRUE(rerouted);
}

TEST_F(FaultRecoveryTest, RoutabilityStageRecoversFromStaleIncrementalCache) {
    // The "global-route" site corrupts the *persistent* incremental route
    // cache after a successful route; the next iteration's
    // incremental-route auditor must trip, recovery must invalidate the
    // cache, and the retry must come back clean.
    if (!audit_enabled())
        GTEST_SKIP() << "stale-cache detection needs the auditors";
    const PlaceResult res =
        place_with_fault({"global-route", FaultKind::CorruptedDemand, 0, 1});
    bool rerouted = false;
    for (const auto& e : res.recovery.events)
        if (e.action == "reroute" || e.action == "fallback-demand")
            rerouted = true;
    EXPECT_TRUE(rerouted);
}

TEST_F(FaultRecoveryTest, IncrementalCacheInvalidatedOnRollbackBitwise) {
    // Regression: a recovery rollback restores checkpointed positions, so
    // the incremental caches (reconciled against the failed attempt) must
    // be dropped. If they were reused, the RDP_INCREMENTAL=1 run would
    // diverge from the from-scratch run after the first rollback.
    const Design input = generate_circuit(recover_design_cfg());
    const PlacerConfig cfg = recover_placer_cfg();
    auto run = [&](const char* incremental) {
        setenv("RDP_INCREMENTAL", incremental, 1);
        recover::fault::clear();
        recover::fault::arm(
            {"routability-gp", FaultKind::GradientNaN, 1, 1});
        const PlaceResult res = GlobalPlacer(cfg).place(input);
        unsetenv("RDP_INCREMENTAL");
        EXPECT_GE(res.recovery.rollbacks, 1);
        return res;
    };
    const PlaceResult on = run("1");
    const PlaceResult off = run("0");
    EXPECT_EQ(on.hpwl_final, off.hpwl_final);
    ASSERT_EQ(on.placed.num_cells(), off.placed.num_cells());
    for (int i = 0; i < on.placed.num_cells(); ++i) {
        ASSERT_EQ(on.placed.cells[static_cast<size_t>(i)].pos,
                  off.placed.cells[static_cast<size_t>(i)].pos)
            << "cell " << i << " diverged under RDP_INCREMENTAL=1";
    }
}

TEST_F(FaultRecoveryTest, RoutabilityStageRelaxesLivelockedRouter) {
    const PlaceResult res = place_with_fault(
        {"routability-gp", FaultKind::RouterNoProgress, 1, 1});
    bool relaxed = false;
    for (const auto& e : res.recovery.events)
        if (e.action == "relax-router") relaxed = true;
    EXPECT_TRUE(relaxed);
}

TEST_F(FaultRecoveryTest, RoutabilityStageResetsCorruptedBudget) {
    const PlaceResult res =
        place_with_fault({"routability-gp", FaultKind::CorruptedBudget, 1, 1});
    bool reset = false;
    for (const auto& e : res.recovery.events)
        if (e.action == "reset-inflation") reset = true;
    EXPECT_TRUE(reset);
}

TEST_F(FaultRecoveryTest, RoutabilityStageDetectsOverflowOscillation) {
    PlacerConfig cfg = recover_placer_cfg();
    cfg.max_route_iters = 8;
    cfg.inner_iters = 3;
    cfg.stop_patience = 99;  // let the oscillation window build up
    const PlaceResult res = place_with_fault(
        {"routability-gp", FaultKind::OverflowOscillation, 0, 16}, cfg);
    EXPECT_GE(res.recovery.rollbacks, 1);
}

TEST_F(FaultRecoveryTest, InjectedStageTimeoutDegradesGracefully) {
    const PlaceResult res =
        place_with_fault({"routability-gp", FaultKind::StageTimeout, 1, 1});
    EXPECT_GE(res.recovery.degraded_stages, 1);
    // The stage stopped at the injected budget exhaustion.
    EXPECT_LE(res.route_outer_iters, 1);
}

TEST_F(FaultRecoveryTest, ExhaustedRetriesDegradeTheStage) {
    // A persistent fault: fires on (re-executed) iterations until the
    // retry budget is gone; the stage must degrade, not loop forever.
    const PlaceResult res =
        place_with_fault({"wirelength-gp", FaultKind::GradientNaN, 10, 200});
    EXPECT_GE(res.recovery.degraded_stages, 1);
    bool degraded = false;
    for (const auto& e : res.recovery.events)
        if (e.action == "degrade" && e.stage == std::string("wirelength-gp"))
            degraded = true;
    EXPECT_TRUE(degraded);
}

TEST_F(FaultRecoveryTest, WallClockBudgetStopsTheRun) {
    PlacerConfig cfg = recover_placer_cfg();
    cfg.recover.stage_budget_ms = 1e-3;  // expires at the first check
    const Design input = generate_circuit(recover_design_cfg());
    const PlaceResult res = GlobalPlacer(cfg).place(input);
    EXPECT_GE(res.recovery.count(FaultKind::StageTimeout), 1);
    EXPECT_GE(res.recovery.degraded_stages, 1);
    EXPECT_EQ(res.placed.num_cells(), input.num_cells());
    EXPECT_TRUE(is_legal(res.placed));
}

TEST_F(FaultRecoveryTest, CleanRunIsBitwiseIdenticalWithRecoveryOff) {
    const Design input = generate_circuit(recover_design_cfg());
    PlacerConfig on = recover_placer_cfg();
    on.recover.enabled = true;
    PlacerConfig off = recover_placer_cfg();
    off.recover.enabled = false;
    const PlaceResult a = GlobalPlacer(on).place(input);
    const PlaceResult b = GlobalPlacer(off).place(input);
    // No detector tripped; the recovery layer was invisible.
    EXPECT_TRUE(a.recovery.events.empty());
    EXPECT_TRUE(b.recovery.events.empty());
    EXPECT_DOUBLE_EQ(a.hpwl_final, b.hpwl_final);
    ASSERT_EQ(a.placed.num_cells(), b.placed.num_cells());
    for (int i = 0; i < a.placed.num_cells(); ++i)
        EXPECT_EQ(a.placed.cells[static_cast<size_t>(i)].pos,
                  b.placed.cells[static_cast<size_t>(i)].pos)
            << "cell " << i;
}

// ---------------------------------------------------------------------------
// Best-snapshot restore pairs positions with inflation bookkeeping
// ---------------------------------------------------------------------------

TEST_F(FaultRecoveryTest, BestSnapshotRestoresPairedInflationBookkeeping) {
    // A prohibitive keep-best margin pins the kept-best to the stage entry
    // (iteration 0 at the latest): the restored ratios/extra charge must be
    // the entry bookkeeping (all ones), not the last iteration's inflated
    // state — the stage-end audit cross-checks the restored pairing.
    PlacerConfig cfg = recover_placer_cfg();
    cfg.keep_best_margin = 0.99;
    const Design input = generate_circuit(recover_design_cfg());
    PlaceResult pre = GlobalPlacer(cfg).place(input);

    Design work = pre.placed;
    const std::vector<int> movable = work.movable_cells();
    std::vector<Vec2> entry_pos(movable.size());
    for (size_t i = 0; i < movable.size(); ++i)
        entry_pos[i] = work.cells[static_cast<size_t>(movable[i])].pos;

    const BinGrid grid(work.region, 32, 32);
    PlacementObjective obj(grid, cfg.density, cfg.netmove,
                           4.0 * grid.bin_w());
    obj.set_lambda1(1.0);
    const RoutabilityStats rs =
        run_routability_stage(work, movable, obj, cfg, {}, work.num_cells());

    EXPECT_LE(rs.best_iter, 0);
    ASSERT_EQ(rs.final_ratios.size(),
              static_cast<size_t>(work.num_cells()));
    for (const double r : rs.final_ratios) EXPECT_DOUBLE_EQ(r, 1.0);
    // Positions restored together with the bookkeeping they were scored
    // with: the entry placement.
    for (size_t i = 0; i < movable.size(); ++i)
        EXPECT_EQ(work.cells[static_cast<size_t>(movable[i])].pos,
                  entry_pos[i])
            << "movable slot " << i;
}

// ---------------------------------------------------------------------------
// StageGuard degraded finish: with the retry budget exhausted, the stage
// must land on its best snapshot (never mid-divergence positions) and the
// summary must report the degradation.
// ---------------------------------------------------------------------------

class DegradedFinishTest : public ::testing::Test {
protected:
    void SetUp() override { recover::fault::clear(); }
    void TearDown() override { recover::fault::clear(); }

    struct Run {
        RoutabilityStats stats;
        std::vector<Vec2> entry_pos;
        std::vector<Vec2> final_pos;
    };

    /// Drive run_routability_stage directly with max_retries = 0 so the
    /// first detected divergence degrades the stage immediately.
    Run run_degraded(const FaultSpec& spec,
                     PlacerConfig cfg = recover_placer_cfg()) {
        cfg.recover.max_retries = 0;
        // One shared pre-placed design: the degraded-finish contract is
        // about the stage's exit state, not the placement quality.
        static const Design placed = [] {
            const Design input = generate_circuit(recover_design_cfg());
            return GlobalPlacer(recover_placer_cfg()).place(input).placed;
        }();
        Design work = placed;
        const std::vector<int> movable = work.movable_cells();
        Run run;
        run.entry_pos.resize(movable.size());
        for (size_t i = 0; i < movable.size(); ++i)
            run.entry_pos[i] = work.cells[static_cast<size_t>(movable[i])].pos;
        const BinGrid grid(work.region, 32, 32);
        PlacementObjective obj(grid, cfg.density, cfg.netmove,
                               4.0 * grid.bin_w());
        obj.set_lambda1(1.0);
        recover::fault::arm(spec);
        run.stats = run_routability_stage(work, movable, obj, cfg, {},
                                          work.num_cells());
        EXPECT_GE(recover::fault::shots(), 1)
            << "the armed fault never reached its injection site";
        run.final_pos.resize(movable.size());
        for (size_t i = 0; i < movable.size(); ++i)
            run.final_pos[i] = work.cells[static_cast<size_t>(movable[i])].pos;
        return run;
    }

    /// The summary must carry exactly one degradation of `kind`.
    static void expect_degraded(const RoutabilityStats& stats,
                                FaultKind kind) {
        EXPECT_EQ(stats.recovery.degraded_stages, 1);
        bool degraded = false;
        for (const auto& e : stats.recovery.events)
            if (e.action == "degrade" && e.kind == kind) degraded = true;
        EXPECT_TRUE(degraded) << "no degrade event of kind "
                              << recover::fault_kind_name(kind);
    }

    /// A fault injected at outer iteration 0 diverges before any snapshot
    /// beat the entry state, so landing on "best" means landing on entry:
    /// positions untouched, inflation bookkeeping still all-ones.
    static void expect_entry_state(const Run& run) {
        EXPECT_LE(run.stats.best_iter, 0);
        ASSERT_EQ(run.final_pos.size(), run.entry_pos.size());
        for (size_t i = 0; i < run.final_pos.size(); ++i)
            EXPECT_EQ(run.final_pos[i], run.entry_pos[i])
                << "movable slot " << i;
        for (const double r : run.stats.final_ratios)
            EXPECT_DOUBLE_EQ(r, 1.0);
    }
};

TEST_F(DegradedFinishTest, PersistentGradientNaNLandsOnEntrySnapshot) {
    const Run run =
        run_degraded({"routability-gp", FaultKind::GradientNaN, 0, 200});
    expect_degraded(run.stats, FaultKind::GradientNaN);
    expect_entry_state(run);
}

TEST_F(DegradedFinishTest, PersistentHpwlExplosionLandsOnEntrySnapshot) {
    const Run run =
        run_degraded({"routability-gp", FaultKind::HpwlExplosion, 0, 200});
    expect_degraded(run.stats, FaultKind::HpwlExplosion);
    expect_entry_state(run);
}

TEST_F(DegradedFinishTest, RouterLivelockLandsOnEntrySnapshot) {
    const Run run =
        run_degraded({"routability-gp", FaultKind::RouterNoProgress, 0, 200});
    expect_degraded(run.stats, FaultKind::RouterNoProgress);
    expect_entry_state(run);
}

TEST_F(DegradedFinishTest, OverflowOscillationStopsEarlyOnBestSnapshot) {
    PlacerConfig cfg = recover_placer_cfg();
    cfg.max_route_iters = 12;
    cfg.inner_iters = 3;
    cfg.stop_patience = 99;  // let the oscillation window build up
    const Run run = run_degraded(
        {"routability-gp", FaultKind::OverflowOscillation, 0, 32}, cfg);
    expect_degraded(run.stats, FaultKind::OverflowOscillation);
    // Detection needs a few window samples but must fire well before the
    // iteration cap — the stage stopped on it, not on exhaustion.
    EXPECT_LT(run.stats.outer_iters, cfg.max_route_iters);
    // The restored pairing is a real snapshot: finite bookkeeping only.
    ASSERT_FALSE(run.stats.final_ratios.empty());
    for (const double r : run.stats.final_ratios) {
        EXPECT_TRUE(std::isfinite(r));
        EXPECT_GE(r, 1.0);
    }
}

// ---------------------------------------------------------------------------
// Degenerate designs: the pipeline must finish without throwing
// ---------------------------------------------------------------------------

PlacerConfig degenerate_cfg() {
    PlacerConfig cfg;
    cfg.mode = PlacerMode::Ours;
    cfg.grid_bins = 16;
    cfg.max_wl_iters = 40;
    cfg.max_route_iters = 2;
    cfg.inner_iters = 3;
    cfg.router.rrr_rounds = 1;
    cfg.dp.max_passes = 1;
    return cfg;
}

Design bare_design(const char* name) {
    Design d;
    d.name = name;
    d.region = {0.0, 0.0, 100.0, 100.0};
    d.row_height = 8.0;
    d.site_width = 1.0;
    return d;
}

TEST(DegenerateDesignTest, EmptyDesign) {
    const Design d = bare_design("empty");
    PlaceResult res;
    ASSERT_NO_THROW(res = GlobalPlacer(degenerate_cfg()).place(d));
    EXPECT_EQ(res.placed.num_cells(), 0);
}

TEST(DegenerateDesignTest, SingleCellNoNets) {
    Design d = bare_design("single");
    d.add_cell("c0", 4.0, 8.0, CellKind::Movable, {50.0, 50.0});
    PlaceResult res;
    ASSERT_NO_THROW(res = GlobalPlacer(degenerate_cfg()).place(d));
    EXPECT_EQ(res.placed.num_cells(), 1);
}

TEST(DegenerateDesignTest, OnePinNet) {
    Design d = bare_design("one-pin");
    d.add_cell("c0", 4.0, 8.0, CellKind::Movable, {30.0, 30.0});
    d.add_cell("c1", 4.0, 8.0, CellKind::Movable, {70.0, 70.0});
    const int p0 = d.add_pin(0, {0.0, 0.0});
    const int net = d.add_net("n0", 1.0);
    d.connect(net, p0);  // a single-pin net: zero wirelength, no gradient
    PlaceResult res;
    ASSERT_NO_THROW(res = GlobalPlacer(degenerate_cfg()).place(d));
    EXPECT_EQ(res.placed.num_cells(), 2);
}

TEST(DegenerateDesignTest, ZeroAreaCell) {
    Design d = bare_design("zero-area");
    d.add_cell("c0", 4.0, 8.0, CellKind::Movable, {40.0, 40.0});
    d.add_cell("zero", 0.0, 0.0, CellKind::Movable, {50.0, 50.0});
    d.add_cell("c2", 4.0, 8.0, CellKind::Movable, {60.0, 60.0});
    const int p0 = d.add_pin(0, {0.0, 0.0});
    const int p1 = d.add_pin(1, {0.0, 0.0});
    const int p2 = d.add_pin(2, {0.0, 0.0});
    const int net = d.add_net("n0", 1.0);
    d.connect(net, p0);
    d.connect(net, p1);
    d.connect(net, p2);
    PlaceResult res;
    ASSERT_NO_THROW(res = GlobalPlacer(degenerate_cfg()).place(d));
    EXPECT_EQ(res.placed.num_cells(), 3);
}

TEST(DegenerateDesignTest, MacroCoversMostOfTheDie) {
    Design d = bare_design("big-macro");
    // A fixed macro over >90% of the die; the movables fight for the rim.
    d.add_cell("macro", 96.0, 96.0, CellKind::Macro, {50.0, 50.0});
    for (int i = 0; i < 4; ++i)
        d.add_cell("c" + std::to_string(i), 2.0, 8.0, CellKind::Movable,
                   {2.0, 10.0 + 20.0 * i});
    const int pa = d.add_pin(1, {0.0, 0.0});
    const int pb = d.add_pin(2, {0.0, 0.0});
    const int net = d.add_net("n0", 1.0);
    d.connect(net, pa);
    d.connect(net, pb);
    PlaceResult res;
    ASSERT_NO_THROW(res = GlobalPlacer(degenerate_cfg()).place(d));
    EXPECT_EQ(res.placed.num_cells(), 5);
}

// ---------------------------------------------------------------------------
// Hardened netlist reader: typed errors with line numbers
// ---------------------------------------------------------------------------

TEST(NetlistParseErrorTest, CorruptedFixturesReportTypedLineErrors) {
    struct Fixture {
        const char* label;
        const char* text;
        int line;
    };
    const Fixture fixtures[] = {
        {"truncated cell", "cell broken\n", 1},
        {"bad cell kind",
         "region 0 0 10 10\ncell a xyz 1 1 5 5\n", 2},
        {"non-numeric cell field",
         "region 0 0 10 10\ncell a mov 1 1 five 5\n", 2},
        {"negative cell dims",
         "region 0 0 10 10\ncell a mov -5 5 0 0\n", 2},
        {"inverted region", "region 10 10 0 0\n", 1},
        {"non-positive rowheight", "rowheight -3\n", 1},
        {"zero sitewidth", "sitewidth 0\n", 1},
        {"overflowing region coordinate", "region 0 0 1e999 10\n", 1},
        {"pin on missing cell",
         "region 0 0 10 10\ncell a mov 1 1 5 5\npin 3 0 0\n", 3},
        {"net on missing pin",
         "region 0 0 10 10\nnet n1 1.0 0\n", 2},
        {"pin connected twice",
         "region 0 0 10 10\ncell a mov 1 1 5 5\npin 0 0 0\n"
         "net n1 1 0\nnet n2 1 0\n", 5},
        {"negative net weight",
         "region 0 0 10 10\nnet n1 -2\n", 2},
        {"trailing garbage on net",
         "region 0 0 10 10\ncell a mov 1 1 5 5\npin 0 0 0\nnet n 1 0 junk\n",
         4},
        {"bad rail orientation", "rail x 0 0 1 1\n", 1},
        {"unknown directive", "bogus 1 2\n", 1},
    };
    for (const Fixture& f : fixtures) {
        std::istringstream is(f.text);
        try {
            read_design(is);
            FAIL() << f.label << ": expected a ParseError";
        } catch (const ParseError& e) {
            EXPECT_EQ(e.line(), f.line) << f.label << ": " << e.what();
            EXPECT_FALSE(e.reason().empty()) << f.label;
            // The formatted message names the line for humans too.
            EXPECT_NE(std::string(e.what()).find(
                          "line " + std::to_string(f.line)),
                      std::string::npos)
                << f.label << ": " << e.what();
        }
    }
}

TEST(NetlistParseErrorTest, ParseErrorIsARuntimeError) {
    // Callers that only know std::runtime_error keep working.
    std::istringstream is("bogus\n");
    EXPECT_THROW(read_design(is), std::runtime_error);
}

// ---------------------------------------------------------------------------
// StageGuard budget/retry ledger (unit level)
// ---------------------------------------------------------------------------

TEST(StageGuardTest, BoundedRetriesThenDegrade) {
    recover::RecoverConfig cfg;
    cfg.max_retries = 2;
    recover::RecoveryReport report;
    recover::StageGuard guard("routability-gp", cfg, &report);
    ASSERT_TRUE(guard.active());
    EXPECT_TRUE(guard.allow_retry(FaultKind::GradientNaN, 0, "first"));
    EXPECT_TRUE(guard.allow_retry(FaultKind::GradientNaN, 1, "second"));
    EXPECT_FALSE(guard.allow_retry(FaultKind::GradientNaN, 2, "third"));
    EXPECT_EQ(guard.retries_used(), 2);
    guard.degrade(FaultKind::GradientNaN, 2, "giving up");
    EXPECT_EQ(report.degraded_stages, 1);
    EXPECT_EQ(report.count(FaultKind::GradientNaN), 3);  // 2 retries + degrade
}

TEST(StageGuardTest, DisabledGuardGrantsNothing) {
    recover::RecoverConfig cfg;
    cfg.enabled = false;
    recover::RecoveryReport report;
    recover::StageGuard guard("legalize", cfg, &report);
    EXPECT_FALSE(guard.active());
    EXPECT_FALSE(guard.allow_retry(FaultKind::AuditViolation, 0, "x"));
    EXPECT_FALSE(guard.over_budget(0));
    EXPECT_TRUE(report.events.empty());
}

TEST(StageGuardTest, WallClockBudgetExpires) {
    recover::RecoverConfig cfg;
    cfg.stage_budget_ms = 1e-6;
    recover::RecoveryReport report;
    recover::StageGuard guard("wirelength-gp", cfg, &report);
    // Construction already consumed more than a nanosecond.
    EXPECT_TRUE(guard.over_budget(0));
    EXPECT_TRUE(guard.over_budget(1));  // latched
    EXPECT_EQ(report.count(FaultKind::StageTimeout), 1);  // recorded once
    EXPECT_EQ(report.degraded_stages, 1);
}

}  // namespace
}  // namespace rdp
