// Tests for HPWL and the WA smooth wirelength model, including
// finite-difference gradient verification.

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "wirelength/hpwl.hpp"
#include "wirelength/wa_model.hpp"

namespace rdp {
namespace {

/// Design with `n` single-pin cells all on one net, at given positions.
Design chain_design(const std::vector<Vec2>& positions) {
    Design d;
    d.region = {0, 0, 1000, 1000};
    const int net = d.add_net("n");
    for (size_t i = 0; i < positions.size(); ++i) {
        const int c = d.add_cell("c" + std::to_string(i), 2, 8,
                                 CellKind::Movable, positions[i]);
        const int p = d.add_pin(c, {0, 0});
        d.connect(net, p);
    }
    return d;
}

TEST(HpwlTest, TwoPinNet) {
    const Design d = chain_design({{10, 20}, {40, 60}});
    EXPECT_DOUBLE_EQ(net_hpwl(d, d.nets[0]), 30.0 + 40.0);
    EXPECT_DOUBLE_EQ(total_hpwl(d), 70.0);
}

TEST(HpwlTest, MultiPinBoundingBox) {
    const Design d = chain_design({{0, 0}, {10, 5}, {4, 20}, {7, 3}});
    EXPECT_DOUBLE_EQ(net_hpwl(d, d.nets[0]), 10.0 + 20.0);
    const Rect b = net_bbox(d, d.nets[0]);
    EXPECT_EQ(b, Rect(0, 0, 10, 20));
}

TEST(HpwlTest, DegenerateNets) {
    Design d;
    d.region = {0, 0, 100, 100};
    const int c = d.add_cell("c", 2, 8, CellKind::Movable, {50, 50});
    const int p = d.add_pin(c, {0, 0});
    const int net = d.add_net("single");
    d.connect(net, p);
    EXPECT_DOUBLE_EQ(net_hpwl(d, d.nets[0]), 0.0);
    d.add_net("empty");
    EXPECT_DOUBLE_EQ(net_hpwl(d, d.nets[1]), 0.0);
    EXPECT_DOUBLE_EQ(total_hpwl(d), 0.0);
}

TEST(HpwlTest, NetWeightScalesTotal) {
    Design d = chain_design({{0, 0}, {10, 10}});
    d.nets[0].weight = 3.0;
    EXPECT_DOUBLE_EQ(total_hpwl(d), 60.0);
}

TEST(HpwlTest, PinOffsetsCount) {
    Design d = chain_design({{10, 10}, {20, 10}});
    d.pins[0].offset = {-1.0, 2.0};
    d.pins[1].offset = {1.0, 0.0};
    EXPECT_DOUBLE_EQ(net_hpwl(d, d.nets[0]), (21.0 - 9.0) + 2.0);
}

TEST(WaModelTest, UnderestimatesAndConvergesToHpwl) {
    const Design d = chain_design({{3, 7}, {55, 40}, {20, 90}, {77, 12}});
    const double hp = net_hpwl(d, d.nets[0]);
    double prev_err = 1e18;
    for (const double gamma : {64.0, 16.0, 4.0, 1.0, 0.25}) {
        const WAWirelength wa(gamma);
        const double w = wa.net_wa(d, d.nets[0]);
        EXPECT_LE(w, hp + 1e-9) << "gamma " << gamma;
        const double err = hp - w;
        EXPECT_LE(err, prev_err + 1e-9) << "gamma " << gamma;
        prev_err = err;
    }
    // Tight approximation at small gamma.
    EXPECT_NEAR(WAWirelength(0.25).net_wa(d, d.nets[0]), hp, 0.05 * hp);
}

TEST(WaModelTest, TwoPinExactLimit) {
    const Design d = chain_design({{0, 0}, {100, 0}});
    EXPECT_NEAR(WAWirelength(0.5).net_wa(d, d.nets[0]), 100.0, 1e-6);
}

TEST(WaModelTest, StableForLargeCoordinates) {
    // Exponent shifting must prevent overflow with huge coordinates and
    // tiny gamma.
    const Design d = chain_design({{1e7, 2e7}, {1.5e7, 2.4e7}, {1.2e7, 2.2e7}});
    const WAWirelength wa(1.0);
    const double w = wa.net_wa(d, d.nets[0]);
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_NEAR(w, net_hpwl(d, d.nets[0]), 10.0);
}

class WaGradientCheck : public ::testing::TestWithParam<int> {};

TEST_P(WaGradientCheck, MatchesFiniteDifference) {
    const int degree = GetParam();
    Rng rng(100 + degree);
    std::vector<Vec2> pos(static_cast<size_t>(degree));
    for (auto& p : pos) p = {rng.uniform(0, 200), rng.uniform(0, 200)};
    Design d = chain_design(pos);
    const WAWirelength wa(8.0);

    const WirelengthResult res = wa.evaluate(d);
    const double h = 1e-5;
    for (int i = 0; i < d.num_cells(); ++i) {
        for (int axis = 0; axis < 2; ++axis) {
            Design dp = d;
            Design dm = d;
            auto& cp = dp.cells[static_cast<size_t>(i)].pos;
            auto& cm = dm.cells[static_cast<size_t>(i)].pos;
            (axis == 0 ? cp.x : cp.y) += h;
            (axis == 0 ? cm.x : cm.y) -= h;
            const double fd = (wa.evaluate(dp).total - wa.evaluate(dm).total) /
                              (2.0 * h);
            const double an = axis == 0 ? res.cell_grad[i].x
                                        : res.cell_grad[i].y;
            EXPECT_NEAR(an, fd, 1e-5 + 1e-4 * std::abs(fd))
                << "cell " << i << " axis " << axis;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, WaGradientCheck,
                         ::testing::Values(2, 3, 5, 9, 17));

TEST(WaModelTest, GradientAccumulatesOverNets) {
    // A cell on two nets receives the sum of both nets' gradients.
    Design d;
    d.region = {0, 0, 100, 100};
    const int a = d.add_cell("a", 2, 8, CellKind::Movable, {50, 50});
    const int b = d.add_cell("b", 2, 8, CellKind::Movable, {10, 50});
    const int c = d.add_cell("c", 2, 8, CellKind::Movable, {90, 50});
    const int n1 = d.add_net("n1");
    d.connect(n1, d.add_pin(a, {0, 0}));
    d.connect(n1, d.add_pin(b, {0, 0}));
    const int n2 = d.add_net("n2");
    d.connect(n2, d.add_pin(a, {0, 0}));
    d.connect(n2, d.add_pin(c, {0, 0}));
    const WAWirelength wa(4.0);
    const WirelengthResult res = wa.evaluate(d);
    // a sits between b and c: pulls cancel approximately.
    EXPECT_NEAR(res.cell_grad[static_cast<size_t>(a)].x, 0.0, 1e-6);
    // b is pulled right (positive gradient means increasing x increases WL,
    // so the descent direction -grad points right; grad must be negative).
    EXPECT_LT(res.cell_grad[static_cast<size_t>(b)].x, 0.0);
    EXPECT_GT(res.cell_grad[static_cast<size_t>(c)].x, 0.0);
}

TEST(WaModelTest, WeightedTotal) {
    Design d = chain_design({{0, 0}, {10, 0}});
    d.nets[0].weight = 2.0;
    const WAWirelength wa(1.0);
    const WirelengthResult res = wa.evaluate(d);
    EXPECT_NEAR(res.total, 2.0 * wa.net_wa(d, d.nets[0]), 1e-12);
}

}  // namespace
}  // namespace rdp
