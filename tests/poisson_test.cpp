// Tests for the spectral Poisson solver: manufactured solutions, boundary
// behaviour, compatibility handling, and field consistency.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "fft/dct.hpp"
#include "poisson/poisson.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace rdp {
namespace {

// Build rho for a single cosine mode (u, v): rho = cos(wu (x+.5)) cos(wv (y+.5)).
GridF mode_density(int nx, int ny, int u, int v) {
    GridF rho(nx, ny);
    const double wu = M_PI * u / nx, wv = M_PI * v / ny;
    for (int y = 0; y < ny; ++y)
        for (int x = 0; x < nx; ++x)
            rho.at(x, y) =
                std::cos(wu * (x + 0.5)) * std::cos(wv * (y + 0.5));
    return rho;
}

TEST(PoissonTest, SingleModeManufacturedSolution) {
    // For rho = cos cos mode (u,v), psi = rho / (wu^2 + wv^2).
    const int n = 32;
    const int u = 3, v = 5;
    PoissonSolver solver(n, n);
    const GridF rho = mode_density(n, n, u, v);
    const PoissonSolution sol = solver.solve(rho);
    const double wu = M_PI * u / n, wv = M_PI * v / n;
    const double scale = 1.0 / (wu * wu + wv * wv);
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
            EXPECT_NEAR(sol.potential.at(x, y), rho.at(x, y) * scale, 1e-9);
}

TEST(PoissonTest, SingleModeField) {
    // Ex = -dpsi/dx = wu/(wu^2+wv^2) sin(wu(x+.5)) cos(wv(y+.5)).
    const int n = 32;
    const int u = 2, v = 1;
    PoissonSolver solver(n, n);
    const PoissonSolution sol = solver.solve(mode_density(n, n, u, v));
    const double wu = M_PI * u / n, wv = M_PI * v / n;
    const double denom = wu * wu + wv * wv;
    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            const double ex = wu / denom * std::sin(wu * (x + 0.5)) *
                              std::cos(wv * (y + 0.5));
            const double ey = wv / denom * std::cos(wu * (x + 0.5)) *
                              std::sin(wv * (y + 0.5));
            EXPECT_NEAR(sol.field_x.at(x, y), ex, 1e-9);
            EXPECT_NEAR(sol.field_y.at(x, y), ey, 1e-9);
        }
    }
}

TEST(PoissonTest, PotentialHasZeroMean) {
    const int n = 64;
    PoissonSolver solver(n, n);
    Rng rng(17);
    GridF rho(n, n);
    for (auto& v : rho) v = rng.uniform(0.0, 2.0);
    const GridF psi = solver.solve_potential(rho);
    EXPECT_NEAR(grid_mean(psi), 0.0, 1e-9);
}

TEST(PoissonTest, ConstantDensityGivesZeroPotential) {
    // Mean-shift removes a constant entirely.
    const int n = 16;
    PoissonSolver solver(n, n);
    const PoissonSolution sol = solver.solve(GridF(n, n, 5.0));
    for (const double v : sol.potential) EXPECT_NEAR(v, 0.0, 1e-10);
    for (const double v : sol.field_x) EXPECT_NEAR(v, 0.0, 1e-10);
    for (const double v : sol.field_y) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(PoissonTest, LaplacianOfPotentialMatchesDensity) {
    // Central-difference Laplacian of psi ~ -(rho - mean(rho)) away from
    // the boundary (second-order accurate; smooth input keeps error small).
    const int n = 64;
    PoissonSolver solver(n, n);
    GridF rho(n, n);
    // Low-frequency mode mix keeps the continuous-vs-discrete Laplacian
    // discrepancy (O(w^4)) well below the tolerance.
    Rng rng(41);
    for (int k = 0; k < 5; ++k) {
        const int u = rng.uniform_int(0, 4), v = rng.uniform_int(0, 4);
        const double a = rng.uniform(-1.0, 1.0);
        const GridF m = mode_density(n, n, u, v);
        for (int y = 0; y < n; ++y)
            for (int x = 0; x < n; ++x) rho.at(x, y) += a * m.at(x, y);
    }
    const double mean = grid_mean(rho);
    const GridF psi = solver.solve_potential(rho);
    for (int y = 2; y < n - 2; ++y) {
        for (int x = 2; x < n - 2; ++x) {
            const double lap = psi.at(x + 1, y) + psi.at(x - 1, y) +
                               psi.at(x, y + 1) + psi.at(x, y - 1) -
                               4.0 * psi.at(x, y);
            EXPECT_NEAR(lap, -(rho.at(x, y) - mean), 5e-3)
                << "at (" << x << "," << y << ")";
        }
    }
}

TEST(PoissonTest, FieldIsNegativeGradientOfPotential) {
    const int n = 64;
    PoissonSolver solver(n, n);
    Rng rng(3);
    GridF rho(n, n);
    // Smooth random density: sum of a few low-frequency modes.
    for (int k = 0; k < 6; ++k) {
        const int u = rng.uniform_int(0, 4), v = rng.uniform_int(0, 4);
        const double a = rng.uniform(-1.0, 1.0);
        const GridF m = mode_density(n, n, u, v);
        for (int y = 0; y < n; ++y)
            for (int x = 0; x < n; ++x) rho.at(x, y) += a * m.at(x, y);
    }
    const PoissonSolution sol = solver.solve(rho);
    for (int y = 1; y < n - 1; ++y) {
        for (int x = 1; x < n - 1; ++x) {
            const double gx =
                (sol.potential.at(x + 1, y) - sol.potential.at(x - 1, y)) / 2;
            const double gy =
                (sol.potential.at(x, y + 1) - sol.potential.at(x, y - 1)) / 2;
            EXPECT_NEAR(sol.field_x.at(x, y), -gx, 2e-2);
            EXPECT_NEAR(sol.field_y.at(x, y), -gy, 2e-2);
        }
    }
}

TEST(PoissonTest, FieldPointsAwayFromBlob) {
    // A concentrated blob at the center: field to its right points +x.
    const int n = 32;
    PoissonSolver solver(n, n);
    GridF rho(n, n);
    rho.at(16, 16) = 100.0;
    const PoissonSolution sol = solver.solve(rho);
    EXPECT_GT(sol.field_x.at(24, 16), 0.0);
    EXPECT_LT(sol.field_x.at(8, 16), 0.0);
    EXPECT_GT(sol.field_y.at(16, 24), 0.0);
    EXPECT_LT(sol.field_y.at(16, 8), 0.0);
    // Potential is maximal at the blob.
    double best = sol.potential.at(0, 0);
    int bx = 0, by = 0;
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
            if (sol.potential.at(x, y) > best) {
                best = sol.potential.at(x, y);
                bx = x;
                by = y;
            }
    EXPECT_EQ(bx, 16);
    EXPECT_EQ(by, 16);
}


TEST(PoissonTest, LinearityOfSolve) {
    // The solve is linear: solve(a*r1 + b*r2) = a*solve(r1) + b*solve(r2).
    const int n = 32;
    PoissonSolver solver(n, n);
    Rng rng(55);
    GridF r1(n, n), r2(n, n);
    for (auto& v : r1) v = rng.uniform(0.0, 1.0);
    for (auto& v : r2) v = rng.uniform(0.0, 1.0);
    GridF mix(n, n);
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
            mix.at(x, y) = 2.0 * r1.at(x, y) - 0.5 * r2.at(x, y);
    const PoissonSolution s1 = solver.solve(r1);
    const PoissonSolution s2 = solver.solve(r2);
    const PoissonSolution sm = solver.solve(mix);
    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            EXPECT_NEAR(sm.potential.at(x, y),
                        2.0 * s1.potential.at(x, y) -
                            0.5 * s2.potential.at(x, y),
                        1e-9);
            EXPECT_NEAR(sm.field_x.at(x, y),
                        2.0 * s1.field_x.at(x, y) -
                            0.5 * s2.field_x.at(x, y),
                        1e-9);
        }
    }
}

TEST(PoissonTest, SymmetryOfMirroredDensity) {
    // Mirroring the charge mirrors the potential and flips the x field.
    const int n = 32;
    PoissonSolver solver(n, n);
    Rng rng(66);
    GridF rho(n, n);
    for (auto& v : rho) v = rng.uniform(0.0, 1.0);
    GridF mirrored(n, n);
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
            mirrored.at(x, y) = rho.at(n - 1 - x, y);
    const PoissonSolution a = solver.solve(rho);
    const PoissonSolution b = solver.solve(mirrored);
    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            EXPECT_NEAR(b.potential.at(x, y),
                        a.potential.at(n - 1 - x, y), 1e-9);
            EXPECT_NEAR(b.field_x.at(x, y), -a.field_x.at(n - 1 - x, y),
                        1e-9);
            EXPECT_NEAR(b.field_y.at(x, y), a.field_y.at(n - 1 - x, y),
                        1e-9);
        }
    }
}

TEST(PoissonTest, RectangularGrid) {
    const int nx = 64, ny = 16;
    PoissonSolver solver(nx, ny);
    const int u = 2, v = 1;
    GridF rho(nx, ny);
    const double wu = M_PI * u / nx, wv = M_PI * v / ny;
    for (int y = 0; y < ny; ++y)
        for (int x = 0; x < nx; ++x)
            rho.at(x, y) =
                std::cos(wu * (x + 0.5)) * std::cos(wv * (y + 0.5));
    const PoissonSolution sol = solver.solve(rho);
    const double scale = 1.0 / (wu * wu + wv * wv);
    for (int y = 0; y < ny; ++y)
        for (int x = 0; x < nx; ++x)
            EXPECT_NEAR(sol.potential.at(x, y), rho.at(x, y) * scale, 1e-9);
}

TEST(PoissonTest, SolvePotentialAgreesWithSolve) {
    const int n = 32;
    PoissonSolver solver(n, n);
    Rng rng(9);
    GridF rho(n, n);
    for (auto& v : rho) v = rng.uniform(0.0, 1.0);
    const PoissonSolution sol = solver.solve(rho);
    const GridF psi = solver.solve_potential(rho);
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
            EXPECT_NEAR(psi.at(x, y), sol.potential.at(x, y), 1e-12);
}

GridF random_density(int nx, int ny, uint64_t seed) {
    Rng rng(seed);
    GridF rho(nx, ny);
    for (auto& v : rho) v = rng.uniform(0.0, 1.0);
    return rho;
}

TEST(PoissonWorkspaceTest, MatchesConvenienceSolveBitwise) {
    // The value-returning wrappers delegate to the workspace overloads;
    // both paths must produce identical bits.
    const int n = 32;
    PoissonSolver solver(n, n);
    const GridF rho = random_density(n, n, 21);
    const PoissonSolution by_value = solver.solve(rho);
    PoissonWorkspace ws;
    const PoissonSolution& in_place = solver.solve(rho, ws);
    EXPECT_EQ(by_value.potential, in_place.potential);
    EXPECT_EQ(by_value.field_x, in_place.field_x);
    EXPECT_EQ(by_value.field_y, in_place.field_y);
    const GridF& psi = solver.solve_potential(rho, ws);
    EXPECT_EQ(by_value.potential, psi);
}

TEST(PoissonWorkspaceTest, ReuseIsStateless) {
    // Repeated solves through one workspace (including interleaved
    // potential-only solves) must not leak state between calls.
    const int n = 16;
    PoissonSolver solver(n, n);
    const GridF r1 = random_density(n, n, 31);
    const GridF r2 = random_density(n, n, 32);
    PoissonWorkspace ws;
    GridF first_psi, first_ex;
    {
        const PoissonSolution& s = solver.solve(r1, ws);
        first_psi = s.potential;
        first_ex = s.field_x;
    }
    solver.solve(r2, ws, 3.0);
    solver.solve_potential(r2, ws);
    const PoissonSolution& again = solver.solve(r1, ws);
    EXPECT_EQ(again.potential, first_psi);
    EXPECT_EQ(again.field_x, first_ex);
}

TEST(PoissonWorkspaceTest, ChargeScaleMatchesScaledInput) {
    // charge_scale is folded into the spectral multipliers; by linearity it
    // must equal scaling the input density.
    const int n = 32;
    const double s = 1.0 / 48.0;
    PoissonSolver solver(n, n);
    const GridF rho = random_density(n, n, 41);
    GridF scaled = rho;
    grid_scale(scaled, s);
    const PoissonSolution ref = solver.solve(scaled);
    PoissonWorkspace ws;
    const PoissonSolution& got = solver.solve(rho, ws, s);
    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            EXPECT_NEAR(got.potential.at(x, y), ref.potential.at(x, y), 1e-12);
            EXPECT_NEAR(got.field_x.at(x, y), ref.field_x.at(x, y), 1e-12);
            EXPECT_NEAR(got.field_y.at(x, y), ref.field_y.at(x, y), 1e-12);
        }
    }
}

TEST(PoissonWorkspaceTest, BitwiseDeterministicAcrossThreadCounts) {
    // The batched row passes and blocked transposes must be thread-count
    // invariant (deterministic chunk plans, disjoint writes).
    const int nx = 64, ny = 32;
    PoissonSolver solver(nx, ny);
    const GridF rho = random_density(nx, ny, 51);
    const int saved = par::max_threads();
    std::vector<PoissonSolution> runs;
    for (const int t : {1, 2, 7}) {
        par::set_max_threads(t);
        PoissonWorkspace ws;
        runs.push_back(solver.solve(rho, ws));
    }
    par::set_max_threads(saved);
    for (size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[0].potential, runs[i].potential) << "run " << i;
        EXPECT_EQ(runs[0].field_x, runs[i].field_x) << "run " << i;
        EXPECT_EQ(runs[0].field_y, runs[i].field_y) << "run " << i;
    }
}

// Full-solution reference built from the O(N^2) naive transforms with the
// textbook (non-transposed, non-fused) pass structure — anchors the
// transpose-blocked pipeline end to end, including rectangular grids.
PoissonSolution naive_solve(const GridF& rho_in) {
    const int w = rho_in.width(), h = rho_in.height();
    GridF rho = rho_in;
    const double mean = grid_mean(rho);
    for (auto& v : rho) v -= mean;

    auto rows = [&](const GridF& g, auto&& f) {
        GridF out(g.width(), g.height());
        for (int y = 0; y < g.height(); ++y) {
            std::vector<double> buf(static_cast<size_t>(g.width()));
            for (int x = 0; x < g.width(); ++x)
                buf[static_cast<size_t>(x)] = g.at(x, y);
            const std::vector<double> res = f(buf);
            for (int x = 0; x < g.width(); ++x)
                out.at(x, y) = res[static_cast<size_t>(x)];
        }
        return out;
    };
    auto cols = [&](const GridF& g, auto&& f) {
        GridF out(g.width(), g.height());
        for (int x = 0; x < g.width(); ++x) {
            std::vector<double> buf(static_cast<size_t>(g.height()));
            for (int y = 0; y < g.height(); ++y)
                buf[static_cast<size_t>(y)] = g.at(x, y);
            const std::vector<double> res = f(buf);
            for (int y = 0; y < g.height(); ++y)
                out.at(x, y) = res[static_cast<size_t>(y)];
        }
        return out;
    };

    const GridF coeffs = cols(rows(rho, naive::dct2), naive::dct2);
    GridF c(w, h), cx(w, h), cy(w, h);
    for (int v = 0; v < h; ++v) {
        const double wv = M_PI * v / h;
        for (int u = 0; u < w; ++u) {
            const double wu = M_PI * u / w;
            const double denom = wu * wu + wv * wv;
            const double pu = (u == 0) ? 1.0 : 2.0;
            const double pv = (v == 0) ? 1.0 : 2.0;
            const double a = coeffs.at(u, v) * pu * pv / (w * h);
            c.at(u, v) = denom > 0.0 ? a / denom : 0.0;
            cx.at(u, v) = c.at(u, v) * wu;
            cy.at(u, v) = c.at(u, v) * wv;
        }
    }
    PoissonSolution sol;
    sol.potential = cols(rows(c, naive::dct3), naive::dct3);
    sol.field_x = cols(rows(cx, naive::idxst), naive::dct3);
    sol.field_y = cols(rows(cy, naive::dct3), naive::idxst);
    return sol;
}

class PoissonNaiveAnchor
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PoissonNaiveAnchor, FastSolveMatchesNaiveReference) {
    const auto [nx, ny] = GetParam();
    PoissonSolver solver(nx, ny);
    const GridF rho = random_density(nx, ny, 6100 + 97u * nx + ny);
    PoissonWorkspace ws;
    const PoissonSolution& got = solver.solve(rho, ws);
    const PoissonSolution want = naive_solve(rho);
    for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
            EXPECT_NEAR(got.potential.at(x, y), want.potential.at(x, y), 1e-9)
                << "(" << x << "," << y << ")";
            EXPECT_NEAR(got.field_x.at(x, y), want.field_x.at(x, y), 1e-9)
                << "(" << x << "," << y << ")";
            EXPECT_NEAR(got.field_y.at(x, y), want.field_y.at(x, y), 1e-9)
                << "(" << x << "," << y << ")";
        }
    }
}

// Rectangular grids in both aspect directions plus degenerate small sizes
// (2x2 is the smallest legal solver; 4x2 / 2x8 exercise the n == 2 and
// transposed-layout edge paths).
INSTANTIATE_TEST_SUITE_P(Grids, PoissonNaiveAnchor,
                         ::testing::Values(std::pair{2, 2}, std::pair{4, 2},
                                           std::pair{2, 8}, std::pair{16, 8},
                                           std::pair{8, 32}));

}  // namespace
}  // namespace rdp
