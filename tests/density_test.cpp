// Tests for the electrostatic density penalty: charge conservation,
// gradient direction (repulsion), inflation and extra-density hooks, and
// the overflow metric.

#include <gtest/gtest.h>

#include "density/electro_density.hpp"
#include "util/rng.hpp"

namespace rdp {
namespace {

Design blob_design(const std::vector<Vec2>& cells, double w = 4, double h = 8) {
    Design d;
    d.region = {0, 0, 256, 256};
    d.row_height = 8;
    for (size_t i = 0; i < cells.size(); ++i)
        d.add_cell("c" + std::to_string(i), w, h, CellKind::Movable, cells[i]);
    return d;
}

BinGrid grid256() { return BinGrid({0, 0, 256, 256}, 32, 32); }

TEST(DensityTest, MovableDensityConservesArea) {
    Rng rng(12);
    std::vector<Vec2> pos;
    for (int i = 0; i < 40; ++i)
        pos.push_back({rng.uniform(10, 246), rng.uniform(10, 246)});
    const Design d = blob_design(pos);
    const ElectroDensity ed(grid256());
    const GridF rho = ed.movable_density(d);
    EXPECT_NEAR(grid_sum(rho), d.total_movable_area(), 1e-6);
}

TEST(DensityTest, InflationScalesCharge) {
    const Design d = blob_design({{128, 128}});
    const ElectroDensity ed(grid256());
    std::vector<double> infl(1, 1.7);
    const GridF rho = ed.movable_density(d, &infl);
    EXPECT_NEAR(grid_sum(rho), 1.7 * d.total_movable_area(), 1e-6);
}

TEST(DensityTest, SubBinCellsSpreadButConserve) {
    // A cell much smaller than a bin is expanded to bin size with scaled
    // charge; total charge must stay the cell area. Center off the bin
    // grid so the expanded footprint straddles several bins.
    const Design d = blob_design({{98, 101}}, 1.0, 1.0);
    const ElectroDensity ed(grid256());
    const GridF rho = ed.movable_density(d);
    EXPECT_NEAR(grid_sum(rho), 1.0, 1e-9);
    EXPECT_LT(grid_max(rho), 1.0);  // spread across bins
}

TEST(DensityTest, TwoBlobsRepel) {
    // Two clusters: the gradient on each cell should push the clusters
    // apart (descent direction -grad points away from the other cluster).
    std::vector<Vec2> pos;
    for (int i = 0; i < 30; ++i) {
        pos.push_back({100.0 + (i % 5), 128.0 + (i / 5) * 2.0});
        pos.push_back({156.0 + (i % 5), 128.0 + (i / 5) * 2.0});
    }
    const Design d = blob_design(pos);
    const ElectroDensity ed(grid256());
    const DensityResult res = ed.evaluate(d);
    double left_gx = 0.0, right_gx = 0.0;
    for (int i = 0; i < d.num_cells(); ++i) {
        if (d.cells[i].pos.x < 128)
            left_gx += res.cell_grad[i].x;
        else
            right_gx += res.cell_grad[i].x;
    }
    // Increasing x of a left-cluster cell moves it toward the crowd:
    // density penalty rises -> positive gradient; mirror for the right.
    EXPECT_GT(left_gx, 0.0);
    EXPECT_LT(right_gx, 0.0);
}

TEST(DensityTest, FixedMacroRepelsMovables) {
    Design d = blob_design({{100, 128}});
    d.add_cell("macro", 60, 60, CellKind::Macro, {150, 128});
    const ElectroDensity ed(grid256());
    const DensityResult res = ed.evaluate(d);
    // The movable cell left of the macro is pushed left: gradient > 0.
    EXPECT_GT(res.cell_grad[0].x, 0.0);
    // Macro gets no gradient.
    EXPECT_EQ(res.cell_grad[1], Vec2{});
}

TEST(DensityTest, ExtraDensityActsAsCharge) {
    Design d = blob_design({{100, 128}});
    const BinGrid g = grid256();
    const ElectroDensity ed(g);
    GridF extra = g.make_grid();
    // Strong artificial charge right of the cell.
    g.splat_area(extra, {140, 100, 180, 156}, 3.0);
    const DensityResult with = ed.evaluate(d, nullptr, &extra);
    const DensityResult without = ed.evaluate(d);
    EXPECT_GT(with.cell_grad[0].x, without.cell_grad[0].x);
}

TEST(DensityTest, GradientMatchesFiniteDifferenceInExternalField) {
    // A small movable probe near a large fixed blob: the inter-charge
    // force dominates the probe's lattice self-force, so the analytic
    // gradient must track finite differences of the penalty closely.
    // (Pure self-force is zero-mean lattice noise that every ePlace-style
    // implementation carries; it is not meaningful to check.)
    const ElectroDensity ed(grid256());
    for (const Vec2 probe_pos : {Vec2{90, 128}, Vec2{101, 99}, Vec2{150, 60},
                                 Vec2{77, 181}}) {
        Design d = blob_design({probe_pos});
        d.add_cell("blob", 48, 48, CellKind::Macro, {128, 128});
        const DensityResult res = ed.evaluate(d);
        const double h = 0.5;
        for (int axis = 0; axis < 2; ++axis) {
            Design dp = d, dm = d;
            (axis == 0 ? dp.cells[0].pos.x : dp.cells[0].pos.y) += h;
            (axis == 0 ? dm.cells[0].pos.x : dm.cells[0].pos.y) -= h;
            const double fd =
                (ed.evaluate(dp).penalty - ed.evaluate(dm).penalty) / (2 * h);
            const double an =
                axis == 0 ? res.cell_grad[0].x : res.cell_grad[0].y;
            if (std::abs(fd) > 1e-3) {
                EXPECT_GT(an * fd, 0.0)
                    << "sign flip at " << probe_pos << " axis " << axis;
                EXPECT_NEAR(an, fd, 0.30 * std::abs(fd) + 2e-3)
                    << "at " << probe_pos << " axis " << axis;
            }
        }
    }
}

TEST(DensityTest, GradientSignCorrectAtCloseRange) {
    // Adjacent cells (1 bin apart): magnitudes are discretization-limited
    // but the repulsion direction must still be right.
    std::vector<Vec2> pos = {{100, 100}, {108, 100}};
    Design d = blob_design(pos);
    const ElectroDensity ed(grid256());
    const DensityResult res = ed.evaluate(d);
    // Moving the left cell right (toward the other) raises the penalty, so
    // its x-gradient is positive (descent pushes it away); mirrored for
    // the right cell.
    EXPECT_GT(res.cell_grad[0].x, 0.0);
    EXPECT_LT(res.cell_grad[1].x, 0.0);
}

TEST(DensityTest, OverflowDropsWhenSpread) {
    // Clustered cells overflow; spreading them to distinct bins removes it.
    std::vector<Vec2> clustered, spread;
    for (int i = 0; i < 64; ++i) {
        clustered.push_back({120.0 + (i % 8), 120.0 + (i / 8)});
        spread.push_back({16.0 + (i % 8) * 30.0, 16.0 + (i / 8) * 30.0});
    }
    const ElectroDensity ed(grid256());
    const double of_clustered = ed.evaluate(blob_design(clustered)).overflow;
    const double of_spread = ed.evaluate(blob_design(spread)).overflow;
    EXPECT_GT(of_clustered, 0.5);
    EXPECT_LT(of_spread, 0.05);
}

TEST(DensityTest, PenaltyDropsWhenSpread) {
    std::vector<Vec2> clustered, spread;
    for (int i = 0; i < 64; ++i) {
        clustered.push_back({120.0 + (i % 8), 120.0 + (i / 8)});
        spread.push_back({16.0 + (i % 8) * 30.0, 16.0 + (i / 8) * 30.0});
    }
    const ElectroDensity ed(grid256());
    EXPECT_GT(ed.evaluate(blob_design(clustered)).penalty,
              ed.evaluate(blob_design(spread)).penalty);
}

}  // namespace
}  // namespace rdp
