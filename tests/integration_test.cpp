// End-to-end integration: place with all three modes on a congested design,
// route, and check that the paper's qualitative ordering holds —
// routability-driven placement yields fewer proxy DRVs than wirelength-only
// placement, with comparable wirelength.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "eval/route_metrics.hpp"
#include "legal/tetris.hpp"
#include "place/global_placer.hpp"

namespace rdp {
namespace {

Design congested_design() {
    GeneratorConfig cfg;
    cfg.name = "e2e";
    cfg.seed = 2024;
    cfg.num_cells = 900;
    cfg.num_macros = 3;
    cfg.macro_area_frac = 0.12;
    cfg.utilization = 0.8;
    cfg.avg_net_degree = 2.8;
    cfg.nets_per_cell = 1.25;
    return generate_circuit(cfg);
}

PlacerConfig e2e_cfg(PlacerMode mode) {
    PlacerConfig cfg;
    cfg.mode = mode;
    cfg.grid_bins = 32;
    cfg.max_wl_iters = 250;
    cfg.stop_overflow = 0.10;
    cfg.max_route_iters = 6;
    cfg.inner_iters = 10;
    cfg.router.rrr_rounds = 1;
    cfg.dp.max_passes = 2;
    return cfg;
}

EvalMetrics run_mode(const Design& input, PlacerMode mode) {
    GlobalPlacer placer(e2e_cfg(mode));
    const PlaceResult res = placer.place(input);
    EXPECT_TRUE(is_legal(res.placed));
    EvalConfig ec;
    ec.grid_bins = 64;
    return evaluate_placement(res.placed, ec);
}

class EndToEnd : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        input_ = new Design(congested_design());
        wl_ = new EvalMetrics(run_mode(*input_, PlacerMode::WirelengthOnly));
        ours_ = new EvalMetrics(run_mode(*input_, PlacerMode::Ours));
    }
    static void TearDownTestSuite() {
        delete input_;
        delete wl_;
        delete ours_;
        input_ = nullptr;
        wl_ = nullptr;
        ours_ = nullptr;
    }
    static Design* input_;
    static EvalMetrics* wl_;
    static EvalMetrics* ours_;
};

Design* EndToEnd::input_ = nullptr;
EvalMetrics* EndToEnd::wl_ = nullptr;
EvalMetrics* EndToEnd::ours_ = nullptr;

TEST_F(EndToEnd, RoutabilityModeReducesDrvs) {
    // The headline effect (Table I): the routability-driven framework cuts
    // violations versus wirelength-only placement.
    EXPECT_LT(ours_->drvs, wl_->drvs);
}

TEST_F(EndToEnd, WirelengthStaysComparable) {
    // Paper: DRWL ratio ~1.00. Allow a modest band for the small testcase.
    EXPECT_LT(ours_->drwl, 1.35 * wl_->drwl);
}

TEST_F(EndToEnd, ViasStayComparable) {
    EXPECT_LT(static_cast<double>(ours_->vias), 1.35 * wl_->vias);
    EXPECT_GT(static_cast<double>(ours_->vias), 0.65 * wl_->vias);
}

TEST_F(EndToEnd, OverflowReduced) {
    EXPECT_LE(ours_->total_overflow, wl_->total_overflow);
}

}  // namespace
}  // namespace rdp
