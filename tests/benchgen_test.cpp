// Tests for the synthetic benchmark generator and the ISPD-2015-like suite:
// generated designs must hit their target statistics deterministically.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "benchgen/ispd_suite.hpp"
#include "db/design_stats.hpp"
#include "db/netlist_io.hpp"

#include <sstream>

namespace rdp {
namespace {

TEST(GeneratorTest, CountsMatchConfig) {
    GeneratorConfig cfg;
    cfg.num_cells = 1000;
    cfg.num_ios = 32;
    cfg.num_macros = 3;
    const Design d = generate_circuit(cfg);
    const DesignStats s = compute_stats(d);
    EXPECT_EQ(s.num_movable, 1000);
    EXPECT_EQ(s.num_fixed, 32);
    EXPECT_LE(s.num_macros, 3);
    EXPECT_GE(s.num_macros, 1);
    EXPECT_TRUE(d.validate().empty());
}

TEST(GeneratorTest, UtilizationNearTarget) {
    GeneratorConfig cfg;
    cfg.num_cells = 2000;
    cfg.utilization = 0.7;
    cfg.num_macros = 2;
    const Design d = generate_circuit(cfg);
    EXPECT_NEAR(d.utilization(), 0.7, 0.08);
}

TEST(GeneratorTest, NetDegreeDistribution) {
    GeneratorConfig cfg;
    cfg.num_cells = 3000;
    cfg.avg_net_degree = 2.7;
    cfg.max_net_degree = 20;
    const Design d = generate_circuit(cfg);
    const DesignStats s = compute_stats(d);
    EXPECT_NEAR(s.avg_net_degree, 2.7, 0.35);
    // Two-pin nets dominate.
    ASSERT_GT(s.degree_histogram.size(), 3u);
    EXPECT_GT(s.degree_histogram[2], s.degree_histogram[3]);
    // No net exceeds the cap.
    for (const Net& n : d.nets) EXPECT_LE(n.degree(), cfg.max_net_degree);
}

TEST(GeneratorTest, DeterministicForSeed) {
    GeneratorConfig cfg;
    cfg.num_cells = 500;
    cfg.seed = 42;
    const Design a = generate_circuit(cfg);
    const Design b = generate_circuit(cfg);
    std::ostringstream sa, sb;
    write_design(a, sa);
    write_design(b, sb);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(GeneratorTest, SeedsChangeNetlist) {
    GeneratorConfig cfg;
    cfg.num_cells = 500;
    cfg.seed = 1;
    const Design a = generate_circuit(cfg);
    cfg.seed = 2;
    const Design b = generate_circuit(cfg);
    std::ostringstream sa, sb;
    write_design(a, sa);
    write_design(b, sb);
    EXPECT_NE(sa.str(), sb.str());
}

TEST(GeneratorTest, MacrosInsideRegionAndDisjoint) {
    GeneratorConfig cfg;
    cfg.num_cells = 1000;
    cfg.num_macros = 6;
    cfg.macro_area_frac = 0.2;
    const Design d = generate_circuit(cfg);
    const auto macros = d.macro_cells();
    for (size_t i = 0; i < macros.size(); ++i) {
        const Rect a = d.cells[macros[i]].bbox();
        EXPECT_GE(a.lx, d.region.lx);
        EXPECT_LE(a.hx, d.region.hx);
        EXPECT_GE(a.ly, d.region.ly);
        EXPECT_LE(a.hy, d.region.hy);
        for (size_t j = i + 1; j < macros.size(); ++j)
            EXPECT_FALSE(a.intersects(d.cells[macros[j]].bbox()));
    }
}

TEST(GeneratorTest, MacroEdgesGridAligned) {
    // The Abacus writeback relies on blockage edges sitting on the
    // site/row grid.
    GeneratorConfig cfg;
    cfg.num_cells = 800;
    cfg.num_macros = 4;
    const Design d = generate_circuit(cfg);
    for (int m : d.macro_cells()) {
        const Rect b = d.cells[m].bbox();
        const double sx = (b.lx - d.region.lx) / d.site_width;
        const double sy = (b.ly - d.region.ly) / d.row_height;
        EXPECT_NEAR(sx, std::round(sx), 1e-6);
        EXPECT_NEAR(sy, std::round(sy), 1e-6);
    }
}

TEST(GeneratorTest, CellsHavePinsAndRails) {
    GeneratorConfig cfg;
    cfg.num_cells = 600;
    const Design d = generate_circuit(cfg);
    EXPECT_GT(d.num_pins(), d.num_cells());
    EXPECT_FALSE(d.pg_rails.empty());
    EXPECT_FALSE(d.rows.empty());
    // Average pins per cell around nets_per_cell * avg_degree.
    EXPECT_GT(d.average_pins_per_cell(), 1.5);
    EXPECT_LT(d.average_pins_per_cell(), 6.0);
}

TEST(SuiteTest, TwentyDesignsWithPaperNames) {
    const auto suite = ispd2015_suite();
    ASSERT_EQ(suite.size(), 20u);
    EXPECT_EQ(suite[0].name, "des_perf_1");
    EXPECT_EQ(suite[19].name, "superblue19");
    int daggered = 0;
    for (const auto& e : suite)
        if (e.fence_removed) ++daggered;
    EXPECT_EQ(daggered, 8);  // the daggered (†) designs of Table I
}

TEST(SuiteTest, ScaleControlsSize) {
    const auto full = suite_entry("fft_1", 1.0);
    const auto half = suite_entry("fft_1", 0.5);
    EXPECT_NEAR(half.gen.num_cells, full.gen.num_cells / 2, 2);
    EXPECT_THROW(suite_entry("nonexistent"), std::out_of_range);
}

TEST(SuiteTest, SuperbluesAreLargest) {
    const auto suite = ispd2015_suite();
    int fft_cells = 0, sb_cells = 0;
    for (const auto& e : suite) {
        if (e.name == "fft_1") fft_cells = e.gen.num_cells;
        if (e.name == "superblue12") sb_cells = e.gen.num_cells;
    }
    EXPECT_GT(sb_cells, 4 * fft_cells);
}

TEST(SuiteTest, AblationSubset) {
    const auto sub = ablation_suite();
    EXPECT_GE(sub.size(), 4u);
    for (const auto& e : sub) {
        // Every ablation design exists in the full suite.
        EXPECT_NO_THROW(suite_entry(e.name));
    }
}

TEST(SuiteTest, EntriesGenerateValidDesigns) {
    // Spot-check two entries end to end at small scale.
    for (const char* name : {"fft_a", "des_perf_a"}) {
        const SuiteEntry e = suite_entry(name, 0.3);
        const Design d = generate_circuit(e.gen);
        EXPECT_TRUE(d.validate().empty()) << name;
        EXPECT_EQ(d.name, name);
        if (e.gen.num_macros > 0) {
            EXPECT_FALSE(d.macro_cells().empty());
        }
    }
}

}  // namespace
}  // namespace rdp
