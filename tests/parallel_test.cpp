// Determinism contract of the parallel execution layer: chunk plans are a
// function of the problem size only, reductions combine in fixed chunk
// order, and every parallelized kernel — WA wirelength, density, Poisson,
// global router, net-moving gradient, and the full place->route->eval flow —
// produces bitwise-identical results for RDP_THREADS = 1, 2, and 8.

#include <gtest/gtest.h>

#include <vector>

#include "benchgen/generator.hpp"
#include "congestion/congestion_field.hpp"
#include "congestion/net_moving.hpp"
#include "density/electro_density.hpp"
#include "eval/route_metrics.hpp"
#include "place/global_placer.hpp"
#include "poisson/poisson.hpp"
#include "router/global_router.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "wirelength/hpwl.hpp"
#include "wirelength/wa_model.hpp"

namespace rdp {
namespace {

/// Restores the ambient thread count on scope exit.
struct ThreadGuard {
    int saved = par::max_threads();
    ~ThreadGuard() { par::set_max_threads(saved); }
};

/// Run `fn` under each thread count and require bitwise-equal results.
template <typename Fn>
void expect_thread_invariant(Fn&& fn) {
    ThreadGuard guard;
    par::set_max_threads(1);
    const auto base = fn();
    for (int t : {2, 8}) {
        par::set_max_threads(t);
        const auto got = fn();
        EXPECT_TRUE(got == base) << "result differs at " << t << " threads";
    }
}

TEST(ChunkPlanTest, CoversRangeExactlyOnce) {
    for (size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul, 65537ul}) {
        for (size_t grain : {1ul, 16ul, 4096ul}) {
            const par::ChunkPlan p = par::plan(n, grain);
            ASSERT_GE(p.num_chunks, 1u);
            EXPECT_EQ(p.begin(0), 0u);
            EXPECT_EQ(p.end(p.num_chunks - 1), n);
            for (size_t c = 0; c + 1 < p.num_chunks; ++c) {
                EXPECT_EQ(p.end(c), p.begin(c + 1));
                EXPECT_LT(p.begin(c), p.end(c));  // no empty chunks
            }
        }
    }
}

TEST(ChunkPlanTest, IndependentOfThreadCount) {
    ThreadGuard guard;
    par::set_max_threads(1);
    const par::ChunkPlan a = par::plan(100000, 64);
    par::set_max_threads(8);
    const par::ChunkPlan b = par::plan(100000, 64);
    EXPECT_EQ(a.num_chunks, b.num_chunks);
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
    ThreadGuard guard;
    par::set_max_threads(8);
    const size_t n = 100003;
    std::vector<int> hits(n, 0);
    par::parallel_for(n, 64, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) ++hits[i];
    });
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelReduceTest, SumIsThreadInvariant) {
    // Floating-point sums depend on grouping; the fixed chunk-order combine
    // must make them identical across thread counts.
    Rng rng(11);
    std::vector<double> xs(123457);
    for (auto& v : xs) v = rng.uniform(-1.0, 1.0);
    expect_thread_invariant([&] {
        return par::parallel_sum(xs.size(), 1024, [&](size_t b, size_t e) {
            double acc = 0.0;
            for (size_t i = b; i < e; ++i) acc += xs[i];
            return acc;
        });
    });
}

TEST(ParallelReduceTest, NestedParallelRunsInline) {
    ThreadGuard guard;
    par::set_max_threads(8);
    // A parallel region launched from inside a chunk must not deadlock and
    // must produce the same chunked result.
    const double nested = par::parallel_sum(64, 1, [&](size_t b, size_t e) {
        double acc = 0.0;
        for (size_t i = b; i < e; ++i) {
            acc += par::parallel_sum(256, 16, [&](size_t ib, size_t ie) {
                return static_cast<double>(ie - ib) * static_cast<double>(i + 1);
            });
        }
        return acc;
    });
    EXPECT_DOUBLE_EQ(nested, 256.0 * (64.0 * 65.0 / 2.0));
}

Design test_design(int cells, uint64_t seed) {
    GeneratorConfig cfg;
    cfg.name = "par-test";
    cfg.seed = seed;
    cfg.num_cells = cells;
    cfg.num_macros = 2;
    cfg.utilization = 0.8;
    return generate_circuit(cfg);
}

TEST(KernelDeterminismTest, WaWirelength) {
    const Design d = test_design(1500, 3);
    const WAWirelength wa(8.0);
    expect_thread_invariant([&] {
        const WirelengthResult r = wa.evaluate(d);
        return std::make_pair(r.total, r.cell_grad);
    });
}

TEST(KernelDeterminismTest, ElectroDensity) {
    const Design d = test_design(1500, 4);
    const BinGrid grid(d.region, 32, 32);
    const ElectroDensity ed(grid);
    expect_thread_invariant([&] {
        const DensityResult r = ed.evaluate(d);
        return std::make_tuple(r.penalty, r.overflow, r.cell_grad,
                               r.density.raw());
    });
}

TEST(KernelDeterminismTest, PoissonSolve) {
    Rng rng(7);
    GridF rho(64, 64);
    for (auto& v : rho) v = rng.uniform();
    const PoissonSolver solver(64, 64);
    expect_thread_invariant([&] {
        const PoissonSolution s = solver.solve(rho);
        return std::make_tuple(s.potential.raw(), s.field_x.raw(),
                               s.field_y.raw());
    });
}

TEST(KernelDeterminismTest, GlobalRouter) {
    const Design d = test_design(900, 5);
    const BinGrid grid(d.region, 32, 32);
    const GlobalRouter router(grid);
    expect_thread_invariant([&] {
        const RouteResult r = router.route(d);
        return std::make_tuple(r.wirelength_dbu, r.total_overflow,
                               r.num_vias, r.demand_h.raw(), r.demand_v.raw(),
                               r.bend_vias.raw(), r.pin_vias.raw());
    });
}

TEST(KernelDeterminismTest, NetMovingGradient) {
    const Design d = test_design(900, 6);
    const BinGrid grid(d.region, 32, 32);
    const RouteResult rr = GlobalRouter(grid).route(d);
    CongestionField field(grid);
    field.build(rr.congestion);
    const NetMovingGradient nm;
    expect_thread_invariant([&] {
        const NetMovingResult r = nm.compute(d, rr.congestion, field);
        return std::make_tuple(r.penalty, r.num_congested_cells,
                               r.virtual_cells_created, r.multi_pin_updates,
                               r.cell_grad);
    });
}

TEST(FullFlowDeterminismTest, PlaceRouteEvalBitwiseIdentical) {
    // The acceptance gate: a small-design full flow (place -> route -> eval)
    // must produce bitwise-identical HPWL, routed WL, total overflow,
    // #DRVias, and #DRVs under RDP_THREADS = 1, 2, and 8.
    const Design input = test_design(400, 2024);
    PlacerConfig pcfg;
    pcfg.mode = PlacerMode::Ours;
    pcfg.grid_bins = 32;
    pcfg.max_wl_iters = 60;
    pcfg.stop_overflow = 0.15;
    pcfg.max_route_iters = 2;
    pcfg.inner_iters = 5;
    pcfg.router.rrr_rounds = 1;
    pcfg.dp.max_passes = 1;
    EvalConfig ecfg;
    ecfg.grid_bins = 64;
    expect_thread_invariant([&] {
        GlobalPlacer placer(pcfg);
        const PlaceResult pr = placer.place(input);
        const double hpwl = total_hpwl(pr.placed);
        const EvalMetrics m = evaluate_placement(pr.placed, ecfg);
        return std::make_tuple(hpwl, m.drwl, m.total_overflow, m.vias,
                               m.drvs);
    });
}

}  // namespace
}  // namespace rdp
