#pragma once
// Non-firing fixture for rdp-hot-loop-alloc: the kernel-header contract —
// caller sizes all scratch, the kernel touches only raw spans.
#include <cstddef>

namespace rdp {

/// out and scratch are caller-owned and pre-sized to n; the kernel never
/// allocates.
inline void wa_partials(const double* x, std::size_t n, double* scratch,
                        double* out) {
    for (std::size_t i = 0; i < n; ++i) scratch[i] = x[i] * 2.0;
    for (std::size_t i = 0; i < n; ++i) out[i] = scratch[i] + x[i];
}

}  // namespace rdp
