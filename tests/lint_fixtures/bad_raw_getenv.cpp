// Firing fixture for rdp-raw-getenv: knobs read with raw getenv instead
// of the strict rdp::env parsing layer.
#include <cstdlib>

int threads_knob() {
    const char* v = std::getenv("RDP_THREADS");  // finding: std::getenv
    return v != nullptr ? 1 : 0;
}

const char* log_knob() {
    return ::getenv("RDP_LOG");  // finding: global-scope getenv
}
