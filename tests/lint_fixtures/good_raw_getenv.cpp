// Non-firing fixture for rdp-raw-getenv: every knob goes through the
// strict rdp::env layer (which is the one file allowed to call getenv).
namespace rdp::env {
long long int_or(const char* name, long long def, long long min_v,
                 long long max_v);
bool flag_or(const char* name, bool def);
}  // namespace rdp::env

int threads_knob() {
    return static_cast<int>(rdp::env::int_or("RDP_THREADS", 8, 1, 1024));
}

bool incremental_knob() {
    // the string "getenv" in prose must not fire
    return rdp::env::flag_or("RDP_INCREMENTAL", false);
}
