// Non-firing fixture for rdp-unordered-iteration: unordered containers
// used for lookup only; every iteration runs over a deterministic order.
#include <unordered_map>
#include <vector>

double total_area(const std::vector<int>& ids,
                  const std::unordered_map<int, double>& areas) {
    double sum = 0.0;
    for (int id : ids) {  // vector order is deterministic
        const auto it = areas.find(id);  // keyed lookup is fine
        if (it != areas.end()) sum += it->second;
    }
    return sum;
}

bool has_area(const std::unordered_map<int, double>& areas, int id) {
    return areas.count(id) != 0;
}
