// Non-firing fixture for rdp-raw-thread: parallelism through the par::
// layer, plus look-alike tokens the check must not trip on.
#include <cstddef>

namespace rdp::par {
template <typename Fn>
void parallel_for(std::size_t n, std::size_t grain, Fn&& fn);
}

thread_local int tls_scratch = 0;  // thread_local is not std::thread

namespace mypool {
struct thread {};  // another library's thread type is out of scope here
}

void scatter(double* out, std::size_t n) {
    rdp::par::parallel_for(n, 1024, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) out[i] = 0.0;
    });
    (void)tls_scratch;
    mypool::thread t;
    (void)t;
}
