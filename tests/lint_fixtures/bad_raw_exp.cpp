// Firing fixture for rdp-raw-exp: raw libm exp/fma calls outside
// util/simd.*. Each marked line must produce exactly one finding.
#include <cmath>

double wa_weight(double x, double gamma) {
    return std::exp(x / gamma);  // finding: raw std::exp
}

double fused(double a, double b, double c) {
    return std::fma(a, b, c);  // finding: unconditional fused op
}

float fused_f(float a, float b, float c) {
    return ::fmaf(a, b, c);  // finding: global-scope fmaf
}
