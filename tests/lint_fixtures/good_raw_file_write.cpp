// Non-firing fixture for rdp-raw-file-write: reads may use ifstream;
// writes go through rdp::io::atomic_write (the one sanctioned path).
#include <fstream>
#include <string>

namespace rdp::io {
bool atomic_write(const std::string& path, const std::string& data,
                  std::string* error);
}  // namespace rdp::io

std::string slurp(const std::string& path) {
    std::ifstream is(path);  // reads are fine
    std::string body((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return body;
}

bool publish(const std::string& path, const std::string& body) {
    // the word "fopen" in prose, and member calls like parser.fopen(),
    // must not fire
    std::string err;
    return rdp::io::atomic_write(path, body, &err);
}

struct FakeFs {
    bool fopen(const std::string&) { return true; }
};

bool member_named_fopen(FakeFs& fs) { return fs.fopen("x"); }
