// Firing fixture for rdp-unordered-iteration: hash-order iteration
// feeding an order-dependent floating-point accumulation.
#include <unordered_map>
#include <unordered_set>

double total_area(const std::unordered_map<int, double>& areas) {
    double sum = 0.0;
    for (const auto& kv : areas) {  // finding: range-for over hash order
        sum += kv.second;
    }
    return sum;
}

int count_even(const std::unordered_set<int>& ids) {
    int n = 0;
    for (auto it = ids.begin(); it != ids.end(); ++it) {  // finding: begin()
        if (*it % 2 == 0) ++n;
    }
    return n;
}
