// Non-firing fixture for rdp-raw-exp: the blessed patterns plus the
// look-alikes the check must not trip on.
namespace rdp::simd {
double stable_exp(double x);
double mul_add(double a, double b, double c);
}  // namespace rdp::simd

namespace mymath {
double exp(double x);  // some other namespace's exp is not libm's
}

struct Evaluator {
    double exp(double x) const { return x; }  // member named exp
};

double wa_weight(double x, double gamma) {
    // The one legal exp: bitwise identical across SIMD backends.
    return rdp::simd::stable_exp(x / gamma);
}

double other(double x) {
    Evaluator e;
    // std::exp mentioned in a comment and in a string must not fire:
    // "call std::exp(x) here" is prose, not code.
    const char* doc = "never call std::exp(x) directly";
    (void)doc;
    return mymath::exp(x) + e.exp(x) + rdp::simd::mul_add(x, x, x);
}
