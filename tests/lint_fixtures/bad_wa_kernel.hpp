#pragma once
// Firing fixture for rdp-hot-loop-alloc. The file name deliberately ends
// with wa_kernel.hpp so the path-scoped check applies to it.
#include <cstddef>
#include <vector>

namespace rdp {

inline void wa_partials(const double* x, std::size_t n,
                        std::vector<double>& out) {
    std::vector<double> scratch;  // finding: owning container in a kernel
    scratch.reserve(n);           // finding: growth call
    for (std::size_t i = 0; i < n; ++i) {
        scratch.push_back(x[i]);  // finding: growth call in the hot loop
    }
    double* tmp = new double[8];  // finding: new-expression
    out.resize(n);                // finding: growth call on the output
    out[0] = scratch[0] + tmp[0];
    delete[] tmp;
}

}  // namespace rdp
