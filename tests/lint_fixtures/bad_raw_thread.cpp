// Firing fixture for rdp-raw-thread: ad-hoc threading outside the
// deterministic rdp::par:: chunk layer.
#include <future>
#include <thread>

void scatter_async(double* out, int n) {
    std::thread worker([out, n] {  // finding: raw std::thread
        for (int i = 0; i < n; ++i) out[i] = 0.0;
    });
    worker.join();
}

int eval_async() {
    auto f = std::async([] { return 1; });  // finding: std::async
    return f.get();
}
