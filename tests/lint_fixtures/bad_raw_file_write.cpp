// Firing fixture for rdp-raw-file-write: files opened for writing
// directly instead of being published through rdp::io::atomic_write.
// The #include lines themselves must NOT fire (preprocessor directive).
#include <cstdio>
#include <fstream>
#include <string>

void dump_report(const std::string& path, const std::string& body) {
    std::ofstream os(path);  // finding: std::ofstream
    os << body;
}

void rewrite_in_place(const std::string& path) {
    std::fstream f(path);  // finding: std::fstream
    f << "patched";
}

void dump_c_style(const char* path) {
    std::FILE* f = fopen(path, "wb");  // finding: fopen call
    if (f != nullptr) std::fclose(f);
}
