// Tests for the routability-stage machinery added around the paper's
// techniques: the inflation area budget, the severity-weighted overflow,
// and the behavior of the outer loop's keep-best guarantee.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "eval/route_metrics.hpp"
#include "grid/congestion_map.hpp"
#include "place/global_placer.hpp"
#include "place/objective.hpp"
#include "place/routability_loop.hpp"

namespace rdp {
namespace {

TEST(WeightedOverflowTest, CountsOnlyBeyondSlack) {
    const BinGrid g({0, 0, 40, 40}, 4, 4);
    GridF dmd(4, 4, 0.0), cap(4, 4, 10.0);
    dmd.at(0, 0) = 11.0;  // util 1.1: inside the 1.2 slack -> no contribution
    dmd.at(1, 1) = 15.0;  // util 1.5: over = 15 - 12 = 3, weight 1.5^2
    const CongestionMap m(g, dmd, cap);
    EXPECT_DOUBLE_EQ(m.weighted_overflow(1.2, 2.0), 3.0 * 1.5 * 1.5);
    // With zero slack and exponent it reduces to plain overflow.
    EXPECT_DOUBLE_EQ(m.weighted_overflow(1.0, 0.0), 1.0 + 5.0);
    EXPECT_DOUBLE_EQ(m.weighted_overflow(1.0, 0.0), m.total_overflow());
}

TEST(WeightedOverflowTest, SeverityOrdersHotspots) {
    // Same total overflow, different concentration: the concentrated map
    // must score worse.
    const BinGrid g({0, 0, 40, 40}, 4, 4);
    GridF cap(4, 4, 10.0);
    GridF spread(4, 4, 0.0), hot(4, 4, 0.0);
    for (int i = 0; i < 4; ++i) spread.at(i, 0) = 15.0;  // 4 cells at 1.5x
    hot.at(0, 0) = 30.0;                                  // 1 cell at 3.0x
    hot.at(1, 0) = 10.0;
    hot.at(2, 0) = 10.0;
    hot.at(3, 0) = 10.0;
    const CongestionMap ms(g, spread, cap), mh(g, hot, cap);
    ASSERT_DOUBLE_EQ(ms.total_overflow(), mh.total_overflow());
    EXPECT_GT(mh.weighted_overflow(), ms.weighted_overflow());
}

/// Design with two real movable cells and two fillers.
Design budget_design() {
    Design d;
    d.region = {0, 0, 100, 100};
    d.add_cell("a", 10, 10, CellKind::Movable, {20, 20});  // area 100
    d.add_cell("b", 20, 10, CellKind::Movable, {60, 60});  // area 200
    d.add_cell("f0", 10, 10, CellKind::Movable, {40, 40});
    d.add_cell("f1", 10, 10, CellKind::Movable, {80, 80});
    return d;
}

TEST(BudgetInflationTest, WithinBudgetPassesThrough) {
    Design d = budget_design();
    // Raw extra = 100*0.2 + 200*0.1 = 40 <= budget 0.8 * 200 = 160.
    std::vector<double> r = {1.2, 1.1, 1.0, 1.0};
    const double filler_ratio = budget_inflation(d, 2, r, 0.8);
    EXPECT_DOUBLE_EQ(r[0], 1.2);
    EXPECT_DOUBLE_EQ(r[1], 1.1);
    // Fillers shrink by exactly the consumed 40 of 200 area.
    EXPECT_NEAR(filler_ratio, 1.0 - 40.0 / 200.0, 1e-12);
    EXPECT_DOUBLE_EQ(r[2], filler_ratio);
    EXPECT_DOUBLE_EQ(r[3], filler_ratio);
}

TEST(BudgetInflationTest, OverBudgetScalesExcess) {
    Design d = budget_design();
    // Raw extra = 100*1.0 + 200*1.0 = 300 > budget 0.5 * 200 = 100.
    std::vector<double> r = {2.0, 2.0, 1.0, 1.0};
    budget_inflation(d, 2, r, 0.5);
    // Excesses scaled by 100/300.
    EXPECT_NEAR(r[0], 1.0 + 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(r[1], 1.0 + 1.0 / 3.0, 1e-12);
    // Area check: consumed equals the full budget.
    const double consumed = 100 * (r[0] - 1.0) + 200 * (r[1] - 1.0);
    EXPECT_NEAR(consumed, 100.0, 1e-9);
    EXPECT_NEAR(r[2], 1.0 - 100.0 / 200.0, 1e-12);
}

TEST(BudgetInflationTest, ExtraAreaReducesBudget) {
    Design d = budget_design();
    std::vector<double> r = {2.0, 1.0, 1.0, 1.0};  // raw extra = 100
    // Budget = 0.8*200 - extra 100 = 60 -> scale 0.6.
    budget_inflation(d, 2, r, 0.8, 100.0);
    EXPECT_NEAR(r[0], 1.6, 1e-12);
    // Fillers absorb the inflated 60 plus the extra 100.
    EXPECT_NEAR(r[2], 1.0 - 160.0 / 200.0, 1e-12);
}

TEST(BudgetInflationTest, NoFillersNoInflation) {
    Design d = budget_design();
    d.cells.resize(2);  // drop fillers
    std::vector<double> r = {2.0, 2.0};
    const double fr = budget_inflation(d, 2, r, 0.8);
    EXPECT_DOUBLE_EQ(fr, 1.0);
    // Budget is zero -> all excess removed.
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 1.0);
}

TEST(BudgetInflationTest, FillerRatioFloored) {
    Design d = budget_design();
    std::vector<double> r = {1.0, 1.0, 1.0, 1.0};
    // Extra area far beyond the fillers: ratio clamps at the floor.
    const double fr = budget_inflation(d, 2, r, 1.5, 1e6);
    EXPECT_NEAR(fr, 0.05, 1e-12);
}

TEST(RoutabilityLoopTest, NeverEndsWorseThanEntry) {
    // The keep-best guarantee: the routability stage's final placement
    // must not route worse (severity-weighted) than its entry state.
    GeneratorConfig gc;
    gc.seed = 55;
    gc.num_cells = 500;
    gc.utilization = 0.78;
    gc.num_macros = 2;
    Design d = generate_circuit(gc);

    PlacerConfig cfg;
    cfg.mode = PlacerMode::Ours;
    cfg.grid_bins = 32;
    cfg.max_wl_iters = 120;
    cfg.max_route_iters = 3;
    cfg.inner_iters = 6;
    cfg.router.rrr_rounds = 1;

    // Entry state: a full wirelength-only placement.
    PlacerConfig wl_cfg = cfg;
    wl_cfg.mode = PlacerMode::WirelengthOnly;
    Design work = GlobalPlacer(wl_cfg).place(d).placed;

    const BinGrid grid(work.region, 32, 32);
    GlobalRouter router(grid, cfg.router);
    const double entry =
        router.route(work).congestion.weighted_overflow();

    const std::vector<int> movable = work.movable_cells();
    PlacementObjective obj(grid, cfg.density, cfg.netmove,
                           4.0 * grid.bin_w());
    obj.set_lambda1(1.0);
    run_routability_stage(work, movable, obj, cfg, {}, work.num_cells());
    const double exit_ov =
        router.route(work).congestion.weighted_overflow();
    EXPECT_LE(exit_ov, entry * 1.0 + 1e-6);
}

TEST(EffectiveLayersTest, CapacityScalesWithGcellSize) {
    GeneratorConfig gc;
    gc.num_cells = 100;
    const Design d = generate_circuit(gc);
    RouterConfig rc;
    const GlobalRouter coarse(BinGrid(d.region, 16, 16), rc);
    const GlobalRouter fine(BinGrid(d.region, 32, 32), rc);
    const auto lc = coarse.effective_layers();
    const auto lf = fine.effective_layers();
    ASSERT_EQ(lc.size(), lf.size());
    for (size_t i = 0; i < lc.size(); ++i) {
        EXPECT_NEAR(lc[i].capacity, 2.0 * lf[i].capacity, 1e-9)
            << "layer " << i;
        EXPECT_EQ(lc[i].dir, lf[i].dir);
    }
}

TEST(InflationGainTest, GainScalesFirstStep) {
    // With gain g, dr^1 = g * C^1.
    Design d;
    d.region = {0, 0, 40, 40};
    d.add_cell("c", 2, 8, CellKind::Movable, {5, 5});
    const BinGrid g({0, 0, 40, 40}, 4, 4);
    GridF dmd(4, 4, 0.0), cap(4, 4, 10.0);
    dmd.at(0, 0) = 20.0;  // congestion 1.0
    const CongestionMap cmap(g, dmd, cap);
    MomentumInflationConfig cfg;
    cfg.congestion_gain = 0.25;
    MomentumInflation mi(1, cfg);
    mi.update(d, cmap);
    EXPECT_DOUBLE_EQ(mi.delta_r()[0], 0.25);
    EXPECT_DOUBLE_EQ(mi.ratios()[0], 1.25);
}

}  // namespace
}  // namespace rdp
