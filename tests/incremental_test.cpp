// Equivalence property tests of the incremental congestion-estimation
// state (router/incremental.hpp, congestion/rudy.hpp): under random
// perturbation sequences — move cells, roll positions back, resize the
// grid, change the router config — a route/RUDY call through a persistent
// state must be bitwise identical to a from-scratch call, at every thread
// count, while actually reusing the cache; and a corrupted cache must trip
// the incremental-route auditor.

#include <gtest/gtest.h>

#include <vector>

#include "benchgen/generator.hpp"
#include "congestion/rudy.hpp"
#include "router/global_router.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace rdp {
namespace {

Design small_design(uint64_t seed = 7, int cells = 400) {
    GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.num_cells = cells;
    cfg.num_macros = 2;
    return generate_circuit(cfg);
}

/// Move `count` movable cells by up to `frac` of the die extent (clamped
/// to the region). Deterministic in `rng`.
void perturb(Design& d, Rng& rng, int count, double frac) {
    std::vector<int> movable;
    for (int i = 0; i < d.num_cells(); ++i)
        if (d.cells[static_cast<size_t>(i)].movable()) movable.push_back(i);
    ASSERT_FALSE(movable.empty());
    const double dx = frac * d.region.width();
    const double dy = frac * d.region.height();
    for (int k = 0; k < count; ++k) {
        const int ci = movable[static_cast<size_t>(rng.uniform_int(
            0, static_cast<int>(movable.size()) - 1))];
        Cell& c = d.cells[static_cast<size_t>(ci)];
        c.pos = {std::clamp(c.pos.x + rng.uniform(-dx, dx), d.region.lx,
                            d.region.hx),
                 std::clamp(c.pos.y + rng.uniform(-dy, dy), d.region.ly,
                            d.region.hy)};
    }
}

/// Bitwise comparison of everything a RouteResult reports (the inc_*
/// reconciliation counters excepted — those describe the cache, not the
/// routing).
void expect_same_routing(const RouteResult& a, const RouteResult& b) {
    EXPECT_TRUE(a.demand_h == b.demand_h);
    EXPECT_TRUE(a.demand_v == b.demand_v);
    EXPECT_TRUE(a.bend_vias == b.bend_vias);
    EXPECT_TRUE(a.pin_vias == b.pin_vias);
    EXPECT_TRUE(a.congestion.demand() == b.congestion.demand());
    EXPECT_TRUE(a.congestion.capacity() == b.congestion.capacity());
    EXPECT_EQ(a.wirelength_dbu, b.wirelength_dbu);
    EXPECT_EQ(a.num_vias, b.num_vias);
    EXPECT_EQ(a.total_overflow, b.total_overflow);
    EXPECT_EQ(a.overflowed_gcells, b.overflowed_gcells);
    EXPECT_EQ(a.rrr_rounds_executed, b.rrr_rounds_executed);
    EXPECT_EQ(a.rrr_rounds_stalled, b.rrr_rounds_stalled);
}

TEST(IncrementalRouteTest, MatchesFullRouteAcrossPerturbations) {
    Design d = small_design();
    const BinGrid grid(d.region, 32, 32);
    const GlobalRouter router(grid);
    IncrementalRouteState state;
    state.rebuild_epoch = 0;  // exercise the cache on every call

    Rng rng(21);
    for (int step = 0; step < 6; ++step) {
        if (step > 0) perturb(d, rng, 8, 0.05);
        const RouteResult inc = router.route(d, &state);
        const RouteResult full = router.route(d);
        expect_same_routing(inc, full);
        EXPECT_EQ(inc.inc_full_rebuild, step == 0);
        if (step > 0) {
            // A handful of moved cells must not invalidate everything.
            EXPECT_LT(inc.inc_conns_rerouted, inc.inc_conns_total);
        }
    }
    EXPECT_EQ(state.stats.full_rebuilds, 1);
    EXPECT_GT(state.stats.cache_hits, 0);
}

TEST(IncrementalRouteTest, UnchangedPlacementReroutesNothing) {
    const Design d = small_design();
    const BinGrid grid(d.region, 32, 32);
    const GlobalRouter router(grid);
    IncrementalRouteState state;
    state.rebuild_epoch = 0;

    const RouteResult first = router.route(d, &state);
    EXPECT_TRUE(first.inc_full_rebuild);
    const RouteResult second = router.route(d, &state);
    EXPECT_FALSE(second.inc_full_rebuild);
    EXPECT_EQ(second.inc_conns_rerouted, 0);
    EXPECT_EQ(second.inc_nets_rerouted, 0);
    expect_same_routing(first, second);
}

TEST(IncrementalRouteTest, PositionRollbackStaysConsistent) {
    // Returning to previously-seen positions through the *same* cache (no
    // invalidate) must still equal a fresh route: the signature diff, not
    // the trajectory, decides what gets rerouted.
    Design d = small_design();
    const BinGrid grid(d.region, 32, 32);
    const GlobalRouter router(grid);
    IncrementalRouteState state;
    state.rebuild_epoch = 0;

    std::vector<Vec2> saved(d.cells.size());
    for (size_t i = 0; i < d.cells.size(); ++i) saved[i] = d.cells[i].pos;

    Rng rng(33);
    (void)router.route(d, &state);
    perturb(d, rng, 20, 0.1);
    (void)router.route(d, &state);
    for (size_t i = 0; i < d.cells.size(); ++i) d.cells[i].pos = saved[i];

    const RouteResult inc = router.route(d, &state);
    expect_same_routing(inc, router.route(d));
    // invalidate() forces a rebuild and must land on the same result.
    state.invalidate();
    const RouteResult rebuilt = router.route(d, &state);
    EXPECT_TRUE(rebuilt.inc_full_rebuild);
    expect_same_routing(inc, rebuilt);
}

TEST(IncrementalRouteTest, GridResizeAndConfigChangeForceRebuild) {
    Design d = small_design();
    IncrementalRouteState state;
    state.rebuild_epoch = 0;

    const BinGrid grid32(d.region, 32, 32);
    const GlobalRouter r32(grid32);
    (void)r32.route(d, &state);

    // Same state against a resized grid: full rebuild, fresh-equal result.
    const BinGrid grid48(d.region, 48, 48);
    const GlobalRouter r48(grid48);
    const RouteResult resized = r48.route(d, &state);
    EXPECT_TRUE(resized.inc_full_rebuild);
    expect_same_routing(resized, r48.route(d));

    // Relaxed router config (the recovery ladder's relax-router rung):
    // the config key must force a rebuild even at identical dimensions.
    RouterConfig relaxed;
    relaxed.overflow_penalty *= 0.5;
    for (LayerSpec& l : relaxed.layers) l.capacity /= 0.5;
    const GlobalRouter r48r(grid48, relaxed);
    const RouteResult relaxed_rr = r48r.route(d, &state);
    EXPECT_TRUE(relaxed_rr.inc_full_rebuild);
    expect_same_routing(relaxed_rr, r48r.route(d));
}

TEST(IncrementalRouteTest, RebuildEpochFiresDeterministically) {
    const Design d = small_design();
    const BinGrid grid(d.region, 32, 32);
    const GlobalRouter router(grid);
    IncrementalRouteState state;
    state.rebuild_epoch = 2;

    // Call 0 rebuilds (invalid state); afterwards every second call with a
    // valid cache hits the epoch, independent of placement changes.
    const bool expected[] = {true, false, true, false, true, false};
    for (size_t i = 0; i < std::size(expected); ++i) {
        EXPECT_EQ(router.route(d, &state).inc_full_rebuild, expected[i])
            << "call " << i;
    }
    EXPECT_EQ(state.stats.full_rebuilds, 3);
}

TEST(IncrementalRouteTest, ThreadCountInvariant) {
    // The whole perturbation sequence, replayed per thread count, must
    // yield bitwise-identical demand maps and scalar metrics.
    const int saved = par::max_threads();
    auto run_sequence = [&] {
        Design d = small_design();
        const BinGrid grid(d.region, 32, 32);
        const GlobalRouter router(grid);
        IncrementalRouteState state;
        state.rebuild_epoch = 3;
        Rng rng(55);
        RouteResult last;
        for (int step = 0; step < 5; ++step) {
            if (step > 0) perturb(d, rng, 10, 0.08);
            last = router.route(d, &state);
        }
        return last;
    };
    par::set_max_threads(1);
    const RouteResult base = run_sequence();
    for (int t : {2, 8}) {
        par::set_max_threads(t);
        expect_same_routing(run_sequence(), base);
    }
    par::set_max_threads(saved);
}

TEST(IncrementalRouteTest, CorruptedCacheTripsIncrementalRouteAuditor) {
    if (!audit_enabled()) GTEST_SKIP() << "audits disabled in this build";
    Design d = small_design();
    const BinGrid grid(d.region, 32, 32);
    const GlobalRouter router(grid);
    IncrementalRouteState state;
    state.rebuild_epoch = 0;

    (void)router.route(d, &state);
    // Stale-cache corruption: the maintained demand no longer equals the
    // cached routes. The next reconciliation must throw, naming the
    // incremental-route invariant; invalidate() must clear the condition.
    state.dem_h.at(0, 0) += 1.0;
    try {
        (void)router.route(d, &state);
        FAIL() << "corrupted incremental demand was not detected";
    } catch (const AuditFailure& e) {
        EXPECT_EQ(e.invariant(), "incremental-route");
    }
    state.invalidate();
    EXPECT_NO_THROW((void)router.route(d, &state));
}

TEST(IncrementalRudyTest, MatchesFullRudyAcrossPerturbations) {
    Design d = small_design();
    const BinGrid grid(d.region, 32, 32);
    IncrementalRudyState state;

    Rng rng(77);
    for (int step = 0; step < 6; ++step) {
        if (step > 0) perturb(d, rng, 8, 0.05);
        const CongestionMap inc =
            rudy_congestion(d, grid, {}, {}, &state);
        const CongestionMap full = rudy_congestion(d, grid, {}, {});
        EXPECT_TRUE(inc.demand() == full.demand());
        EXPECT_TRUE(inc.capacity() == full.capacity());
        // The maintained wire map must equal rudy_map from scratch too.
        EXPECT_TRUE(state.wire == rudy_map(d, grid, {}));
        EXPECT_TRUE(state.pins == pin_rudy_map(d, grid, {}));
    }
    EXPECT_EQ(state.stats.full_rebuilds, 1);
    // The dirty-bin path must have skipped most of the grid.
    EXPECT_LT(state.stats.bins_recomputed,
              state.stats.calls * static_cast<long long>(32 * 32));
}

TEST(IncrementalRudyTest, GridChangeRebuildsAndRollbackStaysConsistent) {
    Design d = small_design();
    IncrementalRudyState state;
    const BinGrid grid32(d.region, 32, 32);
    const BinGrid grid48(d.region, 48, 48);

    std::vector<Vec2> saved(d.cells.size());
    for (size_t i = 0; i < d.cells.size(); ++i) saved[i] = d.cells[i].pos;

    (void)rudy_congestion(d, grid32, {}, {}, &state);
    Rng rng(91);
    perturb(d, rng, 15, 0.1);
    (void)rudy_congestion(d, grid32, {}, {}, &state);

    // Grid resize: key mismatch -> rebuild against the new geometry.
    const CongestionMap on48 = rudy_congestion(d, grid48, {}, {}, &state);
    EXPECT_TRUE(on48.demand() == rudy_congestion(d, grid48).demand());
    EXPECT_EQ(state.stats.full_rebuilds, 2);

    // Roll positions back and return to the old grid: rebuild again,
    // bitwise equal to scratch.
    for (size_t i = 0; i < d.cells.size(); ++i) d.cells[i].pos = saved[i];
    const CongestionMap back = rudy_congestion(d, grid32, {}, {}, &state);
    EXPECT_TRUE(back.demand() == rudy_congestion(d, grid32).demand());
    EXPECT_TRUE(state.wire == rudy_map(d, grid32, {}));
}

}  // namespace
}  // namespace rdp
