// Integration tests for the global placement engine: objective wiring,
// filler handling, stage-1 spreading, and the routability loop.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "legal/tetris.hpp"
#include "place/global_placer.hpp"
#include "place/objective.hpp"
#include "place/routability_loop.hpp"
#include "wirelength/hpwl.hpp"

namespace rdp {
namespace {

GeneratorConfig small_cfg(uint64_t seed = 7) {
    GeneratorConfig cfg;
    cfg.name = "placer-test";
    cfg.seed = seed;
    cfg.num_cells = 400;
    cfg.num_macros = 2;
    cfg.macro_area_frac = 0.1;
    cfg.utilization = 0.7;
    cfg.num_ios = 16;
    return cfg;
}

PlacerConfig fast_cfg(PlacerMode mode) {
    PlacerConfig cfg;
    cfg.mode = mode;
    cfg.grid_bins = 32;
    cfg.max_wl_iters = 120;
    cfg.stop_overflow = 0.12;
    cfg.max_route_iters = 3;
    cfg.inner_iters = 6;
    cfg.router.rrr_rounds = 1;
    cfg.dp.max_passes = 1;
    return cfg;
}

TEST(PlacerTest, AddFillersFillsWhitespace) {
    Design d = generate_circuit(small_cfg());
    PlacerConfig cfg;
    cfg.density.target_density = 0.9;
    cfg.filler_ratio = 1.0;
    const int before = d.num_cells();
    const int first = GlobalPlacer::add_fillers(d, cfg, 1);
    EXPECT_EQ(first, before);
    EXPECT_GT(d.num_cells(), before);
    // Filler area ~ target * free - movable.
    double filler_area = 0.0;
    for (int i = first; i < d.num_cells(); ++i) {
        EXPECT_TRUE(d.cells[i].movable());
        EXPECT_TRUE(d.cells[i].pins.empty());
        filler_area += d.cells[i].area();
    }
    const double spare = 0.9 * (d.region.area() - d.total_fixed_area()) -
                         (d.total_movable_area() - filler_area);
    EXPECT_NEAR(filler_area, spare, spare * 0.05 + 10.0);
}

TEST(PlacerTest, NoFillersWhenDense) {
    GeneratorConfig g = small_cfg();
    g.utilization = 0.95;
    Design d = generate_circuit(g);
    PlacerConfig cfg;
    cfg.density.target_density = 0.8;  // target below actual utilization
    const int before = d.num_cells();
    GlobalPlacer::add_fillers(d, cfg, 1);
    EXPECT_EQ(d.num_cells(), before);
}

TEST(PlacerTest, WirelengthStageSpreadsCells) {
    const Design input = generate_circuit(small_cfg());
    GlobalPlacer placer(fast_cfg(PlacerMode::WirelengthOnly));
    const PlaceResult res = placer.place(input);
    ASSERT_FALSE(res.overflow_history.empty());
    // Overflow must drop substantially from the centered start.
    EXPECT_LT(res.overflow_history.back(),
              0.6 * res.overflow_history.front());
    EXPECT_GT(res.wl_iters, 20);
    EXPECT_EQ(res.route_outer_iters, 0);
}

TEST(PlacerTest, ResultIsLegalAndFillerFree) {
    const Design input = generate_circuit(small_cfg());
    GlobalPlacer placer(fast_cfg(PlacerMode::Ours));
    const PlaceResult res = placer.place(input);
    EXPECT_EQ(res.placed.num_cells(), input.num_cells());
    EXPECT_TRUE(is_legal(res.placed));
    EXPECT_EQ(res.legal_stats.cells_failed, 0);
    EXPECT_GT(res.hpwl_final, 0.0);
    EXPECT_GT(res.place_seconds, 0.0);
}

TEST(PlacerTest, RoutabilityStageRuns) {
    const Design input = generate_circuit(small_cfg());
    GlobalPlacer placer(fast_cfg(PlacerMode::Ours));
    const PlaceResult res = placer.place(input);
    EXPECT_GT(res.route_outer_iters, 0);
    EXPECT_EQ(res.congestion_history.size(),
              static_cast<size_t>(res.route_outer_iters));
    EXPECT_EQ(res.penalty_history.size(),
              static_cast<size_t>(res.route_outer_iters));
}

TEST(PlacerTest, DeterministicForFixedSeed) {
    const Design input = generate_circuit(small_cfg());
    GlobalPlacer placer(fast_cfg(PlacerMode::Ours));
    const PlaceResult a = placer.place(input);
    const PlaceResult b = placer.place(input);
    EXPECT_DOUBLE_EQ(a.hpwl_final, b.hpwl_final);
    for (int i = 0; i < a.placed.num_cells(); ++i)
        EXPECT_EQ(a.placed.cells[i].pos, b.placed.cells[i].pos);
}

TEST(PlacerTest, AllModesComplete) {
    const Design input = generate_circuit(small_cfg());
    for (const PlacerMode mode : {PlacerMode::WirelengthOnly,
                                  PlacerMode::RouteBaseline,
                                  PlacerMode::Ours}) {
        GlobalPlacer placer(fast_cfg(mode));
        const PlaceResult res = placer.place(input);
        EXPECT_TRUE(is_legal(res.placed));
        EXPECT_GT(res.hpwl_final, 0.0);
    }
}

TEST(PlacerTest, HpwlComparableAcrossModes) {
    // Routability techniques must not blow up wirelength (paper: DRWL
    // ratios ~1.00 across all three columns).
    const Design input = generate_circuit(small_cfg());
    const double wl_only =
        GlobalPlacer(fast_cfg(PlacerMode::WirelengthOnly)).place(input)
            .hpwl_final;
    const double ours =
        GlobalPlacer(fast_cfg(PlacerMode::Ours)).place(input).hpwl_final;
    EXPECT_LT(ours, 1.5 * wl_only);
    EXPECT_GT(ours, 0.5 * wl_only);
}

TEST(MakeInflationSchemeTest, MatchesModeAndToggles) {
    PlacerConfig cfg;
    cfg.mode = PlacerMode::Ours;
    cfg.enable_mci = true;
    EXPECT_STREQ(make_inflation_scheme(cfg, 4)->name(), "momentum");
    cfg.enable_mci = false;
    EXPECT_STREQ(make_inflation_scheme(cfg, 4)->name(), "monotone");
    cfg.mode = PlacerMode::RouteBaseline;
    cfg.enable_mci = true;  // ignored outside Ours
    EXPECT_STREQ(make_inflation_scheme(cfg, 4)->name(), "monotone");
}

TEST(ObjectiveTest, GradientCombinesTerms) {
    Design d = generate_circuit(small_cfg());
    const std::vector<int> movable = d.movable_cells();
    std::vector<Vec2> pos(movable.size());
    for (size_t i = 0; i < movable.size(); ++i)
        pos[i] = d.cells[movable[i]].pos;

    const BinGrid grid(d.region, 32, 32);
    PlacementObjective obj(grid, {}, {}, 4.0 * grid.bin_w());
    obj.set_lambda1(0.0);
    std::vector<Vec2> g_wl_only;
    const ObjectiveTerms t0 = obj.evaluate(d, movable, pos, g_wl_only);
    EXPECT_GT(t0.wirelength, 0.0);
    EXPECT_GT(t0.wl_grad_l1, 0.0);
    EXPECT_GT(t0.density_grad_l1, 0.0);
    EXPECT_DOUBLE_EQ(t0.lambda2, 0.0);  // no congestion term attached

    obj.set_lambda1(5.0);
    std::vector<Vec2> g_with_density;
    obj.evaluate(d, movable, pos, g_with_density);
    // Density contribution changes the gradient.
    double diff = 0.0;
    for (size_t i = 0; i < movable.size(); ++i)
        diff += (g_with_density[i] - g_wl_only[i]).norm1();
    EXPECT_GT(diff, 0.0);
}

TEST(RoutabilityStageTest, StandaloneRunImprovesOrHoldsOverflow) {
    Design d = generate_circuit(small_cfg(9));
    // Pre-spread with the wirelength stage.
    PlacerConfig cfg = fast_cfg(PlacerMode::Ours);
    GlobalPlacer placer(cfg);
    PlaceResult pre = placer.place(d);
    // Run the routability stage directly on the legalized result.
    Design work = pre.placed;
    const std::vector<int> movable = work.movable_cells();
    const BinGrid grid(work.region, 32, 32);
    PlacementObjective obj(grid, cfg.density, cfg.netmove,
                           4.0 * grid.bin_w());
    obj.set_lambda1(1.0);
    const RoutabilityStats rs =
        run_routability_stage(work, movable, obj, cfg, {}, work.num_cells());
    EXPECT_GT(rs.outer_iters, 0);
    ASSERT_FALSE(rs.total_overflow.empty());
    ASSERT_EQ(rs.mean_inflation.size(), rs.total_overflow.size());
    for (const double m : rs.mean_inflation) EXPECT_GE(m, 0.9);
}

}  // namespace
}  // namespace rdp
