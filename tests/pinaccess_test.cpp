// Tests for PG rail generation, selection (macro cutting + length filter,
// paper Fig. 4), and the dynamic pin-accessibility density (Eq. 13-15).

#include <gtest/gtest.h>

#include "pinaccess/dynamic_density.hpp"
#include "pinaccess/pg_rails.hpp"
#include "pinaccess/rail_select.hpp"

namespace rdp {
namespace {

Design design_with_macro() {
    Design d;
    d.name = "pa";
    d.region = {0, 0, 200, 160};
    d.row_height = 8.0;
    d.site_width = 1.0;
    d.build_rows();
    d.add_cell("macro", 60, 40, CellKind::Macro, {100, 80});
    return d;
}

TEST(PgRailsTest, HorizontalRailPerRowBoundary) {
    Design d = design_with_macro();
    PGRailConfig cfg;
    cfg.vertical_straps = 0;
    build_pg_rails(d, cfg);
    // 20 rows -> 20 bottom boundaries + 1 top = 21 horizontal rails.
    ASSERT_EQ(d.pg_rails.size(), 21u);
    for (const PGRail& r : d.pg_rails) {
        EXPECT_EQ(r.orient, Orient::Horizontal);
        EXPECT_DOUBLE_EQ(r.box.lx, 0.0);
        EXPECT_DOUBLE_EQ(r.box.hx, 200.0);
        EXPECT_NEAR(r.box.height(), cfg.rail_width_frac * 8.0, 1e-12);
    }
    // First rail centered on y = 0, second on y = 8.
    EXPECT_NEAR(d.pg_rails[0].box.center().y, 0.0, 1e-12);
    EXPECT_NEAR(d.pg_rails[1].box.center().y, 8.0, 1e-12);
}

TEST(PgRailsTest, VerticalStraps) {
    Design d = design_with_macro();
    PGRailConfig cfg;
    cfg.vertical_straps = 3;
    build_pg_rails(d, cfg);
    int verts = 0;
    for (const PGRail& r : d.pg_rails) {
        if (r.orient != Orient::Vertical) continue;
        ++verts;
        EXPECT_DOUBLE_EQ(r.box.ly, 0.0);
        EXPECT_DOUBLE_EQ(r.box.hy, 160.0);
    }
    EXPECT_EQ(verts, 3);
}

TEST(PgRailsTest, RowStepSkipsRows) {
    Design d = design_with_macro();
    PGRailConfig cfg;
    cfg.vertical_straps = 0;
    cfg.row_step = 2;
    build_pg_rails(d, cfg);
    // Every other row boundary + the top: 10 + 1.
    EXPECT_EQ(d.pg_rails.size(), 11u);
}

TEST(RailSelectTest, CutRailByBlocker) {
    PGRail rail;
    rail.orient = Orient::Horizontal;
    rail.box = {0, 99, 200, 101};
    const std::vector<Rect> blockers = {{80, 90, 120, 110}};
    const auto pieces = cut_rail(rail, blockers);
    ASSERT_EQ(pieces.size(), 2u);
    EXPECT_DOUBLE_EQ(pieces[0].box.lx, 0.0);
    EXPECT_DOUBLE_EQ(pieces[0].box.hx, 80.0);
    EXPECT_DOUBLE_EQ(pieces[1].box.lx, 120.0);
    EXPECT_DOUBLE_EQ(pieces[1].box.hx, 200.0);
    // Cross-section preserved.
    EXPECT_DOUBLE_EQ(pieces[0].box.ly, 99.0);
    EXPECT_DOUBLE_EQ(pieces[0].box.hy, 101.0);
}

TEST(RailSelectTest, BlockerMissingCrossSectionIgnored) {
    PGRail rail;
    rail.orient = Orient::Horizontal;
    rail.box = {0, 99, 200, 101};
    // Blocker overlaps in x but not in y: rail untouched.
    const auto pieces = cut_rail(rail, {{80, 120, 120, 140}});
    ASSERT_EQ(pieces.size(), 1u);
    EXPECT_EQ(pieces[0].box, rail.box);
}

TEST(RailSelectTest, VerticalCut) {
    PGRail rail;
    rail.orient = Orient::Vertical;
    rail.box = {99, 0, 101, 160};
    const auto pieces = cut_rail(rail, {{90, 60, 110, 100}});
    ASSERT_EQ(pieces.size(), 2u);
    EXPECT_DOUBLE_EQ(pieces[0].box.hy, 60.0);
    EXPECT_DOUBLE_EQ(pieces[1].box.ly, 100.0);
}

TEST(RailSelectTest, SelectionFiltersShortPieces) {
    Design d = design_with_macro();  // macro 60x40 at center
    PGRailConfig rc;
    rc.vertical_straps = 0;
    build_pg_rails(d, rc);
    RailSelectConfig sc;  // expand 10%, min length 0.2 * 200 = 40
    const auto selected = select_pg_rails(d, sc);
    ASSERT_FALSE(selected.empty());
    for (const PGRail& r : selected) {
        EXPECT_GE(r.length(), 0.2 * d.region.width() - 1e-9);
        // No selected rail may cross the expanded macro box.
        const Rect expanded =
            d.cells[0].bbox().scaled_about_center(1.10);
        EXPECT_FALSE(r.box.intersects(expanded));
    }
    // Rails away from the macro (y < 60) survive full width; rails through
    // the macro rows (y in [60,100]) are cut into two pieces of length 67
    // and 66 -> both survive the 40 threshold, so count stays high.
    int full = 0, cut = 0;
    for (const PGRail& r : selected) {
        if (r.length() > 199.0)
            ++full;
        else
            ++cut;
    }
    EXPECT_GT(full, 0);
    EXPECT_GT(cut, 0);
}

TEST(RailSelectTest, TightMacroChannelRejected) {
    // Two macros with a narrow gap: the rail piece between them is shorter
    // than the threshold and must be dropped (the paper's motivation for
    // the pre-selection).
    Design d;
    d.region = {0, 0, 200, 160};
    d.row_height = 8.0;
    d.build_rows();
    d.add_cell("m1", 80, 40, CellKind::Macro, {45, 80});
    d.add_cell("m2", 80, 40, CellKind::Macro, {155, 80});
    PGRailConfig rc;
    rc.vertical_straps = 0;
    build_pg_rails(d, rc);
    const auto selected = select_pg_rails(d, {});
    ASSERT_FALSE(selected.empty());
    // Expanded macros leave a 22-DBU channel (< 0.2 * 200 = 40) plus 1-DBU
    // edge slivers at the macro rows: every piece there must be dropped.
    for (const PGRail& r : selected) {
        const bool at_macro_rows =
            r.box.center().y > 58.0 && r.box.center().y < 102.0;
        EXPECT_FALSE(at_macro_rows)
            << "channel piece should have been dropped: " << r.box.lx << ".."
            << r.box.hx << " at y=" << r.box.center().y;
    }
}

TEST(DynamicDensityTest, RailAreaRasterization) {
    const BinGrid g({0, 0, 160, 160}, 16, 16);
    std::vector<PGRail> rails(1);
    rails[0].orient = Orient::Horizontal;
    rails[0].box = {0, 79, 160, 81};
    const GridF area = rail_area_per_bin(rails, g);
    EXPECT_NEAR(grid_sum(area), 160.0 * 2.0, 1e-9);
    // The rail straddles the boundary between rows 7 and 8.
    EXPECT_NEAR(area.at(0, 7), 10.0, 1e-9);
    EXPECT_NEAR(area.at(0, 8), 10.0, 1e-9);
}

TEST(DynamicDensityTest, Eq15GatesByAverage) {
    const BinGrid g({0, 0, 160, 160}, 16, 16);
    std::vector<PGRail> rails(1);
    rails[0].orient = Orient::Horizontal;
    rails[0].box = {0, 79, 160, 81};
    const GridF area = rail_area_per_bin(rails, g);

    GridF dmd(16, 16, 0.0), cap(16, 16, 10.0);
    dmd.at(3, 7) = 25.0;  // congestion 1.5 at one rail bin
    dmd.at(3, 2) = 25.0;  // congestion off-rail: no rail area there anyway
    const CongestionMap cmap(g, dmd, cap);

    const GridF extra = dynamic_pg_density(area, cmap);
    // avg congestion = 3.0/256 ~ 0.0117; congested rail bin gets
    // (1 + 1.5) * railarea, all other rail bins get 0 (eta = 0).
    EXPECT_NEAR(extra.at(3, 7), 2.5 * area.at(3, 7), 1e-9);
    EXPECT_DOUBLE_EQ(extra.at(5, 7), 0.0);
    EXPECT_DOUBLE_EQ(extra.at(3, 2), 0.0);  // no rail -> no density
}

TEST(DynamicDensityTest, StaticVariantIgnoresCongestion) {
    const BinGrid g({0, 0, 160, 160}, 16, 16);
    std::vector<PGRail> rails(1);
    rails[0].orient = Orient::Vertical;
    rails[0].box = {79, 0, 81, 160};
    const GridF area = rail_area_per_bin(rails, g);
    const GridF extra = static_pg_density(area, 0.5);
    EXPECT_NEAR(grid_sum(extra), 0.5 * grid_sum(area), 1e-9);
    EXPECT_NEAR(extra.at(7, 4), 0.5 * area.at(7, 4), 1e-12);
}

}  // namespace
}  // namespace rdp
