// Tests for the invariant-audit subsystem (src/audit, util/check.hpp):
// every registered auditor passes on a clean place -> route -> legalize
// flow, trips on a deliberately corrupted state with a message naming the
// stage, and never changes placement/routing results (observe, not mutate).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "audit/invariant_audit.hpp"
#include "benchgen/generator.hpp"
#include "density/electro_density.hpp"
#include "legal/tetris.hpp"
#include "place/global_placer.hpp"
#include "place/objective.hpp"
#include "place/routability_loop.hpp"
#include "router/global_router.hpp"
#include "util/check.hpp"

namespace rdp {
namespace {

class AuditTest : public ::testing::Test {
protected:
    void SetUp() override {
        set_audit_enabled(true);
        audit::reset_runs();
    }
    void TearDown() override { set_audit_enabled(true); }
};

Design small_circuit(uint64_t seed = 11) {
    GeneratorConfig cfg;
    cfg.name = "audit";
    cfg.seed = seed;
    cfg.num_cells = 300;
    cfg.num_ios = 16;
    cfg.num_macros = 2;
    cfg.utilization = 0.6;
    return generate_circuit(cfg);
}

PlacerConfig fast_cfg() {
    PlacerConfig cfg;
    cfg.mode = PlacerMode::Ours;
    cfg.grid_bins = 16;
    cfg.max_wl_iters = 60;
    cfg.stop_overflow = 0.12;
    cfg.max_route_iters = 2;
    cfg.inner_iters = 4;
    cfg.router.rrr_rounds = 1;
    cfg.dp.max_passes = 1;
    return cfg;
}

TEST_F(AuditTest, RegistryListsAllAuditors) {
    const auto& reg = audit::registered_auditors();
    ASSERT_EQ(reg.size(), 8u);
    const char* expected[] = {"finite-gradients", "density-mass",
                              "router-accounting", "incremental-route",
                              "congestion-finite", "spectral-finite",
                              "inflation-budget",  "legalized"};
    for (const char* name : expected) {
        bool found = false;
        for (const auto& info : reg) found |= std::string(info.name) == name;
        EXPECT_TRUE(found) << "auditor '" << name << "' not registered";
        EXPECT_EQ(audit::runs(name), 0);
    }
    EXPECT_EQ(audit::runs("no-such-auditor"), -1);
}

TEST_F(AuditTest, ContractMacrosThrowWithStageAndMessage) {
    const AuditStageScope scope("test-stage");
    EXPECT_EQ(std::string(audit_stage()), "test-stage");
    try {
        RDP_ASSERT(1 == 2, "boom " << 42);
        FAIL() << "RDP_ASSERT did not throw";
    } catch (const AuditFailure& e) {
        EXPECT_EQ(e.stage(), "test-stage");
        EXPECT_NE(std::string(e.what()).find("test-stage"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("boom 42"), std::string::npos);
    }
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(RDP_CHECK_FINITE(nan, "nan input"), AuditFailure);
    EXPECT_NO_THROW(RDP_ASSERT(1 == 1, "fine"));
    // RDP_DCHECK is compiled out under NDEBUG; a passing contract must be
    // silent in every configuration.
    EXPECT_NO_THROW(RDP_DCHECK(1 == 1, "fine"));

    // Runtime toggle: disabled contracts cost one branch and never throw.
    set_audit_enabled(false);
    EXPECT_FALSE(audit_enabled());
    EXPECT_NO_THROW(RDP_ASSERT(1 == 2, "ignored"));
}

TEST_F(AuditTest, StageScopesNest) {
    EXPECT_EQ(std::string(audit_stage()), "?");
    {
        const AuditStageScope outer("outer");
        EXPECT_EQ(std::string(audit_stage()), "outer");
        {
            const AuditStageScope inner("inner");
            EXPECT_EQ(std::string(audit_stage()), "inner");
        }
        EXPECT_EQ(std::string(audit_stage()), "outer");
    }
    EXPECT_EQ(std::string(audit_stage()), "?");
}

// The acceptance test of the subsystem: a clean full flow exercises every
// registered auditor at least once without a single trip.
TEST_F(AuditTest, CleanFlowRunsEveryAuditorWithoutTripping) {
    const Design input = small_circuit();
    const GlobalPlacer placer(fast_cfg());
    PlaceResult res;
    ASSERT_NO_THROW(res = placer.place(input));
    EXPECT_TRUE(is_legal(res.placed));
    EXPECT_GT(audit::runs("finite-gradients"), 0);
    EXPECT_GT(audit::runs("density-mass"), 0);
    EXPECT_GT(audit::runs("router-accounting"), 0);
    EXPECT_GT(audit::runs("incremental-route"), 0);
    EXPECT_GT(audit::runs("spectral-finite"), 0);
    EXPECT_GT(audit::runs("inflation-budget"), 0);
    EXPECT_GT(audit::runs("legalized"), 0);
}

TEST_F(AuditTest, AuditsObserveNeverMutate) {
    const Design input = small_circuit();
    const GlobalPlacer placer(fast_cfg());

    set_audit_enabled(false);
    const PlaceResult off = placer.place(input);
    set_audit_enabled(true);
    const PlaceResult on = placer.place(input);

    EXPECT_EQ(on.hpwl_final, off.hpwl_final);
    EXPECT_EQ(on.hpwl_gp, off.hpwl_gp);
    ASSERT_EQ(on.placed.num_cells(), off.placed.num_cells());
    for (int i = 0; i < on.placed.num_cells(); ++i) {
        EXPECT_EQ(on.placed.cells[static_cast<size_t>(i)].pos,
                  off.placed.cells[static_cast<size_t>(i)].pos)
            << "cell " << i << " moved when audits were enabled";
    }
}

TEST_F(AuditTest, NanCoordinateTripsObjectiveAudit) {
    Design d = small_circuit();
    const PlacerConfig cfg = fast_cfg();
    const BinGrid grid(d.region, 16, 16);
    PlacementObjective obj(grid, cfg.density, cfg.netmove,
                           6.0 * std::max(grid.bin_w(), grid.bin_h()));
    const std::vector<int> movable = d.movable_cells();
    std::vector<Vec2> pos(movable.size());
    for (size_t i = 0; i < movable.size(); ++i)
        pos[i] = d.cells[static_cast<size_t>(movable[i])].pos;
    std::vector<Vec2> grad;

    const AuditStageScope scope("wirelength-gp");
    ASSERT_NO_THROW(obj.evaluate(d, movable, pos, grad));

    pos[0].x = std::numeric_limits<double>::quiet_NaN();
    try {
        obj.evaluate(d, movable, pos, grad);
        FAIL() << "NaN coordinate did not trip any audit";
    } catch (const AuditFailure& e) {
        EXPECT_EQ(e.stage(), "wirelength-gp");
        EXPECT_NE(std::string(e.what()).find("wirelength-gp"),
                  std::string::npos);
    }
}

TEST_F(AuditTest, FiniteGradientAuditorTripsOnNan) {
    const AuditStageScope scope("routability-gp");
    std::vector<Vec2> grad(4);
    EXPECT_NO_THROW(audit::check_gradients_finite("net-moving", grad));
    grad[2].y = std::numeric_limits<double>::infinity();
    try {
        audit::check_gradients_finite("net-moving", grad);
        FAIL() << "non-finite gradient did not trip";
    } catch (const AuditFailure& e) {
        EXPECT_EQ(e.invariant(), "finite-gradients");
        EXPECT_EQ(e.stage(), "routability-gp");
        EXPECT_NE(std::string(e.what()).find("net-moving"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("cell 2"), std::string::npos);
    }
}

TEST_F(AuditTest, DensityMassAuditorTripsOnLostCharge) {
    const Design d = small_circuit();
    const BinGrid grid(d.region, 16, 16);
    const ElectroDensity density(grid);
    EXPECT_NO_THROW(density.evaluate(d));
    EXPECT_GT(audit::runs("density-mass"), 0);

    // Direct corruption: a grid missing charge vs the expected total.
    GridF g = grid.make_grid();
    g.at(3, 3) = 100.0;
    EXPECT_NO_THROW(audit::check_density_mass(g, 100.0));
    const AuditStageScope scope("wirelength-gp");
    try {
        audit::check_density_mass(g, 150.0);
        FAIL() << "lost charge did not trip";
    } catch (const AuditFailure& e) {
        EXPECT_EQ(e.invariant(), "density-mass");
        EXPECT_EQ(e.stage(), "wirelength-gp");
    }
}

TEST_F(AuditTest, SpectralFiniteTripsOnNanPotential) {
    const Design d = small_circuit();
    const BinGrid grid(d.region, 16, 16);
    const ElectroDensity density(grid);
    EXPECT_NO_THROW(density.evaluate(d));
    EXPECT_GT(audit::runs("spectral-finite"), 0);

    GridF psi(8, 8), ex(8, 8), ey(8, 8);
    EXPECT_NO_THROW(audit::check_spectral_finite("density", psi, ex, ey));
    psi.at(5, 2) = std::numeric_limits<double>::quiet_NaN();
    const AuditStageScope scope("wirelength-gp");
    try {
        audit::check_spectral_finite("density", psi, ex, ey);
        FAIL() << "NaN potential did not trip";
    } catch (const AuditFailure& e) {
        EXPECT_EQ(e.invariant(), "spectral-finite");
        EXPECT_EQ(e.stage(), "wirelength-gp");
        EXPECT_NE(std::string(e.what()).find("potential"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("(5, 2)"), std::string::npos);
    }
    psi.at(5, 2) = 0.0;

    // Field corruption is reported with the offending map's name.
    ey.at(0, 7) = -std::numeric_limits<double>::infinity();
    try {
        audit::check_spectral_finite("congestion", psi, ex, ey);
        FAIL() << "infinite field did not trip";
    } catch (const AuditFailure& e) {
        EXPECT_NE(std::string(e.what()).find("field-y"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("congestion"), std::string::npos);
    }
}

TEST_F(AuditTest, RouterAccountingTripsOnOverCommittedEdge) {
    const AuditStageScope scope("global-route");
    std::vector<RoutePath> paths(1);
    paths[0].segs = {hseg(0, 2, 3), vseg(3, 2, 5)};

    GridF dem_h(8, 8), dem_v(8, 8), bends(8, 8), hist_h(8, 8), hist_v(8, 8);
    for (int x = 0; x <= 3; ++x) dem_h.at(x, 2) += 1.0;
    for (int y = 2; y <= 5; ++y) dem_v.at(3, y) += 1.0;
    bends.at(3, 2) += 1.0;
    EXPECT_NO_THROW(audit::check_router_accounting(dem_h, dem_v, bends, paths,
                                                   hist_h, hist_v));

    // Over-committed edge: demand exceeds the committed segments.
    dem_h.at(1, 2) += 1.0;
    try {
        audit::check_router_accounting(dem_h, dem_v, bends, paths, hist_h,
                                       hist_v);
        FAIL() << "over-committed edge did not trip";
    } catch (const AuditFailure& e) {
        EXPECT_EQ(e.invariant(), "router-accounting");
        EXPECT_EQ(e.stage(), "global-route");
        EXPECT_NE(std::string(e.what()).find("(1, 2)"), std::string::npos);
    }
    dem_h.at(1, 2) -= 1.0;

    // Negative history cost.
    hist_v.at(4, 4) = -0.5;
    EXPECT_THROW(audit::check_router_accounting(dem_h, dem_v, bends, paths,
                                                hist_h, hist_v),
                 AuditFailure);
}

TEST_F(AuditTest, RouterAccountingPassesOnRealRoute) {
    const Design d = small_circuit();
    const BinGrid grid(d.region, 16, 16);
    RouterConfig rc;
    rc.rrr_rounds = 2;
    const GlobalRouter router(grid, rc);
    EXPECT_NO_THROW(router.route(d));
    // Initial pass + final-restore audits at minimum.
    EXPECT_GE(audit::runs("router-accounting"), 2);
}

TEST_F(AuditTest, InflationBudgetTripsOnOverdraw) {
    Design d;
    d.region = {0, 0, 100, 100};
    d.add_cell("a", 10, 10, CellKind::Movable, {20, 20});
    d.add_cell("b", 10, 10, CellKind::Movable, {60, 60});
    d.add_cell("f0", 5, 10, CellKind::Movable, {30, 70});
    d.add_cell("f1", 5, 10, CellKind::Movable, {70, 30});
    const int first_filler = 2;
    const double frac = 1.2;

    // budget_inflation scales an overdrawn request into the budget; the
    // audited result balances.
    std::vector<double> ratios = {3.0, 3.0, 1.0, 1.0};
    budget_inflation(d, first_filler, ratios, frac);
    EXPECT_NO_THROW(audit::check_inflation_budget(d, first_filler, ratios,
                                                  frac, 0.0));

    // Raw (unbudgeted) ratios overdraw the filler whitespace: real-cell
    // growth 2 * 100 * 2.0 = 400 against a budget of 1.2 * 100 = 120.
    std::vector<double> raw = {3.0, 3.0, 1.0, 1.0};
    const AuditStageScope scope("routability-gp");
    try {
        audit::check_inflation_budget(d, first_filler, raw, frac, 0.0);
        FAIL() << "overdrawn inflation did not trip";
    } catch (const AuditFailure& e) {
        EXPECT_EQ(e.invariant(), "inflation-budget");
        EXPECT_EQ(e.stage(), "routability-gp");
        EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
    }

    // A non-finite ratio trips regardless of the budget.
    std::vector<double> bad = ratios;
    bad[0] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(
        audit::check_inflation_budget(d, first_filler, bad, frac, 0.0),
        AuditFailure);
}

TEST_F(AuditTest, LegalizedAuditorTripsOnOverlapAndMisalignment) {
    Design d = small_circuit();
    tetris_legalize(d);
    EXPECT_NO_THROW(audit::check_legalized(d));

    // Overlapping legalized cells.
    Design overlapped = d;
    const std::vector<int> movable = overlapped.movable_cells();
    ASSERT_GE(movable.size(), 2u);
    overlapped.cells[static_cast<size_t>(movable[1])].pos =
        overlapped.cells[static_cast<size_t>(movable[0])].pos;
    const AuditStageScope scope("legalize");
    try {
        audit::check_legalized(overlapped);
        FAIL() << "overlapping cells did not trip";
    } catch (const AuditFailure& e) {
        EXPECT_EQ(e.invariant(), "legalized");
        EXPECT_EQ(e.stage(), "legalize");
        EXPECT_NE(std::string(e.what()).find("overlap"), std::string::npos);
    }

    // A cell off the row grid.
    Design misaligned = d;
    misaligned.cells[static_cast<size_t>(movable[0])].pos.y += 0.3;
    try {
        audit::check_legalized(misaligned);
        FAIL() << "row misalignment did not trip";
    } catch (const AuditFailure& e) {
        EXPECT_NE(std::string(e.what()).find("row"), std::string::npos);
    }
}

}  // namespace
}  // namespace rdp
