// Tests for the global routing substrate: net decomposition, pattern
// routing, layer assignment, and the full router's accounting invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "benchgen/generator.hpp"
#include "router/global_router.hpp"
#include "router/layer_assign.hpp"
#include "router/maze_route.hpp"
#include "router/net_decompose.hpp"
#include "router/pattern_route.hpp"
#include "util/rng.hpp"

namespace rdp {
namespace {

TEST(MstTest, EdgeCountAndConnectivity) {
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = rng.uniform_int(2, 30);
        std::vector<Vec2> pts(static_cast<size_t>(n));
        for (auto& p : pts) p = {rng.uniform(0, 100), rng.uniform(0, 100)};
        const auto edges = manhattan_mst(pts);
        ASSERT_EQ(edges.size(), static_cast<size_t>(n - 1));
        // Union-find connectivity check.
        std::vector<int> parent(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) parent[i] = i;
        std::function<int(int)> find = [&](int x) {
            return parent[x] == x ? x : parent[x] = find(parent[x]);
        };
        for (const auto& [a, b] : edges) parent[find(a)] = find(b);
        for (int i = 1; i < n; ++i) EXPECT_EQ(find(0), find(i));
    }
}

TEST(MstTest, TrivialCases) {
    EXPECT_TRUE(manhattan_mst({}).empty());
    EXPECT_TRUE(manhattan_mst({{1, 1}}).empty());
    const auto e = manhattan_mst({{0, 0}, {3, 4}});
    ASSERT_EQ(e.size(), 1u);
    EXPECT_DOUBLE_EQ(mst_length({{0, 0}, {3, 4}}), 7.0);
}

TEST(MstTest, ShorterThanStar) {
    // MST length <= star topology from any hub.
    Rng rng(8);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Vec2> pts;
        for (int i = 0; i < 12; ++i)
            pts.push_back({rng.uniform(0, 50), rng.uniform(0, 50)});
        double star = 0.0;
        for (size_t i = 1; i < pts.size(); ++i)
            star += std::abs(pts[i].x - pts[0].x) +
                    std::abs(pts[i].y - pts[0].y);
        EXPECT_LE(mst_length(pts), star + 1e-9);
    }
}

TEST(MstTest, CollinearChain) {
    const std::vector<Vec2> pts = {{0, 0}, {10, 0}, {20, 0}, {30, 0}};
    EXPECT_DOUBLE_EQ(mst_length(pts), 30.0);
}

class PatternRouteTest : public ::testing::Test {
protected:
    void SetUp() override {
        cost_h_ = GridF(16, 16, 1.0);
        cost_v_ = GridF(16, 16, 1.0);
        model_ = {&cost_h_, &cost_v_, 1.0};
    }
    GridF cost_h_, cost_v_;
    RouteCostModel model_;
};

/// Every consecutive pair of spans must share a corner: the first span ends
/// where the next begins (offset by one cell in the new direction).
void expect_contiguous(const RoutePath& p, int x0, int y0, int x1, int y1) {
    ASSERT_FALSE(p.segs.empty());
    EXPECT_EQ(p.segs.front().x0, x0);
    EXPECT_EQ(p.segs.front().y0, y0);
    EXPECT_EQ(p.segs.back().x1, x1);
    EXPECT_EQ(p.segs.back().y1, y1);
    for (size_t i = 0; i + 1 < p.segs.size(); ++i) {
        const RouteSeg& a = p.segs[i];
        const RouteSeg& b = p.segs[i + 1];
        const int dx = std::abs(b.x0 - a.x1);
        const int dy = std::abs(b.y0 - a.y1);
        EXPECT_EQ(dx + dy, 1) << "gap between spans " << i << " and " << i + 1;
    }
}

TEST_F(PatternRouteTest, DegenerateSameCell) {
    const RoutePath p = pattern_route(3, 3, 3, 3, model_);
    ASSERT_EQ(p.segs.size(), 1u);
    EXPECT_EQ(p.num_bends(), 0);
    EXPECT_EQ(p.total_cells(), 1);
}

TEST_F(PatternRouteTest, StraightLines) {
    const RoutePath h = pattern_route(2, 5, 9, 5, model_);
    ASSERT_EQ(h.segs.size(), 1u);
    EXPECT_TRUE(h.segs[0].horizontal());
    EXPECT_EQ(h.total_cells(), 8);
    const RoutePath v = pattern_route(4, 1, 4, 12, model_);
    ASSERT_EQ(v.segs.size(), 1u);
    EXPECT_FALSE(v.segs[0].horizontal());
}

TEST_F(PatternRouteTest, LShapeWhenUniform) {
    const RoutePath p = pattern_route(1, 1, 8, 6, model_);
    expect_contiguous(p, 1, 1, 8, 6);
    // With uniform costs an L (one bend) is optimal (fewer via costs).
    EXPECT_EQ(p.num_bends(), 1);
    // Cells covered exactly once: 8 in the horizontal span (x=1..8) plus
    // 5 in the vertical span (y=2..6; the corner is not double-counted).
    EXPECT_EQ(p.total_cells(), 8 + 5);
}

TEST_F(PatternRouteTest, ZShapeAvoidsExpensiveCorner) {
    // Make both L corners very expensive; a Z through the middle wins.
    for (int x = 0; x < 16; ++x) {
        cost_h_.at(x, 1) = 50.0;  // first row horizontal expensive
        cost_h_.at(x, 6) = 50.0;  // last row horizontal expensive
    }
    const RoutePath p = pattern_route(1, 1, 8, 6, model_, 16);
    expect_contiguous(p, 1, 1, 8, 6);
    EXPECT_EQ(p.num_bends(), 2);  // HVH or VHV
}

TEST_F(PatternRouteTest, PicksCheaperL) {
    // Block the horizontal-first corridor; vertical-first L must win.
    for (int x = 0; x < 16; ++x) cost_h_.at(x, 2) = 100.0;
    const RoutePath p = pattern_route(1, 2, 10, 9, model_, 0);
    ASSERT_EQ(p.segs.size(), 2u);
    EXPECT_FALSE(p.segs[0].horizontal());  // vertical first
}

TEST_F(PatternRouteTest, PathCostAccounting) {
    RoutePath p;
    p.segs.push_back(hseg(0, 0, 3));
    p.segs.push_back(vseg(3, 1, 4));
    cost_h_.fill(2.0);
    cost_v_.fill(3.0);
    // 4 horizontal cells * 2 + 4 vertical cells * 3 + 1 bend * via.
    EXPECT_DOUBLE_EQ(path_cost(p, model_), 8.0 + 12.0 + 1.0);
}

TEST(LayerAssignTest, WaterFillingAndOverflowConservation) {
    const std::vector<LayerSpec> specs = {
        {Orient::Horizontal, 4.0},
        {Orient::Vertical, 4.0},
        {Orient::Horizontal, 2.0},
        {Orient::Vertical, 2.0},
    };
    GridF dh(2, 1), dv(2, 1), bv(2, 1), pv(2, 1);
    dh.at(0, 0) = 3.0;   // fits on the first H layer
    dh.at(1, 0) = 10.0;  // overflows the stack: 4 + 6 (rest on top H layer)
    dv.at(0, 0) = 5.0;   // 4 + 1
    const LayerAssignment la = assign_layers(specs, dh, dv, bv, pv);
    EXPECT_DOUBLE_EQ(la.demand[0].at(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(la.demand[2].at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(la.demand[0].at(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(la.demand[2].at(1, 0), 6.0);
    EXPECT_DOUBLE_EQ(la.demand[1].at(0, 0), 4.0);
    EXPECT_DOUBLE_EQ(la.demand[3].at(0, 0), 1.0);
    // Layer-summed demand equals the 2D input everywhere.
    const GridF sum = la.demand_2d();
    EXPECT_DOUBLE_EQ(sum.at(0, 0), 8.0);
    EXPECT_DOUBLE_EQ(sum.at(1, 0), 10.0);
}

TEST(LayerAssignTest, ViaCounting) {
    const std::vector<LayerSpec> specs = {{Orient::Horizontal, 8.0},
                                          {Orient::Vertical, 8.0}};
    GridF dh(1, 1), dv(1, 1), bv(1, 1), pv(1, 1);
    bv.at(0, 0) = 3.0;
    pv.at(0, 0) = 7.0;
    const LayerAssignment la = assign_layers(specs, dh, dv, bv, pv);
    EXPECT_EQ(la.total_vias, 10);
}


class MazeRouteTest : public ::testing::Test {
protected:
    void SetUp() override {
        cost_h_ = GridF(24, 24, 1.0);
        cost_v_ = GridF(24, 24, 1.0);
        model_ = {&cost_h_, &cost_v_, 1.0};
    }
    GridF cost_h_, cost_v_;
    RouteCostModel model_;
};

TEST_F(MazeRouteTest, StraightLineOnUniformCosts) {
    const RoutePath p = maze_route(2, 5, 9, 5, model_);
    EXPECT_DOUBLE_EQ(path_cost(p, model_),
                     path_cost(pattern_route(2, 5, 9, 5, model_), model_));
    expect_contiguous(p, 2, 5, 9, 5);
}

TEST_F(MazeRouteTest, DetoursAroundWall) {
    // A near-impassable wall with one gap, placed so that every L and Z
    // between the endpoints crosses it except through the gap at y = 17
    // (outside the endpoints' bounding box -> patterns cannot use it, but
    // inside the maze window of margin 8).
    for (int y = 0; y < 24; ++y) {
        if (y == 17) continue;
        cost_h_.at(12, y) = 1000.0;
        cost_v_.at(12, y) = 1000.0;
    }
    const RoutePath pattern = pattern_route(4, 10, 20, 10, model_, 16);
    const RoutePath maze = maze_route(4, 10, 20, 10, model_);
    expect_contiguous(maze, 4, 10, 20, 10);
    EXPECT_LT(path_cost(maze, model_), path_cost(pattern, model_));
    EXPECT_LT(path_cost(maze, model_), 100.0);  // through the gap
}

TEST_F(MazeRouteTest, NeverWorseThanPatterns) {
    // Property: the maze search space contains every L/Z, so its cost is
    // never higher.
    Rng rng(17);
    for (int trial = 0; trial < 25; ++trial) {
        for (auto& v : cost_h_) v = rng.uniform(0.5, 8.0);
        for (auto& v : cost_v_) v = rng.uniform(0.5, 8.0);
        const int x0 = rng.uniform_int(0, 23), y0 = rng.uniform_int(0, 23);
        const int x1 = rng.uniform_int(0, 23), y1 = rng.uniform_int(0, 23);
        const RoutePath pat = pattern_route(x0, y0, x1, y1, model_, 16);
        const RoutePath mz = maze_route(x0, y0, x1, y1, model_);
        EXPECT_LE(path_cost(mz, model_), path_cost(pat, model_) + 1e-9)
            << "(" << x0 << "," << y0 << ")->(" << x1 << "," << y1 << ")";
        expect_contiguous(mz, x0, y0, x1, y1);
    }
}

TEST_F(MazeRouteTest, WindowClampsSearch) {
    MazeConfig cfg;
    cfg.window_margin = 0;  // search restricted to the endpoints' bbox
    const RoutePath p = maze_route(3, 3, 10, 8, model_, cfg);
    expect_contiguous(p, 3, 3, 10, 8);
    for (const RouteSeg& s : p.segs) {
        EXPECT_GE(std::min(s.x0, s.x1), 3);
        EXPECT_LE(std::max(s.x0, s.x1), 10);
        EXPECT_GE(std::min(s.y0, s.y1), 3);
        EXPECT_LE(std::max(s.y0, s.y1), 8);
    }
}

TEST(GlobalRouterTest, MazeFallbackReducesOverflow) {
    GeneratorConfig cfg;
    cfg.name = "congested";
    cfg.seed = 77;
    cfg.num_cells = 800;
    cfg.utilization = 0.85;
    const Design d = generate_circuit(cfg);
    const BinGrid grid(d.region, 32, 32);
    RouterConfig with, without;
    with.maze_fallback = true;
    without.maze_fallback = false;
    const RouteResult a = GlobalRouter(grid, with).route(d);
    const RouteResult b = GlobalRouter(grid, without).route(d);
    // Maze escalation is locally optimal per connection; on a uniformly
    // overloaded design the global overflow lands within a whisker of the
    // pattern-only result (and usually below). Guard against regressions.
    EXPECT_LE(a.total_overflow, b.total_overflow * 1.01 + 1e-9);
    EXPECT_LE(a.wirelength_dbu, b.wirelength_dbu * 1.05);
}

Design routed_design(int cells, uint64_t seed) {
    GeneratorConfig cfg;
    cfg.name = "route-test";
    cfg.seed = seed;
    cfg.num_cells = cells;
    cfg.num_macros = 2;
    cfg.utilization = 0.7;
    return generate_circuit(cfg);
}

TEST(GlobalRouterTest, CapacityMapsRespectBlockages) {
    const Design d = routed_design(600, 21);
    const BinGrid grid(d.region, 32, 32);
    GlobalRouter router(grid);
    GridF cap_h, cap_v;
    router.build_capacity(d, cap_h, cap_v);
    double base_h = 0.0;
    for (const LayerSpec& l : router.effective_layers())
        if (l.dir == Orient::Horizontal) base_h += l.capacity;
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            EXPECT_GE(cap_h.at(x, y), router.config().min_capacity);
            EXPECT_LE(cap_h.at(x, y), base_h + 1e-9);
        }
    }
    // Bins over a macro have reduced capacity.
    const auto macros = d.macro_cells();
    ASSERT_FALSE(macros.empty());
    const GridIndex g = grid.index_of(d.cells[macros[0]].pos);
    EXPECT_LT(cap_v.at(g.ix, g.iy), 0.9 * base_h);
}

TEST(GlobalRouterTest, DemandAccountingConsistent) {
    const Design d = routed_design(500, 22);
    const BinGrid grid(d.region, 32, 32);
    GlobalRouter router(grid);
    const RouteResult rr = router.route(d);
    // Total 2D demand = wire demand + weighted via events.
    const double wire = grid_sum(rr.demand_h) + grid_sum(rr.demand_v);
    const double vias =
        grid_sum(rr.bend_vias) + grid_sum(rr.pin_vias);
    EXPECT_NEAR(grid_sum(rr.congestion.demand()),
                wire + router.config().via_demand_weight * vias, 1e-6);
    // Every pin contributes one pin via.
    EXPECT_NEAR(grid_sum(rr.pin_vias), d.num_pins(), 1e-9);
    // Wirelength is positive and bounded below by MST length scale.
    EXPECT_GT(rr.wirelength_dbu, 0.0);
    EXPECT_GT(rr.num_vias, 0);
}


TEST(GlobalRouterTest, RoutingBlockagesReduceCapacity) {
    Design d = routed_design(200, 33);
    const BinGrid grid(d.region, 16, 16);
    GlobalRouter router(grid);
    GridF ch0, cv0;
    router.build_capacity(d, ch0, cv0);
    // Fully cover one G-cell with a blockage.
    d.routing_blockages.push_back(grid.bin_box(5, 5));
    GridF ch1, cv1;
    router.build_capacity(d, ch1, cv1);
    EXPECT_LT(ch1.at(5, 5), 0.5 * ch0.at(5, 5));
    EXPECT_LT(cv1.at(5, 5), 0.5 * cv0.at(5, 5));
    // Far-away cells unchanged.
    EXPECT_DOUBLE_EQ(ch1.at(12, 12), ch0.at(12, 12));
}

TEST(GlobalRouterTest, Deterministic) {
    const Design d = routed_design(400, 23);
    const BinGrid grid(d.region, 32, 32);
    GlobalRouter router(grid);
    const RouteResult a = router.route(d);
    const RouteResult b = router.route(d);
    EXPECT_EQ(a.wirelength_dbu, b.wirelength_dbu);
    EXPECT_EQ(a.num_vias, b.num_vias);
    EXPECT_EQ(a.total_overflow, b.total_overflow);
    EXPECT_TRUE(a.demand_h == b.demand_h);
}

TEST(GlobalRouterTest, RrrReducesOverflow) {
    // Congested design: rip-up-and-reroute should not increase overflow.
    GeneratorConfig cfg;
    cfg.name = "congested";
    cfg.seed = 77;
    cfg.num_cells = 800;
    cfg.utilization = 0.85;
    const Design d = generate_circuit(cfg);
    const BinGrid grid(d.region, 32, 32);
    RouterConfig rc0;
    rc0.rrr_rounds = 0;
    RouterConfig rc3;
    rc3.rrr_rounds = 3;
    const RouteResult r0 = GlobalRouter(grid, rc0).route(d);
    const RouteResult r3 = GlobalRouter(grid, rc3).route(d);
    EXPECT_LE(r3.total_overflow, r0.total_overflow * 1.001 + 1e-9);
}

TEST(GlobalRouterTest, ClusteredPlacementHasHotterPeak) {
    // The same netlist clustered into a small box concentrates pin and
    // wire demand: the peak G-cell utilization must far exceed the spread
    // placement's (this is the "local congestion" of paper Fig. 1, even
    // though clustering also shortens nets and may lower total demand).
    GeneratorConfig cfg;
    cfg.seed = 31;
    cfg.num_cells = 600;
    Design spread = generate_circuit(cfg);
    Design clustered = spread;
    Rng rng(99);
    const Vec2 c = clustered.region.center();
    for (Cell& cell : clustered.cells) {
        if (!cell.movable()) continue;
        cell.pos = {c.x + rng.uniform(-20, 20), c.y + rng.uniform(-20, 20)};
    }
    const BinGrid grid(spread.region, 32, 32);
    GlobalRouter router(grid);
    const RouteResult rc = router.route(clustered);
    const RouteResult rs = router.route(spread);
    EXPECT_GT(rc.congestion.peak_utilization(),
              1.5 * rs.congestion.peak_utilization());
}

}  // namespace
}  // namespace rdp
