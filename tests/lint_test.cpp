// Regression tests for the static determinism-contract layer (DESIGN.md
// §15): every rdp-* check fires on its purpose-built bad fixture, stays
// silent on its good twin, and the full src/ tree is clean. When a Clang
// development install provided the rdp-tidy plugin, the plugin itself is
// load-tested against the exported compile_commands.json.
#include "lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fs = std::filesystem;
using rdp::lint::Finding;

namespace {

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<Finding> check_fixture(const std::string& check,
                                   const std::string& fixture_name) {
    const fs::path path = fs::path(RDP_LINT_FIXTURE_DIR) / fixture_name;
    return rdp::lint::run_check(check, path.string(), read_file(path));
}

/// Run a shell command, capturing stdout+stderr; returns nullopt when the
/// command could not run at all.
std::optional<std::string> run_cmd(const std::string& cmd) {
    FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (pipe == nullptr) return std::nullopt;
    std::string out;
    std::array<char, 4096> buf{};
    size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        out.append(buf.data(), n);
    const int rc = pclose(pipe);
    if (rc != 0 && out.empty()) return std::nullopt;
    return out;
}

bool have_clang_tidy() {
    const auto v = run_cmd("clang-tidy --version");
    return v.has_value() && v->find("LLVM") != std::string::npos;
}

}  // namespace

// ---- the comment/string stripper the portable checks rely on --------------

TEST(LintStrip, RemovesCommentsAndStringsPreservingLines) {
    const std::string src =
        "int a; // std::exp(1.0)\n"
        "/* std::getenv(\"X\")\n"
        "   more */ int b;\n"
        "const char* s = \"std::thread t;\";\n"
        "char c = '\\'';\n";
    const std::string out = rdp::lint::strip_comments_and_strings(src);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
              std::count(src.begin(), src.end(), '\n'));
    EXPECT_EQ(out.find("exp"), std::string::npos);
    EXPECT_EQ(out.find("getenv"), std::string::npos);
    EXPECT_EQ(out.find("thread"), std::string::npos);
    EXPECT_NE(out.find("int a;"), std::string::npos);
    EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(LintStrip, DigitSeparatorIsNotACharLiteral) {
    const std::string src = "int n = 1'000'000; double d = std::exp(1.0);\n";
    const std::string out = rdp::lint::strip_comments_and_strings(src);
    EXPECT_NE(out.find("std::exp"), std::string::npos)
        << "digit separators must not open a char literal and swallow code";
}

// ---- one firing + one non-firing fixture per check ------------------------

TEST(RdpRawExp, FiresOnBadFixture) {
    const auto findings = check_fixture("rdp-raw-exp", "bad_raw_exp.cpp");
    EXPECT_EQ(findings.size(), 3u);
    for (const Finding& f : findings) EXPECT_EQ(f.check, "rdp-raw-exp");
}

TEST(RdpRawExp, SilentOnGoodFixture) {
    const auto findings = check_fixture("rdp-raw-exp", "good_raw_exp.cpp");
    EXPECT_TRUE(findings.empty())
        << "unexpected: " << findings.front().message;
}

TEST(RdpUnorderedIteration, FiresOnBadFixture) {
    const auto findings = check_fixture("rdp-unordered-iteration",
                                        "bad_unordered_iteration.cpp");
    EXPECT_EQ(findings.size(), 2u);  // the range-for and the begin() walk
    for (const Finding& f : findings)
        EXPECT_EQ(f.check, "rdp-unordered-iteration");
}

TEST(RdpUnorderedIteration, SilentOnGoodFixture) {
    const auto findings = check_fixture("rdp-unordered-iteration",
                                        "good_unordered_iteration.cpp");
    EXPECT_TRUE(findings.empty())
        << "unexpected: " << findings.front().message;
}

TEST(RdpRawThread, FiresOnBadFixture) {
    const auto findings =
        check_fixture("rdp-raw-thread", "bad_raw_thread.cpp");
    EXPECT_EQ(findings.size(), 2u);  // std::thread and std::async
    for (const Finding& f : findings) EXPECT_EQ(f.check, "rdp-raw-thread");
}

TEST(RdpRawThread, SilentOnGoodFixture) {
    const auto findings =
        check_fixture("rdp-raw-thread", "good_raw_thread.cpp");
    EXPECT_TRUE(findings.empty())
        << "unexpected: " << findings.front().message;
}

TEST(RdpRawGetenv, FiresOnBadFixture) {
    const auto findings =
        check_fixture("rdp-raw-getenv", "bad_raw_getenv.cpp");
    EXPECT_EQ(findings.size(), 2u);  // std::getenv and ::getenv
    for (const Finding& f : findings) EXPECT_EQ(f.check, "rdp-raw-getenv");
}

TEST(RdpRawGetenv, SilentOnGoodFixture) {
    const auto findings =
        check_fixture("rdp-raw-getenv", "good_raw_getenv.cpp");
    EXPECT_TRUE(findings.empty())
        << "unexpected: " << findings.front().message;
}

TEST(RdpRawFileWrite, FiresOnBadFixture) {
    const auto findings =
        check_fixture("rdp-raw-file-write", "bad_raw_file_write.cpp");
    EXPECT_EQ(findings.size(), 3u);  // ofstream, fstream, fopen
    for (const Finding& f : findings)
        EXPECT_EQ(f.check, "rdp-raw-file-write");
}

TEST(RdpRawFileWrite, SilentOnGoodFixture) {
    const auto findings =
        check_fixture("rdp-raw-file-write", "good_raw_file_write.cpp");
    EXPECT_TRUE(findings.empty())
        << "unexpected: " << findings.front().message;
}

TEST(RdpHotLoopAlloc, FiresOnBadFixture) {
    const auto findings =
        check_fixture("rdp-hot-loop-alloc", "bad_wa_kernel.hpp");
    EXPECT_GE(findings.size(), 5u);  // decl, reserve, push_back, new, resize
    for (const Finding& f : findings)
        EXPECT_EQ(f.check, "rdp-hot-loop-alloc");
}

TEST(RdpHotLoopAlloc, SilentOnGoodFixture) {
    const auto findings =
        check_fixture("rdp-hot-loop-alloc", "good_wa_kernel.hpp");
    EXPECT_TRUE(findings.empty())
        << "unexpected: " << findings.front().message;
}

// ---- path-based applicability (run_file) ----------------------------------

TEST(LintPathRules, SimdLayerMayCallRawExp) {
    const std::string code = "double f() { return std::exp(1.0); }\n";
    EXPECT_TRUE(rdp::lint::run_file("src/util/simd.cpp", code).empty());
    EXPECT_EQ(rdp::lint::run_file("src/wirelength/wa_model.cpp", code).size(),
              1u);
}

TEST(LintPathRules, EnvLayerMayCallGetenv) {
    const std::string code =
        "const char* f() { return std::getenv(\"X\"); }\n";
    EXPECT_TRUE(rdp::lint::run_file("src/util/env.cpp", code).empty());
    EXPECT_EQ(rdp::lint::run_file("src/util/log.cpp", code).size(), 1u);
}

TEST(LintPathRules, ParallelLayerMayOwnThreads) {
    const std::string code = "void f() { std::thread t; t.join(); }\n";
    EXPECT_TRUE(rdp::lint::run_file("src/util/parallel.cpp", code).empty());
    EXPECT_EQ(rdp::lint::run_file("src/router/maze_route.cpp", code).size(),
              1u);
}

TEST(LintPathRules, AtomicWriteLayerMayOpenFiles) {
    const std::string code =
        "void f() { std::ofstream os(\"x\"); os << 1; }\n";
    EXPECT_TRUE(rdp::lint::run_file("src/util/io_atomic.cpp", code).empty());
    EXPECT_EQ(rdp::lint::run_file("src/db/netlist_io.cpp", code).size(), 1u);
}

TEST(LintPathRules, AllocRuleOnlyAppliesToKernelHeaders) {
    const std::string code =
        "inline void f(std::vector<double>& v) { v.push_back(1.0); }\n";
    EXPECT_FALSE(rdp::lint::run_file("src/fft/fft_kernel.hpp", code).empty());
    EXPECT_TRUE(rdp::lint::run_file("src/fft/fft.cpp", code).empty());
}

// ---- the real tree must be clean ------------------------------------------

TEST(LintFullTree, SrcIsClean) {
    const fs::path src_dir = RDP_SRC_DIR;
    ASSERT_TRUE(fs::exists(src_dir)) << src_dir;
    size_t files = 0;
    std::vector<Finding> all;
    for (const auto& entry : fs::recursive_directory_iterator(src_dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".cpp" && ext != ".hpp") continue;
        ++files;
        const auto findings = rdp::lint::run_file(entry.path().string(),
                                                  read_file(entry.path()));
        all.insert(all.end(), findings.begin(), findings.end());
    }
    EXPECT_GT(files, 50u) << "src/ scan looks incomplete";
    std::ostringstream report;
    for (const Finding& f : all)
        report << f.file << ":" << f.line << ": [" << f.check << "] "
               << f.message << "\n";
    EXPECT_TRUE(all.empty()) << "determinism-contract violations in src/:\n"
                             << report.str();
}

// ---- clang-tidy plugin (when a Clang dev install built it) ----------------

TEST(RdpTidyPlugin, LoadsAndListsEveryCheck) {
    const std::string plugin = RDP_TIDY_PLUGIN_PATH;
    if (plugin.empty() || !fs::exists(plugin))
        GTEST_SKIP() << "rdp_tidy_module was not built on this host "
                        "(no Clang development install)";
    if (!have_clang_tidy())
        GTEST_SKIP() << "clang-tidy binary not available";
    // Load the plugin against the exported compile_commands.json and list
    // the registered checks on a real translation unit.
    const std::string cmd = "clang-tidy -load " + plugin +
                            " -checks='-*,rdp-*' --list-checks -p " +
                            std::string(RDP_BUILD_DIR) + " " +
                            std::string(RDP_SRC_DIR) + "/util/log.cpp";
    const auto out = run_cmd(cmd);
    ASSERT_TRUE(out.has_value()) << "clang-tidy failed to run";
    for (const std::string& check : rdp::lint::all_checks())
        EXPECT_NE(out->find(check), std::string::npos)
            << "missing " << check << " in:\n"
            << *out;
}

TEST(RdpTidyPlugin, FiresOnBadFixtures) {
    const std::string plugin = RDP_TIDY_PLUGIN_PATH;
    if (plugin.empty() || !fs::exists(plugin))
        GTEST_SKIP() << "rdp_tidy_module was not built on this host";
    if (!have_clang_tidy())
        GTEST_SKIP() << "clang-tidy binary not available";
    const fs::path dir = RDP_LINT_FIXTURE_DIR;
    const std::pair<const char*, const char*> cases[] = {
        {"rdp-raw-exp", "bad_raw_exp.cpp"},
        {"rdp-unordered-iteration", "bad_unordered_iteration.cpp"},
        {"rdp-raw-thread", "bad_raw_thread.cpp"},
        {"rdp-raw-getenv", "bad_raw_getenv.cpp"},
        {"rdp-raw-file-write", "bad_raw_file_write.cpp"},
        {"rdp-hot-loop-alloc", "bad_wa_kernel.hpp"},
    };
    for (const auto& [check, fixture_name] : cases) {
        const std::string cmd =
            "clang-tidy -load " + plugin + " -checks='-*," + check + "' " +
            (dir / fixture_name).string() + " -- -std=c++20";
        const auto out = run_cmd(cmd);
        ASSERT_TRUE(out.has_value()) << cmd;
        EXPECT_NE(out->find(check), std::string::npos)
            << check << " did not fire on " << fixture_name << ":\n"
            << *out;
    }
}
